(* Binary encoder for the virtual ISA.  Multi-byte immediates are stored
   little-endian.  [patch_*] helpers rewrite operand fields in place; they
   are what the multiverse runtime uses to retarget call sites. *)

exception Encode_error of string

let check_reg r =
  if r < 0 || r >= Insn.num_regs then
    raise (Encode_error (Printf.sprintf "bad register r%d" r))

let check_imm32 v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    raise (Encode_error (Printf.sprintf "immediate %d does not fit in 32 bits" v))

let check_abs32 v =
  if v < 0 || v > 0xFFFF_FFFF then
    raise (Encode_error (Printf.sprintf "address 0x%x does not fit in 32 bits" v))

let check_width w =
  match w with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> raise (Encode_error (Printf.sprintf "bad memory width %d" w))

let set_i32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_i64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

(** Encode [insn] into a fresh byte string of exactly [Insn.size insn]
    bytes. *)
let encode (insn : Insn.t) : bytes =
  let b = Bytes.make (Insn.size insn) '\000' in
  Bytes.set b 0 (Char.chr (Insn.opcode insn));
  let reg off r =
    check_reg r;
    Bytes.set b off (Char.chr r)
  in
  (match insn with
  | Insn.Mov_ri (rd, imm) ->
      reg 1 rd;
      set_i64 b 2 imm
  | Insn.Mov_ri32 (rd, imm) ->
      check_imm32 imm;
      reg 1 rd;
      set_i32 b 2 imm
  | Insn.Mov_rr (rd, rs) ->
      reg 1 rd;
      reg 2 rs
  | Insn.Alu (op, rd, ra, rb) ->
      Bytes.set b 1 (Char.chr (Insn.alu_code op));
      reg 2 rd;
      reg 3 ra;
      reg 4 rb
  | Insn.Alu_ri (op, rd, ra, imm) ->
      check_imm32 imm;
      Bytes.set b 1 (Char.chr (Insn.alu_code op));
      reg 2 rd;
      reg 3 ra;
      set_i32 b 4 imm
  | Insn.Un (op, rd, ra) ->
      Bytes.set b 1 (Char.chr (Insn.unop_code op));
      reg 2 rd;
      reg 3 ra
  | Insn.Load (rd, ra, off, w) ->
      check_imm32 off;
      check_width w;
      reg 1 rd;
      reg 2 ra;
      set_i32 b 3 off;
      Bytes.set b 7 (Char.chr w)
  | Insn.Store (ra, off, rs, w) ->
      check_imm32 off;
      check_width w;
      reg 1 ra;
      set_i32 b 2 off;
      reg 6 rs;
      Bytes.set b 7 (Char.chr w)
  | Insn.Loadg (rd, addr, w) ->
      check_abs32 addr;
      check_width w;
      reg 1 rd;
      set_u32 b 2 addr;
      Bytes.set b 6 (Char.chr w)
  | Insn.Storeg (addr, rs, w) ->
      check_abs32 addr;
      check_width w;
      set_u32 b 1 addr;
      reg 5 rs;
      Bytes.set b 6 (Char.chr w)
  | Insn.Lea (rd, addr) ->
      reg 1 rd;
      set_i64 b 2 addr
  | Insn.Call rel ->
      check_imm32 rel;
      set_i32 b 1 rel
  | Insn.Call_ind addr ->
      check_abs32 addr;
      set_u32 b 1 addr;
      Bytes.set b 5 '\000'
  | Insn.Jmp rel ->
      check_imm32 rel;
      set_i32 b 1 rel
  | Insn.Jnz (r, rel) | Insn.Jz (r, rel) ->
      check_imm32 rel;
      reg 1 r;
      set_i32 b 2 rel;
      Bytes.set b 6 '\000'
  | Insn.Push r | Insn.Pop r -> reg 1 r
  | Insn.Xchg (rd, ra, rs) ->
      reg 1 rd;
      reg 2 ra;
      reg 3 rs
  | Insn.Hypercall n ->
      if n < 0 || n > 255 then raise (Encode_error "hypercall number out of range");
      Bytes.set b 1 (Char.chr n)
  | Insn.Rdtsc rd -> reg 1 rd
  | Insn.Ret | Insn.Cli | Insn.Sti | Insn.Pause | Insn.Fence | Insn.Halt | Insn.Nop
  | Insn.Brk ->
      ());
  b

(** Encode a sequence, returning the concatenated bytes and the offset of
    each instruction. *)
let encode_seq (insns : Insn.t list) : bytes * int array =
  let total = List.fold_left (fun acc i -> acc + Insn.size i) 0 insns in
  let b = Bytes.create total in
  let offsets = Array.make (List.length insns) 0 in
  let off = ref 0 in
  List.iteri
    (fun idx i ->
      offsets.(idx) <- !off;
      let e = encode i in
      Bytes.blit e 0 b !off (Bytes.length e);
      off := !off + Bytes.length e)
    insns;
  (b, offsets)

(* ------------------------------------------------------------------ *)
(* In-place patching of operand fields                                 *)
(* ------------------------------------------------------------------ *)

(** Rewrite the rel32 of a [Call] or [Jmp] located at [off] so that it
    transfers to absolute address [target]. *)
let patch_rel32 (b : Bytes.t) ~off ~target =
  let opc = Char.code (Bytes.get b off) in
  if opc <> Insn.opcode (Insn.Call 0) && opc <> Insn.opcode (Insn.Jmp 0) then
    raise
      (Encode_error
         (Printf.sprintf "patch_rel32 at 0x%x: opcode 0x%02x is not call/jmp" off opc));
  let next = off + 5 in
  let rel = target - next in
  check_imm32 rel;
  set_i32 b (off + 1) rel

(** Read the absolute target of the [Call]/[Jmp] at [off]. *)
let read_rel32_target (b : Bytes.t) ~off =
  let rel = Int32.to_int (Bytes.get_int32_le b (off + 1)) in
  off + 5 + rel
