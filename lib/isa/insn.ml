(* The virtual instruction set.

   Instructions are encoded into bytes with x86-like sizes; in particular a
   direct call is 5 bytes (opcode + rel32), matching the paper's footnote
   "On IA-32, a far-call site is 5 bytes large".  The multiverse runtime
   patches these encodings in place: call-site retargeting rewrites the
   rel32 of a [Call], prologue redirection overwrites the first bytes of the
   generic function with a 5-byte [Jmp], and small variant bodies are inlined
   into the call site with [Nop] padding (Figure 3 of the paper). *)

type reg = int  (** 0..15; r15 is the stack pointer *)

let num_regs = 16
let sp = 15

(** Scratch registers reserved by the register allocator for spill traffic. *)
let scratch0 = 13
let scratch1 = 14

type alu =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lnot | Bnot

type t =
  | Mov_ri of reg * int  (** load 64-bit immediate *)
  | Mov_ri32 of reg * int  (** load sign-extended 32-bit immediate (short form) *)
  | Mov_rr of reg * reg
  | Alu of alu * reg * reg * reg  (** rd <- ra op rb *)
  | Alu_ri of alu * reg * reg * int  (** rd <- ra op imm32 *)
  | Un of unop * reg * reg
  | Load of reg * reg * int * int  (** rd <- [ra + off32] (width) *)
  | Store of reg * int * reg * int  (** [ra + off32] <- rs (width) *)
  | Loadg of reg * int * int  (** rd <- [abs32] (width); global access *)
  | Storeg of int * reg * int  (** [abs32] <- rs (width) *)
  | Lea of reg * int  (** rd <- abs64 symbol address *)
  | Call of int  (** rel32, relative to the end of this instruction *)
  | Call_ind of int  (** call through the function pointer stored at [abs32] *)
  | Jmp of int  (** rel32 *)
  | Jnz of reg * int  (** branch if reg <> 0 *)
  | Jz of reg * int
  | Ret
  | Push of reg
  | Pop of reg
  | Cli
  | Sti
  | Pause
  | Fence
  | Xchg of reg * reg * reg  (** rd <- atomic exchange [ra] with rs *)
  | Hypercall of int  (** imm8 hypercall number *)
  | Rdtsc of reg
  | Halt
  | Nop
  | Brk  (** breakpoint trap byte, used by the cross-modifying text_poke *)

(* opcode assignments; keep stable, the runtime recognizes Call/Jmp/Nop *)
let opcode = function
  | Mov_ri _ -> 0x01
  | Mov_ri32 _ -> 0x1B
  | Mov_rr _ -> 0x02
  | Alu _ -> 0x03
  | Alu_ri _ -> 0x04
  | Un _ -> 0x05
  | Load _ -> 0x06
  | Store _ -> 0x07
  | Loadg _ -> 0x08
  | Storeg _ -> 0x09
  | Lea _ -> 0x0A
  | Call _ -> 0x0B
  | Call_ind _ -> 0x0C
  | Jmp _ -> 0x0D
  | Jnz _ -> 0x0E
  | Jz _ -> 0x0F
  | Ret -> 0x10
  | Push _ -> 0x11
  | Pop _ -> 0x12
  | Cli -> 0x13
  | Sti -> 0x14
  | Pause -> 0x15
  | Fence -> 0x16
  | Xchg _ -> 0x17
  | Hypercall _ -> 0x18
  | Rdtsc _ -> 0x19
  | Halt -> 0x1A
  | Brk -> 0x1C
  | Nop -> 0x90

(** Encoded size in bytes. *)
let size = function
  | Mov_ri _ -> 10
  | Mov_ri32 _ -> 6
  | Mov_rr _ -> 3
  | Alu _ -> 5
  | Alu_ri _ -> 8
  | Un _ -> 4
  | Load _ -> 8
  | Store _ -> 8
  | Loadg _ -> 7
  | Storeg _ -> 7
  | Lea _ -> 10
  | Call _ -> 5
  | Call_ind _ -> 6
  | Jmp _ -> 5
  | Jnz _ -> 7
  | Jz _ -> 7
  | Ret -> 1
  | Push _ -> 2
  | Pop _ -> 2
  | Cli -> 1
  | Sti -> 1
  | Pause -> 1
  | Fence -> 1
  | Xchg _ -> 4
  | Hypercall _ -> 2
  | Rdtsc _ -> 2
  | Halt -> 1
  | Brk -> 1
  | Nop -> 1

(** Size of a direct call instruction; the inlining threshold of the
    multiverse runtime (Section 4: "the function body of a variant is
    smaller than a call instruction"). *)
let call_size = size (Call 0)

let jmp_size = size (Jmp 0)

let alu_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4
  | Band -> 5 | Bor -> 6 | Bxor -> 7 | Shl -> 8 | Shr -> 9
  | Eq -> 10 | Ne -> 11 | Lt -> 12 | Le -> 13 | Gt -> 14 | Ge -> 15

let alu_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Mod
  | 5 -> Band | 6 -> Bor | 7 -> Bxor | 8 -> Shl | 9 -> Shr
  | 10 -> Eq | 11 -> Ne | 12 -> Lt | 13 -> Le | 14 -> Gt | 15 -> Ge
  | n -> invalid_arg (Printf.sprintf "bad ALU code %d" n)

let unop_code = function Neg -> 0 | Lnot -> 1 | Bnot -> 2

let unop_of_code = function
  | 0 -> Neg
  | 1 -> Lnot
  | 2 -> Bnot
  | n -> invalid_arg (Printf.sprintf "bad unop code %d" n)

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "seteq" | Ne -> "setne" | Lt -> "setlt" | Le -> "setle"
  | Gt -> "setgt" | Ge -> "setge"

let unop_name = function Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot"

(** Can this instruction be copied verbatim to a different address?  Anything
    with a pc-relative operand cannot; everything else is position
    independent.  Used by the runtime's call-site inliner. *)
let position_independent = function
  | Call _ | Jmp _ | Jnz _ | Jz _ -> false
  | Ret -> false  (* a ret would return from the caller instead *)
  | Mov_ri _ | Mov_ri32 _ | Mov_rr _ | Alu _ | Alu_ri _ | Un _ | Load _
  | Store _ | Loadg _ | Storeg _ | Lea _ | Call_ind _ | Push _ | Pop _ | Cli
  | Sti | Pause | Fence | Xchg _ | Hypercall _ | Rdtsc _ | Halt | Nop | Brk -> true
