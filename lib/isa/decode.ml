(* Binary decoder for the virtual ISA; the inverse of [Encode.encode].
   The machine simulator decodes through a cache that models the instruction
   cache: after the runtime patches the text segment it must flush the
   affected range or the machine keeps executing the stale decoding. *)

exception Decode_error of string * int  (** message, offset *)

let err off fmt = Printf.ksprintf (fun m -> raise (Decode_error (m, off))) fmt

let get_i32 b off = Int32.to_int (Bytes.get_int32_le b off)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFF_FFFF
let get_i64 b off = Int64.to_int (Bytes.get_int64_le b off)

let get_reg b off pos =
  let r = Char.code (Bytes.get b (off + pos)) in
  if r >= Insn.num_regs then err off "bad register byte %d" r;
  r

let get_width b off pos =
  match Char.code (Bytes.get b (off + pos)) with
  | (1 | 2 | 4 | 8) as w -> w
  | w -> err off "bad width byte %d" w

(** Decode the instruction at [off]; returns it with its size. *)
let decode (b : Bytes.t) ~off : Insn.t * int =
  if off < 0 || off >= Bytes.length b then err off "decode out of bounds";
  let opc = Char.code (Bytes.get b off) in
  let insn =
    match opc with
    | 0x01 -> Insn.Mov_ri (get_reg b off 1, get_i64 b (off + 2))
    | 0x1B -> Insn.Mov_ri32 (get_reg b off 1, get_i32 b (off + 2))
    | 0x02 -> Insn.Mov_rr (get_reg b off 1, get_reg b off 2)
    | 0x03 ->
        let op = Insn.alu_of_code (Char.code (Bytes.get b (off + 1))) in
        Insn.Alu (op, get_reg b off 2, get_reg b off 3, get_reg b off 4)
    | 0x04 ->
        let op = Insn.alu_of_code (Char.code (Bytes.get b (off + 1))) in
        Insn.Alu_ri (op, get_reg b off 2, get_reg b off 3, get_i32 b (off + 4))
    | 0x05 ->
        let op = Insn.unop_of_code (Char.code (Bytes.get b (off + 1))) in
        Insn.Un (op, get_reg b off 2, get_reg b off 3)
    | 0x06 -> Insn.Load (get_reg b off 1, get_reg b off 2, get_i32 b (off + 3), get_width b off 7)
    | 0x07 -> Insn.Store (get_reg b off 1, get_i32 b (off + 2), get_reg b off 6, get_width b off 7)
    | 0x08 -> Insn.Loadg (get_reg b off 1, get_u32 b (off + 2), get_width b off 6)
    | 0x09 -> Insn.Storeg (get_u32 b (off + 1), get_reg b off 5, get_width b off 6)
    | 0x0A -> Insn.Lea (get_reg b off 1, get_i64 b (off + 2))
    | 0x0B -> Insn.Call (get_i32 b (off + 1))
    | 0x0C -> Insn.Call_ind (get_u32 b (off + 1))
    | 0x0D -> Insn.Jmp (get_i32 b (off + 1))
    | 0x0E -> Insn.Jnz (get_reg b off 1, get_i32 b (off + 2))
    | 0x0F -> Insn.Jz (get_reg b off 1, get_i32 b (off + 2))
    | 0x10 -> Insn.Ret
    | 0x11 -> Insn.Push (get_reg b off 1)
    | 0x12 -> Insn.Pop (get_reg b off 1)
    | 0x13 -> Insn.Cli
    | 0x14 -> Insn.Sti
    | 0x15 -> Insn.Pause
    | 0x16 -> Insn.Fence
    | 0x17 -> Insn.Xchg (get_reg b off 1, get_reg b off 2, get_reg b off 3)
    | 0x18 -> Insn.Hypercall (Char.code (Bytes.get b (off + 1)))
    | 0x19 -> Insn.Rdtsc (get_reg b off 1)
    | 0x1A -> Insn.Halt
    | 0x1C -> Insn.Brk
    | 0x90 -> Insn.Nop
    | opc -> err off "unknown opcode 0x%02x" opc
  in
  (insn, Insn.size insn)

(** Decode a whole range into an instruction listing (offset, insn). *)
let decode_range (b : Bytes.t) ~off ~len : (int * Insn.t) list =
  let rec go pos acc =
    if pos >= off + len then List.rev acc
    else
      let insn, size = decode b ~off:pos in
      go (pos + size) ((pos, insn) :: acc)
  in
  go off []
