(* Disassembler / pretty-printer for the virtual ISA; used by the [mvcc]
   driver's [--dump-asm] and by tests that assert on patched text. *)

let pp_insn fmt (i : Insn.t) =
  let p fmt' = Format.fprintf fmt fmt' in
  match i with
  | Insn.Mov_ri (rd, imm) -> p "mov r%d, $%d" rd imm
  | Insn.Mov_ri32 (rd, imm) -> p "mov32 r%d, $%d" rd imm
  | Insn.Mov_rr (rd, rs) -> p "mov r%d, r%d" rd rs
  | Insn.Alu (op, rd, ra, rb) -> p "%s r%d, r%d, r%d" (Insn.alu_name op) rd ra rb
  | Insn.Alu_ri (op, rd, ra, imm) -> p "%s r%d, r%d, $%d" (Insn.alu_name op) rd ra imm
  | Insn.Un (op, rd, ra) -> p "%s r%d, r%d" (Insn.unop_name op) rd ra
  | Insn.Load (rd, ra, off, w) -> p "ld%d r%d, [r%d%+d]" (w * 8) rd ra off
  | Insn.Store (ra, off, rs, w) -> p "st%d [r%d%+d], r%d" (w * 8) ra off rs
  | Insn.Loadg (rd, addr, w) -> p "ld%d r%d, [0x%x]" (w * 8) rd addr
  | Insn.Storeg (addr, rs, w) -> p "st%d [0x%x], r%d" (w * 8) addr rs
  | Insn.Lea (rd, addr) -> p "lea r%d, 0x%x" rd addr
  | Insn.Call rel -> p "call %+d" rel
  | Insn.Call_ind addr -> p "call [0x%x]" addr
  | Insn.Jmp rel -> p "jmp %+d" rel
  | Insn.Jnz (r, rel) -> p "jnz r%d, %+d" r rel
  | Insn.Jz (r, rel) -> p "jz r%d, %+d" r rel
  | Insn.Ret -> p "ret"
  | Insn.Push r -> p "push r%d" r
  | Insn.Pop r -> p "pop r%d" r
  | Insn.Cli -> p "cli"
  | Insn.Sti -> p "sti"
  | Insn.Pause -> p "pause"
  | Insn.Fence -> p "fence"
  | Insn.Xchg (rd, ra, rs) -> p "xchg r%d, [r%d], r%d" rd ra rs
  | Insn.Hypercall n -> p "hypercall %d" n
  | Insn.Rdtsc rd -> p "rdtsc r%d" rd
  | Insn.Halt -> p "halt"
  | Insn.Nop -> p "nop"
  | Insn.Brk -> p "brk"

let insn_to_string i = Format.asprintf "%a" pp_insn i

(** Disassemble [len] bytes starting at [off]; pc-relative targets are
    annotated with their absolute address. *)
let disassemble ?(resolve = fun (_ : int) -> None) (b : Bytes.t) ~off ~len : string =
  let buf = Buffer.create 256 in
  let emit pos i =
    let target =
      match i with
      | Insn.Call rel | Insn.Jmp rel -> Some (pos + 5 + rel)
      | Insn.Jnz (_, rel) | Insn.Jz (_, rel) -> Some (pos + 7 + rel)
      | _ -> None
    in
    let annot =
      match target with
      | Some t -> (
          match resolve t with
          | Some name -> Printf.sprintf "  ; -> 0x%x <%s>" t name
          | None -> Printf.sprintf "  ; -> 0x%x" t)
      | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "%08x:  %s%s\n" pos (insn_to_string i) annot)
  in
  (* decode as far as possible; patched functions may leave undecodable
     residue after an installed prologue jump *)
  let rec go pos =
    if pos < off + len then
      match Decode.decode b ~off:pos with
      | insn, size ->
          emit pos insn;
          go (pos + size)
      | exception Decode.Decode_error _ ->
          Buffer.add_string buf
            (Printf.sprintf "%08x:  .byte 0x%02x  ; undecodable (patched-over residue)\n"
               pos
               (Char.code (Bytes.get b pos)))
  in
  go off;
  Buffer.contents buf
