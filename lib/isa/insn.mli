(** The virtual instruction set.

    Instructions encode to bytes with x86-like sizes; the sizes are
    load-bearing for the multiverse runtime: a direct call is 5 bytes (the
    paper's IA-32 far-call analogy and the default inlining budget), an
    unconditional jump is 5 bytes (the prologue redirection), an indirect
    call is 6, a nop is 1. *)

type reg = int
(** Machine register number, [0..15].  [r0..r5] pass arguments and [r0]
    returns the result; [r6..r12] are callee-saved; [r13]/[r14] are the
    allocator's spill scratch pair; [r15] is the stack pointer. *)

val num_regs : int
val sp : reg
val scratch0 : reg
val scratch1 : reg

type alu =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lnot | Bnot

type t =
  | Mov_ri of reg * int  (** load a full 64-bit immediate (10 bytes) *)
  | Mov_ri32 of reg * int  (** load a sign-extended imm32 (6 bytes) *)
  | Mov_rr of reg * reg
  | Alu of alu * reg * reg * reg  (** rd <- ra op rb *)
  | Alu_ri of alu * reg * reg * int  (** rd <- ra op imm32 *)
  | Un of unop * reg * reg
  | Load of reg * reg * int * int  (** rd <- \[ra + off32\] of given width *)
  | Store of reg * int * reg * int  (** \[ra + off32\] <- rs *)
  | Loadg of reg * int * int  (** rd <- \[abs32\]; global variable access *)
  | Storeg of int * reg * int  (** \[abs32\] <- rs *)
  | Lea of reg * int  (** rd <- absolute symbol address *)
  | Call of int  (** direct call; rel32 from the end of the instruction *)
  | Call_ind of int  (** call through the function pointer at \[abs32\] *)
  | Jmp of int  (** unconditional; rel32 *)
  | Jnz of reg * int  (** branch if register non-zero *)
  | Jz of reg * int  (** branch if register zero *)
  | Ret
  | Push of reg
  | Pop of reg
  | Cli  (** disable interrupts (privileged: faults in a PV guest) *)
  | Sti  (** enable interrupts (privileged) *)
  | Pause  (** spin-loop hint *)
  | Fence  (** full memory fence *)
  | Xchg of reg * reg * reg  (** rd <- atomic exchange \[ra\] with rs *)
  | Hypercall of int  (** trap to the hypervisor (faults on bare metal) *)
  | Rdtsc of reg  (** read the cycle counter *)
  | Halt
  | Nop
  | Brk
      (** breakpoint trap byte (opcode [0x1C]): faults unless the machine
          has a breakpoint handler installed.  The SMP text_poke protocol
          writes it over the first byte of a patch range so concurrent
          harts spin instead of decoding a torn instruction. *)

(** Opcode byte (stable; the runtime recognizes [Call]/[Jmp]/[Nop]). *)
val opcode : t -> int

(** Encoded size in bytes. *)
val size : t -> int

(** Size of a direct call: the paper's 5-byte patching granule and the
    default call-site inlining budget. *)
val call_size : int

val jmp_size : int

val alu_code : alu -> int
val alu_of_code : int -> alu
val unop_code : unop -> int
val unop_of_code : int -> unop
val alu_name : alu -> string
val unop_name : unop -> string

(** Whether the instruction can be copied verbatim to another address.
    pc-relative transfers cannot; [Ret] is also excluded because inlining
    it into a call site would return from the caller. *)
val position_independent : t -> bool
