(* Reference interpreter for the IR.  It defines the semantics against which
   the whole back end (code generator, linker, machine) and the multiverse
   transformation (specialized variants must behave like the generic
   function) are differentially tested. *)

exception Halted
exception Fault of string
exception Step_limit_exceeded

let word_width = 8

(** Truncate an integer to [width] bytes, interpreting it as signed or
    unsigned.  Shared with the machine simulator via copy of semantics. *)
let truncate ~width ~signed v =
  if width >= 8 then v
  else begin
    let bits = width * 8 in
    let mask = (1 lsl bits) - 1 in
    let v = v land mask in
    if signed && v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v
  end

type layout = { l_addr : (string, int) Hashtbl.t; l_end : int }

(** Assign data addresses to globals, mirroring the linker's layout rules
    (8-byte alignment per global). *)
let layout_globals ?(base = 0x10000) (globals : Ir.global list) : layout =
  let tbl = Hashtbl.create 64 in
  let cursor = ref base in
  List.iter
    (fun (g : Ir.global) ->
      let size = max 8 (g.gl_width * g.gl_count) in
      let size = (size + 7) / 8 * 8 in
      Hashtbl.replace tbl g.gl_name !cursor;
      cursor := !cursor + size)
    globals;
  { l_addr = tbl; l_end = !cursor }

type t = {
  mem : Bytes.t;
  globals : (string, Ir.global * int) Hashtbl.t;  (** name -> (info, address) *)
  fns : (string, Ir.fn) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;
  addr_fn : (int, string) Hashtbl.t;
  mutable irq_enabled : bool;
  mutable hypercalls : int;
  mutable steps : int;
  mutable step_limit : int;
  heap_base : int;
  stack_base : int;
}

let fn_addr_base = 0x1000

(** Build an interpreter for a set of translation units.  Extern references
    must be resolved by a definition in some unit. *)
let create ?(mem_size = 1 lsl 21) ?(step_limit = 100_000_000) (progs : Ir.prog list) : t =
  let all_globals =
    List.concat_map (fun (p : Ir.prog) -> p.p_globals) progs
  in
  let all_fns = List.concat_map (fun (p : Ir.prog) -> p.p_fns) progs in
  let layout = layout_globals all_globals in
  let t =
    {
      mem = Bytes.make mem_size '\000';
      globals = Hashtbl.create 64;
      fns = Hashtbl.create 64;
      fn_addr = Hashtbl.create 64;
      addr_fn = Hashtbl.create 64;
      irq_enabled = true;
      hypercalls = 0;
      steps = 0;
      step_limit;
      heap_base = (layout.l_end + 4095) / 4096 * 4096;
      stack_base = mem_size - 8;
    }
  in
  List.iter
    (fun (g : Ir.global) ->
      Hashtbl.replace t.globals g.gl_name (g, Hashtbl.find layout.l_addr g.gl_name))
    all_globals;
  List.iteri
    (fun i (fn : Ir.fn) ->
      let addr = fn_addr_base + (i * 16) in
      Hashtbl.replace t.fns fn.fn_name fn;
      Hashtbl.replace t.fn_addr fn.fn_name addr;
      Hashtbl.replace t.addr_fn addr fn.fn_name)
    all_fns;
  (* check extern resolution *)
  List.iter
    (fun (p : Ir.prog) ->
      List.iter
        (fun (name, _mv) ->
          if not (Hashtbl.mem t.fns name) then
            raise (Fault (Printf.sprintf "unresolved extern function %s" name)))
        p.p_extern_fns;
      List.iter
        (fun (g : Ir.global) ->
          if not (Hashtbl.mem t.globals g.gl_name) then
            raise (Fault (Printf.sprintf "unresolved extern global %s" g.gl_name)))
        p.p_extern_globals)
    progs;
  (* initialize globals *)
  List.iter
    (fun (g : Ir.global) ->
      let _, addr = Hashtbl.find t.globals g.gl_name in
      (match g.gl_init with
      | Some v -> Bytes.set_int64_le t.mem addr (Int64.of_int v)
      | None -> ());
      match g.gl_fn_init with
      | Some f ->
          let faddr =
            match Hashtbl.find_opt t.fn_addr f with
            | Some a -> a
            | None -> raise (Fault (Printf.sprintf "fnptr init: unknown function %s" f))
          in
          Bytes.set_int64_le t.mem addr (Int64.of_int faddr)
      | None -> ())
    all_globals;
  t

let load t addr width =
  if addr < 0 || addr + width > Bytes.length t.mem then
    raise (Fault (Printf.sprintf "load out of bounds: 0x%x" addr));
  match width with
  | 1 -> Char.code (Bytes.get t.mem addr)
  | 2 -> Bytes.get_uint16_le t.mem addr
  | 4 -> Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le t.mem addr)
  | w -> raise (Fault (Printf.sprintf "bad load width %d" w))

let store t addr v width =
  if addr < 0 || addr + width > Bytes.length t.mem then
    raise (Fault (Printf.sprintf "store out of bounds: 0x%x" addr));
  match width with
  | 1 -> Bytes.set t.mem addr (Char.chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_le t.mem addr (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.mem addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.mem addr (Int64.of_int v)
  | w -> raise (Fault (Printf.sprintf "bad store width %d" w))

let global_addr t name =
  match Hashtbl.find_opt t.globals name with
  | Some (_, addr) -> addr
  | None -> raise (Fault (Printf.sprintf "unknown global %s" name))

(* Sub-word globals are zero-extended on load, matching the machine's
   [Loadg] (the ISA has no sign-extending loads); full-width (8-byte)
   globals carry negative values unchanged. *)
let read_global t name =
  match Hashtbl.find_opt t.globals name with
  | Some (g, addr) ->
      truncate ~width:g.gl_width ~signed:false (load t addr g.gl_width)
  | None -> raise (Fault (Printf.sprintf "unknown global %s" name))

let write_global t name v =
  match Hashtbl.find_opt t.globals name with
  | Some (g, addr) -> store t addr v g.gl_width
  | None -> raise (Fault (Printf.sprintf "unknown global %s" name))

let symbol_addr t name =
  match Hashtbl.find_opt t.fn_addr name with
  | Some a -> a
  | None -> global_addr t name

let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Ir.Mod -> if b = 0 then raise (Fault "modulo by zero") else a mod b
  | Ir.Band -> a land b
  | Ir.Bor -> a lor b
  | Ir.Bxor -> a lxor b
  | Ir.Shl -> a lsl (b land 63)
  | Ir.Shr -> a asr (b land 63)
  | Ir.Eq -> if a = b then 1 else 0
  | Ir.Ne -> if a <> b then 1 else 0
  | Ir.Lt -> if a < b then 1 else 0
  | Ir.Le -> if a <= b then 1 else 0
  | Ir.Gt -> if a > b then 1 else 0
  | Ir.Ge -> if a >= b then 1 else 0

let eval_unop op a =
  match op with
  | Ir.Neg -> -a
  | Ir.Lnot -> if a = 0 then 1 else 0
  | Ir.Bnot -> lnot a

let rec call t name (args : int list) : int =
  let fn =
    match Hashtbl.find_opt t.fns name with
    | Some fn -> fn
    | None -> raise (Fault (Printf.sprintf "call to unknown function %s" name))
  in
  let regs = Array.make (max 1 fn.fn_nregs) 0 in
  List.iteri
    (fun i r -> if i < List.length args then regs.(r) <- List.nth args i)
    fn.fn_params;
  let operand = function Ir.Reg r -> regs.(r) | Ir.Imm n -> n in
  let rec run_block (b : Ir.block) : int =
    (* block entry counts as a step so empty loops still hit the limit *)
    t.steps <- t.steps + 1;
    if t.steps > t.step_limit then raise Step_limit_exceeded;
    List.iter
      (fun i ->
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then raise Step_limit_exceeded;
        match i with
        | Ir.Imov (d, s) -> regs.(d) <- operand s
        | Ir.Iun (op, d, a) -> regs.(d) <- eval_unop op (operand a)
        | Ir.Ibin (op, d, a, b) -> regs.(d) <- eval_binop op (operand a) (operand b)
        | Ir.Iload (d, a, w) -> regs.(d) <- truncate ~width:w ~signed:false (load t (operand a) w)
        | Ir.Istore (a, v, w) -> store t (operand a) (operand v) w
        | Ir.Iloadg (d, s, _) -> regs.(d) <- read_global t s
        | Ir.Istoreg (s, v, _) -> write_global t s (operand v)
        | Ir.Iaddr (d, s) -> regs.(d) <- symbol_addr t s
        | Ir.Icall (d, callee, args) ->
            let v = call t callee (List.map operand args) in
            Option.iter (fun d -> regs.(d) <- v) d
        | Ir.Icallp (d, sym, args) ->
            let target_addr = read_global t sym in
            let callee =
              match Hashtbl.find_opt t.addr_fn target_addr with
              | Some f -> f
              | None ->
                  raise
                    (Fault (Printf.sprintf "indirect call through %s to bad address 0x%x" sym target_addr))
            in
            let v = call t callee (List.map operand args) in
            Option.iter (fun d -> regs.(d) <- v) d
        | Ir.Iintr (d, intr, args) ->
            let v = intrinsic t intr (List.map operand args) in
            Option.iter (fun d -> regs.(d) <- v) d
        | Ir.Isafepoint _ -> ())
      b.b_instrs;
    match b.b_term with
    | Ir.Tjmp id -> run_block (Ir.find_block fn id)
    | Ir.Tbr (c, bt, bf) ->
        run_block (Ir.find_block fn (if operand c <> 0 then bt else bf))
    | Ir.Tret None -> 0
    | Ir.Tret (Some v) -> operand v
  in
  run_block (Ir.entry_block fn)

and intrinsic t (i : Minic.Ast.intrinsic) args =
  match i, args with
  | Minic.Ast.Icli, [] ->
      t.irq_enabled <- false;
      0
  | Minic.Ast.Isti, [] ->
      t.irq_enabled <- true;
      0
  | Minic.Ast.Ipause, [] | Minic.Ast.Ifence, [] -> 0
  | Minic.Ast.Iatomic_xchg, [ addr; v ] ->
      let old = load t addr 8 in
      store t addr v 8;
      old
  | Minic.Ast.Ihypercall, [ _n ] ->
      t.hypercalls <- t.hypercalls + 1;
      0
  | Minic.Ast.Irdtsc, [] -> t.steps
  | Minic.Ast.Ihalt, [] -> raise Halted
  | _ -> raise (Fault "bad intrinsic arity")

(** Run [name] with [args]; returns its result.  [Halted] from [__halt] is
    converted into a normal 0 return. *)
let run t name args = try call t name args with Halted -> 0
