(* Three-address intermediate representation with an explicit control-flow
   graph.  This plays the role of GIMPLE in the paper's GCC plugin: multiverse
   variant generation clones IR functions and replaces configuration-switch
   loads ([Iloadg]) by constants before the optimizer runs (Section 3). *)

type reg = int

type operand = Reg of reg | Imm of int

(** Binary operators at the IR level.  Short-circuit [&&]/[||] have been
    lowered to control flow by this point. *)
type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lnot | Bnot

type intrinsic = Minic.Ast.intrinsic

type instr =
  | Imov of reg * operand
  | Iun of unop * reg * operand
  | Ibin of binop * reg * operand * operand
  | Iload of reg * operand * int  (** load [width] bytes from address *)
  | Istore of operand * operand * int  (** [Istore (addr, value, width)] *)
  | Iloadg of reg * string * int  (** load a global by symbol; the
                                      specialization target *)
  | Istoreg of string * operand * int
  | Iaddr of reg * string  (** address of a global or function symbol *)
  | Icall of reg option * string * operand list
  | Icallp of reg option * string * operand list
      (** indirect call through the fn-pointer *global* named by the symbol *)
  | Iintr of reg option * intrinsic * operand list
  | Isafepoint of int
      (** stable OSR safepoint id; inserted after every call in a
          multiversed body {e before} variant cloning, so the generic and
          each clone agree on which program point the id names *)

type terminator =
  | Tjmp of int
  | Tbr of operand * int * int  (** branch if operand <> 0 *)
  | Tret of operand option

type block = { b_id : int; mutable b_instrs : instr list; mutable b_term : terminator }

type calling_convention = Standard | Saveall

type fn = {
  fn_name : string;
  fn_params : reg list;
  mutable fn_blocks : block list;  (** entry block first *)
  mutable fn_nregs : int;
  fn_noinline : bool;
  fn_conv : calling_convention;
  fn_multiverse : bool;
  fn_bind : string list option;  (** partial-specialization restriction *)
}

type global = {
  gl_name : string;
  gl_width : int;  (** element width in bytes *)
  gl_signed : bool;
  gl_count : int;  (** 1 for scalars, [n] for arrays *)
  gl_init : int option;
  gl_fn_init : string option;
  gl_multiverse : bool;
  gl_values : int list option;
  gl_is_fnptr : bool;
  gl_enum_items : int list option;  (** values of the enum type, if any *)
}

(** One translation unit after lowering. *)
type prog = {
  p_globals : global list;
  p_fns : fn list;
  p_extern_fns : (string * bool) list;  (** name, declared multiverse *)
  p_extern_globals : global list;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let entry_block fn =
  match fn.fn_blocks with
  | b :: _ -> b
  | [] -> invalid_arg (fn.fn_name ^ ": function with no blocks")

let find_block fn id =
  match List.find_opt (fun b -> b.b_id = id) fn.fn_blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "%s: no block %d" fn.fn_name id)

let successors = function
  | Tjmp t -> [ t ]
  | Tbr (_, t, f) -> [ t; f ]
  | Tret _ -> []

(** Registers read by an instruction. *)
let instr_uses = function
  | Imov (_, src) -> [ src ]
  | Iun (_, _, a) -> [ a ]
  | Ibin (_, _, a, b) -> [ a; b ]
  | Iload (_, addr, _) -> [ addr ]
  | Istore (addr, v, _) -> [ addr; v ]
  | Iloadg _ -> []
  | Istoreg (_, v, _) -> [ v ]
  | Iaddr _ -> []
  | Icall (_, _, args) | Icallp (_, _, args) | Iintr (_, _, args) -> args
  | Isafepoint _ -> []

let instr_def = function
  | Imov (d, _) | Iun (_, d, _) | Ibin (_, d, _, _) | Iload (d, _, _)
  | Iloadg (d, _, _) | Iaddr (d, _) -> Some d
  | Icall (d, _, _) | Icallp (d, _, _) | Iintr (d, _, _) -> d
  | Istore _ | Istoreg _ | Isafepoint _ -> None

(** Does the instruction have an effect beyond writing its destination
    register?  Such instructions must never be removed by DCE. *)
let instr_has_side_effect = function
  | Istore _ | Istoreg _ | Icall _ | Icallp _ | Iintr _ -> true
  (* a safepoint defines no register, so it must count as side-effecting
     or DCE would delete the pinned program point *)
  | Isafepoint _ -> true
  | Imov _ | Iun _ | Ibin _ | Iload _ | Iloadg _ | Iaddr _ -> false

let map_instr_operands f = function
  | Imov (d, s) -> Imov (d, f s)
  | Iun (op, d, a) -> Iun (op, d, f a)
  | Ibin (op, d, a, b) -> Ibin (op, d, f a, f b)
  | Iload (d, a, w) -> Iload (d, f a, w)
  | Istore (a, v, w) -> Istore (f a, f v, w)
  | Iloadg (d, s, w) -> Iloadg (d, s, w)
  | Istoreg (s, v, w) -> Istoreg (s, f v, w)
  | Iaddr (d, s) -> Iaddr (d, s)
  | Icall (d, s, args) -> Icall (d, s, List.map f args)
  | Icallp (d, s, args) -> Icallp (d, s, List.map f args)
  | Iintr (d, i, args) -> Iintr (d, i, List.map f args)
  | Isafepoint id -> Isafepoint id

(** Global and function symbols referenced by a function body (reads, writes,
    address-taking, direct and indirect calls). *)
let referenced_symbols fn =
  let syms = Hashtbl.create 16 in
  let add s = Hashtbl.replace syms s () in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Iloadg (_, s, _) | Istoreg (s, _, _) | Iaddr (_, s)
          | Icall (_, s, _) | Icallp (_, s, _) -> add s
          | Imov _ | Iun _ | Ibin _ | Iload _ | Istore _ | Iintr _
          | Isafepoint _ -> ())
        b.b_instrs)
    fn.fn_blocks;
  Hashtbl.fold (fun s () acc -> s :: acc) syms []

(** Globals whose value is *read* ([Iloadg]) by the function — the set that
    determines the specialization cross product in Section 3. *)
let read_globals fn =
  let syms = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (function
          | Iloadg (_, s, _) -> Hashtbl.replace syms s ()
          | Imov _ | Iun _ | Ibin _ | Iload _ | Istore _ | Istoreg _ | Iaddr _
          | Icall _ | Icallp _ | Iintr _ | Isafepoint _ -> ())
        b.b_instrs)
    fn.fn_blocks;
  Hashtbl.fold (fun s () acc -> s :: acc) syms []

(** Fn-pointer globals called indirectly ([Icallp]) by the function. *)
let called_fnptrs fn =
  let syms = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (function
          | Icallp (_, s, _) -> Hashtbl.replace syms s ()
          | Imov _ | Iun _ | Ibin _ | Iload _ | Istore _ | Iloadg _ | Istoreg _
          | Iaddr _ | Icall _ | Iintr _ | Isafepoint _ -> ())
        b.b_instrs)
    fn.fn_blocks;
  Hashtbl.fold (fun s () acc -> s :: acc) syms []

(* ------------------------------------------------------------------ *)
(* Deep copy (variant generation clones functions before rewriting)    *)
(* ------------------------------------------------------------------ *)

let copy_block b = { b with b_instrs = b.b_instrs }

let copy_fn fn = { fn with fn_blocks = List.map copy_block fn.fn_blocks }

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm n -> Format.fprintf fmt "$%d" n

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "seteq" | Ne -> "setne" | Lt -> "setlt" | Le -> "setle"
  | Gt -> "setgt" | Ge -> "setge"

let unop_name = function Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot"

let pp_instr fmt i =
  let pp_dst fmt = function
    | Some d -> Format.fprintf fmt "r%d = " d
    | None -> ()
  in
  let pp_ops fmt ops =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      pp_operand fmt ops
  in
  match i with
  | Imov (d, s) -> Format.fprintf fmt "r%d = mov %a" d pp_operand s
  | Iun (op, d, a) -> Format.fprintf fmt "r%d = %s %a" d (unop_name op) pp_operand a
  | Ibin (op, d, a, b) ->
      Format.fprintf fmt "r%d = %s %a, %a" d (binop_name op) pp_operand a pp_operand b
  | Iload (d, a, w) -> Format.fprintf fmt "r%d = load%d [%a]" d (w * 8) pp_operand a
  | Istore (a, v, w) -> Format.fprintf fmt "store%d [%a], %a" (w * 8) pp_operand a pp_operand v
  | Iloadg (d, s, w) -> Format.fprintf fmt "r%d = loadg%d @%s" d (w * 8) s
  | Istoreg (s, v, w) -> Format.fprintf fmt "storeg%d @%s, %a" (w * 8) s pp_operand v
  | Iaddr (d, s) -> Format.fprintf fmt "r%d = addr @%s" d s
  | Icall (d, s, args) -> Format.fprintf fmt "%acall @%s(%a)" pp_dst d s pp_ops args
  | Icallp (d, s, args) -> Format.fprintf fmt "%acallp [@%s](%a)" pp_dst d s pp_ops args
  | Iintr (d, intr, args) ->
      Format.fprintf fmt "%aintr %s(%a)" pp_dst d (Minic.Ast.intrinsic_name intr) pp_ops args
  | Isafepoint id -> Format.fprintf fmt "safept %d" id

let pp_terminator fmt = function
  | Tjmp t -> Format.fprintf fmt "jmp .L%d" t
  | Tbr (c, t, f) -> Format.fprintf fmt "br %a, .L%d, .L%d" pp_operand c t f
  | Tret None -> Format.pp_print_string fmt "ret"
  | Tret (Some v) -> Format.fprintf fmt "ret %a" pp_operand v

let pp_fn fmt fn =
  Format.fprintf fmt "@[<v>fn %s(%a):" fn.fn_name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt r -> Format.fprintf fmt "r%d" r))
    fn.fn_params;
  List.iter
    (fun b ->
      Format.fprintf fmt "@,.L%d:" b.b_id;
      List.iter (fun i -> Format.fprintf fmt "@,  %a" pp_instr i) b.b_instrs;
      Format.fprintf fmt "@,  %a" pp_terminator b.b_term)
    fn.fn_blocks;
  Format.fprintf fmt "@]"

let fn_to_string fn = Format.asprintf "%a" pp_fn fn
