(* The static linker.

   Sections with the same name are concatenated across objects — this is how
   the multiverse descriptor arrays from separate translation units become
   one contiguous array in the image (Section 5 of the paper).  Relocations
   are ELF-style: absolute fields receive [S + A]; pc-relative fields
   receive [S + A - P]. *)

module Objfile = Mv_codegen.Objfile

exception Link_error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Link_error m)) fmt

let text_base = 0x1000

let align_up v a = (v + a - 1) / a * a

let section_align = function
  | Objfile.Text -> 16
  | Objfile.Data -> 16
  | Objfile.Mv_variables | Objfile.Mv_functions | Objfile.Mv_callsites
  | Objfile.Mv_framemaps -> 8

(** Default capacity of the runtime-growable variant-text region. *)
let default_vtext_size = 1 lsl 19

(** Link objects into a runnable image. *)
let link ?(mem_size = 1 lsl 22) ?(vtext_size = default_vtext_size)
    (objs : Objfile.t list) : Image.t =
  if objs = [] then errf "no input objects";
  (* 1. place sections: all text first, then data, then descriptor sections,
        each segment starting on a page boundary *)
  let cursor = ref text_base in
  let placements = ref [] in
  let section_ranges = ref [] in
  let place_section sec =
    let seg_base = align_up !cursor Image.page_size in
    cursor := seg_base;
    List.iter
      (fun obj ->
        let base = align_up !cursor (section_align sec) in
        placements := ((obj.Objfile.o_name, sec), base) :: !placements;
        cursor := base + Objfile.section_size obj sec)
      objs;
    section_ranges :=
      (sec, { Image.sr_base = seg_base; sr_size = !cursor - seg_base }) :: !section_ranges
  in
  List.iter place_section Objfile.all_sections;
  (* reserve the variant-text region: page-aligned, after every static
     section, so the image can gain code after load *)
  let vtext_base = align_up !cursor Image.page_size in
  let vtext_size = align_up (max 0 vtext_size) Image.page_size in
  cursor := vtext_base + vtext_size;
  let end_of_sections = !cursor in
  if end_of_sections >= mem_size - 65536 then
    errf "image does not fit in %d bytes" mem_size;
  let base_of obj sec =
    match List.assoc_opt (obj.Objfile.o_name, sec) !placements with
    | Some b -> b
    | None -> errf "internal: unplaced section %s of %s" (Objfile.section_name sec) obj.o_name
  in
  (* 2. copy section contents *)
  let mem = Bytes.make mem_size '\000' in
  List.iter
    (fun obj ->
      List.iter
        (fun sec ->
          let contents = Objfile.section_contents obj sec in
          Bytes.blit contents 0 mem (base_of obj sec) (Bytes.length contents))
        Objfile.all_sections)
    objs;
  (* 3. global symbol table *)
  let symbols = Hashtbl.create 256 in
  let symbol_sizes = Hashtbl.create 256 in
  List.iter
    (fun obj ->
      List.iter
        (fun (s : Objfile.symbol) ->
          if Hashtbl.mem symbols s.s_name then
            errf "duplicate symbol %s (in %s)" s.s_name obj.Objfile.o_name;
          Hashtbl.replace symbols s.s_name (base_of obj s.s_section + s.s_offset);
          Hashtbl.replace symbol_sizes s.s_name s.s_size)
        (Objfile.symbols obj))
    objs;
  (* 4. apply relocations *)
  List.iter
    (fun obj ->
      List.iter
        (fun (r : Objfile.reloc) ->
          let p = base_of obj r.r_section + r.r_offset in
          let s =
            match Hashtbl.find_opt symbols r.r_sym with
            | Some a -> a
            | None -> errf "undefined symbol %s (referenced from %s)" r.r_sym obj.o_name
          in
          match r.r_kind with
          | Objfile.Abs64 -> Bytes.set_int64_le mem p (Int64.of_int (s + r.r_addend))
          | Objfile.Abs32 ->
              let v = s + r.r_addend in
              if v < 0 || v > 0xFFFF_FFFF then errf "Abs32 overflow for %s" r.r_sym;
              Bytes.set_int32_le mem p (Int32.of_int v)
          | Objfile.Rel32 ->
              let v = s + r.r_addend - p in
              if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
                errf "Rel32 overflow for %s" r.r_sym;
              Bytes.set_int32_le mem p (Int32.of_int v))
        (Objfile.relocs obj))
    objs;
  (* 5. page protections: text r-x, everything else rw- *)
  let npages = (mem_size + Image.page_size - 1) / Image.page_size in
  let prot = Array.make npages Image.prot_rw in
  let text_range = List.assoc Objfile.Text !section_ranges in
  let first = text_range.Image.sr_base / Image.page_size in
  let last =
    (text_range.Image.sr_base + max 0 (text_range.Image.sr_size - 1)) / Image.page_size
  in
  for page = first to last do
    prot.(page) <- Image.prot_rx
  done;
  (* the variant-text region is executable from the start; the runtime
     opens mprotect windows to write bodies into it, exactly like text *)
  if vtext_size > 0 then begin
    let first = vtext_base / Image.page_size in
    let last = (vtext_base + vtext_size - 1) / Image.page_size in
    for page = first to last do
      prot.(page) <- Image.prot_rx
    done
  end;
  let heap_base = align_up end_of_sections Image.page_size in
  {
    Image.mem;
    prot;
    symbols;
    symbol_sizes;
    sections = List.rev !section_ranges;
    text = text_range;
    vtext = { Image.sr_base = vtext_base; sr_size = vtext_size };
    heap_base;
    stack_base = mem_size - 16;
  }
