(** The process image: flat memory with per-page protection flags, the
    symbol table, and the section map.

    The text segment is mapped read+execute.  Any write to a protected page
    raises {!Segfault} — the multiverse runtime must open a window with
    {!mprotect} around each patch and restore protection afterwards, as the
    paper requires (Section 7.2). *)

module Objfile = Mv_codegen.Objfile

exception Segfault of string

type protection = { p_read : bool; p_write : bool; p_exec : bool }

val prot_rw : protection
val prot_rx : protection
val prot_rwx : protection
val prot_none : protection

val page_size : int  (** 4096 *)

type section_range = { sr_base : int; sr_size : int }

type t = {
  mem : Bytes.t;
  prot : protection array;  (** one entry per page *)
  symbols : (string, int) Hashtbl.t;
  symbol_sizes : (string, int) Hashtbl.t;
  sections : (Objfile.section * section_range) list;
  text : section_range;
  vtext : section_range;
      (** reserved, initially empty variant-text region the runtime may
          fill with materialized variant bodies after load; pages are
          mapped r-x like the static text segment *)
  heap_base : int;  (** first page after all sections *)
  stack_base : int;  (** initial stack pointer (grows down) *)
}

val size : t -> int

(** {1 Protection-checked access} *)

val read : t -> int -> int -> int
(** [read t addr width] *)

val write : t -> int -> int -> int -> unit
(** [write t addr v width] *)

val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit

(** Fail unless the range is executable. *)
val check_exec : t -> int -> int -> unit

val prot_at : t -> int -> protection
val mprotect : t -> addr:int -> len:int -> protection -> unit

(** {1 Symbols and sections} *)

(** Absolute address of a symbol; raises {!Segfault} when undefined. *)
val symbol : t -> string -> int

val symbol_opt : t -> string -> int option
val symbol_size : t -> string -> int

(** Symbol whose [base, base+size) range contains the address. *)
val symbol_at : t -> int -> string option

(** [add_symbol t name ~addr ~size] registers (or moves) a symbol after
    load — how a lazily materialized variant body joins the symbol
    table so profilers and {!symbol_at} can attribute its addresses. *)
val add_symbol : t -> string -> addr:int -> size:int -> unit

(** Remove a runtime-registered symbol (used when a materialized variant
    is evicted from the variant-text region). *)
val remove_symbol : t -> string -> unit

val section_range : t -> Objfile.section -> section_range option

(** Is the address inside executable code — the static text segment or
    the runtime-growable variant-text region ({!t.vtext})?  Live
    activation scanners use this, so activations inside materialized
    variants are visible to the safe-commit machinery. *)
val in_text : t -> int -> bool
