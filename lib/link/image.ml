(* The process image: flat memory with per-page protection flags.

   The text segment is mapped read+execute; the multiverse runtime must use
   [mprotect] to open a write window around a patch — writing to a protected
   page raises [Segfault], and the test suite checks that the runtime
   restores protection afterwards (Section 7.2 of the paper: "multiverse
   makes the required memory locations writable only during the patching
   process"). *)

module Objfile = Mv_codegen.Objfile

exception Segfault of string

type protection = { p_read : bool; p_write : bool; p_exec : bool }

let prot_rw = { p_read = true; p_write = true; p_exec = false }
let prot_rx = { p_read = true; p_write = false; p_exec = true }
let prot_rwx = { p_read = true; p_write = true; p_exec = true }
let prot_none = { p_read = false; p_write = false; p_exec = false }

let page_size = 4096

type section_range = { sr_base : int; sr_size : int }

type t = {
  mem : Bytes.t;
  prot : protection array;
  symbols : (string, int) Hashtbl.t;  (** symbol name -> absolute address *)
  symbol_sizes : (string, int) Hashtbl.t;
  sections : (Objfile.section * section_range) list;
  text : section_range;
  vtext : section_range;
      (** reserved variant-text region: code the image can gain after load *)
  heap_base : int;
  stack_base : int;  (** initial stack pointer (grows down) *)
}

let size t = Bytes.length t.mem

let page_of addr = addr / page_size

let in_bounds t addr len = addr >= 0 && len >= 0 && addr + len <= Bytes.length t.mem

let fault fmt = Printf.ksprintf (fun m -> raise (Segfault m)) fmt

let check t addr len access =
  if not (in_bounds t addr len) then
    fault "%s out of bounds at 0x%x (+%d)" access addr len

let prot_at t addr = t.prot.(page_of addr)

(** Check that every page covering [addr, addr+len) satisfies [p]. *)
let check_prot t addr len p access =
  check t addr len access;
  let first = page_of addr and last = page_of (addr + max 0 (len - 1)) in
  for page = first to last do
    let cur = t.prot.(page) in
    let ok =
      ((not p.p_read) || cur.p_read)
      && ((not p.p_write) || cur.p_write)
      && ((not p.p_exec) || cur.p_exec)
    in
    if not ok then fault "%s violation at 0x%x (page 0x%x)" access addr (page * page_size)
  done

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)
(* ------------------------------------------------------------------ *)

let read t addr width =
  check_prot t addr width { prot_none with p_read = true } "read";
  match width with
  | 1 -> Char.code (Bytes.get t.mem addr)
  | 2 -> Bytes.get_uint16_le t.mem addr
  | 4 -> Int32.to_int (Bytes.get_int32_le t.mem addr) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le t.mem addr)
  | w -> fault "bad read width %d" w

let write t addr v width =
  check_prot t addr width { prot_none with p_write = true } "write";
  match width with
  | 1 -> Bytes.set t.mem addr (Char.chr (v land 0xFF))
  | 2 -> Bytes.set_uint16_le t.mem addr (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.mem addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.mem addr (Int64.of_int v)
  | w -> fault "bad write width %d" w

(** Raw byte-range accessors for the runtime library (still protection
    checked; the runtime must mprotect first, like a real process would). *)
let read_bytes t addr len =
  check_prot t addr len { prot_none with p_read = true } "read";
  Bytes.sub t.mem addr len

let write_bytes t addr (b : bytes) =
  check_prot t addr (Bytes.length b) { prot_none with p_write = true } "write";
  Bytes.blit b 0 t.mem addr (Bytes.length b)

(** Fetch for execution: requires exec permission. *)
let check_exec t addr len = check_prot t addr len { prot_none with p_exec = true } "exec"

(* ------------------------------------------------------------------ *)
(* Protection management                                               *)
(* ------------------------------------------------------------------ *)

let mprotect t ~addr ~len p =
  check t addr len "mprotect";
  let first = page_of addr and last = page_of (addr + max 0 (len - 1)) in
  for page = first to last do
    t.prot.(page) <- p
  done

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

let symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some addr -> addr
  | None -> fault "undefined symbol %s" name

let symbol_opt t name = Hashtbl.find_opt t.symbols name

let symbol_size t name = Option.value ~default:0 (Hashtbl.find_opt t.symbol_sizes name)

(** Reverse lookup: the symbol whose [addr, addr+size) range contains the
    address, preferring the closest preceding symbol. *)
let symbol_at t addr =
  Hashtbl.fold
    (fun name base best ->
      let size = symbol_size t name in
      if addr >= base && (size = 0 || addr < base + size) then
        match best with
        | Some (_, best_base) when best_base >= base -> best
        | _ -> Some (name, base)
      else best)
    t.symbols None
  |> Option.map fst

(** Register (or move) a symbol at runtime — how materialized variant
    bodies join the symbol table after load. *)
let add_symbol t name ~addr ~size =
  Hashtbl.replace t.symbols name addr;
  Hashtbl.replace t.symbol_sizes name size

(** Drop a runtime-registered symbol (variant eviction). *)
let remove_symbol t name =
  Hashtbl.remove t.symbols name;
  Hashtbl.remove t.symbol_sizes name

let section_range t sec = List.assoc_opt sec t.sections

let in_range (r : section_range) addr = addr >= r.sr_base && addr < r.sr_base + r.sr_size

(* The variant-text region counts as text: live-activation scanners must
   see activations inside materialized variants. *)
let in_text t addr = in_range t.text addr || in_range t.vtext addr
