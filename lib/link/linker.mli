(** The static linker.

    Same-named sections of all input objects are concatenated — this is how
    the multiverse descriptor arrays from separate translation units become
    one contiguous array in the image (paper Section 5).  Relocations are
    ELF-style: absolute fields receive [S + A], pc-relative fields
    [S + A - P]. *)

module Objfile = Mv_codegen.Objfile

exception Link_error of string

(** Base address of the text segment (0x1000). *)
val text_base : int

val align_up : int -> int -> int

(** Default capacity of the variant-text region (512 KiB). *)
val default_vtext_size : int

(** Link the objects into a runnable image of [mem_size] bytes (default
    4 MiB): place sections, build the global symbol table, apply
    relocations, and set page protections (text r-x, the rest rw-).
    [vtext_size] bytes (default {!default_vtext_size}, rounded up to a
    page) are reserved after the static sections as the r-x variant-text
    region lazily materialized variant bodies are linked into. *)
val link : ?mem_size:int -> ?vtext_size:int -> Objfile.t list -> Image.t
