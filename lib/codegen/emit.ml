(* Instruction selection and emission: IR functions to encoded machine code.

   The emitter also records the text offset of every call instruction and the
   symbol it targets.  The multiverse descriptor generator turns the sites
   that target multiversed functions (or go through multiversed function
   pointers) into [multiverse.callsites] records — the compiler-provided
   call-site knowledge that distinguishes multiverse from the kernel's ad-hoc
   inline-assembler mechanisms (Section 3). *)

module Ir = Mv_ir.Ir
module Insn = Mv_isa.Insn

exception Error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type callsite = { cs_insn_offset : int; cs_callee : string; cs_indirect : bool }

type safepoint = {
  sp_id : int;  (** stable id shared by generic and variant bodies *)
  sp_offset : int;
      (** fragment offset of the poll pc: the end of the call instruction,
          i.e. the return address a polling activation is parked at *)
  sp_live : (int * Regalloc.assignment) list;
      (** every IR vreg live across the safepoint and where its value
          resides (callee-saved register or sp-relative spill slot); the
          call's own result vreg is excluded — its value is still in r0 on
          both sides of a transfer *)
}

type fragment = {
  fr_name : string;
  fr_code : bytes;
  fr_relocs : Objfile.reloc list;  (** offsets relative to the fragment *)
  fr_callsites : callsite list;  (** offsets relative to the fragment *)
  fr_safepoints : safepoint list;  (** in fragment order *)
  fr_frame_bytes : int;  (** spill area size ([sub sp] amount) *)
  fr_saves : int list;  (** machine registers pushed in the prologue, in order *)
}

(* Pre-layout instruction templates: concrete instructions, or placeholders
   whose operand is fixed up after layout (branch targets) or by the linker
   (symbol references). *)
type tmpl =
  | T of Insn.t
  | Tcall_sym of string
  | Tcallp_sym of string
  | Tloadg_sym of int * string * int  (* rd, sym, width *)
  | Tstoreg_sym of string * int * int  (* sym, rs, width *)
  | Tlea_sym of int * string
  | Tjmp_b of int  (* block id *)
  | Tjnz_b of int * int
  | Tjz_b of int * int
  | Tsafepoint of int  (* zero-size marker: records the poll pc *)

let tmpl_size = function
  | T i -> Insn.size i
  | Tsafepoint _ -> 0
  | Tcall_sym _ -> Insn.size (Insn.Call 0)
  | Tcallp_sym _ -> Insn.size (Insn.Call_ind 0)
  | Tloadg_sym _ -> Insn.size (Insn.Loadg (0, 0, 8))
  | Tstoreg_sym _ -> Insn.size (Insn.Storeg (0, 0, 8))
  | Tlea_sym _ -> Insn.size (Insn.Lea (0, 0))
  | Tjmp_b _ -> Insn.size (Insn.Jmp 0)
  | Tjnz_b _ -> Insn.size (Insn.Jnz (0, 0))
  | Tjz_b _ -> Insn.size (Insn.Jz (0, 0))

let alu_of_binop = function
  | Ir.Add -> Insn.Add | Ir.Sub -> Insn.Sub | Ir.Mul -> Insn.Mul
  | Ir.Div -> Insn.Div | Ir.Mod -> Insn.Mod | Ir.Band -> Insn.Band
  | Ir.Bor -> Insn.Bor | Ir.Bxor -> Insn.Bxor | Ir.Shl -> Insn.Shl
  | Ir.Shr -> Insn.Shr | Ir.Eq -> Insn.Eq | Ir.Ne -> Insn.Ne
  | Ir.Lt -> Insn.Lt | Ir.Le -> Insn.Le | Ir.Gt -> Insn.Gt | Ir.Ge -> Insn.Ge

let unop_of_ir = function
  | Ir.Neg -> Insn.Neg
  | Ir.Lnot -> Insn.Lnot
  | Ir.Bnot -> Insn.Bnot

let commutative = function
  | Ir.Add | Ir.Mul | Ir.Band | Ir.Bor | Ir.Bxor | Ir.Eq | Ir.Ne -> true
  | Ir.Sub | Ir.Div | Ir.Mod | Ir.Shl | Ir.Shr | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge -> false

let fits32 v = v >= Int32.to_int Int32.min_int && v <= Int32.to_int Int32.max_int

(* pick the short move-immediate encoding whenever the value fits *)
let mov_imm rd n = if fits32 n then Insn.Mov_ri32 (rd, n) else Insn.Mov_ri (rd, n)

type st = {
  ra : Regalloc.t;
  mutable out : tmpl list;  (* reverse order *)
  frame_bytes : int;
  saves : int list;  (* machine registers pushed in the prologue, in order *)
  pad : string -> int;  (* nop padding after call sites, per callee *)
}

let push st t = st.out <- t :: st.out

let slot_offset (_ : st) s = s * 8

(* Materialize the value of an operand into a machine register.  [scratch]
   is used for spilled registers and immediates. *)
let use st (op : Ir.operand) ~scratch : int =
  match op with
  | Ir.Imm n ->
      push st (T (mov_imm scratch n));
      scratch
  | Ir.Reg v -> (
      match Regalloc.assignment_of st.ra v with
      | Regalloc.Phys p -> p
      | Regalloc.Slot s ->
          push st (T (Insn.Load (scratch, Insn.sp, slot_offset st s, 8)));
          scratch
      | Regalloc.Unused -> errf "use of unallocated register r%d" v)

(* Destination handling: returns the register the result should be computed
   into, and a completion thunk that stores it back if the vreg is spilled. *)
let def st (v : Ir.reg) ~scratch : int * (unit -> unit) =
  match Regalloc.assignment_of st.ra v with
  | Regalloc.Phys p -> (p, fun () -> ())
  | Regalloc.Slot s ->
      (scratch, fun () -> push st (T (Insn.Store (Insn.sp, slot_offset st s, scratch, 8))))
  | Regalloc.Unused ->
      (* dead destination of a side-effecting instruction: discard *)
      (scratch, fun () -> ())

let s0 = Insn.scratch0
let s1 = Insn.scratch1

let emit_epilogue st =
  if st.frame_bytes > 0 then
    push st (T (Insn.Alu_ri (Insn.Add, Insn.sp, Insn.sp, st.frame_bytes)));
  List.iter (fun r -> push st (T (Insn.Pop r))) (List.rev st.saves);
  push st (T Insn.Ret)

let rec emit_instr st (i : Ir.instr) =
  match i with
  | Ir.Imov (d, src) -> (
      match src, Regalloc.assignment_of st.ra d with
      | Ir.Imm _, Regalloc.Unused -> ()
      | Ir.Imm n, Regalloc.Phys p -> push st (T (mov_imm p n))
      | Ir.Imm n, Regalloc.Slot s ->
          push st (T (mov_imm s0 n));
          push st (T (Insn.Store (Insn.sp, slot_offset st s, s0, 8)))
      | Ir.Reg _, _ ->
          let src_reg = use st src ~scratch:s0 in
          let dst, fin = def st d ~scratch:s1 in
          if dst <> src_reg then push st (T (Insn.Mov_rr (dst, src_reg)));
          fin ())
  | Ir.Iun (op, d, a) ->
      let ra = use st a ~scratch:s0 in
      let dst, fin = def st d ~scratch:s1 in
      push st (T (Insn.Un (unop_of_ir op, dst, ra)));
      fin ()
  | Ir.Ibin (op, d, a, b) ->
      let a, b =
        match a, b with
        | Ir.Imm _, Ir.Reg _ when commutative op -> (b, a)
        | _ -> (a, b)
      in
      (match b with
      | Ir.Imm n when fits32 n ->
          let ra = use st a ~scratch:s0 in
          let dst, fin = def st d ~scratch:s1 in
          push st (T (Insn.Alu_ri (alu_of_binop op, dst, ra, n)));
          fin ()
      | _ ->
          let ra = use st a ~scratch:s0 in
          let rb = use st b ~scratch:s1 in
          let dst, fin = def st d ~scratch:s0 in
          push st (T (Insn.Alu (alu_of_binop op, dst, ra, rb)));
          fin ())
  | Ir.Iload (d, addr, w) ->
      let ra = use st addr ~scratch:s0 in
      let dst, fin = def st d ~scratch:s1 in
      push st (T (Insn.Load (dst, ra, 0, w)));
      fin ()
  | Ir.Istore (addr, v, w) ->
      let ra = use st addr ~scratch:s0 in
      let rv = use st v ~scratch:s1 in
      push st (T (Insn.Store (ra, 0, rv, w)))
  | Ir.Iloadg (d, sym, w) ->
      let dst, fin = def st d ~scratch:s0 in
      push st (Tloadg_sym (dst, sym, w));
      fin ()
  | Ir.Istoreg (sym, v, w) ->
      let rv = use st v ~scratch:s0 in
      push st (Tstoreg_sym (sym, rv, w))
  | Ir.Iaddr (d, sym) ->
      let dst, fin = def st d ~scratch:s0 in
      push st (Tlea_sym (dst, sym));
      fin ()
  | Ir.Icall (d, callee, args) -> emit_call st d callee args ~indirect:false ~safepoint:None
  | Ir.Icallp (d, sym, args) -> emit_call st d sym args ~indirect:true ~safepoint:None
  | Ir.Iintr (d, intr, args) -> emit_intrinsic st d intr args
  | Ir.Isafepoint id ->
      (* a safepoint that lost its call (it should be fused by emit_seq);
         still record the program point so the id stays resolvable *)
      push st (Tsafepoint id)

(* The safepoint marker must land exactly at the call's return address —
   before the nop padding and the result move — because that is the pc a
   polling activation is parked at when [Machine.poll_safepoint] fires. *)
and emit_call st d sym args ~indirect ~safepoint =
  emit_args st args;
  push st (if indirect then Tcallp_sym sym else Tcall_sym sym);
  (match safepoint with Some id -> push st (Tsafepoint id) | None -> ());
  for _ = 1 to st.pad sym do
    push st (T Insn.Nop)
  done;
  emit_result st d

and emit_args st args =
  if List.length args > Regalloc.max_reg_args then
    errf "too many call arguments (%d > %d)" (List.length args) Regalloc.max_reg_args;
  List.iteri
    (fun idx arg ->
      match arg with
      | Ir.Imm n -> push st (T (mov_imm idx n))
      | Ir.Reg v -> (
          match Regalloc.assignment_of st.ra v with
          | Regalloc.Phys p -> if p <> idx then push st (T (Insn.Mov_rr (idx, p)))
          | Regalloc.Slot s -> push st (T (Insn.Load (idx, Insn.sp, slot_offset st s, 8)))
          | Regalloc.Unused -> errf "argument uses unallocated register"))
    args

and emit_result st (d : Ir.reg option) =
  match d with
  | None -> ()
  | Some v -> (
      match Regalloc.assignment_of st.ra v with
      | Regalloc.Phys p -> if p <> 0 then push st (T (Insn.Mov_rr (p, 0)))
      | Regalloc.Slot s -> push st (T (Insn.Store (Insn.sp, slot_offset st s, 0, 8)))
      | Regalloc.Unused -> ())

and emit_intrinsic st d (intr : Minic.Ast.intrinsic) args =
  match intr, args with
  | Minic.Ast.Icli, [] -> push st (T Insn.Cli)
  | Minic.Ast.Isti, [] -> push st (T Insn.Sti)
  | Minic.Ast.Ipause, [] -> push st (T Insn.Pause)
  | Minic.Ast.Ifence, [] -> push st (T Insn.Fence)
  | Minic.Ast.Ihalt, [] -> push st (T Insn.Halt)
  | Minic.Ast.Ihypercall, [ Ir.Imm n ] -> push st (T (Insn.Hypercall n))
  | Minic.Ast.Ihypercall, [ Ir.Reg _ ] ->
      errf "__hypercall requires a constant hypercall number"
  | Minic.Ast.Irdtsc, [] -> (
      match d with
      | Some v ->
          let dst, fin = def st v ~scratch:s0 in
          push st (T (Insn.Rdtsc dst));
          fin ()
      | None -> push st (T (Insn.Rdtsc s0)))
  | Minic.Ast.Iatomic_xchg, [ addr; v ] -> (
      let ra = use st addr ~scratch:s0 in
      let rv = use st v ~scratch:s1 in
      match d with
      | Some dst ->
          let dreg, fin = def st dst ~scratch:s0 in
          push st (T (Insn.Xchg (dreg, ra, rv)));
          fin ()
      | None -> push st (T (Insn.Xchg (s0, ra, rv))))
  | _ -> errf "bad intrinsic application of %s" (Minic.Ast.intrinsic_name intr)

(* Instruction walk that fuses an [Icall; Isafepoint] pair so the zero-size
   marker is pushed between the call template and its nop padding. *)
let rec emit_seq st = function
  | [] -> ()
  | Ir.Icall (d, callee, args) :: Ir.Isafepoint id :: rest ->
      emit_call st d callee args ~indirect:false ~safepoint:(Some id);
      emit_seq st rest
  | Ir.Icallp (d, sym, args) :: Ir.Isafepoint id :: rest ->
      emit_call st d sym args ~indirect:true ~safepoint:(Some id);
      emit_seq st rest
  | i :: rest ->
      emit_instr st i;
      emit_seq st rest

let emit_terminator st ~next_block (t : Ir.terminator) =
  match t with
  | Ir.Tjmp target -> if Some target <> next_block then push st (Tjmp_b target)
  | Ir.Tbr (c, bt, bf) ->
      let rc = use st c ~scratch:s0 in
      if Some bf = next_block then push st (Tjnz_b (rc, bt))
      else if Some bt = next_block then push st (Tjz_b (rc, bf))
      else begin
        push st (Tjnz_b (rc, bt));
        push st (Tjmp_b bf)
      end
  | Ir.Tret v ->
      (match v with
      | Some (Ir.Imm n) -> push st (T (mov_imm 0 n))
      | Some (Ir.Reg r) -> (
          match Regalloc.assignment_of st.ra r with
          | Regalloc.Phys p -> if p <> 0 then push st (T (Insn.Mov_rr (0, p)))
          | Regalloc.Slot s -> push st (T (Insn.Load (0, Insn.sp, slot_offset st s, 8)))
          | Regalloc.Unused -> errf "return of unallocated register")
      | None -> ());
      emit_epilogue st

(** Emit one function to a relocatable fragment.

    [call_pad] returns, per callee symbol, a number of [nop] bytes to emit
    immediately after the call instruction.  Padding call sites of
    multiversed functions widens the runtime's inlining budget — the
    "adjusting the sizes of call sites" extension the paper sketches in
    Section 7.1. *)
let emit_fn ?(call_pad = fun (_ : string) -> 0) (fn : Ir.fn) : fragment =
  let ra = Regalloc.allocate fn in
  let saves =
    match fn.fn_conv with
    | Ir.Saveall ->
        (* the PV-Ops-style custom convention with no volatile registers:
           the callee unconditionally saves the scratch registers of the
           standard convention (r0 excepted, it carries the result), plus
           whatever callee-saved registers it uses *)
        [ 1; 2; 3; 4; 5 ] @ ra.Regalloc.used_callee_saved
    | Ir.Standard -> ra.Regalloc.used_callee_saved
  in
  let st =
    { ra; out = []; frame_bytes = ra.Regalloc.frame_slots * 8; saves; pad = call_pad }
  in
  (* prologue *)
  List.iter (fun r -> push st (T (Insn.Push r))) saves;
  if st.frame_bytes > 0 then
    push st (T (Insn.Alu_ri (Insn.Sub, Insn.sp, Insn.sp, st.frame_bytes)));
  (* move incoming arguments out of r0..r5 *)
  List.iteri
    (fun idx v ->
      if idx >= Regalloc.max_reg_args then errf "%s: too many parameters" fn.fn_name;
      match Regalloc.assignment_of st.ra v with
      | Regalloc.Phys p -> if p <> idx then push st (T (Insn.Mov_rr (p, idx)))
      | Regalloc.Slot s -> push st (T (Insn.Store (Insn.sp, slot_offset st s, idx, 8)))
      | Regalloc.Unused -> (* dead parameter *) ())
    fn.fn_params;
  (* body; block starts are tracked as indices into the template stream *)
  let block_starts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec emit_blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
        Hashtbl.replace block_starts b.b_id (List.length st.out);
        emit_seq st b.b_instrs;
        let next_block = match rest with b' :: _ -> Some b'.Ir.b_id | [] -> None in
        emit_terminator st ~next_block b.b_term;
        emit_blocks rest
  in
  emit_blocks fn.fn_blocks;
  let tmpls = Array.of_list (List.rev st.out) in
  (* layout *)
  let offsets = Array.make (Array.length tmpls + 1) 0 in
  Array.iteri (fun i t -> offsets.(i + 1) <- offsets.(i) + tmpl_size t) tmpls;
  let block_offset id =
    match Hashtbl.find_opt block_starts id with
    | Some tmpl_index -> offsets.(tmpl_index)
    | None -> errf "%s: branch to unknown block %d" fn.fn_name id
  in
  (* Per-safepoint live-across sets: for each [Isafepoint id], the IR vregs
     live immediately after it, by a backward walk from each block's
     live-out.  The fused call's result vreg is excluded — at the recorded
     pc its value is still in r0 on both sides of a transfer, not yet in
     its home location. *)
  let sp_live_of =
    let module Iset = Mv_opt.Dce.Iset in
    let module Imap = Mv_opt.Dce.Imap in
    let live_in = Mv_opt.Dce.liveness fn in
    let tbl : (int, Mv_opt.Dce.Iset.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (b : Ir.block) ->
        let live =
          ref
            (List.fold_left
               (fun acc succ ->
                 match Imap.find_opt succ live_in with
                 | Some s -> Iset.union acc s
                 | None -> acc)
               Iset.empty
               (Ir.successors b.b_term))
        in
        List.iter (fun r -> live := Iset.add r !live) (Mv_opt.Dce.term_uses b.b_term);
        let pending_sp = ref None in
        List.iter
          (fun i ->
            (match i with
            | Ir.Isafepoint id ->
                Hashtbl.replace tbl id !live;
                pending_sp := Some id
            | Ir.Icall (d, _, _) | Ir.Icallp (d, _, _) ->
                (match !pending_sp, d with
                | Some id, Some d -> Hashtbl.replace tbl id (Iset.remove d !live)
                | _ -> ());
                pending_sp := None
            | _ -> pending_sp := None);
            (match Ir.instr_def i with
            | Some d -> live := Iset.remove d !live
            | None -> ());
            List.iter
              (function Ir.Reg r -> live := Iset.add r !live | Ir.Imm _ -> ())
              (Ir.instr_uses i))
          (List.rev b.b_instrs))
      fn.fn_blocks;
    fun id ->
      match Hashtbl.find_opt tbl id with
      | None -> []
      | Some set ->
          List.filter_map
            (fun v ->
              match Regalloc.assignment_of ra v with
              | Regalloc.Unused -> None
              | a -> Some (v, a))
            (Mv_opt.Dce.Iset.elements set)
  in
  (* resolve *)
  let relocs = ref [] and callsites = ref [] and safepoints = ref [] in
  let code = Buffer.create 128 in
  Array.iteri
    (fun i t ->
      let off = offsets.(i) in
      let add_reloc kind field_off sym addend =
        relocs :=
          { Objfile.r_section = Objfile.Text; r_offset = field_off; r_kind = kind;
            r_sym = sym; r_addend = addend }
          :: !relocs
      in
      match t with
      | Tsafepoint id ->
          (* zero-size: contributes no bytes, only a frame-map record *)
          safepoints :=
            { sp_id = id; sp_offset = off; sp_live = sp_live_of id } :: !safepoints
      | _ ->
          let insn =
            match t with
            | T insn -> insn
            | Tsafepoint _ -> assert false
            | Tcall_sym sym ->
                add_reloc Objfile.Rel32 (off + 1) sym (-4);
                callsites := { cs_insn_offset = off; cs_callee = sym; cs_indirect = false } :: !callsites;
                Insn.Call 0
            | Tcallp_sym sym ->
                add_reloc Objfile.Abs32 (off + 1) sym 0;
                callsites := { cs_insn_offset = off; cs_callee = sym; cs_indirect = true } :: !callsites;
                Insn.Call_ind 0
            | Tloadg_sym (rd, sym, w) ->
                add_reloc Objfile.Abs32 (off + 2) sym 0;
                Insn.Loadg (rd, 0, w)
            | Tstoreg_sym (sym, rs, w) ->
                add_reloc Objfile.Abs32 (off + 1) sym 0;
                Insn.Storeg (0, rs, w)
            | Tlea_sym (rd, sym) ->
                add_reloc Objfile.Abs64 (off + 2) sym 0;
                Insn.Lea (rd, 0)
            | Tjmp_b b -> Insn.Jmp (block_offset b - (off + Insn.size (Insn.Jmp 0)))
            | Tjnz_b (r, b) -> Insn.Jnz (r, block_offset b - (off + Insn.size (Insn.Jnz (0, 0))))
            | Tjz_b (r, b) -> Insn.Jz (r, block_offset b - (off + Insn.size (Insn.Jz (0, 0))))
          in
          Buffer.add_bytes code (Mv_isa.Encode.encode insn))
    tmpls;
  {
    fr_name = fn.fn_name;
    fr_code = Buffer.to_bytes code;
    fr_relocs = List.rev !relocs;
    fr_callsites = List.rev !callsites;
    fr_safepoints = List.rev !safepoints;
    fr_frame_bytes = st.frame_bytes;
    fr_saves = saves;
  }
