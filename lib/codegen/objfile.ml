(* Relocatable object files.

   Each translation unit compiles to one object with the sections the paper
   describes in Section 5: [text], [data], and the three multiverse
   descriptor sections ([multiverse.variables], [multiverse.functions],
   [multiverse.callsites]).  The linker concatenates same-named sections of
   all objects, so descriptors from different translation units can be
   addressed as one regular array — exactly the trick the paper relies on.

   Relocations are ELF-style: the linker stores [S + A] (absolute) or
   [S + A - P] (pc-relative) into the field at [r_offset]. *)

type section = Text | Data | Mv_variables | Mv_functions | Mv_callsites | Mv_framemaps

let all_sections = [ Text; Data; Mv_variables; Mv_functions; Mv_callsites; Mv_framemaps ]

let section_name = function
  | Text -> ".text"
  | Data -> ".data"
  | Mv_variables -> "multiverse.variables"
  | Mv_functions -> "multiverse.functions"
  | Mv_callsites -> "multiverse.callsites"
  | Mv_framemaps -> "multiverse.framemaps"

type reloc_kind = Abs64 | Abs32 | Rel32

type reloc = {
  r_section : section;  (** section containing the field to patch *)
  r_offset : int;  (** offset of the field within that section *)
  r_kind : reloc_kind;
  r_sym : string;
  r_addend : int;
}

type symbol = {
  s_name : string;
  s_section : section;
  s_offset : int;
  s_size : int;
}

type t = {
  o_name : string;
  buffers : (section * Buffer.t) list;
  mutable relocs : reloc list;
  mutable symbols : symbol list;
}

let create name =
  {
    o_name = name;
    buffers = List.map (fun s -> (s, Buffer.create 256)) all_sections;
    relocs = [];
    symbols = [];
  }

let buffer t sec = List.assoc sec t.buffers

let section_size t sec = Buffer.length (buffer t sec)

(** Append [b] to [sec]; returns the offset at which it was placed. *)
let append t sec (b : bytes) : int =
  let buf = buffer t sec in
  let off = Buffer.length buf in
  Buffer.add_bytes buf b;
  off

let align t sec alignment =
  let buf = buffer t sec in
  while Buffer.length buf mod alignment <> 0 do
    Buffer.add_char buf '\000'
  done;
  Buffer.length buf

let add_reloc t r = t.relocs <- r :: t.relocs

let add_symbol t s =
  if List.exists (fun s' -> String.equal s'.s_name s.s_name) t.symbols then
    invalid_arg (Printf.sprintf "%s: duplicate symbol %s" t.o_name s.s_name);
  t.symbols <- s :: t.symbols

let find_symbol t name = List.find_opt (fun s -> String.equal s.s_name name) t.symbols

let section_contents t sec = Buffer.to_bytes (buffer t sec)

let relocs t = List.rev t.relocs
let symbols t = List.rev t.symbols

let pp fmt t =
  Format.fprintf fmt "@[<v>object %s:" t.o_name;
  List.iter
    (fun sec ->
      Format.fprintf fmt "@,  %-22s %6d bytes" (section_name sec) (section_size t sec))
    all_sections;
  Format.fprintf fmt "@,  %d symbols, %d relocations@]" (List.length t.symbols)
    (List.length t.relocs)
