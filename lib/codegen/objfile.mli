(** Relocatable object files.

    Each translation unit compiles to one object with the sections the
    paper describes (Section 5): [.text], [.data], and the multiverse
    descriptor sections ([multiverse.variables], [multiverse.functions],
    [multiverse.callsites], plus our OSR extension
    [multiverse.framemaps]).  The linker concatenates same-named sections,
    so descriptors from different units can be addressed as one array.
    Relocations are ELF-style ([S + A] absolute, [S + A - P]
    pc-relative). *)

type section = Text | Data | Mv_variables | Mv_functions | Mv_callsites | Mv_framemaps

val all_sections : section list
val section_name : section -> string

type reloc_kind = Abs64 | Abs32 | Rel32

type reloc = {
  r_section : section;  (** section containing the field to patch *)
  r_offset : int;  (** offset of the field within that section *)
  r_kind : reloc_kind;
  r_sym : string;
  r_addend : int;
}

type symbol = {
  s_name : string;
  s_section : section;
  s_offset : int;
  s_size : int;
}

type t = {
  o_name : string;
  buffers : (section * Buffer.t) list;
  mutable relocs : reloc list;
  mutable symbols : symbol list;
}

val create : string -> t
val section_size : t -> section -> int

(** Append bytes to a section; returns the placement offset. *)
val append : t -> section -> bytes -> int

(** Zero-pad the section to the alignment; returns the new size. *)
val align : t -> section -> int -> int

val add_reloc : t -> reloc -> unit

(** Raises [Invalid_argument] on duplicate names within the object. *)
val add_symbol : t -> symbol -> unit

val find_symbol : t -> string -> symbol option
val section_contents : t -> section -> bytes
val relocs : t -> reloc list
val symbols : t -> symbol list
val pp : Format.formatter -> t -> unit
