(** Instruction selection and emission: IR functions to encoded machine
    code.

    The emitter records the text offset of every call instruction and its
    target symbol; the compiler driver turns the sites targeting
    multiversed symbols into [multiverse.callsites] descriptor records —
    the compiler-provided call-site knowledge that distinguishes multiverse
    from ad-hoc inline-assembler patching mechanisms (paper Section 3). *)

exception Error of string

type callsite = {
  cs_insn_offset : int;  (** offset of the call instruction in the fragment *)
  cs_callee : string;  (** target symbol (fn-pointer variable if indirect) *)
  cs_indirect : bool;
}

type safepoint = {
  sp_id : int;  (** stable id shared by the generic body and every variant *)
  sp_offset : int;
      (** fragment offset of the poll pc: the end of the call instruction,
          i.e. the return address a polling activation is parked at *)
  sp_live : (int * Regalloc.assignment) list;
      (** every IR vreg live across the safepoint and where its value
          resides (callee-saved register or sp-relative spill slot), sorted
          by vreg; the fused call's own result vreg is excluded — its value
          is still in r0 on both sides of a transfer *)
}
(** One OSR safepoint of a fragment: a zero-size program point recorded at
    a call's return address, together with the frame map needed to read or
    rebuild the activation's live state there. *)

type fragment = {
  fr_name : string;
  fr_code : bytes;
  fr_relocs : Objfile.reloc list;  (** offsets relative to the fragment *)
  fr_callsites : callsite list;
  fr_safepoints : safepoint list;  (** in fragment order *)
  fr_frame_bytes : int;  (** spill-area size: the prologue's [sub sp] amount *)
  fr_saves : int list;
      (** machine registers pushed in the prologue, in push order —
          [List.nth fr_saves i] lives at [sp_entry - 8*(i+1)] *)
}

(** Emit one function.

    [call_pad] gives, per callee symbol, the number of [nop] bytes to emit
    after the call instruction — padding that widens the runtime's inlining
    budget (the Section 7.1 "adjusting the sizes of call sites"
    extension). *)
val emit_fn : ?call_pad:(string -> int) -> Mv_ir.Ir.fn -> fragment
