(* Structural equality of function bodies up to block order and register
   naming.  The variant generator uses this to merge clones that became
   identical after optimization — in Figure 2 of the paper, the bodies for
   A=0,B=0 and A=0,B=1 merge into the single variant "multi.A=0.B=01". *)

module Ir = Mv_ir.Ir

(** Canonical printable form of a function body: blocks in reverse-postorder
    from the entry, block ids replaced by their RPO index, and registers
    renamed in order of first occurrence (parameters first). *)
let canonical_form (fn : Ir.fn) : string =
  let blocks = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace blocks b.Ir.b_id b) fn.fn_blocks;
  (* reverse postorder *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      (match Hashtbl.find_opt blocks id with
      | Some b -> List.iter dfs (Ir.successors b.b_term)
      | None -> ());
      post := id :: !post
    end
  in
  (match fn.fn_blocks with b :: _ -> dfs b.b_id | [] -> ());
  let rpo = !post in
  let block_index = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace block_index id i) rpo;
  (* register renaming *)
  let reg_index = Hashtbl.create 16 in
  let next = ref 0 in
  let canon_reg r =
    match Hashtbl.find_opt reg_index r with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.replace reg_index r i;
        i
  in
  List.iter (fun r -> ignore (canon_reg r)) fn.fn_params;
  let buf = Buffer.create 256 in
  let operand = function
    | Ir.Reg r -> Printf.sprintf "r%d" (canon_reg r)
    | Ir.Imm n -> Printf.sprintf "$%d" n
  in
  let block_ref id =
    match Hashtbl.find_opt block_index id with
    | Some i -> Printf.sprintf "L%d" i
    | None -> Printf.sprintf "L?%d" id
  in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun id ->
      match Hashtbl.find_opt blocks id with
      | None -> ()
      | Some b ->
          add "%s:\n" (block_ref id);
          List.iter
            (fun i ->
              (match i with
              | Ir.Imov (d, s) -> add " mov r%d,%s" (canon_reg d) (operand s)
              | Ir.Iun (op, d, a) ->
                  add " %s r%d,%s" (Ir.unop_name op) (canon_reg d) (operand a)
              | Ir.Ibin (op, d, a, b') ->
                  add " %s r%d,%s,%s" (Ir.binop_name op) (canon_reg d) (operand a)
                    (operand b')
              | Ir.Iload (d, a, w) -> add " ld%d r%d,%s" w (canon_reg d) (operand a)
              | Ir.Istore (a, v, w) -> add " st%d %s,%s" w (operand a) (operand v)
              | Ir.Iloadg (d, s, w) -> add " ldg%d r%d,@%s" w (canon_reg d) s
              | Ir.Istoreg (s, v, w) -> add " stg%d @%s,%s" w s (operand v)
              | Ir.Iaddr (d, s) -> add " addr r%d,@%s" (canon_reg d) s
              | Ir.Icall (d, s, args) ->
                  add " call%s @%s(%s)"
                    (match d with Some d -> Printf.sprintf " r%d" (canon_reg d) | None -> "")
                    s
                    (String.concat "," (List.map operand args))
              | Ir.Icallp (d, s, args) ->
                  add " callp%s [@%s](%s)"
                    (match d with Some d -> Printf.sprintf " r%d" (canon_reg d) | None -> "")
                    s
                    (String.concat "," (List.map operand args))
              | Ir.Iintr (d, intr, args) ->
                  add " intr%s %s(%s)"
                    (match d with Some d -> Printf.sprintf " r%d" (canon_reg d) | None -> "")
                    (Minic.Ast.intrinsic_name intr)
                    (String.concat "," (List.map operand args))
              (* ids are inserted before cloning, so structurally equal
                 clones carry identical ids and still merge *)
              | Ir.Isafepoint id -> add " safept %d" id);
              Buffer.add_char buf '\n')
            b.b_instrs;
          (match b.b_term with
          | Ir.Tjmp t -> add " jmp %s\n" (block_ref t)
          | Ir.Tbr (c, t, f) -> add " br %s,%s,%s\n" (operand c) (block_ref t) (block_ref f)
          | Ir.Tret None -> add " ret\n"
          | Ir.Tret (Some v) -> add " ret %s\n" (operand v)))
    rpo;
  Buffer.contents buf

let equal_bodies a b = String.equal (canonical_form a) (canonical_form b)

let body_hash fn = Hashtbl.hash (canonical_form fn)
