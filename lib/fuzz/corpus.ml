module Json = Mv_obs.Json

type entry = {
  e_seed : int;
  e_oracle : string;
  e_detail : string;
  e_src : string;
  e_args : int list;
  e_assignments : Gen.assignment list;
  e_schedule : Schedule.t;
}

let of_shrunk (r : Shrink.result) : entry =
  let case = r.Shrink.sh_case in
  {
    e_seed = case.Gen.c_seed;
    e_oracle = r.Shrink.sh_divergence.Oracle.d_oracle;
    e_detail = r.Shrink.sh_divergence.Oracle.d_detail;
    e_src = case.Gen.c_src;
    e_args = case.Gen.c_args;
    e_assignments = case.Gen.c_assignments;
    e_schedule = r.Shrink.sh_sched;
  }

let to_case (e : entry) : Gen.case =
  Gen.case_of_source ~seed:e.e_seed ~args:e.e_args ~assignments:e.e_assignments
    e.e_src

let to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("format", Json.String "mv-fuzz-repro/1");
      ("seed", Json.Int e.e_seed);
      ("oracle", Json.String e.e_oracle);
      ("detail", Json.String e.e_detail);
      ("src", Json.String e.e_src);
      ("args", Json.List (List.map (fun a -> Json.Int a) e.e_args));
      ( "assignments",
        Json.List (List.map Schedule.assignment_to_json e.e_assignments) );
      ("schedule", Schedule.to_json e.e_schedule);
    ]

let of_json (j : Json.t) : (entry, string) result =
  let str k = match Json.member k j with Some (Json.String s) -> Ok s | _ -> Error k in
  let int k = match Json.member k j with Some (Json.Int i) -> Ok i | _ -> Error k in
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error ("corpus: bad field " ^ e) in
  (match Json.member "format" j with
  | Some (Json.String "mv-fuzz-repro/1") -> Ok ()
  | _ -> Error "corpus: not an mv-fuzz-repro/1 document")
  |> function
  | Error e -> Error e
  | Ok () ->
      let* seed = int "seed" in
      let* oracle = str "oracle" in
      let* detail = str "detail" in
      let* src = str "src" in
      let args =
        match Json.member "args" j with
        | Some (Json.List xs) ->
            List.filter_map (function Json.Int i -> Some i | _ -> None) xs
        | _ -> [ 1 ]
      in
      let assignments =
        match Json.member "assignments" j with
        | Some (Json.List xs) ->
            List.filter_map
              (fun x ->
                match Schedule.assignment_of_json x with
                | Ok a -> Some a
                | Error _ -> None)
              xs
        | _ -> []
      in
      let schedule =
        match Json.member "schedule" j with
        | Some s -> ( match Schedule.of_json s with Ok sc -> sc | Error _ -> [])
        | None -> []
      in
      Ok
        {
          e_seed = seed;
          e_oracle = oracle;
          e_detail = detail;
          e_src = src;
          e_args = args;
          e_assignments = assignments;
          e_schedule = schedule;
        }

let save ~dir (e : entry) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "repro-seed%d-%s.json" e.e_seed e.e_oracle) in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json e));
  output_char oc '\n';
  close_out oc;
  path

let load_file path : (entry, string) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | s -> (
      match Json.parse s with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok j -> of_json j)

let load_dir dir : (string * (entry, string) result) list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load_file path))

(* A ready-to-paste Alcotest case.  The schedule travels as JSON text so
   the snippet needs no OCaml literals for the schedule type. *)
let ocaml_snippet (e : entry) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  let assignment_lit (a : Gen.assignment) =
    let ints =
      String.concat "; "
        (List.map (fun (n, v) -> Printf.sprintf "(%S, %d)" n v) a.Gen.a_ints)
    and ptrs =
      String.concat "; "
        (List.map (fun (n, t) -> Printf.sprintf "(%S, %S)" n t) a.Gen.a_ptrs)
    in
    Printf.sprintf "{ Mv_fuzz.Gen.a_ints = [ %s ]; a_ptrs = [ %s ] }" ints ptrs
  in
  pf "(* mvfuzz reproducer: seed %d, oracle %s\n   %s *)\n" e.e_seed e.e_oracle
    e.e_detail;
  pf "Util.tc \"mvfuzz repro seed %d (%s)\" (fun () ->\n" e.e_seed e.e_oracle;
  pf "    let src = {mvsrc|%s|mvsrc} in\n" e.e_src;
  pf "    let assignments = [ %s ] in\n"
    (String.concat ";\n      " (List.map assignment_lit e.e_assignments));
  pf "    let case = Mv_fuzz.Gen.case_of_source ~seed:%d ~args:[ %s ] ~assignments src in\n"
    e.e_seed
    (String.concat "; " (List.map string_of_int e.e_args));
  pf "    let sched =\n";
  pf "      match Mv_obs.Json.parse {mvsch|%s|mvsch} with\n"
    (Json.to_string (Schedule.to_json e.e_schedule));
  pf "      | Ok j -> Result.get_ok (Mv_fuzz.Schedule.of_json j)\n";
  pf "      | Error m -> Alcotest.failf \"schedule json: %%s\" m\n";
  pf "    in\n";
  pf "    match Mv_fuzz.Oracle.run_named %S case sched with\n" e.e_oracle;
  pf "    | None -> ()\n";
  pf "    | Some d -> Alcotest.failf \"%%a\" Mv_fuzz.Oracle.pp_divergence d);\n";
  Buffer.contents b
