(** Typed random Mini-C program generator.

    Programs are generated as {!Minic.Ast} trees — not string templates —
    and cover the whole surface the pipeline accepts: several functions
    with (acyclic) calls, [multiverse] switches of every integer-like
    shape ([values(..)] lists, sub-word widths, [bool], [enum], function
    pointers), [bind(..)]/[noinline]/[saveall] attributes, global arrays,
    guarded pointer and width-cast loads/stores, the safe intrinsics, and
    every statement form (loops with bounded fuel, [switch]/[case],
    [break]/[continue], early returns).

    Three invariants make every generated program a valid differential
    subject:
    + {b well-typed}: the tree is pretty-printed and re-checked through
      the real front end; a generator bug raises immediately;
    + {b trap-free and terminating}: divisors are masked positive, shift
      counts masked, array indices masked to the (power-of-two) bounds,
      loops carry bounded fuel, the call graph is acyclic, and a
      worst-case work budget caps total dynamic statements well under the
      engines' step limits;
    + {b observably deterministic}: pointer values never flow into
      results (pointers are only dereferenced), [__rdtsc] is never
      generated, and configuration switches are never written by guest
      code — so any cross-engine or cross-image divergence is a real bug,
      not generator noise. *)

(** One configuration switch of the generated program. *)
type switch = {
  sw_name : string;
  sw_ty : Minic.Ast.ty;
  sw_domain : int list;  (** specialization domain; [[]] for fnptr switches *)
  sw_targets : string list;  (** candidate targets, fnptr switches only *)
}

(** A host-side configuration: values for the integer-like switches and
    target functions for the fnptr switches.  Values may lie outside the
    specialization domain (exercising the generic fallback). *)
type assignment = {
  a_ints : (string * int) list;
  a_ptrs : (string * string) list;
}

type case = {
  c_seed : int;
  c_tu : Minic.Ast.tunit;
  c_src : string;  (** pretty-printed source — the canonical artifact *)
  c_switches : switch list;
  c_entry : string;  (** always ["driver"], arity 1 *)
  c_args : int list;  (** driver arguments, run in sequence *)
  c_assignments : assignment list;  (** first one is always in-domain *)
}

(** Size knobs.  [work_budget] bounds the worst-case number of dynamic
    statements one driver call can execute (loops multiply, calls add the
    callee's cost) — the generator falls back to cheap statements when a
    candidate would exceed it. *)
type cfg = {
  n_helpers : int * int;
  n_switches : int * int;
  n_leaves : int * int;
  stmt_fuel : int;  (** total statements per function body *)
  max_block : int;
  max_depth : int;
  max_expr_depth : int;
  n_args : int * int;
  n_assignments : int * int;
  work_budget : int;
}

(** The CLI's default sizes. *)
val default_cfg : cfg

(** Smaller programs for property tests and quick smokes. *)
val small_cfg : cfg

(** Generate the case for a seed (pure function of [seed] and [cfg]). *)
val case : ?cfg:cfg -> int -> case

(** Recompute the switch records of a (parsed, checked) unit — used when
    rebuilding a case from shrunk or stored source. *)
val switches_of_tu : Minic.Ast.tunit -> switch list

(** Drop assignment entries whose switch (or fnptr target) no longer
    exists in the given switch set. *)
val restrict_assignment : switch list -> assignment -> assignment

(** Rebuild a case from source text (raises the front-end exceptions on
    invalid input).  [args]/[assignments] are filtered against the
    switches actually present. *)
val case_of_source :
  seed:int -> args:int list -> assignments:assignment list -> string -> case

(** Fresh assignments for a switch set (used by replay tooling when a
    stored reproducer predates a switch). *)
val gen_assignments : Rng.t -> int -> switch list -> assignment list

(** Human-readable one-line rendering, for logs and replay output. *)
val pp_assignment : Format.formatter -> assignment -> unit
