(** The fuzzing loop: generate, run all oracles, shrink and persist on
    divergence.  Everything is a pure function of [seed] (per-iteration
    seed is [seed + i]), so any failure replays with
    [mvfuzz --seed N --replay]. *)

type report = {
  rp_seed : int;  (** the per-iteration seed that diverged *)
  rp_original : Oracle.divergence;
  rp_shrunk : Shrink.result;
  rp_entry : Corpus.entry;
  rp_path : string option;  (** corpus file, when a directory was given *)
  rp_flight : string option;
      (** [mv-flight/1] postmortem dump (oracle verdict + shrunk
          reproducer), when [MV_SMP_ARTIFACT_DIR] is set *)
}

type summary = {
  s_tested : int;
  s_reports : report list;  (** empty = clean run *)
}

val schedule_for : Gen.case -> int -> Schedule.t
(** The schedule the fuzzing loop pairs with [Gen.case seed] — exposed so
    tests replaying a seed reconstruct the exact same run. *)

(** The single-domain fuzzing loop: case [i] of the campaign runs under
    seed [seed + i], in order.  [keep_going] collects every divergence
    instead of stopping at the first; [corpus_dir] persists each shrunk
    reproducer.  Progress and findings go through [log]. *)
val run :
  ?cfg:Gen.cfg ->
  ?chaos:Oracle.chaos ->
  ?only:string list ->
  ?corpus_dir:string ->
  ?keep_going:bool ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  seed:int ->
  iters:int ->
  unit ->
  summary

(** {!run} fanned out over [domains] OCaml domains.  The case-seed
    schedule is unchanged — case [i] still runs under [seed + i] — and
    domain [d] owns the stripe [{d, d+domains, ...}] of the iteration
    space (campaign seed → domain stripe → case seed), so the tested seed
    set is exactly the single-domain one and, with [keep_going], the
    merged corpus is byte-for-byte what a single-domain run writes.
    [domains = 1] (the default CLI mode) is literally {!run}: same code
    path, same corpora, same log stream.  Reports are merged in seed
    order; [log] may be called from any domain (serialized internally). *)
val run_parallel :
  ?cfg:Gen.cfg ->
  ?chaos:Oracle.chaos ->
  ?only:string list ->
  ?corpus_dir:string ->
  ?keep_going:bool ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  domains:int ->
  seed:int ->
  iters:int ->
  unit ->
  summary

(** Re-run a single seed verbosely: prints the generated program, the
    schedule, and each oracle verdict through [log]. *)
val replay :
  ?cfg:Gen.cfg ->
  ?chaos:Oracle.chaos ->
  ?only:string list ->
  ?log:(string -> unit) ->
  seed:int ->
  unit ->
  summary

(** Re-check every stored reproducer in [dir]; a reproducer passes when
    its oracle reports no divergence (i.e. the bug stays fixed). *)
val check_corpus :
  ?chaos:Oracle.chaos -> ?log:(string -> unit) -> dir:string -> unit -> summary
