module Ast = Minic.Ast

type result = {
  sh_case : Gen.case;
  sh_sched : Schedule.t;
  sh_divergence : Oracle.divergence;
  sh_evals : int;
}

(* ------------------------------------------------------------------ *)
(* One-step reductions of statement lists                              *)
(* ------------------------------------------------------------------ *)

let mk d : Ast.stmt = { Ast.sdesc = d; sloc = Ast.dummy_loc }

(* Replacement lists a compound statement can collapse into. *)
let unwrappings (st : Ast.stmt) : Ast.stmt list list =
  match st.Ast.sdesc with
  | Ast.Sif (_, t, f) -> [ t; f ]
  | Ast.Swhile (_, b) -> [ b ]
  | Ast.Sdo_while (b, _) -> [ b ]
  | Ast.Sfor (init, _, _, b) -> [ Option.to_list init @ b; b ]
  | Ast.Sblock b -> [ b ]
  | Ast.Sswitch (_, cases, default) -> List.map snd cases @ Option.to_list default
  | _ -> []

(* ddmin-style coarse cuts: drop aligned chunks of n/2, n/4, n/8
   statements.  These go first so a large body collapses in a handful of
   evaluations instead of one statement at a time. *)
let chunk_removals (stmts : Ast.stmt list) : Ast.stmt list list =
  let n = List.length stmts in
  let sizes =
    List.sort_uniq (fun a b -> compare b a)
      (List.filter (fun s -> s >= 2 && s < n) [ n / 2; n / 4; n / 8 ])
  in
  List.concat_map
    (fun k ->
      let rec starts s acc = if s >= n then List.rev acc else starts (s + k) (s :: acc) in
      List.map
        (fun start ->
          List.filteri (fun i _ -> i < start || i >= start + k) stmts)
        (starts 0 []))
    sizes

let rec reductions_of_stmts (stmts : Ast.stmt list) : Ast.stmt list list =
  chunk_removals stmts
  @ List.concat
      (List.mapi
         (fun i st ->
           let splice repl =
             List.concat
               (List.mapi (fun j st' -> if i = j then repl else [ st' ]) stmts)
           in
           (splice [] :: List.map splice (unwrappings st))
           @ List.map (fun st' -> splice [ st' ]) (reductions_of_stmt st))
         stmts)

and reductions_of_stmt (st : Ast.stmt) : Ast.stmt list =
  match st.Ast.sdesc with
  | Ast.Sif (c, t, f) ->
      List.map (fun t' -> mk (Ast.Sif (c, t', f))) (reductions_of_stmts t)
      @ List.map (fun f' -> mk (Ast.Sif (c, t, f'))) (reductions_of_stmts f)
  | Ast.Swhile (c, b) ->
      List.map (fun b' -> mk (Ast.Swhile (c, b'))) (reductions_of_stmts b)
  | Ast.Sdo_while (b, c) ->
      List.map (fun b' -> mk (Ast.Sdo_while (b', c))) (reductions_of_stmts b)
  | Ast.Sfor (i, c, u, b) ->
      List.map (fun b' -> mk (Ast.Sfor (i, c, u, b'))) (reductions_of_stmts b)
  | Ast.Sblock b -> List.map (fun b' -> mk (Ast.Sblock b')) (reductions_of_stmts b)
  | Ast.Sswitch (sc, cases, default) ->
      List.concat
        (List.mapi
           (fun i (labels, body) ->
             List.map
               (fun body' ->
                 mk
                   (Ast.Sswitch
                      ( sc,
                        List.mapi
                          (fun j c -> if i = j then (labels, body') else c)
                          cases,
                        default )))
               (reductions_of_stmts body))
           cases)
      @ (match default with
        | None -> []
        | Some d ->
            List.map
              (fun d' -> mk (Ast.Sswitch (sc, cases, Some d')))
              (reductions_of_stmts d))
      @ (if default <> None then [ mk (Ast.Sswitch (sc, cases, None)) ] else [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* One-step reductions of the translation unit                         *)
(* ------------------------------------------------------------------ *)

let set_nth i v xs = List.mapi (fun j x -> if i = j then v else x) xs
let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs

let tunit_candidates (tu : Ast.tunit) : Ast.tunit list =
  let is_driver = function
    | Ast.Dfunc f -> f.Ast.f_name = "driver"
    | _ -> false
  in
  let drops =
    List.concat
      (List.mapi (fun i d -> if is_driver d then [] else [ drop_nth i tu ]) tu)
  in
  let attr_drops =
    List.concat
      (List.mapi
         (fun i d ->
           let with_attrs attrs rebuild =
             List.mapi (fun j _ -> set_nth i (rebuild (drop_nth j attrs)) tu) attrs
           in
           match d with
           | Ast.Dglobal g ->
               with_attrs g.Ast.g_attrs (fun a -> Ast.Dglobal { g with Ast.g_attrs = a })
           | Ast.Dfunc f ->
               with_attrs f.Ast.f_attrs (fun a -> Ast.Dfunc { f with Ast.f_attrs = a })
           | Ast.Denum _ -> [])
         tu)
  in
  let stmt_reductions =
    List.concat
      (List.mapi
         (fun i d ->
           match d with
           | Ast.Dfunc ({ Ast.f_body = Some body; _ } as f) ->
               List.map
                 (fun body' ->
                   set_nth i (Ast.Dfunc { f with Ast.f_body = Some body' }) tu)
                 (reductions_of_stmts body)
           | _ -> [])
         tu)
  in
  drops @ stmt_reductions @ attr_drops

(* ------------------------------------------------------------------ *)
(* The descent                                                         *)
(* ------------------------------------------------------------------ *)

let rebuild_case (case : Gen.case) (tu : Ast.tunit) : Gen.case option =
  let src = Minic.Pretty.to_string tu in
  match
    Gen.case_of_source ~seed:case.Gen.c_seed ~args:case.Gen.c_args
      ~assignments:case.Gen.c_assignments src
  with
  | c -> Some c
  | exception _ -> None

(* Sub-lists to try for a list we want shorter: every singleton first,
   then every drop-one (the divergence may need two entries to interact,
   e.g. two commits where the first warms a cache the second corrupts). *)
let list_trims (xs : 'a list) : 'a list list =
  if List.length xs <= 1 then []
  else
    List.map (fun x -> [ x ]) xs
    @ (if List.length xs > 2 then List.mapi (fun i _ -> drop_nth i xs) xs else [])

(* Total size of a candidate state.  The descent only ever accepts a
   strictly smaller state, which is what makes it terminate: candidate
   generators are free to propose rewrites (canonical top sequences,
   index zeroing) that could otherwise cycle. *)
let sched_size (sched : Schedule.t) : int =
  List.fold_left
    (fun acc (r : Schedule.round) ->
      acc + 4
      + (2 * List.length r.Schedule.r_top)
      + (2 * List.length r.Schedule.r_mid)
      + List.fold_left
          (fun a (ix, _) -> a + if ix > 0 then 1 else 0)
          0 r.Schedule.r_mid
      + if r.Schedule.r_arg <> 1 then 1 else 0)
    0 sched

let state_size ((case, sched) : Gen.case * Schedule.t) : int =
  String.length case.Gen.c_src
  + (4 * List.length case.Gen.c_args)
  + (8 * List.length case.Gen.c_assignments)
  + sched_size sched

let shrink ?(budget = 300) ?chaos ?(log = ignore) (case0 : Gen.case)
    (sched0 : Schedule.t) (div0 : Oracle.divergence) : result =
  let evals = ref 0 in
  let oracle = div0.Oracle.d_oracle in
  (* keep a candidate only when the same oracle still reports a
     divergence (the detail may legitimately change as the case shrinks) *)
  let check (case, sched) : Oracle.divergence option =
    if !evals >= budget then None
    else begin
      incr evals;
      match Oracle.run_named ?chaos oracle case sched with
      | d -> d
      | exception _ -> None
    end
  in
  (* candidate streams, lazy thunks so a hit early in the list costs
     nothing for the rest.  Order matters twice over: argument and
     assignment trimming comes first because it makes every later oracle
     evaluation cheaper, and chunked statement cuts (inside
     [tunit_candidates]) come before fine-grained ones so large bodies
     collapse fast. *)
  let candidates (case, sched) :
      (string * (unit -> (Gen.case * Schedule.t) option)) list =
    let with_case c = Option.map (fun c -> (c, sched)) c in
    List.map
      (fun args ->
        ( Printf.sprintf "args -> [%s]"
            (String.concat ";" (List.map string_of_int args)),
          fun () -> with_case (Some { case with Gen.c_args = args }) ))
      (list_trims case.Gen.c_args)
    @ List.map
        (fun assignments ->
          ( Printf.sprintf "assignments -> %d" (List.length assignments),
            fun () -> with_case (Some { case with Gen.c_assignments = assignments })
          ))
        (list_trims case.Gen.c_assignments)
    @ List.map
        (fun sched' -> ("schedule", fun () -> Some (case, sched')))
        (Schedule.shrink_candidates sched)
    @ List.map
        (fun tu' ->
          ( Printf.sprintf "tunit (%d decls)" (List.length tu'),
            fun () -> with_case (rebuild_case case tu') ))
        (tunit_candidates case.Gen.c_tu)
  in
  let rec improve state div =
    if !evals >= budget then (state, div)
    else begin
      let limit = state_size state in
      let rec first = function
        | [] -> None
        | (label, thunk) :: rest -> (
            match thunk () with
            | None -> first rest
            | Some cand when state_size cand >= limit -> first rest
            | Some cand -> (
                match check cand with
                | Some d ->
                    log
                      (Printf.sprintf "  shrink: %s (size %d -> %d, eval %d)"
                         label limit (state_size cand) !evals);
                    Some (cand, d)
                | None -> first rest))
      in
      match first (candidates state) with
      | Some (state', div') -> improve state' div'
      | None -> (state, div)
    end
  in
  let (case, sched), div = improve (case0, sched0) div0 in
  { sh_case = case; sh_sched = sched; sh_divergence = div; sh_evals = !evals }
