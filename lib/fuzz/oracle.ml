module Ast = Minic.Ast
module Interp = Mv_ir.Interp
module Lower = Mv_ir.Lower
module Machine = Mv_vm.Machine
module Image = Mv_link.Image
module Runtime = Core.Runtime
module Compiler = Core.Compiler

type chaos =
  | No_chaos
  | Skip_flush
  | Lost_flush
  | Drop_ack
  | Corrupt_framemap
  | Stale_cache

type divergence = { d_oracle : string; d_detail : string }

let pp_divergence fmt d =
  Format.fprintf fmt "[%s] %s" d.d_oracle d.d_detail

let oracle_names =
  [
    "interp-vs-vm";
    "opt-vs-unopt";
    "commit-soundness";
    "commit-idempotent";
    "schedule-equiv";
    "osr-state-equiv";
    "smp-schedule-equiv";
    "lazy-eager-equiv";
  ]

(* ------------------------------------------------------------------ *)
(* Engine plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* Generated programs are trap-free, so a fault in either engine is a
   reportable outcome of its own, not noise to be matched up. *)
type outcome = Ret of int | Fault of string

let pp_outcome = function
  | Ret v -> string_of_int v
  | Fault m -> "fault:" ^ m

let interp_step_limit = 10_000_000

let run_interp it entry arg : outcome =
  match Interp.run it entry [ arg ] with
  | v -> Ret v
  | exception Interp.Fault m -> Fault m
  | exception Interp.Step_limit_exceeded -> Fault "step-limit"

let run_machine m entry arg : outcome =
  match Machine.call m entry [ arg ] with
  | v -> Ret v
  | exception Machine.Fault m' -> Fault m'

(* Observable state: every non-pointer global (arrays element-wise).
   Pointer and fnptr globals are excluded — their values depend on the
   engine's address-space layout, not on program semantics. *)
type obs = Scalar of string * int | Arr of string * int * int

let observables (case : Gen.case) : obs list =
  List.filter_map
    (function
      | Ast.Dglobal g
        when (not g.Ast.g_extern)
             && g.Ast.g_ty <> Ast.Tptr
             && g.Ast.g_ty <> Ast.Tfnptr -> (
          let w = Ast.ty_width g.Ast.g_ty in
          match g.Ast.g_array with
          | Some n -> Some (Arr (g.Ast.g_name, n, w))
          | None -> Some (Scalar (g.Ast.g_name, w)))
      | _ -> None)
    case.Gen.c_tu

let read_obs_machine img obs =
  List.concat_map
    (function
      | Scalar (name, w) -> [ (name, Image.read img (Image.symbol img name) w) ]
      | Arr (name, n, w) ->
          let base = Image.symbol img name in
          List.init n (fun i ->
              (Printf.sprintf "%s[%d]" name i, Image.read img (base + (i * w)) w)))
    obs

let read_obs_interp it obs =
  List.concat_map
    (function
      | Scalar (name, w) -> [ (name, Interp.load it (Interp.global_addr it name) w) ]
      | Arr (name, n, w) ->
          let base = Interp.global_addr it name in
          List.init n (fun i ->
              (Printf.sprintf "%s[%d]" name i, Interp.load it (base + (i * w)) w)))
    obs

let diff_states a b =
  List.find_map
    (fun ((name, va), (name', vb)) ->
      assert (name = name');
      if va <> vb then Some (Printf.sprintf "%s: %d vs %d" name va vb) else None)
    (List.combine a b)

(* Switch assignments, written width-aware so sub-word switches do not
   clobber their neighbours. *)
let switch_width (case : Gen.case) name =
  match List.find_opt (fun sw -> sw.Gen.sw_name = name) case.Gen.c_switches with
  | Some sw -> Ast.ty_width sw.Gen.sw_ty
  | None -> 8

let apply_machine case img (a : Gen.assignment) =
  List.iter
    (fun (name, v) ->
      Image.write img (Image.symbol img name) v (switch_width case name))
    a.Gen.a_ints;
  List.iter
    (fun (name, target) ->
      Image.write img (Image.symbol img name) (Image.symbol img target) 8)
    a.Gen.a_ptrs

let apply_interp it (a : Gen.assignment) =
  List.iter (fun (name, v) -> Interp.write_global it name v) a.Gen.a_ints;
  List.iter
    (fun (name, target) ->
      Interp.store it (Interp.global_addr it name) (Interp.symbol_addr it target) 8)
    a.Gen.a_ptrs

(* A machine + runtime pair with optional fault injection in the flush
   path (the chaos modes exist so the fuzzer can prove it would catch a
   pipeline that forgets to invalidate the decode cache). *)
let build_session ?(chaos = No_chaos) src =
  let program = Compiler.build_string src in
  let machine = Machine.create program.Compiler.p_image in
  let lost = ref false in
  let flush ~addr ~len =
    match chaos with
    (* [Drop_ack] breaks a cross-hart IPI channel; on a single machine
       there is no other hart, so it degenerates to a healthy flush.
       [Corrupt_framemap] bites only the OSR oracle, which corrupts the
       section itself. *)
    | No_chaos | Drop_ack | Corrupt_framemap | Stale_cache ->
        Machine.flush_icache machine ~addr ~len
    | Skip_flush -> ()
    | Lost_flush ->
        (* every other invalidation request is dropped on the floor *)
        lost := not !lost;
        if not !lost then Machine.flush_icache machine ~addr ~len
  in
  let runtime = Runtime.create program.Compiler.p_image ~flush in
  (program, machine, runtime)

let text_snapshot img =
  let t = img.Image.text in
  Image.read_bytes img t.Image.sr_base t.Image.sr_size

let diff_text ~pristine img =
  let now = text_snapshot img in
  if Bytes.equal pristine now then None
  else begin
    let n = Bytes.length pristine in
    let rec first i =
      if i >= n then n
      else if Bytes.get pristine i <> Bytes.get now i then i
      else first (i + 1)
    in
    Some (Printf.sprintf "text differs from pristine at offset +0x%x" (first 0))
  end

let make_interp src =
  let prog, _warnings = Lower.lower_string src in
  Interp.create ~step_limit:interp_step_limit [ prog ]

(* ------------------------------------------------------------------ *)
(* Oracle: reference interpreter vs full-pipeline machine              *)
(* ------------------------------------------------------------------ *)

let interp_vs_vm (case : Gen.case) (_sched : Schedule.t) : divergence option =
  let it = make_interp case.Gen.c_src in
  let _program, machine, _rt = build_session case.Gen.c_src in
  let img = _program.Compiler.p_image in
  let obs = observables case in
  let fail fmt = Printf.ksprintf (fun d -> Some { d_oracle = "interp-vs-vm"; d_detail = d }) fmt in
  (* first with the initializer defaults, then under every assignment;
     state persists across runs in both engines identically *)
  let configs = None :: List.map Option.some case.Gen.c_assignments in
  List.fold_left
    (fun acc config ->
      match acc with
      | Some _ -> acc
      | None -> (
          (match config with
          | None -> ()
          | Some a ->
              apply_interp it a;
              apply_machine case img a);
          List.fold_left
            (fun acc arg ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let ri = run_interp it case.Gen.c_entry arg in
                  let rm = run_machine machine case.Gen.c_entry arg in
                  if ri <> rm then
                    fail "driver(%d): interp=%s vm=%s" arg (pp_outcome ri)
                      (pp_outcome rm)
                  else
                    match
                      diff_states (read_obs_interp it obs) (read_obs_machine img obs)
                    with
                    | Some d -> fail "driver(%d): global %s (interp vs vm)" arg d
                    | None -> None))
            None case.Gen.c_args))
    None configs

(* ------------------------------------------------------------------ *)
(* Oracle: unoptimized IR vs optimized IR                              *)
(* ------------------------------------------------------------------ *)

let opt_vs_unopt (case : Gen.case) (_sched : Schedule.t) : divergence option =
  let plain = make_interp case.Gen.c_src in
  let opt =
    let prog, _warnings = Lower.lower_string case.Gen.c_src in
    Mv_opt.Pass.optimize_prog prog;
    Interp.create ~step_limit:interp_step_limit [ prog ]
  in
  let obs = observables case in
  let fail fmt = Printf.ksprintf (fun d -> Some { d_oracle = "opt-vs-unopt"; d_detail = d }) fmt in
  let configs = None :: List.map Option.some case.Gen.c_assignments in
  List.fold_left
    (fun acc config ->
      match acc with
      | Some _ -> acc
      | None -> (
          (match config with
          | None -> ()
          | Some a ->
              apply_interp plain a;
              apply_interp opt a);
          List.fold_left
            (fun acc arg ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let r0 = run_interp plain case.Gen.c_entry arg in
                  let r1 = run_interp opt case.Gen.c_entry arg in
                  if r0 <> r1 then
                    fail "driver(%d): -O0=%s opt=%s" arg (pp_outcome r0) (pp_outcome r1)
                  else
                    match
                      diff_states (read_obs_interp plain obs) (read_obs_interp opt obs)
                    with
                    | Some d -> fail "driver(%d): global %s (-O0 vs opt)" arg d
                    | None -> None))
            None case.Gen.c_args))
    None configs

(* ------------------------------------------------------------------ *)
(* Oracle: generic (dynamic) image vs committed image                  *)
(* ------------------------------------------------------------------ *)

let commit_soundness ?chaos (case : Gen.case) (_sched : Schedule.t) :
    divergence option =
  let _dprog, dyn_machine, _dyn_rt = build_session case.Gen.c_src in
  let dyn_img = _dprog.Compiler.p_image in
  let _cprog, com_machine, com_rt = build_session ?chaos case.Gen.c_src in
  let com_img = _cprog.Compiler.p_image in
  let pristine = text_snapshot com_img in
  let obs = observables case in
  let fail fmt =
    Printf.ksprintf (fun d -> Some { d_oracle = "commit-soundness"; d_detail = d }) fmt
  in
  let result =
    List.fold_left
      (fun acc (ai, a) ->
        match acc with
        | Some _ -> acc
        | None ->
            apply_machine case dyn_img a;
            apply_machine case com_img a;
            ignore (Runtime.commit com_rt);
            let r =
              List.fold_left
                (fun acc arg ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      let rd = run_machine dyn_machine case.Gen.c_entry arg in
                      let rc = run_machine com_machine case.Gen.c_entry arg in
                      if rd <> rc then
                        fail "assignment #%d (%s), driver(%d): generic=%s committed=%s"
                          ai
                          (Format.asprintf "%a" Gen.pp_assignment a)
                          arg (pp_outcome rd) (pp_outcome rc)
                      else
                        match
                          diff_states
                            (read_obs_machine dyn_img obs)
                            (read_obs_machine com_img obs)
                        with
                        | Some d ->
                            fail "assignment #%d, driver(%d): global %s (generic vs committed)"
                              ai arg d
                        | None -> None))
                None case.Gen.c_args
            in
            ignore (Runtime.revert com_rt);
            r)
      None
      (List.mapi (fun i a -> (i, a)) case.Gen.c_assignments)
  in
  match result with
  | Some _ -> result
  | None -> (
      match diff_text ~pristine com_img with
      | Some d -> fail "after final revert: %s" d
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Oracle: committing twice is a no-op                                 *)
(* ------------------------------------------------------------------ *)

let commit_idempotent ?chaos (case : Gen.case) (_sched : Schedule.t) :
    divergence option =
  let _prog, _machine, rt = build_session ?chaos case.Gen.c_src in
  let img = _prog.Compiler.p_image in
  let pristine = text_snapshot img in
  let fail fmt =
    Printf.ksprintf (fun d -> Some { d_oracle = "commit-idempotent"; d_detail = d }) fmt
  in
  match case.Gen.c_assignments with
  | [] -> None
  | a :: _ -> (
      apply_machine case img a;
      ignore (Runtime.commit rt);
      let snap1 = text_snapshot img in
      ignore (Runtime.commit rt);
      let snap2 = text_snapshot img in
      if not (Bytes.equal snap1 snap2) then
        fail "second commit changed the text segment"
      else begin
        ignore (Runtime.revert rt);
        match diff_text ~pristine img with
        | Some d -> fail "after revert: %s" d
        | None -> None
      end)

(* ------------------------------------------------------------------ *)
(* Oracle: scheduled commit/revert/safe-commit vs value-writes only    *)
(* ------------------------------------------------------------------ *)

(* The baseline machine receives only the schedule's value writes and
   stays generic for the whole schedule; the subject executes every
   operation, including safe ops injected at mid-run safepoint polls.
   Well-formed schedules (see schedule.mli) keep the two observationally
   equivalent. *)
let run_rounds ~subject case (machine, rt) (sched : Schedule.t) : outcome list =
  let img = machine.Machine.image in
  if subject then
    Runtime.set_live_scanner rt (fun () -> Machine.live_code_addrs machine);
  let returns =
    List.map
      (fun (round : Schedule.round) ->
        List.iter
          (fun (op : Schedule.top_op) ->
            match op with
            | Schedule.Tset a -> apply_machine case img a
            | _ when not subject -> ()
            | Schedule.Tcommit -> ignore (Runtime.commit rt)
            | Schedule.Trevert -> ignore (Runtime.revert rt)
            | Schedule.Tcommit_safe -> ignore (Runtime.commit_safe rt)
            | Schedule.Trevert_safe -> ignore (Runtime.revert_safe rt)
            | Schedule.Tdrain -> Runtime.safepoint rt)
          round.Schedule.r_top;
        if subject then begin
          let polls = ref 0 in
          let todo = ref round.Schedule.r_mid in
          Machine.set_safepoint machine
            (Some
               (fun () ->
                 let i = !polls in
                 incr polls;
                 let now, later = List.partition (fun (ix, _) -> ix = i) !todo in
                 todo := later;
                 List.iter
                   (fun ((_, op) : int * Schedule.mid_op) ->
                     let policy d = if d then Runtime.Defer else Runtime.Deny in
                     match op with
                     | Schedule.Mcommit_safe d ->
                         ignore (Runtime.commit_safe ~policy:(policy d) rt)
                     | Schedule.Mrevert_safe d ->
                         ignore (Runtime.revert_safe ~policy:(policy d) rt)
                     | Schedule.Mdrain -> ())
                   now;
                 Runtime.safepoint rt))
        end;
        run_machine machine case.Gen.c_entry round.Schedule.r_arg)
      sched
  in
  if subject then begin
    Machine.set_safepoint machine None;
    ignore (Runtime.revert rt);
    Runtime.safepoint rt
  end;
  returns

let schedule_equiv ?chaos (case : Gen.case) (sched : Schedule.t) :
    divergence option =
  if sched = [] then None
  else begin
    let _bprog, base_machine, base_rt = build_session case.Gen.c_src in
    let base_img = _bprog.Compiler.p_image in
    let _sprog, subj_machine, subj_rt = build_session ?chaos case.Gen.c_src in
    let subj_img = _sprog.Compiler.p_image in
    let pristine = text_snapshot subj_img in
    let obs = observables case in
    let fail fmt =
      Printf.ksprintf (fun d -> Some { d_oracle = "schedule-equiv"; d_detail = d }) fmt
    in
    let base_returns = run_rounds ~subject:false case (base_machine, base_rt) sched in
    let subj_returns = run_rounds ~subject:true case (subj_machine, subj_rt) sched in
    let per_round =
      List.find_map
        (fun (i, (rb, rs)) ->
          if rb <> rs then
            fail "round %d (arg %d): generic=%s scheduled=%s" i
              (List.nth sched i).Schedule.r_arg (pp_outcome rb) (pp_outcome rs)
          else None)
        (List.mapi (fun i p -> (i, p)) (List.combine base_returns subj_returns))
    in
    match per_round with
    | Some _ -> per_round
    | None -> (
        match diff_states (read_obs_machine base_img obs) (read_obs_machine subj_img obs) with
        | Some d -> fail "final global %s (generic vs scheduled)" d
        | None -> (
            match diff_text ~pristine subj_img with
            | Some d -> fail "after final revert+drain: %s" d
            | None -> None))
  end

(* ------------------------------------------------------------------ *)
(* Oracle: multi-hart schedule equivalence + icache coherence probe    *)
(* ------------------------------------------------------------------ *)

module Smp = Mv_vm.Smp

(* Auxiliary SMP workload appended to every generated case.  The [__smp_]
   prefix cannot collide with generated identifiers, and the workload
   touches only its own globals: the case's driver (pinned to hart 0) and
   the worker (pinned to the last hart) share text, the patch runtime and
   the rendezvous machinery, but no data — so driver outcomes and case
   observables must be identical under every scheduler configuration.
   Generated code never writes its switches (see gen.mli), so the mid-run
   [commit_safe] below re-stages exactly the initial case bindings; the
   only text that actually changes is [__smp_tick]'s binding. *)
let smp_aux_src =
  {|
    multiverse int __smp_mode;
    int __smp_acc;
    multiverse void __smp_tick() {
      if (__smp_mode) {
        __smp_acc = __smp_acc + 2;
      } else {
        __smp_acc = __smp_acc + 1;
      }
    }
    void __smp_worker(int n) {
      for (int i = 0; i < n; i = i + 1) {
        __smp_tick();
      }
    }
  |}

let smp_worker_iters = 48
let smp_probe_iters = 8

(* Global scheduler steps before the mode flip is injected mid-run. *)
let smp_flip_step = 40
let smp_step_budget = 5_000_000

(* Configurations whose observable behavior is compared: two seeded
   2-hart interleavings and the 1-hart degenerate container. *)
let smp_configs =
  [
    (2, 11, Smp.Weighted_random [| 2; 1 |]);
    (2, 47, Smp.Round_robin);
    (1, 1, Smp.Round_robin);
  ]

type smp_summary = {
  ss_outcomes : outcome list;
  ss_finals : (string * int) list;
}

(* The SMP counterpart of [build_session]: full cross-modifying-code
   wiring (live scanner, stop_machine barrier, breakpoint-first text
   writer, per-hart safepoints).  [Drop_ack] severs the last hart's IPI
   channel — commits neither stop nor re-flush it — which the coherence
   probe below must catch.  The flush-path chaos modes are mapped too,
   though with the text writer installed most invalidation traffic goes
   through [Smp.text_poke] and is exercised by the plain oracles. *)
let build_smp_session ?(chaos = No_chaos) ~n_harts ~policy ~seed src =
  let program = Compiler.build_string src in
  let image = program.Compiler.p_image in
  let smp = Smp.create ~policy ~seed ~n_harts image in
  let lost = ref false in
  let flush ~addr ~len =
    match chaos with
    | No_chaos | Drop_ack | Corrupt_framemap | Stale_cache -> Smp.flush_icache smp ~addr ~len
    | Skip_flush -> ()
    | Lost_flush ->
        lost := not !lost;
        if not !lost then Smp.flush_icache smp ~addr ~len
  in
  let runtime = Runtime.create image ~flush in
  Runtime.set_live_scanner runtime (fun () -> Smp.live_code_addrs smp);
  Runtime.set_patch_barrier runtime (Some (fun f -> Smp.stop_machine smp f));
  Runtime.set_text_writer runtime (Some (fun ~addr b -> Smp.text_poke smp ~addr b));
  Smp.set_safepoint smp (Some (fun () -> Runtime.safepoint runtime));
  (match chaos with
  | Drop_ack when n_harts > 1 -> Smp.set_drop_ack smp (Some (n_harts - 1))
  | _ -> ());
  (program, smp, runtime)

let smp_schedule_equiv ?chaos (case : Gen.case) (_sched : Schedule.t) :
    divergence option =
  let fail fmt =
    Printf.ksprintf
      (fun d -> Some { d_oracle = "smp-schedule-equiv"; d_detail = d })
      fmt
  in
  let src = case.Gen.c_src ^ smp_aux_src in
  let obs = observables case in
  let run_config (n_harts, seed, policy) : (smp_summary, string) result =
    let cfail fmt =
      Printf.ksprintf
        (fun d -> Error (Printf.sprintf "[%d harts, seed %d] %s" n_harts seed d))
        fmt
    in
    let _prog, smp, rt = build_smp_session ?chaos ~n_harts ~policy ~seed src in
    let img = _prog.Compiler.p_image in
    let mode_addr = Image.symbol img "__smp_mode" in
    let acc_addr = Image.symbol img "__smp_acc" in
    (match case.Gen.c_assignments with
    | [] -> ()
    | a :: _ -> apply_machine case img a);
    ignore (Runtime.commit rt);
    (* phase A: the driver runs its args on hart 0 while the worker grinds
       [__smp_tick] on the last hart; after [smp_flip_step] global steps a
       safe commit flips the tick binding under the live workload *)
    let worker_hart = n_harts - 1 in
    if worker_hart > 0 then
      Smp.start_call smp ~hart:worker_hart "__smp_worker" [ smp_worker_iters ];
    let steps = ref 0 in
    let flipped = ref false in
    let flip () =
      flipped := true;
      Image.write img mode_addr 1 8;
      ignore (Runtime.commit_safe rt)
    in
    let drive stop : string option =
      try
        while not (stop ()) do
          if (not !flipped) && !steps >= smp_flip_step then flip ();
          if !steps > smp_step_budget then
            raise (Machine.Fault "smp step budget exceeded");
          ignore (Smp.step smp);
          incr steps
        done;
        None
      with Machine.Fault m -> Some m
    in
    let outcomes =
      List.map
        (fun arg ->
          Smp.start_call smp ~hart:0 case.Gen.c_entry [ arg ];
          match drive (fun () -> not (Smp.running smp 0)) with
          | Some m -> Fault m
          | None -> Ret (Smp.result smp ~hart:0))
        case.Gen.c_args
    in
    let any_running () =
      let r = ref false in
      for h = 0 to n_harts - 1 do
        if Smp.running smp h then r := true
      done;
      !r
    in
    match drive (fun () -> not (any_running ())) with
    | Some m -> cfail "worker drain faulted: %s" m
    | None -> (
        if not !flipped then flip ();
        if Runtime.pending rt <> [] then
          cfail "safe-commit journal not drained at quiescence"
        else begin
          let acc = Image.read img acc_addr 8 in
          if
            worker_hart > 0
            && (acc < smp_worker_iters || acc > 2 * smp_worker_iters)
          then
            cfail "worker accumulator %d outside [%d, %d]" acc smp_worker_iters
              (2 * smp_worker_iters)
          else begin
            (* phase B, the coherence probe: with the flip committed and
               every hart quiescent, [smp_probe_iters] ticks on any hart
               must add exactly 2 per call — a hart still decoding the
               stale binding (a dropped flush or severed IPI channel)
               adds 1 and is caught here *)
            let probe hart =
              let before = Image.read img acc_addr 8 in
              Smp.start_call smp ~hart "__smp_worker" [ smp_probe_iters ];
              while Smp.running smp hart do
                ignore (Smp.step_hart smp hart)
              done;
              Image.read img acc_addr 8 - before
            in
            let rec check hart =
              if hart < 0 then
                Ok { ss_outcomes = outcomes; ss_finals = read_obs_machine img obs }
              else
                let delta = probe hart in
                if delta <> 2 * smp_probe_iters then
                  cfail
                    "hart %d ran a stale __smp_tick after commit: probe delta \
                     %d, expected %d"
                    hart delta (2 * smp_probe_iters)
                else check (hart - 1)
            in
            check (n_harts - 1)
          end
        end)
  in
  let results = List.map run_config smp_configs in
  match List.find_map (function Error e -> Some e | Ok _ -> None) results with
  | Some e -> fail "%s" e
  | None -> (
      let oks =
        List.filter_map (function Ok s -> Some s | Error _ -> None) results
      in
      match (smp_configs, oks) with
      | (rn, rs, _) :: rest_cfg, reference :: rest ->
          List.fold_left
            (fun acc ((n_harts, seed, _), s) ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let mism =
                    List.find_map
                      (fun (i, (a, b)) ->
                        if a <> b then
                          Some
                            (Printf.sprintf
                               "driver(%d): %s under [%d harts, seed %d] vs %s \
                                under [%d harts, seed %d]"
                               (List.nth case.Gen.c_args i) (pp_outcome a) rn
                               rs (pp_outcome b) n_harts seed)
                        else None)
                      (List.mapi
                         (fun i p -> (i, p))
                         (List.combine reference.ss_outcomes s.ss_outcomes))
                  in
                  match mism with
                  | Some d -> fail "%s" d
                  | None -> (
                      match diff_states reference.ss_finals s.ss_finals with
                      | Some d ->
                          fail
                            "final global %s ([%d harts, seed %d] vs [%d \
                             harts, seed %d])"
                            d rn rs n_harts seed
                      | None -> None)))
            None
            (List.combine rest_cfg rest)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Oracle: OSR-transferred state vs run-from-scratch                   *)
(* ------------------------------------------------------------------ *)

(* Auxiliary OSR workload appended to the case: [__osr_spin] is a
   multiversed outer loop that never quiesces while it runs — every
   iteration polls a safepoint (the [__osr_tick] return) and calls the
   case's driver.  The subject parks an activation k machine steps into
   the loop and issues a safe commit, which must defer (the loop is
   live); the only way the journal drains mid-run is an on-stack
   transfer of the parked frame into the bound variant.  The baseline
   commits the identical switch state while idle and runs from scratch.
   [__osr_mode] stays 1 in memory on both sides, so the generic body and
   the bound variant are semantically identical: any divergence in the
   return value, the case's observable globals, or the tick counter is a
   broken frame transfer, not program semantics. *)
let osr_aux_src =
  {|
    multiverse int __osr_mode;
    int __osr_sink;
    void __osr_tick() { __osr_sink = __osr_sink + 1; }
    multiverse int __osr_spin(int n, int a) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        __osr_tick();
        if (__osr_mode) { acc = acc + 2; } else { acc = acc + 1; }
        acc = acc + driver(a);
      }
      return acc;
    }
  |}

let osr_spin_iters = 6

(* Two park offsets: just past the prologue and deep inside an
   iteration, so the commit lands at different distances from the next
   safepoint. *)
let osr_park_steps = [ 3; 31 ]

(* [Corrupt_framemap]: bump the low bits of the first live entry's
   location word at every safepoint of [fn_addr]'s frame map.  The map
   still parses and the vreg sets still line up, so the transfer goes
   through — but it reads that value from the wrong register or spill
   slot and reconstructs a wrong frame, which the oracle must catch. *)
let corrupt_framemap img fn_addr =
  let module D = Core.Descriptor in
  match Image.section_range img Mv_codegen.Objfile.Mv_framemaps with
  | None -> ()
  | Some { Image.sr_base; sr_size } ->
      let limit = sr_base + sr_size in
      let rec maps off =
        if off + D.framemap_header_size <= limit then begin
          let addr = Image.read img off 8 in
          if addr <> 0 then begin
            let n_sp = Image.read img (off + 8) 4 in
            let n_saves = Image.read img (off + 16) 4 in
            let off' =
              off + D.framemap_header_size + ((n_saves + 1) / 2 * 2 * 4)
            in
            let rec sps n off =
              if n = 0 then off
              else begin
                let n_live = Image.read img (off + 8) 4 in
                let off_e = off + D.framemap_safepoint_header_size in
                if addr = fn_addr && n_live > 0 then begin
                  let loc = Image.read img (off_e + 4) 4 in
                  let loc' = loc land 0x10000 lor ((loc + 1) land 0xFFFF) in
                  Image.write img (off_e + 4) loc' 4
                end;
                sps (n - 1) (off_e + (n_live * D.framemap_live_entry_size))
              end
            in
            maps (sps n_sp off')
          end
        end
      in
      maps sr_base

let osr_state_equiv ?(chaos = No_chaos) (case : Gen.case) (_sched : Schedule.t)
    : divergence option =
  let fail fmt =
    Printf.ksprintf (fun d -> Some { d_oracle = "osr-state-equiv"; d_detail = d }) fmt
  in
  let src = case.Gen.c_src ^ osr_aux_src in
  let obs = observables case in
  let arg = match case.Gen.c_args with a :: _ -> a | [] -> 0 in
  let prep case img =
    (match case.Gen.c_assignments with
    | [] -> ()
    | a :: _ -> apply_machine case img a);
    Image.write img (Image.symbol img "__osr_mode") 1 8
  in
  (* the baseline is always healthy: chaos is injected into the subject *)
  let run_baseline () =
    let program, machine, rt = build_session src in
    let img = program.Compiler.p_image in
    prep case img;
    ignore (Runtime.commit rt);
    let out =
      match Machine.call machine "__osr_spin" [ osr_spin_iters; arg ] with
      | v -> Ret v
      | exception Machine.Fault m -> Fault m
    in
    (out, read_obs_machine img obs, Image.read img (Image.symbol img "__osr_sink") 8)
  in
  let run_subject k =
    let program = Compiler.build_string src in
    let img = program.Compiler.p_image in
    let machine = Machine.create img in
    let lost = ref false in
    let flush ~addr ~len =
      match chaos with
      | No_chaos | Drop_ack | Corrupt_framemap | Stale_cache ->
          Machine.flush_icache machine ~addr ~len
      | Skip_flush -> ()
      | Lost_flush ->
          lost := not !lost;
          if not !lost then Machine.flush_icache machine ~addr ~len
    in
    (* corrupt the section before the runtime parses it *)
    if chaos = Corrupt_framemap then
      corrupt_framemap img (Image.symbol img "__osr_spin");
    let rt = Runtime.create img ~flush in
    Runtime.set_live_scanner rt (fun () -> Machine.live_code_addrs machine);
    Machine.set_safepoint machine (Some (fun () -> Runtime.safepoint rt));
    Runtime.set_osr rt
      (Some
         (fun () ->
           {
             Runtime.oh_hart = Machine.hart_id machine;
             oh_pc = (fun () -> machine.Machine.pc);
             oh_set_pc = (fun pc -> machine.Machine.pc <- pc);
             oh_reg = (fun r -> machine.Machine.regs.(r));
             oh_set_reg = (fun r v -> machine.Machine.regs.(r) <- v);
             oh_mem = (fun addr -> Image.read img addr 8);
             oh_set_mem = (fun addr v -> Image.write img addr v 8);
             oh_set_top_frame =
               (fun addr ->
                 machine.Machine.frames <-
                   (match machine.Machine.frames with
                   | _ :: rest -> addr :: rest
                   | [] -> [ addr ]));
           }));
    prep case img;
    Machine.start_call machine "__osr_spin" [ osr_spin_iters; arg ];
    let out =
      try
        for _ = 1 to k do
          ignore (Machine.step machine)
        done;
        ignore (Runtime.commit_safe rt);
        Ret (Machine.finish machine)
      with Machine.Fault m -> Fault m
    in
    ( out,
      read_obs_machine img obs,
      Image.read img (Image.symbol img "__osr_sink") 8,
      (Runtime.stats rt).Runtime.st_osr_transfers )
  in
  let b_out, b_obs, b_sink = run_baseline () in
  List.fold_left
    (fun acc k ->
      match acc with
      | Some _ -> acc
      | None -> (
          let s_out, s_obs, s_sink, transfers = run_subject k in
          if s_out <> b_out then
            fail "park %d: transferred=%s from-scratch=%s (%d transfers)" k
              (pp_outcome s_out) (pp_outcome b_out) transfers
          else if s_sink <> b_sink then
            fail "park %d: __osr_sink %d vs %d (%d transfers)" k s_sink b_sink
              transfers
          else
            match diff_states s_obs b_obs with
            | Some d -> fail "park %d: global %s (OSR vs from-scratch)" k d
            | None -> None))
    None osr_park_steps


(* ------------------------------------------------------------------ *)
(* Oracle: eager pre-expansion vs demand-driven materialization        *)
(* ------------------------------------------------------------------ *)

(* Auxiliary workload appended to the case: a multiversed tick whose two
   bodies are the same size but semantically distinct.  Under the
   one-block budget below, flipping [__lz_mode] back and forth forces
   the variant cache to evict the resident body and recycle its block
   for the other valuation on every commit — exactly the traffic a
   stale dedup entry ([Stale_cache]) turns into a wrong-code link. *)
let lazy_aux_src =
  {|
    multiverse int __lz_mode;
    int __lz_acc;
    multiverse void __lz_tick() {
      if (__lz_mode) {
        __lz_acc = __lz_acc + 2;
      } else {
        __lz_acc = __lz_acc + 1;
      }
    }
    void __lz_probe(int n) {
      for (int i = 0; i < n; i = i + 1) {
        __lz_tick();
      }
    }
  |}

(* One 32-byte allocation — just enough for a single [__lz_tick] body
   (23 bytes) — so every distinct valuation evicts its predecessor and
   first-fit hands the freed block straight to the next materialization.
   Case variants that do not fit are denied and fall back to the generic
   body, which is observationally equivalent. *)
let lazy_budget = 32
let lazy_probe_iters = 6

(* The lazy counterpart of [build_session]: recipes recorded at compile
   time, zero variants at link time, demand-driven materialization into
   the variant-text region.  Flush-path chaos applies to the lazy
   subject like everywhere else; [Stale_cache] additionally makes
   eviction skip the dedup-table invalidation. *)
let build_lazy_session ?(chaos = No_chaos) src =
  let program = Compiler.build_string ~lazy_variants:true src in
  let machine = Machine.create program.Compiler.p_image in
  let lost = ref false in
  let flush ~addr ~len =
    match chaos with
    | No_chaos | Drop_ack | Corrupt_framemap | Stale_cache ->
        Machine.flush_icache machine ~addr ~len
    | Skip_flush -> ()
    | Lost_flush ->
        lost := not !lost;
        if not !lost then Machine.flush_icache machine ~addr ~len
  in
  let runtime = Runtime.create program.Compiler.p_image ~flush in
  Runtime.enable_lazy ~budget:lazy_budget runtime
    ~recipes:(Compiler.recipes program)
    ~call_pad:(Compiler.call_pad program);
  if chaos = Stale_cache then Runtime.set_stale_cache_chaos runtime true;
  (program, machine, runtime)

let lazy_eager_equiv ?(chaos = No_chaos) (case : Gen.case) (_sched : Schedule.t)
    : divergence option =
  let fail fmt =
    Printf.ksprintf
      (fun d -> Some { d_oracle = "lazy-eager-equiv"; d_detail = d })
      fmt
  in
  let src = case.Gen.c_src ^ lazy_aux_src in
  let obs = observables case in
  let _eprog, eager_machine, eager_rt = build_session src in
  let eimg = _eprog.Compiler.p_image in
  let _lprog, lazy_machine, lazy_rt = build_lazy_session ~chaos src in
  let limg = _lprog.Compiler.p_image in
  (* phase A: the case's own switch assignments and drivers — every
     committed valuation must behave identically whether its variant was
     pre-expanded, materialized on demand, or denied for budget *)
  let main =
    List.fold_left
      (fun acc (ai, a) ->
        match acc with
        | Some _ -> acc
        | None ->
            apply_machine case eimg a;
            apply_machine case limg a;
            ignore (Runtime.commit eager_rt);
            ignore (Runtime.commit lazy_rt);
            List.fold_left
              (fun acc arg ->
                match acc with
                | Some _ -> acc
                | None -> (
                    let re = run_machine eager_machine case.Gen.c_entry arg in
                    let rl = run_machine lazy_machine case.Gen.c_entry arg in
                    if re <> rl then
                      fail "assignment #%d, driver(%d): eager=%s lazy=%s" ai
                        arg (pp_outcome re) (pp_outcome rl)
                    else
                      match
                        diff_states
                          (read_obs_machine eimg obs)
                          (read_obs_machine limg obs)
                      with
                      | Some d ->
                          fail "assignment #%d, driver(%d): global %s (eager \
                                vs lazy)"
                            ai arg d
                      | None -> None))
              None case.Gen.c_args)
      None
      (List.mapi (fun i a -> (i, a)) case.Gen.c_assignments)
  in
  match main with
  | Some _ -> main
  | None ->
      (* phase B, the churn probe: flip the aux mode so each commit
         evicts the resident tick body and recycles its block; a stale
         dedup entry links the recycled bytes on the second mode=1
         commit and the probe delta (2 per tick vs 1) exposes it *)
      let probe img machine : (int, string) result =
        let acc_addr = Image.symbol img "__lz_acc" in
        let before = Image.read img acc_addr 8 in
        match run_machine machine "__lz_probe" lazy_probe_iters with
        | Fault m -> Error m
        | Ret _ -> Ok (Image.read img acc_addr 8 - before)
      in
      List.fold_left
        (fun acc mode ->
          match acc with
          | Some _ -> acc
          | None -> (
              Image.write eimg (Image.symbol eimg "__lz_mode") mode 8;
              Image.write limg (Image.symbol limg "__lz_mode") mode 8;
              ignore (Runtime.commit eager_rt);
              ignore (Runtime.commit lazy_rt);
              match (probe eimg eager_machine, probe limg lazy_machine) with
              | Ok de, Ok dl when de <> dl ->
                  fail
                    "mode %d: probe delta eager=%d lazy=%d (stale variant \
                     body linked)"
                    mode de dl
              | Ok _, Ok _ -> None
              | Error m, _ -> fail "mode %d: eager probe faulted: %s" mode m
              | _, Error m -> fail "mode %d: lazy probe faulted: %s" mode m))
        None
        [ 1; 0; 1; 0; 1 ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let run_named ?chaos name case sched =
  match name with
  | "interp-vs-vm" -> interp_vs_vm case sched
  | "opt-vs-unopt" -> opt_vs_unopt case sched
  | "commit-soundness" -> commit_soundness ?chaos case sched
  | "commit-idempotent" -> commit_idempotent ?chaos case sched
  | "schedule-equiv" -> schedule_equiv ?chaos case sched
  | "osr-state-equiv" -> osr_state_equiv ?chaos case sched
  | "smp-schedule-equiv" -> smp_schedule_equiv ?chaos case sched
  | "lazy-eager-equiv" -> lazy_eager_equiv ?chaos case sched
  | _ -> invalid_arg ("Oracle.run_named: unknown oracle " ^ name)

let run_all ?chaos ?(only = []) case sched =
  let names =
    if only = [] then oracle_names
    else List.filter (fun n -> List.mem n only) oracle_names
  in
  List.fold_left
    (fun acc name ->
      match acc with Some _ -> acc | None -> run_named ?chaos name case sched)
    None names
