module Ast = Minic.Ast
module Interp = Mv_ir.Interp
module Lower = Mv_ir.Lower
module Machine = Mv_vm.Machine
module Image = Mv_link.Image
module Runtime = Core.Runtime
module Compiler = Core.Compiler

type chaos = No_chaos | Skip_flush | Lost_flush

type divergence = { d_oracle : string; d_detail : string }

let pp_divergence fmt d =
  Format.fprintf fmt "[%s] %s" d.d_oracle d.d_detail

let oracle_names =
  [
    "interp-vs-vm";
    "opt-vs-unopt";
    "commit-soundness";
    "commit-idempotent";
    "schedule-equiv";
  ]

(* ------------------------------------------------------------------ *)
(* Engine plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* Generated programs are trap-free, so a fault in either engine is a
   reportable outcome of its own, not noise to be matched up. *)
type outcome = Ret of int | Fault of string

let pp_outcome = function
  | Ret v -> string_of_int v
  | Fault m -> "fault:" ^ m

let interp_step_limit = 10_000_000

let run_interp it entry arg : outcome =
  match Interp.run it entry [ arg ] with
  | v -> Ret v
  | exception Interp.Fault m -> Fault m
  | exception Interp.Step_limit_exceeded -> Fault "step-limit"

let run_machine m entry arg : outcome =
  match Machine.call m entry [ arg ] with
  | v -> Ret v
  | exception Machine.Fault m' -> Fault m'

(* Observable state: every non-pointer global (arrays element-wise).
   Pointer and fnptr globals are excluded — their values depend on the
   engine's address-space layout, not on program semantics. *)
type obs = Scalar of string * int | Arr of string * int * int

let observables (case : Gen.case) : obs list =
  List.filter_map
    (function
      | Ast.Dglobal g
        when (not g.Ast.g_extern)
             && g.Ast.g_ty <> Ast.Tptr
             && g.Ast.g_ty <> Ast.Tfnptr -> (
          let w = Ast.ty_width g.Ast.g_ty in
          match g.Ast.g_array with
          | Some n -> Some (Arr (g.Ast.g_name, n, w))
          | None -> Some (Scalar (g.Ast.g_name, w)))
      | _ -> None)
    case.Gen.c_tu

let read_obs_machine img obs =
  List.concat_map
    (function
      | Scalar (name, w) -> [ (name, Image.read img (Image.symbol img name) w) ]
      | Arr (name, n, w) ->
          let base = Image.symbol img name in
          List.init n (fun i ->
              (Printf.sprintf "%s[%d]" name i, Image.read img (base + (i * w)) w)))
    obs

let read_obs_interp it obs =
  List.concat_map
    (function
      | Scalar (name, w) -> [ (name, Interp.load it (Interp.global_addr it name) w) ]
      | Arr (name, n, w) ->
          let base = Interp.global_addr it name in
          List.init n (fun i ->
              (Printf.sprintf "%s[%d]" name i, Interp.load it (base + (i * w)) w)))
    obs

let diff_states a b =
  List.find_map
    (fun ((name, va), (name', vb)) ->
      assert (name = name');
      if va <> vb then Some (Printf.sprintf "%s: %d vs %d" name va vb) else None)
    (List.combine a b)

(* Switch assignments, written width-aware so sub-word switches do not
   clobber their neighbours. *)
let switch_width (case : Gen.case) name =
  match List.find_opt (fun sw -> sw.Gen.sw_name = name) case.Gen.c_switches with
  | Some sw -> Ast.ty_width sw.Gen.sw_ty
  | None -> 8

let apply_machine case img (a : Gen.assignment) =
  List.iter
    (fun (name, v) ->
      Image.write img (Image.symbol img name) v (switch_width case name))
    a.Gen.a_ints;
  List.iter
    (fun (name, target) ->
      Image.write img (Image.symbol img name) (Image.symbol img target) 8)
    a.Gen.a_ptrs

let apply_interp it (a : Gen.assignment) =
  List.iter (fun (name, v) -> Interp.write_global it name v) a.Gen.a_ints;
  List.iter
    (fun (name, target) ->
      Interp.store it (Interp.global_addr it name) (Interp.symbol_addr it target) 8)
    a.Gen.a_ptrs

(* A machine + runtime pair with optional fault injection in the flush
   path (the chaos modes exist so the fuzzer can prove it would catch a
   pipeline that forgets to invalidate the decode cache). *)
let build_session ?(chaos = No_chaos) src =
  let program = Compiler.build_string src in
  let machine = Machine.create program.Compiler.p_image in
  let lost = ref false in
  let flush ~addr ~len =
    match chaos with
    | No_chaos -> Machine.flush_icache machine ~addr ~len
    | Skip_flush -> ()
    | Lost_flush ->
        (* every other invalidation request is dropped on the floor *)
        lost := not !lost;
        if not !lost then Machine.flush_icache machine ~addr ~len
  in
  let runtime = Runtime.create program.Compiler.p_image ~flush in
  (program, machine, runtime)

let text_snapshot img =
  let t = img.Image.text in
  Image.read_bytes img t.Image.sr_base t.Image.sr_size

let diff_text ~pristine img =
  let now = text_snapshot img in
  if Bytes.equal pristine now then None
  else begin
    let n = Bytes.length pristine in
    let rec first i =
      if i >= n then n
      else if Bytes.get pristine i <> Bytes.get now i then i
      else first (i + 1)
    in
    Some (Printf.sprintf "text differs from pristine at offset +0x%x" (first 0))
  end

let make_interp src =
  let prog, _warnings = Lower.lower_string src in
  Interp.create ~step_limit:interp_step_limit [ prog ]

(* ------------------------------------------------------------------ *)
(* Oracle: reference interpreter vs full-pipeline machine              *)
(* ------------------------------------------------------------------ *)

let interp_vs_vm (case : Gen.case) (_sched : Schedule.t) : divergence option =
  let it = make_interp case.Gen.c_src in
  let _program, machine, _rt = build_session case.Gen.c_src in
  let img = _program.Compiler.p_image in
  let obs = observables case in
  let fail fmt = Printf.ksprintf (fun d -> Some { d_oracle = "interp-vs-vm"; d_detail = d }) fmt in
  (* first with the initializer defaults, then under every assignment;
     state persists across runs in both engines identically *)
  let configs = None :: List.map Option.some case.Gen.c_assignments in
  List.fold_left
    (fun acc config ->
      match acc with
      | Some _ -> acc
      | None -> (
          (match config with
          | None -> ()
          | Some a ->
              apply_interp it a;
              apply_machine case img a);
          List.fold_left
            (fun acc arg ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let ri = run_interp it case.Gen.c_entry arg in
                  let rm = run_machine machine case.Gen.c_entry arg in
                  if ri <> rm then
                    fail "driver(%d): interp=%s vm=%s" arg (pp_outcome ri)
                      (pp_outcome rm)
                  else
                    match
                      diff_states (read_obs_interp it obs) (read_obs_machine img obs)
                    with
                    | Some d -> fail "driver(%d): global %s (interp vs vm)" arg d
                    | None -> None))
            None case.Gen.c_args))
    None configs

(* ------------------------------------------------------------------ *)
(* Oracle: unoptimized IR vs optimized IR                              *)
(* ------------------------------------------------------------------ *)

let opt_vs_unopt (case : Gen.case) (_sched : Schedule.t) : divergence option =
  let plain = make_interp case.Gen.c_src in
  let opt =
    let prog, _warnings = Lower.lower_string case.Gen.c_src in
    Mv_opt.Pass.optimize_prog prog;
    Interp.create ~step_limit:interp_step_limit [ prog ]
  in
  let obs = observables case in
  let fail fmt = Printf.ksprintf (fun d -> Some { d_oracle = "opt-vs-unopt"; d_detail = d }) fmt in
  let configs = None :: List.map Option.some case.Gen.c_assignments in
  List.fold_left
    (fun acc config ->
      match acc with
      | Some _ -> acc
      | None -> (
          (match config with
          | None -> ()
          | Some a ->
              apply_interp plain a;
              apply_interp opt a);
          List.fold_left
            (fun acc arg ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let r0 = run_interp plain case.Gen.c_entry arg in
                  let r1 = run_interp opt case.Gen.c_entry arg in
                  if r0 <> r1 then
                    fail "driver(%d): -O0=%s opt=%s" arg (pp_outcome r0) (pp_outcome r1)
                  else
                    match
                      diff_states (read_obs_interp plain obs) (read_obs_interp opt obs)
                    with
                    | Some d -> fail "driver(%d): global %s (-O0 vs opt)" arg d
                    | None -> None))
            None case.Gen.c_args))
    None configs

(* ------------------------------------------------------------------ *)
(* Oracle: generic (dynamic) image vs committed image                  *)
(* ------------------------------------------------------------------ *)

let commit_soundness ?chaos (case : Gen.case) (_sched : Schedule.t) :
    divergence option =
  let _dprog, dyn_machine, _dyn_rt = build_session case.Gen.c_src in
  let dyn_img = _dprog.Compiler.p_image in
  let _cprog, com_machine, com_rt = build_session ?chaos case.Gen.c_src in
  let com_img = _cprog.Compiler.p_image in
  let pristine = text_snapshot com_img in
  let obs = observables case in
  let fail fmt =
    Printf.ksprintf (fun d -> Some { d_oracle = "commit-soundness"; d_detail = d }) fmt
  in
  let result =
    List.fold_left
      (fun acc (ai, a) ->
        match acc with
        | Some _ -> acc
        | None ->
            apply_machine case dyn_img a;
            apply_machine case com_img a;
            ignore (Runtime.commit com_rt);
            let r =
              List.fold_left
                (fun acc arg ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      let rd = run_machine dyn_machine case.Gen.c_entry arg in
                      let rc = run_machine com_machine case.Gen.c_entry arg in
                      if rd <> rc then
                        fail "assignment #%d (%s), driver(%d): generic=%s committed=%s"
                          ai
                          (Format.asprintf "%a" Gen.pp_assignment a)
                          arg (pp_outcome rd) (pp_outcome rc)
                      else
                        match
                          diff_states
                            (read_obs_machine dyn_img obs)
                            (read_obs_machine com_img obs)
                        with
                        | Some d ->
                            fail "assignment #%d, driver(%d): global %s (generic vs committed)"
                              ai arg d
                        | None -> None))
                None case.Gen.c_args
            in
            ignore (Runtime.revert com_rt);
            r)
      None
      (List.mapi (fun i a -> (i, a)) case.Gen.c_assignments)
  in
  match result with
  | Some _ -> result
  | None -> (
      match diff_text ~pristine com_img with
      | Some d -> fail "after final revert: %s" d
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Oracle: committing twice is a no-op                                 *)
(* ------------------------------------------------------------------ *)

let commit_idempotent ?chaos (case : Gen.case) (_sched : Schedule.t) :
    divergence option =
  let _prog, _machine, rt = build_session ?chaos case.Gen.c_src in
  let img = _prog.Compiler.p_image in
  let pristine = text_snapshot img in
  let fail fmt =
    Printf.ksprintf (fun d -> Some { d_oracle = "commit-idempotent"; d_detail = d }) fmt
  in
  match case.Gen.c_assignments with
  | [] -> None
  | a :: _ -> (
      apply_machine case img a;
      ignore (Runtime.commit rt);
      let snap1 = text_snapshot img in
      ignore (Runtime.commit rt);
      let snap2 = text_snapshot img in
      if not (Bytes.equal snap1 snap2) then
        fail "second commit changed the text segment"
      else begin
        ignore (Runtime.revert rt);
        match diff_text ~pristine img with
        | Some d -> fail "after revert: %s" d
        | None -> None
      end)

(* ------------------------------------------------------------------ *)
(* Oracle: scheduled commit/revert/safe-commit vs value-writes only    *)
(* ------------------------------------------------------------------ *)

(* The baseline machine receives only the schedule's value writes and
   stays generic for the whole schedule; the subject executes every
   operation, including safe ops injected at mid-run safepoint polls.
   Well-formed schedules (see schedule.mli) keep the two observationally
   equivalent. *)
let run_rounds ~subject case (machine, rt) (sched : Schedule.t) : outcome list =
  let img = machine.Machine.image in
  if subject then
    Runtime.set_live_scanner rt (fun () -> Machine.live_code_addrs machine);
  let returns =
    List.map
      (fun (round : Schedule.round) ->
        List.iter
          (fun (op : Schedule.top_op) ->
            match op with
            | Schedule.Tset a -> apply_machine case img a
            | _ when not subject -> ()
            | Schedule.Tcommit -> ignore (Runtime.commit rt)
            | Schedule.Trevert -> ignore (Runtime.revert rt)
            | Schedule.Tcommit_safe -> ignore (Runtime.commit_safe rt)
            | Schedule.Trevert_safe -> ignore (Runtime.revert_safe rt)
            | Schedule.Tdrain -> Runtime.safepoint rt)
          round.Schedule.r_top;
        if subject then begin
          let polls = ref 0 in
          let todo = ref round.Schedule.r_mid in
          Machine.set_safepoint machine
            (Some
               (fun () ->
                 let i = !polls in
                 incr polls;
                 let now, later = List.partition (fun (ix, _) -> ix = i) !todo in
                 todo := later;
                 List.iter
                   (fun ((_, op) : int * Schedule.mid_op) ->
                     let policy d = if d then Runtime.Defer else Runtime.Deny in
                     match op with
                     | Schedule.Mcommit_safe d ->
                         ignore (Runtime.commit_safe ~policy:(policy d) rt)
                     | Schedule.Mrevert_safe d ->
                         ignore (Runtime.revert_safe ~policy:(policy d) rt)
                     | Schedule.Mdrain -> ())
                   now;
                 Runtime.safepoint rt))
        end;
        run_machine machine case.Gen.c_entry round.Schedule.r_arg)
      sched
  in
  if subject then begin
    Machine.set_safepoint machine None;
    ignore (Runtime.revert rt);
    Runtime.safepoint rt
  end;
  returns

let schedule_equiv ?chaos (case : Gen.case) (sched : Schedule.t) :
    divergence option =
  if sched = [] then None
  else begin
    let _bprog, base_machine, base_rt = build_session case.Gen.c_src in
    let base_img = _bprog.Compiler.p_image in
    let _sprog, subj_machine, subj_rt = build_session ?chaos case.Gen.c_src in
    let subj_img = _sprog.Compiler.p_image in
    let pristine = text_snapshot subj_img in
    let obs = observables case in
    let fail fmt =
      Printf.ksprintf (fun d -> Some { d_oracle = "schedule-equiv"; d_detail = d }) fmt
    in
    let base_returns = run_rounds ~subject:false case (base_machine, base_rt) sched in
    let subj_returns = run_rounds ~subject:true case (subj_machine, subj_rt) sched in
    let per_round =
      List.find_map
        (fun (i, (rb, rs)) ->
          if rb <> rs then
            fail "round %d (arg %d): generic=%s scheduled=%s" i
              (List.nth sched i).Schedule.r_arg (pp_outcome rb) (pp_outcome rs)
          else None)
        (List.mapi (fun i p -> (i, p)) (List.combine base_returns subj_returns))
    in
    match per_round with
    | Some _ -> per_round
    | None -> (
        match diff_states (read_obs_machine base_img obs) (read_obs_machine subj_img obs) with
        | Some d -> fail "final global %s (generic vs scheduled)" d
        | None -> (
            match diff_text ~pristine subj_img with
            | Some d -> fail "after final revert+drain: %s" d
            | None -> None))
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let run_named ?chaos name case sched =
  match name with
  | "interp-vs-vm" -> interp_vs_vm case sched
  | "opt-vs-unopt" -> opt_vs_unopt case sched
  | "commit-soundness" -> commit_soundness ?chaos case sched
  | "commit-idempotent" -> commit_idempotent ?chaos case sched
  | "schedule-equiv" -> schedule_equiv ?chaos case sched
  | _ -> invalid_arg ("Oracle.run_named: unknown oracle " ^ name)

let run_all ?chaos ?(only = []) case sched =
  let names =
    if only = [] then oracle_names
    else List.filter (fun n -> List.mem n only) oracle_names
  in
  List.fold_left
    (fun acc name ->
      match acc with Some _ -> acc | None -> run_named ?chaos name case sched)
    None names
