module Json = Mv_obs.Json

type mid_op = Mcommit_safe of bool | Mrevert_safe of bool | Mdrain

type top_op =
  | Tset of Gen.assignment
  | Tcommit
  | Trevert
  | Tcommit_safe
  | Trevert_safe
  | Tdrain

type round = { r_top : top_op list; r_mid : (int * mid_op) list; r_arg : int }
type t = round list

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(* Well-formedness, maintained by every template below: a [Tset] is
   always adjacent to an operation that supersedes pending sets and
   brings the committed state back in sync with the new values, so the
   image never runs specialized code for values the switches no longer
   hold.  (At top level the machine is fully quiescent — pc at the return
   sentinel, empty stack — so commit_safe/revert_safe apply immediately
   and cannot themselves leave the state stale.) *)
let gen_top r (assignments : Gen.assignment list) ~first : top_op list =
  let set () = Tset (Rng.choose r assignments) in
  if first then [ set (); (if Rng.bool r then Tcommit else Tcommit_safe) ]
  else
    match
      Rng.weighted r
        [
          (3, `Set_commit);
          (3, `Set_commit_safe);
          (2, `Revert_set);
          (2, `Revert);
          (1, `Revert_safe);
          (1, `Recommit_safe);
          (1, `Drain);
          (1, `Nothing);
          (1, `Set_commit_revert);
        ]
    with
    | `Set_commit -> [ set (); Tcommit ]
    | `Set_commit_safe -> [ set (); Tcommit_safe ]
    | `Revert_set -> [ Trevert; set () ]
    | `Revert -> [ Trevert ]
    | `Revert_safe -> [ Trevert_safe ]
    | `Recommit_safe -> [ Tcommit_safe ]
    | `Drain -> [ Tdrain ]
    | `Nothing -> []
    | `Set_commit_revert -> [ set (); Tcommit; Trevert ]

let gen_mid r : (int * mid_op) list =
  if Rng.chance r 1 3 then []
  else
    let n = Rng.range r 1 3 in
    let op () =
      Rng.weighted r
        [
          (3, Mcommit_safe true);
          (2, Mrevert_safe true);
          (1, Mcommit_safe false);
          (1, Mrevert_safe false);
          (2, Mdrain);
        ]
    in
    List.init n (fun _ -> (Rng.int r 30, op ()))
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let gen r (case : Gen.case) : t =
  let n_rounds = Rng.range r 1 4 in
  List.init n_rounds (fun i ->
      {
        r_top = gen_top r case.Gen.c_assignments ~first:(i = 0);
        r_mid = gen_mid r;
        r_arg = Rng.range r (-4) 20;
      })

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let first_set ops =
  List.find_map (function Tset a -> Some a | _ -> None) ops

(* Candidate replacements for a round's top sequence, all well-formed. *)
let simpler_tops ops : top_op list list =
  let base = [ []; [ Trevert ] ] in
  let with_set =
    match first_set ops with
    | None -> []
    | Some a -> [ [ Tset a; Tcommit ]; [ Trevert; Tset a ] ]
  in
  List.filter (fun c -> c <> ops) (base @ with_set)

let rec drop_nth n = function
  | [] -> []
  | _ :: rest when n = 0 -> rest
  | x :: rest -> x :: drop_nth (n - 1) rest

let rec set_nth n v = function
  | [] -> []
  | _ :: rest when n = 0 -> v :: rest
  | x :: rest -> x :: set_nth (n - 1) v rest

let shrink_candidates (sched : t) : t list =
  let n = List.length sched in
  (* fewer rounds first: the biggest structural cut *)
  let fewer_rounds = List.init n (fun i -> drop_nth i sched) in
  let per_round =
    List.concat
      (List.mapi
         (fun i r ->
           let replace r' = set_nth i r' sched in
           let mid_cuts =
             List.init (List.length r.r_mid) (fun j ->
                 replace { r with r_mid = drop_nth j r.r_mid })
           in
           let mid_zero =
             if List.exists (fun (ix, _) -> ix > 0) r.r_mid then
               [ replace { r with r_mid = List.map (fun (_, op) -> (0, op)) r.r_mid } ]
             else []
           in
           let top_cuts =
             List.map (fun ops -> replace { r with r_top = ops }) (simpler_tops r.r_top)
           in
           let arg_cuts =
             if r.r_arg <> 1 then [ replace { r with r_arg = 1 } ] else []
           in
           mid_cuts @ mid_zero @ top_cuts @ arg_cuts)
         sched)
  in
  List.filter (fun c -> c <> [] && c <> sched) (fewer_rounds @ per_round)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let assignment_to_json (a : Gen.assignment) : Json.t =
  Json.Obj
    [
      ("ints", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) a.Gen.a_ints));
      ("ptrs", Json.Obj (List.map (fun (n, t) -> (n, Json.String t)) a.Gen.a_ptrs));
    ]

let assignment_of_json j : (Gen.assignment, string) result =
  let fields = function Some (Json.Obj kvs) -> Ok kvs | _ -> Error "expected object" in
  match (fields (Json.member "ints" j), fields (Json.member "ptrs" j)) with
  | Ok ints, Ok ptrs ->
      let int_of = function
        | n, Json.Int v -> Ok (n, v)
        | n, _ -> Error ("assignment int " ^ n)
      and str_of = function
        | n, Json.String s -> Ok (n, s)
        | n, _ -> Error ("assignment ptr " ^ n)
      in
      let rec all f = function
        | [] -> Ok []
        | x :: rest -> (
            match f x with
            | Error _ as e -> e
            | Ok v -> ( match all f rest with Ok vs -> Ok (v :: vs) | e -> e))
      in
      (match (all int_of ints, all str_of ptrs) with
      | Ok a_ints, Ok a_ptrs -> Ok { Gen.a_ints; a_ptrs }
      | Error e, _ | _, Error e -> Error e)
  | Error e, _ | _, Error e -> Error ("assignment: " ^ e)

let mid_to_json (ix, op) : Json.t =
  let name, defer =
    match op with
    | Mcommit_safe d -> ("commit_safe", d)
    | Mrevert_safe d -> ("revert_safe", d)
    | Mdrain -> ("drain", true)
  in
  Json.Obj [ ("at", Json.Int ix); ("op", Json.String name); ("defer", Json.Bool defer) ]

let top_to_json : top_op -> Json.t = function
  | Tset a -> Json.Obj [ ("op", Json.String "set"); ("values", assignment_to_json a) ]
  | Tcommit -> Json.Obj [ ("op", Json.String "commit") ]
  | Trevert -> Json.Obj [ ("op", Json.String "revert") ]
  | Tcommit_safe -> Json.Obj [ ("op", Json.String "commit_safe") ]
  | Trevert_safe -> Json.Obj [ ("op", Json.String "revert_safe") ]
  | Tdrain -> Json.Obj [ ("op", Json.String "drain") ]

let to_json (sched : t) : Json.t =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("top", Json.List (List.map top_to_json r.r_top));
             ("mid", Json.List (List.map mid_to_json r.r_mid));
             ("arg", Json.Int r.r_arg);
           ])
       sched)

let top_of_json j : (top_op, string) result =
  match Json.member "op" j with
  | Some (Json.String "set") -> (
      match Json.member "values" j with
      | Some v -> (
          match assignment_of_json v with Ok a -> Ok (Tset a) | Error e -> Error e)
      | None -> Error "set without values")
  | Some (Json.String "commit") -> Ok Tcommit
  | Some (Json.String "revert") -> Ok Trevert
  | Some (Json.String "commit_safe") -> Ok Tcommit_safe
  | Some (Json.String "revert_safe") -> Ok Trevert_safe
  | Some (Json.String "drain") -> Ok Tdrain
  | _ -> Error "unknown top op"

let mid_of_json j : (int * mid_op, string) result =
  let defer = match Json.member "defer" j with Some (Json.Bool b) -> b | _ -> true in
  match (Json.member "at" j, Json.member "op" j) with
  | Some (Json.Int ix), Some (Json.String "commit_safe") -> Ok (ix, Mcommit_safe defer)
  | Some (Json.Int ix), Some (Json.String "revert_safe") -> Ok (ix, Mrevert_safe defer)
  | Some (Json.Int ix), Some (Json.String "drain") -> Ok (ix, Mdrain)
  | _ -> Error "unknown mid op"

let of_json (j : Json.t) : (t, string) result =
  let rec all f = function
    | [] -> Ok []
    | x :: rest -> (
        match f x with
        | Error _ as e -> e
        | Ok v -> ( match all f rest with Ok vs -> Ok (v :: vs) | e -> e))
  in
  match j with
  | Json.List rounds ->
      all
        (fun r ->
          let arg = match Json.member "arg" r with Some (Json.Int a) -> a | _ -> 1 in
          let elems = function
            | Some (Json.List xs) -> Ok xs
            | None -> Ok []
            | _ -> Error "expected list"
          in
          match (elems (Json.member "top" r), elems (Json.member "mid" r)) with
          | Ok tops, Ok mids -> (
              match (all top_of_json tops, all mid_of_json mids) with
              | Ok r_top, Ok r_mid -> Ok { r_top; r_mid; r_arg = arg }
              | Error e, _ | _, Error e -> Error e)
          | Error e, _ | _, Error e -> Error e)
        rounds
  | _ -> Error "schedule: expected a list of rounds"

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for reproducer reports)                            *)
(* ------------------------------------------------------------------ *)

let pp_top fmt = function
  | Tset a -> Format.fprintf fmt "set(%a)" Gen.pp_assignment a
  | Tcommit -> Format.pp_print_string fmt "commit"
  | Trevert -> Format.pp_print_string fmt "revert"
  | Tcommit_safe -> Format.pp_print_string fmt "commit_safe"
  | Trevert_safe -> Format.pp_print_string fmt "revert_safe"
  | Tdrain -> Format.pp_print_string fmt "drain"

let pp_mid fmt (ix, op) =
  let name =
    match op with
    | Mcommit_safe true -> "commit_safe"
    | Mcommit_safe false -> "commit_safe[deny]"
    | Mrevert_safe true -> "revert_safe"
    | Mrevert_safe false -> "revert_safe[deny]"
    | Mdrain -> "drain"
  in
  Format.fprintf fmt "@@%d:%s" ix name

let pp fmt (sched : t) =
  List.iteri
    (fun i r ->
      Format.fprintf fmt "round %d: top=[%a] mid=[%a] arg=%d@." i
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_top)
        r.r_top
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ") pp_mid)
        r.r_mid r.r_arg)
    sched
