(** Differential oracles.

    Each oracle runs one generated case through a pair of pipeline
    configurations whose observable behavior must match, and reports the
    first divergence: differing return values, differing observable
    global/array state after a run, a fault on one side only, or
    text-segment bytes that fail to return to the pristine image after a
    final revert.

    Observable state excludes pointer-typed globals (their values are
    layout-dependent) and [__rdtsc] never occurs in generated programs, so
    any divergence is a genuine bug in the pipeline under test. *)

(** Fault injection for validating the oracles themselves: [Skip_flush]
    drops the runtime's icache flushes entirely, [Lost_flush] drops every
    other flush request (a lost invalidation IPI — the classic
    cross-modifying-code bug), [Drop_ack] severs one hart's IPI channel
    in the multi-hart oracle (it is neither stopped by the rendezvous nor
    re-flushed, so it keeps executing the stale variant), and
    [Corrupt_framemap] bumps one live-entry location per safepoint in the
    OSR oracle's frame map, so the on-stack transfer reconstructs the
    parked frame from the wrong register or spill slot, and
    [Stale_cache] makes variant-cache eviction skip the dedup-table
    invalidation in the lazy oracle, so a later structural-hash hit
    links a freed-and-recycled block holding some other variant's body.
    A healthy pipeline diverges under each, and the fuzzer must catch
    it. *)
type chaos =
  | No_chaos
  | Skip_flush
  | Lost_flush
  | Drop_ack
  | Corrupt_framemap
  | Stale_cache

(** A caught mismatch: which oracle fired and a human-readable account
    of the first differing observation. *)
type divergence = {
  d_oracle : string;
  d_detail : string;
}

(** [<oracle>: <detail>], one line. *)
val pp_divergence : Format.formatter -> divergence -> unit

(** All oracle names, in the order {!run_all} tries them. *)
val oracle_names : string list

(** Run one oracle by name ([Invalid_argument] on unknown names).
    [chaos] affects the oracles that patch ([commit-soundness],
    [commit-idempotent], [schedule-equiv], [osr-state-equiv],
    [smp-schedule-equiv], [lazy-eager-equiv] — [Drop_ack] bites only
    the multi-hart oracle, which runs the case's driver against a
    patched-under-load multi-hart workload and probes every hart's
    icache coherence after the rendezvous; [Corrupt_framemap] bites only
    [osr-state-equiv], which compares a frame transferred mid-loop by
    on-stack replacement against the same program run from scratch in
    the committed world; [Stale_cache] bites only [lazy-eager-equiv],
    which runs every committed valuation through an eager pre-expansion
    session and a demand-driven session whose one-block byte budget
    forces continual evict-and-recycle churn — results and observable
    globals must match, cycle counts aside). *)
val run_named :
  ?chaos:chaos -> string -> Gen.case -> Schedule.t -> divergence option

(** Run every oracle; first divergence wins.  [only] restricts to a
    subset of {!oracle_names}. *)
val run_all :
  ?chaos:chaos ->
  ?only:string list ->
  Gen.case ->
  Schedule.t ->
  divergence option
