(** Deterministic pseudo-random stream for the fuzzer (splitmix64).

    Every generated artifact — program, schedule, shrink order — is a pure
    function of the integer seed, independent of [Stdlib.Random] state and
    of the qcheck version, so a CI failure replays byte-for-byte from its
    seed alone ([mvfuzz --seed N --replay]). *)

type t

(** A fresh stream.  Equal seeds yield equal streams. *)
val create : int -> t

(** A derived, independent stream ([label] separates the sub-streams of
    one seed, e.g. program vs schedule generation). *)
val split : t -> int -> t

(** Uniform in [\[0, bound)]; [bound >= 1]. *)
val int : t -> int -> int

(** Uniform in [\[lo, hi\]] (inclusive). *)
val range : t -> int -> int -> int

(** Fair coin. *)
val bool : t -> bool

(** [chance t num den] is true with probability [num/den]. *)
val chance : t -> int -> int -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Weighted element of a non-empty [(weight, value)] list; weights are
    positive ints. *)
val weighted : t -> (int * 'a) list -> 'a

(** Random subset (independent 1/2 coin per element). *)
val subset : t -> 'a list -> 'a list

(** [sample t k xs] is [k] distinct elements (or all of [xs] when shorter),
    in stream order. *)
val sample : t -> int -> 'a list -> 'a list

(** Fisher-Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list
