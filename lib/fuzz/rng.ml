(* Splitmix64 (Steele, Lea, Flood: "Fast splittable pseudorandom number
   generators"), the standard seedable stream: one 64-bit state word, a
   Weyl-sequence increment, and a finalizer.  Chosen over [Random.State]
   so the byte stream is pinned by this file, not by the OCaml stdlib
   version. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L
let mix1 = 0xBF58476D1CE4E5B9L
let mix2 = 0x94D049BB133111EBL

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let t = { state = Int64.of_int seed } in
  (* one warm-up step decorrelates small consecutive seeds *)
  ignore (next t);
  t

let split t label =
  let t' = { state = Int64.logxor (next t) (Int64.of_int (label * 0x2545F491)) } in
  ignore (next t');
  t'

(* top 62 bits as a non-negative OCaml int *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 1
let chance t num den = int t den < num

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.weighted: weights must be positive";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | (w, v) :: rest -> if k < w then v else pick (k - w) rest
  in
  pick k pairs

let subset t xs = List.filter (fun _ -> bool t) xs

let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    (* reservoir-free: mark k distinct indices *)
    let picked = Hashtbl.create k in
    while Hashtbl.length picked < k do
      Hashtbl.replace picked (int t n) ()
    done;
    List.filteri (fun i _ -> Hashtbl.mem picked i) xs
  end

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
