(** Reproducer corpus: JSON files ([mv-fuzz-repro/1]) that pin a
    divergence byte-for-byte — source text, driver arguments, switch
    assignments, schedule, and the oracle that caught it — so a CI
    failure replays anywhere with [mvfuzz --check-corpus]. *)

type entry = {
  e_seed : int;
  e_oracle : string;
  e_detail : string;  (** divergence detail at save time (informational) *)
  e_src : string;
  e_args : int list;
  e_assignments : Gen.assignment list;
  e_schedule : Schedule.t;
}

(** The persistable entry for a shrunk divergence. *)
val of_shrunk : Shrink.result -> entry

(** Rebuild the runnable case ([Gen.case_of_source]; raises front-end
    exceptions if the stored source no longer parses). *)
val to_case : entry -> Gen.case

(** On-disk (de)serialization; [of_json] reports malformed entries
    instead of raising. *)
val to_json : entry -> Mv_obs.Json.t

val of_json : Mv_obs.Json.t -> (entry, string) result

(** Write the entry to [dir] (created if missing) as
    [repro-seed<N>-<oracle>.json]; returns the path. *)
val save : dir:string -> entry -> string

(** Parse one reproducer file. *)
val load_file : string -> (entry, string) result

(** All [*.json] entries of a directory, sorted by filename; parse
    failures are reported per file. *)
val load_dir : string -> (string * (entry, string) result) list

(** A ready-to-paste Alcotest test case asserting the oracle passes —
    the import path into [test_diff_battery.ml] described in
    EXPERIMENTS.md E15. *)
val ocaml_snippet : entry -> string
