(** Structural shrinking of a diverging case + schedule.

    Greedy first-improvement descent over one-step reductions: drop
    schedule rounds and operations, drop whole declarations, drop
    attributes, delete statements, unwrap compound statements into their
    bodies, and trim arguments/assignments — keeping a candidate only
    when it still re-parses, re-checks, and still diverges on the {e
    same oracle} that caught the original.  Deterministic (no randomness)
    and bounded by an evaluation budget, since each evaluation may
    rebuild and rerun the program. *)

type result = {
  sh_case : Gen.case;
  sh_sched : Schedule.t;
  sh_divergence : Oracle.divergence;  (** divergence of the shrunk case *)
  sh_evals : int;  (** oracle evaluations spent *)
}

val shrink :
  ?budget:int ->
  ?chaos:Oracle.chaos ->
  ?log:(string -> unit) ->
  Gen.case ->
  Schedule.t ->
  Oracle.divergence ->
  result
(** [log] receives one line per adopted reduction (default: silent). *)
