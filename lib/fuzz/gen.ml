(* Typed random Mini-C program generator.

   The generator builds an [Ast.tunit] directly (no string templates),
   pretty-prints it, and re-checks the text through the real front end, so
   the canonical artifact of a case is its source.  See gen.mli for the
   three invariants (well-typed, trap-free/terminating, observably
   deterministic) and how they are maintained. *)

module Ast = Minic.Ast

type switch = {
  sw_name : string;
  sw_ty : Ast.ty;
  sw_domain : int list;
  sw_targets : string list;
}

type assignment = {
  a_ints : (string * int) list;
  a_ptrs : (string * string) list;
}

type case = {
  c_seed : int;
  c_tu : Ast.tunit;
  c_src : string;
  c_switches : switch list;
  c_entry : string;
  c_args : int list;
  c_assignments : assignment list;
}

type cfg = {
  n_helpers : int * int;
  n_switches : int * int;
  n_leaves : int * int;
  stmt_fuel : int;
  max_block : int;
  max_depth : int;
  max_expr_depth : int;
  n_args : int * int;
  n_assignments : int * int;
  work_budget : int;
}

let default_cfg =
  {
    n_helpers = (1, 3);
    n_switches = (1, 3);
    n_leaves = (1, 3);
    stmt_fuel = 26;
    max_block = 4;
    max_depth = 3;
    max_expr_depth = 3;
    n_args = (1, 3);
    n_assignments = (2, 4);
    work_budget = 30_000;
  }

let small_cfg =
  {
    n_helpers = (1, 2);
    n_switches = (1, 2);
    n_leaves = (1, 2);
    stmt_fuel = 12;
    max_block = 3;
    max_depth = 2;
    max_expr_depth = 2;
    n_args = (1, 2);
    n_assignments = (2, 3);
    work_budget = 8_000;
  }

(* ------------------------------------------------------------------ *)
(* AST shorthands                                                      *)
(* ------------------------------------------------------------------ *)

let e d : Ast.expr = { Ast.edesc = d; eloc = Ast.dummy_loc }
let s d : Ast.stmt = { Ast.sdesc = d; sloc = Ast.dummy_loc }
let lit n = e (Ast.Eint n)
let var v = e (Ast.Evar v)
let bin op a b = e (Ast.Ebinop (op, a, b))
let un op a = e (Ast.Eunop (op, a))

(* masks are powers of two minus one, so [x land m] is always in [0, m] *)
let masked x m = bin Ast.Band x (lit m)
let assign l x = s (Ast.Sassign (l, x))
let assign_var v x = assign (Ast.Lvar v) x
let decl name ty init = s (Ast.Sdecl (name, ty, Some init))

(* a[i & (len-1)], both as value and as lvalue *)
let arr_index name len i = (var name, masked i (len - 1))

(* ------------------------------------------------------------------ *)
(* Per-function generation context                                     *)
(* ------------------------------------------------------------------ *)

type fctx = {
  r : Rng.t;
  cfg : cfg;
  (* static *)
  callables : (string * int * bool * int) list;  (* name, arity, has result, cost *)
  fnptr_calls : (string * int) list;  (* fnptr global, worst-case target cost *)
  switch_rvals : string list;  (* integer-like switches: read-only *)
  enum_consts : string list;
  int_globals : string list;  (* plain word-sized globals: read/write *)
  arrays : (string * int * int) list;  (* name, elems (power of two), elem width *)
  ret_ty : Ast.ty;
  (* mutable generation state *)
  mutable ro_ints : string list;  (* params, loop counters, fuel vars *)
  mutable mut_ints : string list;  (* assignable int locals *)
  mutable ptr_locals : string list;  (* word-aligned pointers into arrays *)
  mutable fresh : int;
  mutable fuel : int;
  mutable cost : int;  (* worst-case dynamic statements, multiplier applied *)
  mutable mult : int;  (* product of enclosing loop bounds *)
  mutable loop_depth : int;
}

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let charge ctx n = ctx.cost <- ctx.cost + (n * ctx.mult)
let affordable ctx n = ctx.cost + (n * ctx.mult) <= ctx.cfg.work_budget

(* word-sized arrays: safe targets for 8-byte derefs and atomic_xchg *)
let word_arrays ctx = List.filter (fun (_, _, w) -> w = 8) ctx.arrays

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* An integer expression.  Pointer-valued things (array bases, &symbols,
   ptr locals) never appear here: pointer values are layout-dependent and
   must not flow into observable results. *)
let rec gen_int ctx depth : Ast.expr =
  if depth <= 0 then gen_leaf ctx
  else
    let arms =
      [
        (3, `Leaf);
        (6, `Arith);
        (3, `Cmp);
        (2, `Logic);
        (2, `Divmod);
        (2, `Shift);
        (2, `Unop);
        (2, `Cond);
        (if ctx.arrays <> [] then 3 else 0), `Index;
        (if word_arrays ctx <> [] then 1 else 0), `Deref;
        (if ctx.arrays <> [] then 1 else 0), `Derefw;
        (if call_candidates ctx <> [] then 2 else 0), `Call;
        (if fnptr_candidates ctx <> [] then 1 else 0), `Fpcall;
        (if word_arrays ctx <> [] then 1 else 0), `Xchg;
      ]
      |> List.filter (fun (w, _) -> w > 0)
    in
    match Rng.weighted ctx.r arms with
    | `Leaf -> gen_leaf ctx
    | `Arith ->
        let op = Rng.choose ctx.r Ast.[ Add; Sub; Mul; Band; Bor; Bxor ] in
        bin op (gen_int ctx (depth - 1)) (gen_int ctx (depth - 1))
    | `Cmp ->
        let op = Rng.choose ctx.r Ast.[ Eq; Ne; Lt; Le; Gt; Ge ] in
        bin op (gen_int ctx (depth - 1)) (gen_int ctx (depth - 1))
    | `Logic ->
        let op = Rng.choose ctx.r Ast.[ Land; Lor ] in
        bin op (gen_int ctx (depth - 1)) (gen_int ctx (depth - 1))
    | `Divmod ->
        (* divisor masked into [1, 8]: no division by zero, no overflow *)
        let op = Rng.choose ctx.r Ast.[ Div; Mod ] in
        bin op (gen_int ctx (depth - 1))
          (bin Ast.Add (masked (gen_int ctx (depth - 1)) 7) (lit 1))
    | `Shift ->
        let op = Rng.choose ctx.r Ast.[ Shl; Shr ] in
        bin op (gen_int ctx (depth - 1)) (masked (gen_int ctx (depth - 1)) 15)
    | `Unop -> un (Rng.choose ctx.r Ast.[ Neg; Lnot; Bnot ]) (gen_int ctx (depth - 1))
    | `Cond ->
        e
          (Ast.Econd
             (gen_int ctx (depth - 1), gen_int ctx (depth - 1), gen_int ctx (depth - 1)))
    | `Index ->
        let name, len, _ = Rng.choose ctx.r ctx.arrays in
        let a, i = arr_index name len (gen_int ctx (depth - 1)) in
        e (Ast.Eindex (a, i))
    | `Deref -> e (Ast.Ederef (gen_ptr ctx (depth - 1) 8))
    | `Derefw ->
        let w = Rng.choose ctx.r [ 1; 2; 4 ] in
        e (Ast.Ederefw (w, gen_ptr ctx (depth - 1) w))
    | `Call -> gen_call ctx depth
    | `Fpcall -> gen_fnptr_call ctx depth
    | `Xchg ->
        e (Ast.Eintrinsic (Ast.Iatomic_xchg, [ gen_ptr ctx 1 8; gen_int ctx (depth - 1) ]))

and gen_leaf ctx : Ast.expr =
  let arms =
    [
      (4, `Lit);
      (List.length ctx.ro_ints * 3, `Ro);
      (List.length ctx.mut_ints * 3, `Mut);
      (List.length ctx.int_globals * 2, `Global);
      (List.length ctx.switch_rvals * 3, `Switch);
      (List.length ctx.enum_consts, `Enum);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.weighted ctx.r arms with
  | `Lit ->
      if Rng.chance ctx.r 1 12 then lit (Rng.choose ctx.r [ 0x1234_5678; -0x0FED_CBA9; 1 lsl 40 ])
      else lit (Rng.range ctx.r (-64) 64)
  | `Ro -> var (Rng.choose ctx.r ctx.ro_ints)
  | `Mut -> var (Rng.choose ctx.r ctx.mut_ints)
  | `Global -> var (Rng.choose ctx.r ctx.int_globals)
  | `Switch -> var (Rng.choose ctx.r ctx.switch_rvals)
  | `Enum -> var (Rng.choose ctx.r ctx.enum_consts)

(* A pointer expression that a [width]-byte access may safely dereference:
   array base + byte offset masked to [0, total - width] (the mask keeps
   the offset width-aligned because total and width are powers of two), an
   existing word-aligned pointer local, or the address of a word-sized
   global (width <= 8 at offset 0). *)
and gen_ptr ctx depth width : Ast.expr =
  (* ptr locals are always 8-byte aligned into a word array, so any
     access of width <= 8 through one stays in bounds *)
  let arms =
    [
      (3, `Array);
      (List.length ctx.ptr_locals * 2, `Local);
      (List.length ctx.int_globals, `Addr);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.weighted ctx.r arms with
  | `Local -> var (Rng.choose ctx.r ctx.ptr_locals)
  | `Addr -> e (Ast.Eaddr_of_var (Rng.choose ctx.r ctx.int_globals))
  | `Array -> (
      let pool = List.filter (fun (_, len, w) -> len * w >= width) ctx.arrays in
      match pool with
      | [] -> e (Ast.Eaddr_of_var (Rng.choose ctx.r ctx.int_globals))
      | _ ->
          (* total and width are powers of two with width <= total, so the
             mask (total - width) keeps the byte offset width-aligned and
             the access entirely inside the array *)
          let name, len, w = Rng.choose ctx.r pool in
          let total = len * w in
          bin Ast.Add (var name) (masked (gen_int ctx depth) (total - width)))

and call_candidates ctx =
  List.filter (fun (_, _, res, cost) -> res && affordable ctx (cost + 1)) ctx.callables

and fnptr_candidates ctx =
  List.filter (fun (_, cost) -> affordable ctx (cost + 1)) ctx.fnptr_calls

and gen_call ctx depth : Ast.expr =
  let name, arity, _, cost = Rng.choose ctx.r (call_candidates ctx) in
  charge ctx (cost + 1);
  e (Ast.Ecall (name, List.init arity (fun _ -> gen_int ctx (min 1 (depth - 1)))))

and gen_fnptr_call ctx depth : Ast.expr =
  let name, cost = Rng.choose ctx.r (fnptr_candidates ctx) in
  charge ctx (cost + 1);
  e (Ast.Ecall (name, [ gen_int ctx (min 1 (depth - 1)) ]))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let gen_cond ctx = gen_int ctx (min 2 ctx.cfg.max_expr_depth)

let cheap_stmt ctx : Ast.stmt =
  match ctx.mut_ints with
  | v :: _ -> assign_var v (bin Ast.Add (var v) (lit (Rng.range ctx.r 1 5)))
  | [] -> (
      match ctx.int_globals with
      | g :: _ -> assign_var g (bin Ast.Add (var g) (lit (Rng.range ctx.r 1 5)))
      | [] -> s (Ast.Sexpr (e (Ast.Eintrinsic (Ast.Ipause, [])))))

let rec gen_stmts ctx depth : Ast.stmt list =
  if ctx.fuel <= 0 || not (affordable ctx 1) then begin
    charge ctx 1;
    [ cheap_stmt ctx ]
  end
  else begin
    ctx.fuel <- ctx.fuel - 1;
    charge ctx 1;
    let arms =
      [
        (3, `Decl);
        (5, `Assign);
        ((if depth > 0 then 3 else 0), `If);
        ((if depth > 0 && affordable ctx 8 then 3 else 0), `For);
        ((if depth > 0 && affordable ctx 8 then 2 else 0), `While);
        ((if depth > 0 && affordable ctx 6 then 1 else 0), `Dowhile);
        ((if depth > 0 then 2 else 0), `Switch);
        (2, `Expr);
        ((if ctx.ret_ty <> Ast.Tvoid || Rng.bool ctx.r then 1 else 0), `Return);
        ((if ctx.loop_depth > 0 then 2 else 0), `Breakcont);
        ((if word_arrays ctx <> [] then 1 else 0), `Ptrdecl);
        ((if depth > 0 then 1 else 0), `Block);
      ]
      |> List.filter (fun (w, _) -> w > 0)
    in
    match Rng.weighted ctx.r arms with
    | `Decl ->
        let name = fresh ctx "x" in
        let d = decl name Ast.int_ty (gen_int ctx ctx.cfg.max_expr_depth) in
        ctx.mut_ints <- name :: ctx.mut_ints;
        [ d ]
    | `Assign -> [ gen_assign ctx ]
    | `If ->
        let c = gen_cond ctx in
        let t = gen_block ctx (depth - 1) in
        let f = if Rng.chance ctx.r 2 3 then gen_block ctx (depth - 1) else [] in
        [ s (Ast.Sif (c, t, f)) ]
    | `For ->
        let k = Rng.range ctx.r 1 6 in
        let i = fresh ctx "i" in
        let body = in_loop ctx k (fun () -> gen_block ~extra_ro:[ i ] ctx (depth - 1)) in
        [
          s
            (Ast.Sfor
               ( Some (decl i Ast.int_ty (lit 0)),
                 Some (bin Ast.Lt (var i) (lit k)),
                 Some (assign_var i (bin Ast.Add (var i) (lit 1))),
                 body ));
        ]
    | `While ->
        (* fuel-bounded: [int t = k; while (t > 0) { t = t - 1; ... }];
           the fuel variable is read-only for the body generator *)
        let k = Rng.range ctx.r 1 6 in
        let t = fresh ctx "t" in
        let body = in_loop ctx k (fun () -> gen_block ~extra_ro:[ t ] ctx (depth - 1)) in
        [
          decl t Ast.int_ty (lit k);
          s
            (Ast.Swhile
               ( bin Ast.Gt (var t) (lit 0),
                 assign_var t (bin Ast.Sub (var t) (lit 1)) :: body ));
        ]
    | `Dowhile ->
        let k = Rng.range ctx.r 1 4 in
        let t = fresh ctx "t" in
        let body = in_loop ctx k (fun () -> gen_block ~extra_ro:[ t ] ctx (depth - 1)) in
        [
          decl t Ast.int_ty (lit k);
          s
            (Ast.Sdo_while
               ( assign_var t (bin Ast.Sub (var t) (lit 1)) :: body,
                 bin Ast.Gt (var t) (lit 0) ));
        ]
    | `Switch ->
        let scrut = masked (gen_int ctx ctx.cfg.max_expr_depth) 3 in
        let labels = Rng.sample ctx.r (Rng.range ctx.r 1 3) [ 0; 1; 2; 3; 4 ] in
        (* each case label gets its own body (no fall-through in Mini-C) *)
        let cases =
          List.map (fun l -> ([ l ], gen_block ctx (depth - 1))) labels
        in
        let default =
          if Rng.chance ctx.r 3 4 then Some (gen_block ctx (depth - 1)) else None
        in
        [ s (Ast.Sswitch (scrut, cases, default)) ]
    | `Expr -> [ gen_effect ctx ]
    | `Return ->
        let ret =
          match ctx.ret_ty with
          | Ast.Tvoid -> s (Ast.Sreturn None)
          | _ -> s (Ast.Sreturn (Some (gen_int ctx ctx.cfg.max_expr_depth)))
        in
        [ s (Ast.Sif (gen_cond ctx, [ ret ], [])) ]
    | `Breakcont ->
        let brk = if Rng.chance ctx.r 2 3 then Ast.Sbreak else Ast.Scontinue in
        [ s (Ast.Sif (gen_cond ctx, [ s brk ], [])) ]
    | `Ptrdecl ->
        let name, len, w = Rng.choose ctx.r (word_arrays ctx) in
        let p = fresh ctx "p" in
        let d =
          decl p Ast.Tptr
            (bin Ast.Add (var name) (masked (gen_int ctx 1) ((len * w) - 8)))
        in
        ctx.ptr_locals <- p :: ctx.ptr_locals;
        [ d ]
    | `Block -> [ s (Ast.Sblock (gen_block ctx (depth - 1))) ]
  end

and in_loop ctx k body =
  let saved_mult = ctx.mult in
  ctx.mult <- ctx.mult * k;
  ctx.loop_depth <- ctx.loop_depth + 1;
  let r = body () in
  ctx.loop_depth <- ctx.loop_depth - 1;
  ctx.mult <- saved_mult;
  r

and gen_assign ctx : Ast.stmt =
  let v = gen_int ctx ctx.cfg.max_expr_depth in
  let arms =
    [
      (List.length ctx.mut_ints * 3, `Local);
      (List.length ctx.int_globals * 3, `Global);
      (List.length ctx.arrays * 2, `Index);
      ((if word_arrays ctx <> [] then 1 else 0), `Deref);
      ((if ctx.arrays <> [] then 1 else 0), `Derefw);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.weighted ctx.r arms with
  | `Local -> assign_var (Rng.choose ctx.r ctx.mut_ints) v
  | `Global -> assign_var (Rng.choose ctx.r ctx.int_globals) v
  | `Index ->
      let name, len, _ = Rng.choose ctx.r ctx.arrays in
      let a, i = arr_index name len (gen_int ctx 2) in
      assign (Ast.Lindex (a, i)) v
  | `Deref -> assign (Ast.Lderef (gen_ptr ctx 1 8)) v
  | `Derefw ->
      let w = Rng.choose ctx.r [ 1; 2; 4 ] in
      assign (Ast.Lderefw (w, gen_ptr ctx 1 w)) v

and gen_effect ctx : Ast.stmt =
  let void_calls =
    List.filter (fun (_, _, _, cost) -> affordable ctx (cost + 1)) ctx.callables
  in
  let arms =
    [
      (2, `Intrinsic);
      ((if void_calls <> [] then 3 else 0), `Call);
      ((if word_arrays ctx <> [] then 1 else 0), `Xchg);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.weighted ctx.r arms with
  | `Intrinsic ->
      let i = Rng.choose ctx.r Ast.[ Ifence; Ipause; Icli; Isti ] in
      s (Ast.Sexpr (e (Ast.Eintrinsic (i, []))))
  | `Call ->
      let name, arity, _, cost = Rng.choose ctx.r void_calls in
      charge ctx (cost + 1);
      s (Ast.Sexpr (e (Ast.Ecall (name, List.init arity (fun _ -> gen_int ctx 1)))))
  | `Xchg ->
      s (Ast.Sexpr (e (Ast.Eintrinsic (Ast.Iatomic_xchg, [ gen_ptr ctx 1 8; gen_int ctx 2 ]))))

and gen_block ?(extra_ro = []) ctx depth : Ast.stmt list =
  let saved_ro = ctx.ro_ints
  and saved_mut = ctx.mut_ints
  and saved_ptr = ctx.ptr_locals in
  ctx.ro_ints <- extra_ro @ ctx.ro_ints;
  let n = Rng.range ctx.r 1 ctx.cfg.max_block in
  let stmts = List.concat (List.init n (fun _ -> gen_stmts ctx depth)) in
  ctx.ro_ints <- saved_ro;
  ctx.mut_ints <- saved_mut;
  ctx.ptr_locals <- saved_ptr;
  stmts

(* ------------------------------------------------------------------ *)
(* Top-level program assembly                                          *)
(* ------------------------------------------------------------------ *)

type proto = {
  p_name : string;
  p_params : (string * Ast.ty) list;
  p_ret : Ast.ty;
  p_cost : int;
}

let mk_fctx r cfg ~callables ~fnptr_calls ~switch_rvals ~enum_consts ~int_globals
    ~arrays ~params ~ret_ty =
  {
    r;
    cfg;
    callables;
    fnptr_calls;
    switch_rvals;
    enum_consts;
    int_globals;
    arrays;
    ret_ty;
    ro_ints = params;
    mut_ints = [];
    ptr_locals = [];
    fresh = 0;
    fuel = cfg.stmt_fuel;
    cost = 0;
    mult = 1;
    loop_depth = 0;
  }

let mk_func name params ret attrs body : Ast.decl =
  Ast.Dfunc
    {
      Ast.f_name = name;
      f_params = params;
      f_ret = ret;
      f_attrs = attrs;
      f_body = Some body;
      f_loc = Ast.dummy_loc;
    }

let mk_global ?(attrs = []) ?init ?array ?fn_init name ty : Ast.decl =
  Ast.Dglobal
    {
      Ast.g_name = name;
      g_ty = ty;
      g_attrs = attrs;
      g_init = init;
      g_array = array;
      g_fn_init = fn_init;
      g_extern = false;
      g_loc = Ast.dummy_loc;
    }

(* out-of-domain value that still fits the switch's storage width *)
let out_of_domain r (sw : switch) =
  match sw.sw_domain with
  | [] -> 0
  | d ->
      let above = List.fold_left max (List.hd d) d + 1 + Rng.int r 3 in
      let fits_signed_word =
        match sw.sw_ty with
        | Ast.Tint { width = 8; signed = true } | Ast.Tenum _ -> true
        | _ -> false
      in
      if fits_signed_word && Rng.chance r 1 3 then
        List.fold_left min (List.hd d) d - 1 - Rng.int r 3
      else above

let gen_assignment r ~in_domain (switches : switch list) : assignment =
  let ints, ptrs =
    List.fold_left
      (fun (ints, ptrs) sw ->
        match sw.sw_ty with
        | Ast.Tfnptr -> (
            match sw.sw_targets with
            | [] -> (ints, ptrs)
            | ts -> (ints, (sw.sw_name, Rng.choose r ts) :: ptrs))
        | _ ->
            let v =
              if in_domain || Rng.chance r 5 6 then Rng.choose r sw.sw_domain
              else out_of_domain r sw
            in
            ((sw.sw_name, v) :: ints, ptrs))
      ([], []) switches
  in
  { a_ints = List.rev ints; a_ptrs = List.rev ptrs }

let gen_assignments r n switches =
  List.init n (fun i -> gen_assignment r ~in_domain:(i = 0) switches)

let pp_assignment fmt a =
  let ints = List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) a.a_ints in
  let ptrs = List.map (fun (n, t) -> Printf.sprintf "%s=&%s" n t) a.a_ptrs in
  Format.pp_print_string fmt (String.concat " " (ints @ ptrs))

(* ------------------------------------------------------------------ *)
(* Switch extraction (also used on shrunk / stored sources)            *)
(* ------------------------------------------------------------------ *)

let switches_of_tu (tu : Ast.tunit) : switch list =
  let enums = Hashtbl.create 4 in
  let leafs = ref [] in
  List.iter
    (function
      | Ast.Denum (name, items, _) -> Hashtbl.replace enums name (List.map snd items)
      | Ast.Dfunc f ->
          (* fnptr assignment targets: the generator's uniform int(int)
             leaf signature, recognised by name so shrunk sources keep
             working after other functions disappear *)
          if
            f.Ast.f_body <> None
            && List.length f.Ast.f_params = 1
            && String.length f.Ast.f_name >= 4
            && String.sub f.Ast.f_name 0 4 = "leaf"
          then leafs := f.Ast.f_name :: !leafs
      | Ast.Dglobal _ -> ())
    tu;
  let leafs = List.rev !leafs in
  List.filter_map
    (function
      | Ast.Dglobal g when Ast.is_multiversed g.Ast.g_attrs ->
          let domain =
            match Ast.attr_values g.Ast.g_attrs with
            | Some vs -> List.sort_uniq compare vs
            | None -> (
                match g.Ast.g_ty with
                | Ast.Tenum e ->
                    List.sort_uniq compare
                      (Option.value ~default:[ 0; 1 ] (Hashtbl.find_opt enums e))
                | Ast.Tfnptr -> []
                | _ -> [ 0; 1 ])
          in
          let targets =
            match g.Ast.g_ty with
            | Ast.Tfnptr ->
                let init = Option.to_list g.Ast.g_fn_init in
                List.sort_uniq compare (init @ leafs)
            | _ -> []
          in
          Some { sw_name = g.Ast.g_name; sw_ty = g.Ast.g_ty; sw_domain = domain;
                 sw_targets = targets }
      | _ -> None)
    tu

let restrict_assignment switches a =
  let int_names =
    List.filter_map
      (fun sw -> match sw.sw_ty with Ast.Tfnptr -> None | _ -> Some sw.sw_name)
      switches
  in
  let ptr_ok name target =
    List.exists
      (fun sw -> sw.sw_name = name && List.mem target sw.sw_targets)
      switches
  in
  {
    a_ints = List.filter (fun (n, _) -> List.mem n int_names) a.a_ints;
    a_ptrs = List.filter (fun (n, t) -> ptr_ok n t) a.a_ptrs;
  }

let case_of_source ~seed ~args ~assignments src : case =
  let tu, _env, _warnings = Minic.Typecheck.check_string src in
  let entry_ok =
    List.exists
      (function
        | Ast.Dfunc f ->
            f.Ast.f_name = "driver" && f.Ast.f_body <> None
            && List.length f.Ast.f_params = 1
        | _ -> false)
      tu
  in
  if not entry_ok then failwith "case_of_source: no int driver(int) entry point";
  let switches = switches_of_tu tu in
  {
    c_seed = seed;
    c_tu = tu;
    c_src = src;
    c_switches = switches;
    c_entry = "driver";
    c_args = (if args = [] then [ 1 ] else args);
    c_assignments = List.map (restrict_assignment switches) assignments;
  }

(* ------------------------------------------------------------------ *)
(* The generator                                                       *)
(* ------------------------------------------------------------------ *)

let case ?(cfg = default_cfg) seed : case =
  let root = Rng.create seed in
  let r = Rng.split root 1 in
  let range (lo, hi) = Rng.range r lo hi in

  (* --- enum ------------------------------------------------------- *)
  let have_enum = Rng.chance r 2 3 in
  let enum_items =
    if not have_enum then []
    else begin
      let n = Rng.range r 2 4 in
      let rec build i v acc =
        if i >= n then List.rev acc
        else build (i + 1) (v + Rng.range r 1 3) ((Printf.sprintf "K%d" i, v) :: acc)
      in
      build 0 (Rng.range r (-2) 1) []
    end
  in
  let enum_consts = List.map fst enum_items in

  (* --- leaves (fnptr targets, uniform signature int leafK(int)) ---- *)
  let n_leaves = range cfg.n_leaves in
  let leaf_names = List.init n_leaves (Printf.sprintf "leaf%d") in

  (* --- switches ---------------------------------------------------- *)
  let n_switches = range cfg.n_switches in
  let switch_decl i : Ast.decl * switch =
    let name = Printf.sprintf "s%d" i in
    let kind =
      (* the first switch is always integer-like so variants exist *)
      let arms =
        [ (4, `Int01); (3, `Values); (2, `Subword); (2, `Bool) ]
        @ (if have_enum then [ (2, `Enum) ] else [])
        @ if i > 0 then [ (2, `Fnptr) ] else []
      in
      Rng.weighted r arms
    in
    match kind with
    | `Int01 ->
        ( mk_global ~attrs:[ Ast.Amultiverse ] name Ast.int_ty,
          { sw_name = name; sw_ty = Ast.int_ty; sw_domain = [ 0; 1 ]; sw_targets = [] } )
    | `Values ->
        let card = Rng.range r 2 4 in
        let vs =
          List.sort_uniq compare
            (List.init card (fun _ -> Rng.range r (-4) 9))
        in
        let vs = if List.length vs < 2 then [ 0; 1 ] else vs in
        ( mk_global ~attrs:[ Ast.Amultiverse; Ast.Avalues vs ] name Ast.int_ty,
          { sw_name = name; sw_ty = Ast.int_ty; sw_domain = vs; sw_targets = [] } )
    | `Subword ->
        let width = Rng.choose r [ 1; 2; 4 ] in
        let signed = Rng.bool r in
        let ty = Ast.Tint { width; signed } in
        let card = Rng.range r 2 3 in
        let vs =
          List.sort_uniq compare (List.init card (fun _ -> Rng.range r 0 9))
        in
        let vs = if List.length vs < 2 then [ 0; 1 ] else vs in
        ( mk_global ~attrs:[ Ast.Amultiverse; Ast.Avalues vs ] name ty,
          { sw_name = name; sw_ty = ty; sw_domain = vs; sw_targets = [] } )
    | `Bool ->
        ( mk_global ~attrs:[ Ast.Amultiverse ] name Ast.Tbool,
          { sw_name = name; sw_ty = Ast.Tbool; sw_domain = [ 0; 1 ]; sw_targets = [] } )
    | `Enum ->
        let ty = Ast.Tenum "mode" in
        ( mk_global ~attrs:[ Ast.Amultiverse ] name ty,
          { sw_name = name; sw_ty = ty; sw_domain = List.map snd enum_items;
            sw_targets = [] } )
    | `Fnptr ->
        let target = Rng.choose r leaf_names in
        ( mk_global ~attrs:[ Ast.Amultiverse ] ~fn_init:target name Ast.Tfnptr,
          { sw_name = name; sw_ty = Ast.Tfnptr; sw_domain = [];
            sw_targets = leaf_names } )
  in
  let switch_decls, switches =
    List.split (List.init n_switches switch_decl)
  in
  let int_switches =
    List.filter (fun sw -> sw.sw_ty <> Ast.Tfnptr) switches
  in
  let fnptr_switches = List.filter (fun sw -> sw.sw_ty = Ast.Tfnptr) switches in

  (* --- plain globals ----------------------------------------------- *)
  let acc_decl = mk_global "acc" Ast.int_ty ~init:0 in
  let n_extra = Rng.range r 1 3 in
  let extra_globals =
    List.init n_extra (fun i ->
        let name = Printf.sprintf "g%d" i in
        (mk_global name Ast.int_ty ~init:(Rng.range r (-9) 9), name))
  in
  let int_globals = "acc" :: List.map snd extra_globals in
  let arr_decl = mk_global "arr0" Ast.int_ty ~array:8 in
  let have_buf = Rng.bool r in
  let buf_decl =
    if have_buf then [ mk_global "buf0" (Ast.Tint { width = 1; signed = false }) ~array:16 ]
    else []
  in
  let arrays =
    ("arr0", 8, 8) :: (if have_buf then [ ("buf0", 16, 1) ] else [])
  in
  let have_plain_fnptr = Rng.chance r 1 2 in
  let plain_fnptr_decl =
    if have_plain_fnptr then
      [ mk_global "fp0" Ast.Tfnptr ~fn_init:(Rng.choose r leaf_names) ]
    else []
  in

  let switch_rvals = List.map (fun sw -> sw.sw_name) int_switches in

  (* --- leaf bodies -------------------------------------------------- *)
  let leaf_cost = 4 in
  let leaf_decls =
    List.map
      (fun name ->
        let ctx =
          mk_fctx r cfg ~callables:[] ~fnptr_calls:[] ~switch_rvals ~enum_consts
            ~int_globals ~arrays ~params:[ "x" ] ~ret_ty:Ast.int_ty
        in
        ctx.fuel <- 3;
        let body =
          (if Rng.chance r 1 3 then gen_stmts ctx 1 else [])
          @ [ s (Ast.Sreturn (Some (gen_int ctx 2))) ]
        in
        mk_func name [ ("x", Ast.int_ty) ] Ast.int_ty [] body)
      leaf_names
  in

  (* --- helpers ------------------------------------------------------ *)
  let n_helpers = range cfg.n_helpers in
  let fnptr_calls =
    List.map (fun sw -> (sw.sw_name, leaf_cost)) fnptr_switches
    @ (if have_plain_fnptr then [ ("fp0", leaf_cost) ] else [])
  in
  let leaf_callables =
    List.map (fun n -> (n, 1, true, leaf_cost)) leaf_names
  in
  let helper_budget = cfg.work_budget / 4 in
  let rec build_helpers i acc_protos acc_decls =
    if i > n_helpers then (List.rev acc_protos, List.rev acc_decls)
    else begin
      let name = Printf.sprintf "fn%d" i in
      let is_mv = i = 1 || Rng.chance r 3 5 in
      let ret_ty = if Rng.chance r 2 3 then Ast.int_ty else Ast.Tvoid in
      let n_params = Rng.range r 0 2 in
      let params = List.init n_params (Printf.sprintf "a%d") in
      let attrs =
        (if is_mv then [ Ast.Amultiverse ] else [])
        @ (if is_mv && int_switches <> [] && Rng.chance r 1 3 then
             [ Ast.Abind
                 (List.map (fun sw -> sw.sw_name)
                    (Rng.sample r (Rng.range r 1 2) int_switches)) ]
           else [])
        @ (if Rng.chance r 1 5 then [ Ast.Anoinline ] else [])
        @ if Rng.chance r 1 6 then [ Ast.Asaveall ] else []
      in
      let callables =
        leaf_callables
        @ List.map (fun p -> (p.p_name, List.length p.p_params,
                              p.p_ret <> Ast.Tvoid, p.p_cost))
            acc_protos
      in
      let ctx =
        mk_fctx r cfg ~callables ~fnptr_calls ~switch_rvals ~enum_consts
          ~int_globals ~arrays ~params ~ret_ty
      in
      ctx.fuel <- cfg.stmt_fuel / 2;
      ctx.cost <- 0;
      let forced_read =
        (* every multiversed function provably reads a switch, so variant
           generation has something to specialize *)
        match (is_mv, int_switches) with
        | true, sw :: _ ->
            let v = Rng.choose r sw.sw_domain in
            [
              s
                (Ast.Sif
                   ( bin Ast.Eq (var sw.sw_name) (lit v),
                     [ assign_var "acc" (bin Ast.Add (var "acc") (lit (Rng.range r 1 9))) ],
                     [ assign_var "acc" (bin Ast.Bxor (var "acc") (lit (Rng.range r 1 9))) ]
                   ));
            ]
        | _ -> []
      in
      let body_stmts =
        forced_read
        @ gen_block ctx (min 2 cfg.max_depth)
        @
        match ret_ty with
        | Ast.Tvoid -> []
        | _ -> [ s (Ast.Sreturn (Some (gen_int ctx 2))) ]
      in
      let cost = min (ctx.cost + 2) helper_budget in
      let params_t = List.map (fun p -> (p, Ast.int_ty)) params in
      let proto = { p_name = name; p_params = params_t; p_ret = ret_ty; p_cost = cost } in
      build_helpers (i + 1) (proto :: acc_protos)
        (mk_func name params_t ret_ty attrs body_stmts :: acc_decls)
    end
  in
  let helper_protos, helper_decls = build_helpers 1 [] [] in

  (* --- driver ------------------------------------------------------- *)
  let callables =
    leaf_callables
    @ List.map
        (fun p -> (p.p_name, List.length p.p_params, p.p_ret <> Ast.Tvoid, p.p_cost))
        helper_protos
  in
  let ctx =
    mk_fctx r cfg ~callables ~fnptr_calls ~switch_rvals ~enum_consts ~int_globals
      ~arrays ~params:[ "n" ] ~ret_ty:Ast.int_ty
  in
  let init_arr (name, len, _w) =
    let i = fresh ctx "i" in
    s
      (Ast.Sfor
         ( Some (decl i Ast.int_ty (lit 0)),
           Some (bin Ast.Lt (var i) (lit len)),
           Some (assign_var i (bin Ast.Add (var i) (lit 1))),
           [
             assign
               (Ast.Lindex (var name, var i))
               (bin Ast.Add (var "n") (bin Ast.Mul (var i) (lit 3)));
           ] ))
  in
  charge ctx (List.fold_left (fun a (_, len, _) -> a + len) 0 arrays);
  let prelude = assign_var "acc" (lit 0) :: List.map init_arr arrays in
  let main_block = gen_block ctx cfg.max_depth in
  (* every helper and fnptr switch is exercised at least once per run *)
  let guaranteed =
    List.map
      (fun p ->
        charge ctx (p.p_cost + 1);
        let args = List.map (fun _ -> gen_int ctx 1) p.p_params in
        let call = e (Ast.Ecall (p.p_name, args)) in
        if p.p_ret = Ast.Tvoid then s (Ast.Sexpr call)
        else assign_var "acc" (bin Ast.Add (bin Ast.Mul (var "acc") (lit 31)) call))
      helper_protos
    @ List.map
        (fun (name, cost) ->
          charge ctx (cost + 1);
          assign_var "acc"
            (bin Ast.Bxor (var "acc") (e (Ast.Ecall (name, [ gen_int ctx 1 ])))))
        fnptr_calls
  in
  let final_ret =
    let a, i = arr_index "arr0" 8 (var "n") in
    s
      (Ast.Sreturn
         (Some
            (bin Ast.Bxor
               (bin Ast.Add (bin Ast.Mul (var "acc") (lit 31)) (gen_int ctx 2))
               (e (Ast.Eindex (a, i))))))
  in
  let driver_decl =
    mk_func "driver" [ ("n", Ast.int_ty) ] Ast.int_ty []
      (prelude @ main_block @ guaranteed @ [ final_ret ])
  in

  (* --- assemble, print, and re-check through the real front end ----- *)
  let enum_decl =
    if have_enum then [ Ast.Denum ("mode", enum_items, Ast.dummy_loc) ] else []
  in
  let tu =
    enum_decl @ switch_decls
    @ (acc_decl :: List.map fst extra_globals)
    @ (arr_decl :: buf_decl)
    @ plain_fnptr_decl @ leaf_decls @ helper_decls
    @ [ driver_decl ]
  in
  let src = Minic.Pretty.to_string tu in
  let ra = Rng.split root 2 in
  let args = List.init (range cfg.n_args) (fun _ -> Rng.range ra (-6) 30) in
  let assignments = gen_assignments ra (range cfg.n_assignments) switches in
  match case_of_source ~seed ~args ~assignments src with
  | c -> c
  | exception exn ->
      failwith
        (Printf.sprintf "Mv_fuzz.Gen bug: seed %d generated invalid program (%s):\n%s"
           seed (Printexc.to_string exn) src)
