(** Randomized patching schedules.

    A schedule drives the runtime the way a host kernel would: rounds of
    top-level reconfiguration (set switch values, commit, revert, safe
    variants, drain) each followed by one guest run, with safe-commit /
    safe-revert / drain operations injected {e mid-run} at chosen
    safepoint polls.

    Schedules are {b well-formed by construction}: a [`set`] of switch
    values always sits next to an operation that supersedes any journaled
    pending set and re-synchronizes the committed state ([commit],
    [commit_safe], or a preceding [revert]).  Mid-run operations never
    change switch values.  Under these rules the paper's equivalence claim
    applies to the whole schedule: the scheduled image must behave exactly
    like a generic image that only receives the value writes — which is
    what {!Oracle.check_schedule} checks. *)

(** Mid-run operation, executed at a given safepoint poll.  The [bool] is
    the policy: [true] = [Defer], [false] = [Deny]. *)
type mid_op = Mcommit_safe of bool | Mrevert_safe of bool | Mdrain

(** Top-level operation, executed between guest runs (machine quiescent). *)
type top_op =
  | Tset of Gen.assignment
  | Tcommit
  | Trevert
  | Tcommit_safe
  | Trevert_safe
  | Tdrain

type round = {
  r_top : top_op list;
  r_mid : (int * mid_op) list;  (** sorted by poll index *)
  r_arg : int;  (** driver argument for this round's run *)
}

(** A whole campaign-case schedule: rounds run in order, each against a
    fresh guest call. *)
type t = round list

(** Generate a schedule for a case (pure function of the stream).  Uses
    the case's assignments for value writes; the first round always
    commits. *)
val gen : Rng.t -> Gen.case -> t

(** Structurally smaller well-formed variants, for the shrinker: fewer
    rounds, fewer/simpler mid ops, canonical top sequences, smaller poll
    indices and arguments. *)
val shrink_candidates : t -> t list

(** Corpus (de)serialization; [of_json] reports malformed schedules
    instead of raising. *)
val to_json : t -> Mv_obs.Json.t

val of_json : Mv_obs.Json.t -> (t, string) result

(** Human-readable rendering, used by [mvfuzz --replay]. *)
val pp : Format.formatter -> t -> unit

(** Assignment (de)serialization, shared with the corpus format. *)
val assignment_to_json : Gen.assignment -> Mv_obs.Json.t

val assignment_of_json : Mv_obs.Json.t -> (Gen.assignment, string) result
