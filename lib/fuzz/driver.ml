type report = {
  rp_seed : int;
  rp_original : Oracle.divergence;
  rp_shrunk : Shrink.result;
  rp_entry : Corpus.entry;
  rp_path : string option;
  rp_flight : string option;
}

type summary = { s_tested : int; s_reports : report list }

let schedule_for case seed = Schedule.gen (Rng.split (Rng.create seed) 3) case

(* Postmortem artifact for a diverged seed: a [mv-flight/1] document
   whose extra sections carry the oracle verdict and the shrunk
   reproducer.  The oracles drive their own short-lived machines, so the
   recorder window itself is empty here — the artifact's value is the
   machine-readable failure context, in the same schema the VM trap and
   bench-gate dumps use.  Gated on MV_SMP_ARTIFACT_DIR like every other
   failure dump. *)
let write_flight_artifact ~log seed (div : Oracle.divergence)
    (shrunk : Shrink.result) : string option =
  let module Json = Mv_obs.Json in
  let flight = Mv_obs.Flight.create ~capacity:1 ~clock:(fun () -> 0.0) () in
  let extra =
    [
      ("seed", Json.Int seed);
      ("oracle", Json.String div.Oracle.d_oracle);
      ("detail", Json.String div.Oracle.d_detail);
      ( "reproducer",
        Json.Obj
          [
            ("src", Json.String shrunk.Shrink.sh_case.Gen.c_src);
            ("shrink_evals", Json.Int shrunk.Shrink.sh_evals);
          ] );
    ]
  in
  match
    Mv_obs.Flight.write_artifact flight ~reason:"fuzz-oracle"
      ~name:(Printf.sprintf "fuzz-seed-%d" seed)
      ~extra ()
  with
  | Some p ->
      log ("flight dump saved: " ^ p);
      Some p
  | None -> None

let handle_divergence ?chaos ?corpus_dir ?(shrink_budget = 300) ~log seed case
    sched (div : Oracle.divergence) : report =
  log (Format.asprintf "seed %d DIVERGED: %a" seed Oracle.pp_divergence div);
  let shrunk = Shrink.shrink ~budget:shrink_budget ?chaos ~log case sched div in
  let lines = List.length (String.split_on_char '\n' shrunk.Shrink.sh_case.Gen.c_src) in
  log
    (Printf.sprintf "shrunk to %d source lines in %d evaluations" lines
       shrunk.Shrink.sh_evals);
  let entry = Corpus.of_shrunk shrunk in
  let path =
    match corpus_dir with
    | None -> None
    | Some dir ->
        let p = Corpus.save ~dir entry in
        log ("reproducer saved: " ^ p);
        Some p
  in
  let flight = write_flight_artifact ~log seed div shrunk in
  { rp_seed = seed; rp_original = div; rp_shrunk = shrunk; rp_entry = entry;
    rp_path = path; rp_flight = flight }

let run ?cfg ?chaos ?only ?corpus_dir ?(keep_going = false) ?shrink_budget
    ?(log = ignore) ~seed ~iters () : summary =
  let reports = ref [] in
  let tested = ref 0 in
  (try
     for i = 0 to iters - 1 do
       let s = seed + i in
       let case = Gen.case ?cfg s in
       let sched = schedule_for case s in
       incr tested;
       (match Oracle.run_all ?chaos ?only case sched with
       | None -> ()
       | Some div ->
           let r =
             handle_divergence ?chaos ?corpus_dir ?shrink_budget ~log s case
               sched div
           in
           reports := r :: !reports;
           if not keep_going then raise Exit);
       if (i + 1) mod 100 = 0 then
         log (Printf.sprintf "%d/%d cases clean" (i + 1) iters)
     done
   with Exit -> ());
  { s_tested = !tested; s_reports = List.rev !reports }

(* Domain-parallel campaign.  The case-seed schedule is the single-domain
   one — case i always runs under seed + i — and domain d owns the stripe
   {d, d + domains, d + 2*domains, ...} of the iteration space (campaign
   seed -> domain stripe -> case seed).  Because the tested seed set, the
   generator, the oracles, and the shrinker are all deterministic
   per-case, the merged corpus is byte-for-byte the corpus a single-domain
   run with the same budget writes; only host wall-clock changes. *)
let run_parallel ?cfg ?chaos ?only ?corpus_dir ?(keep_going = false)
    ?shrink_budget ?(log = ignore) ~domains ~seed ~iters () : summary =
  if domains < 1 then invalid_arg "Driver.run_parallel: domains must be >= 1";
  if domains = 1 then
    run ?cfg ?chaos ?only ?corpus_dir ~keep_going ?shrink_budget ~log ~seed
      ~iters ()
  else begin
    let log_mutex = Mutex.create () in
    let log_sync m =
      Mutex.lock log_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock log_mutex) (fun () -> log m)
    in
    (* With [keep_going] every stripe runs to the end of the budget and the
       seed set is exactly the single-domain one.  Without it, the flag
       asks every stripe to wind down once any domain has found a
       divergence — like the single-domain early exit, but the first
       finding is whichever domain got there first on the host clock. *)
    let stop = Atomic.make false in
    let worker d () =
      let reports = ref [] in
      let tested = ref 0 in
      let i = ref d in
      (try
         while !i < iters && not (Atomic.get stop) do
           let s = seed + !i in
           let case = Gen.case ?cfg s in
           let sched = schedule_for case s in
           incr tested;
           (match Oracle.run_all ?chaos ?only case sched with
           | None -> ()
           | Some div ->
               let r =
                 handle_divergence ?chaos ?corpus_dir ?shrink_budget
                   ~log:log_sync s case sched div
               in
               reports := r :: !reports;
               if not keep_going then Atomic.set stop true);
           i := !i + domains
         done
       with exn ->
         log_sync
           (Printf.sprintf "domain %d died: %s" d (Printexc.to_string exn)));
      (!tested, !reports)
    in
    let handles = List.init domains (fun d -> Domain.spawn (worker d)) in
    let results = List.map Domain.join handles in
    let tested = List.fold_left (fun acc (n, _) -> acc + n) 0 results in
    let reports =
      List.concat_map snd results
      |> List.sort (fun a b -> compare a.rp_seed b.rp_seed)
    in
    log
      (Printf.sprintf "%d/%d cases across %d domains, %d divergence(s)" tested
         iters domains (List.length reports));
    { s_tested = tested; s_reports = reports }
  end

let replay ?cfg ?chaos ?only ?(log = ignore) ~seed () : summary =
  let case = Gen.case ?cfg seed in
  let sched = schedule_for case seed in
  log (Printf.sprintf "seed %d: program (%d bytes):" seed (String.length case.Gen.c_src));
  log case.Gen.c_src;
  log
    (Format.asprintf "switches: %s"
       (String.concat ", "
          (List.map
             (fun sw ->
               Printf.sprintf "%s:%s" sw.Gen.sw_name
                 (Format.asprintf "%a" Minic.Ast.pp_ty sw.Gen.sw_ty))
             case.Gen.c_switches)));
  log
    (Format.asprintf "assignments:@.%s"
       (String.concat "\n"
          (List.map
             (fun a -> "  " ^ Format.asprintf "%a" Gen.pp_assignment a)
             case.Gen.c_assignments)));
  log (Format.asprintf "schedule:@.%a" Schedule.pp sched);
  let names = match only with Some o when o <> [] -> o | _ -> Oracle.oracle_names in
  let reports = ref [] in
  List.iter
    (fun name ->
      match Oracle.run_named ?chaos name case sched with
      | None -> log (Printf.sprintf "oracle %-18s ok" name)
      | Some div ->
          log (Format.asprintf "oracle %-18s %a" name Oracle.pp_divergence div);
          if !reports = [] then
            reports := [ handle_divergence ?chaos ~log seed case sched div ])
    names;
  { s_tested = 1; s_reports = !reports }

let check_corpus ?chaos ?(log = ignore) ~dir () : summary =
  let entries = Corpus.load_dir dir in
  let tested = ref 0 in
  let reports = ref [] in
  List.iter
    (fun (path, loaded) ->
      match loaded with
      | Error m -> log (Printf.sprintf "%s: unreadable (%s)" path m)
      | Ok entry -> (
          incr tested;
          match Corpus.to_case entry with
          | exception exn ->
              log
                (Printf.sprintf "%s: stored source no longer builds (%s)" path
                   (Printexc.to_string exn))
          | case -> (
              match Oracle.run_named ?chaos entry.Corpus.e_oracle case entry.Corpus.e_schedule with
              | None -> log (Printf.sprintf "%s: ok (bug stays fixed)" path)
              | Some div ->
                  log (Format.asprintf "%s: STILL DIVERGES: %a" path Oracle.pp_divergence div);
                  reports :=
                    {
                      rp_seed = entry.Corpus.e_seed;
                      rp_original = div;
                      rp_shrunk =
                        {
                          Shrink.sh_case = case;
                          sh_sched = entry.Corpus.e_schedule;
                          sh_divergence = div;
                          sh_evals = 0;
                        };
                      rp_entry = entry;
                      rp_path = Some path;
                      rp_flight = None;
                    }
                    :: !reports)))
    entries;
  { s_tested = !tested; s_reports = List.rev !reports }
