(** Exporters: Chrome [trace_event] JSON for recorded event streams and
    the unified metrics envelope.

    The Chrome format is the de-facto interchange for timeline tooling —
    the output of {!chrome_trace_string} loads directly in
    [chrome://tracing], [about:tracing], and Perfetto.  Commit spans map
    to duration-begin/end pairs ([ph = "B"]/[ph = "E"]); every other
    event maps to a thread-scoped instant ([ph = "i"]).  Timestamps are
    the recorded clock readings (simulated cycles) passed through as
    microseconds, so one trace microsecond reads as one guest cycle. *)

(** An event's payload fields as Chrome-trace [args] members — the
    shared field-level rendering: every constructor argument appears
    under its source-code name ([cid], [rdv], [hart], ...).  Also reused
    by the flight recorder's [mv-flight/1] dump so the two postmortem
    formats agree on field names. *)
val args_of_event : Trace.event -> (string * Json.t) list

(** The Chrome [trace_event] array for a recorded stream (oldest first),
    as produced by [Trace.events]. *)
val chrome_trace : ?pid:int -> Trace.stamped list -> Json.t

(** {!chrome_trace} serialized with indentation, ready to write to a
    [.json] file. *)
val chrome_trace_string : ?pid:int -> Trace.stamped list -> string

(** A profiler report as a JSON array of row objects
    ([name]/[samples]/[cycles]/[share]/[variant]). *)
val profile_json : Profile.row list -> Json.t

(** A stack-profiler report as a JSON array of row objects
    ([stack] — frame array, outermost first —
    /[samples]/[cycles]/[share]/[variant]). *)
val stack_profile_json : Stackprof.row list -> Json.t

(** [metrics ~runtime ~perf ~program] assembles the unified metrics
    snapshot: a versioned envelope ([schema = "mv-metrics/1"]) wrapping
    the three layers' own JSON renderings (runtime patching counters,
    machine performance counters, static program statistics).  Extra
    sections (e.g. a profiler report) go in [extra]. *)
val metrics :
  ?extra:(string * Json.t) list ->
  runtime:Json.t ->
  perf:Json.t ->
  program:Json.t ->
  unit ->
  Json.t
