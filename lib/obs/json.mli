(** A minimal JSON tree: enough to emit the observability exports (Chrome
    traces, metrics snapshots, bench rows) and to parse them back in tests,
    with no external dependency.

    Numbers are split into [Int] and [Float] so counters survive a
    round-trip exactly; non-finite floats serialize as [null] to keep the
    output standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialize compactly (no insignificant whitespace), with full string
    escaping.  Non-finite floats become [null]. *)
val to_string : t -> string

(** Serialize with two-space indentation — the form written to files so
    diffs of committed exports stay readable. *)
val to_string_pretty : t -> string

(** Parse a JSON document.  Accepts exactly what {!to_string} and
    {!to_string_pretty} produce plus ordinary standard JSON; returns
    [Error msg] with a byte offset on malformed input. *)
val parse : string -> (t, string) result

(** [member key json] is the value bound to [key] when [json] is an
    object that has it. *)
val member : string -> t -> t option

(** Render for debugging (same text as {!to_string_pretty}). *)
val pp : Format.formatter -> t -> unit
