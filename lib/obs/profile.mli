(** A sampling execution profiler for the machine simulator.

    The machine calls {!sample} with the program counter of every executed
    instruction (via its sampler hook); the profiler keeps a countdown and
    only on every [interval]-th instruction resolves the pc to a symbol
    and attributes to it the simulated cycles elapsed since the previous
    sample — classic interval sampling, so the per-step cost is one
    decrement and the attribution error shrinks with run length.

    Generic bodies and installed variants resolve to different symbols
    (variant symbols carry their assignment suffix, e.g.
    ["spin_lock.config_smp=0"]), so the report distinguishes time spent in
    specialized code from time spent in generic code — the attribution
    question the paper's evaluation methodology revolves around. *)

(** One line of the hot-function table. *)
type row = {
  r_name : string;  (** symbol, or ["<unknown>"] outside any symbol *)
  r_samples : int;  (** samples attributed to this symbol *)
  r_cycles : float;  (** simulated cycles attributed to this symbol *)
  r_share : float;  (** fraction of all attributed cycles, in [0, 1] *)
  r_variant : bool;  (** true when the symbol is a generated variant *)
}

(** A sampling profiler instance. *)
type t

(** [create ~resolve ~now ()] builds a profiler.  [resolve] maps a pc to
    the containing symbol (wire to [Image.symbol_at]); [now] reads the
    clock being attributed (wire to the machine's cycle counter);
    [is_variant] classifies symbols as generated variants (default: no
    symbol is); [interval] is the sampling period in instructions
    (default 97 — coprime to common loop lengths to avoid lockstep
    aliasing). *)
val create :
  ?interval:int ->
  ?is_variant:(string -> bool) ->
  resolve:(int -> string option) ->
  now:(unit -> float) ->
  unit ->
  t

(** Feed one executed instruction's pc; cheap except on every
    [interval]-th call.  Wire to [Machine.set_sampler]. *)
val sample : t -> int -> unit

(** Samples taken so far (pcs actually attributed, not instructions
    observed). *)
val samples : t -> int

(** Simulated cycles attributed so far. *)
val cycles : t -> float

(** Forget all attributions and restart the clock baseline at [now ()]. *)
val reset : t -> unit

(** The hot-function table, hottest first.  Total-cycle shares are
    computed against a denominator clamped to at least one cycle, so a
    profiler that never attributed anything — zero samples, or samples
    before the clock first advanced — reports [r_share = 0.] rows (or no
    rows at all), never NaN. *)
val report : t -> row list

(** Render the table ([limit] rows, default 10). *)
val pp : ?limit:int -> Format.formatter -> t -> unit
