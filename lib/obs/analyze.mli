(** Offline analysis over recorded observability artifacts: span
    extraction and duration statistics from an event stream, and the
    structural diff of two [mv-bench-rows/1] bench documents with a
    configurable regression threshold (the gate behind
    [mvtrace diff --gate] and the CI bench-regression step). *)

(** {1 Spans} *)

(** A completed begin/end pair; times in the recording's clock units
    (simulated cycles for the standard wiring). *)
type span = { sp_op : string; sp_start : float; sp_dur : float }

(** Pair [Commit_begin]/[Commit_end] events into spans (same-op spans
    nest like parentheses; unmatched halves are dropped), completion
    order. *)
val spans : Trace.stamped list -> span list

(** Summary statistics of a duration population. *)
type dist = {
  d_count : int;
  d_mean : float;
  d_min : float;
  d_max : float;
  d_p95 : float;  (** nearest-rank *)
}

(** Span-duration statistics per operation kind, sorted by op. *)
val span_stats : Trace.stamped list -> (string * dist) list

(** Event counts per constructor tag, sorted by tag. *)
val event_counts : Trace.stamped list -> (string * int) list

(** Render the {!span_stats} table. *)
val pp_span_stats : Format.formatter -> (string * dist) list -> unit

(** {1 Bench diff} *)

(** One compared numeric leaf.  [dl_field] is the row field name;
    measurement objects contribute their mean as ["field.mean"].
    [dl_pct] is [(fresh - base) / |base| * 100] (0 when both are 0, 100
    when only the base is 0). *)
type delta = {
  dl_exp : string;
  dl_label : string;
  dl_field : string;
  dl_base : float;
  dl_fresh : float;
  dl_pct : float;
}

(** The default skip predicate: host wall-clock series ([commit_ms] /
    [revert_ms] fields and the [host-ms] row), the only values in a
    bench document that are not a pure function of the simulator. *)
val default_skip : label:string -> field:string -> bool

(** [bench_diff ~base ~fresh ()] compares every numeric leaf present in
    both documents — experiments matched by id, rows by [label], fields
    by name; measurement objects by their [mean] — and returns the
    per-leaf deltas in document order.  [skip] (default {!default_skip};
    called with [field = ""] for whole-row decisions) filters
    nondeterministic series.  [Error] when either document is not an
    [mv-bench-rows/1]. *)
val bench_diff :
  ?skip:(label:string -> field:string -> bool) ->
  base:Json.t ->
  fresh:Json.t ->
  unit ->
  (delta list, string) result

(** Deltas whose magnitude exceeds [threshold] percent, worst first.
    Both directions count: on a deterministic simulator any drift from
    the committed baseline — faster or slower — means the baseline no
    longer describes the tree. *)
val regressions : threshold:float -> delta list -> delta list

(** Render one delta as a single table row. *)
val pp_delta : Format.formatter -> delta -> unit

(** Render a delta table; [only_changed] (default true) hides exact
    matches. *)
val pp_deltas : ?only_changed:bool -> Format.formatter -> delta list -> unit

(** Deltas as a JSON array (for artifact upload). *)
val deltas_json : delta list -> Json.t
