(** A process-wide metrics registry: counters, gauges, and histograms
    identified by name plus label set (the Prometheus data model, scoped
    to a registry value so sessions and tests stay isolated).

    The registry is fed by {e interpreting} the structured trace events
    the runtime and machine already emit — {!trace_sink} turns a registry
    into an ordinary [Trace.sink] — so arming metrics adds zero new hook
    sites to any hot path, and (like every observability sink) never
    moves the simulated clock.

    Standard series produced by the trace bridge:
    - [mv_events_total{kind}] — every event, by constructor tag;
    - [mv_commits_total{op}] / [mv_commit_switch_total{op,switch,value}]
      — whole-image operations and the switch values they committed;
    - [mv_variant_installs_total{fn,variant}] — variant selections;
    - [mv_patches_total{kind}] — site retargets/inlines/prologue patches;
    - [mv_fallbacks_total{fn}], [mv_safe_total{outcome}],
      [mv_safepoint_polls_total], [mv_icache_flushes_total];
    - [mv_patch_latency_cycles{op}] — histogram of commit/revert span
      durations (simulated cycles);
    - [mv_safe_drain_latency_cycles] — histogram of defer-to-drain
      latencies under safe commit;
    - [mv_pending_sets] — gauge of journaled sets at the last poll. *)

(** A label set; order does not matter (labels are canonicalized). *)
type labels = (string * string) list

(** A registry: an isolated collection of named, labeled series. *)
type t

(** An empty registry. *)
val create : unit -> t

(** Add [by] (default 1) to a counter, creating it at 0 first.
    @raise Invalid_argument if [name]+[labels] exists with another kind. *)
val inc : ?by:int -> t -> string -> labels -> unit

(** Set a gauge to [v], creating it first. *)
val set_gauge : t -> string -> labels -> float -> unit

(** Record one observation into a histogram, creating it (with [bounds],
    default a 1..100k cycle ladder) on first use.  [bounds] is only
    consulted at creation. *)
val observe : ?bounds:float array -> t -> string -> labels -> float -> unit

(** Current counter value; [0] when absent. *)
val counter_value : t -> string -> labels -> int

(** Current gauge value; [None] when absent. *)
val gauge_value : t -> string -> labels -> float option

(** Aggregate view of one histogram (bucket counts live in the
    {!to_json} export). *)
type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_mean : float;
  hs_min : float;
  hs_max : float;
}

(** Histogram summary; [None] when absent or empty. *)
val histogram_summary : t -> string -> labels -> hist_summary option

(** All registered series names, sorted, deduplicated. *)
val names : t -> string list

(** The registry as a [mv-metrics-registry/1] document: a sorted
    [series] array of [{name, labels, type, ...}] objects (counters carry
    [value]; gauges carry [value]; histograms carry
    [count]/[sum]/[min]/[max]/[bounds]/[counts], where [counts] has one
    entry per bound plus the overflow bucket). *)
val to_json : t -> Json.t

(** Human-readable one-line-per-series rendering, sorted. *)
val pp : Format.formatter -> t -> unit

(** [trace_sink t ~clock ()] is a [Trace.sink] that feeds the registry from
    the existing event stream; [clock] supplies the timestamps the
    latency histograms are computed from (wire to the machine's cycle
    counter) and [hart] the hart observations are attributed to (default:
    constant 0; wire to [Smp.current_hart] under SMP — the patch-latency
    and drain-latency histograms then carry a ["hart"] label exposing
    per-hart drain skew).  Compose it with a recording sink to get
    both. *)
val trace_sink :
  t -> clock:(unit -> float) -> ?hart:(unit -> int) -> unit -> Trace.sink
