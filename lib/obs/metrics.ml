(* A process-wide metrics registry: counters, gauges, and histograms, each
   identified by a name plus a label set — the Prometheus data model,
   scoped to one registry value instead of global state so tests and
   sessions stay isolated.

   Nothing in the hot paths knows about this module: the registry is fed
   by interpreting the structured trace events the runtime and machine
   already emit ([trace_sink]), so arming metrics costs exactly one more
   closure call per event and zero new hook sites. *)

type labels = (string * string) list

type hist = {
  bounds : float array;  (* upper bucket bounds, strictly increasing *)
  counts : int array;  (* one per bound, plus the +inf overflow bucket *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type value =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of hist

type t = { table : (string * labels, value) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let default_bounds =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.;
     20_000.; 50_000.; 100_000. |]

let canon labels = List.sort compare labels

let find_or_add t name labels build =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.table key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.add t.table key v;
      v

let kind_mismatch name =
  invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name)

let inc ?(by = 1) t name labels =
  match find_or_add t name labels (fun () -> Counter { c = 0 }) with
  | Counter c -> c.c <- c.c + by
  | _ -> kind_mismatch name

let set_gauge t name labels v =
  match find_or_add t name labels (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g.g <- v
  | _ -> kind_mismatch name

let observe ?bounds t name labels v =
  let build () =
    let bounds = Option.value bounds ~default:default_bounds in
    Histogram
      {
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      }
  in
  match find_or_add t name labels build with
  | Histogram h ->
      let rec bucket i =
        if i >= Array.length h.bounds then i
        else if v <= h.bounds.(i) then i
        else bucket (i + 1)
      in
      let b = bucket 0 in
      h.counts.(b) <- h.counts.(b) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
  | _ -> kind_mismatch name

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value t name labels =
  match Hashtbl.find_opt t.table (name, canon labels) with
  | Some (Counter c) -> c.c
  | _ -> 0

let gauge_value t name labels =
  match Hashtbl.find_opt t.table (name, canon labels) with
  | Some (Gauge g) -> Some g.g
  | _ -> None

type hist_summary = { hs_count : int; hs_sum : float; hs_mean : float; hs_min : float; hs_max : float }

let histogram_summary t name labels =
  match Hashtbl.find_opt t.table (name, canon labels) with
  | Some (Histogram h) when h.h_count > 0 ->
      Some
        {
          hs_count = h.h_count;
          hs_sum = h.h_sum;
          hs_mean = h.h_sum /. float_of_int h.h_count;
          hs_min = h.h_min;
          hs_max = h.h_max;
        }
  | _ -> None

(* All registered series, sorted by (name, labels) for stable output. *)
let sorted_entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names t =
  sorted_entries t |> List.map (fun ((name, _), _) -> name) |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let to_json t : Json.t =
  let series ((name, labels), v) =
    let base =
      [
        ("name", Json.String name);
        ("labels", Json.Obj (List.map (fun (k, s) -> (k, Json.String s)) labels));
      ]
    in
    let payload =
      match v with
      | Counter c -> [ ("type", Json.String "counter"); ("value", Json.Int c.c) ]
      | Gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float g.g) ]
      | Histogram h ->
          [
            ("type", Json.String "histogram");
            ("count", Json.Int h.h_count);
            ("sum", Json.Float h.h_sum);
            ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
            ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
            ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
            ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
          ]
    in
    Json.Obj (base @ payload)
  in
  Json.Obj
    [
      ("schema", Json.String "mv-metrics-registry/1");
      ("series", Json.List (List.map series (sorted_entries t)));
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun ((name, labels), v) ->
      let lbl =
        match labels with
        | [] -> ""
        | ls ->
            "{"
            ^ String.concat "," (List.map (fun (k, s) -> Printf.sprintf "%s=%s" k s) ls)
            ^ "}"
      in
      match v with
      | Counter c -> Format.fprintf fmt "%s%s %d@," name lbl c.c
      | Gauge g -> Format.fprintf fmt "%s%s %g@," name lbl g.g
      | Histogram h ->
          Format.fprintf fmt "%s%s count=%d sum=%.1f mean=%.2f min=%.1f max=%.1f@," name
            lbl h.h_count h.h_sum
            (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)
            (if h.h_count = 0 then 0.0 else h.h_min)
            (if h.h_count = 0 then 0.0 else h.h_max))
    (sorted_entries t);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* The trace bridge                                                    *)
(* ------------------------------------------------------------------ *)

(* Interpreting the existing event stream keeps the hot paths untouched:
   the runtime's commit spans become the patch-latency histogram, the
   safe-commit lifecycle becomes the drain-latency histogram, and the
   per-event counters fall out of the event names.  The closure carries
   the little state the durations need (open spans, outstanding defer
   timestamps).  [hart] names the hart an observation is attributed to
   (default: constant 0) so per-hart drain skew shows up in the registry;
   latencies are attributed to the hart that closed them. *)
let trace_sink t ~clock ?(hart = fun () -> 0) () : Trace.sink =
  let open_spans : (string * float) list ref = ref [] in
  let defers : float list ref = ref [] in
  let hart_label () = ("hart", string_of_int (hart ())) in
  fun ev ->
    inc t "mv_events_total" [ ("kind", Trace.event_name ev) ];
    match ev with
    | Trace.Commit_begin { op; switches; _ } ->
        open_spans := (op, clock ()) :: !open_spans;
        List.iter
          (fun (n, v) ->
            inc t "mv_commit_switch_total"
              [ ("op", op); ("switch", n); ("value", string_of_int v) ])
          switches
    | Trace.Commit_end { op; _ } -> (
        inc t "mv_commits_total" [ ("op", op) ];
        match !open_spans with
        | (op', ts) :: rest when op' = op ->
            open_spans := rest;
            observe t "mv_patch_latency_cycles"
              [ ("op", op); hart_label () ]
              (clock () -. ts)
        | _ -> ())
    | Trace.Variant_selected { fn; variant } ->
        inc t "mv_variant_installs_total" [ ("fn", fn); ("variant", variant) ]
    | Trace.Site_retargeted _ -> inc t "mv_patches_total" [ ("kind", "site_retargeted") ]
    | Trace.Site_inlined _ -> inc t "mv_patches_total" [ ("kind", "site_inlined") ]
    | Trace.Prologue_patched _ ->
        inc t "mv_patches_total" [ ("kind", "prologue_patched") ]
    | Trace.Fallback { fn } -> inc t "mv_fallbacks_total" [ ("fn", fn) ]
    | Trace.Safe_defer _ ->
        inc t "mv_safe_total" [ ("outcome", "deferred") ];
        defers := !defers @ [ clock () ]
    | Trace.Safe_deny _ -> inc t "mv_safe_total" [ ("outcome", "denied") ]
    | Trace.Pending_drained { actions; _ } ->
        inc t "mv_safe_total" [ ("outcome", "drained") ];
        let now = clock () in
        let lbl = [ hart_label () ] in
        let rec drain n = function
          | ts :: rest when n > 0 ->
              observe t "mv_safe_drain_latency_cycles" lbl (now -. ts);
              drain (n - 1) rest
          | rest -> rest
        in
        defers := drain actions !defers
    | Trace.Pending_rollback _ -> inc t "mv_safe_total" [ ("outcome", "rolled_back") ]
    | Trace.Safepoint_poll { pending } ->
        inc t "mv_safepoint_polls_total" [];
        set_gauge t "mv_pending_sets" [] (float_of_int pending)
    | Trace.Icache_flush { hart; _ } ->
        inc t "mv_icache_flushes_total" [ ("hart", string_of_int hart) ]
    | Trace.Ipi_send _ -> inc t "mv_ipis_total" [ ("dir", "send") ]
    | Trace.Ipi_ack { hart; wait; _ } ->
        inc t "mv_ipis_total" [ ("dir", "ack") ];
        observe t "mv_ipi_wait_cycles" [ ("hart", string_of_int hart) ] wait
    | Trace.Rendezvous_begin _ -> inc t "mv_rendezvous_total" []
    | Trace.Rendezvous_end { latency; _ } ->
        observe t "mv_rendezvous_latency_cycles" [] latency
    | Trace.Causal_edge { edge; _ } ->
        inc t "mv_causal_edges_total" [ ("edge", edge) ]
    | Trace.Osr_transfer { hart; fn; slots; _ } ->
        inc t "mv_osr_transfers_total" [ ("fn", fn); ("hart", string_of_int hart) ];
        observe t "mv_osr_slots" [ ("fn", fn) ] (float_of_int slots)
    | Trace.Variant_materialized { fn; size; dedup; _ } ->
        inc t "mv_variant_cache_materializations_total"
          [ ("fn", fn); ("dedup", if dedup then "hit" else "miss") ];
        if not dedup then
          observe t "mv_variant_cache_body_bytes" [ ("fn", fn) ] (float_of_int size)
    | Trace.Variant_evicted { fn; freed; _ } ->
        inc t "mv_variant_cache_evictions_total" [ ("fn", fn) ];
        observe t "mv_variant_cache_freed_bytes" [ ("fn", fn) ] (float_of_int freed)
