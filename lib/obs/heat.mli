(** Code-heat and variant-lifecycle telemetry: fold the machine's
    superblock hit counters into per-region heat, track how long each
    variant stays resident, and advise which variants to evict under a
    text-memory budget.

    The data flow is pay-for-use end to end.  The VM counts superblock
    entries host-side (see [Mv_vm.Machine.enable_heat] — an array
    increment on the block-dispatch slow path, zero simulated cycles,
    and the counters live outside the superblocks so they survive
    [text_poke]/[flush_icache] invalidation).  The runtime names every
    generic body and variant as a {!region}
    ([Core.Runtime.heat_regions]); {!observe} attributes block-hit
    deltas to the region containing the block's entry and accumulates
    executed-byte coverage; {!sink} watches the existing trace events
    for variant installs, whole-image reverts, and fallbacks to maintain
    residency intervals.  Nothing here touches the simulated clock: the
    obs-overhead bench's [heat] arm pins the cycle delta at +0.00%.

    {!evict_plan} is the eviction {e advisor}: a report-only ranking of
    the currently resident variants by decayed hotness per byte, feeding
    the ROADMAP's lazy-materialization item — the actual evictor
    consumes the plan in a later PR. *)

(** What a region's bytes are: a multiversed function's generic body, or
    one generated variant body. *)
type kind = Generic | Variant

(** A named text region — one body the compiler emitted. *)
type region = {
  r_name : string;  (** symbol, e.g. ["spin_lock.config_smp=1"] *)
  r_fn : string;  (** owning multiversed function *)
  r_kind : kind;
  r_switches : string;
      (** the switch binding the region specializes, rendered as
          ["switch=value"] (comma-joined, ranges as [lo..hi]); [""] for
          a generic body *)
  r_lo : int;  (** absolute first byte *)
  r_hi : int;  (** absolute one-past-last byte *)
}

(** The JSON export's schema tag, ["mv-heat/1"]. *)
val schema : string

(** The heat accumulator: registered regions, folded block counters,
    epoch state and variant residency.  One per session (or per hart
    group under SMP — distinct harts fold under distinct [source]s). *)
type t

(** [create ()] builds an empty accumulator.  [decay] (default 0.5) is
    the per-epoch score multiplier: at each {!epoch} boundary the
    hotness score becomes [score *. decay +. hits_this_epoch], so old
    heat fades geometrically and an idle region cools toward zero. *)
val create : ?decay:float -> unit -> t

(** Register one region.  Registration order is preserved by every
    report.  Re-registering a name replaces the old extent (bodies do
    not move in this AOT pipeline, but a future lazy materializer's
    will). *)
val register : t -> region -> unit

(** Registered regions, in registration order. *)
val regions : t -> region list

(** Fold a block-hit snapshot into the per-region accumulators.  Each
    element is [(lo, hi, hits, insns)] — absolute byte range of one
    superblock entry, cumulative entry count, cumulative instructions
    dispatched from it (the shape [Mv_vm.Machine.heat_blocks] returns).
    Counters are cumulative per source, so re-observing computes deltas
    internally; [source] distinguishes machines whose counters share
    text offsets (pass the hart id under SMP).  Hits and instructions
    are attributed to the region containing the block's {e entry};
    coverage clips the block's byte range against every overlapping
    region. *)
val observe : ?source:int -> t -> (int * int * int * int) list -> unit

(** Close the current decay epoch: every region's score becomes
    [score *. decay +. epoch_hits], and the epoch hit counters reset. *)
val epoch : t -> unit

(** Number of {!epoch} calls so far. *)
val epochs : t -> int

(** A region's hotness right now: the decayed score plus the (not yet
    decayed) hits of the current epoch. *)
val hotness : t -> region -> float

(** Per-region accounting, in registration order. *)
type region_stat = {
  rs_region : region;
  rs_hits : int;  (** cumulative superblock entries *)
  rs_insns : int;  (** cumulative instructions dispatched *)
  rs_heat : float;  (** {!hotness} *)
  rs_covered : int;  (** distinct executed bytes (block-extent union) *)
}

(** Every registered region's statistics, in registration order. *)
val region_stats : t -> region_stat list

(** The residency sink: watches the existing trace-event stream for
    variant lifecycle edges.  [Variant_selected] opens a residency
    interval for (fn, variant), closing the function's previous one; a
    [Commit_end] whose op is ["revert"]/["revert_safe"] closes every
    open interval; [Fallback] closes the function's, and so does
    [Variant_evicted] when the evicted body is the resident one (the
    lazy evictor reclaimed its bytes).  [clock] supplies
    interval endpoints (wire to the machine's cycle counter).  Tee it
    into the session's sink chain ([Harness.enable_heat] does).
    Targeted reverts ([revert_func]) emit no event and are not
    observed — residency is telemetry, not ground truth. *)
val sink : t -> clock:(unit -> float) -> Trace.sink

(** One variant's lifecycle accounting. *)
type stay = {
  st_fn : string;
  st_variant : string;
  st_installs : int;  (** times a [Variant_selected] named it *)
  st_resident : float;  (** simulated cycles spent resident *)
  st_active : bool;  (** resident right now *)
}

(** Lifecycle rows for every variant ever installed, sorted by (fn,
    variant).  [now] extends still-open intervals to the given clock
    reading (default: count only closed intervals). *)
val stays : ?now:float -> t -> stay list

(** Is this variant the one currently resident for its function? *)
val resident : t -> fn:string -> variant:string -> bool

(** The advisor's verdict for one resident variant. *)
type verdict = Keep | Evict

(** One entry of the eviction plan. *)
type advice = {
  ad_region : region;
  ad_heat : float;
  ad_bytes : int;
  ad_verdict : verdict;
}

(** Rank the currently resident variant regions by heat density
    (hotness per byte, then hotness, then name — fully deterministic)
    and keep the densest prefix whose cumulative size fits [budget]
    bytes; everything past the budget is marked [Evict].  Report-only:
    nothing is patched.  A [budget] of 0 or less keeps nothing;
    non-resident variants do not appear (there is nothing to evict).
    [exclude] removes variants (by region name) from the candidate set
    entirely — pass [Core.Runtime.pending_variants] so a variant a
    journaled-but-undrained bind still needs is never advised away; an
    excluded variant neither appears in the plan nor consumes budget. *)
val evict_plan : ?exclude:string list -> t -> budget:int -> advice list

(** The accumulator as a [mv-heat/1] document: decay/epoch parameters,
    a [regions] array (extent, switches, hits, insns, heat, coverage),
    a [variants] array (installs, residency, active flag), and — when
    [budget] is given — the advisor's [plan].  [now] is threaded to
    {!stays} and [exclude] to {!evict_plan}. *)
val to_json : ?budget:int -> ?exclude:string list -> ?now:float -> t -> Json.t

(** Bridge the current state into a metrics registry:
    [mv_region_heat{region}] gauges carry each region's hotness, and
    [mv_variant_resident_bytes{fn,variant}] each variant region's byte
    size while resident (0 once it is not).  Gauges, because heat is
    already cumulative state: re-bridging overwrites. *)
val to_metrics : t -> Metrics.t -> unit

(** The per-region heatmap table with ASCII heat bars (the [mvtrace
    heat] rendering). *)
val pp : Format.formatter -> t -> unit

(** The variant lifecycle table: installs, residency, heat, and — when
    [budget] is given — the advisor verdict (the [mvtrace variants]
    rendering).  [exclude] is threaded to {!evict_plan}. *)
val pp_variants :
  ?budget:int -> ?exclude:string list -> ?now:float -> Format.formatter -> t -> unit
