(* The always-on flight recorder.

   A bounded binary ring, independent of the opt-in [Trace.ring]: events
   are encoded into fixed-size cells of one preallocated [Bytes] buffer
   (strings interned into a small side table), so recording is a handful
   of byte stores with no per-event allocation — cheap enough to leave
   armed for the whole life of every harness session.  When something
   goes wrong (a VM trap, a fuzz-oracle divergence, a bench-gate
   failure), the last [capacity] events are decoded back into stamped
   events and dumped as a [mv-flight/1] postmortem artifact together
   with caller-supplied context (runtime stats, per-hart pc/stack
   summaries).

   Encoding: each cell is [cell_bytes] wide — tag byte, hart byte, the
   clock reading (float bits), and four 64-bit payload slots whose
   meaning depends on the tag.  Strings (op names, function names, edge
   kinds) are stored as intern-table ids.  One lossy corner, by design:
   [Commit_begin]'s switch-value list does not fit a fixed cell and is
   dropped on decode (the cid, op and count survive) — the full list is
   available from the opt-in tracer when armed. *)

type t = {
  clock : unit -> float;
  hart : unit -> int;
  cells : Bytes.t;  (* capacity * cell_bytes, circular *)
  capacity : int;
  mutable next_seq : int;  (* total events ever recorded *)
  strings : (string, int) Hashtbl.t;  (* intern: string -> id *)
  mutable names : string list;  (* reverse table, newest first *)
  mutable n_names : int;
}

let cell_bytes = 48

let create ?(capacity = 512) ?(hart = fun () -> 0) ~clock () =
  let capacity = max 1 capacity in
  {
    clock;
    hart;
    cells = Bytes.make (capacity * cell_bytes) '\000';
    capacity;
    next_seq = 0;
    strings = Hashtbl.create 32;
    names = [];
    n_names = 0;
  }

let intern t s =
  match Hashtbl.find_opt t.strings s with
  | Some id -> id
  | None ->
      let id = t.n_names in
      Hashtbl.add t.strings s id;
      t.names <- s :: t.names;
      t.n_names <- id + 1;
      id

let name_of t id =
  if id < 0 || id >= t.n_names then "?"
  else List.nth t.names (t.n_names - 1 - id)

(* Constructor tags — stable small ints, used only inside the ring. *)
let tag_of : Trace.event -> int = function
  | Trace.Commit_begin _ -> 0
  | Trace.Commit_end _ -> 1
  | Trace.Variant_selected _ -> 2
  | Trace.Site_retargeted _ -> 3
  | Trace.Site_inlined _ -> 4
  | Trace.Prologue_patched _ -> 5
  | Trace.Fallback _ -> 6
  | Trace.Safe_defer _ -> 7
  | Trace.Safe_deny _ -> 8
  | Trace.Pending_drained _ -> 9
  | Trace.Pending_rollback _ -> 10
  | Trace.Safepoint_poll _ -> 11
  | Trace.Icache_flush _ -> 12
  | Trace.Ipi_send _ -> 13
  | Trace.Ipi_ack _ -> 14
  | Trace.Rendezvous_begin _ -> 15
  | Trace.Rendezvous_end _ -> 16
  | Trace.Causal_edge _ -> 17
  | Trace.Osr_transfer _ -> 18
  | Trace.Variant_materialized _ -> 19
  | Trace.Variant_evicted _ -> 20

(* Float fields (ack waits, rendezvous latencies — always non-negative)
   travel as the low 63 bits of their IEEE pattern in an int slot; the
   sign bit cannot survive the 63-bit OCaml int, so decode re-zeroes it.
   Lossless for every non-negative float. *)
let slot_of_float f = Int64.to_int (Int64.bits_of_float f)

(* The four payload slots per constructor (strings as intern ids, floats
   as their IEEE bits). *)
let payload t : Trace.event -> int * int * int * int = function
  | Trace.Commit_begin { cid; op; switches } ->
      (cid, intern t op, List.length switches, 0)
  | Trace.Commit_end { cid; op; bound } -> (cid, intern t op, bound, 0)
  | Trace.Variant_selected { fn; variant } -> (intern t fn, intern t variant, 0, 0)
  | Trace.Site_retargeted { fn; site; target } -> (intern t fn, site, target, 0)
  | Trace.Site_inlined { fn; site; target } -> (intern t fn, site, target, 0)
  | Trace.Prologue_patched { fn; target } -> (intern t fn, target, 0, 0)
  | Trace.Fallback { fn } -> (intern t fn, 0, 0, 0)
  | Trace.Safe_defer { cid; fn } -> (cid, intern t fn, 0, 0)
  | Trace.Safe_deny { cid; fn } -> (cid, intern t fn, 0, 0)
  | Trace.Pending_drained { cid; pset; actions } -> (cid, pset, actions, 0)
  | Trace.Pending_rollback { cid; pset } -> (cid, pset, 0, 0)
  | Trace.Safepoint_poll { pending } -> (pending, 0, 0, 0)
  | Trace.Icache_flush { hart; addr; len } -> (hart, addr, len, 0)
  | Trace.Ipi_send { rdv; from_hart; to_hart } -> (rdv, from_hart, to_hart, 0)
  | Trace.Ipi_ack { rdv; hart; wait; at } -> (rdv, hart, slot_of_float wait, at)
  | Trace.Rendezvous_begin { rdv; initiator; waiting } -> (rdv, initiator, waiting, 0)
  | Trace.Rendezvous_end { rdv; initiator; acks; latency } ->
      (rdv, initiator, acks, slot_of_float latency)
  | Trace.Causal_edge { edge; id; src_hart; dst_hart } ->
      (intern t edge, id, src_hart, dst_hart)
  (* seven fields into four slots: pc pairs and small counters share one *)
  | Trace.Osr_transfer { cid; hart; fn; sp_id; from_pc; to_pc; slots } ->
      ( cid,
        (hart lsl 32) lor intern t fn,
        (sp_id lsl 32) lor slots,
        (from_pc lsl 32) lor to_pc )
  (* the dedup flag rides the size slot's top bit *)
  | Trace.Variant_materialized { fn; variant; addr; size; dedup } ->
      ( intern t fn,
        intern t variant,
        addr,
        (if dedup then 1 lsl 62 else 0) lor size )
  | Trace.Variant_evicted { fn; variant; freed } ->
      (intern t fn, intern t variant, freed, 0)

let float_of_slot v = Int64.float_of_bits (Int64.logand (Int64.of_int v) Int64.max_int)

(* Rebuild the event from (tag, slots).  Inverse of [payload] except for
   Commit_begin's dropped switch list. *)
let decode t tag a b c d : Trace.event =
  match tag with
  | 0 -> Trace.Commit_begin { cid = a; op = name_of t b; switches = [] }
  | 1 -> Trace.Commit_end { cid = a; op = name_of t b; bound = c }
  | 2 -> Trace.Variant_selected { fn = name_of t a; variant = name_of t b }
  | 3 -> Trace.Site_retargeted { fn = name_of t a; site = b; target = c }
  | 4 -> Trace.Site_inlined { fn = name_of t a; site = b; target = c }
  | 5 -> Trace.Prologue_patched { fn = name_of t a; target = b }
  | 6 -> Trace.Fallback { fn = name_of t a }
  | 7 -> Trace.Safe_defer { cid = a; fn = name_of t b }
  | 8 -> Trace.Safe_deny { cid = a; fn = name_of t b }
  | 9 -> Trace.Pending_drained { cid = a; pset = b; actions = c }
  | 10 -> Trace.Pending_rollback { cid = a; pset = b }
  | 11 -> Trace.Safepoint_poll { pending = a }
  | 12 -> Trace.Icache_flush { hart = a; addr = b; len = c }
  | 13 -> Trace.Ipi_send { rdv = a; from_hart = b; to_hart = c }
  | 14 -> Trace.Ipi_ack { rdv = a; hart = b; wait = float_of_slot c; at = d }
  | 15 -> Trace.Rendezvous_begin { rdv = a; initiator = b; waiting = c }
  | 16 ->
      Trace.Rendezvous_end
        { rdv = a; initiator = b; acks = c; latency = float_of_slot d }
  | 17 ->
      Trace.Causal_edge
        { edge = name_of t a; id = b; src_hart = c; dst_hart = d }
  | 18 ->
      Trace.Osr_transfer
        {
          cid = a;
          hart = b lsr 32;
          fn = name_of t (b land 0xFFFFFFFF);
          sp_id = c lsr 32;
          slots = c land 0xFFFFFFFF;
          from_pc = d lsr 32;
          to_pc = d land 0xFFFFFFFF;
        }
  | 19 ->
      Trace.Variant_materialized
        {
          fn = name_of t a;
          variant = name_of t b;
          addr = c;
          size = d land ((1 lsl 62) - 1);
          dedup = d land (1 lsl 62) <> 0;
        }
  | 20 -> Trace.Variant_evicted { fn = name_of t a; variant = name_of t b; freed = c }
  | _ -> Trace.Safepoint_poll { pending = -1 }

let record t ev =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let off = seq mod t.capacity * cell_bytes in
  let hart = match Trace.hart_of_event ev with Some h -> h | None -> t.hart () in
  let a, b, c, d = payload t ev in
  Bytes.unsafe_set t.cells off (Char.unsafe_chr (tag_of ev));
  Bytes.unsafe_set t.cells (off + 1) (Char.unsafe_chr (hart land 0xFF));
  Bytes.set_int64_le t.cells (off + 8) (Int64.bits_of_float (t.clock ()));
  Bytes.set_int64_le t.cells (off + 16) (Int64.of_int a);
  Bytes.set_int64_le t.cells (off + 24) (Int64.of_int b);
  Bytes.set_int64_le t.cells (off + 32) (Int64.of_int c);
  Bytes.set_int64_le t.cells (off + 40) (Int64.of_int d)

let sink t : Trace.sink = fun ev -> record t ev
let recorded t = t.next_seq
let capacity t = t.capacity
let dropped t = max 0 (t.next_seq - t.capacity)

(* Decode the surviving window, oldest first, reconstructing global and
   per-hart sequence numbers. *)
let events t : Trace.stamped list =
  let lo = max 0 (t.next_seq - t.capacity) in
  let hseqs = Hashtbl.create 8 in
  (* per-hart counts of the events that fell off the ring keep hseq
     consistent with what a same-shape Trace.ring would have assigned
     only when nothing was dropped; after overflow hseq restarts dense
     within the window, which is what the postmortem consumers need *)
  let acc = ref [] in
  for seq = t.next_seq - 1 downto lo do
    let off = seq mod t.capacity * cell_bytes in
    let tag = Char.code (Bytes.get t.cells off) in
    let hart = Char.code (Bytes.get t.cells (off + 1)) in
    let ts = Int64.float_of_bits (Bytes.get_int64_le t.cells (off + 8)) in
    let slot i = Int64.to_int (Bytes.get_int64_le t.cells (off + 16 + (8 * i))) in
    let ev = decode t tag (slot 0) (slot 1) (slot 2) (slot 3) in
    acc := (seq, hart, ts, ev) :: !acc
  done;
  List.map
    (fun (seq, hart, ts, ev) ->
      let hseq = Option.value ~default:0 (Hashtbl.find_opt hseqs hart) in
      Hashtbl.replace hseqs hart (hseq + 1);
      { Trace.ts; seq; hart; hseq; ev })
    !acc

(* ------------------------------------------------------------------ *)
(* The mv-flight/1 postmortem artifact                                  *)
(* ------------------------------------------------------------------ *)

let schema = "mv-flight/1"

let dump t ~reason ?(extra = []) () : Json.t =
  let stamped = events t in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("reason", Json.String reason);
       ("clock", Json.Float (t.clock ()));
       ("recorded", Json.Int (recorded t));
       ("capacity", Json.Int t.capacity);
       ("dropped", Json.Int (dropped t));
       ( "events",
         Json.List
           (List.map
              (fun (st : Trace.stamped) ->
                Json.Obj
                  [
                    ("ts", Json.Float st.Trace.ts);
                    ("seq", Json.Int st.Trace.seq);
                    ("hart", Json.Int st.Trace.hart);
                    ("hseq", Json.Int st.Trace.hseq);
                    ("name", Json.String (Trace.event_name st.Trace.ev));
                    ("args", Json.Obj (Export.args_of_event st.Trace.ev));
                    ( "text",
                      Json.String (Format.asprintf "%a" Trace.pp_event st.Trace.ev)
                    );
                  ])
              stamped) );
     ]
    @ extra)

let dump_string t ~reason ?extra () =
  Json.to_string_pretty (dump t ~reason ?extra ())

(* The dump's inverse: decode one event from its [name] + [args]
   members, for the postmortem analyzer ([mvtrace postmortem]) and the
   round-trip tests.  Fields follow [Export.args_of_event]; unknown
   names decode to [None]. *)
let event_of_json name (args : Json.t) : Trace.event option =
  let int k =
    match Json.member k args with
    | Some (Json.Int n) -> Some n
    | Some (Json.Float f) -> Some (int_of_float f)
    | _ -> None
  in
  let flt k =
    match Json.member k args with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  let str k =
    match Json.member k args with Some (Json.String s) -> Some s | _ -> None
  in
  let switches () =
    match Json.member "switches" args with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with Json.Int n -> Some (k, n) | _ -> None)
          kvs
    | _ -> []
  in
  match (name, int "cid", str "fn") with
  | "commit_begin", Some cid, _ ->
      Option.map
        (fun op -> Trace.Commit_begin { cid; op; switches = switches () })
        (str "op")
  | "commit_end", Some cid, _ -> (
      match (str "op", int "bound") with
      | Some op, Some bound -> Some (Trace.Commit_end { cid; op; bound })
      | _ -> None)
  | "safe_defer", Some cid, Some fn -> Some (Trace.Safe_defer { cid; fn })
  | "safe_deny", Some cid, Some fn -> Some (Trace.Safe_deny { cid; fn })
  | "pending_drained", Some cid, _ -> (
      match (int "pset", int "actions") with
      | Some pset, Some actions ->
          Some (Trace.Pending_drained { cid; pset; actions })
      | _ -> None)
  | "pending_rollback", Some cid, _ ->
      Option.map (fun pset -> Trace.Pending_rollback { cid; pset }) (int "pset")
  | "variant_selected", _, Some fn ->
      Option.map (fun variant -> Trace.Variant_selected { fn; variant })
        (str "variant")
  | "site_retargeted", _, Some fn -> (
      match (int "site", int "target") with
      | Some site, Some target -> Some (Trace.Site_retargeted { fn; site; target })
      | _ -> None)
  | "site_inlined", _, Some fn -> (
      match (int "site", int "target") with
      | Some site, Some target -> Some (Trace.Site_inlined { fn; site; target })
      | _ -> None)
  | "prologue_patched", _, Some fn ->
      Option.map (fun target -> Trace.Prologue_patched { fn; target })
        (int "target")
  | "fallback", _, Some fn -> Some (Trace.Fallback { fn })
  | "safepoint_poll", _, _ ->
      Option.map (fun pending -> Trace.Safepoint_poll { pending }) (int "pending")
  | "icache_flush", _, _ -> (
      match (int "hart", int "addr", int "len") with
      | Some hart, Some addr, Some len ->
          Some (Trace.Icache_flush { hart; addr; len })
      | _ -> None)
  | "ipi_send", _, _ -> (
      match (int "rdv", int "from_hart", int "to_hart") with
      | Some rdv, Some from_hart, Some to_hart ->
          Some (Trace.Ipi_send { rdv; from_hart; to_hart })
      | _ -> None)
  | "ipi_ack", _, _ -> (
      match (int "rdv", int "hart", flt "wait", int "at") with
      | Some rdv, Some hart, Some wait, Some at ->
          Some (Trace.Ipi_ack { rdv; hart; wait; at })
      | _ -> None)
  | "rendezvous_begin", _, _ -> (
      match (int "rdv", int "initiator", int "waiting") with
      | Some rdv, Some initiator, Some waiting ->
          Some (Trace.Rendezvous_begin { rdv; initiator; waiting })
      | _ -> None)
  | "rendezvous_end", _, _ -> (
      match (int "rdv", int "initiator", int "acks", flt "latency") with
      | Some rdv, Some initiator, Some acks, Some latency ->
          Some (Trace.Rendezvous_end { rdv; initiator; acks; latency })
      | _ -> None)
  | "causal_edge", _, _ -> (
      match (str "edge", int "id", int "src_hart", int "dst_hart") with
      | Some edge, Some id, Some src_hart, Some dst_hart ->
          Some (Trace.Causal_edge { edge; id; src_hart; dst_hart })
      | _ -> None)
  | "variant_materialized", _, Some fn -> (
      let dedup =
        match Json.member "dedup" args with Some (Json.Bool b) -> b | _ -> false
      in
      match (str "variant", int "addr", int "size") with
      | Some variant, Some addr, Some size ->
          Some (Trace.Variant_materialized { fn; variant; addr; size; dedup })
      | _ -> None)
  | "variant_evicted", _, Some fn -> (
      match (str "variant", int "freed") with
      | Some variant, Some freed -> Some (Trace.Variant_evicted { fn; variant; freed })
      | _ -> None)
  | _ -> None

(* Decode a whole dump document's [events] member back into stamped
   events (entries whose name/args do not decode are skipped). *)
let events_of_dump (doc : Json.t) : Trace.stamped list =
  match Json.member "events" doc with
  | Some (Json.List entries) ->
      List.filter_map
        (fun e ->
          let int k =
            match Json.member k e with Some (Json.Int n) -> Some n | _ -> None
          in
          let ts =
            match Json.member "ts" e with
            | Some (Json.Float f) -> f
            | Some (Json.Int n) -> float_of_int n
            | _ -> 0.0
          in
          match (Json.member "name" e, Json.member "args" e) with
          | Some (Json.String name), Some args -> (
              match event_of_json name args with
              | Some ev ->
                  Some
                    {
                      Trace.ts;
                      seq = Option.value ~default:0 (int "seq");
                      hart = Option.value ~default:0 (int "hart");
                      hseq = Option.value ~default:0 (int "hseq");
                      ev;
                    }
              | None -> None)
          | _ -> None)
        entries
  | _ -> []

(* Write the artifact under the MV_SMP_ARTIFACT_DIR convention (the SMP
   test battery's failure-dump directory): no env var, no file — a plain
   [dune runtest] never spams the working tree.  [dir] overrides the
   environment for callers that already know where artifacts go. *)
let write_artifact t ~reason ~name ?extra ?dir () : string option =
  let dir =
    match dir with Some d -> Some d | None -> Sys.getenv_opt "MV_SMP_ARTIFACT_DIR"
  in
  match dir with
  | None | Some "" -> None
  | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with _ -> ());
      let path = Filename.concat dir (name ^ ".flight.json") in
      (try
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc (dump_string t ~reason ?extra ()));
         Some path
       with Sys_error _ -> None)
