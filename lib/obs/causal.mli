(** Causal analysis over a stamped event stream: per-hart timeline DAG,
    rendezvous critical paths, straggler ranking, and commit-chain
    reconstruction.

    Everything here is a pure host-side fold over [Trace.stamped list] —
    run it after the fact on [Harness.smp_trace_events] (or a flight
    recorder's decoded window); nothing touches the simulated machine.
    The [mvtrace timeline] and [mvtrace blame] subcommands are thin
    renderers over this module. *)

(** Events per hart: each lane oldest-first (its [hseq] order — the
    hart's program-order edge chain), lanes sorted by hart id. *)
val timelines : Trace.stamped list -> (int * Trace.stamped list) list

(** A cross-hart happens-before edge, decoded from a [Causal_edge]
    event.  Together with the per-hart lanes these edges form the full
    timeline DAG. *)
type edge = {
  e_kind : string;  (** ["ipi"], ["rendezvous"] or ["drain"] *)
  e_id : int;  (** the correlation id: [rdv] or [cid] *)
  e_src : int;
  e_dst : int;
  e_ts : float;  (** when the destination end materialized *)
}

(** The cross-hart edges of the stream, oldest-first. *)
val edges : Trace.stamped list -> edge list

(** One hart's participation in a rendezvous. *)
type ack = {
  a_hart : int;
  a_ts : float;  (** clock at the ack *)
  a_wait : float;  (** post-to-ack latency *)
  a_at : int;  (** pc the hart was executing when it parked *)
}

(** A reconstructed stop_machine rendezvous, grouped by its [rdv] id. *)
type rendezvous = {
  r_id : int;
  r_initiator : int;
  r_begin_ts : float;
  r_sends : (int * float) list;  (** (target hart, send ts), send order *)
  r_acks : ack list;  (** ack order *)
  r_end_ts : float option;  (** [None]: never completed in this window *)
  r_latency : float option;  (** [Rendezvous_end.latency] *)
}

(** Group the stream's IPI/rendezvous events by [rdv] id, oldest
    rendezvous first. *)
val rendezvous : Trace.stamped list -> rendezvous list

(** The ack that took longest to arrive — the hart whose critical path
    set the rendezvous latency.  [None] for an uncontended rendezvous. *)
val straggler : rendezvous -> ack option

(** One node of a rendezvous' critical path. *)
type path_step = { p_hart : int; p_event : string; p_ts : float }

(** The chain of events that determined a completed rendezvous' end
    time: begin on the initiator, the send to the straggler, the
    straggler's ack, the end.  Empty for a rendezvous that never
    completed inside the recorded window. *)
val critical_path : rendezvous -> path_step list

(** Cycle length of the critical path (0 when incomplete).  For a
    completed rendezvous this equals [Rendezvous_end.latency]: sends are
    stamped at the same clock reading as the begin, and the patch thunk
    charges no simulated cycles — the invariant the causal tests pin. *)
val critical_path_length : rendezvous -> float

(** Aggregate wait profile of one hart across a rendezvous list. *)
type hart_rank = {
  h_hart : int;
  h_acks : int;  (** rendezvous this hart had to ack *)
  h_straggled : int;  (** rendezvous where its ack arrived last *)
  h_total_wait : float;
  h_max_wait : float;
}

(** Rank harts by how much rendezvous latency they are responsible for:
    the harts that cost the most wait first (total wait, then straggle count). *)
val rank_stragglers : rendezvous list -> hart_rank list

(** Feed per-hart wait histograms into a metrics registry:
    [mv_hart_wait_cycles{hart}] observes every ack wait,
    [mv_stragglers_total{hart}] counts rendezvous the hart released
    last. *)
val to_metrics : Metrics.t -> rendezvous list -> unit

(** A commit causality chain, grouped by [cid]: the span, the work it
    deferred, the eventual (possibly cross-hart) drain. *)
type chain = {
  c_cid : int;
  c_op : string;
  c_hart : int;  (** hart the commit ran on *)
  c_begin_ts : float;
  c_end_ts : float option;
  c_defers : string list;  (** functions journaled, defer order *)
  c_denies : string list;
  c_drained : (int * float) option;  (** (draining hart, drain ts) *)
  c_rolled_back : bool;
}

(** Group the stream's commit-lifecycle events by [cid], oldest first. *)
val chains : Trace.stamped list -> chain list

(** Violations of the send/ack pairing invariant — every [Ipi_send] of a
    completed rendezvous has exactly one matching [Ipi_ack], no ack
    without a send.  Empty list = invariant holds. *)
val check_send_ack_pairing : Trace.stamped list -> string list
