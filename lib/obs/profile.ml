(* Interval-sampling profiler: every [interval]-th executed instruction,
   attribute the cycles elapsed since the last sample to the symbol
   containing the current pc.  Attribution is approximate in exactly the
   way hardware PMU sampling is — cycles spent in short callees between
   samples land on whoever holds the pc at sample time — and converges
   with run length. *)

type row = {
  r_name : string;
  r_samples : int;
  r_cycles : float;
  r_share : float;
  r_variant : bool;
}

type cell = { mutable c_samples : int; mutable c_cycles : float }

type t = {
  resolve : int -> string option;
  is_variant : string -> bool;
  now : unit -> float;
  interval : int;
  mutable countdown : int;
  mutable last : float;
  mutable total_samples : int;
  mutable total_cycles : float;
  table : (string, cell) Hashtbl.t;
}

let unknown = "<unknown>"

let create ?(interval = 97) ?(is_variant = fun _ -> false) ~resolve ~now () =
  let interval = max 1 interval in
  {
    resolve;
    is_variant;
    now;
    interval;
    countdown = interval;
    last = now ();
    total_samples = 0;
    total_cycles = 0.0;
    table = Hashtbl.create 64;
  }

let sample t pc =
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.interval;
    let ts = t.now () in
    let delta = ts -. t.last in
    t.last <- ts;
    let name = match t.resolve pc with Some n -> n | None -> unknown in
    let cell =
      match Hashtbl.find_opt t.table name with
      | Some c -> c
      | None ->
          let c = { c_samples = 0; c_cycles = 0.0 } in
          Hashtbl.add t.table name c;
          c
    in
    cell.c_samples <- cell.c_samples + 1;
    cell.c_cycles <- cell.c_cycles +. delta;
    t.total_samples <- t.total_samples + 1;
    t.total_cycles <- t.total_cycles +. delta
  end

let samples t = t.total_samples
let cycles t = t.total_cycles

let reset t =
  Hashtbl.reset t.table;
  t.countdown <- t.interval;
  t.last <- t.now ();
  t.total_samples <- 0;
  t.total_cycles <- 0.0

let report t =
  let total = if t.total_cycles > 0.0 then t.total_cycles else 1.0 in
  Hashtbl.fold
    (fun name cell acc ->
      {
        r_name = name;
        r_samples = cell.c_samples;
        r_cycles = cell.c_cycles;
        r_share = cell.c_cycles /. total;
        r_variant = name <> unknown && t.is_variant name;
      }
      :: acc)
    t.table []
  |> List.sort (fun a b ->
         let c = compare b.r_cycles a.r_cycles in
         if c <> 0 then c else compare a.r_name b.r_name)

let pp ?(limit = 10) fmt t =
  let rows = report t in
  Format.fprintf fmt "@[<v>%-36s %8s %12s %7s@," "hot functions" "samples" "cycles" "share";
  List.iteri
    (fun i r ->
      if i < limit then
        Format.fprintf fmt "%-36s %8d %12.1f %6.1f%%@,"
          (if r.r_variant then r.r_name ^ " [variant]" else r.r_name)
          r.r_samples r.r_cycles (100.0 *. r.r_share))
    rows;
  Format.fprintf fmt "(%d samples, %.1f cycles attributed)@]" t.total_samples
    t.total_cycles
