(* Structured trace events and the fixed-capacity ring recorder.

   Design constraints (mirroring the safepoint hook of the safe-commit
   subsystem): emitters hold an [event -> unit] option and do nothing but
   one match when it is [None]; the recorder is bounded so tracing a
   billion-cycle run cannot exhaust memory; overflow drops the oldest
   events, because the interesting window is almost always the most
   recent one (the patch that just went wrong). *)

type event =
  | Commit_begin of { op : string; switches : (string * int) list }
  | Commit_end of { op : string; bound : int }
  | Variant_selected of { fn : string; variant : string }
  | Site_retargeted of { fn : string; site : int; target : int }
  | Site_inlined of { fn : string; site : int; target : int }
  | Prologue_patched of { fn : string; target : int }
  | Fallback of { fn : string }
  | Safe_defer of { fn : string }
  | Safe_deny of { fn : string }
  | Pending_drained of { pset : int; actions : int }
  | Pending_rollback of { pset : int }
  | Safepoint_poll of { pending : int }
  | Icache_flush of { hart : int; addr : int; len : int }
  | Ipi_send of { from_hart : int; to_hart : int }
  | Ipi_ack of { hart : int; wait : float }
  | Rendezvous_begin of { initiator : int; waiting : int }
  | Rendezvous_end of { initiator : int; acks : int; latency : float }

type stamped = { ts : float; seq : int; ev : event }
type sink = event -> unit

type ring = {
  clock : unit -> float;
  slots : stamped option array;  (* circular, indexed by seq mod capacity *)
  mutable next_seq : int;
  mutable base_seq : int;  (* sequence numbers below this were cleared *)
  mutable dropped : int;
}

let ring ?(capacity = 4096) ~clock () =
  {
    clock;
    slots = Array.make (max 1 capacity) None;
    next_seq = 0;
    base_seq = 0;
    dropped = 0;
  }

let record r ev =
  let cap = Array.length r.slots in
  let seq = r.next_seq in
  r.next_seq <- seq + 1;
  if r.slots.(seq mod cap) <> None then r.dropped <- r.dropped + 1;
  r.slots.(seq mod cap) <- Some { ts = r.clock (); seq; ev }

let sink r : sink = fun ev -> record r ev

let events r =
  let cap = Array.length r.slots in
  let lo = max r.base_seq (r.next_seq - cap) in
  let acc = ref [] in
  for seq = r.next_seq - 1 downto lo do
    match r.slots.(seq mod cap) with
    | Some st when st.seq = seq -> acc := st :: !acc
    | _ -> ()
  done;
  !acc

let recorded r = r.next_seq - r.base_seq
let dropped r = r.dropped

let clear r =
  Array.fill r.slots 0 (Array.length r.slots) None;
  r.base_seq <- r.next_seq;
  r.dropped <- 0

let event_name = function
  | Commit_begin _ -> "commit_begin"
  | Commit_end _ -> "commit_end"
  | Variant_selected _ -> "variant_selected"
  | Site_retargeted _ -> "site_retargeted"
  | Site_inlined _ -> "site_inlined"
  | Prologue_patched _ -> "prologue_patched"
  | Fallback _ -> "fallback"
  | Safe_defer _ -> "safe_defer"
  | Safe_deny _ -> "safe_deny"
  | Pending_drained _ -> "pending_drained"
  | Pending_rollback _ -> "pending_rollback"
  | Safepoint_poll _ -> "safepoint_poll"
  | Icache_flush _ -> "icache_flush"
  | Ipi_send _ -> "ipi_send"
  | Ipi_ack _ -> "ipi_ack"
  | Rendezvous_begin _ -> "rendezvous_begin"
  | Rendezvous_end _ -> "rendezvous_end"

let pp_event fmt = function
  | Commit_begin { op; switches } ->
      Format.fprintf fmt "%s begin {%s}" op
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) switches))
  | Commit_end { op; bound } -> Format.fprintf fmt "%s end -> %d" op bound
  | Variant_selected { fn; variant } -> Format.fprintf fmt "select %s for %s" variant fn
  | Site_retargeted { fn; site; target } ->
      Format.fprintf fmt "retarget site 0x%x of %s -> 0x%x" site fn target
  | Site_inlined { fn; site; target } ->
      Format.fprintf fmt "inline 0x%x into site 0x%x of %s" target site fn
  | Prologue_patched { fn; target } ->
      Format.fprintf fmt "prologue of %s -> jmp 0x%x" fn target
  | Fallback { fn } -> Format.fprintf fmt "fallback: %s stays generic" fn
  | Safe_defer { fn } -> Format.fprintf fmt "defer %s (live)" fn
  | Safe_deny { fn } -> Format.fprintf fmt "deny %s (live)" fn
  | Pending_drained { pset; actions } ->
      Format.fprintf fmt "pending set #%d drained (%d actions)" pset actions
  | Pending_rollback { pset } -> Format.fprintf fmt "pending set #%d rolled back" pset
  | Safepoint_poll { pending } ->
      Format.fprintf fmt "safepoint poll (%d sets pending)" pending
  | Icache_flush { hart; addr; len } ->
      if len = 0 then Format.fprintf fmt "hart%d icache flush (all)" hart
      else Format.fprintf fmt "hart%d icache flush [0x%x, 0x%x)" hart addr (addr + len)
  | Ipi_send { from_hart; to_hart } ->
      Format.fprintf fmt "ipi hart%d -> hart%d" from_hart to_hart
  | Ipi_ack { hart; wait } ->
      Format.fprintf fmt "hart%d acked ipi after %.1f cycles" hart wait
  | Rendezvous_begin { initiator; waiting } ->
      Format.fprintf fmt "rendezvous by hart%d (%d hart(s) to park)" initiator waiting
  | Rendezvous_end { initiator; acks; latency } ->
      Format.fprintf fmt "rendezvous by hart%d complete (%d ack(s), %.1f cycles)"
        initiator acks latency

let pp fmt st = Format.fprintf fmt "[%10.1f/%d] %a" st.ts st.seq pp_event st.ev
