(* Structured trace events and the fixed-capacity ring recorder.

   Design constraints (mirroring the safepoint hook of the safe-commit
   subsystem): emitters hold an [event -> unit] option and do nothing but
   one match when it is [None]; the recorder is bounded so tracing a
   billion-cycle run cannot exhaust memory; overflow drops the oldest
   events, because the interesting window is almost always the most
   recent one (the patch that just went wrong).

   Causality: every stamped event carries the hart it happened on plus a
   per-hart sequence number, and the distributed protocols thread small
   correlation ids through their events — [rdv] ties an Ipi_send to its
   Ipi_ack and the Rendezvous_begin/end pair, [cid] ties a Commit_begin
   to the Safe_defer/Pending_drained chain it caused, possibly drained
   cycles later on a different hart.  [Causal_edge] events make the
   cross-hart happens-before links explicit in the stream so consumers
   (Causal, the mvtrace timeline/blame commands) need no protocol
   knowledge to reconstruct the DAG. *)

type event =
  | Commit_begin of { cid : int; op : string; switches : (string * int) list }
  | Commit_end of { cid : int; op : string; bound : int }
  | Variant_selected of { fn : string; variant : string }
  | Site_retargeted of { fn : string; site : int; target : int }
  | Site_inlined of { fn : string; site : int; target : int }
  | Prologue_patched of { fn : string; target : int }
  | Fallback of { fn : string }
  | Safe_defer of { cid : int; fn : string }
  | Safe_deny of { cid : int; fn : string }
  | Pending_drained of { cid : int; pset : int; actions : int }
  | Pending_rollback of { cid : int; pset : int }
  | Safepoint_poll of { pending : int }
  | Icache_flush of { hart : int; addr : int; len : int }
  | Ipi_send of { rdv : int; from_hart : int; to_hart : int }
  | Ipi_ack of { rdv : int; hart : int; wait : float; at : int }
  | Rendezvous_begin of { rdv : int; initiator : int; waiting : int }
  | Rendezvous_end of { rdv : int; initiator : int; acks : int; latency : float }
  | Causal_edge of { edge : string; id : int; src_hart : int; dst_hart : int }
  | Osr_transfer of {
      cid : int;
      hart : int;
      fn : string;
      sp_id : int;
      from_pc : int;
      to_pc : int;
      slots : int;
    }
  | Variant_materialized of {
      fn : string;
      variant : string;
      addr : int;
      size : int;
      dedup : bool;
    }
  | Variant_evicted of { fn : string; variant : string; freed : int }

type stamped = { ts : float; seq : int; hart : int; hseq : int; ev : event }
type sink = event -> unit

(* Events that name the hart they happened on attribute themselves; the
   rest fall back to the ring's hart source (the scheduler's notion of
   "currently executing hart").  Causal edges land on their destination
   hart — that is where the effect materializes. *)
let hart_of_event = function
  | Icache_flush { hart; _ } | Ipi_ack { hart; _ } -> Some hart
  | Ipi_send { from_hart; _ } -> Some from_hart
  | Rendezvous_begin { initiator; _ } | Rendezvous_end { initiator; _ } ->
      Some initiator
  | Causal_edge { dst_hart; _ } -> Some dst_hart
  | Osr_transfer { hart; _ } -> Some hart
  | _ -> None

type ring = {
  clock : unit -> float;
  hart : unit -> int;
  slots : stamped option array;  (* circular, indexed by seq mod capacity *)
  hseqs : (int, int) Hashtbl.t;  (* per-hart next sequence number *)
  mutable next_seq : int;
  mutable base_seq : int;  (* sequence numbers below this were cleared *)
  mutable dropped : int;
}

let ring ?(capacity = 4096) ?(hart = fun () -> 0) ~clock () =
  {
    clock;
    hart;
    slots = Array.make (max 1 capacity) None;
    hseqs = Hashtbl.create 8;
    next_seq = 0;
    base_seq = 0;
    dropped = 0;
  }

let record r ev =
  let cap = Array.length r.slots in
  let seq = r.next_seq in
  r.next_seq <- seq + 1;
  if r.slots.(seq mod cap) <> None then r.dropped <- r.dropped + 1;
  let hart = match hart_of_event ev with Some h -> h | None -> r.hart () in
  let hseq = Option.value ~default:0 (Hashtbl.find_opt r.hseqs hart) in
  Hashtbl.replace r.hseqs hart (hseq + 1);
  r.slots.(seq mod cap) <- Some { ts = r.clock (); seq; hart; hseq; ev }

let sink r : sink = fun ev -> record r ev

let events r =
  let cap = Array.length r.slots in
  let lo = max r.base_seq (r.next_seq - cap) in
  let acc = ref [] in
  for seq = r.next_seq - 1 downto lo do
    match r.slots.(seq mod cap) with
    | Some st when st.seq = seq -> acc := st :: !acc
    | _ -> ()
  done;
  !acc

let recorded r = r.next_seq - r.base_seq
let dropped r = r.dropped

let clear r =
  Array.fill r.slots 0 (Array.length r.slots) None;
  r.base_seq <- r.next_seq;
  r.dropped <- 0

let event_name = function
  | Commit_begin _ -> "commit_begin"
  | Commit_end _ -> "commit_end"
  | Variant_selected _ -> "variant_selected"
  | Site_retargeted _ -> "site_retargeted"
  | Site_inlined _ -> "site_inlined"
  | Prologue_patched _ -> "prologue_patched"
  | Fallback _ -> "fallback"
  | Safe_defer _ -> "safe_defer"
  | Safe_deny _ -> "safe_deny"
  | Pending_drained _ -> "pending_drained"
  | Pending_rollback _ -> "pending_rollback"
  | Safepoint_poll _ -> "safepoint_poll"
  | Icache_flush _ -> "icache_flush"
  | Ipi_send _ -> "ipi_send"
  | Ipi_ack _ -> "ipi_ack"
  | Rendezvous_begin _ -> "rendezvous_begin"
  | Rendezvous_end _ -> "rendezvous_end"
  | Causal_edge _ -> "causal_edge"
  | Osr_transfer _ -> "osr_transfer"
  | Variant_materialized _ -> "variant_materialized"
  | Variant_evicted _ -> "variant_evicted"

let pp_event fmt = function
  | Commit_begin { cid; op; switches } ->
      Format.fprintf fmt "%s begin #%d {%s}" op cid
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) switches))
  | Commit_end { cid; op; bound } ->
      Format.fprintf fmt "%s end #%d -> %d" op cid bound
  | Variant_selected { fn; variant } -> Format.fprintf fmt "select %s for %s" variant fn
  | Site_retargeted { fn; site; target } ->
      Format.fprintf fmt "retarget site 0x%x of %s -> 0x%x" site fn target
  | Site_inlined { fn; site; target } ->
      Format.fprintf fmt "inline 0x%x into site 0x%x of %s" target site fn
  | Prologue_patched { fn; target } ->
      Format.fprintf fmt "prologue of %s -> jmp 0x%x" fn target
  | Fallback { fn } -> Format.fprintf fmt "fallback: %s stays generic" fn
  | Safe_defer { cid; fn } -> Format.fprintf fmt "defer %s (live, commit #%d)" fn cid
  | Safe_deny { cid; fn } -> Format.fprintf fmt "deny %s (live, commit #%d)" fn cid
  | Pending_drained { cid; pset; actions } ->
      Format.fprintf fmt "pending set #%d drained (%d actions, commit #%d)" pset
        actions cid
  | Pending_rollback { cid; pset } ->
      Format.fprintf fmt "pending set #%d rolled back (commit #%d)" pset cid
  | Safepoint_poll { pending } ->
      Format.fprintf fmt "safepoint poll (%d sets pending)" pending
  | Icache_flush { hart; addr; len } ->
      if len = 0 then Format.fprintf fmt "hart%d icache flush (all)" hart
      else Format.fprintf fmt "hart%d icache flush [0x%x, 0x%x)" hart addr (addr + len)
  | Ipi_send { rdv; from_hart; to_hart } ->
      Format.fprintf fmt "ipi hart%d -> hart%d (rdv #%d)" from_hart to_hart rdv
  | Ipi_ack { rdv; hart; wait; at } ->
      Format.fprintf fmt "hart%d acked ipi after %.1f cycles at pc 0x%x (rdv #%d)"
        hart wait at rdv
  | Rendezvous_begin { rdv; initiator; waiting } ->
      Format.fprintf fmt "rendezvous #%d by hart%d (%d hart(s) to park)" rdv
        initiator waiting
  | Rendezvous_end { rdv; initiator; acks; latency } ->
      Format.fprintf fmt "rendezvous #%d by hart%d complete (%d ack(s), %.1f cycles)"
        rdv initiator acks latency
  | Causal_edge { edge; id; src_hart; dst_hart } ->
      Format.fprintf fmt "edge %s #%d: hart%d ~> hart%d" edge id src_hart dst_hart
  | Osr_transfer { cid; hart; fn; sp_id; from_pc; to_pc; slots } ->
      Format.fprintf fmt
        "hart%d osr %s: 0x%x -> 0x%x at safept %d (%d slot(s), commit #%d)" hart fn
        from_pc to_pc sp_id slots cid
  | Variant_materialized { fn; variant; addr; size; dedup } ->
      Format.fprintf fmt "materialize %s for %s at 0x%x (%d bytes%s)" variant fn addr
        size
        (if dedup then ", dedup" else "")
  | Variant_evicted { fn; variant; freed } ->
      if freed = 0 then Format.fprintf fmt "evict %s of %s (body shared, 0 bytes)" variant fn
      else Format.fprintf fmt "evict %s of %s (%d bytes freed)" variant fn freed

let pp fmt st =
  Format.fprintf fmt "[%10.1f/%d h%d.%d] %a" st.ts st.seq st.hart st.hseq
    pp_event st.ev
