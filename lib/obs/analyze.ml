(* Offline analysis over recorded observability artifacts:

   - span extraction and duration statistics from a [Trace.stamped list]
     (the patching-latency report behind `mvtrace spans`);
   - a structural diff of two `mv-bench-rows/1` documents (the committed
     BENCH_results.json vs a fresh run) with a configurable regression
     threshold — the bench gate behind `mvtrace diff --gate` and CI.

   Everything here is pure: parse, fold, compare. *)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = { sp_op : string; sp_start : float; sp_dur : float }

(* Pair Commit_begin/Commit_end events into spans.  Ends match the most
   recent open begin with the same op (spans of the same kind nest like
   parentheses); unmatched begins/ends are dropped.  Spans are returned
   in completion order. *)
let spans (events : Trace.stamped list) : span list =
  let open_spans : (string * float) list ref = ref [] in
  let out = ref [] in
  List.iter
    (fun (st : Trace.stamped) ->
      match st.Trace.ev with
      | Trace.Commit_begin { op; _ } -> open_spans := (op, st.Trace.ts) :: !open_spans
      | Trace.Commit_end { op; _ } ->
          let rec take acc = function
            | (op', ts) :: rest when op' = op ->
                out := { sp_op = op; sp_start = ts; sp_dur = st.Trace.ts -. ts } :: !out;
                open_spans := List.rev_append acc rest
            | entry :: rest -> take (entry :: acc) rest
            | [] -> ()
          in
          take [] !open_spans
      | _ -> ())
    events;
  List.rev !out

type dist = {
  d_count : int;
  d_mean : float;
  d_min : float;
  d_max : float;
  d_p95 : float;
}

let percentile sorted p =
  match sorted with
  | [] -> 0.0
  | _ ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let dist_of = function
  | [] -> { d_count = 0; d_mean = 0.0; d_min = 0.0; d_max = 0.0; d_p95 = 0.0 }
  | values ->
      let sorted = List.sort compare values in
      let n = List.length values in
      {
        d_count = n;
        d_mean = List.fold_left ( +. ) 0.0 values /. float_of_int n;
        d_min = List.hd sorted;
        d_max = List.nth sorted (n - 1);
        d_p95 = percentile sorted 0.95;
      }

(* Duration statistics per span op, sorted by op. *)
let span_stats events : (string * dist) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let prev = Option.value (Hashtbl.find_opt tbl sp.sp_op) ~default:[] in
      Hashtbl.replace tbl sp.sp_op (sp.sp_dur :: prev))
    (spans events);
  Hashtbl.fold (fun op durs acc -> (op, dist_of durs) :: acc) tbl []
  |> List.sort compare

(* Event counts per constructor tag, sorted by tag. *)
let event_counts (events : Trace.stamped list) : (string * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (st : Trace.stamped) ->
      let k = Trace.event_name st.Trace.ev in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    events;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

let pp_span_stats fmt stats =
  Format.fprintf fmt "@[<v>%-14s %6s %10s %10s %10s %10s@," "span" "count" "mean" "min"
    "max" "p95";
  List.iter
    (fun (op, d) ->
      Format.fprintf fmt "%-14s %6d %10.1f %10.1f %10.1f %10.1f@," op d.d_count d.d_mean
        d.d_min d.d_max d.d_p95)
    stats;
  Format.fprintf fmt "(durations in simulated cycles)@]"

(* ------------------------------------------------------------------ *)
(* Bench diff                                                          *)
(* ------------------------------------------------------------------ *)

type delta = {
  dl_exp : string;  (* experiment id *)
  dl_label : string;  (* row label *)
  dl_field : string;  (* field name; measurement objects compare "f.mean" *)
  dl_base : float;
  dl_fresh : float;
  dl_pct : float;  (* (fresh - base) / |base| * 100 *)
}

(* Host wall-clock fields vary run to run on the same tree; everything
   else in a bench document is a pure function of the simulator and must
   reproduce exactly.  The default skip list is exactly the
   nondeterministic set. *)
let default_skip ~label ~field =
  label = "host-ms" || field = "commit_ms" || field = "revert_ms"

let pct ~base ~fresh =
  if base = 0.0 then if fresh = 0.0 then 0.0 else 100.0
  else (fresh -. base) /. Float.abs base *. 100.0

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let schema_of doc =
  match Json.member "schema" doc with Some (Json.String s) -> Some s | _ -> None

exception Bad_document of string

let experiments_of what doc =
  (match schema_of doc with
  | Some "mv-bench-rows/1" -> ()
  | Some other ->
      raise (Bad_document (Printf.sprintf "%s: schema %S, wanted mv-bench-rows/1" what other))
  | None -> raise (Bad_document (what ^ ": missing schema tag")));
  match Json.member "experiments" doc with
  | Some (Json.Obj exps) -> exps
  | _ -> raise (Bad_document (what ^ ": missing experiments object"))

let row_label = function
  | Json.Obj fields -> (
      match List.assoc_opt "label" fields with Some (Json.String l) -> Some l | _ -> None)
  | _ -> None

(* Compare every numeric leaf present in both documents, matching rows by
   label within each experiment.  Measurement objects (those with a
   "mean" member) contribute only their mean — the trend-level signal;
   the spread fields restate the same samples.  [skip] filters fields
   known to be nondeterministic (host wall-clock). *)
let bench_diff ?(skip = default_skip) ~base ~fresh () : (delta list, string) result =
  match
    let base_exps = experiments_of "baseline" base in
    let fresh_exps = experiments_of "fresh" fresh in
    let out = ref [] in
    let emit dl_exp dl_label dl_field b f =
      out := { dl_exp; dl_label; dl_field; dl_base = b; dl_fresh = f; dl_pct = pct ~base:b ~fresh:f } :: !out
    in
    List.iter
      (fun (exp, base_rows) ->
        match (base_rows, List.assoc_opt exp fresh_exps) with
        | Json.List base_rows, Some (Json.List fresh_rows) ->
            List.iter
              (fun base_row ->
                match row_label base_row with
                | None -> ()
                | Some label ->
                    if not (skip ~label ~field:"") then begin
                      let fresh_row =
                        List.find_opt (fun r -> row_label r = Some label) fresh_rows
                      in
                      match (base_row, fresh_row) with
                      | Json.Obj base_fields, Some (Json.Obj fresh_fields) ->
                          List.iter
                            (fun (field, bv) ->
                              if field <> "label" && not (skip ~label ~field) then
                                match (bv, List.assoc_opt field fresh_fields) with
                                | Json.Obj _, Some (Json.Obj _ as fv) -> (
                                    (* a measurement object: compare means *)
                                    match
                                      ( Option.bind (Json.member "mean" bv) number,
                                        Option.bind (Json.member "mean" fv) number )
                                    with
                                    | Some b, Some f -> emit exp label (field ^ ".mean") b f
                                    | _ -> ())
                                | bv, Some fv -> (
                                    match (number bv, number fv) with
                                    | Some b, Some f -> emit exp label field b f
                                    | _ -> ())
                                | _, None -> ())
                            base_fields
                      | _ -> ()
                    end)
              base_rows
        | _ -> ())
      base_exps;
    List.rev !out
  with
  | deltas -> Ok deltas
  | exception Bad_document msg -> Error msg

(* Deltas whose magnitude exceeds [threshold] percent, worst first.  The
   simulator is deterministic, so on an unchanged tree every delta is
   zero; any drift — faster or slower — means the committed baseline no
   longer describes the tree and the gate should fail. *)
let regressions ~threshold deltas =
  List.filter (fun d -> Float.abs d.dl_pct > threshold) deltas
  |> List.sort (fun a b -> compare (Float.abs b.dl_pct) (Float.abs a.dl_pct))

let pp_delta fmt d =
  Format.fprintf fmt "%-24s %-28s %-24s %12.4f %12.4f %+9.2f%%" d.dl_exp d.dl_label
    d.dl_field d.dl_base d.dl_fresh d.dl_pct

let pp_deltas ?(only_changed = true) fmt deltas =
  let shown =
    if only_changed then List.filter (fun d -> Float.abs d.dl_pct > 1e-6) deltas
    else deltas
  in
  Format.fprintf fmt "@[<v>%-24s %-28s %-24s %12s %12s %10s@," "experiment" "label"
    "field" "baseline" "fresh" "delta";
  List.iter (fun d -> Format.fprintf fmt "%a@," pp_delta d) shown;
  Format.fprintf fmt "(%d comparisons, %d changed)@]" (List.length deltas)
    (List.length shown)

let deltas_json deltas : Json.t =
  Json.List
    (List.map
       (fun d ->
         Json.Obj
           [
             ("experiment", Json.String d.dl_exp);
             ("label", Json.String d.dl_label);
             ("field", Json.String d.dl_field);
             ("baseline", Json.Float d.dl_base);
             ("fresh", Json.Float d.dl_fresh);
             ("pct", Json.Float d.dl_pct);
           ])
       deltas)
