(* Causal analysis over a stamped event stream.

   The stream is already causally annotated — every stamped event carries
   its hart and per-hart sequence, the IPI/rendezvous lifecycle threads a
   [rdv] correlation id, the commit lifecycle a [cid], and Causal_edge
   events spell out the cross-hart happens-before links.  This module
   reconstructs the per-hart timeline DAG from those annotations and
   answers the two attribution questions the patch-storm roadmap item
   needs: what was the critical path of each rendezvous (which hart's ack
   released it, and how long after the post), and which harts are the
   habitual stragglers. *)

(* ------------------------------------------------------------------ *)
(* Per-hart timelines (the DAG's lanes)                                 *)
(* ------------------------------------------------------------------ *)

(* Events per hart, each lane oldest-first, lanes sorted by hart id.
   Within a lane, [hseq] is dense and monotonic: the lane IS the hart's
   program-order edge chain. *)
let timelines (events : Trace.stamped list) : (int * Trace.stamped list) list =
  let tbl : (int, Trace.stamped list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun st ->
      match Hashtbl.find_opt tbl st.Trace.hart with
      | Some l -> l := st :: !l
      | None -> Hashtbl.add tbl st.Trace.hart (ref [ st ]))
    events;
  Hashtbl.fold (fun hart l acc -> (hart, List.rev !l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The cross-hart edges of the DAG, oldest-first (the per-hart lanes
   supply the program-order edges; together they are the full DAG). *)
type edge = {
  e_kind : string;  (** ["ipi"], ["rendezvous"] or ["drain"] *)
  e_id : int;  (** the correlation id: [rdv] or [cid] *)
  e_src : int;
  e_dst : int;
  e_ts : float;  (** when the destination end materialized *)
}

let edges (events : Trace.stamped list) : edge list =
  List.filter_map
    (fun st ->
      match st.Trace.ev with
      | Trace.Causal_edge { edge; id; src_hart; dst_hart } ->
          Some
            { e_kind = edge; e_id = id; e_src = src_hart; e_dst = dst_hart;
              e_ts = st.Trace.ts }
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* Rendezvous reconstruction                                            *)
(* ------------------------------------------------------------------ *)

(** One hart's participation in a rendezvous. *)
type ack = {
  a_hart : int;
  a_ts : float;  (** clock at the ack *)
  a_wait : float;  (** post-to-ack latency *)
  a_at : int;  (** pc the hart was executing when it parked *)
}

(** A reconstructed stop_machine rendezvous, grouped by its [rdv] id. *)
type rendezvous = {
  r_id : int;
  r_initiator : int;
  r_begin_ts : float;  (** clock at [Rendezvous_begin] *)
  r_sends : (int * float) list;  (** (target hart, send ts), send order *)
  r_acks : ack list;  (** ack order *)
  r_end_ts : float option;  (** [None]: never completed in this window *)
  r_latency : float option;  (** [Rendezvous_end.latency] *)
}

let rendezvous (events : Trace.stamped list) : rendezvous list =
  let tbl : (int, rendezvous) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let find id ~initiator ~ts =
    match Hashtbl.find_opt tbl id with
    | Some r -> r
    | None ->
        let r =
          { r_id = id; r_initiator = initiator; r_begin_ts = ts; r_sends = [];
            r_acks = []; r_end_ts = None; r_latency = None }
        in
        Hashtbl.add tbl id r;
        order := id :: !order;
        r
  in
  List.iter
    (fun st ->
      let ts = st.Trace.ts in
      match st.Trace.ev with
      | Trace.Rendezvous_begin { rdv; initiator; _ } ->
          let r = find rdv ~initiator ~ts in
          Hashtbl.replace tbl rdv { r with r_initiator = initiator; r_begin_ts = ts }
      | Trace.Ipi_send { rdv; from_hart; to_hart } ->
          let r = find rdv ~initiator:from_hart ~ts in
          Hashtbl.replace tbl rdv { r with r_sends = r.r_sends @ [ (to_hart, ts) ] }
      | Trace.Ipi_ack { rdv; hart; wait; at } ->
          let r = find rdv ~initiator:(-1) ~ts in
          Hashtbl.replace tbl rdv
            { r with
              r_acks = r.r_acks @ [ { a_hart = hart; a_ts = ts; a_wait = wait;
                                      a_at = at } ] }
      | Trace.Rendezvous_end { rdv; initiator; latency; _ } ->
          let r = find rdv ~initiator ~ts in
          Hashtbl.replace tbl rdv
            { r with r_initiator = initiator; r_end_ts = Some ts;
              r_latency = Some latency }
      | _ -> ())
    events;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order

(** The straggler: the ack that took longest to arrive (the hart whose
    critical path set the rendezvous latency).  [None] when no hart owed
    an ack (uncontended rendezvous). *)
let straggler (r : rendezvous) : ack option =
  List.fold_left
    (fun acc a ->
      match acc with Some b when b.a_wait >= a.a_wait -> acc | _ -> Some a)
    None r.r_acks

(** One node of a rendezvous' critical path. *)
type path_step = { p_hart : int; p_event : string; p_ts : float }

(** The critical path of a completed rendezvous: the chain of events that
    determined its end time — [Rendezvous_begin] on the initiator, the
    [Ipi_send] to the straggler, the straggler's [Ipi_ack], and the
    [Rendezvous_end] back on the initiator.  For an uncontended rendezvous
    the path is begin -> end on the initiator alone.  Empty when the
    rendezvous never completed inside the recorded window. *)
let critical_path (r : rendezvous) : path_step list =
  match r.r_end_ts with
  | None -> []
  | Some end_ts -> (
      let fin = { p_hart = r.r_initiator; p_event = "rendezvous_end"; p_ts = end_ts } in
      let start =
        { p_hart = r.r_initiator; p_event = "rendezvous_begin"; p_ts = r.r_begin_ts }
      in
      match straggler r with
      | None -> [ start; fin ]
      | Some a ->
          let send_ts =
            match List.assoc_opt a.a_hart r.r_sends with
            | Some ts -> ts
            | None -> r.r_begin_ts
          in
          [
            start;
            { p_hart = r.r_initiator; p_event = "ipi_send"; p_ts = send_ts };
            { p_hart = a.a_hart; p_event = "ipi_ack"; p_ts = a.a_ts };
            fin;
          ])

(** Simulated-cycle length of the critical path (last minus first step);
    0 for an incomplete rendezvous.  For a completed rendezvous this
    equals [Rendezvous_end.latency]: sends are stamped at the same clock
    reading as the begin, and the patch thunk itself charges no simulated
    cycles. *)
let critical_path_length (r : rendezvous) : float =
  match critical_path r with
  | [] -> 0.0
  | steps ->
      let first = List.hd steps and last = List.nth steps (List.length steps - 1) in
      last.p_ts -. first.p_ts

(* ------------------------------------------------------------------ *)
(* Straggler ranking                                                    *)
(* ------------------------------------------------------------------ *)

(** Aggregate wait profile of one hart across every rendezvous in the
    window. *)
type hart_rank = {
  h_hart : int;
  h_acks : int;  (** rendezvous this hart had to ack *)
  h_straggled : int;  (** rendezvous where its ack arrived last *)
  h_total_wait : float;
  h_max_wait : float;
}

(** Rank harts by how much rendezvous latency they are responsible for:
    the harts that cost the most wait first (by total wait, then straggle count). *)
let rank_stragglers (rs : rendezvous list) : hart_rank list =
  let tbl : (int, hart_rank) Hashtbl.t = Hashtbl.create 8 in
  let get h =
    match Hashtbl.find_opt tbl h with
    | Some r -> r
    | None ->
        { h_hart = h; h_acks = 0; h_straggled = 0; h_total_wait = 0.0;
          h_max_wait = 0.0 }
  in
  List.iter
    (fun r ->
      let worst = straggler r in
      List.iter
        (fun a ->
          let hr = get a.a_hart in
          let straggled =
            match worst with Some w when w.a_hart = a.a_hart -> 1 | _ -> 0
          in
          Hashtbl.replace tbl a.a_hart
            { hr with
              h_acks = hr.h_acks + 1;
              h_straggled = hr.h_straggled + straggled;
              h_total_wait = hr.h_total_wait +. a.a_wait;
              h_max_wait = max hr.h_max_wait a.a_wait })
        r.r_acks)
    rs;
  Hashtbl.fold (fun _ hr acc -> hr :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.h_total_wait a.h_total_wait with
         | 0 -> (
             match compare b.h_straggled a.h_straggled with
             | 0 -> compare a.h_hart b.h_hart
             | c -> c)
         | c -> c)

(** Feed per-hart wait histograms and straggler counters into a metrics
    registry: [mv_hart_wait_cycles{hart}] observes every ack wait,
    [mv_stragglers_total{hart}] counts rendezvous the hart released
    last. *)
let to_metrics (m : Metrics.t) (rs : rendezvous list) : unit =
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          Metrics.observe m "mv_hart_wait_cycles"
            [ ("hart", string_of_int a.a_hart) ]
            a.a_wait)
        r.r_acks;
      match straggler r with
      | Some a ->
          Metrics.inc m "mv_stragglers_total" [ ("hart", string_of_int a.a_hart) ]
      | None -> ())
    rs

(* ------------------------------------------------------------------ *)
(* Commit chains                                                        *)
(* ------------------------------------------------------------------ *)

(** A commit causality chain, grouped by [cid]: the span, the work it
    deferred, and the eventual cross-hart drain. *)
type chain = {
  c_cid : int;
  c_op : string;
  c_hart : int;  (** hart the commit ran on *)
  c_begin_ts : float;
  c_end_ts : float option;
  c_defers : string list;  (** functions journaled (defer order) *)
  c_denies : string list;
  c_drained : (int * float) option;  (** (draining hart, drain ts) *)
  c_rolled_back : bool;
}

let chains (events : Trace.stamped list) : chain list =
  let tbl : (int, chain) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let find cid ~ts ~hart =
    match Hashtbl.find_opt tbl cid with
    | Some c -> c
    | None ->
        let c =
          { c_cid = cid; c_op = "?"; c_hart = hart; c_begin_ts = ts;
            c_end_ts = None; c_defers = []; c_denies = []; c_drained = None;
            c_rolled_back = false }
        in
        Hashtbl.add tbl cid c;
        order := cid :: !order;
        c
  in
  List.iter
    (fun st ->
      let ts = st.Trace.ts and hart = st.Trace.hart in
      match st.Trace.ev with
      | Trace.Commit_begin { cid; op; _ } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid
            { c with c_op = op; c_hart = hart; c_begin_ts = ts }
      | Trace.Commit_end { cid; _ } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid { c with c_end_ts = Some ts }
      | Trace.Safe_defer { cid; fn } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid { c with c_defers = c.c_defers @ [ fn ] }
      | Trace.Safe_deny { cid; fn } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid { c with c_denies = c.c_denies @ [ fn ] }
      | Trace.Pending_drained { cid; _ } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid { c with c_drained = Some (hart, ts) }
      | Trace.Pending_rollback { cid; _ } ->
          let c = find cid ~ts ~hart in
          Hashtbl.replace tbl cid { c with c_rolled_back = true }
      | _ -> ())
    events;
  List.rev_map (fun cid -> Hashtbl.find tbl cid) !order

(* ------------------------------------------------------------------ *)
(* Invariant checks (the causal-edge test surface)                      *)
(* ------------------------------------------------------------------ *)

(** Violations of the send/ack pairing invariant — every [Ipi_send] of a
    completed rendezvous must have exactly one matching [Ipi_ack] from
    its target hart, and no hart may ack without a send.  Returns
    human-readable violation descriptions (empty = invariant holds). *)
let check_send_ack_pairing (events : Trace.stamped list) : string list =
  let problems = ref [] in
  List.iter
    (fun r ->
      if r.r_end_ts <> None then begin
        List.iter
          (fun (target, _) ->
            let acks =
              List.length (List.filter (fun a -> a.a_hart = target) r.r_acks)
            in
            if acks <> 1 then
              problems :=
                Printf.sprintf "rdv #%d: send to hart%d has %d ack(s)" r.r_id
                  target acks
                :: !problems)
          r.r_sends;
        List.iter
          (fun a ->
            if not (List.mem_assoc a.a_hart r.r_sends) then
              problems :=
                Printf.sprintf "rdv #%d: hart%d acked without a send" r.r_id
                  a.a_hart
                :: !problems)
          r.r_acks
      end)
    (rendezvous events);
  List.rev !problems
