(* Chrome trace_event and metrics-envelope exporters.

   Chrome's JSON array format (the subset we emit):
     {"name": .., "ph": "B"|"E"|"i", "ts": microseconds, "pid": .., "tid": ..,
      "args": {..}}
   Simulated cycles are passed through as the microsecond timestamps: the
   timeline then reads in guest cycles, which is the unit every other
   number in this repository is in. *)

let args_of_event (ev : Trace.event) : (string * Json.t) list =
  match ev with
  | Trace.Commit_begin { cid; op; switches } ->
      [
        ("op", Json.String op);
        ("switches", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) switches));
        ("cid", Json.Int cid);
      ]
  | Trace.Commit_end { cid; op; bound } ->
      [ ("op", Json.String op); ("bound", Json.Int bound); ("cid", Json.Int cid) ]
  | Trace.Variant_selected { fn; variant } ->
      [ ("fn", Json.String fn); ("variant", Json.String variant) ]
  | Trace.Site_retargeted { fn; site; target } | Trace.Site_inlined { fn; site; target }
    ->
      [ ("fn", Json.String fn); ("site", Json.Int site); ("target", Json.Int target) ]
  | Trace.Prologue_patched { fn; target } ->
      [ ("fn", Json.String fn); ("target", Json.Int target) ]
  | Trace.Fallback { fn } -> [ ("fn", Json.String fn) ]
  | Trace.Safe_defer { cid; fn } | Trace.Safe_deny { cid; fn } ->
      [ ("fn", Json.String fn); ("cid", Json.Int cid) ]
  | Trace.Pending_drained { cid; pset; actions } ->
      [ ("pset", Json.Int pset); ("actions", Json.Int actions); ("cid", Json.Int cid) ]
  | Trace.Pending_rollback { cid; pset } ->
      [ ("pset", Json.Int pset); ("cid", Json.Int cid) ]
  | Trace.Safepoint_poll { pending } -> [ ("pending", Json.Int pending) ]
  | Trace.Icache_flush { hart; addr; len } ->
      [ ("hart", Json.Int hart); ("addr", Json.Int addr); ("len", Json.Int len) ]
  | Trace.Ipi_send { rdv; from_hart; to_hart } ->
      [
        ("from_hart", Json.Int from_hart);
        ("to_hart", Json.Int to_hart);
        ("rdv", Json.Int rdv);
      ]
  | Trace.Ipi_ack { rdv; hart; wait; at } ->
      [
        ("hart", Json.Int hart);
        ("wait", Json.Float wait);
        ("at", Json.Int at);
        ("rdv", Json.Int rdv);
      ]
  | Trace.Rendezvous_begin { rdv; initiator; waiting } ->
      [
        ("initiator", Json.Int initiator);
        ("waiting", Json.Int waiting);
        ("rdv", Json.Int rdv);
      ]
  | Trace.Rendezvous_end { rdv; initiator; acks; latency } ->
      [
        ("initiator", Json.Int initiator);
        ("acks", Json.Int acks);
        ("latency", Json.Float latency);
        ("rdv", Json.Int rdv);
      ]
  | Trace.Causal_edge { edge; id; src_hart; dst_hart } ->
      [
        ("edge", Json.String edge);
        ("id", Json.Int id);
        ("src_hart", Json.Int src_hart);
        ("dst_hart", Json.Int dst_hart);
      ]
  | Trace.Osr_transfer { cid; hart; fn; sp_id; from_pc; to_pc; slots } ->
      [
        ("hart", Json.Int hart);
        ("fn", Json.String fn);
        ("sp_id", Json.Int sp_id);
        ("from_pc", Json.Int from_pc);
        ("to_pc", Json.Int to_pc);
        ("slots", Json.Int slots);
        ("cid", Json.Int cid);
      ]
  | Trace.Variant_materialized { fn; variant; addr; size; dedup } ->
      [
        ("fn", Json.String fn);
        ("variant", Json.String variant);
        ("addr", Json.Int addr);
        ("size", Json.Int size);
        ("dedup", Json.Bool dedup);
      ]
  | Trace.Variant_evicted { fn; variant; freed } ->
      [
        ("fn", Json.String fn);
        ("variant", Json.String variant);
        ("freed", Json.Int freed);
      ]

let chrome_event ~pid (st : Trace.stamped) : Json.t =
  let phase, name =
    match st.Trace.ev with
    | Trace.Commit_begin { op; _ } -> ("B", op)
    | Trace.Commit_end { op; _ } -> ("E", op)
    | Trace.Rendezvous_begin _ -> ("B", "rendezvous")
    | Trace.Rendezvous_end _ -> ("E", "rendezvous")
    | ev -> ("i", Trace.event_name ev)
  in
  let base =
    [
      ("name", Json.String name);
      ("ph", Json.String phase);
      ("ts", Json.Float st.Trace.ts);
      ("pid", Json.Int pid);
      (* one Perfetto lane per hart; hart 0 stays on tid 1, so single-hart
         traces are unchanged *)
      ("tid", Json.Int (st.Trace.hart + 1));
      ("args", Json.Obj (("seq", Json.Int st.Trace.seq) :: args_of_event st.Trace.ev));
    ]
  in
  (* instants need a scope; "t" = thread-scoped *)
  Json.Obj (if phase = "i" then base @ [ ("s", Json.String "t") ] else base)

(* Name each hart's lane so Perfetto labels them "hart 0", "hart 1", …
   instead of bare tids. *)
let thread_name_event ~pid ~hart : Json.t =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int pid);
      ("tid", Json.Int (hart + 1));
      ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "hart %d" hart)) ]);
    ]

let chrome_trace ?(pid = 1) stamped =
  let harts =
    List.sort_uniq compare (List.map (fun st -> st.Trace.hart) stamped)
  in
  Json.List
    (List.map (fun hart -> thread_name_event ~pid ~hart) harts
    @ List.map (chrome_event ~pid) stamped)
let chrome_trace_string ?pid stamped = Json.to_string_pretty (chrome_trace ?pid stamped)

let profile_json rows =
  Json.List
    (List.map
       (fun (r : Profile.row) ->
         Json.Obj
           [
             ("name", Json.String r.Profile.r_name);
             ("samples", Json.Int r.Profile.r_samples);
             ("cycles", Json.Float r.Profile.r_cycles);
             ("share", Json.Float r.Profile.r_share);
             ("variant", Json.Bool r.Profile.r_variant);
           ])
       rows)

let stack_profile_json rows =
  Json.List
    (List.map
       (fun (r : Stackprof.row) ->
         Json.Obj
           [
             ("stack", Json.List (List.map (fun f -> Json.String f) r.Stackprof.s_stack));
             ("samples", Json.Int r.Stackprof.s_samples);
             ("cycles", Json.Float r.Stackprof.s_cycles);
             ("share", Json.Float r.Stackprof.s_share);
             ("variant", Json.Bool r.Stackprof.s_variant);
           ])
       rows)

let metrics ?(extra = []) ~runtime ~perf ~program () =
  Json.Obj
    ([
       ("schema", Json.String "mv-metrics/1");
       ("runtime", runtime);
       ("perf", perf);
       ("program", program);
     ]
    @ extra)
