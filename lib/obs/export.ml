(* Chrome trace_event and metrics-envelope exporters.

   Chrome's JSON array format (the subset we emit):
     {"name": .., "ph": "B"|"E"|"i", "ts": microseconds, "pid": .., "tid": ..,
      "args": {..}}
   Simulated cycles are passed through as the microsecond timestamps: the
   timeline then reads in guest cycles, which is the unit every other
   number in this repository is in. *)

let args_of_event (ev : Trace.event) : (string * Json.t) list =
  match ev with
  | Trace.Commit_begin { switches; _ } ->
      [ ("switches", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) switches)) ]
  | Trace.Commit_end { bound; _ } -> [ ("bound", Json.Int bound) ]
  | Trace.Variant_selected { fn; variant } ->
      [ ("fn", Json.String fn); ("variant", Json.String variant) ]
  | Trace.Site_retargeted { fn; site; target } | Trace.Site_inlined { fn; site; target }
    ->
      [ ("fn", Json.String fn); ("site", Json.Int site); ("target", Json.Int target) ]
  | Trace.Prologue_patched { fn; target } ->
      [ ("fn", Json.String fn); ("target", Json.Int target) ]
  | Trace.Fallback { fn } | Trace.Safe_defer { fn } | Trace.Safe_deny { fn } ->
      [ ("fn", Json.String fn) ]
  | Trace.Pending_drained { pset; actions } ->
      [ ("pset", Json.Int pset); ("actions", Json.Int actions) ]
  | Trace.Pending_rollback { pset } -> [ ("pset", Json.Int pset) ]
  | Trace.Safepoint_poll { pending } -> [ ("pending", Json.Int pending) ]
  | Trace.Icache_flush { hart; addr; len } ->
      [ ("hart", Json.Int hart); ("addr", Json.Int addr); ("len", Json.Int len) ]
  | Trace.Ipi_send { from_hart; to_hart } ->
      [ ("from_hart", Json.Int from_hart); ("to_hart", Json.Int to_hart) ]
  | Trace.Ipi_ack { hart; wait } ->
      [ ("hart", Json.Int hart); ("wait", Json.Float wait) ]
  | Trace.Rendezvous_begin { initiator; waiting } ->
      [ ("initiator", Json.Int initiator); ("waiting", Json.Int waiting) ]
  | Trace.Rendezvous_end { initiator; acks; latency } ->
      [
        ("initiator", Json.Int initiator);
        ("acks", Json.Int acks);
        ("latency", Json.Float latency);
      ]

let chrome_event ~pid (st : Trace.stamped) : Json.t =
  let phase, name =
    match st.Trace.ev with
    | Trace.Commit_begin { op; _ } -> ("B", op)
    | Trace.Commit_end { op; _ } -> ("E", op)
    | Trace.Rendezvous_begin _ -> ("B", "rendezvous")
    | Trace.Rendezvous_end _ -> ("E", "rendezvous")
    | ev -> ("i", Trace.event_name ev)
  in
  let base =
    [
      ("name", Json.String name);
      ("ph", Json.String phase);
      ("ts", Json.Float st.Trace.ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int 1);
      ("args", Json.Obj (("seq", Json.Int st.Trace.seq) :: args_of_event st.Trace.ev));
    ]
  in
  (* instants need a scope; "t" = thread-scoped *)
  Json.Obj (if phase = "i" then base @ [ ("s", Json.String "t") ] else base)

let chrome_trace ?(pid = 1) stamped = Json.List (List.map (chrome_event ~pid) stamped)
let chrome_trace_string ?pid stamped = Json.to_string_pretty (chrome_trace ?pid stamped)

let profile_json rows =
  Json.List
    (List.map
       (fun (r : Profile.row) ->
         Json.Obj
           [
             ("name", Json.String r.Profile.r_name);
             ("samples", Json.Int r.Profile.r_samples);
             ("cycles", Json.Float r.Profile.r_cycles);
             ("share", Json.Float r.Profile.r_share);
             ("variant", Json.Bool r.Profile.r_variant);
           ])
       rows)

let stack_profile_json rows =
  Json.List
    (List.map
       (fun (r : Stackprof.row) ->
         Json.Obj
           [
             ("stack", Json.List (List.map (fun f -> Json.String f) r.Stackprof.s_stack));
             ("samples", Json.Int r.Stackprof.s_samples);
             ("cycles", Json.Float r.Stackprof.s_cycles);
             ("share", Json.Float r.Stackprof.s_share);
             ("variant", Json.Bool r.Stackprof.s_variant);
           ])
       rows)

let metrics ?(extra = []) ~runtime ~perf ~program () =
  Json.Obj
    ([
       ("schema", Json.String "mv-metrics/1");
       ("runtime", runtime);
       ("perf", perf);
       ("program", program);
     ]
    @ extra)
