(** Structured trace events for the multiverse runtime and the machine
    simulator.

    The runtime and the machine each accept an optional sink (an
    [event -> unit] function).  With no sink installed the hook sites
    reduce to one [option] match and the simulated cycle counts are
    bit-for-bit identical to an untraced run — tracing is strictly
    pay-for-use, like the safepoint hook.  The usual sink is {!sink} over
    a {!ring}, which stamps each event with a clock reading (simulated
    cycles), a global sequence number, the hart it happened on, and a
    per-hart sequence number, and stores it in a fixed-capacity ring
    buffer: tracing a long run costs bounded memory, and overflow drops
    the {e oldest} events, keeping the most recent window.

    Causal correlation ids thread through the distributed protocols:
    [rdv] ties the IPI/rendezvous events of one stop_machine together and
    [cid] ties a commit span to the deferred work it journals, possibly
    drained cycles later on a different hart.  {!Causal_edge} events make
    the cross-hart happens-before links explicit; [Causal] reconstructs
    the DAG from them. *)

(** Everything the runtime and machine report.  Addresses are absolute
    image addresses; names are symbol names. *)
type event =
  | Commit_begin of { cid : int; op : string; switches : (string * int) list }
      (** A whole-image operation starts.  [cid] is the commit causality
          id — every downstream event of this operation (the matching
          end, deferrals, the eventual drain) carries it.  [op] is one of
          ["commit"], ["revert"], ["commit_safe"], ["revert_safe"];
          [switches] records every configuration switch's value at
          decision time. *)
  | Commit_end of { cid : int; op : string; bound : int }
      (** The matching end of a {!Commit_begin} span; [bound] is the
          operation's return value (entities bound or reverted). *)
  | Variant_selected of { fn : string; variant : string }
      (** A variant was chosen and is about to be installed for [fn]. *)
  | Site_retargeted of { fn : string; site : int; target : int }
      (** The call site at [site] now calls [target] directly. *)
  | Site_inlined of { fn : string; site : int; target : int }
      (** The body of [target] was inlined over the call site at [site]. *)
  | Prologue_patched of { fn : string; target : int }
      (** The generic prologue of [fn] was overwritten with a jump to
          [target] (the completeness path). *)
  | Fallback of { fn : string }
      (** No variant matched the switch values; [fn] stays generic. *)
  | Safe_defer of { cid : int; fn : string }
      (** A safe commit/revert journaled [fn]'s patch (live activation).
          [cid] names the commit that deferred it. *)
  | Safe_deny of { cid : int; fn : string }
      (** A safe commit/revert refused [fn]'s patch under [Deny]. *)
  | Pending_drained of { cid : int; pset : int; actions : int }
      (** Pending set [pset] applied in full ([actions] actions) at a
          quiescent safepoint.  [cid] is the id of the commit that
          journaled the set — the other end of the
          [Commit_begin -> … -> Pending_drained] causal chain. *)
  | Pending_rollback of { cid : int; pset : int }
      (** Pending set [pset] failed mid-apply and was rolled back. *)
  | Safepoint_poll of { pending : int }
      (** A safepoint inspected a non-empty journal of [pending] sets.
          Polls with an empty journal are not reported — they are the
          fast path and would flood the ring. *)
  | Icache_flush of { hart : int; addr : int; len : int }
      (** Hart [hart] dropped decoded instructions over the range
          ([len = 0] means a whole-cache flush).  Single-hart machines
          report [hart = 0]. *)
  | Ipi_send of { rdv : int; from_hart : int; to_hart : int }
      (** The rendezvous initiator posted a stop request to [to_hart].
          [rdv] names the rendezvous; the matching {!Ipi_ack} carries the
          same id. *)
  | Ipi_ack of { rdv : int; hart : int; wait : float; at : int }
      (** [hart] observed its pending IPI and parked; [wait] is the
          simulated-cycle latency between post and ack (interrupts-off
          sections delay the ack) and [at] the pc the hart was executing
          when it finally parked — what the blame report shows for a
          straggler. *)
  | Rendezvous_begin of { rdv : int; initiator : int; waiting : int }
      (** A stop_machine-style rendezvous started; [waiting] harts must
          ack before the patch thunk may run. *)
  | Rendezvous_end of { rdv : int; initiator : int; acks : int; latency : float }
      (** The matching end of a {!Rendezvous_begin} span: all [acks]
          harts parked, the thunk ran, everyone was released.  [latency]
          is the total simulated-cycle cost of gathering the acks. *)
  | Causal_edge of { edge : string; id : int; src_hart : int; dst_hart : int }
      (** An explicit cross-hart happens-before link.  [edge] is the link
          kind: ["ipi"] (an {!Ipi_send} on [src_hart] caused the
          {!Ipi_ack} on [dst_hart]; [id] is the [rdv]), ["rendezvous"]
          (the {e last} ack — the straggler, on [src_hart] — released the
          {!Rendezvous_end} on [dst_hart]), or ["drain"] (the commit
          staged on [src_hart] was drained at a safepoint on [dst_hart];
          [id] is the [cid]). *)
  | Osr_transfer of {
      cid : int;
      hart : int;
      fn : string;
      sp_id : int;
      from_pc : int;
      to_pc : int;
      slots : int;
    }
      (** A live activation of [fn] was transferred between bodies by
          on-stack replacement: hart [hart], parked at [from_pc] (the
          safepoint with stable id [sp_id]), had [slots] live values
          rewritten into the target body's frame layout and resumed at
          [to_pc].  [cid] names the commit whose deferred patch the
          transfer unblocked — the same id the eventual
          {!Pending_drained} carries. *)
  | Variant_materialized of {
      fn : string;
      variant : string;
      addr : int;
      size : int;
      dedup : bool;
    }
      (** The lazy variant cache materialized [variant] for [fn] at
          [addr] on the first commit of an unseen switch valuation.
          [size] is the encoded body size; with [dedup] set the
          post-optimization structural hash matched an already-resident
          body, so no new bytes were linked — the descriptor alias simply
          points at the existing block. *)
  | Variant_evicted of { fn : string; variant : string; freed : int }
      (** The variant cache evicted [variant] of [fn] under its byte
          budget.  [freed] is the number of variant-text bytes returned
          to the allocator — [0] when other descriptor aliases still
          share the body, so only the alias was dropped. *)

(** A recorded event: [ts] is the clock reading at record time (simulated
    cycles for the standard wiring), [seq] a strictly increasing per-ring
    sequence number (survives overflow, so gaps reveal drops), [hart] the
    hart the event is attributed to, and [hseq] the event's position in
    that hart's own timeline (dense per hart, also monotonic). *)
type stamped = { ts : float; seq : int; hart : int; hseq : int; ev : event }

(** An event consumer, installed into [Runtime.set_tracer] /
    [Machine.set_tracer]. *)
type sink = event -> unit

(** The hart an event intrinsically names ([Ipi_ack] happened on the
    acking hart no matter which hart's slot recorded it), or [None] for
    events attributed to whichever hart is currently executing. *)
val hart_of_event : event -> int option

(** The fixed-capacity recorder. *)
type ring

(** [ring ~clock ()] creates an empty recorder keeping the last
    [capacity] events (default 4096; at least 1).  [clock] supplies the
    timestamp for each recorded event — wire it to the machine's cycle
    counter.  [hart] supplies the currently-executing hart for events
    that do not name one themselves (default: constant 0, right for a
    single-hart machine; wire it to [Smp.current_hart] under SMP). *)
val ring :
  ?capacity:int -> ?hart:(unit -> int) -> clock:(unit -> float) -> unit -> ring

(** The sink that stamps and records into the ring. *)
val sink : ring -> sink

(** Stamp and store one event (what {!sink} does). *)
val record : ring -> event -> unit

(** Recorded events, oldest first. *)
val events : ring -> stamped list

(** Number of events recorded since creation (or {!clear}), including
    any that overflow has already discarded. *)
val recorded : ring -> int

(** Events discarded by overflow. *)
val dropped : ring -> int

(** Forget all events and reset the drop counter (sequence numbers —
    global and per-hart — keep increasing, so merged logs stay
    ordered). *)
val clear : ring -> unit

(** Stable machine-readable tag of an event's constructor, e.g.
    ["site_retargeted"] — the [name] field of the Chrome export. *)
val event_name : event -> string

(** One-line human rendering of an event. *)
val pp_event : Format.formatter -> event -> unit

(** [pp] renders a stamped event as ["[ts/seq hN.hseq] event"]. *)
val pp : Format.formatter -> stamped -> unit
