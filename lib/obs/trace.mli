(** Structured trace events for the multiverse runtime and the machine
    simulator.

    The runtime and the machine each accept an optional sink (an
    [event -> unit] function).  With no sink installed the hook sites
    reduce to one [option] match and the simulated cycle counts are
    bit-for-bit identical to an untraced run — tracing is strictly
    pay-for-use, like the safepoint hook.  The usual sink is {!sink} over
    a {!ring}, which stamps each event with a clock reading (simulated
    cycles) and a global sequence number and stores it in a fixed-capacity
    ring buffer: tracing a long run costs bounded memory, and overflow
    drops the {e oldest} events, keeping the most recent window. *)

(** Everything the runtime and machine report.  Addresses are absolute
    image addresses; names are symbol names. *)
type event =
  | Commit_begin of { op : string; switches : (string * int) list }
      (** A whole-image operation starts.  [op] is one of ["commit"],
          ["revert"], ["commit_safe"], ["revert_safe"]; [switches] records
          every configuration switch's value at decision time. *)
  | Commit_end of { op : string; bound : int }
      (** The matching end of a {!Commit_begin} span; [bound] is the
          operation's return value (entities bound or reverted). *)
  | Variant_selected of { fn : string; variant : string }
      (** A variant was chosen and is about to be installed for [fn]. *)
  | Site_retargeted of { fn : string; site : int; target : int }
      (** The call site at [site] now calls [target] directly. *)
  | Site_inlined of { fn : string; site : int; target : int }
      (** The body of [target] was inlined over the call site at [site]. *)
  | Prologue_patched of { fn : string; target : int }
      (** The generic prologue of [fn] was overwritten with a jump to
          [target] (the completeness path). *)
  | Fallback of { fn : string }
      (** No variant matched the switch values; [fn] stays generic. *)
  | Safe_defer of { fn : string }
      (** A safe commit/revert journaled [fn]'s patch (live activation). *)
  | Safe_deny of { fn : string }
      (** A safe commit/revert refused [fn]'s patch under [Deny]. *)
  | Pending_drained of { pset : int; actions : int }
      (** Pending set [pset] applied in full ([actions] actions) at a
          quiescent safepoint. *)
  | Pending_rollback of { pset : int }
      (** Pending set [pset] failed mid-apply and was rolled back. *)
  | Safepoint_poll of { pending : int }
      (** A safepoint inspected a non-empty journal of [pending] sets.
          Polls with an empty journal are not reported — they are the
          fast path and would flood the ring. *)
  | Icache_flush of { hart : int; addr : int; len : int }
      (** Hart [hart] dropped decoded instructions over the range
          ([len = 0] means a whole-cache flush).  Single-hart machines
          report [hart = 0]. *)
  | Ipi_send of { from_hart : int; to_hart : int }
      (** The rendezvous initiator posted a stop request to [to_hart]. *)
  | Ipi_ack of { hart : int; wait : float }
      (** [hart] observed its pending IPI and parked; [wait] is the
          simulated-cycle latency between post and ack (interrupts-off
          sections delay the ack). *)
  | Rendezvous_begin of { initiator : int; waiting : int }
      (** A stop_machine-style rendezvous started; [waiting] harts must
          ack before the patch thunk may run. *)
  | Rendezvous_end of { initiator : int; acks : int; latency : float }
      (** The matching end of a {!Rendezvous_begin} span: all [acks]
          harts parked, the thunk ran, everyone was released.  [latency]
          is the total simulated-cycle cost of gathering the acks. *)

(** A recorded event: [ts] is the clock reading at record time (simulated
    cycles for the standard wiring) and [seq] a strictly increasing
    per-ring sequence number (survives overflow, so gaps reveal drops). *)
type stamped = { ts : float; seq : int; ev : event }

(** An event consumer, installed into [Runtime.set_tracer] /
    [Machine.set_tracer]. *)
type sink = event -> unit

(** The fixed-capacity recorder. *)
type ring

(** [ring ~clock ()] creates an empty recorder keeping the last
    [capacity] events (default 4096; at least 1).  [clock] supplies the
    timestamp for each recorded event — wire it to the machine's cycle
    counter. *)
val ring : ?capacity:int -> clock:(unit -> float) -> unit -> ring

(** The sink that stamps and records into the ring. *)
val sink : ring -> sink

(** Stamp and store one event (what {!sink} does). *)
val record : ring -> event -> unit

(** Recorded events, oldest first. *)
val events : ring -> stamped list

(** Number of events recorded since creation (or {!clear}), including
    any that overflow has already discarded. *)
val recorded : ring -> int

(** Events discarded by overflow. *)
val dropped : ring -> int

(** Forget all events and reset the drop counter (sequence numbers keep
    increasing, so merged logs stay ordered). *)
val clear : ring -> unit

(** Stable machine-readable tag of an event's constructor, e.g.
    ["site_retargeted"] — the [name] field of the Chrome export. *)
val event_name : event -> string

(** One-line human rendering of an event. *)
val pp_event : Format.formatter -> event -> unit

(** [pp] renders a stamped event as ["[ts/seq] event"]. *)
val pp : Format.formatter -> stamped -> unit
