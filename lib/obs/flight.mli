(** The always-on flight recorder: a bounded binary ring, independent of
    the opt-in {!Trace.ring}.

    Events are encoded into fixed-size cells of one preallocated buffer
    (strings interned into a side table), so recording is a handful of
    byte stores with no per-event allocation — cheap enough that every
    harness session leaves one armed for its whole life.  On a VM trap,
    a fuzz-oracle divergence, or a bench-gate failure the last
    [capacity] events are decoded back into {!Trace.stamped} events and
    dumped as a [mv-flight/1] postmortem artifact together with
    caller-supplied context.

    Entirely host-side: recording, decoding and dumping charge no
    simulated cycles, so guest cycle counts are bit-for-bit identical
    with and without an armed recorder (asserted by the obs-overhead
    bench's [flight] arm).

    One lossy corner, by design: [Commit_begin]'s switch-value list does
    not fit a fixed cell and decodes as [[]] (cid, op and the count of
    switches survive); the full list is available from the opt-in tracer
    when that is armed. *)

type t

(** [create ~clock ()] builds a recorder over a monotonic clock
    (normally the simulated-cycle clock).  [capacity] (default 512)
    bounds the window: older events are overwritten, never reallocated.
    [hart] supplies the current hart for events that do not carry one
    intrinsically (see {!Trace.hart_of_event}); default hart 0. *)
val create :
  ?capacity:int -> ?hart:(unit -> int) -> clock:(unit -> float) -> unit -> t

(** Record one event.  O(1), allocation-free after the first occurrence
    of each distinct string. *)
val record : t -> Trace.event -> unit

(** The recorder as a {!Trace.sink}, for teeing alongside other sinks. *)
val sink : t -> Trace.sink

(** Total events ever recorded (including overwritten ones). *)
val recorded : t -> int

(** The ring's window size. *)
val capacity : t -> int

(** Events that have been overwritten ([max 0 (recorded - capacity)]). *)
val dropped : t -> int

(** Decode the surviving window, oldest first.  [seq] is the event's
    global record index; [hseq] is recomputed densely within the window
    (after overflow it restarts from 0 rather than continuing the lost
    prefix). *)
val events : t -> Trace.stamped list

(** The artifact schema identifier, ["mv-flight/1"]. *)
val schema : string

(** [dump t ~reason ()] renders the postmortem document: schema, reason,
    current clock, recorded/capacity/dropped counts, and the decoded
    window (each event with its {!Export.args_of_event} args and a
    human-readable [text] rendering).  [extra] appends caller sections —
    runtime stats, per-hart pc/stack summaries, fuzz reports. *)
val dump : t -> reason:string -> ?extra:(string * Json.t) list -> unit -> Json.t

(** {!dump} pretty-printed to a string. *)
val dump_string :
  t -> reason:string -> ?extra:(string * Json.t) list -> unit -> string

(** Decode one event from its [name] (as {!Trace.event_name}) and [args]
    (as {!Export.args_of_event}) members — the dump's inverse; [None]
    for unknown names or missing fields. *)
val event_of_json : string -> Json.t -> Trace.event option

(** Decode a parsed dump document's [events] member back into stamped
    events, oldest first (undecodable entries are skipped).  What
    [mvtrace postmortem] feeds to the causal analyzer. *)
val events_of_dump : Json.t -> Trace.stamped list

(** [write_artifact t ~reason ~name ()] writes {!dump} to
    [<dir>/<name>.flight.json] and returns the path.  [dir] defaults to
    the [MV_SMP_ARTIFACT_DIR] environment variable — the SMP test
    battery's failure-dump convention; with neither set (or on write
    failure) nothing is written and [None] is returned, so a plain
    [dune runtest] never spams the working tree. *)
val write_artifact :
  t ->
  reason:string ->
  name:string ->
  ?extra:(string * Json.t) list ->
  ?dir:string ->
  unit ->
  string option
