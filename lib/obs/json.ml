(* A minimal JSON tree with a writer and a parser.  The observability layer
   emits machine-readable artifacts (Chrome traces, metrics snapshots,
   bench rows) and the test suite parses them back; depending on a JSON
   package for that would drag a new dependency into every library that
   emits events, so this ~150-line implementation stays local. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_finite f then begin
    (* shortest representation that round-trips; never bare "1." *)
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec write ~indent ~level buf j =
  let nl lvl =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * lvl do
        Buffer.add_char buf ' '
      done
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf v)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write ~indent:false ~level:0 buf j;
  Buffer.contents buf

let to_string_pretty j =
  let buf = Buffer.create 256 in
  write ~indent:true ~level:0 buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string_pretty j)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else err (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then err "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then err "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              if !pos + 4 > n then err "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> err "bad \\u escape"
              in
              (* emit UTF-8 for the BMP code point *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> err "bad escape")
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let consume p = match peek () with Some c when p c -> advance () | _ -> () in
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    consume (fun c -> c = '-');
    digits ();
    let is_float = ref false in
    (match peek () with
    | Some '.' ->
        is_float := true;
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        consume (fun c -> c = '+' || c = '-');
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then err "expected a number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> err "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> err "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) -> Error (Printf.sprintf "%s at byte %d" msg at)
