(** A stack-aware sampling profiler: interval sampling keyed on collapsed
    call stacks.

    Where {!Profile} attributes each sample to the single symbol holding
    the pc, this profiler symbolizes the machine's whole call stack
    ([Mv_vm.Machine.call_frames] plus the pc as the leaf) and aggregates
    by the {e collapsed} stack — the `a;b;c` folded form of
    perf-record/stackcollapse.  {!folded} emits the standard folded-stack
    text that flamegraph.pl and speedscope load directly.

    Variant symbols carry their assignment suffix (e.g.
    ["spin_lock.config_smp=0"]), so specialized frames are
    distinguishable from generic frames in every stack, and
    {!variant_share} totals the cycle share spent under at least one
    variant frame.

    The sampler is a host-side observer: feeding it from
    [Mv_vm.Machine.set_sampler] never moves the simulated clock, and with
    no sampler installed the machine's behaviour is bit-identical. *)

(** One aggregated stack. *)
type row = {
  s_stack : string list;  (** frames, outermost first; the leaf is last *)
  s_samples : int;  (** samples attributed to exactly this stack *)
  s_cycles : float;  (** simulated cycles attributed to this stack *)
  s_share : float;  (** fraction of all attributed cycles, in [0, 1];
                        [0.] (never NaN) when no cycles were attributed *)
  s_variant : bool;  (** some frame of the stack is a generated variant *)
}

(** A stack-aware sampling profiler instance. *)
type t

(** [create ~resolve ~frames ~now ()] builds a stack profiler.  [resolve]
    maps a code address to its containing symbol (wire to
    [Image.symbol_at]); [frames] reads the live call stack, innermost
    first (wire to [Machine.call_frames]); [now] reads the clock being
    attributed; [is_variant] classifies symbols as generated variants;
    [interval] is the sampling period in instructions (default 97, coprime
    to common loop lengths); [root], when given, is prepended to every
    symbolized stack as a synthetic outermost frame — SMP sessions use it
    for per-hart attribution (["hart0"], ["hart1"], ...), so merged folded
    dumps keep each hart's stacks distinct. *)
val create :
  ?interval:int ->
  ?is_variant:(string -> bool) ->
  ?root:string ->
  resolve:(int -> string option) ->
  frames:(unit -> int list) ->
  now:(unit -> float) ->
  unit ->
  t

(** Feed one executed instruction's pc; cheap except on every
    [interval]-th call.  Wire to [Machine.set_sampler]. *)
val sample : t -> int -> unit

(** Samples taken so far. *)
val samples : t -> int

(** Simulated cycles attributed so far. *)
val cycles : t -> float

(** Forget all attributions and restart the clock baseline at [now ()]. *)
val reset : t -> unit

(** Aggregated stacks, hottest first.  Shares are [0.], never NaN, when
    nothing was attributed. *)
val report : t -> row list

(** Fraction of attributed cycles spent in stacks containing at least one
    variant frame, in [0, 1]. *)
val variant_share : t -> float

(** The folded-stack dump: one [frame;frame;...;frame count] line per
    distinct stack (count = samples, a positive integer), sorted, each
    line newline-terminated.  Feed to flamegraph.pl or load in
    speedscope. *)
val folded : t -> string

(** Render the hot-stack table ([limit] rows, default 10). *)
val pp : ?limit:int -> Format.formatter -> t -> unit
