(* Stack-aware interval sampler: every [interval]-th executed instruction,
   symbolize the machine's whole call stack (the frames accessor plus the
   current pc as the leaf) and attribute the cycles elapsed since the last
   sample to the collapsed stack — the folded-stack model of perf-record +
   stackcollapse, so the output feeds flamegraph.pl or speedscope
   directly.  Like [Profile], attribution is interval sampling: cheap per
   step, converging with run length. *)

type row = {
  s_stack : string list;  (* outermost first; the leaf is last *)
  s_samples : int;
  s_cycles : float;
  s_share : float;
  s_variant : bool;  (* some frame of the stack is a generated variant *)
}

type cell = {
  stack : string list;
  mutable c_samples : int;
  mutable c_cycles : float;
}

type t = {
  resolve : int -> string option;
  is_variant : string -> bool;
  frames : unit -> int list;
  now : unit -> float;
  root : string option;  (* synthetic outermost frame, e.g. "hart0" *)
  interval : int;
  mutable countdown : int;
  mutable last : float;
  mutable total_samples : int;
  mutable total_cycles : float;
  table : (string, cell) Hashtbl.t;  (* keyed by the collapsed stack *)
}

let unknown = "<unknown>"

let create ?(interval = 97) ?(is_variant = fun _ -> false) ?root ~resolve
    ~frames ~now () =
  let interval = max 1 interval in
  {
    resolve;
    is_variant;
    frames;
    now;
    root;
    interval;
    countdown = interval;
    last = now ();
    total_samples = 0;
    total_cycles = 0.0;
    table = Hashtbl.create 64;
  }

let name_of t addr = match t.resolve addr with Some n -> n | None -> unknown

(* The symbolized stack, outermost first.  The innermost frame usually
   contains the pc already; the pc is appended as an extra leaf only when
   it resolves to a different symbol (e.g. a prologue jump landed in a
   variant body: the stack then reads "...;spin_lock;spin_lock.smp=0"). *)
let symbolize t pc =
  let callers = List.rev_map (name_of t) (t.frames ()) in
  let leaf = name_of t pc in
  let stack =
    match List.rev callers with
    | innermost :: _ when innermost = leaf -> callers
    | _ -> callers @ [ leaf ]
  in
  match t.root with None -> stack | Some r -> r :: stack

let sample t pc =
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.interval;
    let ts = t.now () in
    let delta = ts -. t.last in
    t.last <- ts;
    let stack = symbolize t pc in
    let key = String.concat ";" stack in
    let cell =
      match Hashtbl.find_opt t.table key with
      | Some c -> c
      | None ->
          let c = { stack; c_samples = 0; c_cycles = 0.0 } in
          Hashtbl.add t.table key c;
          c
    in
    cell.c_samples <- cell.c_samples + 1;
    cell.c_cycles <- cell.c_cycles +. delta;
    t.total_samples <- t.total_samples + 1;
    t.total_cycles <- t.total_cycles +. delta
  end

let samples t = t.total_samples
let cycles t = t.total_cycles

let reset t =
  Hashtbl.reset t.table;
  t.countdown <- t.interval;
  t.last <- t.now ();
  t.total_samples <- 0;
  t.total_cycles <- 0.0

let report t =
  (* total_cycles can be 0 with samples recorded (a clock that never
     advanced): shares are then reported as 0, never NaN *)
  let total = if t.total_cycles > 0.0 then t.total_cycles else 1.0 in
  Hashtbl.fold
    (fun _key cell acc ->
      {
        s_stack = cell.stack;
        s_samples = cell.c_samples;
        s_cycles = cell.c_cycles;
        s_share = cell.c_cycles /. total;
        s_variant = List.exists t.is_variant cell.stack;
      }
      :: acc)
    t.table []
  |> List.sort (fun a b ->
         let c = compare b.s_cycles a.s_cycles in
         if c <> 0 then c else compare a.s_stack b.s_stack)

let variant_share t =
  let rows = report t in
  List.fold_left (fun acc r -> if r.s_variant then acc +. r.s_share else acc) 0.0 rows

(* One folded line per distinct stack, sorted for stable output.  The
   count is the sample count: flamegraph.pl and speedscope both want a
   positive integer weight per line. *)
let folded t =
  let lines =
    Hashtbl.fold
      (fun key cell acc -> (key, cell.c_samples) :: acc)
      t.table []
    |> List.sort compare
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, n) ->
      if n > 0 then begin
        Buffer.add_string buf key;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int n);
        Buffer.add_char buf '\n'
      end)
    lines;
  Buffer.contents buf

let pp ?(limit = 10) fmt t =
  let rows = report t in
  Format.fprintf fmt "@[<v>%-56s %8s %12s %7s@," "hot stacks" "samples" "cycles"
    "share";
  List.iteri
    (fun i r ->
      if i < limit then
        Format.fprintf fmt "%-56s %8d %12.1f %6.1f%%@,"
          (String.concat ";" r.s_stack
          ^ if r.s_variant then " [variant]" else "")
          r.s_samples r.s_cycles (100.0 *. r.s_share))
    rows;
  Format.fprintf fmt "(%d samples, %.1f cycles, %.1f%% in variant stacks)@]"
    t.total_samples t.total_cycles
    (100.0 *. variant_share t)
