(* Code-heat accumulator: block-hit deltas folded into named text
   regions, epoch-decayed hotness, residency intervals from the trace
   stream, and the report-only eviction advisor.  See heat.mli. *)

type kind = Generic | Variant

type region = {
  r_name : string;
  r_fn : string;
  r_kind : kind;
  r_switches : string;
  r_lo : int;
  r_hi : int;
}

(* Mutable per-region accumulator.  [covered] is a sorted list of
   disjoint half-open byte intervals, clipped to the region. *)
type rstate = {
  mutable s_region : region;
  mutable s_hits : int;
  mutable s_insns : int;
  mutable s_epoch_hits : int;
  mutable s_score : float;
  mutable s_covered : (int * int) list;
}

type residency = {
  mutable rv_installs : int;
  mutable rv_resident : float;
  mutable rv_since : float option;
}

type t = {
  decay : float;
  mutable states : rstate list; (* reverse registration order *)
  by_name : (string, rstate) Hashtbl.t;
  (* (source, block lo) -> last cumulative (hits, insns) seen, so
     re-observing the same machine folds only the delta. *)
  last : (int * int, int * int) Hashtbl.t;
  lives : (string * string, residency) Hashtbl.t;
  current : (string, string) Hashtbl.t; (* fn -> resident variant *)
  mutable n_epochs : int;
}

let create ?(decay = 0.5) () =
  {
    decay;
    states = [];
    by_name = Hashtbl.create 16;
    last = Hashtbl.create 64;
    lives = Hashtbl.create 16;
    current = Hashtbl.create 16;
    n_epochs = 0;
  }

let register t r =
  match Hashtbl.find_opt t.by_name r.r_name with
  | Some s ->
      s.s_region <- r;
      s.s_covered <- []
  | None ->
      let s =
        {
          s_region = r;
          s_hits = 0;
          s_insns = 0;
          s_epoch_hits = 0;
          s_score = 0.;
          s_covered = [];
        }
      in
      Hashtbl.replace t.by_name r.r_name s;
      t.states <- s :: t.states

let ordered t = List.rev t.states
let regions t = List.map (fun s -> s.s_region) (ordered t)

(* Insert [lo, hi) into a sorted disjoint interval list, merging. *)
let add_interval ivs (lo, hi) =
  if hi <= lo then ivs
  else
    let rec go = function
      | [] -> [ (lo, hi) ]
      | (a, b) :: rest when b < lo -> (a, b) :: go rest
      | (a, b) :: rest when hi < a -> (lo, hi) :: (a, b) :: rest
      | (a, b) :: rest ->
          (* overlap or touch: absorb and keep merging rightward *)
          let lo = min a lo and hi = max b hi in
          let rec absorb hi = function
            | (a, b) :: rest when a <= hi -> absorb (max b hi) rest
            | rest -> (hi, rest)
          in
          let hi, rest = absorb hi rest in
          (lo, hi) :: rest
    in
    go ivs

let covered_bytes ivs = List.fold_left (fun n (a, b) -> n + (b - a)) 0 ivs

let observe ?(source = 0) t blocks =
  List.iter
    (fun (lo, hi, hits, insns) ->
      let key = (source, lo) in
      let ph, pi =
        match Hashtbl.find_opt t.last key with Some p -> p | None -> (0, 0)
      in
      if hits > ph then begin
        Hashtbl.replace t.last key (hits, insns);
        let dh = hits - ph and di = max 0 (insns - pi) in
        List.iter
          (fun s ->
            let r = s.s_region in
            if lo >= r.r_lo && lo < r.r_hi then begin
              s.s_hits <- s.s_hits + dh;
              s.s_insns <- s.s_insns + di;
              s.s_epoch_hits <- s.s_epoch_hits + dh
            end;
            if lo < r.r_hi && hi > r.r_lo then
              s.s_covered <-
                add_interval s.s_covered (max lo r.r_lo, min hi r.r_hi))
          t.states
      end)
    blocks

let epoch t =
  t.n_epochs <- t.n_epochs + 1;
  List.iter
    (fun s ->
      s.s_score <- (s.s_score *. t.decay) +. float_of_int s.s_epoch_hits;
      s.s_epoch_hits <- 0)
    t.states

let epochs t = t.n_epochs
let heat_of s = s.s_score +. float_of_int s.s_epoch_hits

let hotness t r =
  match Hashtbl.find_opt t.by_name r.r_name with
  | Some s -> heat_of s
  | None -> 0.

type region_stat = {
  rs_region : region;
  rs_hits : int;
  rs_insns : int;
  rs_heat : float;
  rs_covered : int;
}

let region_stats t =
  List.map
    (fun s ->
      {
        rs_region = s.s_region;
        rs_hits = s.s_hits;
        rs_insns = s.s_insns;
        rs_heat = heat_of s;
        rs_covered = covered_bytes s.s_covered;
      })
    (ordered t)

(* --- residency ------------------------------------------------------ *)

let life t fn variant =
  let key = (fn, variant) in
  match Hashtbl.find_opt t.lives key with
  | Some rv -> rv
  | None ->
      let rv = { rv_installs = 0; rv_resident = 0.; rv_since = None } in
      Hashtbl.replace t.lives key rv;
      rv

let close_fn t fn now =
  match Hashtbl.find_opt t.current fn with
  | None -> ()
  | Some variant ->
      Hashtbl.remove t.current fn;
      let rv = life t fn variant in
      (match rv.rv_since with
      | Some since -> rv.rv_resident <- rv.rv_resident +. max 0. (now -. since)
      | None -> ());
      rv.rv_since <- None

let close_all t now =
  let fns = Hashtbl.fold (fun fn _ acc -> fn :: acc) t.current [] in
  List.iter (fun fn -> close_fn t fn now) fns

let sink t ~clock : Trace.sink =
 fun ev ->
  match ev with
  | Trace.Variant_selected { fn; variant } ->
      let now = clock () in
      close_fn t fn now;
      let rv = life t fn variant in
      rv.rv_installs <- rv.rv_installs + 1;
      rv.rv_since <- Some now;
      Hashtbl.replace t.current fn variant
  | Trace.Commit_end { op = "revert" | "revert_safe"; _ } ->
      close_all t (clock ())
  | Trace.Fallback { fn } -> close_fn t fn (clock ())
  | Trace.Variant_evicted { fn; variant; _ } ->
      (* the lazy evictor dropped this body; if it was the resident one,
         close its interval so the advisor stops ranking freed bytes *)
      (match Hashtbl.find_opt t.current fn with
      | Some v when v = variant -> close_fn t fn (clock ())
      | _ -> ())
  | _ -> ()

type stay = {
  st_fn : string;
  st_variant : string;
  st_installs : int;
  st_resident : float;
  st_active : bool;
}

let stays ?now t =
  Hashtbl.fold
    (fun (fn, variant) rv acc ->
      let active = Hashtbl.find_opt t.current fn = Some variant in
      let resident =
        match (rv.rv_since, now) with
        | Some since, Some now when active ->
            rv.rv_resident +. max 0. (now -. since)
        | _ -> rv.rv_resident
      in
      {
        st_fn = fn;
        st_variant = variant;
        st_installs = rv.rv_installs;
        st_resident = resident;
        st_active = active;
      }
      :: acc)
    t.lives []
  |> List.sort (fun a b ->
         match compare a.st_fn b.st_fn with
         | 0 -> compare a.st_variant b.st_variant
         | c -> c)

let resident t ~fn ~variant = Hashtbl.find_opt t.current fn = Some variant

(* --- eviction advisor ----------------------------------------------- *)

type verdict = Keep | Evict
type advice = { ad_region : region; ad_heat : float; ad_bytes : int; ad_verdict : verdict }

let evict_plan ?(exclude = []) t ~budget =
  let candidates =
    List.filter
      (fun s ->
        let r = s.s_region in
        r.r_kind = Variant
        && resident t ~fn:r.r_fn ~variant:r.r_name
        (* a variant a journaled-but-undrained patch set still needs must
           not be advised away: its body has to survive until the bind
           lands (callers pass [Runtime.pending_variants]) *)
        && not (List.mem r.r_name exclude))
      (ordered t)
  in
  let density s =
    let bytes = max 1 (s.s_region.r_hi - s.s_region.r_lo) in
    heat_of s /. float_of_int bytes
  in
  let ranked =
    List.sort
      (fun a b ->
        match compare (density b) (density a) with
        | 0 -> (
            match compare (heat_of b) (heat_of a) with
            | 0 -> compare a.s_region.r_name b.s_region.r_name
            | c -> c)
        | c -> c)
      candidates
  in
  let spent = ref 0 in
  List.map
    (fun s ->
      let r = s.s_region in
      let bytes = r.r_hi - r.r_lo in
      let verdict = if !spent + bytes <= budget then Keep else Evict in
      if verdict = Keep then spent := !spent + bytes;
      { ad_region = r; ad_heat = heat_of s; ad_bytes = bytes; ad_verdict = verdict })
    ranked

(* --- exports --------------------------------------------------------- *)

let schema = "mv-heat/1"

let kind_name = function Generic -> "generic" | Variant -> "variant"

let to_json ?budget ?(exclude = []) ?now t =
  let region_json st =
    let r = st.rs_region in
    Json.Obj
      [
        ("name", Json.String r.r_name);
        ("fn", Json.String r.r_fn);
        ("kind", Json.String (kind_name r.r_kind));
        ("switches", Json.String r.r_switches);
        ("lo", Json.Int r.r_lo);
        ("hi", Json.Int r.r_hi);
        ("bytes", Json.Int (r.r_hi - r.r_lo));
        ("hits", Json.Int st.rs_hits);
        ("insns", Json.Int st.rs_insns);
        ("heat", Json.Float st.rs_heat);
        ("covered_bytes", Json.Int st.rs_covered);
      ]
  in
  let stay_json st =
    Json.Obj
      [
        ("fn", Json.String st.st_fn);
        ("variant", Json.String st.st_variant);
        ("installs", Json.Int st.st_installs);
        ("resident_cycles", Json.Float st.st_resident);
        ("active", Json.Bool st.st_active);
      ]
  in
  let plan =
    match budget with
    | None -> []
    | Some budget ->
        let entry a =
          Json.Obj
            [
              ("variant", Json.String a.ad_region.r_name);
              ("fn", Json.String a.ad_region.r_fn);
              ("heat", Json.Float a.ad_heat);
              ("bytes", Json.Int a.ad_bytes);
              ( "verdict",
                Json.String
                  (match a.ad_verdict with Keep -> "keep" | Evict -> "evict")
              );
            ]
        in
        [
          ( "plan",
            Json.Obj
              [
                ("budget_bytes", Json.Int budget);
                ("entries", Json.List (List.map entry (evict_plan ~exclude t ~budget)));
              ] );
        ]
  in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("decay", Json.Float t.decay);
       ("epochs", Json.Int t.n_epochs);
       ("regions", Json.List (List.map region_json (region_stats t)));
       ("variants", Json.List (List.map stay_json (stays ?now t)));
     ]
    @ plan)

let to_metrics t m =
  List.iter
    (fun s ->
      let r = s.s_region in
      Metrics.set_gauge m "mv_region_heat"
        [ ("region", r.r_name) ]
        (heat_of s);
      if r.r_kind = Variant then
        Metrics.set_gauge m "mv_variant_resident_bytes"
          [ ("fn", r.r_fn); ("variant", r.r_name) ]
          (if resident t ~fn:r.r_fn ~variant:r.r_name then
             float_of_int (r.r_hi - r.r_lo)
           else 0.))
    (ordered t)

(* --- rendering ------------------------------------------------------- *)

let bar_width = 24

let bar heat max_heat =
  if max_heat <= 0. || heat <= 0. then ""
  else
    let n =
      max 1 (int_of_float (Float.round (heat /. max_heat *. float_of_int bar_width)))
    in
    String.make (min bar_width n) '#'

let pp ppf t =
  let stats = region_stats t in
  let max_heat = List.fold_left (fun m s -> Float.max m s.rs_heat) 0. stats in
  let name_w =
    List.fold_left (fun w s -> max w (String.length s.rs_region.r_name)) 6 stats
  in
  Format.fprintf ppf "%-*s  %-7s  %6s  %8s  %6s  %8s  %10s  %s@." name_w
    "region" "kind" "bytes" "covered" "cover%" "hits" "heat" "";
  List.iter
    (fun s ->
      let r = s.rs_region in
      let bytes = r.r_hi - r.r_lo in
      let pct =
        if bytes = 0 then 0.
        else 100. *. float_of_int s.rs_covered /. float_of_int bytes
      in
      Format.fprintf ppf "%-*s  %-7s  %6d  %8d  %5.1f%%  %8d  %10.1f  %s@."
        name_w r.r_name (kind_name r.r_kind) bytes s.rs_covered pct s.rs_hits
        s.rs_heat (bar s.rs_heat max_heat))
    stats

let pp_variants ?budget ?(exclude = []) ?now ppf t =
  let verdicts =
    match budget with
    | None -> []
    | Some budget ->
        List.map
          (fun a -> (a.ad_region.r_name, a.ad_verdict))
          (evict_plan ~exclude t ~budget)
  in
  let verdict_name variant active =
    match List.assoc_opt variant verdicts with
    | Some Keep -> "keep"
    | Some Evict -> "evict"
    | None -> if budget = None then "-" else if active then "?" else "-"
  in
  let rows = stays ?now t in
  let w get init = List.fold_left (fun w r -> max w (String.length (get r))) init rows in
  let fn_w = w (fun r -> r.st_fn) 2 and va_w = w (fun r -> r.st_variant) 7 in
  Format.fprintf ppf "%-*s  %-*s  %8s  %14s  %-6s  %10s  %s@." fn_w "fn" va_w
    "variant" "installs" "resident_cyc" "active" "heat" "verdict";
  List.iter
    (fun r ->
      let heat =
        match Hashtbl.find_opt t.by_name r.st_variant with
        | Some s -> heat_of s
        | None -> 0.
      in
      Format.fprintf ppf "%-*s  %-*s  %8d  %14.0f  %-6s  %10.1f  %s@." fn_w
        r.st_fn va_w r.st_variant r.st_installs r.st_resident
        (if r.st_active then "yes" else "no")
        heat
        (verdict_name r.st_variant r.st_active))
    rows
