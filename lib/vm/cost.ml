(* Cycle cost model, calibrated against published Skylake-class latencies.

   The constants that carry the paper's story:
   - [mispredict_penalty] ~ 16 cycles (the paper's footnote cites 16.5/19-20
     for Skylake) — this is why dynamically-evaluated configuration switches
     are expensive on real execution paths;
   - [atomic] ~ 18 cycles — why eliding the spinlock acquisition on a
     uniprocessor pays (Figure 1: 28.8 vs 6.6 cycles);
   - [cli]/[sti] a few cycles — the paravirtual operations of Section 6.1;
   - [hypercall] — the Xen guest path, much more expensive than native. *)

type t = {
  mov : float;
  mov_imm : float;
  alu : float;
  mul : float;
  div : float;
  load : float;
  store : float;
  load_global : float;
  lea : float;
  push : float;
  pop : float;
  call : float;
  call_ind : float;  (** extra decode/indirection cost of an indirect call *)
  ret : float;
  jmp : float;
  branch : float;  (** correctly predicted conditional branch *)
  mispredict_penalty : float;
  btb_miss_penalty : float;  (** indirect-branch target miss *)
  nop : float;
  cli : float;
  sti : float;
  pause : float;
  fence : float;
  atomic : float;
  hypercall : float;
  rdtsc : float;
  safepoint_poll : float;
      (** per-poll cost of the safe-commit safepoint check: a test of a
          cached flag plus a predicted-not-taken branch, mostly hidden by
          an out-of-order core.  Charged only while a safepoint hook is
          installed (see {!Machine.set_safepoint}). *)
}

(** Default model: an aggressive out-of-order core around 3 GHz. *)
let default =
  {
    mov = 0.3;
    mov_imm = 0.3;
    alu = 0.3;
    mul = 1.0;
    div = 20.0;
    load = 0.6;
    store = 0.6;
    load_global = 0.6;
    lea = 0.3;
    push = 0.3;
    pop = 0.3;
    call = 1.3;
    call_ind = 2.2;
    ret = 1.3;
    jmp = 0.4;
    branch = 0.5;
    mispredict_penalty = 16.0;
    btb_miss_penalty = 14.0;
    nop = 0.12;
    cli = 2.4;
    sti = 3.0;
    pause = 1.2;
    fence = 5.0;
    atomic = 17.5;
    hypercall = 120.0;
    rdtsc = 6.0;
    safepoint_poll = 0.25;
  }

(** Nominal clock used to convert simulated cycles into wall time when a
    benchmark reports seconds (as the musl and grep experiments do). *)
let nominal_ghz = 3.0

let cycles_to_seconds cycles = cycles /. (nominal_ghz *. 1e9)

let cycles_to_ms cycles = cycles_to_seconds cycles *. 1e3
