(** The SMP container: N harts sharing one linked image, a deterministic
    seed-parameterized scheduler, and the cross-modifying-code machinery
    the multiverse runtime needs to patch text that other harts may be
    executing.

    Each hart is a full {!Machine.t} — own registers, call stack, branch
    predictor and decode cache — over the {e shared} image memory, with a
    disjoint stack slice ({!hart_stack_bytes} per hart below the image's
    stack base; hart 0 keeps the image default, so a 1-hart container is
    bit-identical to a plain machine).

    Two protocols make patching sound here:

    - {!stop_machine}: an IPI + ack rendezvous.  The initiator posts a
      stop request to every running hart; a hart acknowledges — and parks
      — at its next scheduling slot with interrupts enabled, so
      [cli]-protected critical sections delay the ack (the measurable
      rendezvous latency).  Halted harts are quiescent and ack
      implicitly.  The patch thunk runs once every ack is in; everyone is
      released after.

    - {!text_poke}: a breakpoint-first byte patch (the Linux protocol).
      The first byte of the range becomes [Brk] (+ flush everywhere),
      then the tail bytes land (+ flush), then the real first byte
      (+ flush).  A hart that arrives mid-poke decodes the trap byte and
      spins in place — it can observe the {e old} instruction or the
      {e new} one, never a torn hybrid. *)

type policy =
  | Round_robin
  | Weighted_random of int array
      (** runnable hart [i] runs with probability proportional to
          [w.(i)]; entries beyond the array default to 1.  If every
          runnable hart has weight 0 the lowest-numbered one runs, so a
          zero weight starves a hart only while a competitor is
          runnable. *)

type t

(** Stack bytes carved out per hart below the image's stack base. *)
val hart_stack_bytes : int

(** [create ~n_harts image] builds the container; [policy] (default
    {!Round_robin}) and [seed] (default 1) fully determine scheduling —
    same seed, same interleaving, bit for bit.  [cost]/[platform]/
    [max_steps] are passed to every hart's {!Machine.create}. *)
val create :
  ?policy:policy ->
  ?seed:int ->
  ?cost:Cost.t ->
  ?platform:Machine.platform ->
  ?max_steps:int ->
  n_harts:int ->
  Mv_link.Image.t ->
  t

(** Number of harts in the container. *)
val n_harts : t -> int

(** Direct access to hart [i]'s machine (profiler feeds, per-hart perf). *)
val machine : t -> int -> Machine.t

(** The scheduler seed this container was built with. *)
val seed : t -> int

(** Total simulated work: the sum of every hart's cycle counter — the
    deterministic clock IPI and rendezvous latencies are measured on. *)
val clock : t -> float

(** Break hart [i]'s IPI channel ([Some i]): it is never posted a stop
    request and text flushes skip its icache.  The chaos hook behind the
    fuzzer's [Drop_ack] mode; [None] restores correctness. *)
val set_drop_ack : t -> int option -> unit

(** Slow hart [h]'s ack path ([Some (h, budget)]): the victim burns
    [budget] scheduling slots executing instructions before it
    acknowledges a stop request — a deterministic straggler that inflates
    its [Ipi_ack.wait] without breaking correctness (the rendezvous still
    completes).  The chaos mode behind the blame tests; [None] restores
    normal acking. *)
val set_slow_ack : t -> (int * int) option -> unit

(** The hart that last received a scheduling slot (0 before any step).
    This is the attribution source trace rings and metrics sinks use for
    host-driven events that do not name a hart themselves — wire it into
    [Trace.ring]'s [hart] argument. *)
val current_hart : t -> int

(** Install (or remove) the event sink on the container {e and} every
    hart (per-hart [Icache_flush]es carry their hart id). *)
val set_tracer : t -> Mv_obs.Trace.sink option -> unit

(** Install (or remove) the safepoint hook on {e every} hart: polls fire
    per-hart, at each hart's own [ret]/halt. *)
val set_safepoint : t -> (unit -> unit) option -> unit

(** [true] while hart [i] has not returned to the sentinel. *)
val running : t -> int -> bool

(** Running and not parked by a rendezvous. *)
val runnable : t -> int -> bool

(** Give hart [i] one scheduling slot: ack a pending stop request (if
    interrupts are enabled) or execute one instruction.  [false] when the
    hart was not runnable.  The interleaving tests drive this directly to
    enumerate schedules. *)
val step_hart : t -> int -> bool

(** One global scheduler step (policy-picked hart); [false] when no hart
    is runnable. *)
val step : t -> bool

(** Drive until no hart is runnable (all halted/returned). *)
val run : t -> unit

(** Prepare a call on hart [hart] (see {!Machine.start_call}). *)
val start_call : t -> hart:int -> string -> int list -> unit

(** Hart [hart]'s r0 — its return value once it stopped running. *)
val result : t -> hart:int -> int

(** Post stop requests for a rendezvous by [initiator]; returns the
    number of acks owed.  Manual-control API for the interleaving tests —
    normal callers use {!stop_machine}. *)
val rendezvous_post : t -> initiator:int -> int

(** Every posted stop request has been acknowledged. *)
val rendezvous_complete : t -> bool

(** Run the patch thunk at the gathered rendezvous and release every
    hart; raises [Machine.Fault] if acks are outstanding. *)
val rendezvous_finish : t -> (unit -> 'a) -> 'a

(** [stop_machine t f]: post, drive every other hart to its ack, run [f],
    release.  Re-entrant — a nested call runs [f] directly under the
    outer rendezvous' protection.  Initiated by hart 0 (the boot hart, as
    in the paper's kernel use case).  Raises [Machine.Fault] if the other
    harts cannot be driven to quiescence. *)
val stop_machine : t -> (unit -> 'a) -> 'a

(** Flush the range from {e every} hart's decode cache (the drop-ack
    victim's broken channel excepted). *)
val flush_icache : t -> addr:int -> len:int -> unit

(** Begin a breakpoint-first patch: [Brk] over the first byte, flushed
    everywhere.  Advance with {!text_poke_step}. *)
val text_poke_start : t -> addr:int -> bytes -> unit

(** Run the next poke phase; [true] once the patch is fully live. *)
val text_poke_step : t -> bool

(** The whole breakpoint-first protocol, synchronously.  The runtime's
    patch layer routes every text mutation here (see
    [Core.Patch.set_writer]). *)
val text_poke : t -> addr:int -> bytes -> unit

(** Live code addresses across every hart — the SMP quiescence source
    for [Core.Runtime.set_live_scanner]. *)
val live_code_addrs : t -> int list

(** Call frames across every hart, hart 0's first. *)
val call_frames : t -> int list

(** Host-side global access through the shared image. *)
val read_global : t -> string -> width:int -> int

val write_global : t -> string -> int -> width:int -> unit

(** {2 Rendezvous statistics} — the counters behind the bench rows. *)

(** Stop requests posted across all rendezvous so far. *)
val ipis_sent : t -> int

(** Acks received (equals {!ipis_sent} once every rendezvous finished). *)
val ipi_acks : t -> int

(** Completed [stop_machine] rendezvous. *)
val rendezvous_count : t -> int

(** Simulated cycles spent between posting and gathering, summed over
    every rendezvous — the latency E17 reports. *)
val rendezvous_cycles : t -> float
