(** The machine simulator: fetch / decode / execute over a linked image,
    with a cycle cost model, branch prediction, per-page protection
    enforcement, and a superblock decode cache that models the instruction
    cache.

    Execution is driven from {e pre-decoded superblocks}: straight-line
    basic blocks are decoded once into arrays of OCaml closures and
    dispatched through a cursor, so the hot path pays one closure call per
    instruction.  The pre-refactor fetch/decode/dispatch interpreter is
    kept as {!step_ref}; both paths are required (and tested) to produce
    bit-identical simulated cycles, perf counters, and trace events.

    The decode cache is why the multiverse runtime must flush after
    patching: until {!flush_icache} covers a patched range, the machine
    keeps executing the stale decoded instructions — observable, and
    covered by the test suite. *)

module Insn = Mv_isa.Insn
module Image = Mv_link.Image

exception Fault of string

(** Native hardware or a Xen PV guest.  In a PV guest the privileged
    [cli]/[sti] fault (the kernel must go through PV-Ops); on native
    hardware [hypercall] faults. *)
type platform = Native | Xen

(** Host-side decode-cache statistics: superblocks compiled, instructions
    decoded into them, and superblocks dropped by icache flushes.  None of
    these counters move the simulated clock; the superblock tests assert
    on them to prove re-decode happens only after an invalidation. *)
type decode_stats = {
  mutable ds_blocks : int;  (** superblocks compiled since creation *)
  mutable ds_insns : int;  (** instructions decoded into superblocks *)
  mutable ds_invalidated : int;  (** superblocks dropped by icache flushes *)
}

(** Host-side code-heat counters, indexed by superblock entry text
    offset.  They live in the machine — outside the superblocks — so an
    icache flush that drops a block never loses the hits already charged
    to its entry; rebuilding the block resumes counting in the same
    slot.  Incrementing them charges zero simulated cycles. *)
type heat_counters = {
  hh_hits : int array;  (** cumulative entries via the dispatch slow path *)
  hh_insns : int array;  (** cumulative instructions dispatched from here *)
  hh_ends : int array;  (** text offset one past the block's last byte *)
}

type t = {
  image : Image.t;
  hart_id : int;  (** event-attribution id; 0 for plain machines *)
  stack_base : int;
      (** top of this hart's stack region (the image default for hart 0) *)
  regs : int array;
  mutable pc : int;
  perf : Perf.t;
  bp : Branch_pred.t;
  cost : Cost.t;
  platform : platform;
  cache : (Insn.t * int) option array;
      (** per-instruction decode cache — the reference stepper's
          ({!step_ref}) icache model; the superblock path keeps it
          coherent but does not read it *)
  blocks : (int, superblock) Hashtbl.t;
      (** pre-decoded superblocks keyed by entry text offset (enumeration
          side; invalidation walks it) *)
  block_map : superblock option array;
      (** direct-mapped dispatch index over text offsets — the hot-path
          view of [blocks]: block transitions cost one array read *)
  mutable sb_cur : superblock option;
      (** dispatch cursor: the superblock expected to contain [pc] *)
  mutable sb_ix : int;
      (** index into [sb_cur] expected to execute next *)
  dstats : decode_stats;  (** read via {!decode_stats} *)
  mutable irq_enabled : bool;
  mutable steps_left : int;
  max_steps : int;
  mutable safepoint : (unit -> unit) option;
      (** quiescence-point hook; install via {!set_safepoint} *)
  mutable tracer : (Mv_obs.Trace.event -> unit) option;
      (** machine-side event sink; install via {!set_tracer} *)
  mutable sampler : (int -> unit) option;
      (** per-instruction pc observer; install via {!set_sampler} *)
  mutable frames : int list;
      (** live activation entries, innermost first; read via {!call_frames} *)
  mutable brk : (int -> bool) option;
      (** breakpoint handler; install via {!set_brk_handler} *)
  mutable on_trap : (string -> unit) option;
      (** trap observer; install via {!set_trap_hook} *)
  mutable heat : heat_counters option;
      (** block-entry hit counters; arm via {!enable_heat} *)
}

(** A pre-decoded straight-line run of instructions: one closure per
    instruction, each performing exactly the state transition of the
    matching {!step_ref} arm (same order of pc updates, memory traffic,
    perf counters, predictor queries, and cycle charges).  Blocks end at
    control transfers and are dropped — never patched in place — when an
    icache flush overlaps their byte range; the {!text_poke}/{!flush_icache}
    discipline the cross-modifying-code protocol already enforces is
    therefore the complete invalidation contract (ARCHITECTURE §13). *)
and superblock = {
  sb_start : int;  (** text offset of the first instruction *)
  sb_end : int;  (** text offset one past the last decoded byte *)
  sb_pcs : int array;  (** absolute pc of each instruction *)
  sb_ops : (t -> unit) array;  (** compiled instructions, in order *)
  mutable sb_live : bool;  (** cleared when an icache flush drops the block *)
}

(** The address a top-level call returns to; control reaching it ends
    {!step}'s [true] stream.  It lies outside the text section, so it can
    never be mistaken for a live code address. *)
val return_sentinel : int

(** Build a machine over a linked image.  [cost] selects the cycle model,
    [platform] whether privileged instructions or hypercalls fault, and
    [max_steps] bounds each top-level call (runaway-loop protection).
    [hart_id] (default 0) tags this context's events; [stack_base]
    (default the image's) lets an SMP container give each hart a disjoint
    stack slice.  The defaults reproduce the single-hart machine
    bit-for-bit. *)
val create :
  ?cost:Cost.t ->
  ?platform:platform ->
  ?max_steps:int ->
  ?hart_id:int ->
  ?stack_base:int ->
  Image.t ->
  t

(** Install (or remove, with [None]) the safepoint hook.  While installed,
    every [ret] and halt charges {!Cost.t.safepoint_poll} cycles and invokes
    the hook — wire it to {!Core.Runtime.safepoint} so deferred patch sets
    drain at quiescence points.  Without a hook the machine is exactly as
    fast as before. *)
val set_safepoint : t -> (unit -> unit) option -> unit

(** Install (or remove, with [None]) the machine-side event sink.  The
    machine reports [Icache_flush] events through it (a whole-cache flush
    reports [len = 0]).  With no sink the flush paths behave exactly as
    before. *)
val set_tracer : t -> (Mv_obs.Trace.event -> unit) option -> unit

(** Install (or remove, with [None]) the per-instruction pc observer —
    the sampling profiler's feed ([Mv_obs.Profile.sample]).  The observer
    is host-side only: it charges no simulated cycles, so guest cycle
    counts are bit-for-bit identical with and without it. *)
val set_sampler : t -> (int -> unit) option -> unit

(** Install (or remove, with [None]) the breakpoint handler.  When the
    machine fetches a [Brk] the handler receives the pc; returning [true]
    leaves the pc in place and charges one pause (the text_poke spin),
    anything else faults.  With no handler every [Brk] faults — plain
    machines never execute one. *)
val set_brk_handler : t -> (int -> bool) option -> unit

(** Install (or remove, with [None]) the trap observer.  The hook
    receives the fault message whenever a {!Fault} escapes {!step},
    {!step_ref} or {!finish} — exactly once per escaping fault, before it
    propagates to the caller — and is where the flight recorder dumps its
    postmortem snapshot.  Host-side only: no simulated cycles, and an
    exception raised by the hook itself is swallowed so a failing dump
    never masks the fault. *)
val set_trap_hook : t -> (string -> unit) option -> unit

(** This machine's hart id (0 unless created by the SMP container). *)
val hart_id : t -> int

(** Host-side decode-cache statistics (superblock builds, instructions
    decoded, invalidations).  Reading them never moves the simulated
    clock; asserting [ds_blocks] stays flat across repeated runs proves
    re-decode only happens after an invalidation. *)
val decode_stats : t -> decode_stats

(** Arm the code-heat counters: from now on every superblock entry
    through the dispatch slow path increments a per-entry-offset hit
    counter ({!type-heat_counters}).  Idempotent — a second call keeps the
    counts already accumulated.  Host-side only: the simulated clock
    does not move, so cycle counts are bit-identical with and without it
    (pinned by the obs-overhead bench's [heat] arm).  Counting happens at
    block granularity on the {!step}/{!finish} superblock path; the
    reference interpreter ({!step_ref}) does not feed it. *)
val enable_heat : t -> unit

(** Snapshot the heat counters as [(lo, hi, hits, insns)] per superblock
    entry with at least one hit: absolute byte range of the block,
    cumulative entry count, cumulative instructions dispatched from it.
    Non-destructive and address-ordered; [[]] when heat was never
    enabled.  Because counters are cumulative, feed snapshots to
    [Mv_obs.Heat.observe], which folds deltas.  [hi] reflects the
    block's most recent shape (a re-decode after patching may change its
    extent). *)
val heat_blocks : t -> (int * int * int * int) list

(** Drop decoded state overlapping the range (icache flush): both the
    per-instruction cache entries and every superblock touching the
    range. *)
val flush_icache : t -> addr:int -> len:int -> unit

(** Drop the whole decode cache (full icache flush). *)
val flush_all_icache : t -> unit

(** Execute one instruction through the superblock cache; [false] once
    control returns to the sentinel. *)
val step : t -> bool

(** Execute one instruction with the pre-superblock fetch/decode/dispatch
    interpreter.  Kept as the differential reference: {!step} and
    [step_ref] must produce bit-identical simulated cycles, perf counters,
    and trace events (asserted by the superblock test suite and the
    [interp-superblock] bench row).  Do not mix {!step} and [step_ref] on
    the same machine mid-call — each maintains its own decode state. *)
val step_ref : t -> bool

(** Prepare a call without running it: argument registers, fresh stack with
    the return sentinel pushed, pc at the entry.  Drive the prepared call
    with {!step} or {!finish} — this is how callers park the machine inside
    a function (e.g. to exercise safe-commit deferral). *)
val start_call_addr : t -> int -> int list -> unit

(** [start_call t name args]: {!start_call_addr} by symbol name. *)
val start_call : t -> string -> int list -> unit

(** Run until control returns to the sentinel; returns r0. *)
val finish : t -> int

(** {!finish} driven by {!step_ref} — the reference interpreter's run
    loop, for differential comparison against the superblock path. *)
val finish_ref : t -> int

(** Call the function at [addr] with up to 6 integer arguments; runs to
    completion and returns r0.  Memory (globals, heap) persists across
    calls. *)
val call_addr : t -> int -> int list -> int

(** [call t name args]: {!call_addr} by symbol name. *)
val call : t -> string -> int list -> int

(** Every code address with a live activation: the current pc plus a
    conservative scan of the simulated stack (any word inside the text
    section counts, like conservative GC root scanning).  False positives
    only delay deferred patches; they never unblock an unsafe one.  Wire
    this to {!Core.Runtime.set_live_scanner}. *)
val live_code_addrs : t -> int list

(** The live call stack as function entry addresses, innermost first:
    pushed on every [call], popped on the matching [ret], reset by
    {!start_call_addr}/halt.  Exact where {!live_code_addrs} is
    conservative.  Host-side bookkeeping only — maintaining and reading
    it never moves the simulated clock, so a stack profiler built on it
    (see [Mv_obs.Stackprof]) keeps cycle counts bit-identical. *)
val call_frames : t -> int list

(** [read_global t name ~width] reads a global by symbol (host-side view of
    configuration switches). *)
val read_global : t -> string -> width:int -> int

(** [write_global t name v ~width] writes a global by symbol (host-side
    switch flipping for tests and benches). *)
val write_global : t -> string -> int -> width:int -> unit
