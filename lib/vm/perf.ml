(* Performance counters, in the spirit of the TSC / CPU_CLK_UNHALTED
   measurements of Section 6 and the branch counts reported for musl
   (Section 6.2.2: "-40% branches in the case of malloc(1)"). *)

type t = {
  mutable cycles : float;
  mutable instructions : int;
  mutable branches : int;  (** conditional branches executed *)
  mutable branch_mispredicts : int;
  mutable calls : int;
  mutable indirect_calls : int;
  mutable btb_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable atomics : int;
  mutable hypercalls : int;
  mutable icache_flushes : int;
}

let create () =
  {
    cycles = 0.0;
    instructions = 0;
    branches = 0;
    branch_mispredicts = 0;
    calls = 0;
    indirect_calls = 0;
    btb_misses = 0;
    loads = 0;
    stores = 0;
    atomics = 0;
    hypercalls = 0;
    icache_flushes = 0;
  }

type snapshot = {
  s_cycles : float;
  s_instructions : int;
  s_branches : int;
  s_branch_mispredicts : int;
  s_calls : int;
  s_indirect_calls : int;
  s_btb_misses : int;
  s_loads : int;
  s_stores : int;
  s_atomics : int;
  s_hypercalls : int;
  s_icache_flushes : int;
}

let snapshot t =
  {
    s_cycles = t.cycles;
    s_instructions = t.instructions;
    s_branches = t.branches;
    s_branch_mispredicts = t.branch_mispredicts;
    s_calls = t.calls;
    s_indirect_calls = t.indirect_calls;
    s_btb_misses = t.btb_misses;
    s_loads = t.loads;
    s_stores = t.stores;
    s_atomics = t.atomics;
    s_hypercalls = t.hypercalls;
    s_icache_flushes = t.icache_flushes;
  }

(** Counter deltas between two snapshots ([b] after [a]). *)
let diff a b =
  {
    s_cycles = b.s_cycles -. a.s_cycles;
    s_instructions = b.s_instructions - a.s_instructions;
    s_branches = b.s_branches - a.s_branches;
    s_branch_mispredicts = b.s_branch_mispredicts - a.s_branch_mispredicts;
    s_calls = b.s_calls - a.s_calls;
    s_indirect_calls = b.s_indirect_calls - a.s_indirect_calls;
    s_btb_misses = b.s_btb_misses - a.s_btb_misses;
    s_loads = b.s_loads - a.s_loads;
    s_stores = b.s_stores - a.s_stores;
    s_atomics = b.s_atomics - a.s_atomics;
    s_hypercalls = b.s_hypercalls - a.s_hypercalls;
    s_icache_flushes = b.s_icache_flushes - a.s_icache_flushes;
  }

(* Derived metrics, the ratios the paper's evaluation actually argues
   with: raw counter values depend on run length, these do not. *)

let ratio num den = if den = 0.0 then 0.0 else num /. den

(** Instructions per cycle. *)
let ipc s = ratio (float_of_int s.s_instructions) s.s_cycles

(** Mispredicted fraction of executed conditional branches, in [0, 1]. *)
let mispredict_rate s = ratio (float_of_int s.s_branch_mispredicts) (float_of_int s.s_branches)

(** Mean cycles per executed call instruction. *)
let cycles_per_call s = ratio s.s_cycles (float_of_int s.s_calls)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>cycles            %12.1f@,instructions      %12d@,branches          %12d@,mispredicts       %12d@,calls             %12d@,indirect calls    %12d@,btb misses        %12d@,loads             %12d@,stores            %12d@,atomics           %12d@,hypercalls        %12d@,ipc               %12.3f@,mispredict rate   %11.2f%%@,cycles/call       %12.2f@]"
    s.s_cycles s.s_instructions s.s_branches s.s_branch_mispredicts s.s_calls
    s.s_indirect_calls s.s_btb_misses s.s_loads s.s_stores s.s_atomics s.s_hypercalls
    (ipc s)
    (100.0 *. mispredict_rate s)
    (cycles_per_call s)

(** Snapshot as a JSON object: every raw counter plus the derived
    [ipc]/[mispredict_rate]/[cycles_per_call] block — the machine's third
    of the unified metrics export. *)
let snapshot_json s : Mv_obs.Json.t =
  Mv_obs.Json.Obj
    [
      ("cycles", Mv_obs.Json.Float s.s_cycles);
      ("instructions", Mv_obs.Json.Int s.s_instructions);
      ("branches", Mv_obs.Json.Int s.s_branches);
      ("branch_mispredicts", Mv_obs.Json.Int s.s_branch_mispredicts);
      ("calls", Mv_obs.Json.Int s.s_calls);
      ("indirect_calls", Mv_obs.Json.Int s.s_indirect_calls);
      ("btb_misses", Mv_obs.Json.Int s.s_btb_misses);
      ("loads", Mv_obs.Json.Int s.s_loads);
      ("stores", Mv_obs.Json.Int s.s_stores);
      ("atomics", Mv_obs.Json.Int s.s_atomics);
      ("hypercalls", Mv_obs.Json.Int s.s_hypercalls);
      ("icache_flushes", Mv_obs.Json.Int s.s_icache_flushes);
      ("ipc", Mv_obs.Json.Float (ipc s));
      ("mispredict_rate", Mv_obs.Json.Float (mispredict_rate s));
      ("cycles_per_call", Mv_obs.Json.Float (cycles_per_call s));
    ]
