(** The cycle cost model, calibrated against published Skylake-class
    latencies.  The constants that carry the paper's story:
    - [mispredict_penalty] ~16 cycles (the Section 1 footnote) — why
      dynamically-evaluated switches are expensive on real paths;
    - [atomic] ~18 cycles — why uniprocessor lock elision pays
      (Figure 1: 28.8 vs 6.6 cycles);
    - [cli]/[sti]/[hypercall] — the paravirtual-operation costs. *)

type t = {
  mov : float;
  mov_imm : float;
  alu : float;
  mul : float;
  div : float;
  load : float;
  store : float;
  load_global : float;
  lea : float;
  push : float;
  pop : float;
  call : float;
  call_ind : float;  (** extra cost of the indirection itself *)
  ret : float;
  jmp : float;
  branch : float;  (** correctly predicted conditional branch *)
  mispredict_penalty : float;
  btb_miss_penalty : float;
  nop : float;
  cli : float;
  sti : float;
  pause : float;
  fence : float;
  atomic : float;
  hypercall : float;
  rdtsc : float;
  safepoint_poll : float;
      (** per-poll cost of the safe-commit safepoint check (a cached-flag
          test plus a predicted-not-taken branch); charged only while a
          safepoint hook is installed *)
}

(** An aggressive out-of-order core around 3 GHz. *)
val default : t

(** Nominal clock for converting simulated cycles into wall time when an
    experiment reports seconds (musl, grep). *)
val nominal_ghz : float

(** [cycles_to_seconds c] converts simulated cycles into wall time at
    {!nominal_ghz}. *)
val cycles_to_seconds : float -> float

(** [cycles_to_ms c] is {!cycles_to_seconds} scaled to milliseconds. *)
val cycles_to_ms : float -> float
