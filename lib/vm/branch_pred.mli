(** Branch prediction model: gshare-style 2-bit counters for conditional
    branches plus a branch target buffer for indirect calls.

    The paper's core performance argument (Section 1) is that a dynamic
    configuration check is nearly free in a warm microbenchmark loop but
    pays a 15-20 cycle misprediction on real, cold or aliased kernel paths;
    {!flush} and {!perturb} model those conditions (ablation A2). *)

type t = {
  counters : int array;
  btb : int array;
  mutable history : int;
  bits : int;
}

(** Fresh predictor; [bits] sizes the history/counter tables (default 12,
    i.e. 4096 entries). *)
val create : ?bits:int -> unit -> t

(** Predict-and-update for the conditional branch at [pc]; [true] when the
    prediction matched [taken]. *)
val conditional : t -> pc:int -> taken:bool -> bool

(** Predict-and-update for an indirect transfer; [true] on a BTB hit with
    the right target. *)
val indirect : t -> pc:int -> target:int -> bool

(** Cold predictor (context switch, cache pressure). *)
val flush : t -> unit

(** Deterministically perturb a [fraction] of the tables (aliasing
    pressure); reproducible via [seed]. *)
val perturb : t -> seed:int -> fraction:float -> unit
