(* The machine simulator: fetch / decode / execute over a linked image, with
   a cycle cost model, branch prediction, and a decode cache that models the
   instruction cache.

   The decode cache is the reason the multiverse runtime must flush after
   patching (Section 4: "flush the instruction cache for the respective
   locations"): until [flush_icache] is called for a patched range, the
   machine keeps executing the stale decoded instructions. *)

module Insn = Mv_isa.Insn
module Image = Mv_link.Image

exception Fault of string

let faultf fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

(** Native hardware or a Xen paravirtualized guest.  In a PV guest the
    privileged [cli]/[sti] instructions must not be executed directly — the
    kernel has to go through hypercalls (Section 6.1). *)
type platform = Native | Xen

type t = {
  image : Image.t;
  hart_id : int;
      (** which hart this context is, for event attribution; a plain
          single-hart machine is hart 0 *)
  stack_base : int;
      (** top of this hart's stack region — the image's [stack_base] for
          hart 0, lower disjoint slices for the others *)
  regs : int array;
  mutable pc : int;
  perf : Perf.t;
  bp : Branch_pred.t;
  cost : Cost.t;
  platform : platform;
  cache : (Insn.t * int) option array;  (** decode cache, indexed by text offset *)
  mutable irq_enabled : bool;
  mutable steps_left : int;
  max_steps : int;
  mutable safepoint : (unit -> unit) option;
      (** invoked at every quiescence point (after each [ret] and on halt);
          the safe-commit runtime drains deferred patch sets here *)
  mutable tracer : (Mv_obs.Trace.event -> unit) option;
      (** optional event sink for machine-side events (icache flushes) *)
  mutable sampler : (int -> unit) option;
      (** optional per-instruction pc observer — the sampling profiler's
          feed.  A host-side observer: it charges no simulated cycles, so
          cycle counts are identical with and without it *)
  mutable frames : int list;
      (** entry addresses of live activations, innermost first — pushed on
          [call], popped on [ret].  Host-side bookkeeping like the perf
          counters: it charges no simulated cycles, and the stack profiler
          reads it through {!call_frames} to symbolize whole call stacks *)
  mutable brk : (int -> bool) option;
      (** breakpoint handler: called with the pc of a fetched [Brk].
          Returning [true] means "spin here" (the pc does not advance and a
          pause is charged — the text_poke wait loop); returning [false],
          or having no handler, faults.  The SMP layer installs this. *)
}

let return_sentinel = 0

let create ?(cost = Cost.default) ?(platform = Native) ?(max_steps = 2_000_000_000)
    ?(hart_id = 0) ?stack_base (image : Image.t) : t =
  {
    image;
    hart_id;
    stack_base =
      (match stack_base with None -> image.Image.stack_base | Some sb -> sb);
    regs = Array.make Insn.num_regs 0;
    pc = return_sentinel;
    perf = Perf.create ();
    bp = Branch_pred.create ();
    cost;
    platform;
    cache = Array.make (max 1 image.Image.text.Image.sr_size) None;
    irq_enabled = true;
    steps_left = max_steps;
    max_steps;
    safepoint = None;
    tracer = None;
    sampler = None;
    frames = [];
    brk = None;
  }

(** Install (or remove) the safepoint hook.  While a hook is installed,
    every [ret] and halt charges [Cost.safepoint_poll] cycles and invokes
    it — the polling overhead the safe-commit bench measures.  With no
    hook the machine behaves exactly as before (zero cost). *)
let set_safepoint t hook = t.safepoint <- hook

(** Install (or remove) the machine-side event sink (icache flushes). *)
let set_tracer t sink = t.tracer <- sink

(** Install (or remove) the per-instruction pc observer (the sampling
    profiler's feed; see [Mv_obs.Profile]).  Purely host-side: simulated
    cycle counts do not change. *)
let set_sampler t hook = t.sampler <- hook

(** Install (or remove) the breakpoint handler (see the [brk] field). *)
let set_brk_handler t h = t.brk <- h

(** Which hart this machine is (0 for plain single-hart machines). *)
let hart_id t = t.hart_id

let emit t ev = match t.tracer with None -> () | Some sink -> sink ev

let text_base t = t.image.Image.text.Image.sr_base

(** Drop decode-cache entries overlapping [addr, addr+len).  Mirrors an
    instruction-cache flush; the multiverse runtime calls this after every
    patch. *)
let flush_icache t ~addr ~len =
  t.perf.Perf.icache_flushes <- t.perf.Perf.icache_flushes + 1;
  emit t (Mv_obs.Trace.Icache_flush { hart = t.hart_id; addr; len });
  let base = text_base t in
  let lo = max 0 (addr - base - 15) and hi = min (Array.length t.cache) (addr - base + len) in
  for i = lo to hi - 1 do
    t.cache.(i) <- None
  done

let flush_all_icache t =
  t.perf.Perf.icache_flushes <- t.perf.Perf.icache_flushes + 1;
  emit t (Mv_obs.Trace.Icache_flush { hart = t.hart_id; addr = 0; len = 0 });
  Array.fill t.cache 0 (Array.length t.cache) None

let fetch t pc : Insn.t * int =
  let off = pc - text_base t in
  if off < 0 || off >= Array.length t.cache then
    faultf "instruction fetch outside text at 0x%x" pc;
  match t.cache.(off) with
  | Some entry -> entry
  | None ->
      Image.check_exec t.image pc 1;
      let entry =
        try Mv_isa.Decode.decode t.image.Image.mem ~off:pc
        with Mv_isa.Decode.Decode_error (m, o) -> faultf "decode at 0x%x: %s" o m
      in
      t.cache.(off) <- Some entry;
      entry

let add_cycles t c = t.perf.Perf.cycles <- t.perf.Perf.cycles +. c

let push_word t v =
  t.regs.(Insn.sp) <- t.regs.(Insn.sp) - 8;
  Image.write t.image t.regs.(Insn.sp) v 8

let pop_word t =
  let v = Image.read t.image t.regs.(Insn.sp) 8 in
  t.regs.(Insn.sp) <- t.regs.(Insn.sp) + 8;
  v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Insn.Mod -> if b = 0 then raise (Fault "modulo by zero") else a mod b
  | Insn.Band -> a land b
  | Insn.Bor -> a lor b
  | Insn.Bxor -> a lxor b
  | Insn.Shl -> a lsl (b land 63)
  | Insn.Shr -> a asr (b land 63)
  | Insn.Eq -> Bool.to_int (a = b)
  | Insn.Ne -> Bool.to_int (a <> b)
  | Insn.Lt -> Bool.to_int (a < b)
  | Insn.Le -> Bool.to_int (a <= b)
  | Insn.Gt -> Bool.to_int (a > b)
  | Insn.Ge -> Bool.to_int (a >= b)

let alu_cost t = function
  | Insn.Mul -> t.cost.Cost.mul
  | Insn.Div | Insn.Mod -> t.cost.Cost.div
  | _ -> t.cost.Cost.alu

(* A quiescence point: an activation just ended ([ret]/halt), so code ranges
   that were live may have gone quiet.  The poll itself models a cached-flag
   test and is charged only when a hook is installed. *)
let poll_safepoint t =
  match t.safepoint with
  | None -> ()
  | Some hook ->
      add_cycles t t.cost.Cost.safepoint_poll;
      hook ()

(** Execute exactly one instruction at [t.pc].  Returns [false] when the
    machine returned to the sentinel address (top-level return). *)
let step t : bool =
  if t.steps_left <= 0 then faultf "step limit exceeded (pc=0x%x)" t.pc;
  t.steps_left <- t.steps_left - 1;
  let pc = t.pc in
  let insn, size = fetch t pc in
  let c = t.cost in
  let perf = t.perf in
  perf.Perf.instructions <- perf.Perf.instructions + 1;
  (match t.sampler with None -> () | Some observe -> observe pc);
  let next = pc + size in
  t.pc <- next;
  (match insn with
  | Insn.Mov_ri (rd, imm) | Insn.Mov_ri32 (rd, imm) ->
      t.regs.(rd) <- imm;
      add_cycles t c.Cost.mov_imm
  | Insn.Mov_rr (rd, rs) ->
      t.regs.(rd) <- t.regs.(rs);
      add_cycles t c.Cost.mov
  | Insn.Alu (op, rd, ra, rb) ->
      t.regs.(rd) <- alu_eval op t.regs.(ra) t.regs.(rb);
      add_cycles t (alu_cost t op)
  | Insn.Alu_ri (op, rd, ra, imm) ->
      t.regs.(rd) <- alu_eval op t.regs.(ra) imm;
      add_cycles t (alu_cost t op)
  | Insn.Un (op, rd, ra) ->
      let a = t.regs.(ra) in
      t.regs.(rd) <-
        (match op with
        | Insn.Neg -> -a
        | Insn.Lnot -> Bool.to_int (a = 0)
        | Insn.Bnot -> lnot a);
      add_cycles t c.Cost.alu
  | Insn.Load (rd, ra, off, w) ->
      t.regs.(rd) <- Image.read t.image (t.regs.(ra) + off) w;
      perf.Perf.loads <- perf.Perf.loads + 1;
      add_cycles t c.Cost.load
  | Insn.Store (ra, off, rs, w) ->
      Image.write t.image (t.regs.(ra) + off) t.regs.(rs) w;
      perf.Perf.stores <- perf.Perf.stores + 1;
      add_cycles t c.Cost.store
  | Insn.Loadg (rd, addr, w) ->
      t.regs.(rd) <- Image.read t.image addr w;
      perf.Perf.loads <- perf.Perf.loads + 1;
      add_cycles t c.Cost.load_global
  | Insn.Storeg (addr, rs, w) ->
      Image.write t.image addr t.regs.(rs) w;
      perf.Perf.stores <- perf.Perf.stores + 1;
      add_cycles t c.Cost.store
  | Insn.Lea (rd, addr) ->
      t.regs.(rd) <- addr;
      add_cycles t c.Cost.lea
  | Insn.Call rel ->
      push_word t next;
      t.pc <- next + rel;
      t.frames <- t.pc :: t.frames;
      perf.Perf.calls <- perf.Perf.calls + 1;
      add_cycles t c.Cost.call
  | Insn.Call_ind addr ->
      let target = Image.read t.image addr 8 in
      push_word t next;
      t.pc <- target;
      t.frames <- target :: t.frames;
      perf.Perf.calls <- perf.Perf.calls + 1;
      perf.Perf.indirect_calls <- perf.Perf.indirect_calls + 1;
      add_cycles t (c.Cost.call +. c.Cost.call_ind);
      if not (Branch_pred.indirect t.bp ~pc ~target) then begin
        perf.Perf.btb_misses <- perf.Perf.btb_misses + 1;
        add_cycles t c.Cost.btb_miss_penalty
      end
  | Insn.Jmp rel ->
      t.pc <- next + rel;
      add_cycles t c.Cost.jmp
  | Insn.Jnz (r, rel) | Insn.Jz (r, rel) ->
      let taken =
        match insn with
        | Insn.Jnz _ -> t.regs.(r) <> 0
        | _ -> t.regs.(r) = 0
      in
      if taken then t.pc <- next + rel;
      perf.Perf.branches <- perf.Perf.branches + 1;
      add_cycles t c.Cost.branch;
      if not (Branch_pred.conditional t.bp ~pc ~taken) then begin
        perf.Perf.branch_mispredicts <- perf.Perf.branch_mispredicts + 1;
        add_cycles t c.Cost.mispredict_penalty
      end
  | Insn.Ret ->
      let target = pop_word t in
      t.pc <- target;
      (match t.frames with [] -> () | _ :: rest -> t.frames <- rest);
      add_cycles t c.Cost.ret;
      poll_safepoint t
  | Insn.Push r ->
      push_word t t.regs.(r);
      add_cycles t c.Cost.push
  | Insn.Pop r ->
      t.regs.(r) <- pop_word t;
      add_cycles t c.Cost.pop
  | Insn.Cli ->
      if t.platform = Xen then faultf "privileged cli in PV guest at 0x%x" pc;
      t.irq_enabled <- false;
      add_cycles t c.Cost.cli
  | Insn.Sti ->
      if t.platform = Xen then faultf "privileged sti in PV guest at 0x%x" pc;
      t.irq_enabled <- true;
      add_cycles t c.Cost.sti
  | Insn.Pause -> add_cycles t c.Cost.pause
  | Insn.Fence -> add_cycles t c.Cost.fence
  | Insn.Xchg (rd, ra, rs) ->
      let addr = t.regs.(ra) in
      let old = Image.read t.image addr 8 in
      Image.write t.image addr t.regs.(rs) 8;
      t.regs.(rd) <- old;
      perf.Perf.atomics <- perf.Perf.atomics + 1;
      add_cycles t c.Cost.atomic
  | Insn.Hypercall _n ->
      if t.platform = Native then faultf "hypercall on native hardware at 0x%x" pc;
      perf.Perf.hypercalls <- perf.Perf.hypercalls + 1;
      add_cycles t c.Cost.hypercall
  | Insn.Rdtsc rd ->
      t.regs.(rd) <- int_of_float perf.Perf.cycles;
      add_cycles t c.Cost.rdtsc
  | Insn.Halt ->
      t.pc <- return_sentinel;
      t.frames <- [];
      poll_safepoint t
  | Insn.Nop -> add_cycles t c.Cost.nop
  | Insn.Brk -> (
      match t.brk with
      | Some handler when handler pc ->
          (* an in-progress text_poke owns this address: spin in place,
             modelling the wait loop a real hart performs on the trap *)
          t.pc <- pc;
          add_cycles t c.Cost.pause
      | _ -> faultf "breakpoint at 0x%x" pc));
  t.pc <> return_sentinel

(** Prepare a call to [addr] without running it: load argument registers,
    reset the stack, push the return sentinel, point the pc at the entry.
    Drive the prepared call with {!step} (or {!finish}); this is how the
    safe-commit tests and demos park the machine mid-function. *)
let start_call_addr t addr (args : int list) : unit =
  if List.length args > 6 then invalid_arg "start_call_addr: too many arguments";
  List.iteri (fun i v -> t.regs.(i) <- v) args;
  t.regs.(Insn.sp) <- t.stack_base;
  push_word t return_sentinel;
  t.pc <- addr;
  t.frames <- [ addr ];
  t.steps_left <- t.max_steps

let start_call t name args = start_call_addr t (Image.symbol t.image name) args

(** Run the machine until control returns to the sentinel; returns r0. *)
let finish t : int =
  while step t do
    ()
  done;
  t.regs.(0)

(** Call the function at [addr] with up to 6 arguments; runs to completion
    and returns r0.  The machine's memory (globals, heap) persists across
    calls. *)
let call_addr t addr (args : int list) : int =
  start_call_addr t addr args;
  finish t

let call t name args = call_addr t (Image.symbol t.image name) args

(* ------------------------------------------------------------------ *)
(* Stack/PC scanning (the safe-commit quiescence detector)             *)
(* ------------------------------------------------------------------ *)

(** Every code address with a live activation: the current pc plus a
    conservative scan of the simulated stack.  Any stack word that falls
    inside the text section is treated as a potential return address (the
    same over-approximation a conservative garbage collector makes for
    roots); false positives can only delay a deferred patch, never corrupt
    one.  The return sentinel and data words outside text are excluded. *)
let live_code_addrs t : int list =
  let live = if Image.in_text t.image t.pc then [ t.pc ] else [] in
  let sp = t.regs.(Insn.sp) and base = t.stack_base in
  if sp <= 0 || sp > base then live
  else begin
    let acc = ref live in
    let a = ref sp in
    while !a < base do
      let v = Image.read t.image !a 8 in
      if Image.in_text t.image v then acc := v :: !acc;
      a := !a + 8
    done;
    !acc
  end

(** The live call stack as function entry addresses, innermost first.
    Exact (maintained on call/ret), unlike the conservative
    {!live_code_addrs} scan; the stack profiler symbolizes it into folded
    stacks.  Reading it costs nothing on the simulated clock. *)
let call_frames t : int list = t.frames

(** Read/write globals by symbol from the host side (test and benchmark
    drivers use this to set configuration switches). *)
let read_global t name ~width = Image.read t.image (Image.symbol t.image name) width

let write_global t name v ~width = Image.write t.image (Image.symbol t.image name) v width
