(* The machine simulator: fetch / decode / execute over a linked image, with
   a cycle cost model, branch prediction, and a superblock decode cache that
   models the instruction cache.

   Execution is driven from pre-decoded superblocks: straight-line runs of
   instructions are decoded once into arrays of OCaml closures
   (superinstructions) and dispatched through a cursor, so the hot path pays
   one closure call per instruction instead of a fetch/decode/dispatch
   cascade.  The decode cache is the reason the multiverse runtime must
   flush after patching (Section 4: "flush the instruction cache for the
   respective locations"): until [flush_icache] covers a patched range, the
   machine keeps executing the stale pre-decoded closures.

   The pre-refactor interpreter survives as [step_ref]; the test suite and
   the [interp-superblock] bench row drive both and require bit-identical
   simulated cycles, perf counters, and trace events. *)

module Insn = Mv_isa.Insn
module Image = Mv_link.Image

exception Fault of string

let faultf fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

(** Native hardware or a Xen paravirtualized guest.  In a PV guest the
    privileged [cli]/[sti] instructions must not be executed directly — the
    kernel has to go through hypercalls (Section 6.1). *)
type platform = Native | Xen

(** Host-side decode-cache statistics.  None of these counters move the
    simulated clock; the superblock tests assert on them to prove that
    re-decode happens only after an invalidation. *)
type decode_stats = {
  mutable ds_blocks : int;  (** superblocks compiled since creation *)
  mutable ds_insns : int;  (** instructions decoded into superblocks *)
  mutable ds_invalidated : int;  (** superblocks dropped by icache flushes *)
}

(** Host-side code-heat counters, indexed by superblock entry text
    offset.  They live in the machine — outside the superblocks — so an
    icache flush that drops a block never loses the hits already
    charged to its entry; rebuilding the block resumes counting in the
    same slot.  Like the perf counters, incrementing them charges zero
    simulated cycles. *)
type heat_counters = {
  hh_hits : int array;  (** cumulative entries via the dispatch slow path *)
  hh_insns : int array;  (** cumulative instructions dispatched from here *)
  hh_ends : int array;  (** text offset one past the block's last byte *)
}

type t = {
  image : Image.t;
  hart_id : int;
      (** which hart this context is, for event attribution; a plain
          single-hart machine is hart 0 *)
  stack_base : int;
      (** top of this hart's stack region — the image's [stack_base] for
          hart 0, lower disjoint slices for the others *)
  regs : int array;
  mutable pc : int;
  perf : Perf.t;
  bp : Branch_pred.t;
  cost : Cost.t;
  platform : platform;
  cache : (Insn.t * int) option array;
      (** per-instruction decode cache, indexed by text offset — the
          reference stepper's ({!step_ref}) icache model.  The superblock
          path keeps it coherent but does not read it. *)
  blocks : (int, superblock) Hashtbl.t;
      (** pre-decoded superblocks keyed by entry text offset — the
          enumeration side (invalidation walks it); lookups go through
          [block_map] *)
  block_map : superblock option array;
      (** direct-mapped dispatch index: [block_map.(off)] is the live
          superblock entered at text offset [off].  Same contents as
          [blocks]; exists so the block-transition hot path is an array
          read instead of a hash lookup *)
  mutable sb_cur : superblock option;
      (** dispatch cursor: the superblock expected to contain [pc] *)
  mutable sb_ix : int;  (** index into [sb_cur] expected to execute next *)
  dstats : decode_stats;
  mutable irq_enabled : bool;
  mutable steps_left : int;
  max_steps : int;
  mutable safepoint : (unit -> unit) option;
      (** invoked at every quiescence point (after each [ret] and on halt);
          the safe-commit runtime drains deferred patch sets here *)
  mutable tracer : (Mv_obs.Trace.event -> unit) option;
      (** optional event sink for machine-side events (icache flushes) *)
  mutable sampler : (int -> unit) option;
      (** optional per-instruction pc observer — the sampling profiler's
          feed.  A host-side observer: it charges no simulated cycles, so
          cycle counts are identical with and without it *)
  mutable frames : int list;
      (** entry addresses of live activations, innermost first — pushed on
          [call], popped on [ret].  Host-side bookkeeping like the perf
          counters: it charges no simulated cycles, and the stack profiler
          reads it through {!call_frames} to symbolize whole call stacks *)
  mutable brk : (int -> bool) option;
      (** breakpoint handler: called with the pc of a fetched [Brk].
          Returning [true] means "spin here" (the pc does not advance and a
          pause is charged — the text_poke wait loop); returning [false],
          or having no handler, faults.  The SMP layer installs this. *)
  mutable on_trap : (string -> unit) option;
      (** invoked with the fault message when a {!Fault} escapes the
          execution entry points ({!step}, {!step_ref}, {!finish}) — the
          flight recorder's dump trigger.  Host-side and exactly-once per
          escaping fault; exceptions it raises itself are swallowed so a
          failing dump never masks the original fault. *)
  mutable heat : heat_counters option;
      (** block-entry hit counters ({!enable_heat}); [None] means the
          dispatch slow path skips heat accounting entirely *)
}

(* A pre-decoded straight-line run of instructions.  Each closure is one
   compiled instruction: it performs exactly the state transition the
   matching [step_ref] arm performs, in the same order, so driving a block
   is bit-identical to interpreting its bytes.  Blocks end at control
   transfers ([call]/[jmp]/branches/[ret]/[halt]/[brk]) and are dropped —
   never patched in place — when an icache flush overlaps their byte
   range. *)
and superblock = {
  sb_start : int;  (** text offset of the first instruction *)
  sb_end : int;  (** text offset one past the last decoded byte *)
  sb_pcs : int array;  (** absolute pc of each instruction *)
  sb_ops : (t -> unit) array;  (** compiled instructions, in order *)
  mutable sb_live : bool;  (** cleared when an icache flush drops the block *)
}

let return_sentinel = 0

let create ?(cost = Cost.default) ?(platform = Native) ?(max_steps = 2_000_000_000)
    ?(hart_id = 0) ?stack_base (image : Image.t) : t =
  (* the decode caches span every executable byte: the static text plus —
     when the image reserves one — the variant-text region the lazy
     materializer writes into, so freshly materialized bodies fetch and
     superblock-compile like any AOT code *)
  let code_span =
    let text = image.Image.text in
    let text_end = text.Image.sr_base + text.Image.sr_size in
    let vt = image.Image.vtext in
    let code_end =
      if vt.Image.sr_size > 0 then max text_end (vt.Image.sr_base + vt.Image.sr_size)
      else text_end
    in
    code_end - text.Image.sr_base
  in
  {
    image;
    hart_id;
    stack_base =
      (match stack_base with None -> image.Image.stack_base | Some sb -> sb);
    regs = Array.make Insn.num_regs 0;
    pc = return_sentinel;
    perf = Perf.create ();
    bp = Branch_pred.create ();
    cost;
    platform;
    cache = Array.make (max 1 code_span) None;
    blocks = Hashtbl.create 256;
    block_map = Array.make (max 1 code_span) None;
    sb_cur = None;
    sb_ix = 0;
    dstats = { ds_blocks = 0; ds_insns = 0; ds_invalidated = 0 };
    irq_enabled = true;
    steps_left = max_steps;
    max_steps;
    safepoint = None;
    tracer = None;
    sampler = None;
    frames = [];
    brk = None;
    on_trap = None;
    heat = None;
  }

(** Install (or remove) the safepoint hook.  While a hook is installed,
    every [ret] and halt charges [Cost.safepoint_poll] cycles and invokes
    it — the polling overhead the safe-commit bench measures.  With no
    hook the machine behaves exactly as before (zero cost). *)
let set_safepoint t hook = t.safepoint <- hook

(** Install (or remove) the machine-side event sink (icache flushes). *)
let set_tracer t sink = t.tracer <- sink

(** Install (or remove) the per-instruction pc observer (the sampling
    profiler's feed; see [Mv_obs.Profile]).  Purely host-side: simulated
    cycle counts do not change. *)
let set_sampler t hook = t.sampler <- hook

(** Install (or remove) the breakpoint handler (see the [brk] field). *)
let set_brk_handler t h = t.brk <- h

(** Install (or remove) the trap hook (see the [on_trap] field). *)
let set_trap_hook t h = t.on_trap <- h

(* Report an escaping fault to the trap hook (once), then re-raise.  The
   hook is host-side; anything it raises is swallowed so a broken dump
   path cannot mask the machine fault being reported. *)
let report_trap t e =
  (match (t.on_trap, e) with
  | Some hook, Fault msg -> ( try hook msg with _ -> ())
  | _ -> ());
  raise e

(** Which hart this machine is (0 for plain single-hart machines). *)
let hart_id t = t.hart_id

(** Host-side decode-cache statistics (superblock builds, instructions
    decoded, invalidations).  Reading them never moves the simulated
    clock. *)
let decode_stats t = t.dstats

let emit t ev = match t.tracer with None -> () | Some sink -> sink ev

let text_base t = t.image.Image.text.Image.sr_base

(* Drop every superblock whose byte range overlaps the text-offset window
   [lo, hi).  A block is removed from the table and marked dead so the
   dispatch cursor (which may still point at it mid-run) refuses it on the
   next step.  Over-approximation is safe: dropping a block only forces a
   re-decode, which costs nothing on the simulated clock. *)
let invalidate_blocks t ~lo ~hi =
  if hi > lo && Hashtbl.length t.blocks > 0 then begin
    let doomed = ref [] in
    Hashtbl.iter
      (fun key b -> if b.sb_start < hi && b.sb_end > lo then doomed := (key, b) :: !doomed)
      t.blocks;
    List.iter
      (fun (key, b) ->
        b.sb_live <- false;
        t.dstats.ds_invalidated <- t.dstats.ds_invalidated + 1;
        Hashtbl.remove t.blocks key;
        t.block_map.(key) <- None)
      !doomed
  end;
  match t.sb_cur with
  | Some b when not b.sb_live -> t.sb_cur <- None
  | _ -> ()

(** Drop decoded state overlapping [addr, addr+len): per-instruction cache
    entries and every superblock touching the range.  Mirrors an
    instruction-cache flush; the multiverse runtime calls this after every
    patch. *)
let flush_icache t ~addr ~len =
  t.perf.Perf.icache_flushes <- t.perf.Perf.icache_flushes + 1;
  emit t (Mv_obs.Trace.Icache_flush { hart = t.hart_id; addr; len });
  let base = text_base t in
  let lo = max 0 (addr - base - 15) and hi = min (Array.length t.cache) (addr - base + len) in
  for i = lo to hi - 1 do
    t.cache.(i) <- None
  done;
  invalidate_blocks t ~lo ~hi

let flush_all_icache t =
  t.perf.Perf.icache_flushes <- t.perf.Perf.icache_flushes + 1;
  emit t (Mv_obs.Trace.Icache_flush { hart = t.hart_id; addr = 0; len = 0 });
  Array.fill t.cache 0 (Array.length t.cache) None;
  invalidate_blocks t ~lo:0 ~hi:(Array.length t.cache)

(** Arm the code-heat counters.  Idempotent: counts already accumulated
    survive a second call.  Purely host-side — the dispatch slow path
    gains three array writes and the simulated clock does not move, so
    cycle counts are identical with and without it. *)
let enable_heat t =
  match t.heat with
  | Some _ -> ()
  | None ->
      let n = Array.length t.block_map in
      t.heat <-
        Some
          {
            hh_hits = Array.make n 0;
            hh_insns = Array.make n 0;
            hh_ends = Array.make n 0;
          }

(** Snapshot the heat counters as [(lo, hi, hits, insns)] per superblock
    entry with at least one hit — absolute byte range, cumulative entry
    count, cumulative instructions dispatched.  Non-destructive (counts
    keep accumulating) and ordered by address; [[]] when heat was never
    enabled.  [hi] reflects the most recent shape of the block at [lo]
    (a re-decode after patching may change its extent). *)
let heat_blocks t : (int * int * int * int) list =
  match t.heat with
  | None -> []
  | Some h ->
      let base = text_base t in
      let acc = ref [] in
      for off = Array.length h.hh_hits - 1 downto 0 do
        let n = Array.unsafe_get h.hh_hits off in
        if n > 0 then
          acc :=
            (base + off, base + h.hh_ends.(off), n, h.hh_insns.(off)) :: !acc
      done;
      !acc

let fetch t pc : Insn.t * int =
  let off = pc - text_base t in
  if off < 0 || off >= Array.length t.cache then
    faultf "instruction fetch outside text at 0x%x" pc;
  match t.cache.(off) with
  | Some entry -> entry
  | None ->
      Image.check_exec t.image pc 1;
      let entry =
        try Mv_isa.Decode.decode t.image.Image.mem ~off:pc
        with Mv_isa.Decode.Decode_error (m, o) -> faultf "decode at 0x%x: %s" o m
      in
      t.cache.(off) <- Some entry;
      entry

let add_cycles t c = t.perf.Perf.cycles <- t.perf.Perf.cycles +. c

let push_word t v =
  t.regs.(Insn.sp) <- t.regs.(Insn.sp) - 8;
  Image.write t.image t.regs.(Insn.sp) v 8

let pop_word t =
  let v = Image.read t.image t.regs.(Insn.sp) 8 in
  t.regs.(Insn.sp) <- t.regs.(Insn.sp) + 8;
  v

let alu_eval op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Insn.Mod -> if b = 0 then raise (Fault "modulo by zero") else a mod b
  | Insn.Band -> a land b
  | Insn.Bor -> a lor b
  | Insn.Bxor -> a lxor b
  | Insn.Shl -> a lsl (b land 63)
  | Insn.Shr -> a asr (b land 63)
  | Insn.Eq -> Bool.to_int (a = b)
  | Insn.Ne -> Bool.to_int (a <> b)
  | Insn.Lt -> Bool.to_int (a < b)
  | Insn.Le -> Bool.to_int (a <= b)
  | Insn.Gt -> Bool.to_int (a > b)
  | Insn.Ge -> Bool.to_int (a >= b)

let alu_cost t = function
  | Insn.Mul -> t.cost.Cost.mul
  | Insn.Div | Insn.Mod -> t.cost.Cost.div
  | _ -> t.cost.Cost.alu

(* A quiescence point: an activation just ended ([ret]/halt), so code ranges
   that were live may have gone quiet.  The poll itself models a cached-flag
   test and is charged only when a hook is installed. *)
let poll_safepoint t =
  match t.safepoint with
  | None -> ()
  | Some hook ->
      add_cycles t t.cost.Cost.safepoint_poll;
      hook ()

(* ------------------------------------------------------------------ *)
(* Superblock compilation                                              *)
(* ------------------------------------------------------------------ *)

(* Superblocks are straight-line: any instruction that transfers control —
   or that may refuse to advance the pc ([Brk]) — ends its block. *)
let ends_block = function
  | Insn.Call _ | Insn.Call_ind _ | Insn.Jmp _ | Insn.Jnz _ | Insn.Jz _
  | Insn.Ret | Insn.Halt | Insn.Brk ->
      true
  | _ -> false

let max_block_insns = 64

(* Compile one instruction at [pc] into a closure.  Every closure mirrors
   its [step_ref] arm exactly — the same order of pc update, memory
   traffic, perf counters, predictor queries, and cycle charges — so the
   superblock path is bit-identical to the reference interpreter.  The
   cycle-cost record is immutable per machine, so its floats are captured
   at compile time. *)
let compile (c : Cost.t) pc (insn : Insn.t) size : t -> unit =
  let next = pc + size in
  match insn with
  | Insn.Mov_ri (rd, imm) | Insn.Mov_ri32 (rd, imm) ->
      let cyc = c.Cost.mov_imm in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- imm;
        add_cycles t cyc
  | Insn.Mov_rr (rd, rs) ->
      let cyc = c.Cost.mov in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- t.regs.(rs);
        add_cycles t cyc
  | Insn.Alu (op, rd, ra, rb) ->
      let cyc =
        match op with
        | Insn.Mul -> c.Cost.mul
        | Insn.Div | Insn.Mod -> c.Cost.div
        | _ -> c.Cost.alu
      in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- alu_eval op t.regs.(ra) t.regs.(rb);
        add_cycles t cyc
  | Insn.Alu_ri (op, rd, ra, imm) ->
      let cyc =
        match op with
        | Insn.Mul -> c.Cost.mul
        | Insn.Div | Insn.Mod -> c.Cost.div
        | _ -> c.Cost.alu
      in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- alu_eval op t.regs.(ra) imm;
        add_cycles t cyc
  | Insn.Un (op, rd, ra) ->
      let cyc = c.Cost.alu in
      fun t ->
        t.pc <- next;
        let a = t.regs.(ra) in
        t.regs.(rd) <-
          (match op with
          | Insn.Neg -> -a
          | Insn.Lnot -> Bool.to_int (a = 0)
          | Insn.Bnot -> lnot a);
        add_cycles t cyc
  | Insn.Load (rd, ra, off, w) ->
      let cyc = c.Cost.load in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- Image.read t.image (t.regs.(ra) + off) w;
        t.perf.Perf.loads <- t.perf.Perf.loads + 1;
        add_cycles t cyc
  | Insn.Store (ra, off, rs, w) ->
      let cyc = c.Cost.store in
      fun t ->
        t.pc <- next;
        Image.write t.image (t.regs.(ra) + off) t.regs.(rs) w;
        t.perf.Perf.stores <- t.perf.Perf.stores + 1;
        add_cycles t cyc
  | Insn.Loadg (rd, addr, w) ->
      let cyc = c.Cost.load_global in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- Image.read t.image addr w;
        t.perf.Perf.loads <- t.perf.Perf.loads + 1;
        add_cycles t cyc
  | Insn.Storeg (addr, rs, w) ->
      let cyc = c.Cost.store in
      fun t ->
        t.pc <- next;
        Image.write t.image addr t.regs.(rs) w;
        t.perf.Perf.stores <- t.perf.Perf.stores + 1;
        add_cycles t cyc
  | Insn.Lea (rd, addr) ->
      let cyc = c.Cost.lea in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- addr;
        add_cycles t cyc
  | Insn.Call rel ->
      let target = next + rel and cyc = c.Cost.call in
      fun t ->
        t.pc <- next;
        push_word t next;
        t.pc <- target;
        t.frames <- target :: t.frames;
        t.perf.Perf.calls <- t.perf.Perf.calls + 1;
        add_cycles t cyc
  | Insn.Call_ind addr ->
      let cyc = c.Cost.call +. c.Cost.call_ind
      and miss = c.Cost.btb_miss_penalty in
      fun t ->
        t.pc <- next;
        let target = Image.read t.image addr 8 in
        push_word t next;
        t.pc <- target;
        t.frames <- target :: t.frames;
        t.perf.Perf.calls <- t.perf.Perf.calls + 1;
        t.perf.Perf.indirect_calls <- t.perf.Perf.indirect_calls + 1;
        add_cycles t cyc;
        if not (Branch_pred.indirect t.bp ~pc ~target) then begin
          t.perf.Perf.btb_misses <- t.perf.Perf.btb_misses + 1;
          add_cycles t miss
        end
  | Insn.Jmp rel ->
      let target = next + rel and cyc = c.Cost.jmp in
      fun t ->
        t.pc <- target;
        add_cycles t cyc
  | Insn.Jnz (r, rel) | Insn.Jz (r, rel) ->
      let target = next + rel
      and cyc = c.Cost.branch
      and miss = c.Cost.mispredict_penalty
      and test_nz = match insn with Insn.Jnz _ -> true | _ -> false in
      fun t ->
        let taken = if test_nz then t.regs.(r) <> 0 else t.regs.(r) = 0 in
        t.pc <- (if taken then target else next);
        t.perf.Perf.branches <- t.perf.Perf.branches + 1;
        add_cycles t cyc;
        if not (Branch_pred.conditional t.bp ~pc ~taken) then begin
          t.perf.Perf.branch_mispredicts <- t.perf.Perf.branch_mispredicts + 1;
          add_cycles t miss
        end
  | Insn.Ret ->
      let cyc = c.Cost.ret in
      fun t ->
        t.pc <- next;
        let target = pop_word t in
        t.pc <- target;
        (match t.frames with [] -> () | _ :: rest -> t.frames <- rest);
        add_cycles t cyc;
        poll_safepoint t
  | Insn.Push r ->
      let cyc = c.Cost.push in
      fun t ->
        t.pc <- next;
        push_word t t.regs.(r);
        add_cycles t cyc
  | Insn.Pop r ->
      let cyc = c.Cost.pop in
      fun t ->
        t.pc <- next;
        t.regs.(r) <- pop_word t;
        add_cycles t cyc
  | Insn.Cli ->
      let cyc = c.Cost.cli in
      fun t ->
        t.pc <- next;
        if t.platform = Xen then faultf "privileged cli in PV guest at 0x%x" pc;
        t.irq_enabled <- false;
        add_cycles t cyc
  | Insn.Sti ->
      let cyc = c.Cost.sti in
      fun t ->
        t.pc <- next;
        if t.platform = Xen then faultf "privileged sti in PV guest at 0x%x" pc;
        t.irq_enabled <- true;
        add_cycles t cyc
  | Insn.Pause ->
      let cyc = c.Cost.pause in
      fun t ->
        t.pc <- next;
        add_cycles t cyc
  | Insn.Fence ->
      let cyc = c.Cost.fence in
      fun t ->
        t.pc <- next;
        add_cycles t cyc
  | Insn.Xchg (rd, ra, rs) ->
      let cyc = c.Cost.atomic in
      fun t ->
        t.pc <- next;
        let addr = t.regs.(ra) in
        let old = Image.read t.image addr 8 in
        Image.write t.image addr t.regs.(rs) 8;
        t.regs.(rd) <- old;
        t.perf.Perf.atomics <- t.perf.Perf.atomics + 1;
        add_cycles t cyc
  | Insn.Hypercall _n ->
      let cyc = c.Cost.hypercall in
      fun t ->
        t.pc <- next;
        if t.platform = Native then faultf "hypercall on native hardware at 0x%x" pc;
        t.perf.Perf.hypercalls <- t.perf.Perf.hypercalls + 1;
        add_cycles t cyc
  | Insn.Rdtsc rd ->
      let cyc = c.Cost.rdtsc in
      fun t ->
        t.pc <- next;
        t.regs.(rd) <- int_of_float t.perf.Perf.cycles;
        add_cycles t cyc
  | Insn.Halt ->
      fun t ->
        t.pc <- return_sentinel;
        t.frames <- [];
        poll_safepoint t
  | Insn.Nop ->
      let cyc = c.Cost.nop in
      fun t ->
        t.pc <- next;
        add_cycles t cyc
  | Insn.Brk ->
      let cyc = c.Cost.pause in
      fun t ->
        t.pc <- next;
        (match t.brk with
        | Some handler when handler pc ->
            (* an in-progress text_poke owns this address: spin in place,
               modelling the wait loop a real hart performs on the trap *)
            t.pc <- pc;
            add_cycles t cyc
        | _ -> faultf "breakpoint at 0x%x" pc)

(* Decode the instruction about to execute, with exactly the reference
   stepper's fault behavior (bounds fault, protection fault, wrapped decode
   error). *)
let decode_strict t pc : Insn.t * int =
  let off = pc - text_base t in
  if off < 0 || off >= Array.length t.cache then
    faultf "instruction fetch outside text at 0x%x" pc;
  Image.check_exec t.image pc 1;
  try Mv_isa.Decode.decode t.image.Image.mem ~off:pc
  with Mv_isa.Decode.Decode_error (m, o) -> faultf "decode at 0x%x: %s" o m

(* Build (and register) the superblock entered at [pc0].  The first
   instruction decodes strictly — its faults belong to this step.  The
   block then extends speculatively down the straight line; a speculative
   decode failure (unmapped bytes, protection, torn encoding) silently
   ends the block, because the reference interpreter would only fault when
   execution actually reaches that instruction. *)
let build_block t pc0 : superblock =
  let c = t.cost in
  let insn0, size0 = decode_strict t pc0 in
  let text_end = text_base t + Array.length t.cache in
  let pcs = ref [] and ops = ref [] in
  let rec extend pc insn size n =
    pcs := pc :: !pcs;
    ops := compile c pc insn size :: !ops;
    let next = pc + size in
    if ends_block insn || n + 1 >= max_block_insns || next >= text_end then next
    else
      match decode_strict t next with
      | insn', size' -> extend next insn' size' (n + 1)
      | exception Fault _ -> next
      | exception _ -> next
  in
  let end_pc = extend pc0 insn0 size0 0 in
  let base = text_base t in
  let b =
    {
      sb_start = pc0 - base;
      sb_end = end_pc - base;
      sb_pcs = Array.of_list (List.rev !pcs);
      sb_ops = Array.of_list (List.rev !ops);
      sb_live = true;
    }
  in
  Hashtbl.replace t.blocks b.sb_start b;
  t.block_map.(b.sb_start) <- Some b;
  t.dstats.ds_blocks <- t.dstats.ds_blocks + 1;
  t.dstats.ds_insns <- t.dstats.ds_insns + Array.length b.sb_ops;
  b

(* Find the block holding the compiled instruction for [pc] when the
   dispatch cursor missed: the block table, else a fresh build.  Jumps
   into the middle of an existing block build a new (overlapping) block —
   blocks are keyed by entry offset only. *)
let locate_slow t pc : superblock =
  let off = pc - text_base t in
  if off < 0 || off >= Array.length t.block_map then
    faultf "instruction fetch outside text at 0x%x" pc;
  let b =
    match Array.unsafe_get t.block_map off with
    | Some b -> b
    | None -> build_block t pc
  in
  (* Code-heat hook: every fresh block entry passes through here exactly
     once (cursor hits are mid-block continuations), so counting at this
     point charges one hit per superblock execution.  Host-side only —
     the simulated clock does not move. *)
  (match t.heat with
  | None -> ()
  | Some h ->
      h.hh_hits.(off) <- h.hh_hits.(off) + 1;
      h.hh_insns.(off) <- h.hh_insns.(off) + Array.length b.sb_ops;
      h.hh_ends.(off) <- b.sb_end);
  b

(** Execute exactly one instruction at [t.pc] through the superblock
    cache.  Returns [false] when the machine returned to the sentinel
    address (top-level return).

    The fast path — the cursor still points at a live block position whose
    recorded pc matches — is allocation-free: field loads, two compares,
    one closure call.  Only a cursor miss (block transition, invalidation,
    or a jump the cursor did not predict) touches the block table, and
    only there is the [Some] cursor box allocated. *)
let step_core t : bool =
  if t.steps_left <= 0 then faultf "step limit exceeded (pc=0x%x)" t.pc;
  t.steps_left <- t.steps_left - 1;
  let pc = t.pc in
  (match t.sb_cur with
  | Some b
    when b.sb_live && t.sb_ix < Array.length b.sb_pcs
         && Array.unsafe_get b.sb_pcs t.sb_ix = pc ->
      t.perf.Perf.instructions <- t.perf.Perf.instructions + 1;
      (match t.sampler with None -> () | Some observe -> observe pc);
      let ix = t.sb_ix in
      t.sb_ix <- ix + 1;
      (Array.unsafe_get b.sb_ops ix) t
  | _ ->
      let b = locate_slow t pc in
      t.perf.Perf.instructions <- t.perf.Perf.instructions + 1;
      (match t.sampler with None -> () | Some observe -> observe pc);
      t.sb_cur <- Some b;
      t.sb_ix <- 1;
      (Array.unsafe_get b.sb_ops 0) t);
  t.pc <> return_sentinel

let step t : bool = try step_core t with Fault _ as e -> report_trap t e

(** Execute exactly one instruction at [t.pc] with the pre-superblock
    fetch/decode/dispatch interpreter.  Kept as the differential reference:
    the superblock tests and the [interp-superblock] bench row require
    {!step} and [step_ref] to produce bit-identical simulated cycles, perf
    counters, and trace events.  Do not mix [step] and [step_ref] on the
    same machine mid-call — each maintains its own decode state. *)
let step_ref_core t : bool =
  if t.steps_left <= 0 then faultf "step limit exceeded (pc=0x%x)" t.pc;
  t.steps_left <- t.steps_left - 1;
  let pc = t.pc in
  let insn, size = fetch t pc in
  let c = t.cost in
  let perf = t.perf in
  perf.Perf.instructions <- perf.Perf.instructions + 1;
  (match t.sampler with None -> () | Some observe -> observe pc);
  let next = pc + size in
  t.pc <- next;
  (match insn with
  | Insn.Mov_ri (rd, imm) | Insn.Mov_ri32 (rd, imm) ->
      t.regs.(rd) <- imm;
      add_cycles t c.Cost.mov_imm
  | Insn.Mov_rr (rd, rs) ->
      t.regs.(rd) <- t.regs.(rs);
      add_cycles t c.Cost.mov
  | Insn.Alu (op, rd, ra, rb) ->
      t.regs.(rd) <- alu_eval op t.regs.(ra) t.regs.(rb);
      add_cycles t (alu_cost t op)
  | Insn.Alu_ri (op, rd, ra, imm) ->
      t.regs.(rd) <- alu_eval op t.regs.(ra) imm;
      add_cycles t (alu_cost t op)
  | Insn.Un (op, rd, ra) ->
      let a = t.regs.(ra) in
      t.regs.(rd) <-
        (match op with
        | Insn.Neg -> -a
        | Insn.Lnot -> Bool.to_int (a = 0)
        | Insn.Bnot -> lnot a);
      add_cycles t c.Cost.alu
  | Insn.Load (rd, ra, off, w) ->
      t.regs.(rd) <- Image.read t.image (t.regs.(ra) + off) w;
      perf.Perf.loads <- perf.Perf.loads + 1;
      add_cycles t c.Cost.load
  | Insn.Store (ra, off, rs, w) ->
      Image.write t.image (t.regs.(ra) + off) t.regs.(rs) w;
      perf.Perf.stores <- perf.Perf.stores + 1;
      add_cycles t c.Cost.store
  | Insn.Loadg (rd, addr, w) ->
      t.regs.(rd) <- Image.read t.image addr w;
      perf.Perf.loads <- perf.Perf.loads + 1;
      add_cycles t c.Cost.load_global
  | Insn.Storeg (addr, rs, w) ->
      Image.write t.image addr t.regs.(rs) w;
      perf.Perf.stores <- perf.Perf.stores + 1;
      add_cycles t c.Cost.store
  | Insn.Lea (rd, addr) ->
      t.regs.(rd) <- addr;
      add_cycles t c.Cost.lea
  | Insn.Call rel ->
      push_word t next;
      t.pc <- next + rel;
      t.frames <- t.pc :: t.frames;
      perf.Perf.calls <- perf.Perf.calls + 1;
      add_cycles t c.Cost.call
  | Insn.Call_ind addr ->
      let target = Image.read t.image addr 8 in
      push_word t next;
      t.pc <- target;
      t.frames <- target :: t.frames;
      perf.Perf.calls <- perf.Perf.calls + 1;
      perf.Perf.indirect_calls <- perf.Perf.indirect_calls + 1;
      add_cycles t (c.Cost.call +. c.Cost.call_ind);
      if not (Branch_pred.indirect t.bp ~pc ~target) then begin
        perf.Perf.btb_misses <- perf.Perf.btb_misses + 1;
        add_cycles t c.Cost.btb_miss_penalty
      end
  | Insn.Jmp rel ->
      t.pc <- next + rel;
      add_cycles t c.Cost.jmp
  | Insn.Jnz (r, rel) | Insn.Jz (r, rel) ->
      let taken =
        match insn with
        | Insn.Jnz _ -> t.regs.(r) <> 0
        | _ -> t.regs.(r) = 0
      in
      if taken then t.pc <- next + rel;
      perf.Perf.branches <- perf.Perf.branches + 1;
      add_cycles t c.Cost.branch;
      if not (Branch_pred.conditional t.bp ~pc ~taken) then begin
        perf.Perf.branch_mispredicts <- perf.Perf.branch_mispredicts + 1;
        add_cycles t c.Cost.mispredict_penalty
      end
  | Insn.Ret ->
      let target = pop_word t in
      t.pc <- target;
      (match t.frames with [] -> () | _ :: rest -> t.frames <- rest);
      add_cycles t c.Cost.ret;
      poll_safepoint t
  | Insn.Push r ->
      push_word t t.regs.(r);
      add_cycles t c.Cost.push
  | Insn.Pop r ->
      t.regs.(r) <- pop_word t;
      add_cycles t c.Cost.pop
  | Insn.Cli ->
      if t.platform = Xen then faultf "privileged cli in PV guest at 0x%x" pc;
      t.irq_enabled <- false;
      add_cycles t c.Cost.cli
  | Insn.Sti ->
      if t.platform = Xen then faultf "privileged sti in PV guest at 0x%x" pc;
      t.irq_enabled <- true;
      add_cycles t c.Cost.sti
  | Insn.Pause -> add_cycles t c.Cost.pause
  | Insn.Fence -> add_cycles t c.Cost.fence
  | Insn.Xchg (rd, ra, rs) ->
      let addr = t.regs.(ra) in
      let old = Image.read t.image addr 8 in
      Image.write t.image addr t.regs.(rs) 8;
      t.regs.(rd) <- old;
      perf.Perf.atomics <- perf.Perf.atomics + 1;
      add_cycles t c.Cost.atomic
  | Insn.Hypercall _n ->
      if t.platform = Native then faultf "hypercall on native hardware at 0x%x" pc;
      perf.Perf.hypercalls <- perf.Perf.hypercalls + 1;
      add_cycles t c.Cost.hypercall
  | Insn.Rdtsc rd ->
      t.regs.(rd) <- int_of_float perf.Perf.cycles;
      add_cycles t c.Cost.rdtsc
  | Insn.Halt ->
      t.pc <- return_sentinel;
      t.frames <- [];
      poll_safepoint t
  | Insn.Nop -> add_cycles t c.Cost.nop
  | Insn.Brk -> (
      match t.brk with
      | Some handler when handler pc ->
          (* an in-progress text_poke owns this address: spin in place,
             modelling the wait loop a real hart performs on the trap *)
          t.pc <- pc;
          add_cycles t c.Cost.pause
      | _ -> faultf "breakpoint at 0x%x" pc));
  t.pc <> return_sentinel

let step_ref t : bool = try step_ref_core t with Fault _ as e -> report_trap t e

(** Prepare a call to [addr] without running it: load argument registers,
    reset the stack, push the return sentinel, point the pc at the entry.
    Drive the prepared call with {!step} (or {!finish}); this is how the
    safe-commit tests and demos park the machine mid-function. *)
let start_call_addr t addr (args : int list) : unit =
  if List.length args > 6 then invalid_arg "start_call_addr: too many arguments";
  List.iteri (fun i v -> t.regs.(i) <- v) args;
  t.regs.(Insn.sp) <- t.stack_base;
  push_word t return_sentinel;
  t.pc <- addr;
  t.frames <- [ addr ];
  t.steps_left <- t.max_steps

let start_call t name args = start_call_addr t (Image.symbol t.image name) args

(** Run the machine until control returns to the sentinel; returns r0.

    Dispatches whole superblocks: the per-instruction cursor guard of
    {!step} is only needed when control can have moved unpredictably, and
    inside a straight-line block it cannot — every instruction that can
    transfer control, fault into a handler, or reach a runtime hook
    (call/ret/halt/brk/jumps, where safepoints and therefore icache
    flushes live) ends its block, so the inner loop runs the block tail
    with just the step-limit check, the perf/sampler bookkeeping, and the
    closure call per instruction.  Observable state transitions are the
    exact {!step} sequence; only host-side dispatch overhead differs. *)
let rec run_block_plain t perf ops n i =
  if i < n then begin
    if t.steps_left <= 0 then faultf "step limit exceeded (pc=0x%x)" t.pc;
    t.steps_left <- t.steps_left - 1;
    perf.Perf.instructions <- perf.Perf.instructions + 1;
    t.sb_ix <- i + 1;
    (Array.unsafe_get ops i) t;
    run_block_plain t perf ops n (i + 1)
  end

let rec run_block_sampled t perf observe ops pcs n i =
  if i < n then begin
    if t.steps_left <= 0 then faultf "step limit exceeded (pc=0x%x)" t.pc;
    t.steps_left <- t.steps_left - 1;
    perf.Perf.instructions <- perf.Perf.instructions + 1;
    observe (Array.unsafe_get pcs i);
    t.sb_ix <- i + 1;
    (Array.unsafe_get ops i) t;
    run_block_sampled t perf observe ops pcs n (i + 1)
  end

let rec finish_loop t perf =
  let pc = t.pc in
  let b =
    match t.sb_cur with
    | Some b
      when b.sb_live && t.sb_ix < Array.length b.sb_pcs
           && Array.unsafe_get b.sb_pcs t.sb_ix = pc ->
        b
    | _ ->
        let b = locate_slow t pc in
        t.sb_cur <- Some b;
        t.sb_ix <- 0;
        b
  in
  let ops = b.sb_ops in
  let n = Array.length ops in
  (match t.sampler with
  | None -> run_block_plain t perf ops n t.sb_ix
  | Some observe -> run_block_sampled t perf observe ops b.sb_pcs n t.sb_ix);
  if t.pc <> return_sentinel then finish_loop t perf

let finish t : int =
  (try finish_loop t t.perf with Fault _ as e -> report_trap t e);
  t.regs.(0)

(** {!finish} driven by {!step_ref} — the reference interpreter's run
    loop, for differential comparison against the superblock path. *)
let finish_ref t : int =
  while step_ref t do
    ()
  done;
  t.regs.(0)

(** Call the function at [addr] with up to 6 arguments; runs to completion
    and returns r0.  The machine's memory (globals, heap) persists across
    calls. *)
let call_addr t addr (args : int list) : int =
  start_call_addr t addr args;
  finish t

let call t name args = call_addr t (Image.symbol t.image name) args

(* ------------------------------------------------------------------ *)
(* Stack/PC scanning (the safe-commit quiescence detector)             *)
(* ------------------------------------------------------------------ *)

(** Every code address with a live activation: the current pc plus a
    conservative scan of the simulated stack.  Any stack word that falls
    inside the text section is treated as a potential return address (the
    same over-approximation a conservative garbage collector makes for
    roots); false positives can only delay a deferred patch, never corrupt
    one.  The return sentinel and data words outside text are excluded. *)
let live_code_addrs t : int list =
  let live = if Image.in_text t.image t.pc then [ t.pc ] else [] in
  let sp = t.regs.(Insn.sp) and base = t.stack_base in
  if sp <= 0 || sp > base then live
  else begin
    let acc = ref live in
    let a = ref sp in
    while !a < base do
      let v = Image.read t.image !a 8 in
      if Image.in_text t.image v then acc := v :: !acc;
      a := !a + 8
    done;
    !acc
  end

(** The live call stack as function entry addresses, innermost first.
    Exact (maintained on call/ret), unlike the conservative
    {!live_code_addrs} scan; the stack profiler symbolizes it into folded
    stacks.  Reading it costs nothing on the simulated clock. *)
let call_frames t : int list = t.frames

(** Read/write globals by symbol from the host side (test and benchmark
    drivers use this to set configuration switches). *)
let read_global t name ~width = Image.read t.image (Image.symbol t.image name) width

let write_global t name v ~width = Image.write t.image (Image.symbol t.image name) v width
