(* The SMP container: N harts (each a full [Machine.t] — registers, call
   stack, branch predictor, decode cache) sharing one linked image, driven
   by a deterministic seed-parameterized scheduler.

   Everything the cross-modifying-code story needs lives here:

   - a stop_machine-style rendezvous (IPI post + ack handshake): the
     initiator posts a stop request to every running hart; a hart acks —
     and parks — the next time it is scheduled with interrupts enabled, so
     interrupts-off critical sections delay the ack, which is exactly the
     latency source the rendezvous bench measures;

   - a breakpoint-first [text_poke] (the Linux protocol): first byte of
     the patch range becomes [Brk] (flush), then the tail bytes are
     written (flush), then the real first byte (flush).  A hart that
     fetches mid-poke decodes the trap byte and spins in place instead of
     decoding a torn instruction;

   - per-hart icache coherence: every text mutation flushes every hart's
     decode cache (a chaos hook can break one hart's channel to prove the
     differential oracles catch the resulting staleness).

   One hart with the default policy is bit-identical to a plain
   [Machine.t]: same stack base, same cycle charges, no events. *)

module Image = Mv_link.Image

(** Scheduling policy.  [Round_robin] cycles a cursor over the runnable
    harts; [Weighted_random] picks runnable hart [i] with probability
    proportional to [w.(i)] (missing entries default to weight 1; if every
    runnable hart has weight 0 the lowest-numbered one runs, so weights
    starve harts only while a competitor is runnable). *)
type policy = Round_robin | Weighted_random of int array

(* An in-progress breakpoint-first patch.  [phase] counts completed
   protocol steps: 0 = Brk byte is live, 1 = tail bytes written (Brk still
   live), 2 = real first byte restored — done. *)
type poke = {
  p_addr : int;
  p_bytes : bytes;
  mutable p_phase : int;
}

type t = {
  image : Image.t;
  harts : Machine.t array;
  policy : policy;
  seed : int;
  mutable rng : int;
  mutable rr : int;  (* round-robin cursor: last hart scheduled *)
  parked : bool array;  (* acked a rendezvous; not schedulable *)
  ipi_pending : bool array;
  ipi_sent_at : float array;  (* clock reading at post, for ack latency *)
  mutable rendezvous_active : bool;
  mutable rdv_begin_clock : float;
  mutable rdv_initiator : int;
  mutable rdv_id : int;  (* correlation id of the active (or last) rendezvous *)
  mutable next_rdv : int;  (* id generator *)
  mutable rdv_last_ack : int;  (* straggler: hart whose ack arrived last *)
  mutable cur : int;
      (* the hart that last received a scheduling slot — the attribution
         target for host-driven events (commits, flushes initiated by the
         runtime) that do not name a hart themselves *)
  mutable drop_ack : int option;
      (* chaos: this hart's IPI channel is broken — it is never posted a
         stop request and text flushes skip its icache *)
  mutable slow_ack : (int * int) option;
      (* chaos: (hart, budget) — the victim burns [budget] scheduling
         slots executing instead of acking, a deterministic straggler *)
  mutable poke : poke option;
  mutable tracer : Mv_obs.Trace.sink option;
  (* stats for the bench rows *)
  mutable ipis_sent : int;
  mutable ipi_acks : int;
  mutable rendezvous_count : int;
  mutable rendezvous_cycles : float;
}

(** Bytes of stack carved out per hart below the image's stack base.
    Hart 0 keeps the image default (single-hart bit-identity); hart [i]
    tops out [i] slices lower. *)
let hart_stack_bytes = 65536

let n_harts t = Array.length t.harts
let machine t i = t.harts.(i)

(** Total simulated work: the sum of every hart's cycle counter.  This is
    the deterministic, monotonic clock the IPI/rendezvous latencies are
    measured on (there is no global wall clock in a simulator that steps
    one hart at a time). *)
let clock t =
  Array.fold_left (fun acc m -> acc +. m.Machine.perf.Perf.cycles) 0.0 t.harts

let emit t ev = match t.tracer with None -> () | Some sink -> sink ev

let create ?(policy = Round_robin) ?(seed = 1) ?cost ?platform ?max_steps
    ~n_harts (image : Image.t) : t =
  if n_harts < 1 then invalid_arg "Smp.create: need at least one hart";
  let mk i =
    Machine.create ?cost ?platform ?max_steps ~hart_id:i
      ~stack_base:(image.Image.stack_base - (i * hart_stack_bytes))
      image
  in
  let t =
    {
      image;
      harts = Array.init n_harts mk;
      policy;
      seed;
      rng = (seed * 2654435761) land 0x3FFFFFFFFFFFFFF;
      rr = n_harts - 1;
      parked = Array.make n_harts false;
      ipi_pending = Array.make n_harts false;
      ipi_sent_at = Array.make n_harts 0.0;
      rendezvous_active = false;
      rdv_begin_clock = 0.0;
      rdv_initiator = 0;
      rdv_id = 0;
      next_rdv = 0;
      rdv_last_ack = -1;
      cur = 0;
      drop_ack = None;
      slow_ack = None;
      poke = None;
      tracer = None;
      ipis_sent = 0;
      ipi_acks = 0;
      rendezvous_count = 0;
      rendezvous_cycles = 0.0;
    }
  in
  (* a hart that fetches the poke's trap byte spins until the protocol
     finishes; a Brk anywhere else is a genuine fault *)
  Array.iter
    (fun m ->
      Machine.set_brk_handler m
        (Some
           (fun pc ->
             match t.poke with
             | Some p when p.p_phase < 2 && pc = p.p_addr -> true
             | _ -> false)))
    t.harts;
  t

let set_drop_ack t victim = t.drop_ack <- victim
let set_slow_ack t victim = t.slow_ack <- victim
let current_hart t = t.cur

let set_tracer t sink =
  t.tracer <- sink;
  Array.iter (fun m -> Machine.set_tracer m sink) t.harts

let set_safepoint t hook = Array.iter (fun m -> Machine.set_safepoint m hook) t.harts

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let running t i = t.harts.(i).Machine.pc <> Machine.return_sentinel
let runnable t i = running t i && not t.parked.(i)

(* 48-bit LCG (the drand48 multiplier): deterministic per seed, cheap,
   and independent of OCaml's global Random state. *)
let rand_below t n =
  t.rng <- ((t.rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  (t.rng lsr 17) mod n

let weight t i =
  match t.policy with
  | Round_robin -> 1
  | Weighted_random w -> if i < Array.length w then max 0 w.(i) else 1

(* Pick the next hart to run among runnable ones (minus [exclude]),
   according to the policy; [None] when nothing is runnable. *)
let pick ?(exclude = -1) t =
  let n = n_harts t in
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if i <> exclude && runnable t i then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | [ i ] ->
      t.rr <- i;
      Some i
  | cs -> (
      match t.policy with
      | Round_robin ->
          let rec next j =
            let j = (j + 1) mod n in
            if j <> exclude && runnable t j then j else next j
          in
          let i = next t.rr in
          t.rr <- i;
          Some i
      | Weighted_random _ ->
          let total = List.fold_left (fun acc i -> acc + weight t i) 0 cs in
          if total = 0 then Some (List.hd cs)
          else begin
            let r = rand_below t total in
            let rec walk acc = function
              | [] -> List.hd cs (* unreachable: r < total *)
              | i :: rest ->
                  let acc = acc + weight t i in
                  if r < acc then i else walk acc rest
            in
            Some (walk 0 cs)
          end)

let ack t i =
  t.ipi_pending.(i) <- false;
  t.parked.(i) <- true;
  t.ipi_acks <- t.ipi_acks + 1;
  t.rdv_last_ack <- i;
  emit t
    (Mv_obs.Trace.Ipi_ack
       {
         rdv = t.rdv_id;
         hart = i;
         wait = clock t -. t.ipi_sent_at.(i);
         at = t.harts.(i).Machine.pc;
       });
  emit t
    (Mv_obs.Trace.Causal_edge
       { edge = "ipi"; id = t.rdv_id; src_hart = t.rdv_initiator; dst_hart = i })

(* The slow-ack chaos victim keeps executing for [budget] more slots
   before acknowledging — a deterministic straggler for the blame
   report. *)
let slow_ack_defers t i =
  match t.slow_ack with
  | Some (victim, budget) when victim = i && budget > 0 ->
      t.slow_ack <- Some (victim, budget - 1);
      true
  | _ -> false

(** Give hart [i] one scheduling slot: if it owes a rendezvous ack and
    interrupts are enabled it acks (and parks) instead of executing;
    otherwise it executes one instruction.  Returns [false] when the hart
    was not runnable (halted or parked) and nothing happened. *)
let step_hart t i =
  if not (runnable t i) then false
  else begin
    t.cur <- i;
    let m = t.harts.(i) in
    if t.ipi_pending.(i) && m.Machine.irq_enabled && not (slow_ack_defers t i)
    then ack t i
    else ignore (Machine.step m);
    true
  end

(** One global scheduler step: pick a runnable hart by policy and give it
    a slot.  [false] when every hart is halted (or parked). *)
let step t = match pick t with None -> false | Some i -> step_hart t i

(** Drive the whole system until no hart is runnable. *)
let run t =
  while step t do
    ()
  done

let start_call t ~hart name args = Machine.start_call t.harts.(hart) name args
let result t ~hart = t.harts.(hart).Machine.regs.(0)

(* ------------------------------------------------------------------ *)
(* The rendezvous (stop_machine)                                       *)
(* ------------------------------------------------------------------ *)

(** [true] once every posted stop request has been acknowledged. *)
let rendezvous_complete t = not (Array.exists Fun.id t.ipi_pending)

(** Post stop requests for a rendezvous initiated by [initiator]: every
    other running hart is sent an IPI (halted harts are already quiescent
    and owe nothing).  Returns the number of harts that must ack.  Drive
    the acks with {!step_hart}/{!step} — or use {!stop_machine}, which
    does all of this — then apply the patch with {!rendezvous_finish}. *)
let rendezvous_post t ~initiator =
  if t.rendezvous_active then invalid_arg "Smp.rendezvous_post: already active";
  t.rendezvous_active <- true;
  t.rdv_initiator <- initiator;
  t.rdv_begin_clock <- clock t;
  t.rendezvous_count <- t.rendezvous_count + 1;
  t.rdv_id <- t.next_rdv;
  t.next_rdv <- t.next_rdv + 1;
  t.rdv_last_ack <- -1;
  let waiting = ref 0 in
  Array.iteri
    (fun i _ ->
      if i <> initiator && running t i && t.drop_ack <> Some i then begin
        t.ipi_pending.(i) <- true;
        t.ipi_sent_at.(i) <- clock t;
        t.ipis_sent <- t.ipis_sent + 1;
        incr waiting;
        emit t
          (Mv_obs.Trace.Ipi_send { rdv = t.rdv_id; from_hart = initiator; to_hart = i })
      end)
    t.harts;
  emit t (Mv_obs.Trace.Rendezvous_begin { rdv = t.rdv_id; initiator; waiting = !waiting });
  !waiting

(** Apply [f] at the gathered rendezvous and release every hart.  Raises
    if some ack is still outstanding. *)
let rendezvous_finish t f =
  if not t.rendezvous_active then invalid_arg "Smp.rendezvous_finish: not active";
  if not (rendezvous_complete t) then
    raise (Machine.Fault "rendezvous_finish: acks outstanding");
  let acks = ref 0 in
  Array.iteri (fun i p -> if p && i <> t.rdv_initiator then incr acks) t.parked;
  let finally () =
    Array.fill t.parked 0 (Array.length t.parked) false;
    t.rendezvous_active <- false
  in
  Fun.protect ~finally (fun () ->
      let r = f () in
      let latency = clock t -. t.rdv_begin_clock in
      t.rendezvous_cycles <- t.rendezvous_cycles +. latency;
      emit t
        (Mv_obs.Trace.Rendezvous_end
           { rdv = t.rdv_id; initiator = t.rdv_initiator; acks = !acks; latency });
      (* the straggler's ack is what released the rendezvous *)
      if !acks > 0 && t.rdv_last_ack >= 0 then
        emit t
          (Mv_obs.Trace.Causal_edge
             {
               edge = "rendezvous";
               id = t.rdv_id;
               src_hart = t.rdv_last_ack;
               dst_hart = t.rdv_initiator;
             });
      r)

(* Harts still owing an ack are either executing (step them until they
   reach an interrupts-enabled scheduling slot) or have halted since the
   post (quiescent by definition: ack on their behalf). *)
let rendezvous_drive t =
  let budget = ref 10_000_000 in
  while not (rendezvous_complete t) do
    decr budget;
    if !budget < 0 then
      raise (Machine.Fault "rendezvous: harts failed to ack (deadlock)");
    Array.iteri
      (fun i pending -> if pending && not (running t i) then ack t i)
      t.ipi_pending;
    if not (rendezvous_complete t) then
      match pick ~exclude:t.rdv_initiator t with
      | Some i -> ignore (step_hart t i)
      | None -> raise (Machine.Fault "rendezvous: no runnable hart left to ack")
  done

(** [stop_machine t f] runs [f] with every other hart parked at an
    interrupts-enabled instruction boundary — the kernel's stop_machine.
    Re-entrant: a nested call (e.g. a safepoint drain triggered while a
    rendezvous holds the system) runs [f] directly under the outer
    rendezvous' protection.  Initiated by hart 0 by convention (patching
    is driven from the boot hart, as in the paper's kernel use case). *)
let stop_machine t f =
  if t.rendezvous_active then f ()
  else begin
    ignore (rendezvous_post t ~initiator:0);
    (try rendezvous_drive t
     with e ->
       (* release whatever parked so the machine is not wedged *)
       Array.fill t.parked 0 (Array.length t.parked) false;
       Array.fill t.ipi_pending 0 (Array.length t.ipi_pending) false;
       t.rendezvous_active <- false;
       raise e);
    rendezvous_finish t f
  end

(* ------------------------------------------------------------------ *)
(* Cross-modifying text writes (text_poke)                             *)
(* ------------------------------------------------------------------ *)

(** Flush the patched range out of every hart's decode cache (the chaos
    victim's broken channel is skipped, modelling a missed flush IPI). *)
let flush_icache t ~addr ~len =
  Array.iteri
    (fun i m -> if t.drop_ack <> Some i then Machine.flush_icache m ~addr ~len)
    t.harts

let brk_byte = Char.chr (Mv_isa.Insn.opcode Mv_isa.Insn.Brk)

let poke_write t ~addr (b : bytes) =
  let len = Bytes.length b in
  let restore_to = Image.prot_at t.image addr in
  Image.mprotect t.image ~addr ~len Image.prot_rwx;
  Fun.protect
    ~finally:(fun () -> Image.mprotect t.image ~addr ~len restore_to)
    (fun () -> Image.write_bytes t.image addr b)

(** Begin a breakpoint-first patch of [bytes] at [addr]: the first byte of
    the range becomes [Brk] and every hart's icache drops it, so any hart
    arriving at [addr] spins on the trap instead of decoding a torn
    instruction.  Advance with {!text_poke_step}. *)
let text_poke_start t ~addr (b : bytes) =
  if t.poke <> None then invalid_arg "Smp.text_poke_start: poke in progress";
  if Bytes.length b = 0 then invalid_arg "Smp.text_poke_start: empty patch";
  t.poke <- Some { p_addr = addr; p_bytes = b; p_phase = 0 };
  poke_write t ~addr (Bytes.make 1 brk_byte);
  flush_icache t ~addr ~len:1

(** Run the next phase of the in-progress poke; [true] once the real
    first byte is live and the poke is finished. *)
let text_poke_step t =
  match t.poke with
  | None -> invalid_arg "Smp.text_poke_step: no poke in progress"
  | Some p when p.p_phase = 0 ->
      (* tail bytes land while the trap byte still guards the entry *)
      let len = Bytes.length p.p_bytes in
      if len > 1 then begin
        poke_write t ~addr:(p.p_addr + 1) (Bytes.sub p.p_bytes 1 (len - 1));
        flush_icache t ~addr:(p.p_addr + 1) ~len:(len - 1)
      end;
      p.p_phase <- 1;
      false
  | Some p ->
      poke_write t ~addr:p.p_addr (Bytes.sub p.p_bytes 0 1);
      flush_icache t ~addr:p.p_addr ~len:1;
      p.p_phase <- 2;
      t.poke <- None;
      true

(** The whole protocol, synchronously: Brk first byte, tail bytes, real
    first byte, with per-hart flushes between phases.  This is the writer
    the runtime's patch layer routes every text mutation through. *)
let text_poke t ~addr b =
  text_poke_start t ~addr b;
  while not (text_poke_step t) do
    ()
  done

(* ------------------------------------------------------------------ *)
(* Cross-hart aggregates (quiescence and profiling feeds)              *)
(* ------------------------------------------------------------------ *)

(** Live code addresses across {e every} hart — the SMP quiescence
    source for [Runtime.set_live_scanner]: a patch is deferrable work as
    long as any hart has an activation in the range. *)
let live_code_addrs t =
  Array.fold_left (fun acc m -> List.rev_append (Machine.live_code_addrs m) acc) []
    t.harts

(** Call frames across every hart, hart 0 first (each hart's own frames
    stay innermost-first). *)
let call_frames t =
  List.concat_map Machine.call_frames (Array.to_list t.harts)

let read_global t name ~width = Machine.read_global t.harts.(0) name ~width
let write_global t name v ~width = Machine.write_global t.harts.(0) name v ~width

(* stats accessors for the bench rows *)
let ipis_sent t = t.ipis_sent
let ipi_acks t = t.ipi_acks
let rendezvous_count t = t.rendezvous_count
let rendezvous_cycles t = t.rendezvous_cycles
let seed t = t.seed
