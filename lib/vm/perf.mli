(** Performance counters, in the spirit of the paper's TSC /
    CPU_CLK_UNHALTED measurements (Section 6) and the branch counts
    reported for musl ("-40% branches for malloc(1)"). *)

type t = {
  mutable cycles : float;
  mutable instructions : int;
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable calls : int;
  mutable indirect_calls : int;
  mutable btb_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable atomics : int;
  mutable hypercalls : int;
  mutable icache_flushes : int;
}

(** Fresh counters, all zero. *)
val create : unit -> t

(** Immutable counter snapshot. *)
type snapshot = {
  s_cycles : float;
  s_instructions : int;
  s_branches : int;
  s_branch_mispredicts : int;
  s_calls : int;
  s_indirect_calls : int;
  s_btb_misses : int;
  s_loads : int;
  s_stores : int;
  s_atomics : int;
  s_hypercalls : int;
  s_icache_flushes : int;
}

(** Capture the current counter values. *)
val snapshot : t -> snapshot

(** [diff a b] is the counter delta from [a] to [b]. *)
val diff : snapshot -> snapshot -> snapshot

(** One-counter-per-line rendering of a snapshot. *)
val pp : Format.formatter -> snapshot -> unit
