(** Performance counters, in the spirit of the paper's TSC /
    CPU_CLK_UNHALTED measurements (Section 6) and the branch counts
    reported for musl ("-40% branches for malloc(1)"). *)

type t = {
  mutable cycles : float;
  mutable instructions : int;
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable calls : int;
  mutable indirect_calls : int;
  mutable btb_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable atomics : int;
  mutable hypercalls : int;
  mutable icache_flushes : int;
}

(** Fresh counters, all zero. *)
val create : unit -> t

(** Immutable counter snapshot. *)
type snapshot = {
  s_cycles : float;
  s_instructions : int;
  s_branches : int;
  s_branch_mispredicts : int;
  s_calls : int;
  s_indirect_calls : int;
  s_btb_misses : int;
  s_loads : int;
  s_stores : int;
  s_atomics : int;
  s_hypercalls : int;
  s_icache_flushes : int;
}

(** Capture the current counter values. *)
val snapshot : t -> snapshot

(** [diff a b] is the counter delta from [a] to [b]. *)
val diff : snapshot -> snapshot -> snapshot

(** {1 Derived metrics}

    The ratios the paper's evaluation argues with; all return [0.0] when
    the denominator is zero (an empty delta). *)

(** Instructions per cycle. *)
val ipc : snapshot -> float

(** Mispredicted fraction of executed conditional branches, in [0, 1]. *)
val mispredict_rate : snapshot -> float

(** Mean cycles per executed call instruction. *)
val cycles_per_call : snapshot -> float

(** One-counter-per-line rendering of a snapshot, raw counters followed
    by the derived {!ipc}/{!mispredict_rate}/{!cycles_per_call} block. *)
val pp : Format.formatter -> snapshot -> unit

(** Snapshot as a JSON object (raw counters plus derived metrics) — the
    machine's third of the unified metrics export
    ([Mv_obs.Export.metrics]). *)
val snapshot_json : snapshot -> Mv_obs.Json.t
