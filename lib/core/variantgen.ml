(* Ahead-of-time variant generation (Section 3 of the paper).

   For every function marked [multiverse], the generator:
   1. collects the configuration switches the function *reads* (restricted
      by an optional [bind(..)] attribute — partial specialization);
   2. builds the cross product of their specialization domains;
   3. clones the IR body once per assignment and replaces each switch read
      by the assigned constant — *before* optimization, so constant
      propagation, branch folding and dead-code elimination specialize the
      clone perfectly;
   4. merges clones whose bodies are structurally equal after optimization
      and derives range guards that cover the merged assignments (the
      "multi.A=0.B=01" case of Figure 2).

   The generic body is never inlined (the lowering marks multiversed
   functions noinline) and remains the fallback for out-of-domain values. *)

module Ir = Mv_ir.Ir

type variant = {
  v_symbol : string;
  v_fn : Ir.fn;
  v_guards : Guard.t list;  (** one descriptor record per box *)
  v_assignments : (string * int) list list;
}

type mv_function = {
  mf_name : string;
  mf_switches : string list;  (** bound switches, sorted by name *)
  mf_variants : variant list;
}

(** Everything the runtime needs to specialize one multiversed function
    on demand: the safepointed but unoptimized generic body and the bound
    switches with their domains. *)
type recipe = {
  rc_name : string;
  rc_body : Ir.fn;
  rc_switches : (string * int list) list;  (** sorted by name *)
}

type result = {
  r_prog : Ir.prog;  (** input program with variant functions appended *)
  r_functions : mv_function list;
  r_recipes : recipe list;  (** lazy mode only; [[]] under eager generation *)
  r_warnings : string list;
}

(** Cap on the assignment cross product per function; beyond it we keep only
    the generic variant and warn (the paper's answer to variant explosion is
    explicit developer control via [values(..)] and [bind(..)],
    Section 7.1). *)
let default_max_variants = 128

let switch_globals (prog : Ir.prog) : (string * Ir.global) list =
  List.filter_map
    (fun (g : Ir.global) -> if g.gl_multiverse then Some (g.gl_name, g) else None)
    (prog.p_globals @ prog.p_extern_globals)

(* ------------------------------------------------------------------ *)
(* Specialization                                                      *)
(* ------------------------------------------------------------------ *)

(** Insert one stable OSR safepoint id after every call.  Ids are assigned
    {e before} cloning so the generic body and every clone agree on which
    program point each id names — the descriptor frame maps and the
    runtime's transfer engine are keyed by them.  A clone may lose some ids
    to dead-code elimination; the transfer engine treats a missing target
    id as "stay deferred". *)
let insert_safepoints (fn : Ir.fn) : unit =
  let next = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.b_instrs <-
        List.concat_map
          (fun i ->
            match i with
            | Ir.Icall _ | Ir.Icallp _ ->
                let id = !next in
                incr next;
                [ i; Ir.Isafepoint id ]
            | _ -> [ i ])
          b.b_instrs)
    fn.fn_blocks

(** Replace every read of [switches] (an assignment) with its constant. *)
let bind_switches (fn : Ir.fn) (assignment : (string * int) list) : unit =
  List.iter
    (fun (b : Ir.block) ->
      b.b_instrs <-
        List.map
          (fun i ->
            match i with
            | Ir.Iloadg (d, sym, _) -> (
                match List.assoc_opt sym assignment with
                | Some v -> Ir.Imov (d, Ir.Imm v)
                | None -> i)
            | _ -> i)
          b.b_instrs)
    fn.fn_blocks

let value_token values =
  if List.for_all (fun v -> v >= 0 && v <= 9) values then
    String.concat "" (List.map string_of_int values)
  else String.concat "," (List.map string_of_int values)

(** Symbol name for a (possibly merged) variant: "fn.A=1.B=01". *)
let variant_symbol fn_name (switches : string list) (assignments : (string * int) list list) =
  let per_var = Guard.values_per_var assignments in
  let parts =
    List.map
      (fun var ->
        let values = Option.value ~default:[] (Guard.Smap.find_opt var per_var) in
        Printf.sprintf "%s=%s" var (value_token values))
      switches
  in
  String.concat "." (fn_name :: parts)

let specialize_one (fn : Ir.fn) (assignment : (string * int) list) : Ir.fn =
  let clone = Ir.copy_fn fn in
  let clone = { clone with Ir.fn_multiverse = false; fn_bind = None } in
  bind_switches clone assignment;
  Mv_opt.Pass.optimize_fn clone;
  clone

(** Structural hash of a function body: hex digest of the canonical form
    (blocks in RPO, registers renamed by first occurrence), so equal
    bodies collide across functions and the value is stable across runs —
    no physical equality or address dependence anywhere. *)
let structural_hash (fn : Ir.fn) : string =
  Digest.to_hex (Digest.string (Mv_opt.Merge.canonical_form fn))

(** The switches [fn] reads (restricted by [bind(..)]) together with
    their specialization domains, sorted by name; function-pointer
    switches are dropped with a warning (bound at commit time). *)
let bound_domains (switches : (string * Ir.global) list) (fn : Ir.fn) :
    (string * int list) list * string list =
  let warnings = ref [] in
  let read = Ir.read_globals fn in
  let bound =
    List.filter
      (fun (name, _) ->
        List.mem name read
        &&
        match fn.fn_bind with
        | Some allowed -> List.mem name allowed
        | None -> true)
      switches
  in
  let bound =
    List.filter
      (fun ((name, g) : string * Ir.global) ->
        match Domain.of_global g with
        | Domain.Values _ -> true
        | Domain.Fnptr ->
            warnings :=
              Printf.sprintf
                "%s: function-pointer switch %s is bound at commit time, not specialized"
                fn.fn_name name
              :: !warnings;
            false)
      bound
  in
  let bound = List.sort (fun (a, _) (b, _) -> compare a b) bound in
  let domains =
    List.map
      (fun ((name, g) : string * Ir.global) ->
        match Domain.of_global g with
        | Domain.Values vs -> (name, vs)
        | Domain.Fnptr -> assert false)
      bound
  in
  (domains, List.rev !warnings)

(** Specialize one recipe for one point assignment (first-commit
    materialization).  The caller guarantees the assignment covers
    exactly [rc_switches]. *)
let specialize_recipe (r : recipe) (assignment : (string * int) list) : variant =
  let clone = specialize_one r.rc_body assignment in
  let names = List.map fst r.rc_switches in
  let symbol = variant_symbol r.rc_name names [ assignment ] in
  {
    v_symbol = symbol;
    v_fn = { clone with Ir.fn_name = symbol };
    v_guards = Guard.boxes_of_assignments [ assignment ];
    v_assignments = [ assignment ];
  }

(** Generate variants for one multiversed function. *)
let generate_for_fn ~max_variants (switches : (string * Ir.global) list) (fn : Ir.fn) :
    mv_function * Ir.fn list * string list =
  let domains, dwarnings = bound_domains switches fn in
  let warnings = ref (List.rev dwarnings) in
  let names = List.map fst domains in
  if domains = [] then
    ({ mf_name = fn.fn_name; mf_switches = []; mf_variants = [] }, [], !warnings)
  else if Domain.cross_product_size domains > max_variants then begin
    warnings :=
      Printf.sprintf
        "%s: cross product of %d assignments exceeds the cap of %d; only the generic variant is kept (constrain the domains with values(..) or bind(..))"
        fn.fn_name
        (Domain.cross_product_size domains)
        max_variants
      :: !warnings;
    ({ mf_name = fn.fn_name; mf_switches = names; mf_variants = [] }, [], !warnings)
  end
  else begin
    let assignments = Domain.cross_product domains in
    let specialized =
      List.map (fun assignment -> (assignment, specialize_one fn assignment)) assignments
    in
    (* merge structurally equal bodies, keeping assignment order stable *)
    let groups : (string, (string * int) list list ref * Ir.fn) Hashtbl.t =
      Hashtbl.create 8
    in
    let order = ref [] in
    List.iter
      (fun (assignment, clone) ->
        let key = Mv_opt.Merge.canonical_form clone in
        match Hashtbl.find_opt groups key with
        | Some (assignments_ref, _) -> assignments_ref := assignment :: !assignments_ref
        | None ->
            Hashtbl.replace groups key (ref [ assignment ], clone);
            order := key :: !order)
      specialized;
    let variants =
      List.rev_map
        (fun key ->
          let assignments_ref, clone = Hashtbl.find groups key in
          let assignments = List.rev !assignments_ref in
          let symbol = variant_symbol fn.fn_name names assignments in
          let fn = { clone with Ir.fn_name = symbol } in
          {
            v_symbol = symbol;
            v_fn = fn;
            v_guards = Guard.boxes_of_assignments assignments;
            v_assignments = assignments;
          })
        !order
    in
    ( { mf_name = fn.fn_name; mf_switches = names; mf_variants = variants },
      List.map (fun v -> v.v_fn) variants,
      !warnings )
  end

(** Run variant generation over a whole translation unit.  The generic
    functions are optimized in place; variant functions are appended to the
    program so they are emitted like ordinary code.

    With [lazy_variants] the cross product is never expanded: no variant
    functions are generated or appended, and instead each multiversed
    function yields a {!recipe} — a clone of its safepointed,
    {e unoptimized} body plus the bound switch domains — from which the
    runtime materializes single-assignment variants on first commit.  The
    per-function descriptor records are emitted with zero variants. *)
let generate ?(max_variants = default_max_variants) ?(lazy_variants = false)
    (prog : Ir.prog) : result =
  let switches = switch_globals prog in
  let warnings = ref [] in
  let mv_functions = ref [] in
  let recipes = ref [] in
  let new_fns = ref [] in
  List.iter
    (fun (fn : Ir.fn) ->
      if fn.fn_multiverse then begin
        insert_safepoints fn;
        if lazy_variants then begin
          (* clone before the in-place optimization below: specialization
             must bind switch reads before constant propagation sees them *)
          let pristine = Ir.copy_fn fn in
          let domains, w = bound_domains switches fn in
          mv_functions :=
            { mf_name = fn.fn_name; mf_switches = List.map fst domains;
              mf_variants = [] }
            :: !mv_functions;
          if domains <> [] then
            recipes :=
              { rc_name = fn.fn_name; rc_body = pristine; rc_switches = domains }
              :: !recipes;
          warnings := List.rev_append w !warnings
        end
        else begin
          let mf, variants, w = generate_for_fn ~max_variants switches fn in
          mv_functions := mf :: !mv_functions;
          new_fns := List.rev_append variants !new_fns;
          warnings := List.rev_append w !warnings
        end
      end)
    prog.p_fns;
  (* optimize the generic functions too — all passes except inlining apply
     to multiversed functions (Section 7.1), and we have no inliner at all *)
  List.iter Mv_opt.Pass.optimize_fn prog.p_fns;
  let prog = { prog with Ir.p_fns = prog.p_fns @ List.rev !new_fns } in
  {
    r_prog = prog;
    r_functions = List.rev !mv_functions;
    r_recipes = List.rev !recipes;
    r_warnings = List.rev !warnings;
  }
