(* The multiverse run-time library (Section 4, API of Table 1).

   The runtime interprets the binary descriptor sections of a linked image,
   selects variants according to the current configuration-switch values,
   and installs them by binary patching:

   - every recorded call site of the function is retargeted to the variant,
     or — when the variant body is smaller than the call instruction —
     the body is inlined into the call site (empty bodies become nops);
   - the prologue of the generic function is overwritten with an
     unconditional jump to the variant, which catches calls the compiler
     could not see (function pointers, foreign code): completeness,
     Section 7.4.

   If no variant's guards match the current values, the runtime reverts the
   function to its generic state and signals the situation via
   [fallbacks].

   Like the paper's library, the runtime deliberately performs no
   synchronization: the caller must ensure the program is in a patchable
   state (Section 2).

   Note on signedness: descriptor records carry the declared signedness of
   each switch, but sub-word switch values are evaluated zero-extended,
   matching the machine's sub-word loads; use full-width (8-byte) switches
   for negative domain values. *)

module Image = Mv_link.Image
module Insn = Mv_isa.Insn
module Trace = Mv_obs.Trace
module Objfile = Mv_codegen.Objfile
module Emit = Mv_codegen.Emit

type site_state =
  | Site_original
  | Site_retargeted of int  (** direct call to this address *)
  | Site_inlined of int  (** body of this variant inlined *)

type site = {
  s_addr : int;
  s_size : int;  (** 5 for direct calls, 6 for indirect *)
  s_original : bytes;
  mutable s_state : site_state;
  mutable s_written : bytes;  (** what we believe the site holds *)
}

type fn_entry = {
  fe_name : string;
  fe_record : Descriptor.function_record;
  mutable fe_variants : Descriptor.variant_record list;
      (** the selectable variants: the parsed descriptor records, plus —
          under lazy materialization — every alias the runtime has linked
          so far (and minus the evicted ones) *)
  fe_sites : site list;
  mutable fe_prologue : bytes option;  (** saved generic prologue *)
  mutable fe_saved_body : bytes option;  (** saved generic body (body patching) *)
  mutable fe_installed : int option;  (** installed variant address *)
}

type fnptr_entry = {
  fp_name : string;
  fp_var : Descriptor.variable;
  fp_sites : site list;
  mutable fp_committed : int option;
}

(* --- The safe-commit subsystem (beyond the paper, closing its Section 2
   "caller guarantees a patchable state" gap) ------------------------------

   A deferred patch is journaled as an [action]; one [commit_safe] or
   [revert_safe] call produces at most one [pending_set], which is applied
   transactionally — all actions or none — at a later quiescence point. *)

type pending_action =
  | Act_bind of fn_entry * Descriptor.variant_record
      (** install this variant for the function *)
  | Act_unbind of fn_entry  (** revert the function to its generic state *)
  | Act_bind_ptr of fnptr_entry * int
      (** bind the fn-pointer switch to the target captured at commit time *)
  | Act_unbind_ptr of fnptr_entry  (** restore the indirect call sites *)

type pending_set = {
  pset_id : int;
  pset_cid : int;
      (** causality id of the commit/revert that journaled this set — the
          [cid] its eventual [Pending_drained] event reports *)
  pset_hart : int;  (** hart the journaling commit ran on *)
  pset_actions : pending_action list;
}

(** Counters for the safe-commit paths (surfaced through {!stats}). *)
type safe_counters = {
  mutable sc_deferred : int;  (** actions journaled instead of applied *)
  mutable sc_denied : int;  (** actions refused under the [Deny] policy *)
  mutable sc_superseded : int;  (** journaled actions dropped by a newer commit *)
  mutable sc_applied : int;  (** deferred actions applied at a safepoint *)
  mutable sc_rolled_back : int;  (** pending sets rolled back mid-apply *)
  mutable sc_polls : int;  (** safepoint invocations *)
  mutable sc_osr_transfers : int;  (** live activations moved between bodies *)
  mutable sc_osr_aborts : int;
      (** transfers abandoned because the frame maps did not line up *)
}

(* --- On-stack replacement (the ROADMAP's unbounded-drain-latency fix) ----

   A never-returning activation (event loop, scheduler) keeps its function's
   body live forever, so a deferred patch for it would never drain.  With
   frame maps ([multiverse.framemaps]) the safepoint can instead *move* the
   activation: read every live virtual register out of the source frame,
   rebuild the frame in the target body's layout, and resume at the
   equivalent program point of the target.  The runtime stays VM-agnostic:
   it manipulates the hart through a closure record the harness wires to
   [Mv_vm.Machine]. *)

(** Accessors for the hart currently parked at a safepoint.  [oh_mem] /
    [oh_set_mem] operate on 8-byte words at absolute addresses. *)
type osr_hart = {
  oh_hart : int;
  oh_pc : unit -> int;
  oh_set_pc : int -> unit;
  oh_reg : int -> int;
  oh_set_reg : int -> int -> unit;
  oh_mem : int -> int;
  oh_set_mem : int -> int -> unit;
  oh_set_top_frame : int -> unit;
}

(* --- Lazy variant materialization (demand-driven specialization) ---------

   With [enable_lazy] the image carries no pre-expanded variants; instead
   the compiler hands over one specialization recipe per multiversed
   function.  The first commit of an unseen switch valuation specializes
   the recipe, optimizes and assembles the body, and links it into the
   image's reserved variant-text region.  Bodies are cached under their
   post-optimization canonical form — the same key the eager pipeline
   merges equal clones by — so a structurally equal body is never stored
   twice: a hash hit adds only a descriptor alias.  A configurable byte
   budget bounds residency; eviction drops cold aliases (advisor-ordered,
   least-recently-selected as the deterministic fallback) and routes
   installed victims through the existing revert / safe-commit / OSR
   machinery. *)

(** One resident variant body, shared by every alias whose specialized
    clone has the same canonical form. *)
type dedup_entry = {
  de_addr : int;  (** body address in the variant-text region *)
  de_size : int;  (** encoded body size *)
  de_alloc : int;  (** allocated block size (16-aligned) *)
  mutable de_refs : int;  (** descriptor aliases sharing the body *)
}

(** Book-keeping for one materialized descriptor alias. *)
type mat_info = {
  mi_fn : fn_entry;
  mi_key : string;  (** the body's canonical form — its dedup key *)
  mi_record : Descriptor.variant_record;
}

type lazy_state = {
  lz_recipes : (string, Variantgen.recipe) Hashtbl.t;  (** by function symbol *)
  lz_call_pad : string -> int;
      (** the program's call-site padding rule, so materialized bodies are
          assembled byte-compatible with the eager pipeline's *)
  mutable lz_budget : int;  (** resident variant-text byte budget *)
  mutable lz_cursor : int;  (** bump pointer into the variant-text region *)
  mutable lz_free : (int * int) list;
      (** freed (addr, size) blocks, address-sorted and coalesced *)
  lz_dedup : (string, dedup_entry) Hashtbl.t;  (** canonical form -> body *)
  lz_variants : (string, mat_info) Hashtbl.t;  (** by variant symbol *)
  mutable lz_bytes : int;  (** resident bytes (unique blocks, alloc-sized) *)
  mutable lz_tick : int;  (** LRU clock, bumped per selection *)
  lz_lru : (string, int) Hashtbl.t;  (** variant symbol -> last-selected tick *)
  mutable lz_evict_pending : string list;
      (** victims whose body still has a live activation (or an undrained
          unbind): freed at a later safepoint, oldest first *)
  mutable lz_advisor : (unit -> string list) option;
      (** preferred eviction order (e.g. [Heat.evict_plan] victims) *)
  mutable lz_stale_cache : bool;
      (** fuzzing chaos: skip the dedup-table invalidation on free, so a
          later hash hit links a recycled block (must be caught by the
          lazy-eager-equiv oracle) *)
  (* counters, surfaced through [stats] *)
  mutable lz_materialized : int;
  mutable lz_dedup_hits : int;
  mutable lz_cache_hits : int;
  mutable lz_evictions : int;
  mutable lz_budget_denials : int;
}

type t = {
  image : Image.t;
  patch : Patch.t;
  variables : Descriptor.variable list;
  functions : fn_entry list;
  fnptrs : fnptr_entry list;
  mutable fallbacks : string list;  (** functions left generic by the last commit *)
  mutable skipped_sites : (int * string) list;  (** verification failures *)
  mutable inline_enabled : bool;  (** call-site body inlining (Section 4); on by default *)
  mutable strategy : strategy;
  mutable live_scanner : (unit -> int list) option;
      (** reports code addresses with live activations (pc + return
          addresses); wire to [Machine.live_code_addrs] *)
  mutable pending : pending_set list;  (** deferred patch sets, oldest first *)
  mutable next_pset_id : int;
  mutable next_cid : int;  (** commit causality id generator *)
  mutable cur_cid : int;  (** cid of the span currently open (-1: none) *)
  mutable hart_src : (unit -> int) option;
      (** reports the currently-executing hart for causal attribution of
          commit/drain events; wire to [Smp.current_hart] (default:
          hart 0) *)
  mutable in_safepoint : bool;  (** reentrancy guard for {!safepoint} *)
  safe : safe_counters;
  mutable tracer : (Trace.event -> unit) option;
      (** optional event sink; every patching decision is reported through
          it, and with [None] installed the emit sites reduce to one match
          (pay-for-use, like the safepoint hook) *)
  mutable barrier : ((unit -> unit) -> unit) option;
      (** cross-modifying-code barrier: when set, every patching operation
          (commit/revert and their safe/func/refs variants, plus the
          safepoint drain) runs inside it.  Wire to [Smp.stop_machine] so
          patches only land with every other hart parked at an
          interrupts-enabled instruction boundary.  Must be re-entrant:
          nested operations run their thunk directly. *)
  mutable framemaps : Descriptor.framemap_record list;
      (** parsed [multiverse.framemaps] records, one per multiversed body;
          lazy materialization appends a host-built record per fresh body
          (and drops it again on eviction) *)
  mutable osr : (unit -> osr_hart) option;
      (** accessors for the hart currently polling a safepoint; the harness
          wires them to [Mv_vm.Machine].  With [None] installed, safepoints
          never attempt on-stack replacement. *)
  mutable lazy_st : lazy_state option;  (** demand-driven variant cache *)
}

(** How variants are installed.

    [Call_site_patching] is the paper's design: retarget (or inline into)
    every recorded call site, plus the completeness jump in the generic
    prologue.

    [Body_patching] is the alternative Section 7.1 weighs and rejects:
    copy the (relocated) variant body over the generic body.  It patches
    one location per function instead of one per call site — faster to
    commit — but requires the runtime to relocate variant bodies, and falls
    back to a prologue jump when the variant is larger than the generic. *)
and strategy = Call_site_patching | Body_patching

exception Runtime_error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* The compiler may nop-pad call sites of multiversed symbols so larger
   bodies can be inlined (Section 7.1's "adjusting the sizes of call sites").
   At attach time nothing has been patched yet, so nops directly following
   the recorded call instruction can only be that padding; they become part
   of the site. *)
let max_callsite_padding = 10

let site_of_callsite (img : Image.t) (cs : Descriptor.callsite) : site =
  let _, insn_size = Mv_isa.Decode.decode img.Image.mem ~off:cs.cs_site in
  let nop = Char.chr (Insn.opcode Insn.Nop) in
  let rec pad_len k =
    if k >= max_callsite_padding then k
    else if Bytes.get img.Image.mem (cs.cs_site + insn_size + k) = nop then pad_len (k + 1)
    else k
  in
  let size = insn_size + pad_len 0 in
  let original = Image.read_bytes img cs.cs_site size in
  {
    s_addr = cs.cs_site;
    s_size = size;
    s_original = original;
    s_state = Site_original;
    s_written = original;
  }

let name_of img addr =
  match Image.symbol_at img addr with
  | Some name -> name
  | None -> Printf.sprintf "<0x%x>" addr

(** Attach a runtime to a linked image.  [flush] is called after every text
    patch with the affected range (wire it to the machine's instruction-
    cache flush). *)
let create (img : Image.t) ~flush : t =
  let variables = Descriptor.parse_variables img in
  let fn_records = Descriptor.parse_functions img in
  let callsites = Descriptor.parse_callsites img in
  let functions =
    List.map
      (fun (fr : Descriptor.function_record) ->
        let sites =
          List.filter_map
            (fun (cs : Descriptor.callsite) ->
              if cs.cs_target = fr.fd_generic then Some (site_of_callsite img cs)
              else None)
            callsites
        in
        {
          fe_name = name_of img fr.fd_generic;
          fe_record = fr;
          fe_variants = fr.fd_variants;
          fe_sites = sites;
          fe_prologue = None;
          fe_saved_body = None;
          fe_installed = None;
        })
      fn_records
  in
  let fnptrs =
    List.filter_map
      (fun (v : Descriptor.variable) ->
        if not v.vr_fnptr then None
        else
          let sites =
            List.filter_map
              (fun (cs : Descriptor.callsite) ->
                if cs.cs_target = v.vr_addr then Some (site_of_callsite img cs) else None)
              callsites
          in
          Some
            {
              fp_name = name_of img v.vr_addr;
              fp_var = v;
              fp_sites = sites;
              fp_committed = None;
            })
      variables
  in
  {
    image = img;
    patch = Patch.create img ~flush;
    variables;
    functions;
    fnptrs;
    fallbacks = [];
    skipped_sites = [];
    inline_enabled = true;
    strategy = Call_site_patching;
    live_scanner = None;
    pending = [];
    next_pset_id = 0;
    next_cid = 0;
    cur_cid = -1;
    hart_src = None;
    in_safepoint = false;
    safe =
      {
        sc_deferred = 0;
        sc_denied = 0;
        sc_superseded = 0;
        sc_applied = 0;
        sc_rolled_back = 0;
        sc_polls = 0;
        sc_osr_transfers = 0;
        sc_osr_aborts = 0;
      };
    tracer = None;
    barrier = None;
    framemaps = Descriptor.parse_framemaps img;
    osr = None;
    lazy_st = None;
  }

(* ------------------------------------------------------------------ *)
(* Trace emission                                                      *)
(* ------------------------------------------------------------------ *)

(** Install (or remove) the structured-event sink.  See {!Mv_obs.Trace}. *)
let set_tracer t sink = t.tracer <- sink

(* The single emit funnel: one match when no sink is installed.  Call
   sites that build expensive payloads (e.g. the switch-value list of a
   commit span) guard on [tracing] first so an untraced run never pays
   for the construction either. *)
let[@inline] tracing t = t.tracer <> None

let emit t ev = match t.tracer with None -> () | Some sink -> sink ev

(** Install (or remove) the cross-modifying-code barrier (see the
    [barrier] field).  SMP harnesses wire it to [Smp.stop_machine]. *)
let set_patch_barrier t b = t.barrier <- b

(** Route every text mutation through a replacement writer — e.g. the
    SMP breakpoint-first [Smp.text_poke] ({!Patch.set_writer}). *)
let set_text_writer t w = Patch.set_writer t.patch w

(* Run a patching operation under the barrier (directly when none is
   installed).  The barrier contract: it must invoke the thunk exactly
   once, synchronously. *)
let with_barrier t (f : unit -> 'a) : 'a =
  match t.barrier with
  | None -> f ()
  | Some wrap ->
      let r = ref None in
      wrap (fun () -> r := Some (f ()));
      (match !r with
      | Some v -> v
      | None -> errf "patch barrier did not run its thunk")

(** Every configuration switch's (name, current value) — the payload of a
    commit span's begin event. *)
let switch_values t =
  List.map
    (fun (v : Descriptor.variable) ->
      (name_of t.image v.vr_addr, Image.read t.image v.vr_addr v.vr_width))
    t.variables

(** Install (or remove) the hart source used to attribute commit and
    drain events; wire to [Smp.current_hart].  Host-side only — never
    charged simulated cycles. *)
let set_hart_source t h = t.hart_src <- h

let cur_hart t = match t.hart_src with None -> 0 | Some f -> f ()

(* Journal a deferred patch set (used by the safe-commit paths, and by the
   variant cache when an eviction victim's body still has live
   activations). *)
let journal t actions =
  if actions <> [] then begin
    let pset =
      {
        pset_id = t.next_pset_id;
        pset_cid = t.cur_cid;
        pset_hart = cur_hart t;
        pset_actions = actions;
      }
    in
    t.next_pset_id <- t.next_pset_id + 1;
    t.pending <- t.pending @ [ pset ]
  end

(* Every commit/revert span gets a fresh causality id, traced or not, so
   a sink attached mid-run still sees ids consistent with the journal. *)
let emit_span_begin t op =
  t.cur_cid <- t.next_cid;
  t.next_cid <- t.next_cid + 1;
  if tracing t then
    emit t (Trace.Commit_begin { cid = t.cur_cid; op; switches = switch_values t })

let emit_span_end t op bound = emit t (Trace.Commit_end { cid = t.cur_cid; op; bound })

(* Fallback registration, with its event. *)
let fallback t name =
  t.fallbacks <- name :: t.fallbacks;
  emit t (Trace.Fallback { fn = name })

(** Disable or re-enable call-site body inlining (the A3 ablation: measure
    what the "current PV-Ops"-style inlining contributes). *)
let set_inlining t enabled = t.inline_enabled <- enabled

(** Switch the installation strategy (the A4 ablation).  Only allowed while
    nothing is installed: revert first. *)
let set_strategy t s =
  let busy =
    List.exists (fun fe -> fe.fe_installed <> None) t.functions
    || List.exists (fun fp -> fp.fp_committed <> None) t.fnptrs
  in
  if busy then errf "cannot switch strategy while variants are installed (revert first)";
  if t.pending <> [] then
    errf "cannot switch strategy while patch sets are pending (drain safepoints first)";
  t.strategy <- s

(* ------------------------------------------------------------------ *)
(* Switch evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let read_switch t (addr : int) : int =
  match List.find_opt (fun (v : Descriptor.variable) -> v.vr_addr = addr) t.variables with
  | Some v -> Image.read t.image v.vr_addr v.vr_width
  | None -> errf "guard references unknown switch at 0x%x" addr

let guards_satisfied t (guards : Descriptor.guard_record list) : bool =
  List.for_all
    (fun (g : Descriptor.guard_record) ->
      let v = read_switch t g.gr_var in
      g.gr_lo <= v && v <= g.gr_hi)
    guards

(** Select the variant for the current switch values (first match in
    descriptor order). *)
let select_variant t (fe : fn_entry) : Descriptor.variant_record option =
  List.find_opt
    (fun (v : Descriptor.variant_record) -> guards_satisfied t v.va_guards)
    fe.fe_variants

(* ------------------------------------------------------------------ *)
(* Site patching with verification                                     *)
(* ------------------------------------------------------------------ *)

(** A site is only touched when its current bytes are exactly what the
    runtime last wrote there (initially: what the linker produced).  A
    mismatch means some other mechanism — e.g. the prologue jump of an
    enclosing multiversed function — owns those bytes now; the site is
    skipped and reported, never corrupted. *)
let site_intact t (s : site) : bool =
  let current = Image.read_bytes t.image s.s_addr s.s_size in
  Bytes.equal current s.s_written

let write_site t (s : site) (b : bytes) (state : site_state) =
  Patch.write_text t.patch ~addr:s.s_addr b;
  s.s_written <- Image.read_bytes t.image s.s_addr s.s_size;
  s.s_state <- state

let skip_site t (s : site) reason =
  t.skipped_sites <- (s.s_addr, reason) :: t.skipped_sites

(** Point the site at [target]: either inline the body at [target] (if small
    enough) or patch a direct call.  [target_size] is the encoded size of
    the target body, from its descriptor. *)
let install_site t (s : site) ~who ~target ~target_size =
  if not (site_intact t s) then skip_site t s "site bytes changed by another mechanism"
  else begin
    let body =
      if t.inline_enabled then
        Patch.inlineable_body t.patch ~fn_addr:target ~fn_size:target_size ~budget:s.s_size
      else None
    in
    match body with
    | Some body ->
        let b = Bytes.make s.s_size (Char.chr (Insn.opcode Insn.Nop)) in
        Bytes.blit body 0 b 0 (Bytes.length body);
        write_site t s b (Site_inlined target);
        emit t (Trace.Site_inlined { fn = who; site = s.s_addr; target })
    | None ->
        (* a 6-byte indirect site gets a 5-byte direct call plus one nop *)
        let call = Patch.encode_call ~site:s.s_addr ~target in
        let b = Bytes.make s.s_size (Char.chr (Insn.opcode Insn.Nop)) in
        Bytes.blit call 0 b 0 (Bytes.length call);
        write_site t s b (Site_retargeted target);
        emit t (Trace.Site_retargeted { fn = who; site = s.s_addr; target })
  end

let restore_site t (s : site) =
  match s.s_state with
  | Site_original -> ()
  | Site_retargeted _ | Site_inlined _ ->
      if site_intact t s then write_site t s s.s_original Site_original
      else skip_site t s "cannot restore: site bytes changed by another mechanism"

(* ------------------------------------------------------------------ *)
(* Function-level install / revert                                     *)
(* ------------------------------------------------------------------ *)

let revert_fn_entry t (fe : fn_entry) =
  (match fe.fe_saved_body with
  | Some saved ->
      Patch.restore_bytes t.patch ~addr:fe.fe_record.fd_generic saved;
      fe.fe_saved_body <- None
  | None -> ());
  (match fe.fe_prologue with
  | Some saved ->
      Patch.restore_bytes t.patch ~addr:fe.fe_record.fd_generic saved;
      fe.fe_prologue <- None
  | None -> ());
  List.iter (restore_site t) fe.fe_sites;
  fe.fe_installed <- None

let install_variant_call_sites t (fe : fn_entry) (v : Descriptor.variant_record) =
  List.iter
    (fun s -> install_site t s ~who:fe.fe_name ~target:v.va_addr ~target_size:v.va_size)
    fe.fe_sites;
  fe.fe_prologue <-
    Some (Patch.install_prologue_jmp t.patch ~fn_addr:fe.fe_record.fd_generic ~target:v.va_addr);
  emit t (Trace.Prologue_patched { fn = fe.fe_name; target = v.va_addr })

(* The Section 7.1 alternative: overwrite the generic body with the
   relocated variant body.  One patch per function, no call-site work, but
   the body must fit — otherwise fall back to the completeness jump. *)
let install_variant_body t (fe : fn_entry) (v : Descriptor.variant_record) =
  let generic = fe.fe_record.fd_generic in
  if v.va_size <= fe.fe_record.fd_generic_size then begin
    fe.fe_saved_body <-
      Some (Patch.read_text t.patch ~addr:generic ~len:fe.fe_record.fd_generic_size);
    let relocated =
      Patch.relocate_body t.patch ~src:v.va_addr ~len:v.va_size ~dst:generic
    in
    Patch.write_text t.patch ~addr:generic relocated
  end
  else begin
    (* variant larger than the generic body: redirect the prologue instead *)
    fe.fe_prologue <-
      Some (Patch.install_prologue_jmp t.patch ~fn_addr:generic ~target:v.va_addr);
    emit t (Trace.Prologue_patched { fn = fe.fe_name; target = v.va_addr })
  end

let install_variant t (fe : fn_entry) (v : Descriptor.variant_record) =
  if fe.fe_installed = Some v.va_addr then ()
  else begin
    if tracing t then
      emit t
        (Trace.Variant_selected { fn = fe.fe_name; variant = name_of t.image v.va_addr });
    (* return to the pristine state first, then apply the new variant *)
    revert_fn_entry t fe;
    (match t.strategy with
    | Call_site_patching -> install_variant_call_sites t fe v
    | Body_patching -> install_variant_body t fe v);
    fe.fe_installed <- Some v.va_addr
  end

(* ------------------------------------------------------------------ *)
(* Lazy materialization: the demand-driven variant cache               *)
(* ------------------------------------------------------------------ *)

(** Enable demand-driven materialization: [recipes] are the compiler's
    per-function specialization recipes ([Compiler.recipes]), [call_pad]
    the program-wide call-site padding rule ([Compiler.call_pad]), and
    [budget] the resident variant-text byte budget (default: the whole
    variant-text region). *)
let enable_lazy ?budget t ~recipes ~call_pad =
  let vt = t.image.Image.vtext in
  if vt.Image.sr_size = 0 then
    errf "lazy materialization needs a variant-text region (link with vtext_size > 0)";
  let budget = match budget with Some b -> b | None -> vt.Image.sr_size in
  if budget <= 0 then errf "variant budget must be positive";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Variantgen.recipe) -> Hashtbl.replace tbl r.Variantgen.rc_name r)
    recipes;
  t.lazy_st <-
    Some
      {
        lz_recipes = tbl;
        lz_call_pad = call_pad;
        lz_budget = budget;
        lz_cursor = vt.Image.sr_base;
        lz_free = [];
        lz_dedup = Hashtbl.create 16;
        lz_variants = Hashtbl.create 16;
        lz_bytes = 0;
        lz_tick = 0;
        lz_lru = Hashtbl.create 16;
        lz_evict_pending = [];
        lz_advisor = None;
        lz_stale_cache = false;
        lz_materialized = 0;
        lz_dedup_hits = 0;
        lz_cache_hits = 0;
        lz_evictions = 0;
        lz_budget_denials = 0;
      }

let lazy_required t =
  match t.lazy_st with
  | Some lz -> lz
  | None -> errf "lazy materialization is not enabled (Runtime.enable_lazy)"

(** Install (or remove) the eviction advisor: a thunk returning variant
    symbols in preferred eviction order (harnesses wire the [Evict]
    verdicts of [Heat.evict_plan] here).  Symbols the cache cannot evict
    — unknown, journaled for a pending bind, or already draining — are
    skipped; least-recently-selected order covers whatever the advisor
    does not. *)
let set_evict_advisor t adv = (lazy_required t).lz_advisor <- adv

(** Fuzzing chaos: make eviction skip the dedup-table invalidation, so a
    later structural-hash hit links a freed (and possibly recycled)
    block.  The lazy-eager-equiv oracle must catch the divergence. *)
let set_stale_cache_chaos t flag = (lazy_required t).lz_stale_cache <- flag

(** Whether the variant cache would specialize [fe] at all — it has
    resident variants, or a recipe to materialize one from. *)
let specializable t (fe : fn_entry) =
  fe.fe_variants <> []
  ||
  match t.lazy_st with
  | Some lz -> Hashtbl.mem lz.lz_recipes fe.fe_name
  | None -> false

(* The current point assignment of a recipe's switches, or [None] when
   any switch value is outside its specialization domain (the generic
   fallback covers those, exactly as under eager generation). *)
let recipe_assignment t (r : Variantgen.recipe) : (string * int) list option =
  let ok = ref true in
  let a =
    List.map
      (fun (name, dom) ->
        match Image.symbol_opt t.image name with
        | None ->
            ok := false;
            (name, 0)
        | Some addr ->
            let v = read_switch t addr in
            if not (List.mem v dom) then ok := false;
            (name, v))
      r.Variantgen.rc_switches
  in
  if !ok then Some a else None

(* First-fit allocation from the free list, else from the bump cursor;
   blocks are 16-aligned like the static text layout. *)
let vtext_alloc t lz size : (int * int) option =
  let size = (size + 15) / 16 * 16 in
  let rec take acc = function
    | [] -> None
    | (a, s) :: rest when s >= size ->
        let rest' = if s > size then (a + size, s - size) :: rest else rest in
        Some (a, List.rev_append acc rest')
    | blk :: rest -> take (blk :: acc) rest
  in
  match take [] lz.lz_free with
  | Some (a, free') ->
      lz.lz_free <- free';
      Some (a, size)
  | None ->
      let vt = t.image.Image.vtext in
      let a = lz.lz_cursor in
      if a + size <= vt.Image.sr_base + vt.Image.sr_size then begin
        lz.lz_cursor <- a + size;
        Some (a, size)
      end
      else None

let vtext_free lz ~addr ~size =
  let rec insert = function
    | [] -> [ (addr, size) ]
    | (a, s) :: rest when addr < a -> (addr, size) :: (a, s) :: rest
    | blk :: rest -> blk :: insert rest
  in
  let rec coalesce = function
    | (a1, s1) :: (a2, s2) :: rest when a1 + s1 = a2 -> coalesce ((a1, s1 + s2) :: rest)
    | blk :: rest -> blk :: coalesce rest
    | [] -> []
  in
  lz.lz_free <- coalesce (insert lz.lz_free)

(* Variant addresses a journaled Act_bind still needs: their bodies must
   survive until the set drains (or is superseded). *)
let pending_variant_addrs t =
  List.concat_map
    (fun pset ->
      List.filter_map
        (function
          | Act_bind (_, (v : Descriptor.variant_record)) -> Some v.va_addr
          | _ -> None)
        pset.pset_actions)
    t.pending

let touch_lru lz sym =
  lz.lz_tick <- lz.lz_tick + 1;
  Hashtbl.replace lz.lz_lru sym lz.lz_tick

(* Is any live activation inside [addr, addr+size)?  Without a scanner
   the paper's model applies — the caller guarantees a patchable state —
   and victims are treated as quiescent. *)
let victim_live t ~addr ~size =
  match t.live_scanner with
  | None -> false
  | Some scan -> List.exists (fun a -> a >= addr && a < addr + size) (scan ())

(* Drop the descriptor alias [sym]; release its body block when it was
   the last alias.  Returns the bytes returned to the allocator. *)
let drop_alias t lz sym (mi : mat_info) : int =
  let fe = mi.mi_fn in
  fe.fe_variants <-
    List.filter (fun (v : Descriptor.variant_record) -> v != mi.mi_record) fe.fe_variants;
  Hashtbl.remove lz.lz_variants sym;
  Hashtbl.remove lz.lz_lru sym;
  Image.remove_symbol t.image sym;
  let freed =
    match Hashtbl.find_opt lz.lz_dedup mi.mi_key with
    | Some de when de.de_addr = mi.mi_record.Descriptor.va_addr ->
        de.de_refs <- de.de_refs - 1;
        if de.de_refs > 0 then 0
        else begin
          (* last alias gone: release the block.  The stale-cache chaos
             mode skips the dedup invalidation — a later hash hit would
             link the recycled block, which the lazy-eager-equiv fuzz
             oracle exists to catch. *)
          if not lz.lz_stale_cache then Hashtbl.remove lz.lz_dedup mi.mi_key;
          t.framemaps <-
            List.filter
              (fun (fm : Descriptor.framemap_record) -> fm.Descriptor.fm_addr <> de.de_addr)
              t.framemaps;
          vtext_free lz ~addr:de.de_addr ~size:de.de_alloc;
          lz.lz_bytes <- lz.lz_bytes - de.de_alloc;
          de.de_alloc
        end
    | _ -> 0
  in
  lz.lz_evictions <- lz.lz_evictions + 1;
  emit t (Trace.Variant_evicted { fn = fe.fe_name; variant = sym; freed });
  freed

(* Evict one victim.  An installed victim whose body is quiescent is
   reverted to generic on the spot (the existing revert machinery); one
   with a live activation is journaled as an Act_unbind — drained, with
   OSR's help, at a later safepoint — and its bytes are released only
   once the unbind lands. *)
let evict_one t lz sym (mi : mat_info) : unit =
  let fe = mi.mi_fn in
  let addr = mi.mi_record.Descriptor.va_addr in
  let size = max mi.mi_record.Descriptor.va_size 1 in
  let defer () =
    if not (List.mem sym lz.lz_evict_pending) then
      lz.lz_evict_pending <- lz.lz_evict_pending @ [ sym ]
  in
  if fe.fe_installed = Some addr then
    if victim_live t ~addr ~size then begin
      journal t [ Act_unbind fe ];
      defer ()
    end
    else begin
      revert_fn_entry t fe;
      ignore (drop_alias t lz sym mi)
    end
  else if victim_live t ~addr ~size then defer ()
  else ignore (drop_alias t lz sym mi)

(* Make room for [need] more resident bytes: evict candidates — advisor
   order first, then least-recently-selected — until the budget fits.
   Aliases journaled for a pending bind and victims already draining are
   never candidates.  Returns [false] when the budget still does not fit
   (deferred victims free their bytes only at a safepoint). *)
let make_room t lz ~need : bool =
  if lz.lz_bytes + need <= lz.lz_budget then true
  else begin
    let protected_addrs = pending_variant_addrs t in
    let evictable sym (mi : mat_info) =
      (not (List.mem sym lz.lz_evict_pending))
      && not (List.mem mi.mi_record.Descriptor.va_addr protected_addrs)
    in
    let by_lru =
      Hashtbl.fold (fun sym mi acc -> (sym, mi) :: acc) lz.lz_variants []
      |> List.filter (fun (sym, mi) -> evictable sym mi)
      |> List.sort (fun (a, _) (b, _) ->
             compare
               (Option.value ~default:0 (Hashtbl.find_opt lz.lz_lru a), a)
               (Option.value ~default:0 (Hashtbl.find_opt lz.lz_lru b), b))
    in
    let advised =
      match lz.lz_advisor with
      | None -> []
      | Some f ->
          List.filter_map
            (fun sym ->
              match Hashtbl.find_opt lz.lz_variants sym with
              | Some mi when evictable sym mi -> Some (sym, mi)
              | _ -> None)
            (f ())
    in
    let rec go seen = function
      | _ when lz.lz_bytes + need <= lz.lz_budget -> true
      | [] -> lz.lz_bytes + need <= lz.lz_budget
      | (sym, mi) :: rest ->
          if List.mem sym seen then go seen rest
          else begin
            evict_one t lz sym mi;
            go (sym :: seen) rest
          end
    in
    go [] (advised @ by_lru)
  end

(** Shrink (or grow) the resident byte budget.  Shrinking evicts down to
    the new budget immediately where possible; victims with live
    activations drain at later safepoints, so residency may exceed a
    just-shrunk budget until then — new materializations are denied in
    the meantime. *)
let set_variant_budget t b =
  let lz = lazy_required t in
  if b <= 0 then errf "variant budget must be positive";
  lz.lz_budget <- b;
  ignore (make_room t lz ~need:0)

(* Link one alias: append the descriptor record, register the symbol and
   the book-keeping, stamp the LRU, report the materialization. *)
let link_alias t lz (fe : fn_entry) ~symbol ~key ~addr ~size ~guards ~dedup =
  let record = { Descriptor.va_addr = addr; va_size = size; va_guards = guards } in
  fe.fe_variants <- fe.fe_variants @ [ record ];
  Image.add_symbol t.image symbol ~addr ~size;
  Hashtbl.replace lz.lz_variants symbol { mi_fn = fe; mi_key = key; mi_record = record };
  touch_lru lz symbol;
  lz.lz_materialized <- lz.lz_materialized + 1;
  emit t (Trace.Variant_materialized { fn = fe.fe_name; variant = symbol; addr; size; dedup })

(* Materialize the variant for [assignment]: specialize the recipe,
   optimize, then either link the structurally-equal resident body (hash
   hit: no new bytes) or assemble the fragment, apply its relocations
   against the image's symbols, and write it into the variant-text
   region.  A budget (or region-capacity) miss denies the
   materialization: no alias is linked, the function stays generic, and
   a later commit retries. *)
let materialize t lz (fe : fn_entry) (recipe : Variantgen.recipe)
    (assignment : (string * int) list) : unit =
  let v = Variantgen.specialize_recipe recipe assignment in
  let key = Mv_opt.Merge.canonical_form v.Variantgen.v_fn in
  let guards =
    List.concat_map
      (fun box ->
        List.map
          (fun (r : Guard.range) ->
            {
              Descriptor.gr_var = Image.symbol t.image r.Guard.g_var;
              gr_lo = r.Guard.g_lo;
              gr_hi = r.Guard.g_hi;
            })
          box)
      v.Variantgen.v_guards
  in
  match Hashtbl.find_opt lz.lz_dedup key with
  | Some de ->
      (* structural-hash hit: the body is already resident *)
      de.de_refs <- de.de_refs + 1;
      lz.lz_dedup_hits <- lz.lz_dedup_hits + 1;
      link_alias t lz fe ~symbol:v.Variantgen.v_symbol ~key ~addr:de.de_addr
        ~size:de.de_size ~guards ~dedup:true
  | None -> (
      let frag =
        try Emit.emit_fn ~call_pad:lz.lz_call_pad v.Variantgen.v_fn
        with Emit.Error m -> errf "materialize %s: %s" v.Variantgen.v_symbol m
      in
      let code = Bytes.copy frag.Emit.fr_code in
      let size = Bytes.length code in
      let alloc_size = (size + 15) / 16 * 16 in
      if not (make_room t lz ~need:alloc_size) then
        lz.lz_budget_denials <- lz.lz_budget_denials + 1
      else
        match vtext_alloc t lz size with
        | None ->
            (* the region itself is exhausted (or too fragmented) *)
            lz.lz_budget_denials <- lz.lz_budget_denials + 1
        | Some (addr, alloc) ->
            List.iter
              (fun (r : Objfile.reloc) ->
                let s =
                  match Image.symbol_opt t.image r.Objfile.r_sym with
                  | Some a -> a
                  | None ->
                      errf "materialize %s: undefined symbol %s" v.Variantgen.v_symbol
                        r.Objfile.r_sym
                in
                let p = addr + r.Objfile.r_offset in
                match r.Objfile.r_kind with
                | Objfile.Abs64 ->
                    Bytes.set_int64_le code r.Objfile.r_offset
                      (Int64.of_int (s + r.Objfile.r_addend))
                | Objfile.Abs32 ->
                    let x = s + r.Objfile.r_addend in
                    if x < 0 || x > 0xFFFF_FFFF then
                      errf "materialize %s: Abs32 overflow for %s" v.Variantgen.v_symbol
                        r.Objfile.r_sym;
                    Bytes.set_int32_le code r.Objfile.r_offset (Int32.of_int x)
                | Objfile.Rel32 ->
                    let x = s + r.Objfile.r_addend - p in
                    if
                      x < Int32.to_int Int32.min_int || x > Int32.to_int Int32.max_int
                    then
                      errf "materialize %s: Rel32 overflow for %s" v.Variantgen.v_symbol
                        r.Objfile.r_sym;
                    Bytes.set_int32_le code r.Objfile.r_offset (Int32.of_int x))
              frag.Emit.fr_relocs;
            Patch.write_text t.patch ~addr code;
            (* host-built frame map, so OSR can transfer activations in
               and out of the materialized body *)
            t.framemaps <-
              t.framemaps
              @ [
                  {
                    Descriptor.fm_addr = addr;
                    fm_frame_bytes = frag.Emit.fr_frame_bytes;
                    fm_saves = frag.Emit.fr_saves;
                    fm_safepoints =
                      List.map
                        (fun (sp : Emit.safepoint) ->
                          {
                            Descriptor.fs_id = sp.Emit.sp_id;
                            fs_pc = addr + sp.Emit.sp_offset;
                            fs_live =
                              List.map
                                (fun (vreg, (a : Mv_codegen.Regalloc.assignment)) ->
                                  match a with
                                  | Mv_codegen.Regalloc.Phys r ->
                                      (vreg, Descriptor.Loc_reg r)
                                  | Mv_codegen.Regalloc.Slot s ->
                                      (vreg, Descriptor.Loc_slot s)
                                  | Mv_codegen.Regalloc.Unused -> assert false)
                                sp.Emit.sp_live;
                          })
                        frag.Emit.fr_safepoints;
                  }
                ];
            Hashtbl.replace lz.lz_dedup key
              { de_addr = addr; de_size = size; de_alloc = alloc; de_refs = 1 };
            lz.lz_bytes <- lz.lz_bytes + alloc;
            link_alias t lz fe ~symbol:v.Variantgen.v_symbol ~key ~addr ~size ~guards
              ~dedup:false)

(* The commit-side hook: make sure the variant the current valuation
   needs is resident before selection runs.  One [option] match when
   lazy materialization is off — pay-for-use, like the tracer. *)
let ensure_variant t (fe : fn_entry) : unit =
  match t.lazy_st with
  | None -> ()
  | Some lz -> (
      match Hashtbl.find_opt lz.lz_recipes fe.fe_name with
      | None -> ()
      | Some recipe -> (
          match recipe_assignment t recipe with
          | None -> () (* out of domain: the generic fallback handles it *)
          | Some assignment -> (
              match
                List.find_opt
                  (fun (v : Descriptor.variant_record) -> guards_satisfied t v.va_guards)
                  fe.fe_variants
              with
              | Some v ->
                  lz.lz_cache_hits <- lz.lz_cache_hits + 1;
                  Hashtbl.iter
                    (fun sym (mi : mat_info) ->
                      if mi.mi_record == v then touch_lru lz sym)
                    lz.lz_variants
              | None -> materialize t lz fe recipe assignment)))

(** Commit one multiversed function: bind it to the variant matching the
    current switch values, or revert to generic (with a fallback signal)
    when no variant matches.  Returns [true] when a variant was bound. *)
let commit_fn_entry t (fe : fn_entry) : bool =
  ensure_variant t fe;
  match select_variant t fe with
  | Some v ->
      install_variant t fe v;
      true
  | None ->
      revert_fn_entry t fe;
      (* only signal when the function actually has (or could materialize)
         specialized variants: a variant-less function is trivially bound
         to its generic body *)
      if specializable t fe then fallback t fe.fe_name;
      false

(* ------------------------------------------------------------------ *)
(* Function-pointer switches                                           *)
(* ------------------------------------------------------------------ *)

let revert_fnptr_entry t (fp : fnptr_entry) =
  List.iter (restore_site t) fp.fp_sites;
  fp.fp_committed <- None

(** Patch every recorded indirect call site of the fn-pointer switch into a
    direct call to [target] (or inline the target body).  The target's size
    is taken from the symbol table. *)
let install_fnptr t (fp : fnptr_entry) ~target =
  if fp.fp_committed <> Some target then begin
    revert_fnptr_entry t fp;
    let target_size =
      match Image.symbol_at t.image target with
      | Some name -> Image.symbol_size t.image name
      | None -> 0
    in
    List.iter (fun s -> install_site t s ~who:fp.fp_name ~target ~target_size) fp.fp_sites;
    fp.fp_committed <- Some target
  end

(** Bind a function-pointer switch to its current in-memory target. *)
let commit_fnptr_entry t (fp : fnptr_entry) : bool =
  let target = Image.read t.image fp.fp_var.vr_addr 8 in
  if target = 0 then begin
    revert_fnptr_entry t fp;
    fallback t fp.fp_name;
    false
  end
  else begin
    install_fnptr t fp ~target;
    true
  end

(* ------------------------------------------------------------------ *)
(* The Table 1 API                                                     *)
(* ------------------------------------------------------------------ *)

(* Any whole-image (re)decision makes previously journaled patch sets
   stale: drop them so a safepoint cannot apply an outdated binding over a
   newer one. *)
let supersede_pending t =
  List.iter
    (fun pset ->
      t.safe.sc_superseded <- t.safe.sc_superseded + List.length pset.pset_actions)
    t.pending;
  t.pending <- []

(** [multiverse_commit]: inspect all switches, select and install variants
    everywhere.  Returns the number of entities bound to a specialized
    state; [fallbacks t] lists functions left generic. *)
let commit t : int =
  with_barrier t @@ fun () ->
  emit_span_begin t "commit";
  supersede_pending t;
  t.fallbacks <- [];
  let bound_fns = List.filter (commit_fn_entry t) t.functions in
  let bound_ptrs = List.filter (commit_fnptr_entry t) t.fnptrs in
  let bound = List.length bound_fns + List.length bound_ptrs in
  emit_span_end t "commit" bound;
  bound

(** [multiverse_revert]: restore the whole image to its unpatched state. *)
let revert t : int =
  with_barrier t @@ fun () ->
  emit_span_begin t "revert";
  supersede_pending t;
  t.fallbacks <- [];
  List.iter (revert_fn_entry t) t.functions;
  List.iter (revert_fnptr_entry t) t.fnptrs;
  let n = List.length t.functions + List.length t.fnptrs in
  emit_span_end t "revert" n;
  n

let find_fn t addr =
  List.find_opt (fun fe -> fe.fe_record.fd_generic = addr) t.functions

let find_fn_by_name t name =
  match Image.symbol_opt t.image name with
  | Some addr -> find_fn t addr
  | None -> None

(** [multiverse_commit_func(&fn)]. *)
let commit_func_addr t addr : int =
  match find_fn t addr with
  | Some fe -> with_barrier t (fun () -> Bool.to_int (commit_fn_entry t fe))
  | None -> -1

(** [multiverse_revert_func(&fn)]. *)
let revert_func_addr t addr : int =
  match find_fn t addr with
  | Some fe ->
      with_barrier t (fun () -> revert_fn_entry t fe);
      1
  | None -> -1

let commit_func t name =
  match Image.symbol_opt t.image name with
  | Some addr -> commit_func_addr t addr
  | None -> -1

let revert_func t name =
  match Image.symbol_opt t.image name with
  | Some addr -> revert_func_addr t addr
  | None -> -1

(** Functions whose variants guard on the switch at [var_addr] — under
    lazy materialization, also functions whose {e recipe} specializes on
    it (their variants may not be resident yet). *)
let functions_referencing t var_addr =
  let recipe_refs fe =
    match t.lazy_st with
    | None -> false
    | Some lz -> (
        match Hashtbl.find_opt lz.lz_recipes fe.fe_name with
        | None -> false
        | Some r ->
            List.exists
              (fun (name, _) -> Image.symbol_opt t.image name = Some var_addr)
              r.Variantgen.rc_switches)
  in
  List.filter
    (fun fe ->
      List.exists
        (fun (v : Descriptor.variant_record) ->
          List.exists (fun (g : Descriptor.guard_record) -> g.gr_var = var_addr) v.va_guards)
        fe.fe_variants
      || recipe_refs fe)
    t.functions

(** [multiverse_commit_refs(&var)]: commit every function that references
    the switch, and the switch itself if it is a function pointer. *)
let commit_refs_addr t var_addr : int =
  with_barrier t @@ fun () ->
  let fns = functions_referencing t var_addr in
  let bound = List.filter (commit_fn_entry t) fns in
  let ptr_bound =
    match List.find_opt (fun fp -> fp.fp_var.vr_addr = var_addr) t.fnptrs with
    | Some fp -> Bool.to_int (commit_fnptr_entry t fp)
    | None -> 0
  in
  List.length bound + ptr_bound

(** [multiverse_revert_refs(&var)]. *)
let revert_refs_addr t var_addr : int =
  with_barrier t @@ fun () ->
  let fns = functions_referencing t var_addr in
  List.iter (revert_fn_entry t) fns;
  let ptr_count =
    match List.find_opt (fun fp -> fp.fp_var.vr_addr = var_addr) t.fnptrs with
    | Some fp ->
        revert_fnptr_entry t fp;
        1
    | None -> 0
  in
  List.length fns + ptr_count

let commit_refs t name =
  match Image.symbol_opt t.image name with
  | Some addr -> commit_refs_addr t addr
  | None -> -1

let revert_refs t name =
  match Image.symbol_opt t.image name with
  | Some addr -> revert_refs_addr t addr
  | None -> -1

(* ------------------------------------------------------------------ *)
(* Safe commit: stack-quiescence detection and deferred patching       *)
(* ------------------------------------------------------------------ *)

(* The paper's runtime performs no synchronization — "the caller guarantees
   a patchable state" (Section 2) — and Section 7.1 leaves safe application
   while specialized code is live open.  In the simulator we can prove
   quiescence: the machine reports every code address with a live
   activation (pc + conservative stack scan), and a patch is applied only
   when none of them falls inside the bytes it would rewrite.  Patches for
   live functions are journaled and drained transactionally at quiescence
   points (the machine's safepoint hook). *)

type safe_policy = Defer | Deny

let set_live_scanner t scan = t.live_scanner <- Some scan

let live_addrs t =
  match t.live_scanner with
  | Some scan -> scan ()
  | None -> errf "safe commit requires a live scanner (Runtime.set_live_scanner)"

(* The half-open byte ranges a (re)bind or revert of the function would
   rewrite: the generic prologue/body and every recorded call site.  The
   range end matters: a return address just past an unpadded call
   instruction is *outside* its site and safe, while the same return
   address inside a nop-padded site (where an inlined body may extend past
   it) keeps the site live. *)
let fn_touched_ranges (fe : fn_entry) : (int * int) list =
  let generic = fe.fe_record.fd_generic in
  let body_hi = generic + max fe.fe_record.fd_generic_size Insn.jmp_size in
  (generic, body_hi)
  :: List.map (fun s -> (s.s_addr, s.s_addr + s.s_size)) fe.fe_sites

let fnptr_touched_ranges (fp : fnptr_entry) : (int * int) list =
  List.map (fun s -> (s.s_addr, s.s_addr + s.s_size)) fp.fp_sites

let ranges_live ranges live =
  List.exists (fun a -> List.exists (fun (lo, hi) -> a >= lo && a < hi) ranges) live

let variant_of (fe : fn_entry) addr =
  List.find_opt
    (fun (v : Descriptor.variant_record) -> v.va_addr = addr)
    fe.fe_variants

(* The body range of the currently installed variant.  Unbinding (or
   rebinding to a different variant) while an activation executes *inside*
   that body would leave it running code the runtime just declared stale,
   so the range counts as live-blocked — and is exactly what on-stack
   replacement transfers activations out of. *)
let installed_body_range (fe : fn_entry) : (int * int) list =
  match fe.fe_installed with
  | None -> []
  | Some addr -> (
      match variant_of fe addr with
      | Some v -> [ (addr, addr + max v.va_size 1) ]
      | None -> [])

(* The ranges an unbind would actually rewrite, given the entry's current
   state: the saved prologue bytes, the saved generic body (body patching),
   every non-pristine call site — plus the installed variant's body (see
   above).  Unlike a bind, an unbind leaves the *generic* body semantically
   current for every switch value, so a generic activation parked past the
   prologue bytes does not block it; a pristine entry blocks on nothing,
   because its unbind rewrites nothing. *)
let fn_unbind_ranges (fe : fn_entry) : (int * int) list =
  let generic = fe.fe_record.fd_generic in
  let prologue =
    match fe.fe_prologue with
    | Some b -> [ (generic, generic + Bytes.length b) ]
    | None -> []
  in
  let body =
    match fe.fe_saved_body with
    | Some b -> [ (generic, generic + Bytes.length b) ]
    | None -> []
  in
  let sites =
    List.filter_map
      (fun s ->
        match s.s_state with
        | Site_original -> None
        | Site_retargeted _ | Site_inlined _ -> Some (s.s_addr, s.s_addr + s.s_size))
      fe.fe_sites
  in
  installed_body_range fe @ prologue @ body @ sites

let action_ranges = function
  | Act_bind (fe, _) -> installed_body_range fe @ fn_touched_ranges fe
  | Act_unbind fe -> fn_unbind_ranges fe
  | Act_bind_ptr (fp, _) | Act_unbind_ptr fp -> fnptr_touched_ranges fp

let action_name = function
  | Act_bind (fe, _) | Act_unbind fe -> fe.fe_name
  | Act_bind_ptr (fp, _) | Act_unbind_ptr fp -> fp.fp_name

(* ------------------------------------------------------------------ *)
(* On-stack replacement                                                *)
(* ------------------------------------------------------------------ *)

(** Install (or remove) the OSR hart accessors.  Once installed, a
    safepoint that finds a pending set blocked by a live activation of the
    polling hart transfers that activation into the target body instead of
    leaving the set journaled. *)
let set_osr t ctx = t.osr <- ctx

let framemap_of t addr =
  List.find_opt
    (fun (fm : Descriptor.framemap_record) -> fm.Descriptor.fm_addr = addr)
    t.framemaps

(* Transfer the polling hart's activation from the body at [src] (address,
   size) to the equivalent program point of the body at [dst].  Succeeds
   only when the hart is parked exactly at a safepoint the source frame map
   records AND the target body kept a safepoint with the same stable id
   (specialization can delete program points; a lost id means there is no
   equivalent place to resume, and the set simply stays deferred).

   Frame reconstruction: with [sp_entry] the stack pointer at function
   entry, a body with [n] saved callee-saved registers and [frame_bytes] of
   spill area runs with [sp = sp_entry - 8n - frame_bytes]; save slot [i]
   (push order) lives at [sp_entry - 8(i+1)] and spill slot [s] at
   [sp + 8s].  The caller's value of a callee-saved register is in the
   source save area if the source pushed it, and still in the register
   itself if it did not (an untouched register is never clobbered).  The
   target spill area is zeroed before the live slots land so stale code
   addresses cannot keep the conservative stack scanner believing the old
   frame is still live. *)
let try_osr_transfer t (ctx : osr_hart) ~cid ~(fe : fn_entry) ~src:(src_addr, src_size)
    ~(dst : int) : bool =
  let pc = ctx.oh_pc () in
  if src_addr = dst || pc < src_addr || pc >= src_addr + src_size then false
  else
    match (framemap_of t src_addr, framemap_of t dst) with
    | Some fm_s, Some fm_d -> (
        match
          List.find_opt
            (fun (s : Descriptor.safepoint_record) -> s.Descriptor.fs_pc = pc)
            fm_s.Descriptor.fm_safepoints
        with
        | None -> false (* live in the body, but not parked at a known point *)
        | Some sp_s -> (
            match
              List.find_opt
                (fun (s : Descriptor.safepoint_record) ->
                  s.Descriptor.fs_id = sp_s.Descriptor.fs_id)
                fm_d.Descriptor.fm_safepoints
            with
            | None ->
                (* the target body lost this program point to specialization *)
                t.safe.sc_osr_aborts <- t.safe.sc_osr_aborts + 1;
                false
            | Some sp_d ->
                let sp_cur = ctx.oh_reg Insn.sp in
                let n_saves_s = List.length fm_s.Descriptor.fm_saves in
                let sp_entry = sp_cur + fm_s.Descriptor.fm_frame_bytes + (8 * n_saves_s) in
                let read_loc = function
                  | Descriptor.Loc_reg r -> ctx.oh_reg r
                  | Descriptor.Loc_slot s -> ctx.oh_mem (sp_cur + (8 * s))
                in
                let src_vals =
                  List.map (fun (v, loc) -> (v, read_loc loc)) sp_s.Descriptor.fs_live
                in
                if
                  List.exists
                    (fun (v, _) -> not (List.mem_assoc v src_vals))
                    sp_d.Descriptor.fs_live
                then begin
                  (* a target-live vreg has no source value: maps disagree *)
                  t.safe.sc_osr_aborts <- t.safe.sc_osr_aborts + 1;
                  false
                end
                else begin
                  let src_save_idx r =
                    let rec go i = function
                      | [] -> None
                      | r' :: _ when r' = r -> Some i
                      | _ :: rest -> go (i + 1) rest
                    in
                    go 0 fm_s.Descriptor.fm_saves
                  in
                  let caller_val r =
                    match src_save_idx r with
                    | Some i -> ctx.oh_mem (sp_entry - (8 * (i + 1)))
                    | None -> ctx.oh_reg r
                  in
                  let caller_vals =
                    List.map
                      (fun r -> (r, caller_val r))
                      (List.sort_uniq compare
                         (fm_s.Descriptor.fm_saves @ fm_d.Descriptor.fm_saves))
                  in
                  let n_saves_d = List.length fm_d.Descriptor.fm_saves in
                  let sp_new =
                    sp_entry - (8 * n_saves_d) - fm_d.Descriptor.fm_frame_bytes
                  in
                  List.iteri
                    (fun i r ->
                      ctx.oh_set_mem (sp_entry - (8 * (i + 1))) (List.assoc r caller_vals))
                    fm_d.Descriptor.fm_saves;
                  for s = 0 to (fm_d.Descriptor.fm_frame_bytes / 8) - 1 do
                    ctx.oh_set_mem (sp_new + (8 * s)) 0
                  done;
                  List.iter
                    (fun (v, loc) ->
                      let value = List.assoc v src_vals in
                      match loc with
                      | Descriptor.Loc_reg r -> ctx.oh_set_reg r value
                      | Descriptor.Loc_slot s -> ctx.oh_set_mem (sp_new + (8 * s)) value)
                    sp_d.Descriptor.fs_live;
                  (* registers only the source saved: the target epilogue
                     will not restore them, so the caller's value goes back
                     into the register now *)
                  List.iter
                    (fun r ->
                      if not (List.mem r fm_d.Descriptor.fm_saves) then
                        ctx.oh_set_reg r (List.assoc r caller_vals))
                    fm_s.Descriptor.fm_saves;
                  ctx.oh_set_reg Insn.sp sp_new;
                  ctx.oh_set_pc sp_d.Descriptor.fs_pc;
                  ctx.oh_set_top_frame dst;
                  t.safe.sc_osr_transfers <- t.safe.sc_osr_transfers + 1;
                  emit t
                    (Trace.Osr_transfer
                       {
                         cid;
                         hart = ctx.oh_hart;
                         fn = fe.fe_name;
                         sp_id = sp_s.Descriptor.fs_id;
                         from_pc = pc;
                         to_pc = sp_d.Descriptor.fs_pc;
                         slots = List.length sp_d.Descriptor.fs_live;
                       });
                  true
                end))
    | _ -> false

(* Candidate (source, target) body pairs for one pending action: a bind
   moves the activation out of the generic (or the previously installed
   variant) into the variant being bound; an unbind moves it from the
   installed variant back into the generic.  Function-pointer actions have
   no frame maps — their sites are in foreign callers. *)
let osr_for_action t (ctx : osr_hart) ~cid = function
  | Act_bind (fe, v) ->
      let g = fe.fe_record.fd_generic in
      let moved =
        try_osr_transfer t ctx ~cid ~fe
          ~src:(g, fe.fe_record.fd_generic_size)
          ~dst:v.va_addr
      in
      if not moved then (
        match fe.fe_installed with
        | Some addr when addr <> v.va_addr -> (
            match variant_of fe addr with
            | Some old ->
                ignore
                  (try_osr_transfer t ctx ~cid ~fe ~src:(addr, old.va_size) ~dst:v.va_addr)
            | None -> ())
        | _ -> ())
  | Act_unbind fe -> (
      match fe.fe_installed with
      | Some addr -> (
          match variant_of fe addr with
          | Some v ->
              ignore
                (try_osr_transfer t ctx ~cid ~fe ~src:(addr, v.va_size)
                   ~dst:fe.fe_record.fd_generic)
          | None -> ())
      | None -> ())
  | Act_bind_ptr _ | Act_unbind_ptr _ -> ()

(* Deferred application is strict where an interactive commit is lenient: a
   call site whose bytes diverged from what the runtime last wrote is a
   transaction failure (triggering rollback of the whole set), not a
   skip-and-report.  A deferred set must apply exactly as journaled or not
   at all. *)
let check_sites_strict t who sites =
  List.iter
    (fun s ->
      if not (site_intact t s) then
        errf "deferred apply: call site 0x%x of %s changed by another mechanism" s.s_addr
          who)
    sites

(* Lenient application, used for the entities commit_safe/revert_safe can
   patch immediately: identical behavior to the unsafe paths (foreign site
   bytes are skipped and reported, never corrupted). *)
let apply_action_lenient t = function
  | Act_bind (fe, v) -> install_variant t fe v
  | Act_unbind fe -> revert_fn_entry t fe
  | Act_bind_ptr (fp, target) -> install_fnptr t fp ~target
  | Act_unbind_ptr fp -> revert_fnptr_entry t fp

(* Strict application, used inside a deferred transaction: foreign site
   bytes abort the set (and roll it back) instead of being skipped. *)
let apply_action t action =
  (match action with
  | Act_bind (fe, _) | Act_unbind fe -> check_sites_strict t fe.fe_name fe.fe_sites
  | Act_bind_ptr (fp, _) | Act_unbind_ptr fp ->
      check_sites_strict t fp.fp_name fp.fp_sites);
  apply_action_lenient t action

(* What it takes to restore an entity to its pre-transaction state. *)
type undo =
  | Undo_fn of fn_entry * int option  (* previously installed variant *)
  | Undo_ptr of fnptr_entry * int option  (* previously committed target *)

let undo_of = function
  | Act_bind (fe, _) | Act_unbind fe -> Undo_fn (fe, fe.fe_installed)
  | Act_bind_ptr (fp, _) | Act_unbind_ptr fp -> Undo_ptr (fp, fp.fp_committed)

let undo_action t = function
  | Undo_fn (fe, prior) -> (
      revert_fn_entry t fe;
      match prior with
      | None -> ()
      | Some addr -> (
          match
            List.find_opt
              (fun (v : Descriptor.variant_record) -> v.va_addr = addr)
              fe.fe_variants
          with
          | Some v -> install_variant t fe v
          | None -> ()))
  | Undo_ptr (fp, prior) -> (
      revert_fnptr_entry t fp;
      match prior with None -> () | Some target -> install_fnptr t fp ~target)

(** Apply one journaled set transactionally: every action, in order, or —
    if any application fails — undo the already-applied prefix (in reverse
    order) so the image is exactly as before the attempt.  Returns [true]
    on full application. *)
let apply_set t (pset : pending_set) : bool =
  let applied = ref [] in
  match
    List.iter
      (fun act ->
        applied := undo_of act :: !applied;
        apply_action t act)
      pset.pset_actions
  with
  | () ->
      t.safe.sc_applied <- t.safe.sc_applied + List.length pset.pset_actions;
      emit t
        (Trace.Pending_drained
           {
             cid = pset.pset_cid;
             pset = pset.pset_id;
             actions = List.length pset.pset_actions;
           });
      (* close the cross-hart commit chain: the commit staged on
         [pset_hart], the drain ran here *)
      emit t
        (Trace.Causal_edge
           {
             edge = "drain";
             id = pset.pset_cid;
             src_hart = pset.pset_hart;
             dst_hart = cur_hart t;
           });
      true
  | exception (Runtime_error _ | Patch.Patch_error _) ->
      List.iter (undo_action t) !applied;
      t.safe.sc_rolled_back <- t.safe.sc_rolled_back + 1;
      emit t (Trace.Pending_rollback { cid = pset.pset_cid; pset = pset.pset_id });
      false

(** [multiverse_commit], made safe: bind every entity whose patch ranges
    have no live activation; journal (policy [Defer], the default) or
    refuse (policy [Deny]) the rest.  Returns the number of entities in the
    specialized state *now* — deferred ones are excluded and appear in
    {!pending} until a safepoint applies them.  Like {!commit}, binding
    decisions use the switch values at call time; a deferred action binds
    the variant selected *now*, not at application time. *)
let commit_safe ?(policy = Defer) t : int =
  with_barrier t @@ fun () ->
  emit_span_begin t "commit_safe";
  let live = live_addrs t in
  supersede_pending t;
  t.fallbacks <- [];
  let deferred = ref [] in
  let bound = ref 0 in
  let stage action =
    if ranges_live (action_ranges action) live then
      match policy with
      | Defer ->
          deferred := action :: !deferred;
          t.safe.sc_deferred <- t.safe.sc_deferred + 1;
          emit t (Trace.Safe_defer { cid = t.cur_cid; fn = action_name action })
      | Deny ->
          t.safe.sc_denied <- t.safe.sc_denied + 1;
          emit t (Trace.Safe_deny { cid = t.cur_cid; fn = action_name action })
    else begin
      apply_action_lenient t action;
      incr bound
    end
  in
  List.iter
    (fun fe ->
      (* under lazy materialization the variant the valuation needs may
         not be resident yet: materialize (or dedup-link) it first, so
         selection below sees the same candidates an eager image carries *)
      ensure_variant t fe;
      match select_variant t fe with
      | Some v ->
          if fe.fe_installed = Some v.va_addr then incr bound else stage (Act_bind (fe, v))
      | None ->
          let installed =
            fe.fe_installed <> None || fe.fe_prologue <> None || fe.fe_saved_body <> None
          in
          if installed then begin
            (* a revert to generic is not a bind: stage it, then take the
               count back out *)
            let before = !bound in
            stage (Act_unbind fe);
            bound := before
          end;
          if specializable t fe then fallback t fe.fe_name)
    t.functions;
  List.iter
    (fun fp ->
      let target = Image.read t.image fp.fp_var.vr_addr 8 in
      if target = 0 then begin
        if fp.fp_committed <> None then begin
          let before = !bound in
          stage (Act_unbind_ptr fp);
          bound := before
        end;
        fallback t fp.fp_name
      end
      else if fp.fp_committed = Some target then incr bound
      else stage (Act_bind_ptr (fp, target)))
    t.fnptrs;
  journal t (List.rev !deferred);
  emit_span_end t "commit_safe" !bound;
  !bound

(** [multiverse_revert], made safe: restore every entity whose patch ranges
    are quiescent; journal or refuse the rest.  Returns the number of
    entities in the pristine state when the call returns. *)
let revert_safe ?(policy = Defer) t : int =
  with_barrier t @@ fun () ->
  emit_span_begin t "revert_safe";
  let live = live_addrs t in
  supersede_pending t;
  t.fallbacks <- [];
  let deferred = ref [] in
  let blocked = ref 0 in
  let stage action =
    if ranges_live (action_ranges action) live then begin
      incr blocked;
      match policy with
      | Defer ->
          deferred := action :: !deferred;
          t.safe.sc_deferred <- t.safe.sc_deferred + 1;
          emit t (Trace.Safe_defer { cid = t.cur_cid; fn = action_name action })
      | Deny ->
          t.safe.sc_denied <- t.safe.sc_denied + 1;
          emit t (Trace.Safe_deny { cid = t.cur_cid; fn = action_name action })
    end
    else apply_action_lenient t action
  in
  List.iter (fun fe -> stage (Act_unbind fe)) t.functions;
  List.iter (fun fp -> stage (Act_unbind_ptr fp)) t.fnptrs;
  journal t (List.rev !deferred);
  let n = List.length t.functions + List.length t.fnptrs - !blocked in
  emit_span_end t "revert_safe" n;
  n

(* Sweep the variant cache's deferred eviction victims: a victim on the
   evict-pending list releases its alias (and, for the last alias, its
   body bytes) once the body is neither installed — its journaled unbind
   drained, or a newer commit re-bound the function elsewhere — nor home
   to a live activation (OSR may have just moved one out). *)
let sweep_evictions t =
  match t.lazy_st with
  | None -> ()
  | Some lz ->
      if lz.lz_evict_pending <> [] then begin
        let live = match t.live_scanner with Some scan -> scan () | None -> [] in
        lz.lz_evict_pending <-
          List.filter
            (fun sym ->
              match Hashtbl.find_opt lz.lz_variants sym with
              | None -> false (* already gone *)
              | Some mi ->
                  let addr = mi.mi_record.Descriptor.va_addr in
                  let size = max mi.mi_record.Descriptor.va_size 1 in
                  if
                    mi.mi_fn.fe_installed = Some addr
                    || List.exists (fun a -> a >= addr && a < addr + size) live
                  then true
                  else begin
                    ignore (drop_alias t lz sym mi);
                    false
                  end)
            lz.lz_evict_pending
      end

(** The quiescence-point drain, wired to the machine's safepoint hook.
    Cheap when nothing is pending (one list check).  Otherwise each pending
    set whose touched ranges are all quiescent is applied transactionally
    and removed — applied exactly once, or rolled back and dropped if an
    application fails mid-set.  Sets whose targets are still live stay
    journaled for a later safepoint.  The variant cache's deferred
    eviction victims are swept here too: their bytes come free once the
    unbind has landed and no activation remains in the body. *)
let safepoint t =
  t.safe.sc_polls <- t.safe.sc_polls + 1;
  let evict_waiting =
    match t.lazy_st with Some lz -> lz.lz_evict_pending <> [] | None -> false
  in
  if (t.pending <> [] || evict_waiting) && not t.in_safepoint then begin
    (* only polls that actually inspect a journal are reported: the
       empty-journal fast path would flood the ring with noise *)
    if t.pending <> [] then
      emit t (Trace.Safepoint_poll { pending = List.length t.pending });
    t.in_safepoint <- true;
    Fun.protect
      ~finally:(fun () -> t.in_safepoint <- false)
      (fun () ->
        (* Resolve the polling hart's accessors *before* entering the
           rendezvous: parking the other harts advances the container's
           current-hart cursor, and the transfer must target the hart
           whose safepoint this is. *)
        let osr_ctx =
          match t.osr with
          | Some ctx_of when t.strategy = Call_site_patching -> Some (ctx_of ())
          | _ -> None
        in
        with_barrier t @@ fun () ->
        (* Before testing quiescence, try to *create* it: move the polling
           hart's activation out of any body a pending action still needs
           (on-stack replacement).  Only under call-site patching — body
           patching relocates variant code over the generic body, which the
           frame maps do not describe. *)
        (match osr_ctx with
        | Some ctx ->
            List.iter
              (fun pset ->
                List.iter (osr_for_action t ctx ~cid:pset.pset_cid) pset.pset_actions)
              t.pending
        | None -> ());
        if t.pending <> [] then begin
          let live = live_addrs t in
          t.pending <-
            List.filter
              (fun pset ->
                let quiescent =
                  not
                    (List.exists
                       (fun a -> ranges_live (action_ranges a) live)
                       pset.pset_actions)
                in
                if quiescent then begin
                  ignore (apply_set t pset);
                  false (* applied or rolled back: either way the set is done *)
                end
                else true)
              t.pending
        end;
        sweep_evictions t)
  end

(** Names of entities with journaled (not yet applied) patches. *)
let pending t : string list =
  List.concat_map (fun pset -> List.map action_name pset.pset_actions) t.pending

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let fallbacks t = List.rev t.fallbacks
let skipped_sites t = List.rev t.skipped_sites

let installed_variant t name =
  match find_fn_by_name t name with
  | Some fe -> Option.map (fun addr -> name_of t.image addr) fe.fe_installed
  | None -> None

(** Every multiversed body as a named [Mv_obs.Heat.region]: the generic
    body plus each variant, with address ranges from the descriptors and
    the variant's switch binding rendered from its guard records
    ([switch=v], ranges as [switch=lo..hi], comma-joined).  Registration
    order is function order, generic before variants, so heat reports are
    deterministic.  This is the region census [Harness.enable_heat]
    feeds to the heat accumulator. *)
let heat_regions t : Mv_obs.Heat.region list =
  let switches_of (v : Descriptor.variant_record) =
    String.concat ","
      (List.map
         (fun (g : Descriptor.guard_record) ->
           let name = name_of t.image g.Descriptor.gr_var in
           if g.Descriptor.gr_lo = g.Descriptor.gr_hi then
             Printf.sprintf "%s=%d" name g.Descriptor.gr_lo
           else Printf.sprintf "%s=%d..%d" name g.Descriptor.gr_lo g.Descriptor.gr_hi)
         v.Descriptor.va_guards)
  in
  List.concat_map
    (fun fe ->
      let fd = fe.fe_record in
      {
        Mv_obs.Heat.r_name = fe.fe_name;
        r_fn = fe.fe_name;
        r_kind = Mv_obs.Heat.Generic;
        r_switches = "";
        r_lo = fd.Descriptor.fd_generic;
        r_hi = fd.Descriptor.fd_generic + fd.Descriptor.fd_generic_size;
      }
      :: List.map
           (fun (v : Descriptor.variant_record) ->
             {
               Mv_obs.Heat.r_name = name_of t.image v.Descriptor.va_addr;
               r_fn = fe.fe_name;
               r_kind = Mv_obs.Heat.Variant;
               r_switches = switches_of v;
               r_lo = v.Descriptor.va_addr;
               r_hi = v.Descriptor.va_addr + v.Descriptor.va_size;
             })
           fe.fe_variants)
    t.functions

(** Whether demand-driven materialization is enabled. *)
let lazy_enabled t = t.lazy_st <> None

(** Materialized variants currently resident: (symbol, body address,
    body size), symbol-sorted.  Dedup aliases appear individually (same
    address, distinct symbols); empty when lazy materialization is off. *)
let materialized_variants t : (string * int * int) list =
  match t.lazy_st with
  | None -> []
  | Some lz ->
      Hashtbl.fold
        (fun sym (mi : mat_info) acc ->
          (sym, mi.mi_record.Descriptor.va_addr, mi.mi_record.Descriptor.va_size) :: acc)
        lz.lz_variants []
      |> List.sort compare

(** Variant symbols the cache must keep resident for the journal's sake:
    each journaled (not yet drained) bind still needs its variant's body
    bytes, so [Heat.evict_plan] advisors must exclude these.  Sorted;
    empty when lazy materialization is off. *)
let pending_variants t : string list =
  match t.lazy_st with
  | None -> []
  | Some lz ->
      let addrs = pending_variant_addrs t in
      Hashtbl.fold
        (fun sym (mi : mat_info) acc ->
          if List.mem mi.mi_record.Descriptor.va_addr addrs then sym :: acc else acc)
        lz.lz_variants []
      |> List.sort_uniq compare

(** Resident variant-text bytes (unique bodies, allocation-sized) — the
    quantity the byte budget bounds.  [0] when lazy materialization is
    off. *)
let variant_bytes t =
  match t.lazy_st with None -> 0 | Some lz -> lz.lz_bytes

type stats = {
  st_functions : int;
  st_variants : int;
  st_callsites : int;
  st_sites_inlined : int;
  st_sites_retargeted : int;
  st_patches : int;
  st_bytes_patched : int;
  st_safe_deferred : int;  (** actions journaled by commit_safe/revert_safe *)
  st_safe_denied : int;  (** actions refused under the [Deny] policy *)
  st_safe_superseded : int;  (** journaled actions dropped by a newer commit *)
  st_safe_applied : int;  (** deferred actions applied at safepoints *)
  st_safe_rolled_back : int;  (** pending sets rolled back mid-apply *)
  st_safepoint_polls : int;  (** safepoint invocations *)
  st_pending : int;  (** actions currently journaled *)
  st_osr_transfers : int;  (** live activations moved by on-stack replacement *)
  st_osr_aborts : int;  (** transfers abandoned (frame maps did not line up) *)
  st_materialized : int;  (** variants materialized on demand (dedup hits included) *)
  st_dedup_hits : int;  (** materializations satisfied by a structural-hash hit *)
  st_cache_hits : int;  (** commits that found the needed variant already resident *)
  st_evictions : int;  (** aliases dropped under the byte budget *)
  st_budget_denials : int;  (** materializations refused (budget or region full) *)
  st_variant_bytes : int;  (** resident variant-text bytes (unique bodies) *)
}

let stats t =
  let all_sites =
    List.concat_map (fun fe -> fe.fe_sites) t.functions
    @ List.concat_map (fun fp -> fp.fp_sites) t.fnptrs
  in
  let lzc f = match t.lazy_st with None -> 0 | Some lz -> f lz in
  {
    st_functions = List.length t.functions;
    st_variants =
      List.fold_left (fun acc fe -> acc + List.length fe.fe_variants) 0 t.functions;
    st_callsites = List.length all_sites;
    st_sites_inlined =
      List.length (List.filter (fun s -> match s.s_state with Site_inlined _ -> true | _ -> false) all_sites);
    st_sites_retargeted =
      List.length
        (List.filter (fun s -> match s.s_state with Site_retargeted _ -> true | _ -> false) all_sites);
    st_patches = t.patch.Patch.patches;
    st_bytes_patched = t.patch.Patch.bytes_patched;
    st_safe_deferred = t.safe.sc_deferred;
    st_safe_denied = t.safe.sc_denied;
    st_safe_superseded = t.safe.sc_superseded;
    st_safe_applied = t.safe.sc_applied;
    st_safe_rolled_back = t.safe.sc_rolled_back;
    st_safepoint_polls = t.safe.sc_polls;
    st_pending =
      List.fold_left (fun acc pset -> acc + List.length pset.pset_actions) 0 t.pending;
    st_osr_transfers = t.safe.sc_osr_transfers;
    st_osr_aborts = t.safe.sc_osr_aborts;
    st_materialized = lzc (fun lz -> lz.lz_materialized);
    st_dedup_hits = lzc (fun lz -> lz.lz_dedup_hits);
    st_cache_hits = lzc (fun lz -> lz.lz_cache_hits);
    st_evictions = lzc (fun lz -> lz.lz_evictions);
    st_budget_denials = lzc (fun lz -> lz.lz_budget_denials);
    st_variant_bytes = lzc (fun lz -> lz.lz_bytes);
  }

(** The {!stats} record as a JSON object (field names without the [st_]
    prefix) — one third of the unified metrics export. *)
let stats_json (s : stats) : Mv_obs.Json.t =
  Mv_obs.Json.Obj
    [
      ("functions", Mv_obs.Json.Int s.st_functions);
      ("variants", Mv_obs.Json.Int s.st_variants);
      ("callsites", Mv_obs.Json.Int s.st_callsites);
      ("sites_inlined", Mv_obs.Json.Int s.st_sites_inlined);
      ("sites_retargeted", Mv_obs.Json.Int s.st_sites_retargeted);
      ("patches", Mv_obs.Json.Int s.st_patches);
      ("bytes_patched", Mv_obs.Json.Int s.st_bytes_patched);
      ("safe_deferred", Mv_obs.Json.Int s.st_safe_deferred);
      ("safe_denied", Mv_obs.Json.Int s.st_safe_denied);
      ("safe_superseded", Mv_obs.Json.Int s.st_safe_superseded);
      ("safe_applied", Mv_obs.Json.Int s.st_safe_applied);
      ("safe_rolled_back", Mv_obs.Json.Int s.st_safe_rolled_back);
      ("safepoint_polls", Mv_obs.Json.Int s.st_safepoint_polls);
      ("pending", Mv_obs.Json.Int s.st_pending);
      ("osr_transfers", Mv_obs.Json.Int s.st_osr_transfers);
      ("osr_aborts", Mv_obs.Json.Int s.st_osr_aborts);
      ("materialized", Mv_obs.Json.Int s.st_materialized);
      ("dedup_hits", Mv_obs.Json.Int s.st_dedup_hits);
      ("cache_hits", Mv_obs.Json.Int s.st_cache_hits);
      ("evictions", Mv_obs.Json.Int s.st_evictions);
      ("budget_denials", Mv_obs.Json.Int s.st_budget_denials);
      ("variant_bytes", Mv_obs.Json.Int s.st_variant_bytes);
    ]

(** Export the {!stats} counters into a metrics registry as
    [mv_runtime_<counter>] gauges, so one registry scrape carries the
    runtime's cumulative state alongside the event-derived series.
    Gauges, not counters: {!stats} is already cumulative, and re-bridging
    after more patching must overwrite, not double-count. *)
let stats_metrics (s : stats) (m : Mv_obs.Metrics.t) : unit =
  List.iter
    (fun (name, v) ->
      Mv_obs.Metrics.set_gauge m ("mv_runtime_" ^ name) [] (float_of_int v))
    [
      ("functions", s.st_functions);
      ("variants", s.st_variants);
      ("callsites", s.st_callsites);
      ("sites_inlined", s.st_sites_inlined);
      ("sites_retargeted", s.st_sites_retargeted);
      ("patches", s.st_patches);
      ("bytes_patched", s.st_bytes_patched);
      ("safe_deferred", s.st_safe_deferred);
      ("safe_denied", s.st_safe_denied);
      ("safe_superseded", s.st_safe_superseded);
      ("safe_applied", s.st_safe_applied);
      ("safe_rolled_back", s.st_safe_rolled_back);
      ("safepoint_polls", s.st_safepoint_polls);
      ("pending", s.st_pending);
      ("osr_transfers", s.st_osr_transfers);
      ("osr_aborts", s.st_osr_aborts);
      ("materialized", s.st_materialized);
      ("dedup_hits", s.st_dedup_hits);
      ("cache_hits", s.st_cache_hits);
      ("evictions", s.st_evictions);
      ("budget_denials", s.st_budget_denials);
      ("variant_bytes", s.st_variant_bytes);
    ]
