(* Size accounting for Section 5 of the paper:

   "For the descriptors, we add 32 bytes for every configuration switch,
    16 bytes for every call site, and 48 + #variants * (32 + #guards * 16)
    bytes per multiversed function to the binary."

   These formulas are checked against the actual section sizes of the built
   image — they hold by construction because [Descriptor] uses exactly those
   record layouts. *)

module Objfile = Mv_codegen.Objfile
module Image = Mv_link.Image

type section_sizes = {
  sz_text : int;
  sz_data : int;
  sz_variables : int;
  sz_functions : int;
  sz_callsites : int;
}

let section_sizes (img : Image.t) : section_sizes =
  let size sec =
    match Image.section_range img sec with
    | Some r -> r.Image.sr_size
    | None -> 0
  in
  {
    sz_text = size Objfile.Text;
    sz_data = size Objfile.Data;
    sz_variables = size Objfile.Mv_variables;
    sz_functions = size Objfile.Mv_functions;
    sz_callsites = size Objfile.Mv_callsites;
  }

let descriptor_overhead (s : section_sizes) = s.sz_variables + s.sz_functions + s.sz_callsites

(** The paper's per-function descriptor formula. *)
let function_record_bytes ~variants ~total_guards =
  48 + (variants * 32) + (total_guards * 16)

type program_stats = {
  ps_sections : section_sizes;
  ps_switches : int;
  ps_mv_functions : int;
  ps_variants : int;  (** descriptor records across all functions *)
  ps_callsites : int;
  ps_text_in_variants : int;  (** bytes of text occupied by variant bodies *)
}

let of_program (p : Compiler.program) : program_stats =
  let img = p.Compiler.p_image in
  let sections = section_sizes img in
  let variables = Descriptor.parse_variables img in
  let functions = Descriptor.parse_functions img in
  let callsites = Descriptor.parse_callsites img in
  let variants =
    List.fold_left
      (fun acc (f : Descriptor.function_record) -> acc + List.length f.fd_variants)
      0 functions
  in
  let text_in_variants =
    List.fold_left
      (fun acc (f : Descriptor.function_record) ->
        List.fold_left
          (fun acc (v : Descriptor.variant_record) -> acc + v.va_size)
          acc
          (List.sort_uniq compare f.fd_variants))
      0 functions
  in
  {
    ps_sections = sections;
    ps_switches = List.length variables;
    ps_mv_functions = List.length functions;
    ps_variants = variants;
    ps_callsites = List.length callsites;
    ps_text_in_variants = text_in_variants;
  }

(** {!program_stats} as a JSON object — the static third of the unified
    metrics export. *)
let program_stats_json (s : program_stats) : Mv_obs.Json.t =
  let open Mv_obs.Json in
  Obj
    [
      ( "sections",
        Obj
          [
            ("text", Int s.ps_sections.sz_text);
            ("data", Int s.ps_sections.sz_data);
            ("variables", Int s.ps_sections.sz_variables);
            ("functions", Int s.ps_sections.sz_functions);
            ("callsites", Int s.ps_sections.sz_callsites);
          ] );
      ("switches", Int s.ps_switches);
      ("mv_functions", Int s.ps_mv_functions);
      ("variants", Int s.ps_variants);
      ("callsites", Int s.ps_callsites);
      ("text_in_variants", Int s.ps_text_in_variants);
      ("descriptor_overhead", Int (descriptor_overhead s.ps_sections));
    ]

let pp fmt (s : program_stats) =
  Format.fprintf fmt
    "@[<v>text                 %8d B@,data                 %8d B@,multiverse.variables %8d B (%d switches)@,multiverse.functions %8d B (%d functions, %d variant records)@,multiverse.callsites %8d B (%d call sites)@,variant text         %8d B@,descriptor overhead  %8d B@]"
    s.ps_sections.sz_text s.ps_sections.sz_data s.ps_sections.sz_variables s.ps_switches
    s.ps_sections.sz_functions s.ps_mv_functions s.ps_variants s.ps_sections.sz_callsites
    s.ps_callsites s.ps_text_in_variants
    (descriptor_overhead s.ps_sections)
