(** Ahead-of-time variant generation — the compiler-plugin half of
    multiverse (paper Section 3).

    For every function carrying the [multiverse] attribute the generator
    clones the IR body once per assignment of the referenced configuration
    switches, substitutes the assigned constants for the switch reads
    {e before} optimization, optimizes each clone, and merges clones whose
    bodies become structurally equal.  The generic body is optimized too but
    never inlined, and remains the fallback for out-of-domain values. *)

(** One (possibly merged) specialized variant. *)
type variant = {
  v_symbol : string;
      (** variant symbol, e.g. ["multi.A=1.B=01"] for a merged variant *)
  v_fn : Mv_ir.Ir.fn;  (** the specialized, optimized body *)
  v_guards : Guard.t list;
      (** guard boxes covering the assignments; one descriptor record is
          emitted per box *)
  v_assignments : (string * int) list list;  (** the assignments covered *)
}

(** Generation result for one multiversed function. *)
type mv_function = {
  mf_name : string;  (** the generic function's symbol *)
  mf_switches : string list;  (** bound switches, sorted by name *)
  mf_variants : variant list;
}

(** A per-function specialization recipe — what lazy (demand-driven)
    variant generation records instead of expanding the switch cross
    product ahead of time.  [rc_body] is a clone of the generic body
    taken after safepoint insertion but {e before} optimization, so a
    later [bind_switches]+optimize materializes exactly the body the
    eager pipeline would have produced for the same assignment. *)
type recipe = {
  rc_name : string;  (** the generic function's symbol *)
  rc_body : Mv_ir.Ir.fn;  (** safepointed, unoptimized generic clone *)
  rc_switches : (string * int list) list;
      (** bound switches with their specialization domains, sorted by
          name *)
}

type result = {
  r_prog : Mv_ir.Ir.prog;  (** input program with variants appended *)
  r_functions : mv_function list;
  r_recipes : recipe list;
      (** one per multiversed function with bound switches when
          [lazy_variants] was set; [[]] under eager generation *)
  r_warnings : string list;
}

(** Cap on the assignment cross product per function (default 128); beyond
    it only the generic variant is kept and a warning points the developer
    at [values(..)]/[bind(..)] — the paper's answer to variant explosion
    (Section 7.1). *)
val default_max_variants : int

(** The multiverse switches visible to a translation unit (defined or
    declared [extern multiverse]). *)
val switch_globals : Mv_ir.Ir.prog -> (string * Mv_ir.Ir.global) list

(** Replace every read of the assigned switches in [fn] with the assigned
    constant (in place). *)
val bind_switches : Mv_ir.Ir.fn -> (string * int) list -> unit

(** Symbol name for a variant covering [assignments] of [switches]:
    per-variable value lists are concatenated ("B=01") when single-digit,
    comma-joined otherwise. *)
val variant_symbol : string -> string list -> (string * int) list list -> string

(** Structural hash of a function body: a hex digest of
    [Mv_opt.Merge.canonical_form] — blocks in reverse post-order,
    registers renamed by first occurrence — so structurally equal bodies
    collide across functions, any instruction change alters the digest,
    and the value is stable across runs (no physical equality or address
    dependence).  This is the variant cache's dedup key. *)
val structural_hash : Mv_ir.Ir.fn -> string

(** The switches [fn] reads (restricted by its [bind(..)] attribute),
    paired with their specialization domains and sorted by name, plus
    warnings for function-pointer switches (which are bound at commit
    time, never specialized). *)
val bound_domains :
  (string * Mv_ir.Ir.global) list ->
  Mv_ir.Ir.fn ->
  (string * int list) list * string list

(** Specialize one {!recipe} for a single point assignment — the
    materialization step the runtime runs on the first commit of an
    unseen switch valuation.  The assignment must cover exactly
    [rc_switches]; the result carries one guard box per switch with
    [lo = hi = value]. *)
val specialize_recipe : recipe -> (string * int) list -> variant

(** Run variant generation over a translation unit.  Generic functions are
    optimized in place; variant functions are appended to the returned
    program so the back end emits them like ordinary code.

    With [lazy_variants] (default false) the cross product is never
    expanded: the returned program gains no variant functions, every
    multiversed function's descriptor is emitted with zero variants, and
    [r_recipes] carries the specialization recipes the runtime
    materializes variants from on demand. *)
val generate :
  ?max_variants:int -> ?lazy_variants:bool -> Mv_ir.Ir.prog -> result
