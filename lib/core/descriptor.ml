(* Binary descriptor records (Sections 3 and 5 of the paper).

   The three descriptor kinds live in their own sections so that the linker
   concatenates them into contiguous arrays.  Record sizes match the paper
   exactly:

   - variable record:   32 bytes
   - call-site record:  16 bytes
   - function record:   48 + #variants * (32 + #guards * 16) bytes

   Layouts (all fields little-endian):

   variable (32 B):
     0  u64  address of the switch            (Abs64 relocation)
     8  u32  width in bytes
     12 u32  signedness (0/1)
     16 u32  flags (bit 0: function pointer)
     20 ..   reserved

   call site (16 B):
     0  u64  address of the callee: the generic function for direct sites,
             the fn-pointer variable for indirect sites (Abs64)
     8  u64  address of the call instruction  (Abs64 + addend)

   function header (48 B):
     0  u64  address of the generic function  (Abs64)
     8  u32  number of variants
     12 u32  flags
     16 u32  size of the generic body in bytes
     20 ..   reserved
   followed per variant by (32 B):
     0  u64  address of the variant body      (Abs64)
     8  u32  number of guards
     12 u32  flags
     16 u32  size of the variant body in bytes
     20 ..   reserved
   followed per guard by (16 B):
     0  u64  address of the guarded variable  (Abs64)
     8  i32  low bound (inclusive)
     12 i32  high bound (inclusive)

   Our OSR extension adds a fourth section, [multiverse.framemaps] — one
   record per body (generic or variant) of a multiversed function:

   framemap header (24 B):
     0  u64  address of the body              (Abs64)
     8  u32  number of safepoints
     12 u32  spill-area size in bytes (the prologue's [sub sp] amount)
     16 u32  number of saved registers
     20 ..   reserved
   followed by the saved-register list (u32 each, in push order, zero-padded
   to 8-byte alignment), then per safepoint (16 B):
     0  u32  stable safepoint id
     4  u32  body-relative offset of the poll pc
     8  u32  number of live entries
     12 ..   reserved
   followed per live entry by (8 B):
     0  u32  IR virtual register
     4  u32  location: bit 16 clear = machine register number,
             bit 16 set = sp-relative spill slot index                  *)

module Ir = Mv_ir.Ir
module Objfile = Mv_codegen.Objfile
module Image = Mv_link.Image

let variable_record_size = 32
let callsite_record_size = 16
let function_header_size = 48
let variant_record_size = 32
let guard_record_size = 16

let function_record_size ~variants ~guards =
  function_header_size + (variants * variant_record_size) + (guards * guard_record_size)

let framemap_header_size = 24
let framemap_safepoint_header_size = 16
let framemap_live_entry_size = 8

(* ------------------------------------------------------------------ *)
(* Serialization into an object file                                   *)
(* ------------------------------------------------------------------ *)

let u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let emit_variable (obj : Objfile.t) (g : Ir.global) : unit =
  let b = Bytes.make variable_record_size '\000' in
  u32 b 8 g.gl_width;
  u32 b 12 (Bool.to_int g.gl_signed);
  u32 b 16 (Bool.to_int g.gl_is_fnptr);
  let off = Objfile.append obj Objfile.Mv_variables b in
  Objfile.add_reloc obj
    { Objfile.r_section = Objfile.Mv_variables; r_offset = off; r_kind = Objfile.Abs64;
      r_sym = g.gl_name; r_addend = 0 }

let emit_callsite (obj : Objfile.t) ~(caller : string) ~(site_offset : int)
    ~(callee : string) : unit =
  let b = Bytes.make callsite_record_size '\000' in
  let off = Objfile.append obj Objfile.Mv_callsites b in
  Objfile.add_reloc obj
    { Objfile.r_section = Objfile.Mv_callsites; r_offset = off; r_kind = Objfile.Abs64;
      r_sym = callee; r_addend = 0 };
  Objfile.add_reloc obj
    { Objfile.r_section = Objfile.Mv_callsites; r_offset = off + 8;
      r_kind = Objfile.Abs64; r_sym = caller; r_addend = site_offset }

(** Emit the function record for [mf].  [size_of] maps a function symbol to
    the size of its emitted body.  A merged variant whose assignment set is
    not a single box contributes one 32-byte record per guard box (each
    record pointing at the same variant body), so [n_variants] counts
    descriptor records, not variant symbols. *)
let emit_function (obj : Objfile.t) (mf : Variantgen.mv_function)
    ~(size_of : string -> int) : unit =
  let mf' =
    (* re-expose each guard box as its own single-box variant *)
    {
      mf with
      Variantgen.mf_variants =
        List.concat_map
          (fun (v : Variantgen.variant) ->
            List.map
              (fun g -> { v with Variantgen.v_guards = [ g ] })
              v.v_guards)
          mf.mf_variants;
    }
  in
  let header = Bytes.make function_header_size '\000' in
  u32 header 8 (List.length mf'.mf_variants);
  u32 header 16 (size_of mf.mf_name);
  let off = Objfile.append obj Objfile.Mv_functions header in
  Objfile.add_reloc obj
    { Objfile.r_section = Objfile.Mv_functions; r_offset = off; r_kind = Objfile.Abs64;
      r_sym = mf.mf_name; r_addend = 0 };
  List.iter
    (fun (v : Variantgen.variant) ->
      let guard = match v.v_guards with [ g ] -> g | _ -> assert false in
      let vb = Bytes.make variant_record_size '\000' in
      u32 vb 8 (List.length guard);
      u32 vb 16 (size_of v.v_symbol);
      let voff = Objfile.append obj Objfile.Mv_functions vb in
      Objfile.add_reloc obj
        { Objfile.r_section = Objfile.Mv_functions; r_offset = voff;
          r_kind = Objfile.Abs64; r_sym = v.v_symbol; r_addend = 0 };
      List.iter
        (fun (r : Guard.range) ->
          let gb = Bytes.make guard_record_size '\000' in
          u32 gb 8 r.g_lo;
          u32 gb 12 r.g_hi;
          let goff = Objfile.append obj Objfile.Mv_functions gb in
          Objfile.add_reloc obj
            { Objfile.r_section = Objfile.Mv_functions; r_offset = goff;
              r_kind = Objfile.Abs64; r_sym = r.g_var; r_addend = 0 })
        guard)
    mf'.mf_variants

(** Emit the frame-map record for one emitted fragment (a generic body or a
    variant body of a multiversed function). *)
let emit_framemap (obj : Objfile.t) (fr : Mv_codegen.Emit.fragment) : unit =
  let n_sp = List.length fr.fr_safepoints in
  let n_saves = List.length fr.fr_saves in
  let header = Bytes.make framemap_header_size '\000' in
  u32 header 8 n_sp;
  u32 header 12 fr.fr_frame_bytes;
  u32 header 16 n_saves;
  let off = Objfile.append obj Objfile.Mv_framemaps header in
  Objfile.add_reloc obj
    { Objfile.r_section = Objfile.Mv_framemaps; r_offset = off; r_kind = Objfile.Abs64;
      r_sym = fr.fr_name; r_addend = 0 };
  let padded = (n_saves + 1) / 2 * 2 in
  let sb = Bytes.make (padded * 4) '\000' in
  List.iteri (fun i r -> u32 sb (i * 4) r) fr.fr_saves;
  ignore (Objfile.append obj Objfile.Mv_framemaps sb);
  List.iter
    (fun (sp : Mv_codegen.Emit.safepoint) ->
      let n_live = List.length sp.sp_live in
      let hb = Bytes.make framemap_safepoint_header_size '\000' in
      u32 hb 0 sp.sp_id;
      u32 hb 4 sp.sp_offset;
      u32 hb 8 n_live;
      ignore (Objfile.append obj Objfile.Mv_framemaps hb);
      List.iter
        (fun (vreg, (a : Mv_codegen.Regalloc.assignment)) ->
          let eb = Bytes.make framemap_live_entry_size '\000' in
          u32 eb 0 vreg;
          (match a with
          | Mv_codegen.Regalloc.Phys r -> u32 eb 4 r
          | Mv_codegen.Regalloc.Slot s -> u32 eb 4 (0x10000 lor s)
          | Mv_codegen.Regalloc.Unused ->
              (* [Emit] filters unused vregs out of [sp_live] *)
              assert false);
          ignore (Objfile.append obj Objfile.Mv_framemaps eb))
        sp.sp_live)
    fr.fr_safepoints

(* ------------------------------------------------------------------ *)
(* Parsing from a linked image                                         *)
(* ------------------------------------------------------------------ *)

type variable = {
  vr_addr : int;
  vr_width : int;
  vr_signed : bool;
  vr_fnptr : bool;
}

type callsite = { cs_target : int; cs_site : int }

type guard_record = { gr_var : int; gr_lo : int; gr_hi : int }

type variant_record = { va_addr : int; va_size : int; va_guards : guard_record list }

type function_record = {
  fd_generic : int;
  fd_generic_size : int;
  fd_variants : variant_record list;
}

exception Parse_error of string

let i32 mem off = Int32.to_int (Bytes.get_int32_le mem off)
let u64 mem off = Int64.to_int (Bytes.get_int64_le mem off)

let parse_variables (img : Image.t) : variable list =
  match Image.section_range img Objfile.Mv_variables with
  | None -> []
  | Some { Image.sr_base; sr_size } ->
      if sr_size mod variable_record_size <> 0 then
        raise (Parse_error "multiverse.variables size is not a multiple of 32");
      let mem = img.Image.mem in
      List.init (sr_size / variable_record_size) (fun i ->
          let off = sr_base + (i * variable_record_size) in
          {
            vr_addr = u64 mem off;
            vr_width = i32 mem (off + 8);
            vr_signed = i32 mem (off + 12) <> 0;
            vr_fnptr = i32 mem (off + 16) land 1 <> 0;
          })

let parse_callsites (img : Image.t) : callsite list =
  match Image.section_range img Objfile.Mv_callsites with
  | None -> []
  | Some { Image.sr_base; sr_size } ->
      if sr_size mod callsite_record_size <> 0 then
        raise (Parse_error "multiverse.callsites size is not a multiple of 16");
      let mem = img.Image.mem in
      List.init (sr_size / callsite_record_size) (fun i ->
          let off = sr_base + (i * callsite_record_size) in
          { cs_target = u64 mem off; cs_site = u64 mem (off + 8) })

let parse_functions (img : Image.t) : function_record list =
  match Image.section_range img Objfile.Mv_functions with
  | None -> []
  | Some { Image.sr_base; sr_size } ->
      let mem = img.Image.mem in
      let limit = sr_base + sr_size in
      let rec parse_fns off acc =
        (* records are 8-aligned; skip alignment padding (zero generic
           address would be invalid) *)
        if off + function_header_size > limit then List.rev acc
        else begin
          let generic = u64 mem off in
          if generic = 0 then List.rev acc
          else begin
            let n_variants = i32 mem (off + 8) in
            let generic_size = i32 mem (off + 16) in
            let off = off + function_header_size in
            let rec parse_variants n off acc_v =
              if n = 0 then (List.rev acc_v, off)
              else begin
                let va_addr = u64 mem off in
                let n_guards = i32 mem (off + 8) in
                let va_size = i32 mem (off + 16) in
                let off = off + variant_record_size in
                let guards =
                  List.init n_guards (fun i ->
                      let g = off + (i * guard_record_size) in
                      { gr_var = u64 mem g; gr_lo = i32 mem (g + 8); gr_hi = i32 mem (g + 12) })
                in
                parse_variants (n - 1)
                  (off + (n_guards * guard_record_size))
                  ({ va_addr; va_size; va_guards = guards } :: acc_v)
              end
            in
            let variants, off' = parse_variants n_variants off [] in
            parse_fns off'
              ({ fd_generic = generic; fd_generic_size = generic_size;
                 fd_variants = variants }
              :: acc)
          end
        end
      in
      parse_fns sr_base []

type frame_loc = Loc_reg of int | Loc_slot of int

type safepoint_record = {
  fs_id : int;
  fs_pc : int;  (** absolute: body address + recorded offset *)
  fs_live : (int * frame_loc) list;
}

type framemap_record = {
  fm_addr : int;
  fm_frame_bytes : int;
  fm_saves : int list;
  fm_safepoints : safepoint_record list;
}

let parse_framemaps (img : Image.t) : framemap_record list =
  match Image.section_range img Objfile.Mv_framemaps with
  | None -> []
  | Some { Image.sr_base; sr_size } ->
      let mem = img.Image.mem in
      let limit = sr_base + sr_size in
      let rec parse_maps off acc =
        (* body addresses are never 0, so a zero word is alignment padding *)
        if off + framemap_header_size > limit then List.rev acc
        else begin
          let addr = u64 mem off in
          if addr = 0 then List.rev acc
          else begin
            let n_sp = i32 mem (off + 8) in
            let frame_bytes = i32 mem (off + 12) in
            let n_saves = i32 mem (off + 16) in
            if n_sp < 0 || frame_bytes < 0 || n_saves < 0 then
              raise (Parse_error "malformed framemap header");
            let off = off + framemap_header_size in
            let saves = List.init n_saves (fun i -> i32 mem (off + (i * 4))) in
            let off = off + ((n_saves + 1) / 2 * 2 * 4) in
            let rec parse_sps n off acc_s =
              if n = 0 then (List.rev acc_s, off)
              else begin
                let id = i32 mem off in
                let pc_off = i32 mem (off + 4) in
                let n_live = i32 mem (off + 8) in
                if n_live < 0 then raise (Parse_error "malformed framemap safepoint");
                let off = off + framemap_safepoint_header_size in
                let live =
                  List.init n_live (fun i ->
                      let e = off + (i * framemap_live_entry_size) in
                      let vreg = i32 mem e in
                      let loc = i32 mem (e + 4) in
                      let loc =
                        if loc land 0x10000 <> 0 then Loc_slot (loc land 0xFFFF)
                        else Loc_reg (loc land 0xFFFF)
                      in
                      (vreg, loc))
                in
                parse_sps (n - 1)
                  (off + (n_live * framemap_live_entry_size))
                  ({ fs_id = id; fs_pc = addr + pc_off; fs_live = live } :: acc_s)
              end
            in
            let sps, off' = parse_sps n_sp off [] in
            parse_maps off'
              ({ fm_addr = addr; fm_frame_bytes = frame_bytes; fm_saves = saves;
                 fm_safepoints = sps }
              :: acc)
          end
        end
      in
      parse_maps sr_base []
