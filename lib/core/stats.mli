(** Size accounting for the paper's Section 5 scalars: descriptor bytes
    (32 B per switch, 16 B per call site, [48 + #v*(32 + #g*16)] B per
    function) and the text occupied by variant bodies. *)

type section_sizes = {
  sz_text : int;
  sz_data : int;
  sz_variables : int;
  sz_functions : int;
  sz_callsites : int;
}

(** Byte sizes of the image's text, data, and descriptor sections. *)
val section_sizes : Mv_link.Image.t -> section_sizes

(** Total bytes of the three descriptor sections. *)
val descriptor_overhead : section_sizes -> int

(** The paper's per-function descriptor formula. *)
val function_record_bytes : variants:int -> total_guards:int -> int

type program_stats = {
  ps_sections : section_sizes;
  ps_switches : int;
  ps_mv_functions : int;
  ps_variants : int;  (** descriptor records across all functions *)
  ps_callsites : int;
  ps_text_in_variants : int;  (** text bytes occupied by variant bodies *)
}

(** Collect the Section 5 scalars for a compiled program. *)
val of_program : Compiler.program -> program_stats

(** {!program_stats} as a JSON object (section sizes nested under
    [sections], plus the Section 5 scalars) — the static third of the
    unified metrics export ([Mv_obs.Export.metrics]). *)
val program_stats_json : program_stats -> Mv_obs.Json.t

(** Human-readable rendering of {!program_stats}. *)
val pp : Format.formatter -> program_stats -> unit
