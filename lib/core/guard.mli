(** Guard expressions over configuration switches (paper Section 3).

    A guard is a conjunction of inclusive value-range constraints — one per
    referenced switch — indicating for which assignments a variant is
    usable.  Ranges (rather than single values) let one descriptor cover
    several merged variants: Figure 2's [multi.A=0.B=01] carries the guard
    [A in \[0,0\], B in \[0,1\]]. *)

(** One range constraint: [g_lo <= value(g_var) <= g_hi]. *)
type range = { g_var : string; g_lo : int; g_hi : int }

(** A conjunction of constraints over distinct switches. *)
type t = range list

(** [satisfied_by guard lookup] checks every range against the current
    switch values provided by [lookup]. *)
val satisfied_by : t -> (string -> int) -> bool

(** Print one range as [var in \[lo,hi\]]. *)
val pp_range : Format.formatter -> range -> unit

(** Print a guard as a comma-separated conjunction (empty prints [true]). *)
val pp : Format.formatter -> t -> unit

(** {!pp} into a string. *)
val to_string : t -> string

(** Per-variable projections of an assignment set: which values each switch
    takes across the set (sorted, deduplicated). *)
module Smap : Map.S with type key = string

(** The per-variable projection described above, as a map keyed by switch
    name. *)
val values_per_var : (string * int) list list -> int list Smap.t

(** [single_box assignments] covers the set with one box when it equals the
    cross product of contiguous per-variable ranges; [None] otherwise. *)
val single_box : (string * int) list list -> t option

(** Cover an assignment set with guard boxes: a single box when possible,
    otherwise one point box per assignment (each emitted as its own
    descriptor record pointing at the shared body). *)
val boxes_of_assignments : (string * int) list list -> t list
