(** The whole-pipeline driver: Mini-C source text to a runnable,
    patch-ready process image.

    Per translation unit: parse, typecheck, lower to IR, run multiverse
    variant generation (Section 3), optimize, emit machine code, and
    assemble an object with text, data and the three multiverse descriptor
    sections (Section 5).  Units are then linked into one image, which
    {!Runtime.create} can attach to.

    Separate compilation follows the paper's rule: the [multiverse]
    attribute must appear on the declaration visible in each unit (the
    "header"), so every unit knows which symbols are multiversed. *)

exception Compile_error of string

type unit_input = { u_name : string; u_source : string }

type compiled_unit = {
  cu_name : string;
  cu_obj : Mv_codegen.Objfile.t;
  cu_prog : Mv_ir.Ir.prog;  (** after variant generation and optimization *)
  cu_mv : Variantgen.mv_function list;
  cu_recipes : Variantgen.recipe list;
      (** specialization recipes for lazy builds; [[]] under eager
          generation *)
  cu_call_pad : string -> int;
      (** the call-site padding rule the unit's text was emitted with *)
  cu_warnings : string list;
}

type program = {
  p_image : Mv_link.Image.t;
  p_units : compiled_unit list;
}

(** Compile one translation unit.

    @param max_variants cap on the per-function assignment cross product
      (default {!Variantgen.default_max_variants}).
    @param callsite_padding nop bytes (0..10, default 0) appended to every
      call site of a multiversed symbol, widening the runtime's inlining
      budget (the Section 7.1 "adjusting the sizes of call sites"
      extension).
    @param lazy_variants suppress ahead-of-time variant expansion: the
      unit's descriptors carry zero variants and [cu_recipes] records the
      per-function specialization recipes for demand-driven
      materialization ({!Runtime.enable_lazy}). *)
val compile_unit :
  ?max_variants:int ->
  ?callsite_padding:int ->
  ?lazy_variants:bool ->
  unit_input ->
  compiled_unit

(** Link compiled units into an image (raises {!Compile_error} on link
    errors).  [vtext_size] is forwarded to {!Mv_link.Linker.link}. *)
val link : ?mem_size:int -> ?vtext_size:int -> compiled_unit list -> Mv_link.Image.t

(** Compile and link a list of (unit name, source text) pairs. *)
val build :
  ?max_variants:int ->
  ?callsite_padding:int ->
  ?lazy_variants:bool ->
  ?mem_size:int ->
  ?vtext_size:int ->
  (string * string) list ->
  program

(** Compile and link a single source string (unit name ["main"]). *)
val build_string :
  ?max_variants:int ->
  ?callsite_padding:int ->
  ?lazy_variants:bool ->
  ?mem_size:int ->
  ?vtext_size:int ->
  string ->
  program

(** All warnings across the program's units (front-end diagnostics and
    variant-generation warnings). *)
val warnings : program -> string list

(** Every unit's specialization recipes, concatenated — the input to
    {!Runtime.enable_lazy} for a [lazy_variants] build ([[]] for eager
    builds). *)
val recipes : program -> Variantgen.recipe list

(** The program-wide call-site padding rule for a symbol: the widest
    padding any unit emitted.  Materialized variant bodies are assembled
    with this rule so their call sites match the eager pipeline's. *)
val call_pad : program -> string -> int
