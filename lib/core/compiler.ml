(* The whole-pipeline driver: Mini-C source text to a patched-ready image.

   Per translation unit:
     parse -> typecheck -> lower -> variant generation -> optimize ->
     emit machine code -> assemble an object with data, text, and the three
     multiverse descriptor sections.
   Then the units are linked into one image, which [Runtime.create] can
   attach to.

   Separate compilation follows the paper's rule (Section 5): the
   [multiverse] attribute must be present on the *declaration* visible in
   each unit (the "header"), so the compiler knows at every occurrence that
   a symbol is multiversed. *)

module Ast = Minic.Ast
module Ir = Mv_ir.Ir
module Objfile = Mv_codegen.Objfile
module Emit = Mv_codegen.Emit
module Image = Mv_link.Image

exception Compile_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Compile_error m)) fmt

type unit_input = { u_name : string; u_source : string }

type compiled_unit = {
  cu_name : string;
  cu_obj : Objfile.t;
  cu_prog : Ir.prog;  (** after variant generation and optimization *)
  cu_mv : Variantgen.mv_function list;
  cu_recipes : Variantgen.recipe list;  (** lazy builds only *)
  cu_call_pad : string -> int;  (** the unit's call-site padding rule *)
  cu_warnings : string list;
}

type program = {
  p_image : Image.t;
  p_units : compiled_unit list;
}

(* ------------------------------------------------------------------ *)
(* Data section                                                        *)
(* ------------------------------------------------------------------ *)

let emit_global (obj : Objfile.t) (g : Ir.global) : unit =
  let size = max 8 (g.gl_width * g.gl_count) in
  let size = (size + 7) / 8 * 8 in
  let b = Bytes.make size '\000' in
  (match g.gl_init with
  | Some v -> Bytes.set_int64_le b 0 (Int64.of_int v)
  | None -> ());
  let off = Objfile.append obj Objfile.Data b in
  Objfile.add_symbol obj
    { Objfile.s_name = g.gl_name; s_section = Objfile.Data; s_offset = off; s_size = size };
  match g.gl_fn_init with
  | Some f ->
      Objfile.add_reloc obj
        { Objfile.r_section = Objfile.Data; r_offset = off; r_kind = Objfile.Abs64;
          r_sym = f; r_addend = 0 }
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Per-unit compilation                                                *)
(* ------------------------------------------------------------------ *)

let compile_unit ?(max_variants = Variantgen.default_max_variants)
    ?(callsite_padding = 0) ?(lazy_variants = false) { u_name; u_source } :
    compiled_unit =
  if callsite_padding < 0 || callsite_padding > 10 then
    errf "%s: callsite_padding must be in 0..10" u_name;
  let tu, env, diags =
    try Minic.Typecheck.check_string u_source with
    | Minic.Lexer.Error (m, loc) ->
        errf "%s:%a: lexical error: %s" u_name Ast.pp_loc loc m
    | Minic.Parser.Error (m, loc) ->
        errf "%s:%a: parse error: %s" u_name Ast.pp_loc loc m
    | Minic.Typecheck.Error (m, loc) -> errf "%s:%a: error: %s" u_name Ast.pp_loc loc m
  in
  let prog = Mv_ir.Lower.lower_tunit tu env in
  let { Variantgen.r_prog = prog; r_functions = mv_fns; r_recipes; r_warnings } =
    Variantgen.generate ~max_variants ~lazy_variants prog
  in
  let obj = Objfile.create u_name in
  (* padded call sites (Section 7.1 extension): nop-pad calls to multiverse
     symbols so the runtime can inline bodies larger than a bare call *)
  let mv_symbols =
    List.filter_map
      (fun (fn : Ir.fn) -> if fn.Ir.fn_multiverse then Some fn.fn_name else None)
      prog.Ir.p_fns
    @ List.filter_map (fun (name, mv) -> if mv then Some name else None) prog.Ir.p_extern_fns
    @ List.filter_map
        (fun (g : Ir.global) ->
          if g.gl_multiverse && g.gl_is_fnptr then Some g.gl_name else None)
        (prog.Ir.p_globals @ prog.Ir.p_extern_globals)
  in
  let call_pad sym = if List.mem sym mv_symbols then callsite_padding else 0 in
  (* text: all functions, generic and variants, in program order *)
  let fragments =
    List.map
      (fun (fn : Ir.fn) ->
        let frag = try Emit.emit_fn ~call_pad fn with Emit.Error m -> errf "%s: %s: %s" u_name fn.fn_name m in
        let off = Objfile.align obj Objfile.Text 16 in
        let off' = Objfile.append obj Objfile.Text frag.Emit.fr_code in
        assert (off = off');
        Objfile.add_symbol obj
          { Objfile.s_name = fn.fn_name; s_section = Objfile.Text; s_offset = off;
            s_size = Bytes.length frag.Emit.fr_code };
        List.iter
          (fun (r : Objfile.reloc) ->
            Objfile.add_reloc obj { r with Objfile.r_offset = r.r_offset + off })
          frag.Emit.fr_relocs;
        (fn, frag, off))
      prog.Ir.p_fns
  in
  (* data *)
  List.iter (emit_global obj) prog.Ir.p_globals;
  (* descriptor sections *)
  let size_of sym =
    match List.find_opt (fun (fn, _, _) -> String.equal fn.Ir.fn_name sym) fragments with
    | Some (_, frag, _) -> Bytes.length frag.Emit.fr_code
    | None -> errf "%s: descriptor for unknown symbol %s" u_name sym
  in
  (* 1. variable descriptors for switches *defined* in this unit *)
  List.iter
    (fun (g : Ir.global) -> if g.gl_multiverse then Descriptor.emit_variable obj g)
    prog.Ir.p_globals;
  (* 2. function descriptors for multiversed functions defined here *)
  List.iter (fun mf -> Descriptor.emit_function obj mf ~size_of) mv_fns;
  (* 3. call-site descriptors: direct calls to multiversed functions and
        indirect calls through multiversed function pointers *)
  let mv_fn_names =
    List.filter_map
      (fun (fn : Ir.fn) -> if fn.Ir.fn_multiverse then Some fn.fn_name else None)
      prog.Ir.p_fns
    @ List.filter_map (fun (name, mv) -> if mv then Some name else None) prog.Ir.p_extern_fns
  in
  let mv_fnptr_names =
    List.filter_map
      (fun (g : Ir.global) ->
        if g.gl_multiverse && g.gl_is_fnptr then Some g.gl_name else None)
      (prog.Ir.p_globals @ prog.Ir.p_extern_globals)
  in
  List.iter
    (fun ((fn : Ir.fn), (frag : Emit.fragment), _off) ->
      List.iter
        (fun (cs : Emit.callsite) ->
          let record =
            if cs.cs_indirect then List.mem cs.cs_callee mv_fnptr_names
            else List.mem cs.cs_callee mv_fn_names
          in
          if record then
            Descriptor.emit_callsite obj ~caller:fn.fn_name
              ~site_offset:cs.cs_insn_offset ~callee:cs.cs_callee)
        frag.Emit.fr_callsites)
    fragments;
  (* 4. OSR frame maps: one record per body (generic and variant) of every
        multiversed function defined in this unit *)
  let osr_bodies =
    List.concat_map
      (fun (mf : Variantgen.mv_function) ->
        mf.mf_name :: List.map (fun (v : Variantgen.variant) -> v.v_symbol) mf.mf_variants)
      mv_fns
  in
  List.iter
    (fun ((fn : Ir.fn), (frag : Emit.fragment), _off) ->
      if List.mem fn.Ir.fn_name osr_bodies then Descriptor.emit_framemap obj frag)
    fragments;
  {
    cu_name = u_name;
    cu_obj = obj;
    cu_prog = prog;
    cu_mv = mv_fns;
    cu_recipes = r_recipes;
    cu_call_pad = call_pad;
    cu_warnings =
      List.map
        (fun (d : Minic.Typecheck.diagnostic) ->
          Format.asprintf "%s:%a: warning: %s" u_name Ast.pp_loc d.loc d.message)
        diags
      @ r_warnings;
  }

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let link ?mem_size ?vtext_size (units : compiled_unit list) : Image.t =
  try Mv_link.Linker.link ?mem_size ?vtext_size (List.map (fun u -> u.cu_obj) units)
  with Mv_link.Linker.Link_error m -> errf "link error: %s" m

(** Compile and link a list of (unit name, source) pairs. *)
let build ?max_variants ?callsite_padding ?lazy_variants ?mem_size ?vtext_size
    (sources : (string * string) list) : program =
  let units =
    List.map
      (fun (name, src) ->
        compile_unit ?max_variants ?callsite_padding ?lazy_variants
          { u_name = name; u_source = src })
      sources
  in
  { p_image = link ?mem_size ?vtext_size units; p_units = units }

(** Compile and link a single source string (unit name "main"). *)
let build_string ?max_variants ?callsite_padding ?lazy_variants ?mem_size
    ?vtext_size src : program =
  build ?max_variants ?callsite_padding ?lazy_variants ?mem_size ?vtext_size
    [ ("main", src) ]

let warnings p = List.concat_map (fun u -> u.cu_warnings) p.p_units

(** Every unit's specialization recipes (lazy builds; [[]] otherwise). *)
let recipes p = List.concat_map (fun u -> u.cu_recipes) p.p_units

(** The program-wide call-site padding rule: the widest padding any unit
    applies to the symbol (used when materializing variant bodies at
    runtime, so their call sites match the eager pipeline's). *)
let call_pad p sym =
  List.fold_left (fun acc u -> max acc (u.cu_call_pad sym)) 0 p.p_units
