(** Binary descriptor records (paper Sections 3 and 5).

    Descriptors live in dedicated sections — [multiverse.variables],
    [multiverse.functions], [multiverse.callsites] — which the linker
    concatenates across translation units into contiguous arrays.  Record
    sizes match the paper exactly: 32 bytes per configuration switch, 16
    bytes per call site, and [48 + #variants * (32 + #guards * 16)] bytes
    per multiversed function.  Address fields are filled by Abs64
    relocations, so position-independent placement comes for free.

    Our on-stack-replacement extension adds a fourth section,
    [multiverse.framemaps]: per body of a multiversed function (generic or
    variant), the frame geometry plus one record per safepoint naming where
    every live IR virtual register resides at that program point.  The
    runtime uses these to transfer a live activation between bodies instead
    of waiting for the frame to unwind. *)

val variable_record_size : int  (** 32 *)

val callsite_record_size : int  (** 16 *)

val function_header_size : int  (** 48 *)

val variant_record_size : int  (** 32 *)

val guard_record_size : int  (** 16 *)

(** The paper's per-function formula, with [guards] the total guard count
    across all variant records. *)
val function_record_size : variants:int -> guards:int -> int

val framemap_header_size : int  (** 24 *)

val framemap_safepoint_header_size : int  (** 16 *)

val framemap_live_entry_size : int  (** 8 *)

(** {1 Serialization into an object file} *)

(** Emit a 32-byte variable record (address, width, signedness, fnptr flag)
    for the switch [g]. *)
val emit_variable : Mv_codegen.Objfile.t -> Mv_ir.Ir.global -> unit

(** Emit a 16-byte call-site record: the callee's address (the generic
    function for direct sites, the fn-pointer variable for indirect ones)
    and the call instruction's address ([caller] + [site_offset]). *)
val emit_callsite :
  Mv_codegen.Objfile.t -> caller:string -> site_offset:int -> callee:string -> unit

(** Emit the function record for [mf]: a 48-byte header followed by one
    32-byte record per guard box, each followed by its 16-byte guard
    records.  [size_of] maps a symbol to its emitted body size. *)
val emit_function :
  Mv_codegen.Objfile.t -> Variantgen.mv_function -> size_of:(string -> int) -> unit

(** Emit the [multiverse.framemaps] record for one emitted fragment: the
    frame geometry (spill-area size, saved registers in push order) and the
    per-safepoint live-location maps the fragment's emitter recorded. *)
val emit_framemap : Mv_codegen.Objfile.t -> Mv_codegen.Emit.fragment -> unit

(** {1 Parsing from a linked image} *)

type variable = {
  vr_addr : int;  (** absolute address of the switch *)
  vr_width : int;  (** width in bytes *)
  vr_signed : bool;
  vr_fnptr : bool;  (** function-pointer switch (Section 4 extension) *)
}

type callsite = {
  cs_target : int;  (** generic function or fn-pointer variable address *)
  cs_site : int;  (** absolute address of the call instruction *)
}

type guard_record = { gr_var : int; gr_lo : int; gr_hi : int }

type variant_record = {
  va_addr : int;  (** absolute address of the variant body *)
  va_size : int;  (** encoded body size in bytes *)
  va_guards : guard_record list;
}

type function_record = {
  fd_generic : int;
  fd_generic_size : int;
  fd_variants : variant_record list;
}

exception Parse_error of string

(** Parse the [multiverse.variables] section of a linked image. *)
val parse_variables : Mv_link.Image.t -> variable list

(** Parse the [multiverse.callsites] section of a linked image. *)
val parse_callsites : Mv_link.Image.t -> callsite list

(** Parse the [multiverse.functions] section of a linked image. *)
val parse_functions : Mv_link.Image.t -> function_record list

(** Where a live virtual register's value resides at a safepoint. *)
type frame_loc =
  | Loc_reg of int  (** machine register number *)
  | Loc_slot of int  (** sp-relative spill slot index; byte offset is 8×slot *)

type safepoint_record = {
  fs_id : int;  (** stable id shared by the generic body and every variant *)
  fs_pc : int;  (** absolute poll pc: body address + recorded offset *)
  fs_live : (int * frame_loc) list;  (** (IR vreg, location), sorted by vreg *)
}

type framemap_record = {
  fm_addr : int;  (** absolute address of the body this map describes *)
  fm_frame_bytes : int;  (** spill-area size: the prologue's [sub sp] amount *)
  fm_saves : int list;
      (** machine registers pushed in the prologue, in push order — entry
          [i] lives at [sp_entry - 8*(i+1)] *)
  fm_safepoints : safepoint_record list;
}

(** Parse the [multiverse.framemaps] section of a linked image. *)
val parse_framemaps : Mv_link.Image.t -> framemap_record list
