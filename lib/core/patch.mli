(** Low-level binary-patching primitives (paper Section 4).

    Every mutation follows the protocol the paper mandates: open a write
    window with mprotect, write, restore the original protection, flush the
    instruction cache for the patched range.  The architecture-dependent
    knowledge (what a call looks like, how large it is, which instructions
    may be copied) lives in {!Mv_isa}; this module is the platform layer. *)

exception Patch_error of string

type t = {
  image : Mv_link.Image.t;
  flush : addr:int -> len:int -> unit;
      (** icache maintenance callback, invoked after every text write *)
  mutable bytes_patched : int;  (** accounting for the patch-cost tables *)
  mutable patches : int;
  mutable writer : (addr:int -> bytes -> unit) option;
      (** replacement write path; install via {!set_writer} *)
}

(** Attach the patching layer to a linked image; [flush] is the icache
    callback invoked after every text write. *)
val create : Mv_link.Image.t -> flush:(addr:int -> len:int -> unit) -> t

(** Install (or remove, with [None]) a replacement text writer.  When set,
    {!write_text} hands the raw bytes to it instead of performing the
    default protected-write-plus-flush; the writer owns page protection,
    the byte store and icache maintenance.  The SMP layer installs its
    breakpoint-first [text_poke] protocol here so every runtime patch
    becomes a proper cross-modifying-code sequence. *)
val set_writer : t -> (addr:int -> bytes -> unit) option -> unit

(** Run [f] with the pages covering the range writable; the previous
    protection is restored even if [f] raises. *)
val with_writable : t -> addr:int -> len:int -> (unit -> 'a) -> 'a

(** Protected write + icache flush: the single funnel for text mutation. *)
val write_text : t -> addr:int -> bytes -> unit

(** Read [len] text bytes at [addr] (no write window needed). *)
val read_text : t -> addr:int -> len:int -> bytes

(** Decode the instruction at [addr] (raises {!Patch_error} on garbage). *)
val decode_at : t -> addr:int -> Mv_isa.Insn.t * int

(** Absolute target of the direct [call]/[jmp] at [addr]. *)
val current_call_target : t -> addr:int -> int

(** Encode a direct call at [site] transferring to [target]. *)
val encode_call : site:int -> target:int -> bytes

(** Encode an unconditional jump at [site] transferring to [target]. *)
val encode_jmp : site:int -> target:int -> bytes

(** Rewrite the direct call at [site] to [target] after verifying that it
    currently calls one of [expect] — the paper's "check if they point to
    an expected call target".  Raises {!Patch_error} otherwise. *)
val retarget_call : t -> site:int -> expect:int list -> target:int -> unit

(** Fill [size] bytes at [addr] with [body] followed by nop padding
    (Figure 3 b/c). *)
val write_inlined : t -> addr:int -> size:int -> bytes -> unit

(** If the body at [fn_addr] is a straight line of position-independent
    instructions ending in [ret], with total encoded size at most [budget],
    return those bytes (possibly empty: Figure 3c's nop-able case). *)
val inlineable_body : t -> fn_addr:int -> fn_size:int -> budget:int -> bytes option

(** Produce the body at [src] relocated for execution at [dst]:
    pc-relative transfers leaving the copied range are re-biased,
    intra-body branches keep their displacement.  This is the relocation
    work that makes body patching costly (Section 7.1). *)
val relocate_body : t -> src:int -> len:int -> dst:int -> bytes

(** Overwrite the first bytes of a function with a jump to [target],
    returning the saved original bytes.  This is the completeness
    mechanism: pointer calls and foreign code land in the committed variant
    (Section 7.4). *)
val install_prologue_jmp : t -> fn_addr:int -> target:int -> bytes

(** Write previously saved bytes back (the revert side of every patch). *)
val restore_bytes : t -> addr:int -> bytes -> unit
