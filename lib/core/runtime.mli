(** The multiverse run-time library: descriptor interpretation, variant
    selection, and installation by binary patching (paper Section 4 and the
    API of Table 1).

    A commit inspects the current values of all configuration switches,
    selects for each multiversed function the variant whose guards match,
    and installs it: every recorded call site is retargeted (or, when the
    body fits, the body is inlined in place of the call — empty bodies
    become pure nops), and the generic prologue is overwritten with a jump
    to the variant so that calls the compiler never saw (function pointers,
    foreign code) land in the bound variant too.  If no variant matches,
    the function reverts to its generic body and the situation is signalled
    through {!fallbacks}.

    Like the paper's library, the {!commit}/{!revert} family performs no
    synchronization: the caller guarantees a patchable state (Section 2).
    The {e safe-commit} extension closes that gap where the execution
    environment can prove quiescence: {!commit_safe}/{!revert_safe} consult
    a live-activation scanner (see [Machine.live_code_addrs]), defer or
    refuse patches whose target bytes have live activations, and apply
    journaled patch sets transactionally at quiescence points
    ({!safepoint}, wired to the machine's safepoint hook).

    Note on signedness: descriptors record declared signedness, but
    sub-word switch values are evaluated zero-extended (matching the
    machine's sub-word loads); use 8-byte switches for negative domains. *)

type site_state =
  | Site_original
  | Site_retargeted of int  (** direct call to this variant address *)
  | Site_inlined of int  (** body of this variant inlined into the site *)

(** One patchable call site.  [s_size] is the call instruction plus any
    pristine nop padding the compiler emitted ([callsite_padding]). *)
type site = {
  s_addr : int;
  s_size : int;
  s_original : bytes;
  mutable s_state : site_state;
  mutable s_written : bytes;  (** what the runtime believes the site holds *)
}

type fn_entry = {
  fe_name : string;
  fe_record : Descriptor.function_record;
  mutable fe_variants : Descriptor.variant_record list;
      (** the selectable variants: the parsed descriptor records plus —
          under lazy materialization ({!enable_lazy}) — every alias the
          runtime has linked so far, minus the evicted ones *)
  fe_sites : site list;
  mutable fe_prologue : bytes option;  (** saved generic prologue bytes *)
  mutable fe_saved_body : bytes option;  (** saved body (body patching) *)
  mutable fe_installed : int option;  (** installed variant address *)
}

type fnptr_entry = {
  fp_name : string;
  fp_var : Descriptor.variable;
  fp_sites : site list;
  mutable fp_committed : int option;
}

(** A patch the safe-commit path could not apply immediately (the target
    bytes had live activations), journaled for a later quiescence point. *)
type pending_action =
  | Act_bind of fn_entry * Descriptor.variant_record
      (** install this variant for the function *)
  | Act_unbind of fn_entry  (** revert the function to its generic state *)
  | Act_bind_ptr of fnptr_entry * int
      (** bind the fn-pointer switch to the target captured at commit time *)
  | Act_unbind_ptr of fnptr_entry  (** restore the indirect call sites *)

(** One {!commit_safe}/{!revert_safe} call journals at most one set; a set
    is applied transactionally — all actions or none. *)
type pending_set = {
  pset_id : int;
  pset_cid : int;
      (** causality id of the journaling commit — reported by the set's
          eventual [Pending_drained] event *)
  pset_hart : int;  (** hart the journaling commit ran on (see
          {!set_hart_source}) *)
  pset_actions : pending_action list;
}

(** Counters for the safe-commit paths (surfaced through {!stats}). *)
type safe_counters = {
  mutable sc_deferred : int;  (** actions journaled instead of applied *)
  mutable sc_denied : int;  (** actions refused under the [Deny] policy *)
  mutable sc_superseded : int;  (** journaled actions dropped by a newer commit *)
  mutable sc_applied : int;  (** deferred actions applied at a safepoint *)
  mutable sc_rolled_back : int;  (** pending sets rolled back mid-apply *)
  mutable sc_polls : int;  (** safepoint invocations *)
  mutable sc_osr_transfers : int;  (** live activations moved between bodies *)
  mutable sc_osr_aborts : int;
      (** transfers abandoned because the frame maps did not line up *)
}

(** Accessors for the hart currently parked at a safepoint, used by
    on-stack replacement to move its live activation between function
    bodies.  The runtime stays VM-agnostic: a harness builds these
    closures over [Mv_vm.Machine] ([Harness.enable_osr]).  [oh_mem] and
    [oh_set_mem] operate on 8-byte words at absolute image addresses. *)
type osr_hart = {
  oh_hart : int;  (** hart id, for event attribution *)
  oh_pc : unit -> int;
  oh_set_pc : int -> unit;
  oh_reg : int -> int;
  oh_set_reg : int -> int -> unit;
  oh_mem : int -> int;
  oh_set_mem : int -> int -> unit;
  oh_set_top_frame : int -> unit;
      (** replace the entry address of the innermost activation record, so
          stack symbolization follows the transferred frame *)
}

(** The demand-driven variant cache ({!enable_lazy}): recipes, the
    variant-text allocator, the structural-hash dedup table, and the
    eviction book-keeping.  Opaque — inspect it through {!stats},
    {!materialized_variants} and {!pending_variants}. *)
type lazy_state

type t = {
  image : Mv_link.Image.t;
  patch : Patch.t;
  variables : Descriptor.variable list;
  functions : fn_entry list;
  fnptrs : fnptr_entry list;
  mutable fallbacks : string list;
  mutable skipped_sites : (int * string) list;
  mutable inline_enabled : bool;
  mutable strategy : strategy;
  mutable live_scanner : (unit -> int list) option;
  mutable pending : pending_set list;
  mutable next_pset_id : int;
  mutable next_cid : int;  (** commit-causality id generator *)
  mutable cur_cid : int;  (** cid of the commit span in flight (-1 outside) *)
  mutable hart_src : (unit -> int) option;
      (** current-hart source for event attribution; install via
          {!set_hart_source} *)
  mutable in_safepoint : bool;
  safe : safe_counters;
  mutable tracer : (Mv_obs.Trace.event -> unit) option;
  mutable barrier : ((unit -> unit) -> unit) option;
      (** cross-modifying-code barrier; install via {!set_patch_barrier} *)
  mutable framemaps : Descriptor.framemap_record list;
      (** parsed [multiverse.framemaps] records, one per multiversed body;
          lazy materialization appends a host-built record per fresh body
          (and drops it again on eviction) *)
  mutable osr : (unit -> osr_hart) option;
      (** OSR hart accessors; install via {!set_osr} *)
  mutable lazy_st : lazy_state option;
      (** demand-driven variant cache; install via {!enable_lazy} *)
}

(** Variant installation strategy.  [Call_site_patching] is the paper's
    design; [Body_patching] is the Section 7.1 alternative: the relocated
    variant body overwrites the generic body — one patch per function, no
    call-site inlining, prologue-jump fallback when the variant does not
    fit. *)
and strategy = Call_site_patching | Body_patching

exception Runtime_error of string

(** Attach a runtime to a linked image by parsing its descriptor sections.
    [flush] receives every patched range (wire it to the machine's
    instruction-cache flush). *)
val create : Mv_link.Image.t -> flush:(addr:int -> len:int -> unit) -> t

(** Disable/enable call-site body inlining (ablation A3). *)
val set_inlining : t -> bool -> unit

(** Install (or remove, with [None]) the structured-event sink.  Every
    patching decision — commit/revert spans with switch values, variant
    selection, site retargeting/inlining, prologue patches, fallbacks,
    safe-commit deferrals and drains — is reported through it.  With no
    sink installed the emit sites reduce to a single [option] match:
    tracing is pay-for-use, like the safepoint hook.  The usual sink is
    [Mv_obs.Trace.sink] over a ring clocked by the machine's cycle
    counter (see [Harness.enable_tracing]). *)
val set_tracer : t -> (Mv_obs.Trace.event -> unit) option -> unit

(** Install (or remove, with [None]) the hart source used to attribute
    commit and drain events for causal tracing: the pending set journaled
    by a commit remembers the hart the commit ran on, and the
    [Pending_drained] of that set is followed by a ["drain"]
    [Causal_edge] from that hart to the hart executing the draining
    safepoint.  Wire to [Mv_vm.Smp.current_hart]; the default attributes
    everything to hart 0 (right for a single-hart machine).  Host-side
    only — never charged simulated cycles. *)
val set_hart_source : t -> (unit -> int) option -> unit

(** Install (or remove, with [None]) the cross-modifying-code barrier.
    When set, every patching operation — {!commit}, {!revert}, the
    [_func]/[_refs]/[_safe] variants, and the {!safepoint} drain — runs
    inside it, so an SMP harness can wire [Mv_vm.Smp.stop_machine] here
    and guarantee patches only land with every other hart parked at an
    interrupts-enabled instruction boundary.  The barrier must invoke its
    thunk exactly once, synchronously, and be re-entrant (a nested
    operation runs its thunk directly).  With [None] (the default) the
    paper's model applies: the caller guarantees a patchable state. *)
val set_patch_barrier : t -> ((unit -> unit) -> unit) option -> unit

(** Route every text mutation through a replacement writer instead of the
    default protected-write-plus-flush — e.g. the SMP breakpoint-first
    [Mv_vm.Smp.text_poke] (see {!Patch.set_writer}). *)
val set_text_writer : t -> (addr:int -> bytes -> unit) option -> unit

(** Switch the installation strategy (ablation A4).  Raises
    {!Runtime_error} while anything is installed — revert first. *)
val set_strategy : t -> strategy -> unit

(** Current value of the switch whose descriptor address is given. *)
val read_switch : t -> int -> int

(** {1 The Table 1 API}

    All functions return a count like the paper's [int] results: the number
    of entities bound (or reverted), or [-1] when the argument does not name
    a multiversed entity. *)

(** [multiverse_commit()]: bind everything to the current switch values. *)
val commit : t -> int

(** [multiverse_revert()]: restore the whole image to its unpatched
    state. *)
val revert : t -> int

(** [multiverse_commit_func(&fn)]: bind one function by symbol name. *)
val commit_func : t -> string -> int

(** [multiverse_revert_func(&fn)]: revert one function by symbol name. *)
val revert_func : t -> string -> int

(** {!commit_func} by generic-body address. *)
val commit_func_addr : t -> int -> int

(** {!revert_func} by generic-body address. *)
val revert_func_addr : t -> int -> int

(** [multiverse_commit_refs(&var)]: (re)bind every function whose variants
    guard on the switch, and the switch itself when it is a function
    pointer. *)
val commit_refs : t -> string -> int

(** [multiverse_revert_refs(&var)]: revert everything {!commit_refs} would
    bind. *)
val revert_refs : t -> string -> int

(** {!commit_refs} by switch address. *)
val commit_refs_addr : t -> int -> int

(** {!revert_refs} by switch address. *)
val revert_refs_addr : t -> int -> int

(** {1 Safe commit (beyond the paper)}

    Stack-quiescence detection and deferred patching.  Where the Table 1
    API trusts the caller ("the caller guarantees a patchable state",
    Section 2), these entry points prove it: a patch is applied only when
    no live activation — program counter or stack return address — falls
    inside the bytes it would rewrite.  The rest is journaled and drained
    at quiescence points, transactionally. *)

(** What to do with a patch whose target bytes have live activations:
    [Defer] (default) journals it for the next quiescent safepoint; [Deny]
    refuses it, leaving the entity in its current state. *)
type safe_policy = Defer | Deny

(** Install the live-activation scanner ({!commit_safe}/{!revert_safe}/
    {!safepoint} require one).  Wire to [Machine.live_code_addrs]. *)
val set_live_scanner : t -> (unit -> int list) -> unit

(** [multiverse_commit()], made safe: binds every entity whose patch ranges
    are quiescent; defers or denies the rest per [policy].  Returns the
    number of entities in the specialized state when the call returns
    (deferred entities are excluded until a safepoint applies them).
    Binding decisions — variant selection, fn-pointer targets — are made at
    call time and journaled verbatim.  Supersedes any previously pending
    sets.  Raises {!Runtime_error} if no live scanner is installed. *)
val commit_safe : ?policy:safe_policy -> t -> int

(** [multiverse_revert()], made safe: restores every entity whose patch
    ranges are quiescent; defers or denies the rest.  Returns the number of
    entities in the pristine state when the call returns. *)
val revert_safe : ?policy:safe_policy -> t -> int

(** Install (or remove, with [None]) the on-stack-replacement hart
    accessors.  Once installed, a {!safepoint} that finds a pending set
    blocked by a live activation of the polling hart {e transfers} the
    activation into the target body — reading every live virtual register
    out of the source frame via the [multiverse.framemaps] descriptors,
    rebuilding the frame in the target body's layout, and resuming at the
    safepoint with the same stable id — instead of leaving the set
    journaled until the frame unwinds.  A transfer that cannot be proven
    equivalent (the target body lost the safepoint to specialization, or
    a target-live value has no source) is abandoned ([sc_osr_aborts]) and
    the set simply stays deferred.  Each transfer emits an [Osr_transfer]
    event carrying the journaling commit's [cid].  Only attempted under
    [Call_site_patching]. *)
val set_osr : t -> (unit -> osr_hart) option -> unit

(** The quiescence-point drain; wire to [Machine.set_safepoint].  Cheap
    when nothing is pending.  Each pending set whose touched ranges are all
    quiescent is applied transactionally — every action or, on a mid-set
    failure (e.g. a call site changed by another mechanism), a full
    rollback to the pre-set state — and removed either way, so a set is
    applied at most once.  With {!set_osr} wired, a set blocked only by
    the polling hart's own parked activation is unblocked by transferring
    that activation first. *)
val safepoint : t -> unit

(** Names of entities with journaled, not-yet-applied patches. *)
val pending : t -> string list

(** {1 Lazy variant materialization (beyond the paper)}

    With {!enable_lazy} the image carries {e no} pre-expanded variants;
    the compiler instead hands over one specialization recipe per
    multiversed function ([Compiler.recipes], from a [lazy_variants]
    build).  The first commit of an unseen switch valuation specializes
    the recipe, optimizes and assembles the body, links it into the
    image's reserved variant-text region, and selection proceeds exactly
    as if the variant had been there all along.  Bodies are cached by
    their post-optimization canonical form — the key the eager pipeline
    merges equal clones under — so a structurally equal body is never
    stored twice: a hash hit links only a descriptor alias ([dedup] in
    the [Variant_materialized] event, zero new bytes).  A byte budget
    bounds residency; eviction drops cold aliases and routes installed
    victims through the existing revert / safe-commit / OSR machinery,
    releasing their bytes once the body is quiescent.  A re-commit of an
    evicted valuation simply re-materializes — bit-identically, since
    recipes are deterministic. *)

(** Enable demand-driven materialization.  [recipes] are the program's
    specialization recipes ([Compiler.recipes]); [call_pad] the
    program-wide call-site padding rule ([Compiler.call_pad]), so
    materialized bodies are assembled byte-compatible with the eager
    pipeline's; [budget] the resident variant-text byte budget (default:
    the whole variant-text region).  Raises {!Runtime_error} when the
    image was linked without a variant-text region or the budget is not
    positive. *)
val enable_lazy :
  ?budget:int ->
  t ->
  recipes:Variantgen.recipe list ->
  call_pad:(string -> int) ->
  unit

(** Whether demand-driven materialization is enabled. *)
val lazy_enabled : t -> bool

(** Change the resident byte budget.  Shrinking evicts down to the new
    budget immediately where possible; victims with live activations
    drain at later safepoints, and new materializations are denied until
    residency fits.  Raises {!Runtime_error} when lazy materialization is
    not enabled or the budget is not positive. *)
val set_variant_budget : t -> int -> unit

(** Install (or remove, with [None]) the eviction advisor: a thunk
    returning variant symbols in preferred eviction order — harnesses
    wire the [Evict] verdicts of [Mv_obs.Heat.evict_plan] here, excluding
    {!pending_variants}.  Symbols the cache cannot evict (unknown,
    needed by a journaled bind, already draining) are skipped;
    least-recently-selected order covers whatever the advisor does not.
    Raises {!Runtime_error} when lazy materialization is not enabled. *)
val set_evict_advisor : t -> (unit -> string list) option -> unit

(** Fuzzing chaos: make eviction skip the dedup-table invalidation, so a
    later structural-hash hit links a freed (and possibly recycled)
    block.  Exists to prove the lazy-eager-equiv fuzz oracle catches the
    resulting divergence; never set this outside a chaos campaign.
    Raises {!Runtime_error} when lazy materialization is not enabled. *)
val set_stale_cache_chaos : t -> bool -> unit

(** Materialized variants currently resident: (symbol, body address,
    body size), symbol-sorted.  Dedup aliases appear individually (same
    address, distinct symbols).  Empty when lazy materialization is
    off. *)
val materialized_variants : t -> (string * int * int) list

(** Variant symbols the cache must keep resident for the journal's sake:
    each journaled (not yet drained) bind still needs its variant's
    body, so eviction advisors must exclude these (pass them to
    [Heat.evict_plan]'s [exclude]).  Sorted; empty when lazy
    materialization is off. *)
val pending_variants : t -> string list

(** Resident variant-text bytes (unique bodies, allocation-sized) — the
    quantity the byte budget bounds.  [0] when lazy materialization is
    off. *)
val variant_bytes : t -> int

(** {1 Introspection} *)

(** Functions left generic by the last commit because no variant matched
    the switch values (the Figure 3d signal). *)
val fallbacks : t -> string list

(** Call sites skipped because their bytes were not what the runtime last
    wrote there — some other mechanism owns them (with the reason). *)
val skipped_sites : t -> (int * string) list

(** Symbol of the variant currently installed for the named function. *)
val installed_variant : t -> string -> string option

(** Every multiversed body as a named text region for code-heat
    telemetry: the generic body plus each variant, address ranges from
    the descriptor records, and each variant's switch binding rendered
    from its guards ([switch=v], ranges as [switch=lo..hi],
    comma-joined).  Deterministic order (function order, generic before
    variants).  [Harness.enable_heat] feeds this census to
    [Mv_obs.Heat]. *)
val heat_regions : t -> Mv_obs.Heat.region list

(** Runtime-level statistics.  The [st_safe_*] block counts safe-commit
    outcomes: actions deferred/denied at commit time, journaled actions
    dropped by a superseding commit, actions applied at safepoints, sets
    rolled back mid-apply, and safepoint polls served. *)
type stats = {
  st_functions : int;
  st_variants : int;
  st_callsites : int;
  st_sites_inlined : int;
  st_sites_retargeted : int;
  st_patches : int;
  st_bytes_patched : int;
  st_safe_deferred : int;
  st_safe_denied : int;
  st_safe_superseded : int;
  st_safe_applied : int;
  st_safe_rolled_back : int;
  st_safepoint_polls : int;
  st_pending : int;  (** journaled actions not yet applied *)
  st_osr_transfers : int;  (** activations moved by on-stack replacement *)
  st_osr_aborts : int;  (** transfers abandoned (frame maps did not line up) *)
  st_materialized : int;
      (** variants materialized on demand (dedup hits included) *)
  st_dedup_hits : int;
      (** materializations satisfied by a structural-hash hit (alias only,
          zero new bytes) *)
  st_cache_hits : int;
      (** commits that found the needed variant already resident *)
  st_evictions : int;  (** aliases dropped under the byte budget *)
  st_budget_denials : int;
      (** materializations refused because the budget (or the region)
          could not fit the body *)
  st_variant_bytes : int;
      (** resident variant-text bytes (unique bodies, allocation-sized) *)
}

(** Aggregate counters for reporting (benches, examples). *)
val stats : t -> stats

(** The {!stats} record as a JSON object (field names without the [st_]
    prefix) — the runtime's third of the unified metrics export
    ([Mv_obs.Export.metrics]). *)
val stats_json : stats -> Mv_obs.Json.t

(** Bridge the {!stats} counters into a metrics registry as
    [mv_runtime_<counter>] gauges (gauges because {!stats} is already
    cumulative: re-bridging overwrites instead of double-counting).
    [Harness.metrics_json] calls this before every registry export. *)
val stats_metrics : stats -> Mv_obs.Metrics.t -> unit
