(* Low-level binary patching primitives (Section 4 of the paper).

   Every mutation follows the protocol: open a write window with mprotect,
   write, restore the original protection, flush the instruction cache for
   the patched range.  The [flush] callback is provided by the execution
   environment (the machine simulator in this repository; a real kernel
   would issue the architecture's icache maintenance operations). *)

module Insn = Mv_isa.Insn
module Image = Mv_link.Image

exception Patch_error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Patch_error m)) fmt

type t = {
  image : Image.t;
  flush : addr:int -> len:int -> unit;
  mutable bytes_patched : int;
  mutable patches : int;
  mutable writer : (addr:int -> bytes -> unit) option;
      (** when set, replaces the default write+flush path of {!write_text}
          — the SMP layer routes text mutations through its breakpoint-
          first [text_poke] protocol here.  The writer owns protection,
          the byte store and the flushes; the patch counters still run. *)
}

let create image ~flush =
  { image; flush; bytes_patched = 0; patches = 0; writer = None }

(** Install (or remove) the replacement text writer (see [writer]). *)
let set_writer t w = t.writer <- w

(** Execute [f] with the pages covering [addr, addr+len) writable, restoring
    their previous protection afterwards (even on exceptions). *)
let with_writable t ~addr ~len f =
  let img = t.image in
  let restore_to = Image.prot_at img addr in
  Image.mprotect img ~addr ~len Image.prot_rwx;
  Fun.protect ~finally:(fun () -> Image.mprotect img ~addr ~len restore_to) f

(** Protected raw write + icache flush; the single funnel for every text
    mutation. *)
let write_text t ~addr (b : bytes) =
  (match t.writer with
  | Some write -> write ~addr b
  | None ->
      with_writable t ~addr ~len:(Bytes.length b) (fun () ->
          Image.write_bytes t.image addr b);
      t.flush ~addr ~len:(Bytes.length b));
  t.patches <- t.patches + 1;
  t.bytes_patched <- t.bytes_patched + Bytes.length b

let read_text t ~addr ~len = Image.read_bytes t.image addr len

(* ------------------------------------------------------------------ *)
(* Decoding helpers                                                    *)
(* ------------------------------------------------------------------ *)

let decode_at t ~addr =
  try Mv_isa.Decode.decode t.image.Image.mem ~off:addr
  with Mv_isa.Decode.Decode_error (m, off) -> errf "decode at 0x%x: %s" off m

(** The absolute target the direct [Call]/[Jmp] at [addr] currently
    transfers to. *)
let current_call_target t ~addr =
  match decode_at t ~addr with
  | Insn.Call rel, size -> addr + size + rel
  | Insn.Jmp rel, size -> addr + size + rel
  | insn, _ -> errf "0x%x holds %s, not a direct call" addr (Mv_isa.Asm.insn_to_string insn)

(* ------------------------------------------------------------------ *)
(* Call-site patching                                                  *)
(* ------------------------------------------------------------------ *)

let encode_call ~site ~target =
  let rel = target - (site + Insn.call_size) in
  Mv_isa.Encode.encode (Insn.Call rel)

let encode_jmp ~site ~target =
  let rel = target - (site + Insn.jmp_size) in
  Mv_isa.Encode.encode (Insn.Jmp rel)

(** Rewrite the direct call at [site] to target [target], verifying that the
    site currently calls one of [expect] (Section 4: "check if they point to
    an expected call target").  Raises [Patch_error] when verification
    fails. *)
let retarget_call t ~site ~expect ~target =
  let current = current_call_target t ~addr:site in
  if not (List.mem current expect) then
    errf "call site 0x%x targets 0x%x, expected one of [%s]" site current
      (String.concat "; " (List.map (Printf.sprintf "0x%x") expect));
  write_text t ~addr:site (encode_call ~site ~target)

(** Fill [size] bytes at [addr] with [body] followed by nop padding. *)
let write_inlined t ~addr ~size (body : bytes) =
  if Bytes.length body > size then errf "inline body larger than site";
  let b = Bytes.make size (Char.chr (Insn.opcode Insn.Nop)) in
  Bytes.blit body 0 b 0 (Bytes.length body);
  write_text t ~addr b

(* ------------------------------------------------------------------ *)
(* Body inlining (Figure 3 b/c)                                        *)
(* ------------------------------------------------------------------ *)

(** If the function body at [fn_addr] consists of position-independent
    instructions followed by [ret], with a total encoded size of at most
    [budget] bytes, return those instruction bytes (possibly empty).  Such a
    body can replace a call instruction in place, removing all call
    overhead; an empty body turns the call site into pure nops. *)
let inlineable_body t ~fn_addr ~fn_size ~budget : bytes option =
  let limit = fn_addr + fn_size in
  let rec scan addr acc_len =
    if addr >= limit then None (* ran off the body without finding ret *)
    else
      match decode_at t ~addr with
      | Insn.Ret, _ -> Some acc_len
      | insn, size ->
          if Insn.position_independent insn && acc_len + size <= budget then
            scan (addr + size) (acc_len + size)
          else None
  in
  match scan fn_addr 0 with
  | Some len -> Some (read_text t ~addr:fn_addr ~len)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Body relocation (the Section 7.1 alternative)                       *)
(* ------------------------------------------------------------------ *)

(** Produce the bytes of the body at [src] (of [len] bytes) relocated so it
    can execute at [dst]: pc-relative transfers to targets *outside* the
    copied range are re-biased for the new position, while intra-body
    branches move with the code and keep their displacement.

    This is the "relocate variant bodies" work the paper cites as the
    complexity cost of body patching (Section 7.1): the call-site approach
    needs none of it. *)
let relocate_body t ~src ~len ~dst : bytes =
  let out = Bytes.create len in
  let rec go pos =
    if pos < src + len then begin
      let insn, size = decode_at t ~addr:pos in
      if pos - src + size > len then
        errf "body at 0x%x does not tile %d bytes" src len;
      let new_pos = dst + (pos - src) in
      let rebias rel =
        let target = pos + size + rel in
        if target >= src && target < src + len then rel  (* moves with the body *)
        else begin
          let rel' = target - (new_pos + size) in
          if rel' < Int32.to_int Int32.min_int || rel' > Int32.to_int Int32.max_int then
            errf "relocated displacement overflow at 0x%x" pos;
          rel'
        end
      in
      let insn' =
        match insn with
        | Insn.Call rel -> Insn.Call (rebias rel)
        | Insn.Jmp rel -> Insn.Jmp (rebias rel)
        | Insn.Jnz (r, rel) -> Insn.Jnz (r, rebias rel)
        | Insn.Jz (r, rel) -> Insn.Jz (r, rebias rel)
        | i -> i
      in
      Bytes.blit (Mv_isa.Encode.encode insn') 0 out (pos - src) size;
      go (pos + size)
    end
  in
  go src;
  out

(* ------------------------------------------------------------------ *)
(* Prologue redirection (completeness, Section 7.4)                    *)
(* ------------------------------------------------------------------ *)

(** Overwrite the first bytes of the generic function with an unconditional
    jump to [target]; returns the saved original bytes for later
    restoration.  This catches invocations through function pointers,
    assembler code, and anything else the compiler could not see. *)
let install_prologue_jmp t ~fn_addr ~target : bytes =
  let saved = read_text t ~addr:fn_addr ~len:Insn.jmp_size in
  write_text t ~addr:fn_addr (encode_jmp ~site:fn_addr ~target);
  saved

let restore_bytes t ~addr (saved : bytes) = write_text t ~addr saved
