(** Kernel case study 1: spinlock lock elision (paper Sections 1 and 6.1,
    Figures 1 and 4 left). *)

(** The four kernel builds of Figure 4. *)
type kernel =
  | Mainline_smp  (** distribution kernel: the lock is always taken *)
  | If_elision  (** dynamic [if (config_smp)] on every invocation *)
  | Multiverse  (** the same code, multiversed and committed *)
  | Static_up  (** CONFIG_SMP=n resolved at build time, operations inline *)

val kernel_name : kernel -> string
val all_kernels : kernel list

(** Mini-C source of the kernel's locking layer plus benchmark loops. *)
val source : kernel -> string

(** Mean cycles for spin_irq_lock() + spin_irq_unlock(). *)
val measure : ?samples:int -> ?calls:int -> kernel -> smp:bool -> Harness.measurement

(** Figure 1's B case: the dynamically-checked implementation inlined at
    the call site (the paper's [inline] functions). *)
val if_elision_inline_source : string

(** Figure 1's A case with CONFIG_SMP=y, inlined. *)
val static_smp_inline_source : string

val measure_inline_source :
  ?samples:int -> ?calls:int -> ?smp:bool -> string -> Harness.measurement

val measure_if_inline : ?samples:int -> ?calls:int -> smp:bool -> unit -> Harness.measurement

(** The Figure 1 table: rows (label, static, dynamic-if, multiverse). *)
val figure1 :
  ?samples:int ->
  unit ->
  (string * Harness.measurement * Harness.measurement * Harness.measurement) list

(** Source with a [stress] driver checking lock-word and IRQ invariants. *)
val functional_source : string

(** The multiverse kernel plus a lock-protected shared counter and a
    per-hart [worker] driver: exact counts under [config_smp=1], lost
    updates when the elided lock races on several harts. *)
val contended_source : string

(** Run [worker iters] on every hart; returns the session and the final
    counter.  [commit_at] injects a whole-image commit after that many
    scheduler steps (a rendezvous under contention). *)
val run_contended :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?commit_at:int ->
  smp:bool ->
  iters:int ->
  unit ->
  Harness.smp_session * int
