(* Kernel case study 2: paravirtual operations (Section 6.1, Figure 4
   right).

   PV-Ops are function pointers through which the kernel reaches privileged
   operations; at boot they are patched to direct calls (or inlined) for the
   detected platform.  Three kernel builds:

   - [Current]        the existing PV-Ops patching: direct calls after boot
                      patching, native single-instruction bodies inlined —
                      but the *Xen* backends use the custom calling
                      convention with no scratch registers ([saveall]),
                      which wastes save/restore work when caller-side
                      register pressure is low;
   - [Multiverse]     PV-Ops as multiversed function-pointer switches: the
                      same call sites, but targets use the standard calling
                      convention and are bound with [multiverse_commit];
   - [Static_native]  paravirtualization compiled out: raw cli/sti inline
                      (cannot run as a Xen guest).

   The Xen backends model event-channel masking: disabling "interrupts" in
   a PV guest is a write to the shared-info mask, not a hypercall; the
   hypercall only happens when an event was pending. *)

module Machine = Mv_vm.Machine

type config = Current | Multiverse | Static_native

let config_name = function
  | Current -> "PV-Op patching [current]"
  | Multiverse -> "PV-Op patching [multiverse]"
  | Static_native -> "PV-Op disabled [ifdef]"

let bench =
  {|
    void bench_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
        irq_disable();
        irq_enable();
      }
    }
    void empty_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
      }
    }
  |}

(* Backends.  The standard-convention implementations serve the multiverse
   build; the saveall ones model the current PV-Ops calling convention. *)
let backends =
  {|
    int xen_mask;
    int xen_pending;

    void native_cli() { __cli(); }
    void native_sti() { __sti(); }

    void xen_cli() { xen_mask = 1; }
    void xen_sti() {
      xen_mask = 0;
      if (xen_pending) {
        __hypercall(2);
      }
    }

    saveall void xen_cli_saveall() { xen_mask = 1; }
    saveall void xen_sti_saveall() {
      xen_mask = 0;
      if (xen_pending) {
        __hypercall(2);
      }
    }
  |}

let source = function
  | Current | Multiverse ->
      backends
      ^ {|
    multiverse fnptr pv_irq_disable = &native_cli;
    multiverse fnptr pv_irq_enable = &native_sti;
    void irq_disable() { pv_irq_disable(); }
    void irq_enable() { pv_irq_enable(); }
  |}
      ^ bench
  | Static_native ->
      backends
      ^ {|
    void irq_disable() { __cli(); }
    void irq_enable() { __sti(); }
  |}
      ^ bench

(** Boot-time binding: assign the platform's backend to the PV-Ops and
    commit (the current mechanism patches at early boot; multiverse commits
    through the same runtime here, with the calling convention being the
    modeled difference). *)
let boot (s : Harness.session) (c : config) (platform : Machine.platform) =
  match c, platform with
  | Static_native, Machine.Native -> ()
  | Static_native, Machine.Xen ->
      invalid_arg "a kernel without PV support cannot run as a Xen guest"
  | (Current | Multiverse), Machine.Native ->
      (* both mechanisms inline the one-instruction native bodies, so the
         current mechanism is modeled with the same standard-convention
         targets here (Section 6.1: "both patching mechanisms are capable
         of inlining these simple function bodies") *)
      Harness.set_fnptr s "pv_irq_disable" "native_cli";
      Harness.set_fnptr s "pv_irq_enable" "native_sti";
      ignore (Harness.commit s)
  | Current, Machine.Xen ->
      Harness.set_fnptr s "pv_irq_disable" "xen_cli_saveall";
      Harness.set_fnptr s "pv_irq_enable" "xen_sti_saveall";
      ignore (Harness.commit s)
  | Multiverse, Machine.Xen ->
      Harness.set_fnptr s "pv_irq_disable" "xen_cli";
      Harness.set_fnptr s "pv_irq_enable" "xen_sti";
      ignore (Harness.commit s)

(** Mean cycles for irq_disable() + irq_enable(). *)
let measure ?(samples = 120) ?(calls = 100) (c : config)
    ~(platform : Machine.platform) : Harness.measurement =
  let s = Harness.session1 ~platform (source c) in
  boot s c platform;
  Harness.measure ~samples ~calls s ~loop_fn:"bench_loop"

(** Functional driver for tests: interrupt state must track the calls on
    native; the Xen mask must track them in a PV guest. *)
let functional_source c =
  source c
  ^ {|
    int stress(int n) {
      for (int i = 0; i < n; i = i + 1) {
        irq_disable();
        irq_enable();
      }
      return 0;
    }
  |}

(** Run the irq workload on every hart of an SMP container concurrently:
    per-hart interrupt flags are independent, so [n] disable/enable pairs
    per hart must leave every hart's flag enabled and (on native) charge
    each hart its own cli/sti work.  Returns the session after the run. *)
let smp_stress ?(n_harts = 2) ?policy ?(seed = 1) ?(iters = 50)
    (platform : Machine.platform) : Harness.smp_session =
  let s =
    Harness.smp_session1 ~n_harts ?policy ~seed ~platform
      (functional_source Multiverse)
  in
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let sym n = Mv_link.Image.symbol img n in
  (match platform with
  | Machine.Native ->
      Harness.smp_set s "pv_irq_disable" (sym "native_cli");
      Harness.smp_set s "pv_irq_enable" (sym "native_sti")
  | Machine.Xen ->
      Harness.smp_set s "pv_irq_disable" (sym "xen_cli");
      Harness.smp_set s "pv_irq_enable" (sym "xen_sti"));
  ignore (Harness.smp_commit s);
  for h = 0 to n_harts - 1 do
    Harness.smp_start s ~hart:h "stress" [ iters ]
  done;
  Harness.smp_run s;
  s
