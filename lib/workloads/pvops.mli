(** Kernel case study 2: paravirtual operations (paper Section 6.1,
    Figure 4 right).  PV-Ops are multiversed function-pointer switches
    bound at boot; the "current" mechanism's custom calling convention
    ([saveall]) is the modeled difference on the Xen path. *)

type config =
  | Current  (** existing PV-Ops patching; Xen backends use [saveall] *)
  | Multiverse  (** fn-pointer switches, standard calling convention *)
  | Static_native  (** paravirtualization compiled out; cannot run on Xen *)

val config_name : config -> string

val source : config -> string

(** Boot-time binding: assign the platform's backends and commit.  Raises
    [Invalid_argument] for [Static_native] on Xen. *)
val boot : Harness.session -> config -> Mv_vm.Machine.platform -> unit

(** Mean cycles for irq_disable() + irq_enable(). *)
val measure :
  ?samples:int ->
  ?calls:int ->
  config ->
  platform:Mv_vm.Machine.platform ->
  Harness.measurement

(** Source with a [stress] driver for the functional tests. *)
val functional_source : config -> string

(** Run the [stress] irq workload on every hart of an [n_harts] container
    concurrently (per-hart interrupt flags are independent); boots the
    platform's backends, commits, drives every hart to completion and
    returns the session for inspection. *)
val smp_stress :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?iters:int ->
  Mv_vm.Machine.platform ->
  Harness.smp_session
