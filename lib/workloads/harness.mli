(** The measurement harness, mirroring the paper's protocol (Section 6.1):
    many samples of a fixed number of calls each, with "clearly
    distinguishable" outliers (simulated interrupts) excluded. *)

type measurement = {
  m_mean : float;  (** mean cycles per call, outliers excluded *)
  m_stddev : float;
  m_min : float;  (** fastest kept sample *)
  m_max : float;  (** slowest kept sample *)
  m_p50 : float;  (** median (nearest-rank) *)
  m_p95 : float;  (** 95th percentile — the tail-latency figure *)
  m_samples : int;  (** samples kept *)
  m_excluded : int;  (** outliers dropped *)
}

(** A built program with an attached machine and multiverse runtime, plus
    the observability state (the [enable_*] functions fill the optional
    fields). *)
type session = {
  program : Core.Compiler.program;
  machine : Mv_vm.Machine.t;
  runtime : Core.Runtime.t;
  flight : Mv_obs.Flight.t;
      (** the always-on flight recorder, armed at session creation *)
  mutable trace : Mv_obs.Trace.ring option;
  mutable profile : Mv_obs.Profile.t option;
  mutable stackprof : Mv_obs.Stackprof.t option;
  mutable metrics : Mv_obs.Metrics.t option;
  mutable metrics_sink : Mv_obs.Trace.sink option;
      (** the registry's event bridge, teed with the ring sink *)
  mutable heat : Mv_obs.Heat.t option;
      (** the code-heat accumulator, set by {!enable_heat} *)
}

(** Assemble a session from pre-built parts (for callers that need custom
    build options, e.g. call-site padding); opt-in observability starts
    disabled, but the flight recorder ([flight_capacity] events, default
    512) is armed immediately and the machine's trap hook wired to dump a
    [mv-flight/1] artifact on any escaping fault (gated on
    [MV_SMP_ARTIFACT_DIR] — a plain test run writes nothing). *)
val of_parts :
  ?flight_capacity:int ->
  Core.Compiler.program ->
  Mv_vm.Machine.t ->
  Core.Runtime.t ->
  session

val session :
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  (string * string) list ->
  session

val session1 :
  ?platform:Mv_vm.Machine.platform -> ?cost:Mv_vm.Cost.t -> string -> session

(** Build a session in lazy-materialization mode: the compiler records
    per-function specialization recipes instead of pre-expanding the
    switch product ([Core.Compiler.build ~lazy_variants:true]), the link
    reserves a [vtext_size]-byte growable text region, and the runtime's
    lazy materializer is armed ([Core.Runtime.enable_lazy]) with a
    resident-variant byte [budget] (default: the whole region).  The
    first commit of an unseen valuation specializes, assembles and links
    the needed variant on demand; structurally identical bodies dedup to
    one copy; cold variants are evicted when the budget runs out. *)
val lazy_session :
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  ?vtext_size:int ->
  ?budget:int ->
  (string * string) list ->
  session

val lazy_session1 :
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  ?vtext_size:int ->
  ?budget:int ->
  string ->
  session

(** Read/write a word-sized global by symbol. *)
val set : session -> string -> int -> unit

val get : session -> string -> int

(** Point a function-pointer global at a function symbol. *)
val set_fnptr : session -> string -> string -> unit

(** Whole-image [Runtime.commit] / [Runtime.revert]. *)
val commit : session -> int

val revert : session -> int

(** Wire safe commit end to end: install the machine's stack scanner as the
    runtime's live-activation source and the runtime's {!Core.Runtime.safepoint}
    as the machine's quiescence-point hook.  After this, every guest [ret]
    pays the (small) safepoint-poll cost and drains deferred patch sets. *)
val enable_safe_commit : session -> unit

(** {!Core.Runtime.commit_safe} / {!Core.Runtime.revert_safe} on the
    session's runtime ({!enable_safe_commit} first). *)
val commit_safe : ?policy:Core.Runtime.safe_policy -> session -> int

val revert_safe : ?policy:Core.Runtime.safe_policy -> session -> int

(** Arm on-stack replacement ({!Core.Runtime.set_osr}): the runtime gains
    accessors to the machine's registers, stack words, and frame list, so
    a safepoint that finds a deferred patch blocked by a live activation
    transfers the activation into the target body (via the image's frame
    maps) instead of waiting for the frame to unwind.  Compose with
    {!enable_safe_commit}. *)
val enable_osr : session -> unit

(** {1 Observability}

    Structured tracing, sampling profiling, and the unified metrics
    snapshot.  All of it is pay-for-use: a session that never calls
    {!enable_tracing}/{!enable_profiling} executes with bit-identical
    simulated cycle counts. *)

(** Arm the structured-event recorder: one ring of [capacity] events
    (default 4096), clocked by the machine's cycle counter, receiving
    both the runtime's patching events and the machine's icache flushes.
    Calling again replaces the ring. *)
val enable_tracing : ?capacity:int -> session -> unit

(** Attach the sampling profiler to the machine's step loop ([interval]
    is the sampling period in instructions, default 97).  Attribution
    resolves pcs through the image symbol map, so generic bodies and
    installed variants are reported separately. *)
val enable_profiling : ?interval:int -> session -> unit

(** Attach the stack-aware sampler: each sample records the collapsed
    call stack (from [Machine.call_frames]) with the sampled pc's symbol
    appended as the leaf when it differs from the innermost frame — so a
    prologue-jump into a variant shows up as
    [...;spin_lock;spin_lock.config_smp=0].  Composes with
    {!enable_profiling} (both samplers tee off the machine's single
    sampler slot). *)
val enable_stack_profiling : ?interval:int -> session -> unit

(** Attach the metrics registry: a {!Mv_obs.Metrics.trace_sink} bridges
    every runtime/machine trace event into counters and latency
    histograms ([mv_commits_total], [mv_patch_latency_cycles], ...).
    Composes with {!enable_tracing} (both sinks tee off the single
    tracer slot). *)
val enable_metrics : session -> unit

(** Arm code-heat telemetry end to end: the machine's block-entry hit
    counters ([Mv_vm.Machine.enable_heat] — host-side, zero simulated
    cycles), the runtime's body census as the region registry
    ([Core.Runtime.heat_regions]), and the residency sink
    ([Mv_obs.Heat.sink]) teed into the session's event chain.  [decay]
    is the per-epoch hotness multiplier (default 0.5).  Composes with
    the other [enable_*] in any order. *)
val enable_heat : ?decay:float -> session -> unit

(** The heat accumulator armed by {!enable_heat}, if any, with the
    machine's cumulative block counters folded in first (delta-safe:
    reading repeatedly never double-counts). *)
val heat : session -> Mv_obs.Heat.t option

(** Close a decay epoch: fold the machine counters, then apply the decay
    step to every region's hotness score. *)
val heat_epoch : session -> unit

(** Per-region heat accounting, synced ([[]] until {!enable_heat}). *)
val heat_report : session -> Mv_obs.Heat.region_stat list

(** The session's [mv-heat/1] document, synced, with open residency
    intervals extended to the current machine clock; [budget] adds the
    eviction advisor's plan (with variants a journaled-but-undrained
    bind still needs excluded from it).  [Json.Null] until
    {!enable_heat}. *)
val heat_json : ?budget:int -> session -> Mv_obs.Json.t

(** Wire the heat accumulator in as the lazy materializer's eviction
    advisor ({!Core.Runtime.set_evict_advisor}): when the runtime needs
    room in the variant cache, {!Mv_obs.Heat.evict_plan} (freshly
    synced, pending variants excluded) ranks the resident variants and
    the [Evict] verdicts are offered coldest-first.  [budget] is the
    advisor's keep-budget — variants whose cumulative densest-first
    size fits are never advised away; the default [0] makes every
    resident variant eligible.  Requires {!enable_heat}; composes with
    {!lazy_session}. *)
val enable_evict_advisor : ?budget:int -> session -> unit

(** Recorded events, oldest first ([[]] until {!enable_tracing}). *)
val trace_events : session -> Mv_obs.Trace.stamped list

(** The recorded events as a Chrome [trace_event] JSON document —
    loadable in [about:tracing] / Perfetto. *)
val trace_dump : session -> string

(** The session's always-on flight recorder. *)
val flight : session -> Mv_obs.Flight.t

(** The flight recorder's surviving window, decoded (oldest first). *)
val flight_events : session -> Mv_obs.Trace.stamped list

(** The session's flight recorder dumped as a [mv-flight/1] document
    with full postmortem context (runtime stats, hart pc/stack) — what
    the trap hook writes, callable on demand. *)
val flight_dump : ?reason:string -> session -> string

(** The profiler's hot-function table, hottest first ([[]] until
    {!enable_profiling}). *)
val profile_report : session -> Mv_obs.Profile.row list

(** The stack profiler's hot-stack table, hottest first ([[]] until
    {!enable_stack_profiling}). *)
val stack_report : session -> Mv_obs.Stackprof.row list

(** The stack profile in folded-stack format
    ([frame;frame;... count] lines, flamegraph.pl / speedscope input);
    [""] until {!enable_stack_profiling}. *)
val folded_dump : session -> string

(** The metrics registry ([None] until {!enable_metrics}). *)
val metrics : session -> Mv_obs.Metrics.t option

(** The unified metrics snapshot ([mv-metrics/1]): runtime patching
    counters, machine perf counters with derived metrics, static program
    statistics, plus profiler/trace sections when enabled. *)
val metrics_json : session -> Mv_obs.Json.t

(** Run a guest function by symbol name to completion; returns r0. *)
val call : session -> string -> int list -> int

(** Cycles consumed by one invocation. *)
val cycles_of_call : session -> string -> int list -> float

val mean : float list -> float
val stddev : float list -> float

(** Nearest-rank percentile of a sample list, [p] in [0, 1]; [0.0] for
    the empty list. *)
val percentile : float list -> float -> float

(** Drop samples beyond 3x the median (interrupt-scale disturbances);
    returns (kept, excluded). *)
val exclude_outliers : float list -> float list * float list

(** Measure [loop_fn], a guest function running [calls] invocations of the
    function under test per sample.  [jitter] (a seed) makes a small
    fraction of samples absorb a simulated interrupt, exercising the
    outlier-exclusion protocol. *)
val measure :
  ?samples:int ->
  ?calls:int ->
  ?warmup:int ->
  ?jitter:int ->
  session ->
  loop_fn:string ->
  measurement

(** Perf-counter deltas over one [loop_fn calls] invocation. *)
val counters : session -> loop_fn:string -> calls:int -> Mv_vm.Perf.snapshot

val pp_measurement : Format.formatter -> measurement -> unit

(** A measurement as a JSON object
    ([mean]/[stddev]/[min]/[max]/[p50]/[p95]/[samples]/[excluded]) — the
    bench exporter's row payload. *)
val measurement_json : measurement -> Mv_obs.Json.t

(** {1 SMP sessions}

    The same harness over an N-hart {!Mv_vm.Smp.t}: one shared image,
    per-hart registers/stacks/icaches, a deterministic seeded scheduler,
    and the runtime wired for cross-modifying code — every patching
    operation runs inside a [stop_machine] rendezvous, every text
    mutation goes through the breakpoint-first [text_poke], flushes reach
    every hart, and quiescence scans aggregate every hart's stack. *)

type smp_session = {
  sm_program : Core.Compiler.program;
  smp : Mv_vm.Smp.t;
  sm_runtime : Core.Runtime.t;
  sm_flight : Mv_obs.Flight.t;
      (** the always-on flight recorder, armed at session creation *)
  mutable sm_trace : Mv_obs.Trace.ring option;
  mutable sm_metrics : Mv_obs.Metrics.t option;
  mutable sm_metrics_sink : Mv_obs.Trace.sink option;
  mutable sm_stackprofs : Mv_obs.Stackprof.t array;
      (** one per hart once {!enable_smp_stack_profiling} ran *)
  mutable sm_heat : Mv_obs.Heat.t option;
      (** the shared code-heat accumulator, set by {!enable_smp_heat} *)
}

(** Build an SMP session ([n_harts] default 2; [policy]/[seed] as in
    {!Mv_vm.Smp.create}).  Safe commit is wired end to end: per-hart
    safepoints drain the runtime's journal, and the live scanner sees all
    harts.  Causal attribution is wired too: the runtime's hart source is
    the container's current hart, so commit-chain events carry the hart
    they ran on.  The flight recorder ([flight_capacity], default 512) is
    armed immediately, clocked by the SMP clock, with every hart's trap
    hook dumping a [mv-flight/1] artifact on an escaping fault (gated on
    [MV_SMP_ARTIFACT_DIR]). *)
val smp_session :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  ?flight_capacity:int ->
  ?lazy_variants:bool ->
  ?vtext_size:int ->
  ?budget:int ->
  (string * string) list ->
  smp_session

val smp_session1 :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  string ->
  smp_session

(** {!lazy_session} on an N-hart container: the first commit of an
    unseen valuation specializes inside the [stop_machine] rendezvous
    and writes the body through the breakpoint-first [text_poke]. *)
val lazy_smp_session :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  ?flight_capacity:int ->
  ?vtext_size:int ->
  ?budget:int ->
  (string * string) list ->
  smp_session

val lazy_smp_session1 :
  ?n_harts:int ->
  ?policy:Mv_vm.Smp.policy ->
  ?seed:int ->
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  ?vtext_size:int ->
  ?budget:int ->
  string ->
  smp_session

(** Read/write a word-sized global through the shared image. *)
val smp_set : smp_session -> string -> int -> unit

val smp_get : smp_session -> string -> int

(** Whole-image commit/revert (runs under the rendezvous barrier). *)
val smp_commit : smp_session -> int

val smp_revert : smp_session -> int

val smp_commit_safe : ?policy:Core.Runtime.safe_policy -> smp_session -> int
val smp_revert_safe : ?policy:Core.Runtime.safe_policy -> smp_session -> int

(** {!enable_osr} for the container: the runtime resolves the accessors
    of whichever hart is currently polling, so each hart's safepoint can
    transfer that hart's own parked activation. *)
val enable_smp_osr : smp_session -> unit

(** Prepare a call on one hart; drive with {!smp_step}/{!smp_run}. *)
val smp_start : smp_session -> hart:int -> string -> int list -> unit

(** One scheduler step; [false] when every hart halted. *)
val smp_step : smp_session -> bool

(** Drive until every hart halted. *)
val smp_run : smp_session -> unit

(** Hart [hart]'s return value (r0). *)
val smp_result : smp_session -> hart:int -> int

(** Arm the event ring on the container (clocked by the SMP clock, hart
    stamps from the container's current hart): patching events, per-hart
    icache flushes, IPI/rendezvous lifecycle, causal edges. *)
val enable_smp_tracing : ?capacity:int -> smp_session -> unit

(** Arm the metrics registry on the container: the trace bridge with the
    hart source wired, so patch/drain latency histograms carry a [hart]
    label.  Composes with {!enable_smp_tracing} in either order. *)
val enable_smp_metrics : smp_session -> unit

(** The registry armed by {!enable_smp_metrics}, if any. *)
val smp_metrics : smp_session -> Mv_obs.Metrics.t option

(** {!enable_heat} for the container: every hart's machine gains block
    counters and one shared accumulator folds their deltas keyed by hart
    id, so harts sharing text offsets never collide; the residency sink
    is clocked by the SMP clock. *)
val enable_smp_heat : ?decay:float -> smp_session -> unit

(** The container's heat accumulator, if any, with every hart's counters
    folded in first. *)
val smp_heat : smp_session -> Mv_obs.Heat.t option

(** Per-region heat across all harts ([[]] until {!enable_smp_heat}). *)
val smp_heat_report : smp_session -> Mv_obs.Heat.region_stat list

(** {!enable_evict_advisor} for the container: the advisor syncs every
    hart's counters before ranking, and still excludes variants a
    pending bind needs. *)
val enable_smp_evict_advisor : ?budget:int -> smp_session -> unit

val smp_trace_events : smp_session -> Mv_obs.Trace.stamped list
val smp_trace_dump : smp_session -> string

(** The container's always-on flight recorder. *)
val smp_flight : smp_session -> Mv_obs.Flight.t

(** The container flight recorder's surviving window, decoded. *)
val smp_flight_events : smp_session -> Mv_obs.Trace.stamped list

(** The container's flight recorder dumped as a [mv-flight/1] document
    with per-hart postmortem context — what the trap hooks write,
    callable on demand. *)
val smp_flight_dump : ?reason:string -> smp_session -> string

(** Attach a stack profiler to every hart, each rooted at a synthetic
    ["hartN"] frame (see [Mv_obs.Stackprof.create]'s [root]). *)
val enable_smp_stack_profiling : ?interval:int -> smp_session -> unit

(** Per-hart stack reports (empty until profiling is enabled). *)
val smp_stack_reports : smp_session -> Mv_obs.Stackprof.row list array

(** Every hart's folded stacks concatenated, each line rooted at its
    hart frame. *)
val smp_folded_dump : smp_session -> string
