(** The measurement harness, mirroring the paper's protocol (Section 6.1):
    many samples of a fixed number of calls each, with "clearly
    distinguishable" outliers (simulated interrupts) excluded. *)

type measurement = {
  m_mean : float;  (** mean cycles per call, outliers excluded *)
  m_stddev : float;
  m_samples : int;  (** samples kept *)
  m_excluded : int;  (** outliers dropped *)
}

(** A built program with an attached machine and multiverse runtime. *)
type session = {
  program : Core.Compiler.program;
  machine : Mv_vm.Machine.t;
  runtime : Core.Runtime.t;
}

val session :
  ?platform:Mv_vm.Machine.platform ->
  ?cost:Mv_vm.Cost.t ->
  (string * string) list ->
  session

val session1 :
  ?platform:Mv_vm.Machine.platform -> ?cost:Mv_vm.Cost.t -> string -> session

(** Read/write a word-sized global by symbol. *)
val set : session -> string -> int -> unit

val get : session -> string -> int

(** Point a function-pointer global at a function symbol. *)
val set_fnptr : session -> string -> string -> unit

(** Whole-image [Runtime.commit] / [Runtime.revert]. *)
val commit : session -> int

val revert : session -> int

(** Wire safe commit end to end: install the machine's stack scanner as the
    runtime's live-activation source and the runtime's {!Core.Runtime.safepoint}
    as the machine's quiescence-point hook.  After this, every guest [ret]
    pays the (small) safepoint-poll cost and drains deferred patch sets. *)
val enable_safe_commit : session -> unit

(** {!Core.Runtime.commit_safe} / {!Core.Runtime.revert_safe} on the
    session's runtime ({!enable_safe_commit} first). *)
val commit_safe : ?policy:Core.Runtime.safe_policy -> session -> int

val revert_safe : ?policy:Core.Runtime.safe_policy -> session -> int

(** Run a guest function by symbol name to completion; returns r0. *)
val call : session -> string -> int list -> int

(** Cycles consumed by one invocation. *)
val cycles_of_call : session -> string -> int list -> float

val mean : float list -> float
val stddev : float list -> float

(** Drop samples beyond 3x the median (interrupt-scale disturbances);
    returns (kept, excluded). *)
val exclude_outliers : float list -> float list * float list

(** Measure [loop_fn], a guest function running [calls] invocations of the
    function under test per sample.  [jitter] (a seed) makes a small
    fraction of samples absorb a simulated interrupt, exercising the
    outlier-exclusion protocol. *)
val measure :
  ?samples:int ->
  ?calls:int ->
  ?warmup:int ->
  ?jitter:int ->
  session ->
  loop_fn:string ->
  measurement

(** Perf-counter deltas over one [loop_fn calls] invocation. *)
val counters : session -> loop_fn:string -> calls:int -> Mv_vm.Perf.snapshot

val pp_measurement : Format.formatter -> measurement -> unit
