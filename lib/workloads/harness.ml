(* The measurement harness, mirroring the paper's protocol (Section 6.1):

   "For each measurement we recorded 1 million samples, each consisting of
    100 calls to the respective functions.  In all result sets a small
    amount (not exceeding 0.04%) of clearly distinguishable outliers could
    be observed, presumably attributable to the occurrence of processor
    interrupts during measurement.  These outliers were excluded."

   Samples here are simulated-cycle counts per call; the machine is
   deterministic, so an optional seeded jitter source injects "interrupt"
   outliers to exercise the exclusion protocol. *)

module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf
module Image = Mv_link.Image
module Trace = Mv_obs.Trace
module Profile = Mv_obs.Profile
module Stackprof = Mv_obs.Stackprof
module Metrics = Mv_obs.Metrics
module Flight = Mv_obs.Flight
module Heat = Mv_obs.Heat
module Json = Mv_obs.Json

type measurement = {
  m_mean : float;  (** mean cycles per call, outliers excluded *)
  m_stddev : float;
  m_min : float;
  m_max : float;
  m_p50 : float;
  m_p95 : float;
  m_samples : int;
  m_excluded : int;
}

(** A built program with an attached machine and multiverse runtime, plus
    the (lazily enabled) observability state. *)
type session = {
  program : Core.Compiler.program;
  machine : Machine.t;
  runtime : Core.Runtime.t;
  flight : Flight.t;  (** always-on flight recorder, armed at creation *)
  mutable trace : Trace.ring option;  (** set by {!enable_tracing} *)
  mutable profile : Profile.t option;  (** set by {!enable_profiling} *)
  mutable stackprof : Stackprof.t option;  (** set by {!enable_stack_profiling} *)
  mutable metrics : Metrics.t option;  (** set by {!enable_metrics} *)
  mutable metrics_sink : Trace.sink option;  (** the registry's trace bridge *)
  mutable heat : Heat.t option;  (** set by {!enable_heat} *)
}

(* Sequence number for trap artifacts, so two faults in one process never
   overwrite each other's dump. *)
let trap_counter = ref 0

(* Postmortem context for a flight dump: the fault, the runtime's
   patching counters, and each hart's pc/stack summary. *)
let trap_extra ~msg ~runtime ~machines : (string * Json.t) list =
  [
    ("fault", Json.String msg);
    ("runtime", Core.Runtime.stats_json (Core.Runtime.stats runtime));
    ( "harts",
      Json.List
        (List.mapi
           (fun i (m : Machine.t) ->
             Json.Obj
               [
                 ("hart", Json.Int i);
                 ("pc", Json.Int m.Machine.pc);
                 ( "frames",
                   Json.List
                     (List.map (fun a -> Json.Int a) (Machine.call_frames m)) );
               ])
           machines) );
  ]

(** Assemble a session from pre-built parts (for callers that need custom
    build options, e.g. call-site padding).  The flight recorder is armed
    here — always-on, every session — and the machine's trap hook wired
    to dump it (gated on [MV_SMP_ARTIFACT_DIR], so a plain test run
    writes nothing). *)
let of_parts ?(flight_capacity = 512) program machine runtime : session =
  let flight =
    Flight.create ~capacity:flight_capacity
      ~clock:(fun () -> machine.Machine.perf.Perf.cycles)
      ()
  in
  let s =
    {
      program;
      machine;
      runtime;
      flight;
      trace = None;
      profile = None;
      stackprof = None;
      metrics = None;
      metrics_sink = None;
      heat = None;
    }
  in
  Machine.set_trap_hook machine
    (Some
       (fun msg ->
         incr trap_counter;
         ignore
           (Flight.write_artifact flight ~reason:"vm-trap"
              ~name:(Printf.sprintf "trap-%d" !trap_counter)
              ~extra:(trap_extra ~msg ~runtime ~machines:[ machine ])
              ())));
  (* the recorder listens from the first instruction; enable_tracing /
     enable_metrics later tee their sinks in front of it *)
  let fsink = Flight.sink flight in
  Core.Runtime.set_tracer runtime (Some fsink);
  Machine.set_tracer machine (Some fsink);
  s

let session ?platform ?cost (sources : (string * string) list) : session =
  let program = Core.Compiler.build sources in
  let machine = Machine.create ?platform ?cost program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Machine.flush_icache machine ~addr ~len)
  in
  of_parts program machine runtime

let session1 ?platform ?cost source = session ?platform ?cost [ ("main", source) ]

(** A session built in lazy-materialization mode: the compiler records
    recipes instead of pre-expanding the switch product, and the runtime
    specializes on first commit into the image's vtext region.
    [vtext_size] sizes that region at link time; [budget] caps resident
    variant bytes (default: the whole region). *)
let lazy_session ?platform ?cost ?vtext_size ?budget
    (sources : (string * string) list) : session =
  let program = Core.Compiler.build ~lazy_variants:true ?vtext_size sources in
  let machine = Machine.create ?platform ?cost program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Machine.flush_icache machine ~addr ~len)
  in
  Core.Runtime.enable_lazy ?budget runtime
    ~recipes:(Core.Compiler.recipes program)
    ~call_pad:(Core.Compiler.call_pad program);
  of_parts program machine runtime

let lazy_session1 ?platform ?cost ?vtext_size ?budget source =
  lazy_session ?platform ?cost ?vtext_size ?budget [ ("main", source) ]

let set s name v =
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img name) v 8

let get s name =
  let img = s.program.Core.Compiler.p_image in
  Image.read img (Image.symbol img name) 8

(** Point a function-pointer global at a function symbol. *)
let set_fnptr s name target =
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img name) (Image.symbol img target) 8

let commit s = Core.Runtime.commit s.runtime
let revert s = Core.Runtime.revert s.runtime

(* Wire the vm and the runtime together for safe commit: the runtime scans
   the machine's stack for live activations, and the machine's
   quiescence-point hook drains the runtime's deferred patch sets. *)
let enable_safe_commit s =
  Core.Runtime.set_live_scanner s.runtime (fun () ->
      Machine.live_code_addrs s.machine);
  Machine.set_safepoint s.machine
    (Some (fun () -> Core.Runtime.safepoint s.runtime))

let commit_safe ?policy s = Core.Runtime.commit_safe ?policy s.runtime
let revert_safe ?policy s = Core.Runtime.revert_safe ?policy s.runtime

(* The OSR accessor record over one machine: direct register/pc access,
   8-byte stack words through the image, and top-frame replacement so the
   stack profiler follows the transferred activation. *)
let osr_hart_of_machine (m : Machine.t) : Core.Runtime.osr_hart =
  let img = m.Machine.image in
  {
    Core.Runtime.oh_hart = Machine.hart_id m;
    oh_pc = (fun () -> m.Machine.pc);
    oh_set_pc = (fun pc -> m.Machine.pc <- pc);
    oh_reg = (fun r -> m.Machine.regs.(r));
    oh_set_reg = (fun r v -> m.Machine.regs.(r) <- v);
    oh_mem = (fun addr -> Image.read img addr 8);
    oh_set_mem = (fun addr v -> Image.write img addr v 8);
    oh_set_top_frame =
      (fun addr ->
        m.Machine.frames <-
          (match m.Machine.frames with
          | _ :: rest -> addr :: rest
          | [] -> [ addr ]));
  }

(* Arm on-stack replacement: the runtime gains accessors to the machine's
   registers, stack words, and frame list, so a safepoint can transfer a
   live activation into the newly selected body instead of waiting for
   the frame to unwind.  Compose with enable_safe_commit. *)
let enable_osr s =
  let ctx = osr_hart_of_machine s.machine in
  Core.Runtime.set_osr s.runtime (Some (fun () -> ctx))

(* ------------------------------------------------------------------ *)
(* Observability: tracing, profiling, metrics                          *)
(* ------------------------------------------------------------------ *)

let machine_clock s () = s.machine.Machine.perf.Perf.cycles

(* One sink serves both emitters (runtime + machine); the always-on
   flight recorder is in every chain, the ring and the metrics bridge
   tee in front of it when armed.  Re-run after any enable_* so the
   installed chain always reflects the session's current state. *)
let install_tracers s =
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Trace.sink s.trace;
        s.metrics_sink;
        Option.map (fun h -> Heat.sink h ~clock:(machine_clock s)) s.heat;
        Some (Flight.sink s.flight);
      ]
  in
  let sink =
    match sinks with
    | [ f ] -> Some f
    | fs -> Some (fun ev -> List.iter (fun f -> f ev) fs)
  in
  Core.Runtime.set_tracer s.runtime sink;
  Machine.set_tracer s.machine sink

(* Same for the machine's single per-instruction observer slot: the flat
   profiler and the stack profiler can be armed together. *)
let install_samplers s =
  let fns =
    List.filter_map Fun.id
      [
        Option.map (fun p -> Profile.sample p) s.profile;
        Option.map (fun sp -> Stackprof.sample sp) s.stackprof;
      ]
  in
  let hook =
    match fns with
    | [] -> None
    | [ f ] -> Some f
    | fs -> Some (fun pc -> List.iter (fun f -> f pc) fs)
  in
  Machine.set_sampler s.machine hook

(* Wire the structured-event recorder: one ring, clocked by the machine's
   cycle counter, receiving both the runtime's patching events and the
   machine's icache flushes.  Idempotent; the second call replaces the
   ring (useful to re-arm with a different capacity). *)
let enable_tracing ?capacity s =
  let ring = Trace.ring ?capacity ~clock:(machine_clock s) () in
  s.trace <- Some ring;
  install_tracers s

(* Arm the metrics registry: a second consumer of the same event stream
   (Metrics.trace_sink), clocked like the ring so the latency histograms
   are in simulated cycles.  Composes with enable_tracing in either
   order. *)
let enable_metrics s =
  let m = Metrics.create () in
  s.metrics <- Some m;
  s.metrics_sink <- Some (Metrics.trace_sink m ~clock:(machine_clock s) ());
  install_tracers s

(* Arm code-heat telemetry: the machine gains block-entry hit counters
   (host-side, zero simulated cycles), the runtime's body census becomes
   the region registry, and the residency sink joins the event chain so
   variant lifecycles are tracked from the same trace stream everything
   else consumes.  Composes with the other enable_* in any order. *)
let enable_heat ?decay s =
  let h = Heat.create ?decay () in
  List.iter (Heat.register h) (Core.Runtime.heat_regions s.runtime);
  s.heat <- Some h;
  Machine.enable_heat s.machine;
  install_tracers s

(* Fold the machine's cumulative block counters into the accumulator
   (delta-safe: calling it repeatedly never double-counts).  Under lazy
   materialization the body census changes as variants come and go, so
   re-register the runtime's current regions first — Heat.register
   replaces extents by name, keeping registration order for survivors. *)
let heat_sync s =
  match s.heat with
  | None -> ()
  | Some h ->
      if Core.Runtime.lazy_enabled s.runtime then
        List.iter (Heat.register h) (Core.Runtime.heat_regions s.runtime);
      Heat.observe ~source:(Machine.hart_id s.machine) h
        (Machine.heat_blocks s.machine)

(** The heat accumulator armed by {!enable_heat}, if any (synced first). *)
let heat s =
  heat_sync s;
  s.heat

(** Close a decay epoch: sync the machine counters, then apply the decay
    step to every region's hotness score. *)
let heat_epoch s =
  heat_sync s;
  Option.iter Heat.epoch s.heat

(** Per-region heat accounting ([[]] until {!enable_heat}), synced. *)
let heat_report s =
  heat_sync s;
  match s.heat with None -> [] | Some h -> Heat.region_stats h

(** The [mv-heat/1] document for this session, synced; [budget] adds the
    eviction advisor's plan.  [Json.Null] until {!enable_heat}. *)
let heat_json ?budget s =
  heat_sync s;
  match s.heat with
  | None -> Json.Null
  | Some h ->
      Heat.to_json ?budget
        ~exclude:(Core.Runtime.pending_variants s.runtime)
        ~now:(machine_clock s ()) h

(** Wire the byte-budget eviction advisor into the runtime: when the lazy
    materializer needs room, it asks the heat accumulator's
    {!Heat.evict_plan} (freshly synced) which resident variants to shed
    first — coldest heat-per-byte first — excluding any a
    journaled-but-undrained bind still needs.  [budget] is the advisor's
    keep-budget: variants whose cumulative (densest-first) size fits are
    never advised away; the default 0 makes every resident variant
    eligible, ranked.  Requires {!enable_heat}; composes with
    {!lazy_session}. *)
let enable_evict_advisor ?(budget = 0) s =
  Core.Runtime.set_evict_advisor s.runtime
    (Some
       (fun () ->
         heat_sync s;
         match s.heat with
         | None -> []
         | Some h ->
             Heat.evict_plan
               ~exclude:(Core.Runtime.pending_variants s.runtime)
               h ~budget
             |> List.filter_map (fun (a : Heat.advice) ->
                    if a.Heat.ad_verdict = Heat.Evict then
                      Some a.Heat.ad_region.Heat.r_name
                    else None)
             |> List.rev))

(* Symbol names of all generated variants, for profiler classification. *)
let variant_names s =
  let img = s.program.Core.Compiler.p_image in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (f : Core.Descriptor.function_record) ->
      List.iter
        (fun (v : Core.Descriptor.variant_record) ->
          match Image.symbol_at img v.Core.Descriptor.va_addr with
          | Some name -> Hashtbl.replace tbl name ()
          | None -> ())
        f.Core.Descriptor.fd_variants)
    (Core.Descriptor.parse_functions img);
  tbl

(* Variant classifier for the profilers.  The descriptor-derived table is
   complete for eager builds but empty under lazy ones (variants do not
   exist at link time), so fall back to asking the runtime about bodies
   it has materialized since. *)
let is_variant_sym s tbl name =
  Hashtbl.mem tbl name
  || (Core.Runtime.lazy_enabled s.runtime
     && List.exists
          (fun (sym, _, _) -> sym = name)
          (Core.Runtime.materialized_variants s.runtime))

(* Attach the sampling profiler to the machine's step loop.  Resolution
   goes through the image symbol map, so generic bodies and installed
   variants (whose symbols carry the assignment suffix) are attributed
   separately. *)
let enable_profiling ?interval s =
  let img = s.program.Core.Compiler.p_image in
  let variants = variant_names s in
  let prof =
    Profile.create ?interval
      ~is_variant:(fun name -> is_variant_sym s variants name)
      ~resolve:(fun pc -> Image.symbol_at img pc)
      ~now:(machine_clock s) ()
  in
  s.profile <- Some prof;
  install_samplers s

(* Attach the stack-aware sampler: the same interval sampling, but each
   sample symbolizes the whole call stack (Machine.call_frames plus the
   pc as the leaf) and aggregates by collapsed stack — folded-stack
   output for flamegraph.pl/speedscope.  Composes with enable_profiling:
   both can observe the same run. *)
let enable_stack_profiling ?interval s =
  let img = s.program.Core.Compiler.p_image in
  let variants = variant_names s in
  let sp =
    Stackprof.create ?interval
      ~is_variant:(fun name -> is_variant_sym s variants name)
      ~resolve:(fun pc -> Image.symbol_at img pc)
      ~frames:(fun () -> Machine.call_frames s.machine)
      ~now:(machine_clock s) ()
  in
  s.stackprof <- Some sp;
  install_samplers s

let trace_events s = match s.trace with None -> [] | Some ring -> Trace.events ring

let trace_dump s = Mv_obs.Export.chrome_trace_string (trace_events s)

(** The session's always-on flight recorder. *)
let flight s = s.flight

(** The flight recorder's surviving window, decoded (oldest first). *)
let flight_events s = Flight.events s.flight

(** Dump the session's flight recorder with full postmortem context
    (runtime stats, hart pc/stack) — what the trap hook writes, callable
    on demand. *)
let flight_dump ?(reason = "manual") s =
  Flight.dump_string s.flight ~reason
    ~extra:(trap_extra ~msg:"" ~runtime:s.runtime ~machines:[ s.machine ])
    ()

let profile_report s = match s.profile with None -> [] | Some p -> Profile.report p

let stack_report s = match s.stackprof with None -> [] | Some sp -> Stackprof.report sp

(** The folded-stack dump ([""] until {!enable_stack_profiling}). *)
let folded_dump s = match s.stackprof with None -> "" | Some sp -> Stackprof.folded sp

let metrics s = s.metrics

(* The unified metrics snapshot: runtime patching counters, machine perf
   counters (with derived metrics), static program statistics, and — when
   enabled — the profiler's hot-function table and the trace recorder's
   accounting. *)
let metrics_json s : Json.t =
  let extra =
    (match s.profile with
    | Some p -> [ ("profile", Mv_obs.Export.profile_json (Profile.report p)) ]
    | None -> [])
    @ (match s.stackprof with
      | Some sp -> [ ("stacks", Mv_obs.Export.stack_profile_json (Stackprof.report sp)) ]
      | None -> [])
    @ (match s.metrics with
      | Some m ->
          (* refresh the runtime-counter (and, when armed, the code-heat)
             gauges at scrape time *)
          Core.Runtime.stats_metrics (Core.Runtime.stats s.runtime) m;
          (match s.heat with
          | Some h ->
              heat_sync s;
              Heat.to_metrics h m
          | None -> ());
          [ ("metrics", Metrics.to_json m) ]
      | None -> [])
    @
    match s.trace with
    | Some ring ->
        [
          ( "trace",
            Json.Obj
              [
                ("recorded", Json.Int (Trace.recorded ring));
                ("dropped", Json.Int (Trace.dropped ring));
              ] );
        ]
    | None -> []
  in
  Mv_obs.Export.metrics ~extra
    ~runtime:(Core.Runtime.stats_json (Core.Runtime.stats s.runtime))
    ~perf:(Perf.snapshot_json (Perf.snapshot s.machine.Machine.perf))
    ~program:(Core.Stats.program_stats_json (Core.Stats.of_program s.program))
    ()

let call s fn args = Machine.call s.machine fn args

(** Cycles consumed by one invocation [fn args]. *)
let cycles_of_call s fn args =
  let before = s.machine.Machine.perf.Perf.cycles in
  let (_ : int) = Machine.call s.machine fn args in
  s.machine.Machine.perf.Perf.cycles -. before

let mean values =
  if values = [] then 0.0
  else List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let stddev values =
  match values with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean values in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 values
        /. float_of_int (List.length values - 1)
      in
      sqrt var

(** Nearest-rank percentile of a sample list, [p] in [0, 1]; 0.0 for the
    empty list.  [percentile 0.5] is the median, [percentile 0.95] the
    tail-latency figure the bench tables report. *)
let percentile values p =
  match List.sort compare values with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

(** Exclude "clearly distinguishable" outliers: anything beyond 3x the
    median (interrupt-scale disturbances, not ordinary noise). *)
let exclude_outliers values =
  let sorted = List.sort compare values in
  let median = List.nth sorted (List.length sorted / 2) in
  let threshold = median *. 3.0 +. 1.0 in
  List.partition (fun v -> v <= threshold) values

(** Measure [loop_fn], a guest function that runs [calls] invocations of the
    function under test in a tight loop.  Returns mean cycles per call.

    [jitter] (a seed) makes a small fraction of samples absorb a simulated
    interrupt, as in the paper's measurements on real hardware. *)
let measure ?(samples = 200) ?(calls = 100) ?(warmup = 3) ?jitter (s : session)
    ~(loop_fn : string) : measurement =
  for _ = 1 to warmup do
    ignore (Machine.call s.machine loop_fn [ calls ])
  done;
  let lcg = ref (Option.value jitter ~default:0 lor 1) in
  let next_lcg () =
    lcg := (!lcg * 0x5DEECE66D) + 0xB land max_int;
    !lcg land 0xFFFFFF
  in
  let raw =
    List.init samples (fun _ ->
        let c = cycles_of_call s loop_fn [ calls ] /. float_of_int calls in
        match jitter with
        | Some _ when next_lcg () mod 2500 = 0 ->
            (* an "interrupt" hit this sample: ~500 cycles amortized *)
            c +. (500.0 /. float_of_int calls *. 10.0)
        | _ -> c)
  in
  let kept, excluded = exclude_outliers raw in
  {
    m_mean = mean kept;
    m_stddev = stddev kept;
    m_min = (match List.sort compare kept with [] -> 0.0 | v :: _ -> v);
    m_max = List.fold_left max 0.0 kept;
    m_p50 = percentile kept 0.5;
    m_p95 = percentile kept 0.95;
    m_samples = List.length kept;
    m_excluded = List.length excluded;
  }

(** Perf-counter deltas over [n] invocations of [loop_fn]. *)
let counters (s : session) ~loop_fn ~calls : Perf.snapshot =
  let before = Perf.snapshot s.machine.Machine.perf in
  ignore (Machine.call s.machine loop_fn [ calls ]);
  let after = Perf.snapshot s.machine.Machine.perf in
  Perf.diff before after

let pp_measurement fmt m =
  Format.fprintf fmt
    "%.2f ± %.2f cycles (min=%.2f p50=%.2f p95=%.2f max=%.2f, n=%d, excluded=%d)"
    m.m_mean m.m_stddev m.m_min m.m_p50 m.m_p95 m.m_max m.m_samples m.m_excluded

(** A measurement as a JSON object — the bench exporter's row payload. *)
let measurement_json m : Json.t =
  Json.Obj
    [
      ("mean", Json.Float m.m_mean);
      ("stddev", Json.Float m.m_stddev);
      ("min", Json.Float m.m_min);
      ("max", Json.Float m.m_max);
      ("p50", Json.Float m.m_p50);
      ("p95", Json.Float m.m_p95);
      ("samples", Json.Int m.m_samples);
      ("excluded", Json.Int m.m_excluded);
    ]

(* ------------------------------------------------------------------ *)
(* SMP sessions                                                        *)
(* ------------------------------------------------------------------ *)

module Smp = Mv_vm.Smp

(** A built program on an N-hart container, with the runtime wired for
    cross-modifying code: flushes reach every hart, live-activation scans
    aggregate every hart's stack, every patching operation runs inside a
    [stop_machine] rendezvous, and text mutations go through the
    breakpoint-first [text_poke]. *)
type smp_session = {
  sm_program : Core.Compiler.program;
  smp : Smp.t;
  sm_runtime : Core.Runtime.t;
  sm_flight : Flight.t;  (** always-on flight recorder, armed at creation *)
  mutable sm_trace : Trace.ring option;
  mutable sm_metrics : Metrics.t option;  (** set by {!enable_smp_metrics} *)
  mutable sm_metrics_sink : Trace.sink option;
  mutable sm_stackprofs : Stackprof.t array;  (** one per hart once enabled *)
  mutable sm_heat : Heat.t option;  (** set by {!enable_smp_heat} *)
}

(* The container-wide sink chain: ring and metrics bridge (when armed)
   tee in front of the always-on flight recorder, installed on both
   emitters (runtime + container). *)
let install_smp_tracers s =
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Trace.sink s.sm_trace;
        s.sm_metrics_sink;
        Option.map
          (fun h -> Heat.sink h ~clock:(fun () -> Smp.clock s.smp))
          s.sm_heat;
        Some (Flight.sink s.sm_flight);
      ]
  in
  let sink =
    match sinks with
    | [ f ] -> Some f
    | fs -> Some (fun ev -> List.iter (fun f -> f ev) fs)
  in
  Core.Runtime.set_tracer s.sm_runtime sink;
  Smp.set_tracer s.smp sink

let smp_session ?(n_harts = 2) ?policy ?seed ?platform ?cost
    ?(flight_capacity = 512) ?(lazy_variants = false) ?vtext_size ?budget
    (sources : (string * string) list) : smp_session =
  let program = Core.Compiler.build ~lazy_variants ?vtext_size sources in
  let image = program.Core.Compiler.p_image in
  let smp = Smp.create ?policy ?seed ?cost ?platform ~n_harts image in
  let runtime =
    Core.Runtime.create image ~flush:(fun ~addr ~len ->
        Smp.flush_icache smp ~addr ~len)
  in
  if lazy_variants then
    Core.Runtime.enable_lazy ?budget runtime
      ~recipes:(Core.Compiler.recipes program)
      ~call_pad:(Core.Compiler.call_pad program);
  Core.Runtime.set_live_scanner runtime (fun () -> Smp.live_code_addrs smp);
  Core.Runtime.set_patch_barrier runtime (Some (fun f -> Smp.stop_machine smp f));
  Core.Runtime.set_text_writer runtime
    (Some (fun ~addr b -> Smp.text_poke smp ~addr b));
  Smp.set_safepoint smp (Some (fun () -> Core.Runtime.safepoint runtime));
  (* causal attribution: commit-chain events carry the hart the runtime
     is currently driven from *)
  Core.Runtime.set_hart_source runtime (Some (fun () -> Smp.current_hart smp));
  let flight =
    Flight.create ~capacity:flight_capacity
      ~clock:(fun () -> Smp.clock smp)
      ~hart:(fun () -> Smp.current_hart smp)
      ()
  in
  let machines = List.init n_harts (fun i -> Smp.machine smp i) in
  List.iter
    (fun m ->
      Machine.set_trap_hook m
        (Some
           (fun msg ->
             incr trap_counter;
             ignore
               (Flight.write_artifact flight ~reason:"vm-trap"
                  ~name:(Printf.sprintf "trap-%d" !trap_counter)
                  ~extra:(trap_extra ~msg ~runtime ~machines)
                  ()))))
    machines;
  let s =
    { sm_program = program; smp; sm_runtime = runtime; sm_flight = flight;
      sm_trace = None; sm_metrics = None; sm_metrics_sink = None;
      sm_stackprofs = [||]; sm_heat = None }
  in
  install_smp_tracers s;
  s

let smp_session1 ?n_harts ?policy ?seed ?platform ?cost source =
  smp_session ?n_harts ?policy ?seed ?platform ?cost [ ("main", source) ]

(** An N-hart container in lazy-materialization mode: first commit of an
    unseen valuation specializes inside the [stop_machine] rendezvous and
    writes the body through [text_poke]. *)
let lazy_smp_session ?n_harts ?policy ?seed ?platform ?cost ?flight_capacity
    ?vtext_size ?budget sources =
  smp_session ?n_harts ?policy ?seed ?platform ?cost ?flight_capacity
    ~lazy_variants:true ?vtext_size ?budget sources

let lazy_smp_session1 ?n_harts ?policy ?seed ?platform ?cost ?vtext_size
    ?budget source =
  lazy_smp_session ?n_harts ?policy ?seed ?platform ?cost ?vtext_size ?budget
    [ ("main", source) ]

let smp_set s name v = Smp.write_global s.smp name v ~width:8
let smp_get s name = Smp.read_global s.smp name ~width:8
let smp_commit s = Core.Runtime.commit s.sm_runtime
let smp_revert s = Core.Runtime.revert s.sm_runtime
let smp_commit_safe ?policy s = Core.Runtime.commit_safe ?policy s.sm_runtime
let smp_revert_safe ?policy s = Core.Runtime.revert_safe ?policy s.sm_runtime

(** Arm on-stack replacement on the container: the runtime resolves the
    accessors of whichever hart is currently polling, so each hart's
    safepoint can transfer that hart's own activation. *)
let enable_smp_osr s =
  let ctxs =
    Array.init (Smp.n_harts s.smp) (fun i ->
        osr_hart_of_machine (Smp.machine s.smp i))
  in
  Core.Runtime.set_osr s.sm_runtime
    (Some (fun () -> ctxs.(Smp.current_hart s.smp)))
let smp_start s ~hart fn args = Smp.start_call s.smp ~hart fn args
let smp_step s = Smp.step s.smp
let smp_run s = Smp.run s.smp
let smp_result s ~hart = Smp.result s.smp ~hart

(** Arm the structured-event recorder on the container: one ring, clocked
    by the SMP clock (total cycles across harts), receiving the runtime's
    patching events, every hart's icache flushes, and the IPI/rendezvous
    lifecycle. *)
let enable_smp_tracing ?capacity s =
  let ring =
    Trace.ring ?capacity
      ~clock:(fun () -> Smp.clock s.smp)
      ~hart:(fun () -> Smp.current_hart s.smp)
      ()
  in
  s.sm_trace <- Some ring;
  install_smp_tracers s

(** Arm the metrics registry on the container: the same trace bridge as
    {!enable_metrics}, with the hart source wired so patch/drain latency
    histograms carry a [hart] label.  Composes with
    {!enable_smp_tracing} in either order. *)
let enable_smp_metrics s =
  let m = Metrics.create () in
  s.sm_metrics <- Some m;
  s.sm_metrics_sink <-
    Some
      (Metrics.trace_sink m
         ~clock:(fun () -> Smp.clock s.smp)
         ~hart:(fun () -> Smp.current_hart s.smp)
         ());
  install_smp_tracers s

(** The registry armed by {!enable_smp_metrics}, if any. *)
let smp_metrics s = s.sm_metrics

(** Arm code-heat telemetry on the container: every hart's machine gains
    block counters, one shared accumulator holds the per-region heat
    (per-hart deltas are folded by source, so harts sharing text offsets
    never collide), and the residency sink is clocked by the SMP
    clock. *)
let enable_smp_heat ?decay s =
  let h = Heat.create ?decay () in
  List.iter (Heat.register h) (Core.Runtime.heat_regions s.sm_runtime);
  s.sm_heat <- Some h;
  for i = 0 to Smp.n_harts s.smp - 1 do
    Machine.enable_heat (Smp.machine s.smp i)
  done;
  install_smp_tracers s

(* Fold every hart's cumulative block counters into the accumulator,
   keyed by hart id so cumulative deltas stay per-hart. *)
let smp_heat_sync s =
  match s.sm_heat with
  | None -> ()
  | Some h ->
      if Core.Runtime.lazy_enabled s.sm_runtime then
        List.iter (Heat.register h) (Core.Runtime.heat_regions s.sm_runtime);
      for i = 0 to Smp.n_harts s.smp - 1 do
        Heat.observe ~source:i h (Machine.heat_blocks (Smp.machine s.smp i))
      done

(** The SMP analogue of {!enable_evict_advisor}: the advisor syncs every
    hart's counters before ranking, and still excludes variants a pending
    bind needs. *)
let enable_smp_evict_advisor ?(budget = 0) s =
  Core.Runtime.set_evict_advisor s.sm_runtime
    (Some
       (fun () ->
         smp_heat_sync s;
         match s.sm_heat with
         | None -> []
         | Some h ->
             Heat.evict_plan
               ~exclude:(Core.Runtime.pending_variants s.sm_runtime)
               h ~budget
             |> List.filter_map (fun (a : Heat.advice) ->
                    if a.Heat.ad_verdict = Heat.Evict then
                      Some a.Heat.ad_region.Heat.r_name
                    else None)
             |> List.rev))

(** The container's heat accumulator, if any (synced first). *)
let smp_heat s =
  smp_heat_sync s;
  s.sm_heat

(** Per-region heat across all harts ([[]] until {!enable_smp_heat}). *)
let smp_heat_report s =
  smp_heat_sync s;
  match s.sm_heat with None -> [] | Some h -> Heat.region_stats h

let smp_trace_events s =
  match s.sm_trace with None -> [] | Some ring -> Trace.events ring

let smp_trace_dump s = Mv_obs.Export.chrome_trace_string (smp_trace_events s)

(** The container's always-on flight recorder. *)
let smp_flight s = s.sm_flight

(** The container flight recorder's surviving window, decoded. *)
let smp_flight_events s = Flight.events s.sm_flight

(** Dump the container's flight recorder with per-hart postmortem
    context — what the trap hooks write, callable on demand. *)
let smp_flight_dump ?(reason = "manual") s =
  let machines = List.init (Smp.n_harts s.smp) (fun i -> Smp.machine s.smp i) in
  Flight.dump_string s.sm_flight ~reason
    ~extra:(trap_extra ~msg:"" ~runtime:s.sm_runtime ~machines)
    ()

(** Attach a stack profiler to every hart, each rooted at a synthetic
    ["hartN"] frame so the merged folded dump keeps per-hart attribution.
    Each hart's sampler is clocked by its own cycle counter. *)
let enable_smp_stack_profiling ?interval s =
  let img = s.sm_program.Core.Compiler.p_image in
  let variants = Hashtbl.create 32 in
  List.iter
    (fun (f : Core.Descriptor.function_record) ->
      List.iter
        (fun (v : Core.Descriptor.variant_record) ->
          match Image.symbol_at img v.Core.Descriptor.va_addr with
          | Some name -> Hashtbl.replace variants name ()
          | None -> ())
        f.Core.Descriptor.fd_variants)
    (Core.Descriptor.parse_functions img);
  s.sm_stackprofs <-
    Array.init (Smp.n_harts s.smp) (fun i ->
        let m = Smp.machine s.smp i in
        let is_variant name =
          Hashtbl.mem variants name
          || (Core.Runtime.lazy_enabled s.sm_runtime
             && List.exists
                  (fun (sym, _, _) -> sym = name)
                  (Core.Runtime.materialized_variants s.sm_runtime))
        in
        let sp =
          Stackprof.create ?interval
            ~is_variant
            ~root:(Printf.sprintf "hart%d" i)
            ~resolve:(fun pc -> Image.symbol_at img pc)
            ~frames:(fun () -> Machine.call_frames m)
            ~now:(fun () -> m.Machine.perf.Perf.cycles)
            ()
        in
        Machine.set_sampler m (Some (fun pc -> Stackprof.sample sp pc));
        sp)

(** Per-hart stack reports (empty until {!enable_smp_stack_profiling}). *)
let smp_stack_reports s = Array.map Stackprof.report s.sm_stackprofs

(** The merged folded dump: every hart's folded stacks concatenated; each
    line starts with its hart's root frame. *)
let smp_folded_dump s =
  Array.to_list s.sm_stackprofs |> List.map Stackprof.folded |> String.concat ""
