(* The measurement harness, mirroring the paper's protocol (Section 6.1):

   "For each measurement we recorded 1 million samples, each consisting of
    100 calls to the respective functions.  In all result sets a small
    amount (not exceeding 0.04%) of clearly distinguishable outliers could
    be observed, presumably attributable to the occurrence of processor
    interrupts during measurement.  These outliers were excluded."

   Samples here are simulated-cycle counts per call; the machine is
   deterministic, so an optional seeded jitter source injects "interrupt"
   outliers to exercise the exclusion protocol. *)

module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf
module Image = Mv_link.Image

type measurement = {
  m_mean : float;  (** mean cycles per call, outliers excluded *)
  m_stddev : float;
  m_samples : int;
  m_excluded : int;
}

(** A built program with an attached machine and multiverse runtime. *)
type session = {
  program : Core.Compiler.program;
  machine : Machine.t;
  runtime : Core.Runtime.t;
}

let session ?platform ?cost (sources : (string * string) list) : session =
  let program = Core.Compiler.build sources in
  let machine = Machine.create ?platform ?cost program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Machine.flush_icache machine ~addr ~len)
  in
  { program; machine; runtime }

let session1 ?platform ?cost source = session ?platform ?cost [ ("main", source) ]

let set s name v =
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img name) v 8

let get s name =
  let img = s.program.Core.Compiler.p_image in
  Image.read img (Image.symbol img name) 8

(** Point a function-pointer global at a function symbol. *)
let set_fnptr s name target =
  let img = s.program.Core.Compiler.p_image in
  Image.write img (Image.symbol img name) (Image.symbol img target) 8

let commit s = Core.Runtime.commit s.runtime
let revert s = Core.Runtime.revert s.runtime

(* Wire the vm and the runtime together for safe commit: the runtime scans
   the machine's stack for live activations, and the machine's
   quiescence-point hook drains the runtime's deferred patch sets. *)
let enable_safe_commit s =
  Core.Runtime.set_live_scanner s.runtime (fun () ->
      Machine.live_code_addrs s.machine);
  Machine.set_safepoint s.machine
    (Some (fun () -> Core.Runtime.safepoint s.runtime))

let commit_safe ?policy s = Core.Runtime.commit_safe ?policy s.runtime
let revert_safe ?policy s = Core.Runtime.revert_safe ?policy s.runtime

let call s fn args = Machine.call s.machine fn args

(** Cycles consumed by one invocation [fn args]. *)
let cycles_of_call s fn args =
  let before = s.machine.Machine.perf.Perf.cycles in
  let (_ : int) = Machine.call s.machine fn args in
  s.machine.Machine.perf.Perf.cycles -. before

let mean values =
  if values = [] then 0.0
  else List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let stddev values =
  match values with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean values in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 values
        /. float_of_int (List.length values - 1)
      in
      sqrt var

(** Exclude "clearly distinguishable" outliers: anything beyond 3x the
    median (interrupt-scale disturbances, not ordinary noise). *)
let exclude_outliers values =
  let sorted = List.sort compare values in
  let median = List.nth sorted (List.length sorted / 2) in
  let threshold = median *. 3.0 +. 1.0 in
  List.partition (fun v -> v <= threshold) values

(** Measure [loop_fn], a guest function that runs [calls] invocations of the
    function under test in a tight loop.  Returns mean cycles per call.

    [jitter] (a seed) makes a small fraction of samples absorb a simulated
    interrupt, as in the paper's measurements on real hardware. *)
let measure ?(samples = 200) ?(calls = 100) ?(warmup = 3) ?jitter (s : session)
    ~(loop_fn : string) : measurement =
  for _ = 1 to warmup do
    ignore (Machine.call s.machine loop_fn [ calls ])
  done;
  let lcg = ref (Option.value jitter ~default:0 lor 1) in
  let next_lcg () =
    lcg := (!lcg * 0x5DEECE66D) + 0xB land max_int;
    !lcg land 0xFFFFFF
  in
  let raw =
    List.init samples (fun _ ->
        let c = cycles_of_call s loop_fn [ calls ] /. float_of_int calls in
        match jitter with
        | Some _ when next_lcg () mod 2500 = 0 ->
            (* an "interrupt" hit this sample: ~500 cycles amortized *)
            c +. (500.0 /. float_of_int calls *. 10.0)
        | _ -> c)
  in
  let kept, excluded = exclude_outliers raw in
  {
    m_mean = mean kept;
    m_stddev = stddev kept;
    m_samples = List.length kept;
    m_excluded = List.length excluded;
  }

(** Perf-counter deltas over [n] invocations of [loop_fn]. *)
let counters (s : session) ~loop_fn ~calls : Perf.snapshot =
  let before = Perf.snapshot s.machine.Machine.perf in
  ignore (Machine.call s.machine loop_fn [ calls ]);
  let after = Perf.snapshot s.machine.Machine.perf in
  Perf.diff before after

let pp_measurement fmt m =
  Format.fprintf fmt "%.2f ± %.2f cycles (n=%d, excluded=%d)" m.m_mean m.m_stddev
    m.m_samples m.m_excluded
