(* Kernel case study 1: spinlock lock elision (Sections 1 and 6.1,
   Figures 1 and 4 left).

   Four kernel builds, as in the paper:
   - [Mainline_smp]   the distribution kernel: CONFIG_SMP fixed at build
                      time, the lock is always taken;
   - [If_elision]     lock elision through a dynamic [if (config_smp)]
                      branch on every invocation (Figure 1.B);
   - [Multiverse]     the same code with [config_smp] and the spinlock
                      functions multiversed (Figure 1.C);
   - [Static_up]      CONFIG_SMP=n resolved statically; the acquisition
                      code does not exist and the operations are inlined
                      (Figure 1.A with the #ifdef branch removed).

   The benchmark measures spin_irq_lock() + spin_irq_unlock() per
   invocation, in unicore (config_smp=0) and multicore (config_smp=1)
   modes. *)

type kernel = Mainline_smp | If_elision | Multiverse | Static_up

let kernel_name = function
  | Mainline_smp -> "mainline SMP"
  | If_elision -> "lock elision [if]"
  | Multiverse -> "lock elision [multiverse]"
  | Static_up -> "static UP [ifdef]"

let all_kernels = [ Mainline_smp; If_elision; Multiverse; Static_up ]

(* The common benchmark scaffold.  [body] is the per-iteration payload. *)
let bench_scaffold body =
  Printf.sprintf
    {|
    void bench_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
        %s
      }
    }
    void empty_loop(int n) {
      for (int i = 0; i < n; i = i + 1) {
      }
    }
  |}
    body

(** Mini-C source of the kernel's locking layer for each build. *)
let source = function
  | Mainline_smp ->
      {|
    int lock_word;
    void spin_irq_lock() {
      __cli();
      while (__atomic_xchg(&lock_word, 1)) {
        __pause();
      }
    }
    void spin_irq_unlock() {
      lock_word = 0;
      __sti();
    }
  |}
      ^ bench_scaffold "spin_irq_lock(); spin_irq_unlock();"
  | If_elision ->
      {|
    int config_smp;
    int lock_word;
    void spin_irq_lock() {
      __cli();
      if (config_smp) {
        while (__atomic_xchg(&lock_word, 1)) {
          __pause();
        }
      }
    }
    void spin_irq_unlock() {
      if (config_smp) {
        lock_word = 0;
      }
      __sti();
    }
  |}
      ^ bench_scaffold "spin_irq_lock(); spin_irq_unlock();"
  | Multiverse ->
      {|
    multiverse int config_smp;
    int lock_word;
    multiverse void spin_irq_lock() {
      __cli();
      if (config_smp) {
        while (__atomic_xchg(&lock_word, 1)) {
          __pause();
        }
      }
    }
    multiverse void spin_irq_unlock() {
      if (config_smp) {
        lock_word = 0;
      }
      __sti();
    }
  |}
      ^ bench_scaffold "spin_irq_lock(); spin_irq_unlock();"
  | Static_up ->
      (* CONFIG_SMP=n: the compiler sees no lock at all, and the kernel
         inlines the tiny lock/unlock bodies (the paper's Figure 1.A) *)
      {|
    int lock_word;
  |}
      ^ bench_scaffold "__cli(); __sti();"

(** Measured mean cycles for lock+unlock in the given kernel and mode. *)
let measure ?(samples = 120) ?(calls = 100) (k : kernel) ~(smp : bool) :
    Harness.measurement =
  let s = Harness.session1 (source k) in
  (match k with
  | Mainline_smp | Static_up -> ()
  | If_elision -> Harness.set s "config_smp" (Bool.to_int smp)
  | Multiverse ->
      Harness.set s "config_smp" (Bool.to_int smp);
      ignore (Harness.commit s));
  Harness.measure ~samples ~calls s ~loop_fn:"bench_loop"

(* Figure 1's spin_irq_lock variants carry the [inline] keyword: case B is
   the dynamically-checked implementation *inlined* at the call site, unlike
   the out-of-line "lock elision [if]" kernel of Figure 4.  This source
   models the inlined form by expanding the bodies into the loop. *)
let if_elision_inline_source =
  {|
    int config_smp;
    int lock_word;
  |}
  ^ bench_scaffold
      {|__cli();
        if (config_smp) {
          while (__atomic_xchg(&lock_word, 1)) {
            __pause();
          }
        }
        if (config_smp) {
          lock_word = 0;
        }
        __sti();|}

(* Figure 1.A with CONFIG_SMP=y, inlined: the lock is unconditionally taken. *)
let static_smp_inline_source =
  {|
    int lock_word;
  |}
  ^ bench_scaffold
      {|__cli();
        while (__atomic_xchg(&lock_word, 1)) {
          __pause();
        }
        lock_word = 0;
        __sti();|}

let measure_inline_source ?(samples = 120) ?(calls = 100) ?(smp = false) source =
  let s = Harness.session1 source in
  (match Harness.get s "config_smp" with
  | (exception _) -> ()
  | _ -> Harness.set s "config_smp" (Bool.to_int smp));
  Harness.measure ~samples ~calls s ~loop_fn:"bench_loop"

let measure_if_inline ?(samples = 120) ?(calls = 100) ~smp () =
  measure_inline_source ~samples ~calls ~smp if_elision_inline_source

(** The Figure 1 table: static / dynamic / multiverse cycles for SMP=false
    and SMP=true. *)
let figure1 ?(samples = 120) () =
  let static_up = measure ~samples Static_up ~smp:false in
  (* with CONFIG_SMP=y the lock functions stay out of line even in a static
     build — "Linux kernel spinlocks are usually not inlined" (Section 6.1);
     in the UP build they degenerate to the inline irq_disable/enable *)
  let static_smp = measure ~samples Mainline_smp ~smp:true in
  let dyn_up = measure_if_inline ~samples ~smp:false () in
  let dyn_smp = measure_if_inline ~samples ~smp:true () in
  let mv_up = measure ~samples Multiverse ~smp:false in
  let mv_smp = measure ~samples Multiverse ~smp:true in
  [
    ("SMP=false", static_up, dyn_up, mv_up);
    ("SMP=true", static_smp, dyn_smp, mv_smp);
  ]

(** Sanity driver used by tests: lock/unlock must keep the lock word
    consistent and interrupts balanced. *)
let functional_source =
  source Multiverse
  ^ {|
    int stress(int n) {
      for (int i = 0; i < n; i = i + 1) {
        spin_irq_lock();
        if (lock_word != config_smp) {
          return -1;
        }
        spin_irq_unlock();
        if (lock_word != 0) {
          return -2;
        }
      }
      return 0;
    }
  |}

(* ------------------------------------------------------------------ *)
(* Contended critical sections across harts (the SMP workload)         *)
(* ------------------------------------------------------------------ *)

(** The multiverse kernel plus a shared counter driven through the lock.
    With [config_smp=1] committed the xchg spinlock serializes the
    increments (the counter is exact: harts x iterations); with
    [config_smp=0] on more than one hart the elided lock lets the
    non-atomic read-modify-write race and lose updates — the torn state
    the SMP tests use as a tamper indicator. *)
let contended_source =
  source Multiverse
  ^ {|
    int counter;
    void worker(int n) {
      for (int i = 0; i < n; i = i + 1) {
        spin_irq_lock();
        counter = counter + 1;
        spin_irq_unlock();
      }
    }
  |}

(** Run [worker iters] on every hart of a fresh [n_harts] session and
    return the session plus the final counter.  [commit_at] (scheduler
    steps into the run) injects a whole-image [Runtime.commit] mid-run —
    a rendezvous under real contention. *)
let run_contended ?(n_harts = 2) ?policy ?(seed = 1) ?commit_at ~smp ~iters ()
    : Harness.smp_session * int =
  let s = Harness.smp_session1 ~n_harts ?policy ~seed contended_source in
  Harness.smp_set s "config_smp" (Bool.to_int smp);
  ignore (Harness.smp_commit s);
  for h = 0 to n_harts - 1 do
    Harness.smp_start s ~hart:h "worker" [ iters ]
  done;
  (match commit_at with
  | None -> ()
  | Some k ->
      let steps = ref 0 in
      let more = ref true in
      while !more && !steps < k do
        more := Harness.smp_step s;
        incr steps
      done;
      (* the commit models a patch initiated on hart 0, so it must happen
         at a point where hart 0 is schedulable (interrupts enabled) — a
         rendezvous started while hart 0 holds the irq-protected lock
         could never gather the spinners' acks (the stop_machine deadlock
         real kernels avoid the same way) *)
      let m0 = Mv_vm.Smp.machine s.Harness.smp 0 in
      while !more && not m0.Mv_vm.Machine.irq_enabled do
        more := Harness.smp_step s;
        incr steps
      done;
      if !more then ignore (Harness.smp_commit s));
  Harness.smp_run s;
  (s, Harness.smp_get s "counter")
