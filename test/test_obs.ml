(* Observability tests: the trace ring (ordering, overflow, sequence
   numbers), the hook wiring end to end (commit spans, site events,
   exactly-once drain reporting under safe commit), the JSON exporters
   (parse-back of the Chrome trace and the metrics snapshot), the
   sampling profiler, the derived perf metrics, and the pay-for-use
   invariant: with no sink installed the simulated cycle counts are
   bit-for-bit identical. *)

open Util
module H = Mv_workloads.Harness
module Trace = Mv_obs.Trace
module Profile = Mv_obs.Profile
module Json = Mv_obs.Json
module Export = Mv_obs.Export
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf

let check_float = Alcotest.(check (float 1e-9))

let spin_src =
  {|
  multiverse int config_smp;
  int word;
  multiverse void spin_lock() {
    if (config_smp) { word = word + 1; }
  }
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) { spin_lock(); }
  }
|}

(* ------------------------------------------------------------------ *)
(* Ring semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_order_and_seq () =
  let clock = ref 0.0 in
  let ring = Trace.ring ~capacity:16 ~clock:(fun () -> !clock) () in
  for i = 1 to 5 do
    clock := float_of_int i;
    Trace.record ring (Trace.Fallback { fn = Printf.sprintf "f%d" i })
  done;
  let evs = Trace.events ring in
  check_int "all recorded" 5 (List.length evs);
  check_int "recorded counter" 5 (Trace.recorded ring);
  check_int "none dropped" 0 (Trace.dropped ring);
  List.iteri
    (fun i (st : Trace.stamped) ->
      check_int "seq is dense from 0" i st.Trace.seq;
      check_float "ts preserved" (float_of_int (i + 1)) st.Trace.ts;
      match st.Trace.ev with
      | Trace.Fallback { fn } -> check_string "oldest first" (Printf.sprintf "f%d" (i + 1)) fn
      | _ -> Alcotest.fail "unexpected event")
    evs

let test_ring_overflow_keeps_newest () =
  let ring = Trace.ring ~capacity:4 ~clock:(fun () -> 0.0) () in
  for i = 1 to 10 do
    Trace.record ring (Trace.Fallback { fn = string_of_int i })
  done;
  check_int "capacity bounds the window" 4 (List.length (Trace.events ring));
  check_int "recorded counts everything" 10 (Trace.recorded ring);
  check_int "overflow counted" 6 (Trace.dropped ring);
  let names =
    List.map
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with Trace.Fallback { fn } -> fn | _ -> "?")
      (Trace.events ring)
  in
  Alcotest.(check (list string)) "newest window survives" [ "7"; "8"; "9"; "10" ] names;
  (* seq numbers reveal the gap *)
  let first = List.hd (Trace.events ring) in
  check_int "first surviving seq" 6 first.Trace.seq

let test_ring_clear_keeps_seq_monotonic () =
  let ring = Trace.ring ~capacity:8 ~clock:(fun () -> 0.0) () in
  Trace.record ring (Trace.Fallback { fn = "a" });
  Trace.record ring (Trace.Fallback { fn = "b" });
  Trace.clear ring;
  check_int "cleared" 0 (List.length (Trace.events ring));
  check_int "recorded resets" 0 (Trace.recorded ring);
  Trace.record ring (Trace.Fallback { fn = "c" });
  let st = List.hd (Trace.events ring) in
  check_int "seq continues past the clear" 2 st.Trace.seq

(* ------------------------------------------------------------------ *)
(* Hook wiring: commit spans and site events                           *)
(* ------------------------------------------------------------------ *)

let names_of s = List.map (fun (st : Trace.stamped) -> Trace.event_name st.Trace.ev) s

let test_commit_span_and_site_events () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.set s "config_smp" 1;
  check_int "one function bound" 1 (H.commit s);
  let evs = H.trace_events s in
  let names = names_of evs in
  check_bool "has commit_begin" true (List.mem "commit_begin" names);
  check_bool "has commit_end" true (List.mem "commit_end" names);
  check_bool "has variant_selected" true (List.mem "variant_selected" names);
  check_bool "has site_retargeted or site_inlined" true
    (List.mem "site_retargeted" names || List.mem "site_inlined" names);
  check_bool "has prologue_patched" true (List.mem "prologue_patched" names);
  check_bool "has icache_flush" true (List.mem "icache_flush" names);
  (* the span brackets everything: begin is first, end is last *)
  check_string "span opens the log" "commit_begin" (List.hd names);
  check_string "span closes the log" "commit_end" (List.nth names (List.length names - 1));
  (* begin carries the switch values at decision time *)
  (match (List.hd evs).Trace.ev with
  | Trace.Commit_begin { op; switches; _ } ->
      check_string "op tag" "commit" op;
      check_int "switch value recorded" 1 (List.assoc "config_smp" switches)
  | _ -> Alcotest.fail "expected Commit_begin first");
  (* end carries the return value *)
  match (List.nth evs (List.length evs - 1)).Trace.ev with
  | Trace.Commit_end { op; bound; _ } ->
      check_string "matching op tag" "commit" op;
      check_int "bound count" 1 bound
  | _ -> Alcotest.fail "expected Commit_end last"

let test_fallback_event () =
  (* values(0,1) with the switch out of range: no variant matches *)
  let s =
    H.session1
      {|
      multiverse values(0,1) int m;
      int w;
      multiverse void f() { if (m) { w = 1; } }
      void d() { f(); }
    |}
  in
  H.enable_tracing s;
  H.set s "m" 7;
  ignore (H.commit s);
  check_bool "fallback reported" true (List.mem "fallback" (names_of (H.trace_events s)))

let test_revert_span () =
  let s = H.session1 spin_src in
  H.set s "config_smp" 0;
  ignore (H.commit s);
  H.enable_tracing s;
  ignore (H.revert s);
  let names = names_of (H.trace_events s) in
  check_string "revert span opens" "commit_begin" (List.hd names);
  match (List.hd (H.trace_events s)).Trace.ev with
  | Trace.Commit_begin { op; _ } -> check_string "op is revert" "revert" op
  | _ -> Alcotest.fail "expected Commit_begin"

(* ------------------------------------------------------------------ *)
(* Safe commit: defer + exactly-once drain reporting                   *)
(* ------------------------------------------------------------------ *)

let defer_src =
  {|
  multiverse bool m;
  int w;
  multiverse void f() { if (m) { w = w + 100; } }
  void spacer() { w = w + 1; }
  int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
|}

let park s fn =
  let img = s.H.program.Core.Compiler.p_image in
  let addr = Mv_link.Image.symbol img fn in
  let guard = ref 1_000_000 in
  while s.H.machine.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Machine.step s.H.machine)
  done;
  check_bool ("parked at " ^ fn) true (s.H.machine.Machine.pc = addr)

let test_safe_commit_defer_drain_exactly_once () =
  let s = H.session1 defer_src in
  H.enable_safe_commit s;
  H.enable_tracing s;
  H.set s "m" 1;
  Machine.start_call s.H.machine "driver" [];
  park s "f";
  check_int "live function deferred" 0 (H.commit_safe s);
  let names = names_of (H.trace_events s) in
  check_bool "safe_defer reported" true (List.mem "safe_defer" names);
  check_bool "not yet drained" false (List.mem "pending_drained" names);
  (* first f(): still generic, reads m=1, adds 100; the set drains at a
     quiescent safepoint after f returns; second f(): the m=1 variant *)
  check_int "driver result" 202 (Machine.finish s.H.machine);
  let names = names_of (H.trace_events s) in
  let count tag = List.length (List.filter (( = ) tag) names) in
  check_int "drained exactly once" 1 (count "pending_drained");
  check_bool "polls with a non-empty journal reported" true (count "safepoint_poll" >= 1);
  (match
     List.find_map
       (fun (st : Trace.stamped) ->
         match st.Trace.ev with
         | Trace.Pending_drained { actions; _ } -> Some actions
         | _ -> None)
       (H.trace_events s)
   with
  | Some actions -> check_int "one action in the set" 1 actions
  | None -> Alcotest.fail "no Pending_drained event");
  (* a second full run drains nothing further *)
  ignore (H.call s "driver" []);
  check_int "still exactly once" 1
    (List.length
       (List.filter (( = ) "pending_drained") (names_of (H.trace_events s))))

let test_safe_deny_event () =
  let s = H.session1 defer_src in
  H.enable_safe_commit s;
  H.enable_tracing s;
  H.set s "m" 1;
  Machine.start_call s.H.machine "driver" [];
  park s "f";
  check_int "denied" 0 (H.commit_safe ~policy:Runtime.Deny s);
  check_bool "safe_deny reported" true
    (List.mem "safe_deny" (names_of (H.trace_events s)));
  ignore (Machine.finish s.H.machine)

(* ------------------------------------------------------------------ *)
(* Exporters: parse-back                                               *)
(* ------------------------------------------------------------------ *)

let parse_ok what str =
  match Json.parse str with
  | Ok j -> j
  | Error msg -> Alcotest.failf "%s does not parse: %s" what msg

let test_chrome_trace_parses_back () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 5 ]);
  let doc = parse_ok "chrome trace" (H.trace_dump s) in
  match doc with
  | Json.List entries ->
      let phases =
        List.filter_map
          (fun e -> match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
          entries
      in
      check_int "every entry has a phase" (List.length entries) (List.length phases);
      let count p = List.length (List.filter (( = ) p) phases) in
      (* a single-hart stream announces exactly one lane *)
      check_int "one thread_name metadata entry" 1 (count "M");
      check_int "one entry per event plus lane metadata"
        (List.length (H.trace_events s) + count "M")
        (List.length entries);
      check_int "balanced B/E spans" (count "B") (count "E");
      check_bool "at least one span" true (count "B" >= 1);
      List.iter
        (fun e ->
          match (Json.member "name" e, Json.member "ts" e) with
          | Some (Json.String _), Some (Json.Int _ | Json.Float _) -> ()
          | _ -> Alcotest.fail "entry lacks name/ts")
        entries
  | _ -> Alcotest.fail "chrome trace must be a JSON array"

let test_metrics_json_parses_back () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.enable_profiling s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 50 ]);
  let doc = parse_ok "metrics" (Json.to_string_pretty (H.metrics_json s)) in
  (match Json.member "schema" doc with
  | Some (Json.String v) -> check_string "schema tag" "mv-metrics/1" v
  | _ -> Alcotest.fail "missing schema");
  List.iter
    (fun key ->
      match Json.member key doc with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.failf "missing %s section" key)
    [ "runtime"; "perf"; "program"; "trace" ];
  (match Json.member "profile" doc with
  | Some (Json.List _) -> ()
  | _ -> Alcotest.fail "missing profile section");
  (* a couple of load-bearing leaves *)
  (match Option.bind (Json.member "perf" doc) (Json.member "instructions") with
  | Some (Json.Int n) -> check_bool "instructions counted" true (n > 0)
  | _ -> Alcotest.fail "perf.instructions missing");
  match Option.bind (Json.member "runtime" doc) (Json.member "patches") with
  | Some (Json.Int n) -> check_bool "patches counted" true (n > 0)
  | _ -> Alcotest.fail "runtime.patches missing"

let test_chrome_trace_deep_nesting_parses_back () =
  (* deeply nested same-op spans must still produce balanced, parseable
     B/E pairs — the pairing logic has no depth assumptions *)
  let clock = ref 0.0 in
  let ring = Trace.ring ~capacity:64 ~clock:(fun () -> !clock) () in
  let depth = 8 in
  for i = 1 to depth do
    clock := float_of_int i;
    Trace.record ring (Trace.Commit_begin { cid = 0; op = "commit"; switches = [] })
  done;
  for i = 1 to depth do
    clock := float_of_int (depth + i);
    Trace.record ring (Trace.Commit_end { cid = 0; op = "commit"; bound = i })
  done;
  let doc = parse_ok "nested chrome trace" (Export.chrome_trace_string (Trace.events ring)) in
  match doc with
  | Json.List entries ->
      let phase e =
        match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?"
      in
      let count p = List.length (List.filter (fun e -> phase e = p) entries) in
      check_int "one entry per event plus lane metadata"
        ((2 * depth) + count "M")
        (List.length entries);
      check_int "depth B entries" depth (count "B");
      check_int "balanced E entries" depth (count "E")
  | _ -> Alcotest.fail "chrome trace must be a JSON array"

let test_json_roundtrip_and_escapes () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te\x01f");
        ("l", Json.List [ Json.Int (-3); Json.Float 1.5; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty_l", Json.List []); ("empty_o", Json.Obj []) ]);
      ]
  in
  check_bool "compact roundtrip" true (Json.parse (Json.to_string doc) = Ok doc);
  check_bool "pretty roundtrip" true (Json.parse (Json.to_string_pretty doc) = Ok doc);
  check_bool "non-finite floats become null" true
    (Json.to_string (Json.Float nan) = "null" && Json.to_string (Json.Float infinity) = "null")

let test_json_nonfinite_total_roundtrip () =
  (* emission is total: any tree containing non-finite floats serializes
     (non-finite leaves degrade to null) and the output parses back to
     the same tree with those leaves replaced by Null — at any depth *)
  let doc =
    Json.Obj
      [
        ("nan", Json.Float nan);
        ("inf", Json.Float infinity);
        ("ninf", Json.Float neg_infinity);
        ("fine", Json.Float 2.5);
        ( "nested",
          Json.List
            [ Json.Obj [ ("deep", Json.List [ Json.Float nan; Json.Int 7 ]) ] ] );
      ]
  in
  let expected =
    Json.Obj
      [
        ("nan", Json.Null);
        ("inf", Json.Null);
        ("ninf", Json.Null);
        ("fine", Json.Float 2.5);
        ("nested", Json.List [ Json.Obj [ ("deep", Json.List [ Json.Null; Json.Int 7 ]) ] ]);
      ]
  in
  check_bool "compact emission parses back with nulls" true
    (Json.parse (Json.to_string doc) = Ok expected);
  check_bool "pretty emission parses back with nulls" true
    (Json.parse (Json.to_string_pretty doc) = Ok expected)

(* ------------------------------------------------------------------ *)
(* Pay-for-use: identical cycles with and without sinks                *)
(* ------------------------------------------------------------------ *)

let test_zero_overhead_without_and_with_sinks () =
  let run ~instrument =
    let s = H.session1 spin_src in
    H.set s "config_smp" 1;
    ignore (H.commit s);
    if instrument then begin
      H.enable_tracing s;
      H.enable_profiling s;
      H.enable_stack_profiling s;
      H.enable_metrics s
    end;
    ignore (H.call s "bench_loop" [ 200 ]);
    s.H.machine.Machine.perf.Perf.cycles
  in
  (* the tracer and sampler are host-side observers: the simulated clock
     must not move by even one cycle when they are armed *)
  check_float "bit-identical cycle counts" (run ~instrument:false) (run ~instrument:true)

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_profiler_attributes_variants () =
  let s = H.session1 spin_src in
  H.set s "config_smp" 1;
  ignore (H.commit s);
  H.enable_profiling ~interval:1 s;
  ignore (H.call s "bench_loop" [ 100 ]);
  let rows = H.profile_report s in
  check_bool "rows reported" true (rows <> []);
  let shares = List.fold_left (fun acc r -> acc +. r.Profile.r_share) 0.0 rows in
  check_bool "shares sum to 1" true (abs_float (shares -. 1.0) < 1e-6);
  check_bool "hottest first" true
    (rows = List.sort (fun a b -> compare b.Profile.r_cycles a.Profile.r_cycles) rows);
  (* config_smp=1 keeps the generic body (the variant is the atomic path
     installed over the call sites or behind the prologue): either way the
     loop body shows up, and some row must be variant-classified code when
     the prologue jump routes through a variant symbol *)
  check_bool "bench loop attributed" true
    (List.exists (fun r -> r.Profile.r_name = "bench_loop") rows)

let test_profiler_interval_thins_samples () =
  let samples_at interval =
    let s = H.session1 spin_src in
    H.enable_profiling ~interval s;
    ignore (H.call s "bench_loop" [ 100 ]);
    match s.H.profile with Some p -> Profile.samples p | None -> 0
  in
  let dense = samples_at 1 in
  let sparse = samples_at 50 in
  check_bool "denser interval, more samples" true (dense > sparse);
  check_bool "sparse still samples" true (sparse > 0)

let test_profile_empty_report () =
  (* zero samples: no rows, no NaN, and pp renders without raising *)
  let p = Profile.create ~resolve:(fun _ -> None) ~now:(fun () -> 0.0) () in
  check_int "no samples" 0 (Profile.samples p);
  check_bool "empty report" true (Profile.report p = []);
  let rendered = Format.asprintf "%a" (fun fmt -> Profile.pp fmt) p in
  check_bool "pp total" true (String.length rendered > 0);
  check_bool "no NaN in rendering" false
    (let lower = String.lowercase_ascii rendered in
     let needle = "nan" in
     let n = String.length lower and m = String.length needle in
     let rec scan i = i + m <= n && (String.sub lower i m = needle || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Stack profiler                                                      *)
(* ------------------------------------------------------------------ *)

module Stackprof = Mv_obs.Stackprof

let nested_src =
  {|
  int w;
  void leaf(int n) {
    for (int i = 0; i < n; i = i + 1) { w = w + 1; }
  }
  void mid(int n) { leaf(n); }
  void outer(int n) { mid(n); }
  int top(int n) { outer(n); return w; }
|}

let test_stackprof_records_nested_stacks () =
  let s = H.session1 nested_src in
  H.enable_stack_profiling ~interval:1 s;
  ignore (H.call s "top" [ 50 ]);
  let rows = H.stack_report s in
  check_bool "rows reported" true (rows <> []);
  check_bool "hottest first" true
    (rows = List.sort (fun a b -> compare b.Stackprof.s_cycles a.Stackprof.s_cycles) rows);
  let shares = List.fold_left (fun acc r -> acc +. r.Stackprof.s_share) 0.0 rows in
  check_bool "shares sum to 1" true (abs_float (shares -. 1.0) < 1e-6);
  (* the loop body's samples carry the full ancestry, outermost first *)
  check_bool "full call chain recorded" true
    (List.exists
       (fun r -> r.Stackprof.s_stack = [ "top"; "outer"; "mid"; "leaf" ])
       rows)

let test_stackprof_folded_line_format () =
  let s = H.session1 nested_src in
  H.enable_stack_profiling ~interval:1 s;
  ignore (H.call s "top" [ 50 ]);
  let folded = H.folded_dump s in
  check_bool "non-empty dump" true (String.length folded > 0);
  check_bool "newline-terminated" true (folded.[String.length folded - 1] = '\n');
  let lines = String.split_on_char '\n' (String.sub folded 0 (String.length folded - 1)) in
  check_bool "sorted lines" true (lines = List.sort compare lines);
  List.iter
    (fun line ->
      (* every line is `frame;frame;... count`: a positive decimal count
         after the last space, and non-empty ;-separated frames before it *)
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no count separator in %S" line
      | Some i ->
          let stack = String.sub line 0 i in
          let count = String.sub line (i + 1) (String.length line - i - 1) in
          (match int_of_string_opt count with
          | Some n -> check_bool ("positive count in " ^ line) true (n > 0)
          | None -> Alcotest.failf "count is not an integer in %S" line);
          check_bool ("no spaces in frames of " ^ line) false (String.contains stack ' ');
          List.iter
            (fun frame ->
              check_bool ("non-empty frame in " ^ line) true (frame <> ""))
            (String.split_on_char ';' stack))
    lines

let test_stackprof_distinguishes_variant_frames () =
  let s = H.session1 spin_src in
  H.set s "config_smp" 1;
  ignore (H.commit s);
  H.enable_stack_profiling ~interval:1 s;
  ignore (H.call s "bench_loop" [ 100 ]);
  let rows = H.stack_report s in
  (* the committed spin_lock body runs as its variant symbol, visible as
     a distinct frame under bench_loop and classified as variant *)
  check_bool "variant frame present" true
    (List.exists
       (fun r ->
         r.Stackprof.s_variant
         && List.exists
              (fun f -> f = "spin_lock.config_smp=1")
              r.Stackprof.s_stack)
       rows);
  check_bool "generic frames not classified as variant" true
    (List.exists (fun r -> not r.Stackprof.s_variant) rows);
  match s.H.stackprof with
  | Some sp ->
      let share = Stackprof.variant_share sp in
      check_bool "variant share in (0,1]" true (share > 0.0 && share <= 1.0);
      check_bool "folded dump names the variant" true
        (let folded = Stackprof.folded sp in
         let needle = "spin_lock.config_smp=1" in
         let n = String.length folded and m = String.length needle in
         let rec scan i = i + m <= n && (String.sub folded i m = needle || scan (i + 1)) in
         scan 0)
  | None -> Alcotest.fail "stack profiler not armed"

let test_stackprof_empty_report () =
  let sp =
    Stackprof.create
      ~resolve:(fun _ -> None)
      ~frames:(fun () -> [])
      ~now:(fun () -> 0.0)
      ()
  in
  check_int "no samples" 0 (Stackprof.samples sp);
  check_bool "empty report" true (Stackprof.report sp = []);
  check_string "empty folded dump" "" (Stackprof.folded sp);
  check_float "zero variant share, not NaN" 0.0 (Stackprof.variant_share sp)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

module Metrics = Mv_obs.Metrics

let test_metrics_registry_primitives () =
  let m = Metrics.create () in
  Metrics.inc m "c" [ ("a", "1"); ("b", "2") ];
  Metrics.inc ~by:4 m "c" [ ("b", "2"); ("a", "1") ];
  check_int "labels canonicalized" 5 (Metrics.counter_value m "c" [ ("b", "2"); ("a", "1") ]);
  check_int "distinct labels, distinct series" 0 (Metrics.counter_value m "c" [ ("a", "9") ]);
  Metrics.set_gauge m "g" [] 2.5;
  check_bool "gauge readable" true (Metrics.gauge_value m "g" [] = Some 2.5);
  Metrics.observe m "h" [] 10.0;
  Metrics.observe m "h" [] 30.0;
  (match Metrics.histogram_summary m "h" [] with
  | Some hs ->
      check_int "histogram count" 2 hs.Metrics.hs_count;
      check_float "histogram sum" 40.0 hs.Metrics.hs_sum;
      check_float "histogram mean" 20.0 hs.Metrics.hs_mean
  | None -> Alcotest.fail "histogram absent");
  (* one name, one kind *)
  check_bool "kind mismatch rejected" true
    (try
       Metrics.set_gauge m "c" [ ("a", "1"); ("b", "2") ] 0.0;
       false
     with Invalid_argument _ -> true);
  (* the export parses back with the schema tag *)
  match parse_ok "registry json" (Json.to_string_pretty (Metrics.to_json m)) with
  | Json.Obj _ as doc -> (
      match Json.member "schema" doc with
      | Some (Json.String v) -> check_string "registry schema" "mv-metrics-registry/1" v
      | _ -> Alcotest.fail "missing registry schema")
  | _ -> Alcotest.fail "registry export must be an object"

let test_metrics_trace_bridge_counts_commit () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.enable_metrics s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 20 ]);
  match H.metrics s with
  | None -> Alcotest.fail "metrics not armed"
  | Some m ->
      check_int "one commit" 1 (Metrics.counter_value m "mv_commits_total" [ ("op", "commit") ]);
      check_int "committed switch value recorded" 1
        (Metrics.counter_value m "mv_commit_switch_total"
           [ ("op", "commit"); ("switch", "config_smp"); ("value", "1") ]);
      check_int "variant install counted" 1
        (Metrics.counter_value m "mv_variant_installs_total"
           [ ("fn", "spin_lock"); ("variant", "spin_lock.config_smp=1") ]);
      check_bool "patch events counted" true
        (Metrics.counter_value m "mv_patches_total" [ ("kind", "site_retargeted") ]
         + Metrics.counter_value m "mv_patches_total" [ ("kind", "site_inlined") ]
         + Metrics.counter_value m "mv_patches_total" [ ("kind", "prologue_patched") ]
         > 0);
      (match Metrics.histogram_summary m "mv_patch_latency_cycles" [ ("op", "commit"); ("hart", "0") ] with
      | Some hs -> check_int "one commit latency observation" 1 hs.Metrics.hs_count
      | None -> Alcotest.fail "patch-latency histogram absent");
      (* the registry appears in the unified metrics snapshot *)
      let doc = parse_ok "snapshot" (Json.to_string_pretty (H.metrics_json s)) in
      (match Json.member "metrics" doc with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "snapshot lacks the registry section");
      (* ... with the runtime counters bridged as gauges *)
      check_bool "runtime counters bridged" true
        (Metrics.gauge_value m "mv_runtime_patches" [] <> None)

let test_metrics_safe_commit_outcomes () =
  let s = H.session1 defer_src in
  H.enable_safe_commit s;
  H.enable_tracing s;
  H.enable_metrics s;
  H.set s "m" 1;
  Machine.start_call s.H.machine "driver" [];
  park s "f";
  ignore (H.commit_safe s);
  ignore (Machine.finish s.H.machine);
  match H.metrics s with
  | None -> Alcotest.fail "metrics not armed"
  | Some m ->
      check_int "defer counted" 1
        (Metrics.counter_value m "mv_safe_total" [ ("outcome", "deferred") ]);
      check_int "drain counted" 1
        (Metrics.counter_value m "mv_safe_total" [ ("outcome", "drained") ]);
      (match Metrics.histogram_summary m "mv_safe_drain_latency_cycles" [ ("hart", "0") ] with
      | Some hs ->
          check_int "one drain latency observation" 1 hs.Metrics.hs_count;
          check_bool "cycles elapsed between defer and drain" true (hs.Metrics.hs_min > 0.0)
      | None -> Alcotest.fail "drain-latency histogram absent");
      check_bool "safepoint polls counted" true
        (Metrics.counter_value m "mv_safepoint_polls_total" [] >= 1)

(* ------------------------------------------------------------------ *)
(* Analyze: spans and the bench diff                                   *)
(* ------------------------------------------------------------------ *)

module Analyze = Mv_obs.Analyze

let test_analyze_span_stats () =
  let clock = ref 0.0 in
  let ring = Trace.ring ~capacity:64 ~clock:(fun () -> !clock) () in
  let span op t0 t1 =
    clock := t0;
    Trace.record ring (Trace.Commit_begin { cid = 0; op; switches = [] });
    clock := t1;
    Trace.record ring (Trace.Commit_end { cid = 0; op; bound = 0 })
  in
  span "commit" 0.0 10.0;
  span "commit" 20.0 50.0;
  span "revert" 60.0 64.0;
  (* an unmatched begin is dropped, not paired across ops *)
  clock := 70.0;
  Trace.record ring (Trace.Commit_begin { cid = 0; op = "commit"; switches = [] });
  let evs = Trace.events ring in
  let spans = Analyze.spans evs in
  check_int "three completed spans" 3 (List.length spans);
  match Analyze.span_stats evs with
  | [ ("commit", c); ("revert", r) ] ->
      check_int "two commit spans" 2 c.Analyze.d_count;
      check_float "commit mean" 20.0 c.Analyze.d_mean;
      check_float "commit min" 10.0 c.Analyze.d_min;
      check_float "commit max" 30.0 c.Analyze.d_max;
      check_int "one revert span" 1 r.Analyze.d_count;
      check_float "revert mean" 4.0 r.Analyze.d_mean
  | other -> Alcotest.failf "unexpected stats shape (%d ops)" (List.length other)

let bench_doc ?(label = "r") mean =
  Json.Obj
    [
      ("schema", Json.String "mv-bench-rows/1");
      ("fast", Json.Bool true);
      ( "experiments",
        Json.Obj
          [
            ( "e1",
              Json.List
                [
                  Json.Obj
                    [
                      ("label", Json.String label);
                      ( "cycles",
                        Json.Obj
                          [ ("mean", Json.Float mean); ("stddev", Json.Float 0.5) ] );
                      ("scalar", Json.Float 3.0);
                      ("commit_ms", Json.Float 99.0);
                    ];
                ] );
          ] );
    ]

let test_bench_diff_unchanged_tree_is_clean () =
  match Analyze.bench_diff ~base:(bench_doc 10.0) ~fresh:(bench_doc 10.0) () with
  | Error m -> Alcotest.failf "diff failed: %s" m
  | Ok deltas ->
      (* cycles.mean and scalar compared; commit_ms skipped by default *)
      check_int "two leaves compared" 2 (List.length deltas);
      check_bool "wall-clock fields skipped" false
        (List.exists (fun d -> d.Analyze.dl_field = "commit_ms") deltas);
      check_bool "no drift on an identical tree" true
        (List.for_all (fun d -> d.Analyze.dl_pct = 0.0) deltas);
      check_int "gate passes" 0 (List.length (Analyze.regressions ~threshold:5.0 deltas))

let test_bench_diff_catches_synthetic_regression () =
  match Analyze.bench_diff ~base:(bench_doc 10.0) ~fresh:(bench_doc 11.0) () with
  | Error m -> Alcotest.failf "diff failed: %s" m
  | Ok deltas -> (
      match Analyze.regressions ~threshold:5.0 deltas with
      | [ d ] ->
          check_string "experiment" "e1" d.Analyze.dl_exp;
          check_string "row" "r" d.Analyze.dl_label;
          check_string "field" "cycles.mean" d.Analyze.dl_field;
          check_bool "ten percent up" true (abs_float (d.Analyze.dl_pct -. 10.0) < 1e-9);
          (* a generous threshold lets it through; an improvement of the
             same size also trips the gate (stale-baseline detection) *)
          check_int "threshold above the drift passes" 0
            (List.length (Analyze.regressions ~threshold:15.0 deltas));
          (match Analyze.bench_diff ~base:(bench_doc 11.0) ~fresh:(bench_doc 10.0) () with
          | Ok d2 ->
              check_int "improvements gate too" 1
                (List.length (Analyze.regressions ~threshold:5.0 d2))
          | Error m -> Alcotest.failf "reverse diff failed: %s" m)
      | other -> Alcotest.failf "expected exactly one regression, got %d" (List.length other))

let test_bench_diff_rejects_foreign_schema () =
  let bogus = Json.Obj [ ("schema", Json.String "something-else/9") ] in
  check_bool "foreign schema rejected" true
    (match Analyze.bench_diff ~base:bogus ~fresh:(bench_doc 1.0) () with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Derived perf metrics and measurement percentiles                    *)
(* ------------------------------------------------------------------ *)

let zero_snapshot =
  {
    Perf.s_cycles = 0.0;
    s_instructions = 0;
    s_branches = 0;
    s_branch_mispredicts = 0;
    s_calls = 0;
    s_indirect_calls = 0;
    s_btb_misses = 0;
    s_loads = 0;
    s_stores = 0;
    s_atomics = 0;
    s_hypercalls = 0;
    s_icache_flushes = 0;
  }

let test_perf_derived_metrics () =
  let s =
    { zero_snapshot with Perf.s_cycles = 100.0; s_instructions = 250; s_branches = 40;
      s_branch_mispredicts = 10; s_calls = 4 }
  in
  check_float "ipc" 2.5 (Perf.ipc s);
  check_float "mispredict rate" 0.25 (Perf.mispredict_rate s);
  check_float "cycles per call" 25.0 (Perf.cycles_per_call s);
  (* zero denominators stay finite *)
  check_float "ipc of empty delta" 0.0 (Perf.ipc zero_snapshot);
  check_float "rate of empty delta" 0.0 (Perf.mispredict_rate zero_snapshot);
  check_float "cpc of empty delta" 0.0 (Perf.cycles_per_call zero_snapshot)

let test_percentiles_and_measurement_fields () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p0 is the min" 1.0 (H.percentile values 0.0);
  check_float "p100 is the max" 100.0 (H.percentile values 1.0);
  check_float "median of 1..100" 50.0 (H.percentile values 0.5);
  check_float "p95 of 1..100" 95.0 (H.percentile values 0.95);
  check_float "empty list" 0.0 (H.percentile [] 0.5);
  let s = H.session1 spin_src in
  H.set s "config_smp" 0;
  ignore (H.commit s);
  let m = H.measure ~samples:50 s ~loop_fn:"bench_loop" in
  check_bool "min <= p50" true (m.H.m_min <= m.H.m_p50);
  check_bool "p50 <= p95" true (m.H.m_p50 <= m.H.m_p95);
  check_bool "p95 <= max" true (m.H.m_p95 <= m.H.m_max);
  check_bool "mean within range" true (m.H.m_min <= m.H.m_mean && m.H.m_mean <= m.H.m_max);
  (* the measurement exports every field *)
  let j = H.measurement_json m in
  List.iter
    (fun k ->
      match Json.member k j with
      | Some (Json.Float _ | Json.Int _) -> ()
      | _ -> Alcotest.failf "measurement_json lacks %s" k)
    [ "mean"; "stddev"; "min"; "max"; "p50"; "p95"; "samples"; "excluded" ]

(* ------------------------------------------------------------------ *)
(* Metrics edge cases                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_label_canonicalization () =
  let m = Metrics.create () in
  (* Reordered labels address the same series. *)
  Metrics.inc m "req" [ ("a", "1"); ("b", "2") ];
  Metrics.inc m "req" [ ("b", "2"); ("a", "1") ];
  check_int "reordered labels coincide" 2
    (Metrics.counter_value m "req" [ ("b", "2"); ("a", "1") ]);
  (* Canonicalization sorts but does not deduplicate: a duplicated
     label pair is a distinct series from the single pair. *)
  Metrics.inc m "dup" [ ("a", "1"); ("a", "1") ];
  check_int "duplicated pair is its own series" 0
    (Metrics.counter_value m "dup" [ ("a", "1") ]);
  check_int "duplicated pair readable under itself" 1
    (Metrics.counter_value m "dup" [ ("a", "1"); ("a", "1") ]);
  (* Same key with two values: order still does not matter. *)
  Metrics.inc m "multi" [ ("a", "1"); ("a", "2") ];
  Metrics.inc m "multi" [ ("a", "2"); ("a", "1") ];
  check_int "reordered duplicate keys coincide" 2
    (Metrics.counter_value m "multi" [ ("a", "1"); ("a", "2") ])

let test_metrics_histogram_bucket_boundaries () =
  let m = Metrics.create () in
  let bounds = [| 1.0; 2.0; 5.0 |] in
  List.iter (Metrics.observe ~bounds m "lat" []) [ 1.0; 2.0; 5.0; 6.0 ];
  (match Metrics.histogram_summary m "lat" [] with
  | Some hs ->
      check_int "all four observed" 4 hs.Metrics.hs_count;
      check_float "min" 1.0 hs.Metrics.hs_min;
      check_float "max" 6.0 hs.Metrics.hs_max
  | None -> Alcotest.fail "histogram missing");
  (* A value exactly on a bucket bound lands in that bucket (inclusive
     upper edge), and anything past the last bound in the overflow
     bucket.  Read the per-bucket counts back through the export. *)
  let doc = parse_ok "registry" (Json.to_string_pretty (Metrics.to_json m)) in
  let counts =
    match Json.member "series" doc with
    | Some (Json.List series) ->
        List.filter_map
          (fun s ->
            match (Json.member "name" s, Json.member "counts" s) with
            | Some (Json.String "lat"), Some (Json.List cs) ->
                Some
                  (List.map
                     (function Json.Int n -> n | _ -> Alcotest.fail "count not int")
                     cs)
            | _ -> None)
          series
    | _ -> Alcotest.fail "no series"
  in
  (match counts with
  | [ cs ] ->
      check_int "one count per bound plus overflow" 4 (List.length cs);
      List.iteri (fun i c -> check_int (Printf.sprintf "bucket %d" i) 1 c) cs
  | _ -> Alcotest.fail "expected exactly one lat histogram")

let test_metrics_empty_registry_export_stable () =
  let a = Json.to_string (Metrics.to_json (Metrics.create ())) in
  let b = Json.to_string (Metrics.to_json (Metrics.create ())) in
  check_string "fresh registries export identically" a b;
  let doc = parse_ok "empty registry" a in
  check_bool "schema tagged" true
    (Json.member "schema" doc = Some (Json.String "mv-metrics-registry/1"));
  check_bool "series empty" true (Json.member "series" doc = Some (Json.List []))

(* ------------------------------------------------------------------ *)
(* Flight-recorder dump robustness                                     *)
(* ------------------------------------------------------------------ *)

module Flight = Mv_obs.Flight

let flight_fixture () =
  let t = ref 0.0 in
  let f = Flight.create ~capacity:32 ~clock:(fun () -> t := !t +. 1.0; !t) () in
  List.iter (Flight.record f)
    [
      Trace.Commit_begin { cid = 1; op = "commit"; switches = [ ("config_smp", 1) ] };
      Trace.Variant_selected { fn = "spin_lock"; variant = "spin_lock.config_smp=1" };
      Trace.Commit_end { cid = 1; op = "commit"; bound = 1 };
      Trace.Fallback { fn = "other" };
      Trace.Safepoint_poll { pending = 2 };
    ];
  f

let test_flight_dump_truncation_is_clean () =
  let f = flight_fixture () in
  let s = Flight.dump_string f ~reason:"unit-test" () in
  let whole = List.length (Flight.events_of_dump (parse_ok "whole dump" s)) in
  check_int "fixture events decode" 5 whole;
  (* Every proper prefix either fails to parse with a clean [Error] or
     parses to a document whose events decode without raising. *)
  for len = 0 to String.length s - 1 do
    match Json.parse (String.sub s 0 len) with
    | Error _ -> ()
    | Ok doc ->
        let n = List.length (Flight.events_of_dump doc) in
        check_bool "prefix decodes at most the whole window" true (n <= whole)
  done

let test_flight_dump_bitflips_never_raise () =
  let f = flight_fixture () in
  let s = Flight.dump_string f ~reason:"unit-test" () in
  let b = Bytes.of_string s in
  for i = 0 to Bytes.length b - 1 do
    let orig = Bytes.get b i in
    Bytes.set b i (Char.chr (Char.code orig lxor 0x04));
    (match Json.parse (Bytes.to_string b) with
    | Error _ -> ()
    | Ok doc -> ignore (Flight.events_of_dump doc : Trace.stamped list));
    Bytes.set b i orig
  done

let test_flight_dump_corrupt_entry_skipped () =
  let f = flight_fixture () in
  let doc = Flight.dump f ~reason:"unit-test" () in
  let n = List.length (Flight.events_of_dump doc) in
  (* Corrupt the first event's name: that entry is skipped, the rest of
     the window still decodes. *)
  let corrupted =
    match doc with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | ("events", Json.List (e :: rest)) ->
                   let e' =
                     match e with
                     | Json.Obj fs ->
                         Json.Obj
                           (List.map
                              (function
                                | ("name", _) -> ("name", Json.String "no_such_event")
                                | kv -> kv)
                              fs)
                     | other -> other
                   in
                   ("events", Json.List (e' :: rest))
               | kv -> kv)
             fields)
    | other -> other
  in
  check_int "corrupt entry skipped, remainder decodes" (n - 1)
    (List.length (Flight.events_of_dump corrupted));
  (* A dump with no events member at all decodes to the empty list. *)
  check_int "missing events member" 0
    (List.length (Flight.events_of_dump (Json.Obj [ ("schema", Json.String "x") ])))

let suite =
  [
    tc "ring preserves order and seq" test_ring_order_and_seq;
    tc "ring overflow keeps the newest window" test_ring_overflow_keeps_newest;
    tc "ring clear keeps seq monotonic" test_ring_clear_keeps_seq_monotonic;
    tc "commit emits a span with site events" test_commit_span_and_site_events;
    tc "fallback reported" test_fallback_event;
    tc "revert emits a revert span" test_revert_span;
    tc "safe commit: defer then drain exactly once"
      test_safe_commit_defer_drain_exactly_once;
    tc "safe deny reported" test_safe_deny_event;
    tc "chrome trace parses back" test_chrome_trace_parses_back;
    tc "deeply nested spans parse back" test_chrome_trace_deep_nesting_parses_back;
    tc "metrics snapshot parses back" test_metrics_json_parses_back;
    tc "json roundtrip and escapes" test_json_roundtrip_and_escapes;
    tc "json non-finite emission is total" test_json_nonfinite_total_roundtrip;
    tc "no sink, no cycles: pay-for-use" test_zero_overhead_without_and_with_sinks;
    tc "profiler attributes symbols" test_profiler_attributes_variants;
    tc "profiler interval thins samples" test_profiler_interval_thins_samples;
    tc "profiler empty report has no NaN" test_profile_empty_report;
    tc "stack profiler records nested stacks" test_stackprof_records_nested_stacks;
    tc "folded dump follows the line format" test_stackprof_folded_line_format;
    tc "stack profiler distinguishes variant frames"
      test_stackprof_distinguishes_variant_frames;
    tc "stack profiler empty report" test_stackprof_empty_report;
    tc "metrics registry primitives" test_metrics_registry_primitives;
    tc "trace bridge counts commits and patches" test_metrics_trace_bridge_counts_commit;
    tc "safe-commit outcomes and drain latency" test_metrics_safe_commit_outcomes;
    tc "span extraction and statistics" test_analyze_span_stats;
    tc "bench diff: unchanged tree is clean" test_bench_diff_unchanged_tree_is_clean;
    tc "bench diff: synthetic +10% trips the gate"
      test_bench_diff_catches_synthetic_regression;
    tc "bench diff: foreign schema rejected" test_bench_diff_rejects_foreign_schema;
    tc "derived perf metrics" test_perf_derived_metrics;
    tc "percentiles and measurement fields" test_percentiles_and_measurement_fields;
    tc "label canonicalization sorts without deduping"
      test_metrics_label_canonicalization;
    tc "histogram bucket boundaries are inclusive"
      test_metrics_histogram_bucket_boundaries;
    tc "empty registry export is stable" test_metrics_empty_registry_export_stable;
    tc "flight dump truncation is clean" test_flight_dump_truncation_is_clean;
    tc "flight dump bit flips never raise" test_flight_dump_bitflips_never_raise;
    tc "flight dump corrupt entry skipped" test_flight_dump_corrupt_entry_skipped;
  ]
