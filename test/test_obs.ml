(* Observability tests: the trace ring (ordering, overflow, sequence
   numbers), the hook wiring end to end (commit spans, site events,
   exactly-once drain reporting under safe commit), the JSON exporters
   (parse-back of the Chrome trace and the metrics snapshot), the
   sampling profiler, the derived perf metrics, and the pay-for-use
   invariant: with no sink installed the simulated cycle counts are
   bit-for-bit identical. *)

open Util
module H = Mv_workloads.Harness
module Trace = Mv_obs.Trace
module Profile = Mv_obs.Profile
module Json = Mv_obs.Json
module Export = Mv_obs.Export
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf

let check_float = Alcotest.(check (float 1e-9))

let spin_src =
  {|
  multiverse int config_smp;
  int word;
  multiverse void spin_lock() {
    if (config_smp) { word = word + 1; }
  }
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) { spin_lock(); }
  }
|}

(* ------------------------------------------------------------------ *)
(* Ring semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_order_and_seq () =
  let clock = ref 0.0 in
  let ring = Trace.ring ~capacity:16 ~clock:(fun () -> !clock) () in
  for i = 1 to 5 do
    clock := float_of_int i;
    Trace.record ring (Trace.Fallback { fn = Printf.sprintf "f%d" i })
  done;
  let evs = Trace.events ring in
  check_int "all recorded" 5 (List.length evs);
  check_int "recorded counter" 5 (Trace.recorded ring);
  check_int "none dropped" 0 (Trace.dropped ring);
  List.iteri
    (fun i (st : Trace.stamped) ->
      check_int "seq is dense from 0" i st.Trace.seq;
      check_float "ts preserved" (float_of_int (i + 1)) st.Trace.ts;
      match st.Trace.ev with
      | Trace.Fallback { fn } -> check_string "oldest first" (Printf.sprintf "f%d" (i + 1)) fn
      | _ -> Alcotest.fail "unexpected event")
    evs

let test_ring_overflow_keeps_newest () =
  let ring = Trace.ring ~capacity:4 ~clock:(fun () -> 0.0) () in
  for i = 1 to 10 do
    Trace.record ring (Trace.Fallback { fn = string_of_int i })
  done;
  check_int "capacity bounds the window" 4 (List.length (Trace.events ring));
  check_int "recorded counts everything" 10 (Trace.recorded ring);
  check_int "overflow counted" 6 (Trace.dropped ring);
  let names =
    List.map
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with Trace.Fallback { fn } -> fn | _ -> "?")
      (Trace.events ring)
  in
  Alcotest.(check (list string)) "newest window survives" [ "7"; "8"; "9"; "10" ] names;
  (* seq numbers reveal the gap *)
  let first = List.hd (Trace.events ring) in
  check_int "first surviving seq" 6 first.Trace.seq

let test_ring_clear_keeps_seq_monotonic () =
  let ring = Trace.ring ~capacity:8 ~clock:(fun () -> 0.0) () in
  Trace.record ring (Trace.Fallback { fn = "a" });
  Trace.record ring (Trace.Fallback { fn = "b" });
  Trace.clear ring;
  check_int "cleared" 0 (List.length (Trace.events ring));
  check_int "recorded resets" 0 (Trace.recorded ring);
  Trace.record ring (Trace.Fallback { fn = "c" });
  let st = List.hd (Trace.events ring) in
  check_int "seq continues past the clear" 2 st.Trace.seq

(* ------------------------------------------------------------------ *)
(* Hook wiring: commit spans and site events                           *)
(* ------------------------------------------------------------------ *)

let names_of s = List.map (fun (st : Trace.stamped) -> Trace.event_name st.Trace.ev) s

let test_commit_span_and_site_events () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.set s "config_smp" 1;
  check_int "one function bound" 1 (H.commit s);
  let evs = H.trace_events s in
  let names = names_of evs in
  check_bool "has commit_begin" true (List.mem "commit_begin" names);
  check_bool "has commit_end" true (List.mem "commit_end" names);
  check_bool "has variant_selected" true (List.mem "variant_selected" names);
  check_bool "has site_retargeted or site_inlined" true
    (List.mem "site_retargeted" names || List.mem "site_inlined" names);
  check_bool "has prologue_patched" true (List.mem "prologue_patched" names);
  check_bool "has icache_flush" true (List.mem "icache_flush" names);
  (* the span brackets everything: begin is first, end is last *)
  check_string "span opens the log" "commit_begin" (List.hd names);
  check_string "span closes the log" "commit_end" (List.nth names (List.length names - 1));
  (* begin carries the switch values at decision time *)
  (match (List.hd evs).Trace.ev with
  | Trace.Commit_begin { op; switches } ->
      check_string "op tag" "commit" op;
      check_int "switch value recorded" 1 (List.assoc "config_smp" switches)
  | _ -> Alcotest.fail "expected Commit_begin first");
  (* end carries the return value *)
  match (List.nth evs (List.length evs - 1)).Trace.ev with
  | Trace.Commit_end { op; bound } ->
      check_string "matching op tag" "commit" op;
      check_int "bound count" 1 bound
  | _ -> Alcotest.fail "expected Commit_end last"

let test_fallback_event () =
  (* values(0,1) with the switch out of range: no variant matches *)
  let s =
    H.session1
      {|
      multiverse values(0,1) int m;
      int w;
      multiverse void f() { if (m) { w = 1; } }
      void d() { f(); }
    |}
  in
  H.enable_tracing s;
  H.set s "m" 7;
  ignore (H.commit s);
  check_bool "fallback reported" true (List.mem "fallback" (names_of (H.trace_events s)))

let test_revert_span () =
  let s = H.session1 spin_src in
  H.set s "config_smp" 0;
  ignore (H.commit s);
  H.enable_tracing s;
  ignore (H.revert s);
  let names = names_of (H.trace_events s) in
  check_string "revert span opens" "commit_begin" (List.hd names);
  match (List.hd (H.trace_events s)).Trace.ev with
  | Trace.Commit_begin { op; _ } -> check_string "op is revert" "revert" op
  | _ -> Alcotest.fail "expected Commit_begin"

(* ------------------------------------------------------------------ *)
(* Safe commit: defer + exactly-once drain reporting                   *)
(* ------------------------------------------------------------------ *)

let defer_src =
  {|
  multiverse bool m;
  int w;
  multiverse void f() { if (m) { w = w + 100; } }
  void spacer() { w = w + 1; }
  int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
|}

let park s fn =
  let img = s.H.program.Core.Compiler.p_image in
  let addr = Mv_link.Image.symbol img fn in
  let guard = ref 1_000_000 in
  while s.H.machine.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Machine.step s.H.machine)
  done;
  check_bool ("parked at " ^ fn) true (s.H.machine.Machine.pc = addr)

let test_safe_commit_defer_drain_exactly_once () =
  let s = H.session1 defer_src in
  H.enable_safe_commit s;
  H.enable_tracing s;
  H.set s "m" 1;
  Machine.start_call s.H.machine "driver" [];
  park s "f";
  check_int "live function deferred" 0 (H.commit_safe s);
  let names = names_of (H.trace_events s) in
  check_bool "safe_defer reported" true (List.mem "safe_defer" names);
  check_bool "not yet drained" false (List.mem "pending_drained" names);
  (* first f(): still generic, reads m=1, adds 100; the set drains at a
     quiescent safepoint after f returns; second f(): the m=1 variant *)
  check_int "driver result" 202 (Machine.finish s.H.machine);
  let names = names_of (H.trace_events s) in
  let count tag = List.length (List.filter (( = ) tag) names) in
  check_int "drained exactly once" 1 (count "pending_drained");
  check_bool "polls with a non-empty journal reported" true (count "safepoint_poll" >= 1);
  (match
     List.find_map
       (fun (st : Trace.stamped) ->
         match st.Trace.ev with
         | Trace.Pending_drained { actions; _ } -> Some actions
         | _ -> None)
       (H.trace_events s)
   with
  | Some actions -> check_int "one action in the set" 1 actions
  | None -> Alcotest.fail "no Pending_drained event");
  (* a second full run drains nothing further *)
  ignore (H.call s "driver" []);
  check_int "still exactly once" 1
    (List.length
       (List.filter (( = ) "pending_drained") (names_of (H.trace_events s))))

let test_safe_deny_event () =
  let s = H.session1 defer_src in
  H.enable_safe_commit s;
  H.enable_tracing s;
  H.set s "m" 1;
  Machine.start_call s.H.machine "driver" [];
  park s "f";
  check_int "denied" 0 (H.commit_safe ~policy:Runtime.Deny s);
  check_bool "safe_deny reported" true
    (List.mem "safe_deny" (names_of (H.trace_events s)));
  ignore (Machine.finish s.H.machine)

(* ------------------------------------------------------------------ *)
(* Exporters: parse-back                                               *)
(* ------------------------------------------------------------------ *)

let parse_ok what str =
  match Json.parse str with
  | Ok j -> j
  | Error msg -> Alcotest.failf "%s does not parse: %s" what msg

let test_chrome_trace_parses_back () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 5 ]);
  let doc = parse_ok "chrome trace" (H.trace_dump s) in
  match doc with
  | Json.List entries ->
      check_int "one entry per event" (List.length (H.trace_events s))
        (List.length entries);
      let phases =
        List.filter_map
          (fun e -> match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
          entries
      in
      check_int "every entry has a phase" (List.length entries) (List.length phases);
      let count p = List.length (List.filter (( = ) p) phases) in
      check_int "balanced B/E spans" (count "B") (count "E");
      check_bool "at least one span" true (count "B" >= 1);
      List.iter
        (fun e ->
          match (Json.member "name" e, Json.member "ts" e) with
          | Some (Json.String _), Some (Json.Int _ | Json.Float _) -> ()
          | _ -> Alcotest.fail "entry lacks name/ts")
        entries
  | _ -> Alcotest.fail "chrome trace must be a JSON array"

let test_metrics_json_parses_back () =
  let s = H.session1 spin_src in
  H.enable_tracing s;
  H.enable_profiling s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 50 ]);
  let doc = parse_ok "metrics" (Json.to_string_pretty (H.metrics_json s)) in
  (match Json.member "schema" doc with
  | Some (Json.String v) -> check_string "schema tag" "mv-metrics/1" v
  | _ -> Alcotest.fail "missing schema");
  List.iter
    (fun key ->
      match Json.member key doc with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.failf "missing %s section" key)
    [ "runtime"; "perf"; "program"; "trace" ];
  (match Json.member "profile" doc with
  | Some (Json.List _) -> ()
  | _ -> Alcotest.fail "missing profile section");
  (* a couple of load-bearing leaves *)
  (match Option.bind (Json.member "perf" doc) (Json.member "instructions") with
  | Some (Json.Int n) -> check_bool "instructions counted" true (n > 0)
  | _ -> Alcotest.fail "perf.instructions missing");
  match Option.bind (Json.member "runtime" doc) (Json.member "patches") with
  | Some (Json.Int n) -> check_bool "patches counted" true (n > 0)
  | _ -> Alcotest.fail "runtime.patches missing"

let test_json_roundtrip_and_escapes () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te\x01f");
        ("l", Json.List [ Json.Int (-3); Json.Float 1.5; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("empty_l", Json.List []); ("empty_o", Json.Obj []) ]);
      ]
  in
  check_bool "compact roundtrip" true (Json.parse (Json.to_string doc) = Ok doc);
  check_bool "pretty roundtrip" true (Json.parse (Json.to_string_pretty doc) = Ok doc);
  check_bool "non-finite floats become null" true
    (Json.to_string (Json.Float nan) = "null" && Json.to_string (Json.Float infinity) = "null")

(* ------------------------------------------------------------------ *)
(* Pay-for-use: identical cycles with and without sinks                *)
(* ------------------------------------------------------------------ *)

let test_zero_overhead_without_and_with_sinks () =
  let run ~instrument =
    let s = H.session1 spin_src in
    H.set s "config_smp" 1;
    ignore (H.commit s);
    if instrument then begin
      H.enable_tracing s;
      H.enable_profiling s
    end;
    ignore (H.call s "bench_loop" [ 200 ]);
    s.H.machine.Machine.perf.Perf.cycles
  in
  (* the tracer and sampler are host-side observers: the simulated clock
     must not move by even one cycle when they are armed *)
  check_float "bit-identical cycle counts" (run ~instrument:false) (run ~instrument:true)

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_profiler_attributes_variants () =
  let s = H.session1 spin_src in
  H.set s "config_smp" 1;
  ignore (H.commit s);
  H.enable_profiling ~interval:1 s;
  ignore (H.call s "bench_loop" [ 100 ]);
  let rows = H.profile_report s in
  check_bool "rows reported" true (rows <> []);
  let shares = List.fold_left (fun acc r -> acc +. r.Profile.r_share) 0.0 rows in
  check_bool "shares sum to 1" true (abs_float (shares -. 1.0) < 1e-6);
  check_bool "hottest first" true
    (rows = List.sort (fun a b -> compare b.Profile.r_cycles a.Profile.r_cycles) rows);
  (* config_smp=1 keeps the generic body (the variant is the atomic path
     installed over the call sites or behind the prologue): either way the
     loop body shows up, and some row must be variant-classified code when
     the prologue jump routes through a variant symbol *)
  check_bool "bench loop attributed" true
    (List.exists (fun r -> r.Profile.r_name = "bench_loop") rows)

let test_profiler_interval_thins_samples () =
  let samples_at interval =
    let s = H.session1 spin_src in
    H.enable_profiling ~interval s;
    ignore (H.call s "bench_loop" [ 100 ]);
    match s.H.profile with Some p -> Profile.samples p | None -> 0
  in
  let dense = samples_at 1 in
  let sparse = samples_at 50 in
  check_bool "denser interval, more samples" true (dense > sparse);
  check_bool "sparse still samples" true (sparse > 0)

(* ------------------------------------------------------------------ *)
(* Derived perf metrics and measurement percentiles                    *)
(* ------------------------------------------------------------------ *)

let zero_snapshot =
  {
    Perf.s_cycles = 0.0;
    s_instructions = 0;
    s_branches = 0;
    s_branch_mispredicts = 0;
    s_calls = 0;
    s_indirect_calls = 0;
    s_btb_misses = 0;
    s_loads = 0;
    s_stores = 0;
    s_atomics = 0;
    s_hypercalls = 0;
    s_icache_flushes = 0;
  }

let test_perf_derived_metrics () =
  let s =
    { zero_snapshot with Perf.s_cycles = 100.0; s_instructions = 250; s_branches = 40;
      s_branch_mispredicts = 10; s_calls = 4 }
  in
  check_float "ipc" 2.5 (Perf.ipc s);
  check_float "mispredict rate" 0.25 (Perf.mispredict_rate s);
  check_float "cycles per call" 25.0 (Perf.cycles_per_call s);
  (* zero denominators stay finite *)
  check_float "ipc of empty delta" 0.0 (Perf.ipc zero_snapshot);
  check_float "rate of empty delta" 0.0 (Perf.mispredict_rate zero_snapshot);
  check_float "cpc of empty delta" 0.0 (Perf.cycles_per_call zero_snapshot)

let test_percentiles_and_measurement_fields () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p0 is the min" 1.0 (H.percentile values 0.0);
  check_float "p100 is the max" 100.0 (H.percentile values 1.0);
  check_float "median of 1..100" 50.0 (H.percentile values 0.5);
  check_float "p95 of 1..100" 95.0 (H.percentile values 0.95);
  check_float "empty list" 0.0 (H.percentile [] 0.5);
  let s = H.session1 spin_src in
  H.set s "config_smp" 0;
  ignore (H.commit s);
  let m = H.measure ~samples:50 s ~loop_fn:"bench_loop" in
  check_bool "min <= p50" true (m.H.m_min <= m.H.m_p50);
  check_bool "p50 <= p95" true (m.H.m_p50 <= m.H.m_p95);
  check_bool "p95 <= max" true (m.H.m_p95 <= m.H.m_max);
  check_bool "mean within range" true (m.H.m_min <= m.H.m_mean && m.H.m_mean <= m.H.m_max);
  (* the measurement exports every field *)
  let j = H.measurement_json m in
  List.iter
    (fun k ->
      match Json.member k j with
      | Some (Json.Float _ | Json.Int _) -> ()
      | _ -> Alcotest.failf "measurement_json lacks %s" k)
    [ "mean"; "stddev"; "min"; "max"; "p50"; "p95"; "samples"; "excluded" ]

let suite =
  [
    tc "ring preserves order and seq" test_ring_order_and_seq;
    tc "ring overflow keeps the newest window" test_ring_overflow_keeps_newest;
    tc "ring clear keeps seq monotonic" test_ring_clear_keeps_seq_monotonic;
    tc "commit emits a span with site events" test_commit_span_and_site_events;
    tc "fallback reported" test_fallback_event;
    tc "revert emits a revert span" test_revert_span;
    tc "safe commit: defer then drain exactly once"
      test_safe_commit_defer_drain_exactly_once;
    tc "safe deny reported" test_safe_deny_event;
    tc "chrome trace parses back" test_chrome_trace_parses_back;
    tc "metrics snapshot parses back" test_metrics_json_parses_back;
    tc "json roundtrip and escapes" test_json_roundtrip_and_escapes;
    tc "no sink, no cycles: pay-for-use" test_zero_overhead_without_and_with_sinks;
    tc "profiler attributes symbols" test_profiler_attributes_variants;
    tc "profiler interval thins samples" test_profiler_interval_thins_samples;
    tc "derived perf metrics" test_perf_derived_metrics;
    tc "percentiles and measurement fields" test_percentiles_and_measurement_fields;
  ]
