(* On-stack replacement tests: a deferred patch blocked by a live
   activation is unblocked by *moving* the activation — frame and pc — into
   the target body at the next safepoint, instead of waiting for the frame
   to unwind.  The battery covers transfer at every safepoint of a loop
   body, the transfer-then-revert round trip, the never-returning-body
   drain guarantee, and an SMP transfer under the rendezvous barrier. *)

open Util
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Image = Mv_link.Image
module Trace = Mv_obs.Trace
module Harness = Mv_workloads.Harness
module Smp = Mv_vm.Smp

(* Wire scanner + safepoint hook (as Harness.enable_safe_commit) and the
   OSR hart accessors (as Harness.enable_osr) over a Util.session. *)
let enable s =
  Runtime.set_live_scanner s.runtime (fun () -> Machine.live_code_addrs s.machine);
  Machine.set_safepoint s.machine (Some (fun () -> Runtime.safepoint s.runtime));
  let m = s.machine in
  let img = s.program.Core.Compiler.p_image in
  Runtime.set_osr s.runtime
    (Some
       (fun () ->
         {
           Runtime.oh_hart = Machine.hart_id m;
           oh_pc = (fun () -> m.Machine.pc);
           oh_set_pc = (fun pc -> m.Machine.pc <- pc);
           oh_reg = (fun r -> m.Machine.regs.(r));
           oh_set_reg = (fun r v -> m.Machine.regs.(r) <- v);
           oh_mem = (fun addr -> Image.read img addr 8);
           oh_set_mem = (fun addr v -> Image.write img addr v 8);
           oh_set_top_frame =
             (fun addr ->
               m.Machine.frames <-
                 (match m.Machine.frames with
                 | _ :: rest -> addr :: rest
                 | [] -> [ addr ]));
         }))

(* Collect every trace event the runtime emits (no ring, no clock: the
   tests only care about the event payloads). *)
let collect_events s =
  let events = ref [] in
  Runtime.set_tracer s.runtime (Some (fun ev -> events := ev :: !events));
  fun () -> List.rev !events

(* The Osr_transfer payload is an inline record; project the fields the
   assertions care about. *)
type xfer = { x_cid : int; x_fn : string; x_sp_id : int }

let osr_xfers evs =
  List.filter_map
    (function
      | Trace.Osr_transfer { cid; fn; sp_id; _ } ->
          Some { x_cid = cid; x_fn = fn; x_sp_id = sp_id }
      | _ -> None)
    evs

(* Step until the pc sits at [fn]'s entry (the call has transferred
   control, no body instruction has run). *)
let park s fn =
  let img = s.program.Core.Compiler.p_image in
  let addr = Image.symbol img fn in
  let guard = ref 1_000_000 in
  while s.machine.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Machine.step s.machine)
  done;
  check_bool ("parked at " ^ fn) true (s.machine.Machine.pc = addr)

(* The OSR workload: [spin] loops [n] times; each iteration calls [tick]
   (whose return is the loop body's safepoint) and then adds 1 (generic,
   with m=0 in memory) or 2 (the m=1 variant) to the accumulator.  The
   commit decision is journaled with m=1, then memory flips to m=0: every
   iteration executed in the generic body contributes 1, every iteration
   executed in the variant contributes 2 — the result counts exactly how
   early the activation moved. *)
let spin_src =
  {|
  multiverse bool m;
  int w;
  void tick() { w = w + 1; }
  multiverse int spin(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
      tick();
      if (m) { acc = acc + 2; } else { acc = acc + 1; }
      i = i + 1;
    }
    return acc;
  }
  int driver(int n) { w = 0; return spin(n); }
|}

let test_transfer_unblocks_live_loop () =
  let s = session spin_src in
  enable s;
  let events = collect_events s in
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [ 10 ];
  park s "spin";
  let bound = Runtime.commit_safe s.runtime in
  check_int "live function not bound now" 0 bound;
  check_bool "spin journaled" true (Runtime.pending s.runtime = [ "spin" ]);
  (* the journaled decision binds the m=1 variant; the generic reads m=0
     from here on, so generic iterations add 1 and variant iterations 2 *)
  set_global s "m" 0;
  let acc = Machine.finish s.machine in
  (* the first safepoint fires when iteration 1's tick returns, before the
     iteration's accumulate: the transfer moves the activation there, so
     all 10 iterations take the variant path *)
  check_int "every iteration ran in the variant" 20 acc;
  let st = Runtime.stats s.runtime in
  check_int "one transfer" 1 st.Runtime.st_osr_transfers;
  check_int "no aborts" 0 st.Runtime.st_osr_aborts;
  check_int "set drained" 0 st.Runtime.st_pending;
  check_bool "variant installed" true
    (Runtime.installed_variant s.runtime "spin" <> None);
  (* the transfer event correlates with the deferring commit's cid *)
  match osr_xfers (events ()) with
  | [ x ] ->
      check_string "transfer names the function" "spin" x.x_fn;
      let defer_cid =
        List.find_map
          (function Trace.Safe_defer { cid; _ } -> Some cid | _ -> None)
          (events ())
      in
      check_bool "cid matches the deferring commit" true (Some x.x_cid = defer_cid)
  | xs -> Alcotest.failf "expected exactly one Osr_transfer event, got %d" (List.length xs)

let test_without_osr_set_stays_pending_until_return () =
  let s = session spin_src in
  (* safe commit wired, but no OSR accessors *)
  Runtime.set_live_scanner s.runtime (fun () -> Machine.live_code_addrs s.machine);
  Machine.set_safepoint s.machine (Some (fun () -> Runtime.safepoint s.runtime));
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [ 10 ];
  park s "spin";
  ignore (Runtime.commit_safe s.runtime);
  set_global s "m" 0;
  let acc = Machine.finish s.machine in
  (* the set could only drain after spin's frame unwound: all 10
     iterations ran generic with m=0 *)
  check_int "every iteration ran generic" 10 acc;
  check_int "no transfers without accessors" 0
    (Runtime.stats s.runtime).Runtime.st_osr_transfers;
  check_int "drained at return" 0 (Runtime.stats s.runtime).Runtime.st_pending

(* Two calls per iteration — two safepoints with distinct stable ids.  By
   issuing the commit after k = 0, 1, 2, … machine steps, the activation is
   parked at varying distances from each safepoint, so transfers land on
   every safepoint id the body records. *)
let two_sp_src =
  {|
  multiverse bool m;
  int w;
  void tick() { w = w + 1; }
  void tock() { w = w + 3; }
  multiverse int spin2(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
      tick();
      if (m) { acc = acc + 2; } else { acc = acc + 1; }
      tock();
      i = i + 1;
    }
    return acc;
  }
  int driver(int n) { w = 0; return spin2(n); }
|}

let test_transfer_at_every_safepoint_offset () =
  (* which safepoint ids exist in spin2's generic frame map? *)
  let ids_of_fn s name =
    let img = s.program.Core.Compiler.p_image in
    let addr = Image.symbol img name in
    match
      List.find_opt
        (fun (fm : Core.Descriptor.framemap_record) ->
          fm.Core.Descriptor.fm_addr = addr)
        (Core.Descriptor.parse_framemaps img)
    with
    | Some fm ->
        List.map
          (fun (sp : Core.Descriptor.safepoint_record) -> sp.Core.Descriptor.fs_id)
          fm.Core.Descriptor.fm_safepoints
    | None -> []
  in
  let all_ids = ref [] in
  let hit_ids = ref [] in
  for k = 0 to 40 do
    let s = session two_sp_src in
    enable s;
    let events = collect_events s in
    set_global s "m" 1;
    Machine.start_call s.machine "driver" [ 6 ];
    park s "spin2";
    all_ids := ids_of_fn s "spin2";
    for _ = 1 to k do
      ignore (Machine.step s.machine)
    done;
    ignore (Runtime.commit_safe s.runtime);
    set_global s "m" 0;
    let acc = Machine.finish s.machine in
    let st = Runtime.stats s.runtime in
    (* whatever the offset: the set drains mid-run via exactly one
       transfer, and the result stays in the envelope [6, 12] (each
       iteration adds 1 generic / 2 variant) *)
    check_int (Printf.sprintf "k=%d: one transfer" k) 1 st.Runtime.st_osr_transfers;
    check_int (Printf.sprintf "k=%d: drained" k) 0 st.Runtime.st_pending;
    check_bool
      (Printf.sprintf "k=%d: result in envelope (%d)" k acc)
      true
      (acc >= 6 && acc <= 12);
    List.iter (fun x -> hit_ids := x.x_sp_id :: !hit_ids) (osr_xfers (events ()))
  done;
  check_bool "body records at least two safepoints" true (List.length !all_ids >= 2);
  List.iter
    (fun id ->
      check_bool (Printf.sprintf "safepoint id %d exercised" id) true
        (List.mem id !hit_ids))
    !all_ids

let test_transfer_then_revert_round_trip () =
  let s = session spin_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [ 40 ];
  park s "spin";
  ignore (Runtime.commit_safe s.runtime);
  (* step until the bind has transferred + drained, well before return *)
  let guard = ref 10_000 in
  while Runtime.pending s.runtime <> [] && !guard > 0 do
    decr guard;
    ignore (Machine.step s.machine)
  done;
  check_bool "bind drained mid-run" true (Runtime.pending s.runtime = []);
  check_int "forward transfer" 1 (Runtime.stats s.runtime).Runtime.st_osr_transfers;
  check_bool "variant installed mid-run" true
    (Runtime.installed_variant s.runtime "spin" <> None);
  (* now revert while the activation runs inside the variant body: the
     unbind defers (the installed body is live), the next safepoint
     transfers the activation *back* into the generic, and the unbind
     drains *)
  ignore (Runtime.revert_safe s.runtime);
  check_bool "revert deferred while variant live" true
    (Runtime.pending s.runtime <> []);
  let guard = ref 10_000 in
  while Runtime.pending s.runtime <> [] && !guard > 0 do
    decr guard;
    ignore (Machine.step s.machine)
  done;
  check_bool "unbind drained mid-run" true (Runtime.pending s.runtime = []);
  check_int "back transfer" 2 (Runtime.stats s.runtime).Runtime.st_osr_transfers;
  check_bool "back to generic mid-run" true
    (Runtime.installed_variant s.runtime "spin" = None);
  let acc = Machine.finish s.machine in
  (* m stayed 1 throughout, and the m=1 variant is semantically the
     generic with m=1: the round trip must not change the result *)
  check_int "round trip preserves semantics" 80 acc;
  check_int "no aborts" 0 (Runtime.stats s.runtime).Runtime.st_osr_aborts

let test_never_returning_body_drains_mid_flight () =
  (* a "never-returning" activation, approximated by a loop far longer
     than the test drives it: the pending set must drain to 0 while the
     activation is still live, via transfer — not at return *)
  let s = session spin_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [ 1_000_000 ];
  park s "spin";
  ignore (Runtime.commit_safe s.runtime);
  check_int "deferred" 1 (Runtime.stats s.runtime).Runtime.st_pending;
  let steps = ref 0 in
  while Runtime.pending s.runtime <> [] && !steps < 5_000 do
    incr steps;
    ignore (Machine.step s.machine)
  done;
  check_int "st_pending drains to 0 with the body still live" 0
    (Runtime.stats s.runtime).Runtime.st_pending;
  check_int "drained by transfer, not return" 1
    (Runtime.stats s.runtime).Runtime.st_osr_transfers

(* SMP: hart 0 parks inside the loop while hart 1 runs an independent
   workload; the deferring commit is issued from the host, and the
   draining safepoint on hart 0 runs its transfer inside the stop_machine
   rendezvous — with hart 1 parked mid-rendezvous. *)
let smp_src =
  {|
  multiverse bool m;
  int w;
  int z;
  void tick() { w = w + 1; }
  multiverse int spin(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
      tick();
      if (m) { acc = acc + 2; } else { acc = acc + 1; }
      i = i + 1;
    }
    return acc;
  }
  int driver(int n) { w = 0; return spin(n); }
  int other(int n) {
    int i = 0;
    while (i < n) { z = z + 1; i = i + 1; }
    return z;
  }
|}

let test_smp_transfer_under_rendezvous () =
  let s = Harness.smp_session1 ~n_harts:2 ~seed:7 smp_src in
  Harness.enable_smp_osr s;
  Harness.smp_set s "m" 1;
  Harness.smp_start s ~hart:0 "driver" [ 50 ];
  Harness.smp_start s ~hart:1 "other" [ 200 ];
  (* interleave until hart 0 is inside spin *)
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let spin_addr = Image.symbol img "spin" in
  let spin_size = Image.symbol_size img "spin" in
  let m0 = Smp.machine s.Harness.smp 0 in
  let guard = ref 100_000 in
  while
    (m0.Machine.pc < spin_addr || m0.Machine.pc >= spin_addr + spin_size)
    && !guard > 0
  do
    decr guard;
    ignore (Harness.smp_step s)
  done;
  check_bool "hart 0 inside spin" true
    (m0.Machine.pc >= spin_addr && m0.Machine.pc < spin_addr + spin_size);
  let bound = Harness.smp_commit_safe s in
  check_int "live spin not bound now" 0 bound;
  Harness.smp_set s "m" 0;
  Harness.smp_run s;
  let st = Runtime.stats s.Harness.sm_runtime in
  check_bool "transferred on hart 0" true (st.Runtime.st_osr_transfers >= 1);
  check_int "journal drained" 0 st.Runtime.st_pending;
  (* hart 1's workload is untouched by the patching *)
  check_int "hart 1 result" 200 (Harness.smp_result s ~hart:1);
  (* hart 0: iterations before the flip ran with m=1 (add 2), between flip
     and transfer generic m=0 (add 1), after the transfer the variant
     (add 2) — the result stays in the envelope *)
  let r0 = Harness.smp_result s ~hart:0 in
  check_bool
    (Printf.sprintf "hart 0 result in envelope (%d)" r0)
    true
    (r0 >= 50 && r0 <= 100)

let suite =
  [
    tc "transfer unblocks a live loop" test_transfer_unblocks_live_loop;
    tc "without OSR the set waits for return"
      test_without_osr_set_stays_pending_until_return;
    tc_slow "transfer at every safepoint offset"
      test_transfer_at_every_safepoint_offset;
    tc "transfer-then-revert round trip" test_transfer_then_revert_round_trip;
    tc "never-returning body drains mid-flight"
      test_never_returning_body_drains_mid_flight;
    tc "SMP transfer under rendezvous" test_smp_transfer_under_rendezvous;
  ]
