(* The SMP interleaving battery: deterministic multi-hart scheduling,
   the stop_machine rendezvous, breakpoint-first text_poke, cross-hart
   quiescence for safe commits, and the chaos hook that breaks one
   hart's IPI/flush channel.

   Every schedule here is pinned by a seed: the suite runs under the
   seeds in [seeds] (the pinned trio plus an optional MV_SMP_SEED from
   the environment — CI rotates one).  On failure the failing seed and
   a trace dump land in $MV_SMP_ARTIFACT_DIR for offline replay. *)

open Util
module Harness = Mv_workloads.Harness
module Spinlock = Mv_workloads.Spinlock
module Pvops = Mv_workloads.Pvops
module Runtime = Core.Runtime
module Smp = Mv_vm.Smp
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf
module Trace = Mv_obs.Trace
module Image = Mv_link.Image

(* ------------------------------------------------------------------ *)
(* Seeds and failure artifacts                                         *)
(* ------------------------------------------------------------------ *)

let seeds =
  [ 1; 7; 42 ]
  @
  match Sys.getenv_opt "MV_SMP_SEED" with
  | None -> []
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n -> [ n ]
    | None -> [])

(* Run [f], handing it a dump cell the test refines once it has a
   session; on failure write seed + dump to $MV_SMP_ARTIFACT_DIR (when
   set) before re-raising, so CI can upload the failing schedule. *)
let with_artifact ~name ~seed f =
  let dump = ref (fun () -> Printf.sprintf "{\"seed\": %d}" seed) in
  try f dump
  with e ->
    (match Sys.getenv_opt "MV_SMP_ARTIFACT_DIR" with
    | None -> ()
    | Some dir -> (
        try
          if not (Sys.file_exists dir) then
            ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote dir)));
          let file = Filename.concat dir (Printf.sprintf "%s-seed%d.json" name seed) in
          let oc = open_out file in
          output_string oc (!dump ());
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "[smp] seed %d failed %s; artifact: %s\n%!" seed name file
        with _ -> ()));
    raise e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Workload sources                                                    *)
(* ------------------------------------------------------------------ *)

let spin_src = {|
  void w(int n) {
    for (int i = 0; i < n; i = i + 1) {
    }
  }
|}

let id_src = {|
  int id(int x) { return x; }
|}

let order_src = {|
  int stamp;
  int order0;
  int order1;
  void w0(int n) {
    for (int i = 0; i < n; i = i + 1) {
    }
    stamp = stamp + 1;
    order0 = stamp;
  }
  void w1(int n) {
    for (int i = 0; i < n; i = i + 1) {
    }
    stamp = stamp + 1;
    order1 = stamp;
  }
|}

(* interrupts held off across the loop: the ack must wait for __sti *)
let cli_burst_src = {|
  int x;
  void w(int n) {
    __cli();
    for (int i = 0; i < n; i = i + 1) {
      x = x + 1;
    }
    __sti();
  }
|}

(* per-iteration cli/sti windows for the handshake enumerations *)
let cli_window_src = {|
  int x;
  void w(int n) {
    for (int i = 0; i < n; i = i + 1) {
      __cli();
      x = x + 1;
      __sti();
    }
  }
|}

let hang_src = {|
  int x;
  void hang() {
    __cli();
    while (x < 1000000000) {
      x = x + 1;
    }
    __sti();
  }
|}

(* twin leaf bodies: the text_poke tests overwrite seven with nine *)
let poke_src = {|
  int acc;
  int seven() { return 7; }
  int nine() { return 9; }
  void loop(int n) {
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + seven();
    }
  }
|}

(* a multiversed increment: mode=0 adds 1 per call, mode=1 adds 2 — the
   icache-coherence probe measures which variant a hart actually runs *)
let tick_src = {|
  multiverse int mode;
  int acc;
  multiverse void tick() {
    if (mode) {
      acc = acc + 2;
    } else {
      acc = acc + 1;
    }
  }
  void work(int n) {
    for (int i = 0; i < n; i = i + 1) {
      tick();
    }
  }
  void spin(int n) {
    for (int i = 0; i < n; i = i + 1) {
    }
  }
|}

(* the safe-commit deferral workload from the single-hart suite *)
let defer_src = {|
  multiverse bool m;
  int w;
  multiverse void f() { if (m) { w = w + 100; } }
  void spacer() { w = w + 1; }
  int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
|}

(* Step hart [h] until its pc reaches [fn]'s entry. *)
let park_hart s ~hart fn =
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let addr = Image.symbol img fn in
  let m = Smp.machine s.Harness.smp hart in
  let guard = ref 1_000_000 in
  while m.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Smp.step_hart s.Harness.smp hart)
  done;
  check_bool (Printf.sprintf "hart %d parked at %s" hart fn) true
    (m.Machine.pc = addr)

(* ------------------------------------------------------------------ *)
(* Container basics                                                    *)
(* ------------------------------------------------------------------ *)

(* A 1-hart container must reproduce the plain machine bit for bit —
   same cycles, same instruction count — even though its commits run
   under the rendezvous barrier and the text_poke writer.  The fair
   baseline carries the same safe-commit wiring the container installs
   by default (the safepoint hook charges its poll cost). *)
let test_single_hart_bit_identity () =
  let src = Spinlock.source Spinlock.Multiverse in
  let plain = session src in
  Runtime.set_live_scanner plain.runtime (fun () ->
      Machine.live_code_addrs plain.machine);
  Machine.set_safepoint plain.machine
    (Some (fun () -> Runtime.safepoint plain.runtime));
  set_global plain "config_smp" 1;
  ignore (Runtime.commit plain.runtime);
  ignore (run plain "bench_loop" [ 40 ]);
  let smp = Harness.smp_session1 ~n_harts:1 src in
  Harness.smp_set smp "config_smp" 1;
  ignore (Harness.smp_commit smp);
  Harness.smp_start smp ~hart:0 "bench_loop" [ 40 ];
  Harness.smp_run smp;
  let mp = plain.machine and ms = Smp.machine smp.Harness.smp 0 in
  if mp.Machine.perf.Perf.cycles <> ms.Machine.perf.Perf.cycles then
    Alcotest.failf "cycles diverge: plain %.1f (%d insns) vs smp %.1f (%d insns)"
      mp.Machine.perf.Perf.cycles mp.Machine.perf.Perf.instructions
      ms.Machine.perf.Perf.cycles ms.Machine.perf.Perf.instructions;
  check_int "identical instruction count" mp.Machine.perf.Perf.instructions
    ms.Machine.perf.Perf.instructions;
  check_int "hart 0 keeps the image stack base" ms.Machine.stack_base
    smp.Harness.sm_program.Core.Compiler.p_image.Image.stack_base

let test_per_hart_isolation () =
  let s = Harness.smp_session1 ~n_harts:3 id_src in
  let smp = s.Harness.smp in
  check_int "disjoint stack slices"
    ((Smp.machine smp 0).Machine.stack_base - Smp.hart_stack_bytes)
    (Smp.machine smp 1).Machine.stack_base;
  check_int "slices stack downwards"
    ((Smp.machine smp 0).Machine.stack_base - (2 * Smp.hart_stack_bytes))
    (Smp.machine smp 2).Machine.stack_base;
  Harness.smp_start s ~hart:0 "id" [ 10 ];
  Harness.smp_start s ~hart:1 "id" [ 20 ];
  Harness.smp_start s ~hart:2 "id" [ 30 ];
  Harness.smp_run s;
  check_int "hart 0 result" 10 (Harness.smp_result s ~hart:0);
  check_int "hart 1 result" 20 (Harness.smp_result s ~hart:1);
  check_int "hart 2 result" 30 (Harness.smp_result s ~hart:2)

let test_round_robin_fairness () =
  let s = Harness.smp_session1 ~n_harts:2 spin_src in
  Harness.smp_start s ~hart:0 "w" [ 1000 ];
  Harness.smp_start s ~hart:1 "w" [ 1000 ];
  for _ = 1 to 100 do
    ignore (Harness.smp_step s)
  done;
  let i h = (Smp.machine s.Harness.smp h).Machine.perf.Perf.instructions in
  check_bool "round-robin alternates" true (abs (i 0 - i 1) <= 1)

let test_round_robin_determinism () =
  let run () = Spinlock.run_contended ~n_harts:2 ~seed:11 ~smp:true ~iters:25 () in
  let s1, c1 = run () and s2, c2 = run () in
  check_int "same counter" c1 c2;
  check_bool "same total clock" true
    (Smp.clock s1.Harness.smp = Smp.clock s2.Harness.smp)

let test_weighted_random_determinism () =
  let run () =
    Spinlock.run_contended ~n_harts:2
      ~policy:(Smp.Weighted_random [| 1; 2 |])
      ~seed:11 ~smp:true ~iters:25 ()
  in
  let s1, c1 = run () and s2, c2 = run () in
  check_int "same counter" c1 c2;
  check_bool "same total clock" true
    (Smp.clock s1.Harness.smp = Smp.clock s2.Harness.smp);
  check_bool "same per-hart split" true
    ((Smp.machine s1.Harness.smp 0).Machine.perf.Perf.instructions
    = (Smp.machine s2.Harness.smp 0).Machine.perf.Perf.instructions)

(* A race-free program's outcome must not depend on the schedule. *)
let test_seed_invariance_race_free () =
  let counter seed =
    snd
      (Spinlock.run_contended ~n_harts:2
         ~policy:(Smp.Weighted_random [| 2; 1 |])
         ~seed ~smp:true ~iters:25 ())
  in
  check_int "seed 11" 50 (counter 11);
  check_int "seed 47" 50 (counter 47);
  check_int "seed 9001" 50 (counter 9001)

let test_zero_weight_starves_under_competition () =
  let s =
    Harness.smp_session1 ~n_harts:2
      ~policy:(Smp.Weighted_random [| 1; 0 |])
      ~seed:3 order_src
  in
  Harness.smp_start s ~hart:0 "w0" [ 20 ];
  Harness.smp_start s ~hart:1 "w1" [ 20 ];
  Harness.smp_run s;
  check_int "weighted hart finished first" 1 (Harness.smp_get s "order0");
  check_int "starved hart ran once alone" 2 (Harness.smp_get s "order1")

let test_all_zero_weights_run_lowest_first () =
  let s =
    Harness.smp_session1 ~n_harts:2
      ~policy:(Smp.Weighted_random [| 0; 0 |])
      ~seed:3 order_src
  in
  Harness.smp_start s ~hart:0 "w0" [ 20 ];
  Harness.smp_start s ~hart:1 "w1" [ 20 ];
  Harness.smp_run s;
  check_int "hart 0 first" 1 (Harness.smp_get s "order0");
  check_int "hart 1 still completes" 2 (Harness.smp_get s "order1")

(* ------------------------------------------------------------------ *)
(* Contended critical sections                                         *)
(* ------------------------------------------------------------------ *)

let test_contended_exact_two_harts () =
  List.iter
    (fun seed ->
      with_artifact ~name:"contended-2" ~seed @@ fun dump ->
      let s, counter =
        Spinlock.run_contended ~n_harts:2 ~seed ~smp:true ~iters:30 ()
      in
      dump :=
        (fun () ->
          Printf.sprintf "{\"seed\": %d, \"counter\": %d, \"clock\": %f}" seed
            counter (Smp.clock s.Harness.smp));
      check_int (Printf.sprintf "exact counter (seed %d)" seed) 60 counter)
    seeds

let test_contended_exact_four_harts () =
  List.iter
    (fun seed ->
      with_artifact ~name:"contended-4" ~seed @@ fun dump ->
      let s, counter =
        Spinlock.run_contended ~n_harts:4
          ~policy:(Smp.Weighted_random [| 3; 1; 2; 1 |])
          ~seed ~smp:true ~iters:15 ()
      in
      dump :=
        (fun () ->
          Printf.sprintf "{\"seed\": %d, \"counter\": %d, \"clock\": %f}" seed
            counter (Smp.clock s.Harness.smp));
      check_int (Printf.sprintf "exact counter (seed %d)" seed) 60 counter)
    seeds

(* With the lock elided on two harts the non-atomic read-modify-write
   races: round-robin interleaves the load/store pairs and loses
   updates — the observable difference the lock exists to prevent. *)
let test_elided_lock_races () =
  let _, counter =
    Spinlock.run_contended ~n_harts:2 ~seed:1 ~smp:false ~iters:50 ()
  in
  check_bool "updates lost without the lock" true (counter < 100);
  check_bool "but both harts made progress" true (counter > 0)

let test_midrun_commit_under_contention () =
  List.iter
    (fun seed ->
      with_artifact ~name:"midrun-commit" ~seed @@ fun dump ->
      let s, counter =
        Spinlock.run_contended ~n_harts:2 ~seed ~commit_at:120 ~smp:true
          ~iters:30 ()
      in
      let smp = s.Harness.smp in
      dump :=
        (fun () ->
          Printf.sprintf
            "{\"seed\": %d, \"counter\": %d, \"ipis\": %d, \"acks\": %d}" seed
            counter (Smp.ipis_sent smp) (Smp.ipi_acks smp));
      check_int (Printf.sprintf "counter survives the rendezvous (seed %d)" seed)
        60 counter;
      check_bool "the rendezvous posted IPIs" true (Smp.ipis_sent smp >= 1);
      check_int "every IPI was acknowledged" (Smp.ipis_sent smp)
        (Smp.ipi_acks smp);
      check_bool "rendezvous recorded" true (Smp.rendezvous_count smp >= 1))
    seeds

let test_pvops_native_smp () =
  let s = Pvops.smp_stress ~n_harts:3 ~seed:5 ~iters:40 Machine.Native in
  for h = 0 to 2 do
    check_int (Printf.sprintf "hart %d stress clean" h) 0
      (Harness.smp_result s ~hart:h);
    check_bool
      (Printf.sprintf "hart %d interrupts balanced" h)
      true
      (Smp.machine s.Harness.smp h).Machine.irq_enabled
  done

let test_pvops_xen_smp () =
  let s = Pvops.smp_stress ~n_harts:2 ~seed:5 ~iters:40 Machine.Xen in
  for h = 0 to 1 do
    check_int (Printf.sprintf "hart %d stress clean" h) 0
      (Harness.smp_result s ~hart:h)
  done;
  check_int "event mask released" 0 (Harness.smp_get s "xen_mask");
  for h = 0 to 1 do
    check_bool
      (Printf.sprintf "hart %d did its own work" h)
      true
      ((Smp.machine s.Harness.smp h).Machine.perf.Perf.instructions > 0)
  done

(* ------------------------------------------------------------------ *)
(* The stop_machine rendezvous                                         *)
(* ------------------------------------------------------------------ *)

let test_idle_harts_owe_no_acks () =
  let s = Harness.smp_session1 ~n_harts:4 spin_src in
  Harness.enable_smp_tracing s;
  ignore (Harness.smp_commit s);
  let smp = s.Harness.smp in
  check_int "no IPIs to halted harts" 0 (Smp.ipis_sent smp);
  check_bool "rendezvous still ran" true (Smp.rendezvous_count smp >= 1);
  let waiting_zero =
    List.exists
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with
        | Trace.Rendezvous_begin { waiting; _ } -> waiting = 0
        | _ -> false)
      (Harness.smp_trace_events s)
  in
  check_bool "begin event shows zero waiters" true waiting_zero

let test_cli_section_delays_ack () =
  let s = Harness.smp_session1 ~n_harts:2 cli_burst_src in
  Harness.enable_smp_tracing s;
  let smp = s.Harness.smp in
  Harness.smp_start s ~hart:1 "w" [ 10 ];
  let m1 = Smp.machine smp 1 in
  let guard = ref 100 in
  while m1.Machine.irq_enabled && !guard > 0 do
    decr guard;
    ignore (Smp.step_hart smp 1)
  done;
  check_bool "hart 1 is in its cli section" false m1.Machine.irq_enabled;
  check_int "patch thunk ran at the rendezvous" 42
    (Smp.stop_machine smp (fun () -> 42));
  let delayed =
    List.exists
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with
        | Trace.Ipi_ack { hart = 1; wait; _ } -> wait > 0.0
        | _ -> false)
      (Harness.smp_trace_events s)
  in
  check_bool "the ack waited for __sti" true delayed;
  Harness.smp_run s;
  check_int "hart 1 released and completed" 10 (Harness.smp_get s "x")

(* Exhaustively enumerate when the stop request lands relative to hart
   1's progress through per-iteration cli/sti windows: every offset must
   converge to exactly one ack, and release must leave the hart able to
   finish its work. *)
let test_handshake_enumeration_two_harts () =
  let s = Harness.smp_session1 ~n_harts:2 cli_window_src in
  let smp = s.Harness.smp in
  let total = ref 0 in
  for k = 0 to 14 do
    Harness.smp_start s ~hart:1 "w" [ 4 ];
    for _ = 1 to k do
      ignore (Smp.step_hart smp 1)
    done;
    let owed = Smp.rendezvous_post smp ~initiator:0 in
    check_int (Printf.sprintf "one ack owed (offset %d)" k) 1 owed;
    let acks_before = Smp.ipi_acks smp in
    let guard = ref 5_000 in
    while (not (Smp.rendezvous_complete smp)) && !guard > 0 do
      decr guard;
      ignore (Smp.step_hart smp 1)
    done;
    check_bool (Printf.sprintf "handshake converges (offset %d)" k) true
      (Smp.rendezvous_complete smp);
    check_int (Printf.sprintf "exactly one ack (offset %d)" k)
      (acks_before + 1) (Smp.ipi_acks smp);
    check_int "thunk result" 99 (Smp.rendezvous_finish smp (fun () -> 99));
    check_bool "hart released" true (Smp.runnable smp 1);
    Harness.smp_run s;
    total := !total + 4;
    check_int (Printf.sprintf "work completed (offset %d)" k) !total
      (Harness.smp_get s "x")
  done

(* Three harts, enumerated ack orders: drive harts 1 and 2 in every
   4-slot order before letting the scheduler finish the gather. *)
let test_handshake_enumeration_three_harts () =
  let s = Harness.smp_session1 ~n_harts:3 cli_window_src in
  let smp = s.Harness.smp in
  for sched = 0 to 15 do
    Harness.smp_start s ~hart:1 "w" [ 4 ];
    Harness.smp_start s ~hart:2 "w" [ 4 ];
    let owed = Smp.rendezvous_post smp ~initiator:0 in
    check_int "two acks owed" 2 owed;
    let acks_before = Smp.ipi_acks smp in
    for slot = 0 to 3 do
      let hart = 1 + ((sched lsr slot) land 1) in
      ignore (Smp.step_hart smp hart)
    done;
    let guard = ref 5_000 in
    while (not (Smp.rendezvous_complete smp)) && !guard > 0 do
      decr guard;
      ignore (Smp.step_hart smp 1);
      ignore (Smp.step_hart smp 2)
    done;
    check_bool (Printf.sprintf "gather converges (schedule %d)" sched) true
      (Smp.rendezvous_complete smp);
    check_int (Printf.sprintf "both acked once (schedule %d)" sched)
      (acks_before + 2) (Smp.ipi_acks smp);
    ignore (Smp.rendezvous_finish smp (fun () -> ()));
    check_bool "hart 1 released" true (Smp.runnable smp 1);
    check_bool "hart 2 released" true (Smp.runnable smp 2);
    Harness.smp_run s
  done

let test_nested_stop_machine () =
  let s = Harness.smp_session1 ~n_harts:2 spin_src in
  let smp = s.Harness.smp in
  Harness.smp_start s ~hart:1 "w" [ 50 ];
  let r = Smp.stop_machine smp (fun () -> Smp.stop_machine smp (fun () -> 7)) in
  check_int "nested thunk ran directly" 7 r;
  check_int "one rendezvous, not two" 1 (Smp.rendezvous_count smp);
  Harness.smp_run s

(* A hart that never re-enables interrupts can never ack: the gather
   must fault (instead of hanging) and the cleanup must leave the
   container consistent — nothing parked, nothing pending. *)
let test_rendezvous_deadlock_faults () =
  let p = build hang_src in
  let smp = Smp.create ~max_steps:20_000 ~n_harts:2 p.Core.Compiler.p_image in
  Smp.start_call smp ~hart:1 "hang" [];
  let m1 = Smp.machine smp 1 in
  let guard = ref 100 in
  while m1.Machine.irq_enabled && !guard > 0 do
    decr guard;
    ignore (Smp.step_hart smp 1)
  done;
  (match Smp.stop_machine smp (fun () -> 0) with
  | _ -> Alcotest.fail "expected the gather to fault"
  | exception Machine.Fault _ -> ());
  check_bool "victim not left parked" true (Smp.runnable smp 1);
  (* the failed rendezvous was fully cleaned up: a new one can post *)
  check_int "a new rendezvous can post" 1 (Smp.rendezvous_post smp ~initiator:0)

(* ------------------------------------------------------------------ *)
(* Cross-modifying text (text_poke)                                    *)
(* ------------------------------------------------------------------ *)

let test_text_poke_phases_and_brk_spin () =
  let s = Harness.smp_session1 ~n_harts:2 poke_src in
  let smp = s.Harness.smp in
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let seven = Image.symbol img "seven" and nine = Image.symbol img "nine" in
  let nine_sz = Image.symbol_size img "nine" in
  check_int "twin bodies" (Image.symbol_size img "seven") nine_sz;
  let nine_bytes = Image.read_bytes img nine nine_sz in
  Harness.smp_start s ~hart:1 "loop" [ 5 ];
  park_hart s ~hart:1 "seven";
  let m1 = Smp.machine smp 1 in
  Smp.text_poke_start smp ~addr:seven nine_bytes;
  let c0 = m1.Machine.perf.Perf.cycles in
  ignore (Smp.step_hart smp 1);
  ignore (Smp.step_hart smp 1);
  check_int "spinning on the trap byte" seven m1.Machine.pc;
  check_bool "the spin charges cycles" true (m1.Machine.perf.Perf.cycles > c0);
  check_bool "tail phase does not finish the poke" false (Smp.text_poke_step smp);
  ignore (Smp.step_hart smp 1);
  check_int "still spinning while the trap guards the entry" seven m1.Machine.pc;
  check_bool "final phase finishes the poke" true (Smp.text_poke_step smp);
  Harness.smp_run s;
  check_int "every call saw the patched body" 45 (Harness.smp_get s "acc")

(* Exhaustive schedule enumeration: interleave the three poke phases at
   every position among 8 hart-execution slots.  Under the breakpoint
   protocol each of the 3 calls must return the old value or the new
   one — never a torn hybrid, never a fault. *)
let test_poke_interleaving_never_tears () =
  let s = Harness.smp_session1 ~n_harts:2 poke_src in
  let smp = s.Harness.smp in
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let seven = Image.symbol img "seven" and nine = Image.symbol img "nine" in
  let nine_sz = Image.symbol_size img "nine" in
  let nine_bytes = Image.read_bytes img nine nine_sz in
  let orig_bytes = Image.read_bytes img seven nine_sz in
  let n_slots = 8 in
  let combos = ref 0 in
  for a = 0 to n_slots do
    for b = a to n_slots do
      for c = b to n_slots do
        incr combos;
        Harness.smp_set s "acc" 0;
        Harness.smp_start s ~hart:1 "loop" [ 3 ];
        let positions = [| a; b; c |] in
        let ops =
          [|
            (fun () -> Smp.text_poke_start smp ~addr:seven nine_bytes);
            (fun () -> ignore (Smp.text_poke_step smp));
            (fun () -> ignore (Smp.text_poke_step smp));
          |]
        in
        let applied = ref 0 in
        for slot = 0 to n_slots - 1 do
          while !applied < 3 && positions.(!applied) = slot do
            ops.(!applied) ();
            incr applied
          done;
          ignore (Smp.step_hart smp 1)
        done;
        while !applied < 3 do
          ops.(!applied) ();
          incr applied
        done;
        Harness.smp_run s;
        let acc = Harness.smp_get s "acc" in
        if not (acc >= 21 && acc <= 27 && (acc - 21) mod 2 = 0) then
          Alcotest.failf "torn result %d for poke positions (%d,%d,%d)" acc a b
            c;
        (* restore the original body for the next schedule *)
        Smp.text_poke smp ~addr:seven orig_bytes
      done
    done
  done;
  check_bool "enumerated the full schedule space" true (!combos >= 150)

(* ------------------------------------------------------------------ *)
(* Cross-hart quiescence (safe commit)                                 *)
(* ------------------------------------------------------------------ *)

let test_cross_hart_quiescence_defers () =
  let s = Harness.smp_session1 ~n_harts:2 defer_src in
  let smp = s.Harness.smp in
  Harness.smp_set s "m" 1;
  Harness.smp_start s ~hart:1 "driver" [];
  park_hart s ~hart:1 "f";
  (* hart 0 is idle — only the cross-hart scanner can see hart 1's
     activation inside f *)
  let m1 = Smp.machine smp 1 in
  check_bool "hart 1's pc is a live code address" true
    (List.mem m1.Machine.pc (Smp.live_code_addrs smp));
  check_bool "frames aggregate across harts" true
    (List.length (Smp.call_frames smp) >= 2);
  check_int "live function not bound now" 0 (Harness.smp_commit_safe s);
  check_bool "f journaled, not patched" true
    (Runtime.pending s.Harness.sm_runtime = [ "f" ]);
  (* the binding decision is journaled: flipping the switch now must not
     change which variant drains at the safepoint *)
  Harness.smp_set s "m" 0;
  Harness.smp_run s;
  check_int "variant landed between the calls" 102
    (Harness.smp_result s ~hart:1);
  check_bool "journal drained" true (Runtime.pending s.Harness.sm_runtime = [])

let test_per_hart_safepoint_drains_once () =
  let s = Harness.smp_session1 ~n_harts:2 defer_src in
  Harness.enable_smp_tracing s;
  Harness.smp_set s "m" 1;
  Harness.smp_start s ~hart:1 "driver" [];
  park_hart s ~hart:1 "f";
  ignore (Harness.smp_commit_safe s);
  Harness.smp_run s;
  let drains =
    List.length
      (List.filter
         (fun (st : Trace.stamped) ->
           match st.Trace.ev with Trace.Pending_drained _ -> true | _ -> false)
         (Harness.smp_trace_events s))
  in
  check_int "drained exactly once" 1 drains;
  let st = Runtime.stats s.Harness.sm_runtime in
  check_int "applied exactly once" 1 st.Runtime.st_safe_applied;
  check_int "no rollbacks" 0 st.Runtime.st_safe_rolled_back;
  check_int "journal empty" 0 st.Runtime.st_pending

(* A safe commit injected mid-run while one hart executes the patched
   function and another spins: under every pinned seed the flip is
   atomic per call — each tick adds 1 (old variant) or 2 (new), and
   the total stays in the reachable window. *)
let test_midrun_safe_flip_deterministic () =
  let once seed =
    let s = Harness.smp_session1 ~n_harts:2 ~seed tick_src in
    Harness.enable_smp_tracing s;
    Harness.smp_set s "mode" 0;
    ignore (Harness.smp_commit s);
    Harness.smp_start s ~hart:0 "spin" [ 200 ];
    Harness.smp_start s ~hart:1 "work" [ 30 ];
    let more = ref true in
    for _ = 1 to 150 do
      if !more then more := Harness.smp_step s
    done;
    Harness.smp_set s "mode" 1;
    ignore (Harness.smp_commit_safe s);
    Harness.smp_run s;
    (s, Harness.smp_get s "acc")
  in
  List.iter
    (fun seed ->
      with_artifact ~name:"midrun-flip" ~seed @@ fun dump ->
      let s, acc = once seed in
      dump :=
        (fun () ->
          Printf.sprintf "{\"seed\": %d, \"acc\": %d, \"trace\": %s}" seed acc
            (Harness.smp_trace_dump s));
      if acc < 30 || acc > 60 then
        Alcotest.failf "torn tick total %d (seed %d)" acc seed;
      let _, acc' = once seed in
      check_int (Printf.sprintf "replay is bit-identical (seed %d)" seed) acc
        acc')
    seeds

(* ------------------------------------------------------------------ *)
(* Icache coherence and the drop-ack chaos channel                     *)
(* ------------------------------------------------------------------ *)

let test_commit_reaches_every_hart () =
  let s = Harness.smp_session1 ~n_harts:2 tick_src in
  Harness.smp_set s "mode" 0;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:1 "work" [ 10 ];
  Harness.smp_run s;
  check_int "mode 0 adds 1 per call" 10 (Harness.smp_get s "acc");
  Harness.smp_set s "mode" 1;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:1 "work" [ 10 ];
  Harness.smp_run s;
  check_int "hart 1 runs the new variant" 30 (Harness.smp_get s "acc");
  Harness.smp_start s ~hart:0 "work" [ 5 ];
  Harness.smp_run s;
  check_int "hart 0 runs the new variant" 40 (Harness.smp_get s "acc")

(* Break hart 1's flush channel: after the next commit it keeps
   executing its stale decoded call and adds 1 per tick while healthy
   hart 0 adds 2 — the observable divergence the fuzzer's drop-ack
   chaos mode must catch. *)
let test_dropped_flush_leaves_stale_icache () =
  let s = Harness.smp_session1 ~n_harts:2 tick_src in
  Harness.smp_set s "mode" 0;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:1 "work" [ 10 ];
  Harness.smp_run s;
  check_int "warm cache on the victim" 10 (Harness.smp_get s "acc");
  Smp.set_drop_ack s.Harness.smp (Some 1);
  Harness.smp_set s "mode" 1;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:1 "work" [ 10 ];
  Harness.smp_run s;
  check_int "victim executes the stale variant" 20 (Harness.smp_get s "acc");
  Harness.smp_start s ~hart:0 "work" [ 10 ];
  Harness.smp_run s;
  check_int "healthy hart is coherent" 40 (Harness.smp_get s "acc")

let test_flush_events_carry_hart_ids () =
  let s = Harness.smp_session1 ~n_harts:2 tick_src in
  Harness.enable_smp_tracing s;
  Harness.smp_set s "mode" 1;
  ignore (Harness.smp_commit s);
  let flush_harts =
    List.filter_map
      (fun (st : Trace.stamped) ->
        match st.Trace.ev with
        | Trace.Icache_flush { hart; _ } -> Some hart
        | _ -> None)
      (Harness.smp_trace_events s)
  in
  check_bool "hart 0 flushed" true (List.mem 0 flush_harts);
  check_bool "hart 1 flushed" true (List.mem 1 flush_harts);
  check_bool "no phantom harts" true
    (List.for_all (fun h -> h = 0 || h = 1) flush_harts)

let test_send_ack_pairing_in_trace () =
  let s = Harness.smp_session1 ~n_harts:2 Spinlock.contended_source in
  Harness.enable_smp_tracing s;
  Harness.smp_set s "config_smp" 1;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:0 "worker" [ 20 ];
  Harness.smp_start s ~hart:1 "worker" [ 20 ];
  let more = ref true in
  for _ = 1 to 120 do
    if !more then more := Harness.smp_step s
  done;
  let m0 = Smp.machine s.Harness.smp 0 in
  while !more && not m0.Machine.irq_enabled do
    more := Harness.smp_step s
  done;
  ignore (Harness.smp_commit s);
  Harness.smp_run s;
  check_int "counter exact across the rendezvous" 40 (Harness.smp_get s "counter");
  let sends = ref 0 and acks = ref 0 and ends = ref 0 in
  List.iter
    (fun (st : Trace.stamped) ->
      match st.Trace.ev with
      | Trace.Ipi_send _ -> incr sends
      | Trace.Ipi_ack { wait; _ } ->
          check_bool "ack latency is non-negative" true (wait >= 0.0);
          incr acks
      | Trace.Rendezvous_end { latency; _ } ->
          check_bool "rendezvous latency is non-negative" true (latency >= 0.0);
          incr ends
      | _ -> ())
    (Harness.smp_trace_events s);
  check_bool "IPIs were posted" true (!sends >= 1);
  check_int "every send has its ack" !sends !acks;
  check_bool "rendezvous spans closed" true (!ends >= 1)

(* ------------------------------------------------------------------ *)
(* Profiling and accounting                                            *)
(* ------------------------------------------------------------------ *)

let test_per_hart_stackprof_attribution () =
  let s = Harness.smp_session1 ~n_harts:2 ~seed:5 Spinlock.contended_source in
  Harness.smp_set s "config_smp" 1;
  ignore (Harness.smp_commit s);
  Harness.enable_smp_stack_profiling ~interval:7 s;
  Harness.smp_start s ~hart:0 "worker" [ 30 ];
  Harness.smp_start s ~hart:1 "worker" [ 30 ];
  Harness.smp_run s;
  check_int "one report per hart" 2
    (Array.length (Harness.smp_stack_reports s));
  let folded = Harness.smp_folded_dump s in
  check_bool "hart 0 frames attributed" true (contains folded "hart0;");
  check_bool "hart 1 frames attributed" true (contains folded "hart1;")

let test_clock_and_seed_accessors () =
  let s = Harness.smp_session1 ~n_harts:2 ~seed:42 spin_src in
  let smp = s.Harness.smp in
  check_int "seed is recorded" 42 (Smp.seed smp);
  Harness.smp_start s ~hart:0 "w" [ 10 ];
  Harness.smp_start s ~hart:1 "w" [ 25 ];
  Harness.smp_run s;
  let sum =
    (Smp.machine smp 0).Machine.perf.Perf.cycles
    +. (Smp.machine smp 1).Machine.perf.Perf.cycles
  in
  check_bool "clock sums per-hart cycles" true (Smp.clock smp = sum);
  check_bool "clock advanced" true (Smp.clock smp > 0.0)

(* ------------------------------------------------------------------ *)
(* On-stack replacement under the rendezvous                           *)
(* ------------------------------------------------------------------ *)

(* Hart 0 loops inside a multiversed body while hart 1 runs independent
   work; a safe commit journaled mid-loop can only drain by *moving* hart
   0's activation into the variant at one of its safepoints — and the
   move runs inside the stop_machine rendezvous, with hart 1 parked
   mid-handshake.  Swept over the pinned seed set: every schedule must
   transfer, drain, and leave both harts' results exact. *)
let osr_smp_src =
  {|
  multiverse bool m;
  int w;
  int z;
  void tick() { w = w + 1; }
  multiverse int spin(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
      tick();
      if (m) { acc = acc + 2; } else { acc = acc + 1; }
      i = i + 1;
    }
    return acc;
  }
  int driver(int n) { w = 0; return spin(n); }
  int other(int n) {
    int i = 0;
    while (i < n) { z = z + 1; i = i + 1; }
    return z;
  }
|}

let osr_run_once ~seed =
  let s = Harness.smp_session1 ~n_harts:2 ~seed osr_smp_src in
  Harness.enable_smp_osr s;
  Harness.smp_set s "m" 1;
  Harness.smp_start s ~hart:0 "driver" [ 30 ];
  Harness.smp_start s ~hart:1 "other" [ 100 ];
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let spin_addr = Image.symbol img "spin" in
  let spin_size = Image.symbol_size img "spin" in
  let m0 = Smp.machine s.Harness.smp 0 in
  let guard = ref 100_000 in
  while
    (m0.Machine.pc < spin_addr || m0.Machine.pc >= spin_addr + spin_size)
    && !guard > 0
  do
    decr guard;
    ignore (Harness.smp_step s)
  done;
  let bound = Harness.smp_commit_safe s in
  Harness.smp_set s "m" 0;
  Harness.smp_run s;
  (s, bound)

let test_osr_transfer_deterministic_per_seed () =
  List.iter
    (fun seed ->
      with_artifact ~name:"osr-transfer" ~seed @@ fun dump ->
      let s, bound = osr_run_once ~seed in
      let smp = s.Harness.smp in
      let st = Runtime.stats s.Harness.sm_runtime in
      dump :=
        (fun () ->
          Printf.sprintf
            "{\"seed\": %d, \"transfers\": %d, \"aborts\": %d, \"pending\": %d}"
            seed st.Runtime.st_osr_transfers st.Runtime.st_osr_aborts
            st.Runtime.st_pending);
      check_int (Printf.sprintf "live spin deferred (seed %d)" seed) 0 bound;
      check_bool (Printf.sprintf "transferred (seed %d)" seed) true
        (st.Runtime.st_osr_transfers >= 1);
      check_int (Printf.sprintf "journal drained (seed %d)" seed) 0
        st.Runtime.st_pending;
      check_bool (Printf.sprintf "rendezvous ran (seed %d)" seed) true
        (Smp.rendezvous_count smp >= 1);
      check_int (Printf.sprintf "hart 1 exact (seed %d)" seed) 100
        (Harness.smp_result s ~hart:1);
      let r0 = Harness.smp_result s ~hart:0 in
      check_bool (Printf.sprintf "hart 0 in envelope (seed %d, %d)" seed r0) true
        (r0 >= 30 && r0 <= 60);
      (* the schedule — and so the transfer point and the result — is a
         pure function of the seed *)
      let s', _ = osr_run_once ~seed in
      check_int (Printf.sprintf "replay is bit-equal (seed %d)" seed) r0
        (Harness.smp_result s' ~hart:0))
    seeds

let suite =
  [
    tc "single-hart container is bit-identical" test_single_hart_bit_identity;
    tc "per-hart stacks and registers are isolated" test_per_hart_isolation;
    tc "round-robin alternates fairly" test_round_robin_fairness;
    tc "round-robin schedule is deterministic" test_round_robin_determinism;
    tc "weighted-random schedule is deterministic" test_weighted_random_determinism;
    tc "race-free outcome is seed-invariant" test_seed_invariance_race_free;
    tc "zero weight starves only under competition"
      test_zero_weight_starves_under_competition;
    tc "all-zero weights fall back to lowest hart"
      test_all_zero_weights_run_lowest_first;
    tc_slow "contended spinlock is exact on 2 harts" test_contended_exact_two_harts;
    tc_slow "contended spinlock is exact on 4 harts" test_contended_exact_four_harts;
    tc "elided lock races on 2 harts" test_elided_lock_races;
    tc_slow "mid-run commit rendezvous under contention"
      test_midrun_commit_under_contention;
    tc "pvops stress across harts (native)" test_pvops_native_smp;
    tc "pvops stress across harts (xen)" test_pvops_xen_smp;
    tc "idle harts owe no acks" test_idle_harts_owe_no_acks;
    tc "cli section delays the ack" test_cli_section_delays_ack;
    tc "handshake enumeration, 2 harts" test_handshake_enumeration_two_harts;
    tc "handshake enumeration, 3 harts" test_handshake_enumeration_three_harts;
    tc "nested stop_machine runs the thunk directly" test_nested_stop_machine;
    tc "rendezvous deadlock faults and cleans up" test_rendezvous_deadlock_faults;
    tc "text_poke phases and Brk spin" test_text_poke_phases_and_brk_spin;
    tc_slow "poke/execute interleaving never tears"
      test_poke_interleaving_never_tears;
    tc "cross-hart quiescence defers a live patch"
      test_cross_hart_quiescence_defers;
    tc "per-hart safepoints drain exactly once"
      test_per_hart_safepoint_drains_once;
    tc_slow "mid-run safe flip is deterministic per seed"
      test_midrun_safe_flip_deterministic;
    tc "commit reaches every hart's icache" test_commit_reaches_every_hart;
    tc "dropped flush leaves a stale icache" test_dropped_flush_leaves_stale_icache;
    tc "flush events carry hart ids" test_flush_events_carry_hart_ids;
    tc "IPI sends pair with acks in the trace" test_send_ack_pairing_in_trace;
    tc "per-hart stack profile attribution" test_per_hart_stackprof_attribution;
    tc_slow "OSR transfer is deterministic per seed"
      test_osr_transfer_deterministic_per_seed;
    tc "clock and seed accessors" test_clock_and_seed_accessors;
  ]
