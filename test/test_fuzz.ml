(* The differential fuzzing subsystem (lib/fuzz) itself.

   Deterministic generation, a clean oracle sweep, the chaos modes
   (provoked icache-flush bugs must be caught AND shrink to a small
   reproducer), corpus round-trips, and a fuzz-derived regression: under
   randomized commit/revert schedules every drained pending set reports
   [Pending_drained] exactly once. *)

open Util
module Gen = Mv_fuzz.Gen
module Schedule = Mv_fuzz.Schedule
module Oracle = Mv_fuzz.Oracle
module Shrink = Mv_fuzz.Shrink
module Corpus = Mv_fuzz.Corpus
module Driver = Mv_fuzz.Driver
module Machine = Mv_vm.Machine
module Runtime = Core.Runtime
module Trace = Mv_obs.Trace

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.case seed and b = Gen.case seed in
      check_string (Printf.sprintf "seed %d source" seed) a.Gen.c_src b.Gen.c_src;
      check_bool
        (Printf.sprintf "seed %d assignments" seed)
        true
        (a.Gen.c_assignments = b.Gen.c_assignments);
      check_bool
        (Printf.sprintf "seed %d schedule" seed)
        true
        (Driver.schedule_for a seed = Driver.schedule_for b seed))
    [ 1; 7; 42 ]

let test_generator_surface () =
  (* across a window of seeds the generator must exercise the whole
     language surface the fuzzer claims to cover *)
  let srcs =
    String.concat "\n" (List.init 40 (fun i -> (Gen.case (100 + i)).Gen.c_src))
  in
  let contains needle =
    let n = String.length needle and m = String.length srcs in
    let rec go i = i + n <= m && (String.sub srcs i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      check_bool (needle ^ " appears in generated programs") true (contains needle))
    [
      "multiverse";
      "values(";
      "bind(";
      "noinline";
      "saveall";
      "enum";
      "for (";
      "while";
      "switch (";
      "driver";
      "*";
      "&";
    ]

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let test_oracle_sweep_clean () =
  let summary =
    Driver.run ~cfg:Gen.small_cfg ~seed:1 ~iters:15 ()
  in
  check_int "cases tested" 15 summary.Driver.s_tested;
  check_int "no divergences on the real pipeline" 0
    (List.length summary.Driver.s_reports)

let test_chaos_is_caught_and_shrunk () =
  (* skipping the icache flush must be detected and must shrink small *)
  let summary =
    Driver.run ~chaos:Oracle.Skip_flush ~seed:1 ~iters:10 ~shrink_budget:400 ()
  in
  match summary.Driver.s_reports with
  | [] -> Alcotest.fail "skip-flush chaos was not detected"
  | r :: _ ->
      let shrunk = r.Driver.rp_shrunk.Shrink.sh_case in
      let lines = List.length (String.split_on_char '\n' shrunk.Gen.c_src) in
      check_bool
        (Printf.sprintf "reproducer is small (%d lines)" lines)
        true (lines < 30);
      (* the shrunk case still diverges under chaos... *)
      check_bool "shrunk case still diverges under chaos" true
        (Oracle.run_named ~chaos:Oracle.Skip_flush
           r.Driver.rp_entry.Corpus.e_oracle shrunk
           r.Driver.rp_shrunk.Shrink.sh_sched
        <> None);
      (* ...and is clean on the real pipeline (the bug was injected) *)
      check_bool "shrunk case is clean without chaos" true
        (Oracle.run_named r.Driver.rp_entry.Corpus.e_oracle shrunk
           r.Driver.rp_shrunk.Shrink.sh_sched
        = None)

let test_lost_flush_is_caught () =
  let summary =
    Driver.run ~chaos:Oracle.Lost_flush ~seed:1 ~iters:30 ~shrink_budget:0 ()
  in
  check_bool "lost-flush chaos detected" true (summary.Driver.s_reports <> [])

(* The multi-hart oracle: every generated case, run with the driver on
   hart 0 and a patched-under-load worker on the last hart, must behave
   identically under two seeded 2-hart interleavings and the 1-hart
   container. *)
let test_smp_oracle_clean () =
  List.iter
    (fun seed ->
      let case = Gen.case ~cfg:Gen.small_cfg seed in
      let sched = Driver.schedule_for case seed in
      match Oracle.run_named "smp-schedule-equiv" case sched with
      | None -> ()
      | Some d ->
          Alcotest.failf "seed %d: %a" seed Oracle.pp_divergence d)
    [ 1; 7; 42 ]

(* A severed IPI channel (the victim hart is neither stopped by the
   rendezvous nor re-flushed) must be caught — by the smp oracle
   specifically, via its post-commit coherence probe — and the same
   cases must be clean when the channel is healthy. *)
let test_drop_ack_is_caught () =
  List.iter
    (fun seed ->
      let case = Gen.case ~cfg:Gen.small_cfg seed in
      let sched = Driver.schedule_for case seed in
      match Oracle.run_named ~chaos:Oracle.Drop_ack "smp-schedule-equiv" case sched with
      | None -> Alcotest.failf "seed %d: drop-ack chaos was not detected" seed
      | Some d ->
          check_string "caught by the smp oracle" "smp-schedule-equiv"
            d.Oracle.d_oracle;
          check_bool
            (Printf.sprintf "divergence blames a stale hart (%s)" d.Oracle.d_detail)
            true
            (string_contains d.Oracle.d_detail "stale");
          check_bool "same case is clean without chaos" true
            (Oracle.run_named "smp-schedule-equiv" case sched = None))
    [ 1; 7 ];
  (* the other oracles ignore Drop_ack: a full sweep under it must blame
     only the smp oracle, so the driver attributes the bug correctly *)
  let summary =
    Driver.run ~cfg:Gen.small_cfg ~chaos:Oracle.Drop_ack ~seed:1 ~iters:5
      ~shrink_budget:0 ()
  in
  check_bool "driver sweep under drop-ack detects divergences" true
    (summary.Driver.s_reports <> []);
  List.iter
    (fun r ->
      check_string "every report names the smp oracle" "smp-schedule-equiv"
        r.Driver.rp_entry.Corpus.e_oracle)
    summary.Driver.s_reports

(* A variant-cache eviction that forgets to invalidate the dedup table
   (so a later structural-hash hit links a freed-and-recycled block)
   must be caught — by the lazy oracle specifically, via its
   evict-and-recycle churn probe — and the same cases must be clean
   when the cache is healthy. *)
let test_stale_cache_is_caught () =
  List.iter
    (fun seed ->
      let case = Gen.case ~cfg:Gen.small_cfg seed in
      let sched = Driver.schedule_for case seed in
      match
        Oracle.run_named ~chaos:Oracle.Stale_cache "lazy-eager-equiv" case
          sched
      with
      | None -> Alcotest.failf "seed %d: stale-cache chaos was not detected" seed
      | Some d ->
          check_string "caught by the lazy oracle" "lazy-eager-equiv"
            d.Oracle.d_oracle;
          check_bool
            (Printf.sprintf "divergence blames a stale body (%s)" d.Oracle.d_detail)
            true
            (string_contains d.Oracle.d_detail "stale");
          check_bool "same case is clean without chaos" true
            (Oracle.run_named "lazy-eager-equiv" case sched = None))
    [ 1; 7 ];
  (* the other oracles never enable lazy materialization: a full sweep
     under stale-cache must blame only the lazy oracle, so the driver
     attributes the bug correctly *)
  let summary =
    Driver.run ~cfg:Gen.small_cfg ~chaos:Oracle.Stale_cache ~seed:1 ~iters:5
      ~shrink_budget:0 ()
  in
  check_bool "driver sweep under stale-cache detects divergences" true
    (summary.Driver.s_reports <> []);
  List.iter
    (fun r ->
      check_string "every report names the lazy oracle" "lazy-eager-equiv"
        r.Driver.rp_entry.Corpus.e_oracle)
    summary.Driver.s_reports

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let case = Gen.case ~cfg:Gen.small_cfg 3 in
  let sched = Driver.schedule_for case 3 in
  let entry =
    {
      Corpus.e_seed = 3;
      e_oracle = "interp-vs-vm";
      e_detail = "synthetic entry for the round-trip test";
      e_src = case.Gen.c_src;
      e_args = case.Gen.c_args;
      e_assignments = case.Gen.c_assignments;
      e_schedule = sched;
    }
  in
  (* JSON round-trip preserves every field *)
  (match Corpus.of_json (Corpus.to_json entry) with
  | Error m -> Alcotest.failf "corpus decode failed: %s" m
  | Ok entry' ->
      check_bool "entry round-trips" true (entry' = entry));
  (* disk round-trip through save/load_dir *)
  let dir = Filename.temp_file "mvfuzz" "corpus" in
  Sys.remove dir;
  let path = Corpus.save ~dir entry in
  (match Corpus.load_file path with
  | Error m -> Alcotest.failf "corpus load failed: %s" m
  | Ok entry' -> check_bool "saved entry loads back equal" true (entry' = entry));
  (match Corpus.load_dir dir with
  | [ (_, Ok entry') ] ->
      check_bool "load_dir finds the entry" true (entry' = entry)
  | other -> Alcotest.failf "load_dir returned %d entries" (List.length other));
  (* the stored source rebuilds into a runnable case *)
  let rebuilt = Corpus.to_case entry in
  check_string "rebuilt source" case.Gen.c_src rebuilt.Gen.c_src;
  Sys.remove path;
  Sys.rmdir dir

let test_corpus_check_clean () =
  let case = Gen.case ~cfg:Gen.small_cfg 4 in
  let entry =
    {
      Corpus.e_seed = 4;
      e_oracle = "commit-soundness";
      e_detail = "clean case: check_corpus must report it fixed";
      e_src = case.Gen.c_src;
      e_args = case.Gen.c_args;
      e_assignments = case.Gen.c_assignments;
      e_schedule = [];
    }
  in
  let dir = Filename.temp_file "mvfuzz" "corpus2" in
  Sys.remove dir;
  let path = Corpus.save ~dir entry in
  let summary = Driver.check_corpus ~dir () in
  check_int "one entry checked" 1 summary.Driver.s_tested;
  check_int "clean entry passes" 0 (List.length summary.Driver.s_reports);
  Sys.remove path;
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Fuzz-derived regression: Pending_drained is exactly-once            *)
(* ------------------------------------------------------------------ *)

(* Replays the subject side of the schedule-equiv oracle with a trace
   ring attached: mid-run safe commits/reverts journal pending sets when
   frames are live, and every set that drains must report Pending_drained
   exactly once — a set that drained twice would double-apply patches. *)
let drained_pset_ids case (sched : Schedule.t) : int list =
  let program = Core.Compiler.build_string case.Gen.c_src in
  let img = program.Core.Compiler.p_image in
  let machine = Machine.create img in
  let rt =
    Runtime.create img ~flush:(fun ~addr ~len ->
        Machine.flush_icache machine ~addr ~len)
  in
  let ring = Trace.ring ~clock:(fun () -> 0.0) () in
  Runtime.set_tracer rt (Some (Trace.sink ring));
  Runtime.set_live_scanner rt (fun () -> Machine.live_code_addrs machine);
  let apply (a : Gen.assignment) =
    List.iter
      (fun (name, v) ->
        let w =
          match List.find_opt (fun sw -> sw.Gen.sw_name = name) case.Gen.c_switches with
          | Some sw -> Minic.Ast.ty_width sw.Gen.sw_ty
          | None -> 8
        in
        Mv_link.Image.write img (Mv_link.Image.symbol img name) v w)
      a.Gen.a_ints;
    List.iter
      (fun (name, target) ->
        Mv_link.Image.write img
          (Mv_link.Image.symbol img name)
          (Mv_link.Image.symbol img target)
          8)
      a.Gen.a_ptrs
  in
  List.iter
    (fun (round : Schedule.round) ->
      List.iter
        (fun (op : Schedule.top_op) ->
          match op with
          | Schedule.Tset a -> apply a
          | Schedule.Tcommit -> ignore (Runtime.commit rt)
          | Schedule.Trevert -> ignore (Runtime.revert rt)
          | Schedule.Tcommit_safe -> ignore (Runtime.commit_safe rt)
          | Schedule.Trevert_safe -> ignore (Runtime.revert_safe rt)
          | Schedule.Tdrain -> Runtime.safepoint rt)
        round.Schedule.r_top;
      let polls = ref 0 in
      let todo = ref round.Schedule.r_mid in
      Machine.set_safepoint machine
        (Some
           (fun () ->
             let i = !polls in
             incr polls;
             let now, later = List.partition (fun (ix, _) -> ix = i) !todo in
             todo := later;
             List.iter
               (fun ((_, op) : int * Schedule.mid_op) ->
                 let policy d = if d then Runtime.Defer else Runtime.Deny in
                 match op with
                 | Schedule.Mcommit_safe d ->
                     ignore (Runtime.commit_safe ~policy:(policy d) rt)
                 | Schedule.Mrevert_safe d ->
                     ignore (Runtime.revert_safe ~policy:(policy d) rt)
                 | Schedule.Mdrain -> ())
               now;
             Runtime.safepoint rt))
        ;
      ignore (Machine.call machine case.Gen.c_entry [ round.Schedule.r_arg ]))
    sched;
  Machine.set_safepoint machine None;
  ignore (Runtime.revert rt);
  Runtime.safepoint rt;
  List.filter_map
    (fun (st : Trace.stamped) ->
      match st.Trace.ev with
      | Trace.Pending_drained { pset; _ } -> Some pset
      | _ -> None)
    (Trace.events ring)

let test_pending_drained_exactly_once () =
  let total = ref 0 in
  List.iter
    (fun seed ->
      let case = Gen.case ~cfg:Gen.small_cfg seed in
      let sched = Driver.schedule_for case seed in
      let drained = drained_pset_ids case sched in
      total := !total + List.length drained;
      check_bool
        (Printf.sprintf "seed %d: every drained set reported exactly once" seed)
        true
        (List.length (List.sort_uniq compare drained) = List.length drained))
    (List.init 25 (fun i -> i + 1));
  (* the property is vacuous unless some schedule actually drains *)
  check_bool "at least one pending set drained across the sweep" true (!total > 0)

let suite =
  [
    tc "generator is deterministic" test_generator_deterministic;
    tc "generator covers the language surface" test_generator_surface;
    tc "oracle sweep over seeds is clean" test_oracle_sweep_clean;
    tc_slow "skip-flush chaos is caught and shrinks small" test_chaos_is_caught_and_shrunk;
    tc_slow "lost-flush chaos is caught" test_lost_flush_is_caught;
    tc "smp oracle is clean on the real pipeline" test_smp_oracle_clean;
    tc_slow "drop-ack chaos is caught by the smp oracle" test_drop_ack_is_caught;
    tc_slow "stale-cache chaos is caught by the lazy oracle" test_stale_cache_is_caught;
    tc "corpus entries round-trip (json, disk)" test_corpus_roundtrip;
    tc "check_corpus passes on a clean entry" test_corpus_check_clean;
    tc_slow "Pending_drained fires exactly once per drained set"
      test_pending_drained_exactly_once;
  ]
