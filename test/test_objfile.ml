(* Object-file unit tests: section buffers, alignment, symbols and the
   relocation records the linker consumes. *)

open Util
module Objfile = Mv_codegen.Objfile

let test_append_and_size () =
  let o = Objfile.create "u" in
  check_int "empty" 0 (Objfile.section_size o Objfile.Text);
  let off1 = Objfile.append o Objfile.Text (Bytes.make 10 'x') in
  let off2 = Objfile.append o Objfile.Text (Bytes.make 6 'y') in
  check_int "first at 0" 0 off1;
  check_int "second appended" 10 off2;
  check_int "size" 16 (Objfile.section_size o Objfile.Text);
  (* sections are independent *)
  check_int "data untouched" 0 (Objfile.section_size o Objfile.Data)

let test_align () =
  let o = Objfile.create "u" in
  ignore (Objfile.append o Objfile.Text (Bytes.make 3 'x'));
  let aligned = Objfile.align o Objfile.Text 16 in
  check_int "aligned to 16" 16 aligned;
  check_int "padded with zeros" 0
    (Char.code (Bytes.get (Objfile.section_contents o Objfile.Text) 5));
  (* aligning an aligned section is a no-op *)
  check_int "idempotent" 16 (Objfile.align o Objfile.Text 16)

let test_symbols () =
  let o = Objfile.create "u" in
  Objfile.add_symbol o
    { Objfile.s_name = "f"; s_section = Objfile.Text; s_offset = 0; s_size = 8 };
  check_bool "found" true (Objfile.find_symbol o "f" <> None);
  check_bool "missing" true (Objfile.find_symbol o "g" = None);
  match
    Objfile.add_symbol o
      { Objfile.s_name = "f"; s_section = Objfile.Data; s_offset = 0; s_size = 8 }
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate symbols must be rejected"

let test_reloc_accumulation () =
  let o = Objfile.create "u" in
  Objfile.add_reloc o
    { Objfile.r_section = Objfile.Text; r_offset = 1; r_kind = Objfile.Rel32;
      r_sym = "a"; r_addend = -4 };
  Objfile.add_reloc o
    { Objfile.r_section = Objfile.Data; r_offset = 0; r_kind = Objfile.Abs64;
      r_sym = "b"; r_addend = 0 };
  let rs = Objfile.relocs o in
  check_int "both recorded" 2 (List.length rs);
  (* order preserved (insertion order) *)
  check_string "first sym" "a" (List.nth rs 0).Objfile.r_sym

let test_section_names () =
  check_string "variables section name" "multiverse.variables"
    (Objfile.section_name Objfile.Mv_variables);
  check_string "functions section name" "multiverse.functions"
    (Objfile.section_name Objfile.Mv_functions);
  check_string "callsites section name" "multiverse.callsites"
    (Objfile.section_name Objfile.Mv_callsites);
  check_string "framemaps section name" "multiverse.framemaps"
    (Objfile.section_name Objfile.Mv_framemaps);
  check_int "six sections" 6 (List.length Objfile.all_sections)

let test_guard_pretty () =
  let g =
    [ { Core.Guard.g_var = "A"; g_lo = 1; g_hi = 1 };
      { Core.Guard.g_var = "B"; g_lo = 0; g_hi = 1 } ]
  in
  check_string "range formatting" "A=1, B=0..1" (Core.Guard.to_string g)

let test_domain_cardinal () =
  check_int "values cardinal" 3 (Core.Domain.cardinal (Core.Domain.Values [ 0; 1; 2 ]));
  check_int "fnptr cardinal" 0 (Core.Domain.cardinal Core.Domain.Fnptr);
  check_int "empty product" 1 (List.length (Core.Domain.cross_product []))

let suite =
  [
    tc "append and section sizes" test_append_and_size;
    tc "alignment" test_align;
    tc "symbol table" test_symbols;
    tc "relocation records" test_reloc_accumulation;
    tc "section names" test_section_names;
    tc "guard pretty-printing" test_guard_pretty;
    tc "domain helpers" test_domain_cardinal;
  ]
