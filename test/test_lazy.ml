(* The lazy-vs-eager battery: demand-driven variant materialization must
   be observationally identical to the eager pre-expansion (results,
   fallback behavior), while holding the cache invariants — first commit
   materializes exactly once, structural-hash hits link no new bytes,
   evict/re-commit round trips are bit-identical, live victims drain
   through the safe-commit/OSR paths, and the byte budget is never
   exceeded, including across a randomized pinned-seed commit storm and
   a 20-switch (~1M valuation) workload. *)

open Util
module H = Mv_workloads.Harness
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Image = Mv_link.Image
module Trace = Mv_obs.Trace

(* The paper's Figure 2 shape: one multiversed function over two
   switches, four in-domain valuations. *)
let fig2 =
  {|
  multiverse bool A;
  multiverse int B;
  int effects;
  void calc() { effects = effects + 10; }
  void log_() { effects = effects + 100; }
  multiverse void multi() { if (A) { calc(); if (B) { log_(); } } }
  int foo() { effects = 0; multi(); return effects; }
|}

let expected a b = (if a <> 0 then 10 else 0) + (if a <> 0 && b <> 0 then 100 else 0)

let commit_vals s a b =
  H.set s "A" a;
  H.set s "B" b;
  ignore (H.commit s)

let stats s = Runtime.stats s.H.runtime

(* ------------------------------------------------------------------ *)
(* Link-time shape and eager/lazy agreement                            *)
(* ------------------------------------------------------------------ *)

let test_lazy_link_carries_no_variants () =
  let s = H.lazy_session1 fig2 in
  check_bool "lazy mode armed" true (Runtime.lazy_enabled s.H.runtime);
  check_int "no variants at link time" 0
    (List.length (Runtime.materialized_variants s.H.runtime));
  check_int "no resident bytes" 0 (Runtime.variant_bytes s.H.runtime);
  check_int "descriptors carry zero variants" 0 (stats s).Runtime.st_variants;
  (* the generic program is fully functional before any commit *)
  H.set s "A" 1;
  H.set s "B" 1;
  check_int "generic semantics" 110 (H.call s "foo" []);
  let e = H.session1 fig2 in
  check_bool "eager session is not lazy" false (Runtime.lazy_enabled e.H.runtime)

let test_lazy_matches_eager_all_valuations () =
  List.iter
    (fun (a, b) ->
      let eager = H.session1 fig2 in
      let lazy_ = H.lazy_session1 fig2 in
      commit_vals eager a b;
      commit_vals lazy_ a b;
      let re = H.call eager "foo" [] in
      let rl = H.call lazy_ "foo" [] in
      check_int (Printf.sprintf "eager A=%d B=%d" a b) (expected a b) re;
      check_int (Printf.sprintf "lazy agrees A=%d B=%d" a b) re rl)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* ------------------------------------------------------------------ *)
(* First-commit materialization and the cache                          *)
(* ------------------------------------------------------------------ *)

let test_first_commit_materializes_exactly_once () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  check_int "one materialization" 1 (stats s).Runtime.st_materialized;
  check_int "one resident alias" 1
    (List.length (Runtime.materialized_variants s.H.runtime));
  check_bool "bytes accounted" true (Runtime.variant_bytes s.H.runtime > 0);
  check_int "specialized result" 110 (H.call s "foo" [])

let test_recommit_hits_cache () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  let bytes = Runtime.variant_bytes s.H.runtime in
  commit_vals s 1 1;
  commit_vals s 1 1;
  let st = stats s in
  check_int "still one materialization" 1 st.Runtime.st_materialized;
  check_bool "cache hits recorded" true (st.Runtime.st_cache_hits >= 2);
  check_int "no new bytes" bytes (Runtime.variant_bytes s.H.runtime);
  check_int "result stable" 110 (H.call s "foo" [])

let test_distinct_valuations_distinct_bodies () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  check_int "after (1,1)" 110 (H.call s "foo" []);
  commit_vals s 1 0;
  check_int "after (1,0)" 10 (H.call s "foo" []);
  let st = stats s in
  check_int "two materializations" 2 st.Runtime.st_materialized;
  check_int "no dedup between distinct bodies" 0 st.Runtime.st_dedup_hits;
  match Runtime.materialized_variants s.H.runtime with
  | [ (s1, a1, _); (s2, a2, _) ] ->
      check_bool "distinct symbols" true (s1 <> s2);
      check_bool "distinct addresses" true (a1 <> a2)
  | vs -> Alcotest.failf "expected 2 resident variants, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Structural-hash dedup                                               *)
(* ------------------------------------------------------------------ *)

(* f and g are byte-for-byte clones: their m=1 bodies must share one
   resident copy. *)
let clones =
  {|
  multiverse int m;
  int w;
  multiverse void f() { if (m) { w = w + 1; } }
  multiverse void g() { if (m) { w = w + 1; } }
  int foo() { w = 0; f(); g(); return w; }
|}

let test_dedup_across_function_clones () =
  let s = H.lazy_session1 clones in
  H.set s "m" 1;
  ignore (H.commit s);
  let st = stats s in
  check_int "both functions materialized" 2 st.Runtime.st_materialized;
  check_int "second was a hash hit" 1 st.Runtime.st_dedup_hits;
  (match Runtime.materialized_variants s.H.runtime with
  | [ (_, a1, z1); (_, a2, z2) ] ->
      check_int "aliases share the body" a1 a2;
      check_int "same extent" z1 z2;
      (* exactly one body's worth of bytes is resident *)
      check_int "one allocation" ((z1 + 15) / 16 * 16)
        (Runtime.variant_bytes s.H.runtime)
  | vs -> Alcotest.failf "expected 2 aliases, got %d" (List.length vs));
  check_int "both calls specialized" 2 (H.call s "foo" [])

let test_dedup_across_valuations_of_one_function () =
  (* with a=1 the b-branch is dead: (a=1,b=0) and (a=1,b=1) specialize
     to the same body and must dedup *)
  let src =
    {|
    multiverse bool a;
    multiverse bool b;
    int w;
    multiverse void f() { if (a) { w = w + 1; } else { if (b) { w = w + 2; } } }
    int foo() { w = 0; f(); return w; }
  |}
  in
  let s = H.lazy_session1 src in
  H.set s "a" 1;
  H.set s "b" 0;
  ignore (H.commit s);
  let bytes = Runtime.variant_bytes s.H.runtime in
  check_int "first valuation" 1 (H.call s "foo" []);
  H.set s "b" 1;
  ignore (H.commit s);
  check_int "second valuation" 1 (H.call s "foo" []);
  let st = stats s in
  check_int "two aliases materialized" 2 st.Runtime.st_materialized;
  check_int "one structural-hash hit" 1 st.Runtime.st_dedup_hits;
  check_int "hash hit linked no new bytes" bytes (Runtime.variant_bytes s.H.runtime);
  match Runtime.materialized_variants s.H.runtime with
  | [ (s1, a1, _); (s2, a2, _) ] ->
      check_bool "distinct descriptor aliases" true (s1 <> s2);
      check_int "one shared body" a1 a2
  | vs -> Alcotest.failf "expected 2 aliases, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Eviction                                                            *)
(* ------------------------------------------------------------------ *)

let test_eviction_reverts_installed_variant () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  check_int "specialized" 110 (H.call s "foo" []);
  (* shrink the budget below the resident body (bodies are tiny, so go
     all the way to 1 byte): the installed, quiescent victim is reverted
     to generic on the spot *)
  Runtime.set_variant_budget s.H.runtime 1;
  check_int "variant evicted" 0
    (List.length (Runtime.materialized_variants s.H.runtime));
  check_int "bytes released" 0 (Runtime.variant_bytes s.H.runtime);
  check_bool "eviction counted" true ((stats s).Runtime.st_evictions >= 1);
  check_bool "function back to generic" true
    (Runtime.installed_variant s.H.runtime "multi" = None);
  check_int "generic still correct" 110 (H.call s "foo" [])

let test_evict_recommit_roundtrip_bit_identical () =
  let s = H.lazy_session1 fig2 in
  let img = s.H.program.Core.Compiler.p_image in
  commit_vals s 1 1;
  let sym, addr, size =
    match Runtime.materialized_variants s.H.runtime with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected one variant"
  in
  let before = Image.read_bytes img addr size in
  ignore (H.revert s);
  Runtime.set_variant_budget s.H.runtime 1;
  check_int "evicted" 0 (List.length (Runtime.materialized_variants s.H.runtime));
  Runtime.set_variant_budget s.H.runtime (1 lsl 19);
  ignore (H.commit s);
  let sym', addr', size' =
    match Runtime.materialized_variants s.H.runtime with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected one re-materialized variant"
  in
  check_string "same symbol" sym sym';
  check_int "deterministic allocator reuses the block" addr addr';
  check_int "same size" size size';
  check_string "bit-identical body" (Bytes.to_string before)
    (Bytes.to_string (Image.read_bytes img addr' size'));
  check_int "still correct" 110 (H.call s "foo" [])

(* The safe-commit deferral workload from the safe-commit suite: spacers
   give the machine quiescent safepoints between the two calls. *)
let defer_src =
  {|
  multiverse bool m;
  int w;
  multiverse void f() { if (m) { w = w + 100; } }
  void spacer() { w = w + 1; }
  int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
|}

let park s addr =
  let guard = ref 1_000_000 in
  while s.H.machine.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Machine.step s.H.machine)
  done;
  check_bool "parked" true (s.H.machine.Machine.pc = addr)

let test_live_victim_defers_to_safepoint () =
  let s = H.lazy_session1 defer_src in
  H.enable_safe_commit s;
  H.set s "m" 1;
  ignore (H.commit_safe s);
  let _, vaddr, _ =
    match Runtime.materialized_variants s.H.runtime with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected one variant"
  in
  (* park the machine at the variant's entry: its body is now live *)
  Machine.start_call s.H.machine "driver" [];
  park s vaddr;
  let bytes = Runtime.variant_bytes s.H.runtime in
  Runtime.set_variant_budget s.H.runtime 1;
  (* the victim is live: eviction must defer, not free under the pc *)
  check_int "body still resident" 1
    (List.length (Runtime.materialized_variants s.H.runtime));
  check_int "bytes not freed yet" bytes (Runtime.variant_bytes s.H.runtime);
  check_bool "unbind journaled" true (List.mem "f" (Runtime.pending s.H.runtime));
  (* run to completion: the safepoint drains the unbind and the sweep
     frees the body once no activation sits inside it *)
  let r = Machine.finish s.H.machine in
  (* first f ran the variant (+100), spacers +2, second f ran generic
     with m=1 (+100) *)
  check_int "result correct across the eviction" 202 r;
  check_int "victim gone after drain" 0
    (List.length (Runtime.materialized_variants s.H.runtime));
  check_int "bytes freed" 0 (Runtime.variant_bytes s.H.runtime);
  check_bool "eviction completed" true ((stats s).Runtime.st_evictions >= 1)

let test_pending_bind_variant_is_protected () =
  let s = H.lazy_session1 defer_src in
  H.enable_safe_commit s;
  H.set s "m" 1;
  (* park inside the generic f, then commit_safe: the variant
     materializes now but its bind is journaled *)
  Machine.start_call s.H.machine "driver" [];
  park s (Image.symbol s.H.program.Core.Compiler.p_image "f");
  ignore (H.commit_safe s);
  check_int "materialized while deferred" 1 (stats s).Runtime.st_materialized;
  (match Runtime.pending_variants s.H.runtime with
  | [ sym ] ->
      check_bool "journaled variant reported" true
        (String.length sym > 0)
  | vs -> Alcotest.failf "expected 1 pending variant, got %d" (List.length vs));
  ignore (Machine.finish s.H.machine);
  check_int "drained" 0 (List.length (Runtime.pending_variants s.H.runtime));
  check_bool "variant bound after drain" true
    (Runtime.installed_variant s.H.runtime "f" <> None)

let test_budget_denial_falls_back_and_retries () =
  let s = H.lazy_session1 ~budget:1 fig2 in
  commit_vals s 1 1;
  let st = stats s in
  check_bool "denied under a 1-byte budget" true (st.Runtime.st_budget_denials >= 1);
  check_int "nothing resident" 0 (Runtime.variant_bytes s.H.runtime);
  check_bool "fallback signaled" true
    (List.mem "multi" (Runtime.fallbacks s.H.runtime));
  check_int "generic semantics preserved" 110 (H.call s "foo" []);
  (* raising the budget lets the next commit of the same valuation
     materialize: denial is a retryable condition, not a poison state *)
  Runtime.set_variant_budget s.H.runtime (1 lsl 16);
  ignore (H.commit s);
  check_int "materialized on retry" 1 (stats s).Runtime.st_materialized;
  check_int "specialized now" 110 (H.call s "foo" [])

let test_out_of_domain_stays_generic () =
  let s = H.lazy_session1 fig2 in
  H.set s "A" 1;
  H.set s "B" 7;
  ignore (H.commit s);
  let st = stats s in
  check_int "nothing materialized out of domain" 0 st.Runtime.st_materialized;
  check_bool "fallback signaled" true
    (List.mem "multi" (Runtime.fallbacks s.H.runtime));
  check_int "generic handles the odd value" 110 (H.call s "foo" [])

let test_enable_lazy_requires_vtext_region () =
  let program = Core.Compiler.build_string ~vtext_size:0 fig2 in
  let machine = Machine.create program.Core.Compiler.p_image in
  let runtime =
    Core.Runtime.create program.Core.Compiler.p_image ~flush:(fun ~addr ~len ->
        Machine.flush_icache machine ~addr ~len)
  in
  match
    Runtime.enable_lazy runtime ~recipes:[] ~call_pad:(fun _ -> 0)
  with
  | exception Runtime.Runtime_error _ -> ()
  | () -> Alcotest.fail "enable_lazy without a vtext region must fail"

(* ------------------------------------------------------------------ *)
(* The advisor and observability                                       *)
(* ------------------------------------------------------------------ *)

let test_advisor_overrides_lru_order () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  commit_vals s 1 0;
  let syms = List.map (fun (n, _, _) -> n) (Runtime.materialized_variants s.H.runtime) in
  check_int "two resident" 2 (List.length syms);
  (* LRU would shed the (1,1) alias first (older tick); the advisor names
     the most recent one instead, and must win *)
  let victim =
    match Runtime.installed_variant s.H.runtime "multi" with
    | Some v -> v
    | None -> Alcotest.fail "expected an installed variant"
  in
  Runtime.set_evict_advisor s.H.runtime (Some (fun () -> [ victim ]));
  let keep = List.find (fun n -> n <> victim) syms in
  let _, _, keep_size =
    List.find
      (fun (n, _, _) -> n = keep)
      (Runtime.materialized_variants s.H.runtime)
  in
  Runtime.set_variant_budget s.H.runtime ((keep_size + 15) / 16 * 16);
  let left = List.map (fun (n, _, _) -> n) (Runtime.materialized_variants s.H.runtime) in
  check_bool "advised victim evicted" false (List.mem victim left);
  check_bool "colder-by-LRU survivor kept" true (List.mem keep left)

let test_materialize_and_evict_trace_events () =
  let s = H.lazy_session1 fig2 in
  H.enable_tracing s;
  commit_vals s 1 1;
  Runtime.set_variant_budget s.H.runtime 1;
  let evs = List.map (fun st -> st.Trace.ev) (H.trace_events s) in
  let mat =
    List.exists
      (function
        | Trace.Variant_materialized { fn = "multi"; dedup = false; size; _ } ->
            size > 0
        | _ -> false)
      evs
  in
  let ev =
    List.exists
      (function
        | Trace.Variant_evicted { fn = "multi"; freed; _ } -> freed > 0
        | _ -> false)
      evs
  in
  check_bool "Variant_materialized traced" true mat;
  check_bool "Variant_evicted traced" true ev

let test_metrics_count_cache_traffic () =
  let s = H.lazy_session1 clones in
  H.enable_metrics s;
  H.set s "m" 1;
  ignore (H.commit s);
  let m = match H.metrics s with Some m -> m | None -> Alcotest.fail "metrics" in
  check_int "one miss for f" 1
    (Mv_obs.Metrics.counter_value m "mv_variant_cache_materializations_total"
       [ ("fn", "f"); ("dedup", "miss") ]);
  check_int "one hit for g" 1
    (Mv_obs.Metrics.counter_value m "mv_variant_cache_materializations_total"
       [ ("fn", "g"); ("dedup", "hit") ])

let test_stats_surface_cache_counters () =
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  commit_vals s 1 1;
  commit_vals s 1 0;
  Runtime.set_variant_budget s.H.runtime 1;
  let st = stats s in
  check_int "st_materialized" 2 st.Runtime.st_materialized;
  check_bool "st_cache_hits" true (st.Runtime.st_cache_hits >= 1);
  check_int "st_evictions" 2 st.Runtime.st_evictions;
  check_int "st_variant_bytes" 0 st.Runtime.st_variant_bytes;
  (* the JSON snapshot carries the same counters *)
  let j = Mv_obs.Json.to_string (Runtime.stats_json st) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> check_bool (key ^ " exported") true (contains j key))
    [ "materialized"; "dedup_hits"; "cache_hits"; "evictions"; "variant_bytes" ]

(* ------------------------------------------------------------------ *)
(* Storms: the budget is an invariant, not a suggestion                *)
(* ------------------------------------------------------------------ *)

let lcg seed =
  let state = ref (seed lor 1) in
  fun bound ->
    state := ((!state * 0x5DEECE66D) + 0xB) land 0x3FFFFFFFFFFF;
    (!state lsr 17) mod bound

let test_budget_invariant_under_commit_storm () =
  (* a budget of ~2 bodies over 4 valuations forces continual eviction;
     residency must never exceed the budget and every committed valuation
     must execute correctly *)
  let s = H.lazy_session1 fig2 in
  commit_vals s 1 1;
  let body = Runtime.variant_bytes s.H.runtime in
  (* fig2 has three distinct bodies after dedup; room for only two of
     them forces continual churn *)
  let budget = 2 * body in
  Runtime.set_variant_budget s.H.runtime budget;
  let rand = lcg 0xC0FFEE in
  for _ = 1 to 400 do
    let a = rand 2 and b = rand 2 in
    commit_vals s a b;
    check_bool "budget invariant" true (Runtime.variant_bytes s.H.runtime <= budget);
    check_int "correct result" (expected a b) (H.call s "foo" [])
  done;
  let st = stats s in
  check_bool "storm exercised eviction" true (st.Runtime.st_evictions > 0);
  check_bool "storm exercised the cache" true (st.Runtime.st_cache_hits > 0)

(* 20 switches: ~1M valuations, impossible to pre-expand, trivially
   covered on demand inside a 256 KiB budget. *)
let twenty_switch_src =
  let b = Buffer.create 1024 in
  for i = 0 to 19 do
    Buffer.add_string b (Printf.sprintf "multiverse bool s%d;\n" i)
  done;
  Buffer.add_string b "int w;\nmultiverse void f() {\n";
  for i = 0 to 19 do
    Buffer.add_string b
      (Printf.sprintf "  if (s%d) { w = w + %d; w = w + %d; w = w + %d; }\n" i
         (i + 1) (100 * (i + 1)) (10000 * (i + 1)))
  done;
  Buffer.add_string b "}\nint foo() { w = 0; f(); return w; }\n";
  Buffer.contents b

let test_twenty_switches_bounded_storm () =
  let budget = 256 * 1024 in
  let s = H.lazy_session1 ~budget twenty_switch_src in
  let rand = lcg 0xBEEF in
  let commits = 1000 in
  for _ = 1 to commits do
    let bits = Array.init 20 (fun _ -> rand 2) in
    Array.iteri (fun i v -> H.set s (Printf.sprintf "s%d" i) v) bits;
    ignore (H.commit s);
    check_bool "budget invariant" true (Runtime.variant_bytes s.H.runtime <= budget);
    let exp =
      Array.to_list bits
      |> List.mapi (fun i v -> if v <> 0 then 10101 * (i + 1) else 0)
      |> List.fold_left ( + ) 0
    in
    check_int "20-switch result" exp (H.call s "foo" [])
  done;
  let st = stats s in
  check_bool "storm materialized variants" true (st.Runtime.st_materialized > 0);
  check_bool "bounded memory forced eviction" true (st.Runtime.st_evictions > 0)

(* ------------------------------------------------------------------ *)
(* SMP                                                                 *)
(* ------------------------------------------------------------------ *)

let smp_src =
  {|
  multiverse bool mode;
  multiverse int tick() { if (mode) { return 10; } return 1; }
  int work(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + tick(); }
    return acc;
  }
|}

let test_smp_materialization_under_rendezvous () =
  let s = H.lazy_smp_session1 ~n_harts:2 ~seed:7 smp_src in
  H.enable_smp_tracing s;
  H.smp_set s "mode" 1;
  ignore (H.smp_commit s);
  check_int "materialized once for the container" 1
    (Runtime.stats s.H.sm_runtime).Runtime.st_materialized;
  H.smp_start s ~hart:0 "work" [ 5 ];
  H.smp_start s ~hart:1 "work" [ 5 ];
  H.smp_run s;
  (* each hart ran the specialized body: 5 ticks of 10 *)
  check_int "hart 0 specialized" 50 (H.smp_result s ~hart:0);
  check_int "hart 1 specialized" 50 (H.smp_result s ~hart:1);
  let evs = List.map (fun st -> st.Trace.ev) (H.smp_trace_events s) in
  check_bool "materialization traced" true
    (List.exists
       (function Trace.Variant_materialized _ -> true | _ -> false)
       evs);
  check_bool "patching ran under the rendezvous" true
    (List.exists (function Trace.Rendezvous_begin _ -> true | _ -> false) evs)

let suite =
  [
    tc "lazy: link carries no variants" test_lazy_link_carries_no_variants;
    tc "lazy: matches eager on all valuations" test_lazy_matches_eager_all_valuations;
    tc "lazy: first commit materializes exactly once"
      test_first_commit_materializes_exactly_once;
    tc "lazy: re-commit hits the cache" test_recommit_hits_cache;
    tc "lazy: distinct valuations get distinct bodies"
      test_distinct_valuations_distinct_bodies;
    tc "dedup: function clones share one body" test_dedup_across_function_clones;
    tc "dedup: valuations with equal bodies share one body"
      test_dedup_across_valuations_of_one_function;
    tc "evict: installed quiescent victim reverts" test_eviction_reverts_installed_variant;
    tc "evict: re-commit round trip is bit-identical"
      test_evict_recommit_roundtrip_bit_identical;
    tc "evict: live victim defers to the safepoint" test_live_victim_defers_to_safepoint;
    tc "evict: journaled bind protects its variant" test_pending_bind_variant_is_protected;
    tc "budget: denial falls back, retry succeeds"
      test_budget_denial_falls_back_and_retries;
    tc "domain: out-of-domain valuation stays generic" test_out_of_domain_stays_generic;
    tc "enable_lazy requires a vtext region" test_enable_lazy_requires_vtext_region;
    tc "advisor: overrides LRU order" test_advisor_overrides_lru_order;
    tc "obs: materialize/evict trace events" test_materialize_and_evict_trace_events;
    tc "obs: metrics count cache traffic" test_metrics_count_cache_traffic;
    tc "obs: stats surface the cache counters" test_stats_surface_cache_counters;
    tc_slow "storm: budget invariant holds" test_budget_invariant_under_commit_storm;
    tc_slow "storm: 20 switches in 256 KiB" test_twenty_switches_bounded_storm;
    tc "smp: materialization under the rendezvous"
      test_smp_materialization_under_rendezvous;
  ]
