(* lib/obs/json.ml parser and printer edge cases.

   The corpus files and observability exports both ride on this parser,
   so the fuzzing subsystem depends on it being exact: escapes, numeric
   extremes, nesting, and rejection of malformed input. *)

open Util
module Json = Mv_obs.Json

let parse_ok src =
  match Json.parse src with
  | Ok j -> j
  | Error m -> Alcotest.failf "parse %S failed: %s" src m

let parse_err name src =
  match Json.parse src with
  | Ok _ -> Alcotest.failf "%s: %S should have been rejected" name src
  | Error m ->
      check_bool (name ^ ": error message is not empty") true (String.length m > 0)

let check_json name expected actual =
  check_string name (Json.to_string expected) (Json.to_string actual)

(* round-trip through both serializers *)
let roundtrip name j =
  check_json (name ^ " (compact)") j (parse_ok (Json.to_string j));
  check_json (name ^ " (pretty)") j (parse_ok (Json.to_string_pretty j))

(* ------------------------------------------------------------------ *)
(* String escapes                                                      *)
(* ------------------------------------------------------------------ *)

let test_u_escapes () =
  check_json "ascii \\u" (Json.String "A") (parse_ok "\"\\u0041\"");
  check_json "\\u hex is case-insensitive" (Json.String "J") (parse_ok "\"\\u004A\"");
  (* 2- and 3-byte UTF-8 expansions *)
  check_json "latin-1 \\u" (Json.String "\xc3\xa9") (parse_ok "\"\\u00e9\"");
  check_json "bmp \\u" (Json.String "\xe2\x82\xac") (parse_ok "\"\\u20ac\"");
  check_json "\\u0000" (Json.String "\x00") (parse_ok "\"\\u0000\"");
  parse_err "truncated \\u" "\"\\u00\"";
  parse_err "non-hex \\u" "\"\\uZZZZ\""

let test_quote_backslash_escapes () =
  check_json "escaped quote" (Json.String {|say "hi"|}) (parse_ok {|"say \"hi\""|});
  check_json "escaped backslash" (Json.String {|a\b|}) (parse_ok {|"a\\b"|});
  check_json "newline tab" (Json.String "a\n\tb") (parse_ok {|"a\n\tb"|});
  (* printer escapes what the parser must re-read *)
  roundtrip "quotes and backslashes" (Json.String {|"\"\\|});
  roundtrip "control characters" (Json.String "\x01\x02\x1f\n\r\t");
  roundtrip "already-utf8 text" (Json.String "caf\xc3\xa9");
  parse_err "lone backslash" {|"a\"|};
  parse_err "unknown escape" {|"\q"|};
  parse_err "unterminated string" {|"abc|}

(* ------------------------------------------------------------------ *)
(* Numbers                                                             *)
(* ------------------------------------------------------------------ *)

let test_numerics () =
  check_json "zero" (Json.Int 0) (parse_ok "0");
  check_json "negative" (Json.Int (-42)) (parse_ok "-42");
  check_json "negative zero stays an int" (Json.Int 0) (parse_ok "-0");
  check_json "min_int" (Json.Int min_int) (parse_ok (string_of_int min_int));
  check_json "max_int" (Json.Int max_int) (parse_ok (string_of_int max_int));
  roundtrip "min_int" (Json.Int min_int);
  roundtrip "max_int" (Json.Int max_int);
  (* a fractional part must come back as a float, not be truncated *)
  (match parse_ok "1.5" with
  | Json.Float f -> check_bool "1.5 parses as float" true (f = 1.5)
  | j -> Alcotest.failf "1.5 parsed as %s" (Json.to_string j));
  (* floats that look integral must still round-trip as floats *)
  (match parse_ok (Json.to_string (Json.Float 3.0)) with
  | Json.Float f -> check_bool "3.0 stays a float" true (f = 3.0)
  | j -> Alcotest.failf "3.0 reparsed as %s" (Json.to_string j));
  check_string "non-finite floats serialize as null" "null"
    (Json.to_string (Json.Float Float.nan));
  parse_err "bare minus" "-";
  parse_err "double minus" "--1"

(* ------------------------------------------------------------------ *)
(* Nesting                                                             *)
(* ------------------------------------------------------------------ *)

let test_deep_nesting () =
  let depth = 200 in
  let deep = ref (Json.Int 7) in
  for _ = 1 to depth do
    deep := Json.List [ !deep ]
  done;
  roundtrip "deep list" !deep;
  let deep_obj = ref (Json.String "leaf") in
  for _ = 1 to depth do
    deep_obj := Json.Obj [ ("k", !deep_obj) ]
  done;
  roundtrip "deep object" !deep_obj;
  (* mixed, as produced by real exports *)
  roundtrip "mixed structure"
    (Json.Obj
       [
         ("events", Json.List [ Json.Obj [ ("ts", Json.Float 0.5) ]; Json.Null ]);
         ("ok", Json.Bool true);
         ("empty", Json.Obj []);
         ("none", Json.List []);
       ])

(* ------------------------------------------------------------------ *)
(* Rejection of malformed input                                        *)
(* ------------------------------------------------------------------ *)

let test_reject_invalid () =
  parse_err "empty input" "";
  parse_err "whitespace only" "   ";
  parse_err "trailing garbage" "1 2";
  parse_err "trailing garbage after object" {|{"a":1} x|};
  parse_err "unclosed list" "[1, 2";
  parse_err "unclosed object" {|{"a": 1|};
  parse_err "missing colon" {|{"a" 1}|};
  parse_err "unquoted key" "{a: 1}";
  parse_err "trailing comma in list" "[1,]";
  parse_err "trailing comma in object" {|{"a":1,}|};
  parse_err "bare word" "nope";
  parse_err "single quotes" "'a'";
  check_bool "error names a byte offset" true
    (match Json.parse "[1, 2" with
    | Error m ->
        (* offsets render as digits somewhere in the message *)
        String.exists (fun c -> c >= '0' && c <= '9') m
    | Ok _ -> false)

(* member on non-objects and missing keys *)
let test_member () =
  let j = parse_ok {|{"a": 1, "b": {"c": true}}|} in
  check_bool "present key" true (Json.member "a" j = Some (Json.Int 1));
  check_bool "missing key" true (Json.member "z" j = None);
  check_bool "member of a list" true (Json.member "a" (Json.List []) = None);
  check_bool "member of a scalar" true (Json.member "a" (Json.Int 3) = None)

let suite =
  [
    tc "unicode escapes" test_u_escapes;
    tc "quote and backslash escapes" test_quote_backslash_escapes;
    tc "numeric extremes" test_numerics;
    tc "deep nesting round-trips" test_deep_nesting;
    tc "malformed input is rejected" test_reject_invalid;
    tc "member lookup" test_member;
  ]
