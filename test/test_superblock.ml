(* The superblock interpreter's contract (ARCHITECTURE §13): pre-decoded
   dispatch must be observationally identical to the reference
   fetch/decode interpreter — bit-identical simulated cycles, perf
   counters, and trace streams — and the decode cache must invalidate
   through exactly the text_poke/flush_icache paths: patches landing
   mid-block, at a block entry, and back-to-back under the SMP rendezvous
   all force a re-decode, and nothing else does. *)

open Util
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf
module Smp = Mv_vm.Smp
module Runtime = Core.Runtime
module Harness = Mv_workloads.Harness
module Insn = Mv_isa.Insn
module Trace = Mv_obs.Trace

(* A workload with commits in the middle, so the comparison covers
   patching, icache flushes, branches, calls, and both multiverse
   variants — not just straight-line execution. *)
let mv_src =
  {|
  multiverse bool fast;
  int acc;
  multiverse int work(int n) {
    int s = 0;
    if (fast) {
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
    } else {
      for (int i = 0; i < n; i = i + 1) { s = s + (i * 2); acc = acc + 1; }
    }
    return s;
  }
  int driver(int n) { return work(n) + work(n + 3); }
|}

(* Drive the same script — call, flip, commit, call, revert, call — on a
   fresh session through [fin] (either [Machine.finish] or
   [Machine.finish_ref]), collecting results, the final perf counters,
   and the machine-side trace stream timestamped by the cycle counter. *)
let run_script fin =
  let s = session mv_src in
  let events = ref [] in
  Machine.set_tracer s.machine
    (Some
       (fun e -> events := (s.machine.Machine.perf.Perf.cycles, e) :: !events));
  let call fn args =
    Machine.start_call s.machine fn args;
    fin s.machine
  in
  let r1 = call "driver" [ 5 ] in
  set_global s "fast" 1;
  ignore (Runtime.commit s.runtime);
  let r2 = call "driver" [ 5 ] in
  ignore (Runtime.revert s.runtime);
  let r3 = call "driver" [ 7 ] in
  let p = Perf.snapshot s.machine.Machine.perf in
  ((r1, r2, r3), p, List.rev !events)

let test_bit_identity_vs_reference () =
  let rs, ps, evs = run_script Machine.finish in
  let rr, pr, evr = run_script Machine.finish_ref in
  let (a1, a2, a3), (b1, b2, b3) = (rs, rr) in
  check_int "result 1" b1 a1;
  check_int "result 2" b2 a2;
  check_int "result 3" b3 a3;
  if ps.Perf.s_cycles <> pr.Perf.s_cycles then
    Alcotest.failf "cycles diverge: superblock %.2f vs reference %.2f"
      ps.Perf.s_cycles pr.Perf.s_cycles;
  check_int "instructions" pr.Perf.s_instructions ps.Perf.s_instructions;
  check_int "branches" pr.Perf.s_branches ps.Perf.s_branches;
  check_int "mispredicts" pr.Perf.s_branch_mispredicts ps.Perf.s_branch_mispredicts;
  check_int "calls" pr.Perf.s_calls ps.Perf.s_calls;
  check_int "loads" pr.Perf.s_loads ps.Perf.s_loads;
  check_int "stores" pr.Perf.s_stores ps.Perf.s_stores;
  check_int "icache flushes" pr.Perf.s_icache_flushes ps.Perf.s_icache_flushes;
  check_int "trace stream length" (List.length evr) (List.length evs);
  List.iter2
    (fun (cs, es) (cr, er) ->
      check_bool "trace event equal" true (es = er);
      if cs <> cr then
        Alcotest.failf "trace timestamps diverge: %.2f vs %.2f" cs cr)
    evs evr

(* Per-instruction stepping (what the SMP scheduler uses) must agree with
   the reference stepper too, including the intermediate machine state. *)
let test_stepwise_identity () =
  let a = session mv_src and b = session mv_src in
  Machine.start_call a.machine "driver" [ 4 ];
  Machine.start_call b.machine "driver" [ 4 ];
  let more = ref true in
  let guard = ref 1_000_000 in
  while !more && !guard > 0 do
    decr guard;
    let ka = Machine.step a.machine and kb = Machine.step_ref b.machine in
    check_bool "both streams end together" ka kb;
    check_int "same pc" b.machine.Machine.pc a.machine.Machine.pc;
    if
      a.machine.Machine.perf.Perf.cycles <> b.machine.Machine.perf.Perf.cycles
    then
      Alcotest.failf "cycles diverge at pc 0x%x" a.machine.Machine.pc;
    more := ka
  done;
  check_bool "terminated" true (!guard > 0)

(* ------------------------------------------------------------------ *)
(* Invalidation edges                                                  *)
(* ------------------------------------------------------------------ *)

(* f(0) = 0 + 1 + 2 + 4 = 7, compiled as three immediate adds in one
   straight-line block (the opaque parameter defeats constant folding);
   we patch the middle add behind the runtime's back, then flush. *)
let straightline_src =
  {|
  int f(int x) {
    int a = x + 1;
    a = a + 2;
    a = a + 4;
    return a;
  }
|}

(* Find the encoded byte offset of the [Alu_ri Add, imm] instruction
   inside [f]'s body.  Decoding insn by insn keeps the test independent
   of exact codegen layout. *)
let find_insn img fn pred =
  let open Mv_link.Image in
  let base = symbol img fn in
  let size = symbol_size img fn in
  let rec scan off =
    if off >= size then Alcotest.fail "instruction not found in body"
    else
      let insn, len = Mv_isa.Decode.decode img.mem ~off:(base + off) in
      if pred insn then (base + off, len) else scan (off + len)
  in
  scan 0

let patch_imm_insn s name ~from_imm ~to_imm =
  let img = s.program.Core.Compiler.p_image in
  let addr, len =
    find_insn img name (function
      | Insn.Alu_ri (Insn.Add, _, _, imm) -> imm = from_imm
      | _ -> false)
  in
  let patched =
    match Mv_isa.Decode.decode img.Mv_link.Image.mem ~off:addr with
    | Insn.Alu_ri (op, rd, ra, _), _ -> Insn.Alu_ri (op, rd, ra, to_imm)
    | _ -> assert false
  in
  let bytes = Mv_isa.Encode.encode patched in
  assert (Bytes.length bytes = len);
  Mv_link.Image.mprotect img ~addr ~len Mv_link.Image.prot_rwx;
  Mv_link.Image.write_bytes img addr bytes;
  Mv_link.Image.mprotect img ~addr ~len Mv_link.Image.prot_rx;
  (addr, len)

let test_patch_mid_block () =
  let s = session straightline_src in
  check_int "original" 7 (run s "f" [ 0 ]);
  let ds = Machine.decode_stats s.machine in
  let blocks_before = ds.Machine.ds_blocks in
  (* patch [a + 2] to [a + 32] in the middle of the decoded block *)
  let addr, len = patch_imm_insn s "f" ~from_imm:2 ~to_imm:32 in
  check_int "stale block still returns 7" 7 (run s "f" [ 0 ]);
  check_int "no re-decode while stale" blocks_before ds.Machine.ds_blocks;
  Machine.flush_icache s.machine ~addr ~len;
  check_bool "flush invalidated at least one block" true
    (ds.Machine.ds_invalidated > 0);
  check_int "patched mid-block insn visible after flush" 37 (run s "f" [ 0 ]);
  check_bool "flush forced a re-decode" true (ds.Machine.ds_blocks > blocks_before)

let test_patch_at_block_entry () =
  let s = session "int f() { return 1; }" in
  let img = s.program.Core.Compiler.p_image in
  check_int "original" 1 (run s "f" []);
  let ds = Machine.decode_stats s.machine in
  let blocks_before = ds.Machine.ds_blocks in
  let f = Mv_link.Image.symbol img "f" in
  (* overwrite the block's first instruction: [mov32 r0, 1] -> [mov32 r0, 2] *)
  Mv_link.Image.mprotect img ~addr:f ~len:16 Mv_link.Image.prot_rwx;
  Mv_link.Image.write_bytes img f (Mv_isa.Encode.encode (Insn.Mov_ri32 (0, 2)));
  Mv_link.Image.mprotect img ~addr:f ~len:16 Mv_link.Image.prot_rx;
  check_int "stale entry still returns 1" 1 (run s "f" []);
  Machine.flush_icache s.machine ~addr:f ~len:16;
  check_int "patched entry visible after flush" 2 (run s "f" []);
  check_bool "entry patch forced a re-decode" true
    (ds.Machine.ds_blocks > blocks_before)

(* Re-decode happens after an invalidation and only then: repeated runs
   reuse the cached blocks, a commit (which flushes) rebuilds them. *)
let test_redecode_only_after_invalidation () =
  let s = session mv_src in
  ignore (run s "driver" [ 3 ]);
  let ds = Machine.decode_stats s.machine in
  let blocks1 = ds.Machine.ds_blocks and insns1 = ds.Machine.ds_insns in
  check_bool "first run decoded something" true (blocks1 > 0 && insns1 > 0);
  for _ = 1 to 5 do
    ignore (run s "driver" [ 3 ])
  done;
  check_int "no re-decode across repeated runs (blocks)" blocks1
    ds.Machine.ds_blocks;
  check_int "no re-decode across repeated runs (insns)" insns1
    ds.Machine.ds_insns;
  let invalidated1 = ds.Machine.ds_invalidated in
  set_global s "fast" 1;
  ignore (Runtime.commit s.runtime);
  check_bool "commit's flush dropped blocks" true
    (ds.Machine.ds_invalidated > invalidated1);
  ignore (run s "driver" [ 3 ]);
  check_bool "re-decode only after the invalidation" true
    (ds.Machine.ds_blocks > blocks1)

(* The poke_src twins from the SMP suite: seven/nine have identical
   encoded sizes, so one can be poked over the other. *)
let poke_src =
  {|
  int acc;
  int seven() { return 7; }
  int nine() { return 9; }
  void loop(int n) {
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + seven();
    }
  }
|}

let test_back_to_back_poke_under_rendezvous () =
  let s = Harness.smp_session1 ~n_harts:2 poke_src in
  let smp = s.Harness.smp in
  let img = s.Harness.sm_program.Core.Compiler.p_image in
  let seven = Mv_link.Image.symbol img "seven" in
  let size = Mv_link.Image.symbol_size img "seven" in
  let orig = Mv_link.Image.read_bytes img seven size in
  let nine_bytes =
    Mv_link.Image.read_bytes img (Mv_link.Image.symbol img "nine") size
  in
  (* warm the decode caches on hart 1, then stop it mid-loop *)
  Harness.smp_start s ~hart:1 "loop" [ 8 ];
  for _ = 1 to 40 do
    ignore (Smp.step_hart smp 1)
  done;
  let m1 = Smp.machine smp 1 in
  let ds = Machine.decode_stats m1 in
  let invalidated0 = ds.Machine.ds_invalidated in
  (* two full text_pokes back to back on the same block: each runs the
     complete breakpoint-first protocol under the rendezvous, and each
     must invalidate the pre-decoded body on every hart *)
  Smp.text_poke smp ~addr:seven nine_bytes;
  check_bool "first poke dropped hart 1's decoded body" true
    (ds.Machine.ds_invalidated > invalidated0);
  (* let the hart run until it re-decodes the (now nine) body, so the
     second poke has a freshly built block to drop *)
  let blocks_after_poke1 = ds.Machine.ds_blocks in
  let guard = ref 10_000 in
  while ds.Machine.ds_blocks = blocks_after_poke1 && !guard > 0 do
    decr guard;
    ignore (Smp.step_hart smp 1)
  done;
  check_bool "hart re-decoded the patched body" true (!guard > 0);
  let invalidated1 = ds.Machine.ds_invalidated in
  Smp.text_poke smp ~addr:seven orig;
  check_bool "second poke invalidated again" true
    (ds.Machine.ds_invalidated > invalidated1);
  Harness.smp_run s;
  (* each of the 8 calls returned exactly 7 or exactly 9 depending on
     which side of the pokes it ran — never a torn hybrid, never a
     fault *)
  let acc = Harness.smp_get s "acc" in
  check_bool "no torn call result" true
    (acc >= 8 * 7 && acc <= 8 * 9 && (acc - (8 * 7)) mod 2 = 0)

(* ------------------------------------------------------------------ *)
(* Domain-parallel fuzzing determinism                                 *)
(* ------------------------------------------------------------------ *)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_corpus dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mv-sbtest-%d" (Unix.getpid ()))
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    let d = Printf.sprintf "%s-%d" dir !counter in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d
  in
  Fun.protect
    ~finally:(fun () ->
      for i = 1 to !counter do
        let d = Printf.sprintf "%s-%d" dir i in
        if Sys.file_exists d then begin
          Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
          Sys.rmdir d
        end
      done)
    (fun () -> f fresh)

let test_parallel_fuzz_determinism () =
  with_tmp_dir (fun fresh ->
      let campaign ~domains ~dir =
        Mv_fuzz.Driver.run_parallel ~cfg:Mv_fuzz.Gen.small_cfg
          ~chaos:Mv_fuzz.Oracle.Skip_flush ~keep_going:true ~shrink_budget:8
          ~corpus_dir:dir ~domains ~seed:1 ~iters:4 ()
      in
      let d1 = fresh () and d2 = fresh () in
      let s1 = campaign ~domains:1 ~dir:d1 in
      let s2 = campaign ~domains:2 ~dir:d2 in
      check_int "same case count" s1.Mv_fuzz.Driver.s_tested
        s2.Mv_fuzz.Driver.s_tested;
      let seeds s =
        List.map (fun r -> r.Mv_fuzz.Driver.rp_seed) s.Mv_fuzz.Driver.s_reports
      in
      check_bool "chaos campaign found divergences" true (seeds s1 <> []);
      check_bool "same divergent seeds in the same order" true
        (seeds s1 = seeds s2);
      let c1 = read_corpus d1 and c2 = read_corpus d2 in
      check_bool "merged corpus is byte-for-byte identical" true (c1 = c2))

let suite =
  [
    tc "superblock vs reference: results, counters, trace" test_bit_identity_vs_reference;
    tc "stepwise identity (SMP's single-instruction step)" test_stepwise_identity;
    tc "patch landing mid-block" test_patch_mid_block;
    tc "patch at a block entry" test_patch_at_block_entry;
    tc "re-decode only after invalidation" test_redecode_only_after_invalidation;
    tc "back-to-back text_poke under the rendezvous" test_back_to_back_poke_under_rendezvous;
    tc_slow "parallel fuzzing is deterministic" test_parallel_fuzz_determinism;
  ]
