(* Code-heat telemetry tests: the machine's block-entry counters (zero
   simulated cost, invalidation-safe across text_poke/flush_icache, SMP),
   per-region attribution against a hand-computed workload, the epoch
   decay and residency math (deterministic, pure-unit checked), the
   eviction advisor on a two-variant fixture, and parse-back of the
   mv-heat/1 export. *)

open Util
module H = Mv_workloads.Harness
module Heat = Mv_obs.Heat
module Trace = Mv_obs.Trace
module Json = Mv_obs.Json
module Machine = Mv_vm.Machine
module Perf = Mv_vm.Perf

let check_float = Alcotest.(check (float 1e-9))

let spin_src =
  {|
  multiverse int config_smp;
  int word;
  multiverse void spin_lock() {
    if (config_smp) { word = word + 1; }
  }
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) { spin_lock(); }
  }
|}

let stat_of name report =
  match
    List.find_opt
      (fun (st : Heat.region_stat) -> st.Heat.rs_region.Heat.r_name = name)
      report
  with
  | Some st -> st
  | None -> Alcotest.failf "no region %s in heat report" name

(* ------------------------------------------------------------------ *)
(* Machine-level counters                                              *)
(* ------------------------------------------------------------------ *)

(* The hand-computed fixture: the config_smp=1 variant body is one
   straight-line superblock (load, add, store, ret), entered exactly once
   per spin_lock call, so a bench_loop of n calls must charge the variant
   region exactly n hits — and cover its full byte range. *)
let test_hand_computed_attribution () =
  let s = H.session1 spin_src in
  H.enable_heat s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 7 ]);
  let report = H.heat_report s in
  let v1 = stat_of "spin_lock.config_smp=1" report in
  check_int "variant hits = calls" 7 v1.Heat.rs_hits;
  check_int "variant fully covered"
    (v1.Heat.rs_region.Heat.r_hi - v1.Heat.rs_region.Heat.r_lo)
    v1.Heat.rs_covered;
  check_bool "insns accumulate per entry" true (v1.Heat.rs_insns >= 7);
  let g = stat_of "spin_lock" report in
  check_int "generic body never entered" 0 g.Heat.rs_hits;
  (* re-reading must not double-count: observe folds deltas *)
  let v1' = stat_of "spin_lock.config_smp=1" (H.heat_report s) in
  check_int "re-report does not double-count" 7 v1'.Heat.rs_hits

(* Counters live in the machine, not in the superblocks: a commit that
   patches text (text_poke + flush_icache, dropping blocks) must not lose
   the hits already charged, and counting must resume seamlessly in the
   re-decoded blocks. *)
let test_counters_survive_invalidation () =
  let s = H.session1 spin_src in
  H.enable_heat s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 10 ]);
  check_int "hot variant charged" 10
    (stat_of "spin_lock.config_smp=1" (H.heat_report s)).Heat.rs_hits;
  let inval0 = (Machine.decode_stats s.H.machine).Machine.ds_invalidated in
  (* revert + recommit: both patch text and flush, dropping the live
     superblocks over the patched ranges *)
  ignore (H.revert s);
  ignore (H.commit s);
  check_bool "patching invalidated superblocks" true
    ((Machine.decode_stats s.H.machine).Machine.ds_invalidated > inval0);
  ignore (H.call s "bench_loop" [ 10 ]);
  check_int "hits survive the flush and keep accumulating" 20
    (stat_of "spin_lock.config_smp=1" (H.heat_report s)).Heat.rs_hits

(* Arming heat must not move the simulated clock: same workload, with and
   without, bit-identical cycles (the obs-overhead bench pins the same
   invariant; this is the unit-test version). *)
let test_zero_simulated_cost () =
  let run arm =
    let s = H.session1 spin_src in
    if arm then H.enable_heat s;
    H.set s "config_smp" 1;
    ignore (H.commit s);
    ignore (H.call s "bench_loop" [ 25 ]);
    s.H.machine.Machine.perf.Perf.cycles
  in
  check_float "cycles identical with heat armed" (run false) (run true)

let test_smp_counters () =
  let s = H.smp_session1 ~n_harts:2 ~seed:7 spin_src in
  H.enable_smp_heat s;
  H.smp_set s "config_smp" 1;
  ignore (H.smp_commit s);
  H.smp_start s ~hart:0 "bench_loop" [ 5 ];
  H.smp_start s ~hart:1 "bench_loop" [ 5 ];
  H.smp_run s;
  let report = H.smp_heat_report s in
  (* both harts execute the same text offsets; per-source delta folding
     must sum them instead of colliding *)
  check_int "variant hits sum across harts" 10
    (stat_of "spin_lock.config_smp=1" report).Heat.rs_hits;
  let report' = H.smp_heat_report s in
  check_int "smp re-report does not double-count" 10
    (stat_of "spin_lock.config_smp=1" report').Heat.rs_hits

(* ------------------------------------------------------------------ *)
(* Decay, residency, advisor (pure unit fixtures)                      *)
(* ------------------------------------------------------------------ *)

let region ?(kind = Heat.Variant) ?(fn = "f") ?(switches = "") name lo hi =
  { Heat.r_name = name; r_fn = fn; r_kind = kind; r_switches = switches;
    r_lo = lo; r_hi = hi }

let test_epoch_decay_math () =
  let h = Heat.create ~decay:0.5 () in
  let a = region ~kind:Heat.Generic "a" 0 100 in
  Heat.register h a;
  Heat.observe h [ (0, 10, 10, 40) ];
  check_float "pre-epoch hotness is raw hits" 10.0 (Heat.hotness h a);
  Heat.epoch h;
  check_float "first epoch score" 10.0 (Heat.hotness h a);
  (* cumulative counters grow to 14: only the delta (4) lands this epoch *)
  Heat.observe h [ (0, 10, 14, 56) ];
  check_float "mid-epoch adds undecayed hits" 14.0 (Heat.hotness h a);
  Heat.epoch h;
  check_float "decayed score" 9.0 (Heat.hotness h a);
  check_int "epochs counted" 2 (Heat.epochs h);
  (* an idle region cools geometrically *)
  Heat.epoch h;
  check_float "idle region cools" 4.5 (Heat.hotness h a);
  (* replaying the same cumulative snapshot is a no-op *)
  Heat.observe h [ (0, 10, 14, 56) ];
  check_float "stale snapshot folds nothing" 4.5 (Heat.hotness h a)

let test_residency_intervals () =
  let h = Heat.create () in
  let now = ref 0.0 in
  let sink = Heat.sink h ~clock:(fun () -> !now) in
  now := 10.0;
  sink (Trace.Variant_selected { fn = "f"; variant = "f.x=1" });
  check_bool "x=1 resident" true (Heat.resident h ~fn:"f" ~variant:"f.x=1");
  now := 30.0;
  sink (Trace.Variant_selected { fn = "f"; variant = "f.x=2" });
  check_bool "x=1 displaced" false (Heat.resident h ~fn:"f" ~variant:"f.x=1");
  now := 50.0;
  sink (Trace.Commit_end { cid = 1; op = "revert"; bound = 0 });
  now := 60.0;
  sink (Trace.Variant_selected { fn = "f"; variant = "f.x=1" });
  now := 70.0;
  sink (Trace.Fallback { fn = "f" });
  (match Heat.stays h with
  | [ s1; s2 ] ->
      check_string "sorted by variant" "f.x=1" s1.Heat.st_variant;
      check_int "x=1 installed twice" 2 s1.Heat.st_installs;
      check_float "x=1 resident 20+10 cycles" 30.0 s1.Heat.st_resident;
      check_bool "x=1 closed by fallback" false s1.Heat.st_active;
      check_int "x=2 installed once" 1 s2.Heat.st_installs;
      check_float "x=2 resident until revert" 20.0 s2.Heat.st_resident;
      check_bool "x=2 closed by revert" false s2.Heat.st_active
  | l -> Alcotest.failf "expected 2 stays, got %d" (List.length l));
  (* an open interval extends to ~now on request *)
  now := 80.0;
  sink (Trace.Variant_selected { fn = "f"; variant = "f.x=2" });
  let s2 =
    List.find (fun s -> s.Heat.st_variant = "f.x=2") (Heat.stays ~now:95.0 h)
  in
  check_bool "x=2 active again" true s2.Heat.st_active;
  check_float "open interval extends to now" 35.0 s2.Heat.st_resident

let two_variant_fixture () =
  let h = Heat.create ~decay:0.5 () in
  let hot = region ~fn:"f1" ~switches:"x=1" "f1.x=1" 0 40 in
  let cold = region ~fn:"f2" ~switches:"y=1" "f2.y=1" 100 140 in
  Heat.register h hot;
  Heat.register h cold;
  let sink = Heat.sink h ~clock:(fun () -> 0.0) in
  sink (Trace.Variant_selected { fn = "f1"; variant = "f1.x=1" });
  sink (Trace.Variant_selected { fn = "f2"; variant = "f2.y=1" });
  Heat.observe h [ (0, 40, 100, 400); (100, 140, 1, 4) ];
  h

let test_evict_plan_keeps_hot () =
  let h = two_variant_fixture () in
  (match Heat.evict_plan h ~budget:40 with
  | [ first; second ] ->
      check_string "hot ranked first" "f1.x=1" first.Heat.ad_region.Heat.r_name;
      check_bool "hot kept" true (first.Heat.ad_verdict = Heat.Keep);
      check_string "cold ranked second" "f2.y=1"
        second.Heat.ad_region.Heat.r_name;
      check_bool "cold evicted" true (second.Heat.ad_verdict = Heat.Evict);
      check_int "bytes reported" 40 first.Heat.ad_bytes
  | l -> Alcotest.failf "expected 2 advices, got %d" (List.length l));
  (* a budget fitting both keeps both; a zero budget keeps nothing *)
  check_int "wide budget keeps both" 2
    (List.length
       (List.filter
          (fun a -> a.Heat.ad_verdict = Heat.Keep)
          (Heat.evict_plan h ~budget:80)));
  check_int "zero budget keeps none" 0
    (List.length
       (List.filter
          (fun a -> a.Heat.ad_verdict = Heat.Keep)
          (Heat.evict_plan h ~budget:0)));
  (* only resident variants are plannable: displace f2's variant *)
  let sink = Heat.sink h ~clock:(fun () -> 0.0) in
  sink (Trace.Fallback { fn = "f2" });
  check_int "non-resident variants drop out" 1
    (List.length (Heat.evict_plan h ~budget:80))

(* Journaled-but-not-yet-applied variants (a pending safe-commit bind)
   must be excludable from the plan: evicting one would invalidate the
   journal entry.  An excluded variant neither appears in the advice
   list nor consumes budget, so its bytes go to the remaining
   candidates. *)
let test_evict_plan_exclude_pending () =
  let h = two_variant_fixture () in
  (* excluded: gone from the plan entirely *)
  (match Heat.evict_plan ~exclude:[ "f1.x=1" ] h ~budget:40 with
  | [ only ] ->
      check_string "only the other variant is planned" "f2.y=1"
        only.Heat.ad_region.Heat.r_name;
      (* ...and the budget the hot variant would have eaten is free for
         the cold one *)
      check_bool "freed budget keeps the survivor" true
        (only.Heat.ad_verdict = Heat.Keep)
  | l -> Alcotest.failf "expected 1 advice, got %d" (List.length l));
  (* without the exclusion the same budget evicts the cold variant *)
  (match Heat.evict_plan h ~budget:40 with
  | [ _; second ] ->
      check_bool "cold evicted when nothing is excluded" true
        (second.Heat.ad_verdict = Heat.Evict)
  | l -> Alcotest.failf "expected 2 advices, got %d" (List.length l));
  (* excluding everything yields the empty plan *)
  check_int "excluding every resident empties the plan" 0
    (List.length
       (Heat.evict_plan ~exclude:[ "f1.x=1"; "f2.y=1" ] h ~budget:40))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let run_heat_session () =
  let s = H.session1 spin_src in
  H.enable_heat s;
  H.set s "config_smp" 1;
  ignore (H.commit s);
  ignore (H.call s "bench_loop" [ 12 ]);
  H.heat_epoch s;
  s

let test_heat_json_parse_back () =
  let s = run_heat_session () in
  let doc = H.heat_json ~budget:64 s in
  match Json.parse (Json.to_string_pretty doc) with
  | Error m -> Alcotest.failf "mv-heat/1 does not parse back: %s" m
  | Ok j -> (
      (match Json.member "schema" j with
      | Some (Json.String sch) -> check_string "schema tag" "mv-heat/1" sch
      | _ -> Alcotest.fail "missing schema member");
      (match Json.member "regions" j with
      | Some (Json.List regions) ->
          check_int "generic + both variants" 3 (List.length regions);
          let hits_of r =
            match Json.member "hits" r with Some (Json.Int n) -> n | _ -> -1
          in
          check_bool "a region carries the run's hits" true
            (List.exists (fun r -> hits_of r = 12) regions)
      | _ -> Alcotest.fail "missing regions array");
      (match Json.member "variants" j with
      | Some (Json.List [ v ]) ->
          (match Json.member "variant" v with
          | Some (Json.String name) ->
              check_string "lifecycle row names the variant"
                "spin_lock.config_smp=1" name
          | _ -> Alcotest.fail "missing variant name");
          (match Json.member "active" v with
          | Some (Json.Bool b) -> check_bool "still resident" true b
          | _ -> Alcotest.fail "missing active flag")
      | _ -> Alcotest.fail "expected exactly one lifecycle row");
      match Json.member "plan" j with
      | Some plan -> (
          match Json.member "entries" plan with
          | Some (Json.List [ e ]) -> (
              match Json.member "verdict" e with
              | Some (Json.String v) -> check_string "advisor keeps it" "keep" v
              | _ -> Alcotest.fail "missing verdict")
          | _ -> Alcotest.fail "expected one plan entry")
      | None -> Alcotest.fail "missing plan under --budget")

(* The whole pipeline is deterministic under a pinned workload: two
   independent sessions must export byte-identical documents. *)
let test_heat_deterministic () =
  let dump () = Json.to_string (H.heat_json ~budget:64 (run_heat_session ())) in
  check_string "byte-identical across sessions" (dump ()) (dump ())

let test_heat_metrics_gauges () =
  let s = run_heat_session () in
  H.enable_metrics s;
  (match H.metrics_json s with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "metrics_json shape");
  match H.metrics s with
  | None -> Alcotest.fail "metrics armed"
  | Some m ->
      check_float "mv_region_heat gauge" 12.0
        (Option.value ~default:(-1.0)
           (Mv_obs.Metrics.gauge_value m "mv_region_heat"
              [ ("region", "spin_lock.config_smp=1") ]));
      check_bool "mv_variant_resident_bytes gauge" true
        (Option.value ~default:(-1.0)
           (Mv_obs.Metrics.gauge_value m "mv_variant_resident_bytes"
              [ ("fn", "spin_lock"); ("variant", "spin_lock.config_smp=1") ])
        > 0.0)

let suite =
  [
    tc "hand-computed per-variant attribution" test_hand_computed_attribution;
    tc "counters survive text_poke/flush_icache" test_counters_survive_invalidation;
    tc "zero simulated cost" test_zero_simulated_cost;
    tc "SMP counters fold per hart" test_smp_counters;
    tc "epoch decay math" test_epoch_decay_math;
    tc "residency intervals" test_residency_intervals;
    tc "evict_plan keeps hot, evicts cold" test_evict_plan_keeps_hot;
    tc "evict_plan excludes journaled binds" test_evict_plan_exclude_pending;
    tc "mv-heat/1 parse-back" test_heat_json_parse_back;
    tc "deterministic export" test_heat_deterministic;
    tc "metrics gauges" test_heat_metrics_gauges;
  ]
