(* Safe-commit tests: stack-quiescence detection, deferral, exactly-once
   application at safepoints, transactional rollback, policy handling, and
   the invariant that the unsafe Table 1 paths are unchanged. *)

open Util
module Runtime = Core.Runtime
module Machine = Mv_vm.Machine
module Image = Mv_link.Image
module Insn = Mv_isa.Insn

(* Wire scanner and safepoint hook, as Harness.enable_safe_commit does. *)
let enable s =
  Runtime.set_live_scanner s.runtime (fun () -> Machine.live_code_addrs s.machine);
  Machine.set_safepoint s.machine (Some (fun () -> Runtime.safepoint s.runtime))

(* Step the machine until the pc sits at [fn]'s generic entry — i.e. the
   call has transferred control but no body instruction has run yet. *)
let park s fn =
  let img = s.program.Core.Compiler.p_image in
  let addr = Image.symbol img fn in
  let guard = ref 1_000_000 in
  while s.machine.Machine.pc <> addr && !guard > 0 do
    decr guard;
    ignore (Machine.step s.machine)
  done;
  check_bool ("parked at " ^ fn) true (s.machine.Machine.pc = addr)

(* The deferral workload: the generic [f] adds 100 only when [m] is set at
   run time; the m=1 variant adds 100 unconditionally.  The spacers give
   the machine quiescent safepoints between the two calls to [f]. *)
let defer_src =
  {|
  multiverse bool m;
  int w;
  multiverse void f() { if (m) { w = w + 100; } }
  void spacer() { w = w + 1; }
  int driver() { w = 0; f(); spacer(); spacer(); f(); return w; }
|}

let test_commit_inside_live_fn_is_deferred () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "f";
  let bound = Runtime.commit_safe s.runtime in
  check_int "live function not bound now" 0 bound;
  check_bool "f still generic" true (Runtime.installed_variant s.runtime "f" = None);
  check_bool "f journaled" true (Runtime.pending s.runtime = [ "f" ]);
  let st = Runtime.stats s.runtime in
  check_int "one action deferred" 1 st.Runtime.st_safe_deferred;
  check_int "nothing applied yet" 0 st.Runtime.st_safe_applied

let test_deferred_set_applied_at_safepoint_mid_run () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "f";
  ignore (Runtime.commit_safe s.runtime);
  (* the binding decision is journaled: flipping the switch now must not
     change which variant gets applied *)
  set_global s "m" 0;
  let w = Machine.finish s.machine in
  (* first f(): still generic, reads m=0, adds nothing; the set drains at a
     quiescent safepoint after f returns; second f(): the m=1 variant *)
  check_int "applied between the two calls" 102 w;
  check_bool "variant installed" true (Runtime.installed_variant s.runtime "f" <> None);
  check_bool "journal drained" true (Runtime.pending s.runtime = []);
  let st = Runtime.stats s.runtime in
  check_int "applied exactly once" 1 st.Runtime.st_safe_applied;
  check_int "no rollback" 0 st.Runtime.st_safe_rolled_back;
  check_int "journal empty" 0 st.Runtime.st_pending;
  check_bool "safepoints polled" true (st.Runtime.st_safepoint_polls > 0);
  (* a second run re-applies nothing: the patches are in the image *)
  check_int "bound code persists" 202 (run s "driver" []);
  let st = Runtime.stats s.runtime in
  check_int "still applied exactly once" 1 st.Runtime.st_safe_applied

let test_deny_policy_refuses_live_patch () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "f";
  let bound = Runtime.commit_safe ~policy:Runtime.Deny s.runtime in
  check_int "nothing bound" 0 bound;
  check_bool "nothing journaled" true (Runtime.pending s.runtime = []);
  let w = Machine.finish s.machine in
  (* never patched: both calls run the generic body with m=1 *)
  check_int "generic throughout" 202 w;
  check_bool "still generic" true (Runtime.installed_variant s.runtime "f" = None);
  check_int "denial counted" 1 (Runtime.stats s.runtime).Runtime.st_safe_denied

let test_new_commit_supersedes_pending () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "f";
  ignore (Runtime.commit_safe s.runtime);
  ignore (Runtime.commit_safe s.runtime);
  check_bool "one pending set, not two" true (Runtime.pending s.runtime = [ "f" ]);
  check_int "stale action superseded" 1
    (Runtime.stats s.runtime).Runtime.st_safe_superseded;
  ignore (Machine.finish s.machine)

let test_revert_safe_defers_while_live () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  check_int "idle commit binds immediately" 1 (Runtime.commit_safe s.runtime);
  Machine.start_call s.machine "driver" [];
  (* park inside the bound variant: f's call sites are patched, so step
     until the pc leaves the driver's text... the variant body runs in
     place of the site or behind the prologue jump; parking on the first
     spacer entry guarantees at least one f activation has come and gone
     while the *sites* stay live only during the call.  Simpler and
     airtight: park at driver entry and ask while its frame is live. *)
  park s "spacer";
  let n = Runtime.revert_safe s.runtime in
  (* the pc sits inside spacer; f's sites in driver hold no live
     activation unless a stack word lands in them — the return address
     into driver sits past the call sites, so the revert may apply
     immediately or defer depending on layout; either way the journal
     drains and the image ends pristine. *)
  ignore n;
  ignore (Machine.finish s.machine);
  check_bool "journal drained" true (Runtime.pending s.runtime = []);
  check_bool "back to generic" true (Runtime.installed_variant s.runtime "f" = None);
  (* pristine generic behavior *)
  set_global s "m" 0;
  check_int "generic again" 2 (run s "driver" [])

(* Rollback workload: driver -> f -> g, both multiversed.  Parking inside g
   keeps both live (g via the pc, f via the return address inside its
   body), so one commit journals a two-action set. *)
let rollback_src =
  {|
  multiverse bool m;
  int w;
  multiverse void g() { if (m) { w = w + 7; } }
  multiverse void f() { if (m) { w = w + 1; } g(); }
  int driver() { w = 0; f(); return w; }
|}

let test_mid_set_failure_rolls_back () =
  let s = session rollback_src in
  let img = s.program.Core.Compiler.p_image in
  enable s;
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "g";
  let bound = Runtime.commit_safe s.runtime in
  check_int "both live, none bound" 0 bound;
  check_int "two actions journaled" 2 (Runtime.stats s.runtime).Runtime.st_pending;
  (* a foreign mechanism rewrites f's (already executed) call site in the
     driver before the set drains; g stages first, f's strict site check
     then fails, and the whole set must roll back *)
  let f_addr = Image.symbol img "f" in
  let site =
    (List.find
       (fun (cs : Core.Descriptor.callsite) -> cs.Core.Descriptor.cs_target = f_addr)
       (Core.Descriptor.parse_callsites img))
      .Core.Descriptor.cs_site
  in
  Image.mprotect img ~addr:site ~len:5 Image.prot_rwx;
  Image.write_bytes img site (Mv_isa.Encode.encode (Insn.Jmp 0));
  Image.mprotect img ~addr:site ~len:5 Image.prot_rx;
  let w = Machine.finish s.machine in
  check_int "run unaffected" 8 w;
  let st = Runtime.stats s.runtime in
  check_int "set rolled back" 1 st.Runtime.st_safe_rolled_back;
  check_int "nothing counted applied" 0 st.Runtime.st_safe_applied;
  check_bool "g rolled back to generic" true
    (Runtime.installed_variant s.runtime "g" = None);
  check_bool "f never bound" true (Runtime.installed_variant s.runtime "f" = None);
  check_bool "set dropped, not retried" true (Runtime.pending s.runtime = [])

let test_idle_commit_safe_acts_like_commit () =
  let s = session defer_src in
  enable s;
  set_global s "m" 1;
  check_int "binds immediately when idle" 1 (Runtime.commit_safe s.runtime);
  check_bool "no journal" true (Runtime.pending s.runtime = []);
  check_bool "installed" true (Runtime.installed_variant s.runtime "f" <> None);
  set_global s "m" 0;
  check_int "bound code executes" 202 (run s "driver" []);
  check_int "reverts immediately when idle" 1 (Runtime.revert_safe s.runtime);
  check_int "generic again" 2 (run s "driver" [])

let test_commit_safe_requires_scanner () =
  let s = session defer_src in
  set_global s "m" 1;
  match Runtime.commit_safe s.runtime with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "commit_safe without a live scanner must fail"

let test_unsafe_commit_path_unchanged () =
  (* the paper's commit performs no synchronization: parked inside f, the
     unsafe path still patches immediately, and with no safepoint hook the
     machine never polls *)
  let s = session defer_src in
  set_global s "m" 1;
  Machine.start_call s.machine "driver" [];
  park s "f";
  check_int "unsafe commit binds the live function" 1 (Runtime.commit s.runtime);
  check_bool "installed while live" true (Runtime.installed_variant s.runtime "f" <> None);
  ignore (Machine.finish s.machine);
  check_int "no safepoint polls without a hook" 0
    (Runtime.stats s.runtime).Runtime.st_safepoint_polls

(* Drain-latency pinning for a never-returning body (approximated by a
   loop far longer than the budget): without OSR the deferred set's drain
   latency is unbounded — a 10x step budget leaves it journaled, because
   the only drain opportunity is the frame unwinding.  With OSR it
   collapses to about one safepoint interval: the steps from the parked
   entry to the loop's first call return. *)
let test_never_returning_drain_latency () =
  let steps_to_drain ~osr ~budget =
    let s = session Test_osr.spin_src in
    if osr then Test_osr.enable s else enable s;
    set_global s "m" 1;
    Machine.start_call s.machine "driver" [ 1_000_000 ];
    park s "spin";
    ignore (Runtime.commit_safe s.runtime);
    let steps = ref 0 in
    while Runtime.pending s.runtime <> [] && !steps < budget do
      incr steps;
      ignore (Machine.step s.machine)
    done;
    if Runtime.pending s.runtime = [] then Some !steps else None
  in
  (* one safepoint interval = one loop iteration's worth of steps; 60 is
     a generous bound on entry -> first tick return *)
  (match steps_to_drain ~osr:true ~budget:60 with
  | Some n ->
      check_bool
        (Printf.sprintf "drains within one safepoint interval (%d steps)" n)
        true (n <= 60)
  | None -> Alcotest.fail "with OSR the set must drain within one interval");
  match steps_to_drain ~osr:false ~budget:600 with
  | Some n ->
      Alcotest.failf "without OSR the set drained mid-run after %d steps" n
  | None -> ()

let suite =
  [
    tc "commit inside live fn is deferred" test_commit_inside_live_fn_is_deferred;
    tc "deferred set applied at safepoint mid-run"
      test_deferred_set_applied_at_safepoint_mid_run;
    tc "deny policy refuses live patch" test_deny_policy_refuses_live_patch;
    tc "new commit supersedes pending" test_new_commit_supersedes_pending;
    tc "revert_safe drains cleanly" test_revert_safe_defers_while_live;
    tc "mid-set failure rolls back" test_mid_set_failure_rolls_back;
    tc "idle commit_safe acts like commit" test_idle_commit_safe_acts_like_commit;
    tc "commit_safe requires a scanner" test_commit_safe_requires_scanner;
    tc "unsafe commit path unchanged" test_unsafe_commit_path_unchanged;
    tc "never-returning drain latency bounded only by OSR"
      test_never_returning_drain_latency;
  ]
