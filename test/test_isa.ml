(* ISA encoding tests.  The encoded sizes are load-bearing: the runtime's
   call-site patching assumes a 5-byte direct call (the paper's IA-32
   analogy), inlining budgets derive from them, and patch_rel32 rewrites
   fields in place. *)

open Util
module Insn = Mv_isa.Insn
module Encode = Mv_isa.Encode
module Decode = Mv_isa.Decode

let sample_insns : Insn.t list =
  [
    Insn.Mov_ri (3, 0x1122334455);
    Insn.Mov_ri (0, -42);
    Insn.Mov_rr (1, 2);
    Insn.Alu (Insn.Add, 1, 2, 3);
    Insn.Alu (Insn.Ge, 0, 1, 2);
    Insn.Alu_ri (Insn.Sub, 15, 15, 64);
    Insn.Alu_ri (Insn.Shl, 4, 5, -1);
    Insn.Un (Insn.Neg, 1, 2);
    Insn.Un (Insn.Lnot, 3, 3);
    Insn.Load (2, 15, 24, 8);
    Insn.Load (2, 1, -8, 4);
    Insn.Store (15, 16, 3, 8);
    Insn.Store (1, 0, 2, 1);
    Insn.Loadg (4, 0x2000, 2);
    Insn.Storeg (0x2008, 5, 4);
    Insn.Lea (6, 0x123456789);
    Insn.Call 1234;
    Insn.Call (-1234);
    Insn.Call_ind 0x2000;
    Insn.Jmp (-5);
    Insn.Jnz (3, 100);
    Insn.Jz (3, -100);
    Insn.Ret;
    Insn.Push 6;
    Insn.Pop 6;
    Insn.Cli;
    Insn.Sti;
    Insn.Pause;
    Insn.Fence;
    Insn.Xchg (1, 2, 3);
    Insn.Hypercall 2;
    Insn.Rdtsc 1;
    Insn.Halt;
    Insn.Nop;
  ]

let test_roundtrip () =
  List.iter
    (fun insn ->
      let b = Encode.encode insn in
      check_int
        (Mv_isa.Asm.insn_to_string insn ^ " size")
        (Insn.size insn) (Bytes.length b);
      let decoded, size = Decode.decode b ~off:0 in
      check_bool (Mv_isa.Asm.insn_to_string insn ^ " roundtrip") true (decoded = insn);
      check_int "decoded size" (Insn.size insn) size)
    sample_insns

let test_paper_sizes () =
  (* "On IA-32, a far-call site is 5 bytes large" — the inlining budget *)
  check_int "call is 5 bytes" 5 Insn.call_size;
  check_int "jmp is 5 bytes" 5 Insn.jmp_size;
  check_int "indirect call is 6 bytes" 6 (Insn.size (Insn.Call_ind 0));
  check_int "nop is 1 byte" 1 (Insn.size Insn.Nop);
  check_int "cli fits a call site" 1 (Insn.size Insn.Cli)

let test_sequence_encoding () =
  let seq = [ Insn.Cli; Insn.Call 0; Insn.Sti; Insn.Ret ] in
  let b, offsets = Encode.encode_seq seq in
  check_int "total size" (1 + 5 + 1 + 1) (Bytes.length b);
  check_bool "offsets" true (offsets = [| 0; 1; 6; 7 |]);
  let listing = Decode.decode_range b ~off:0 ~len:(Bytes.length b) in
  check_int "decode_range count" 4 (List.length listing)

let test_patch_rel32 () =
  let b = Encode.encode (Insn.Call 0) in
  (* pretend the call sits at absolute offset 0; retarget it to 0x1000 *)
  Encode.patch_rel32 b ~off:0 ~target:0x1000;
  check_int "patched target" 0x1000 (Encode.read_rel32_target b ~off:0);
  (match Decode.decode b ~off:0 with
  | Insn.Call rel, _ -> check_int "rel32 value" (0x1000 - 5) rel
  | _ -> Alcotest.fail "still a call");
  (* patching a non-call must be refused *)
  let r = Encode.encode Insn.Ret in
  match Encode.patch_rel32 r ~off:0 ~target:0 with
  | exception Encode.Encode_error _ -> ()
  | () -> Alcotest.fail "expected patch_rel32 to reject a ret"

let test_encode_validation () =
  let expect_reject insn =
    match Encode.encode insn with
    | exception Encode.Encode_error _ -> ()
    | _ -> Alcotest.fail "expected an encode error"
  in
  expect_reject (Insn.Mov_rr (16, 0));
  expect_reject (Insn.Mov_rr (0, -1));
  expect_reject (Insn.Alu_ri (Insn.Add, 0, 0, 1 lsl 40));
  expect_reject (Insn.Loadg (0, -1, 8));
  expect_reject (Insn.Loadg (0, 1 lsl 33, 8));
  expect_reject (Insn.Load (0, 0, 0, 3));
  expect_reject (Insn.Hypercall 999)

let test_decode_validation () =
  let expect_reject bytes =
    match Decode.decode bytes ~off:0 with
    | exception Decode.Decode_error _ -> ()
    | _ -> Alcotest.fail "expected a decode error"
  in
  expect_reject (Bytes.of_string "\x00");
  expect_reject (Bytes.of_string "\xff");
  (* bad register byte in mov_rr *)
  expect_reject (Bytes.of_string "\x02\x20\x00");
  (* bad width in load *)
  let bad_load = Encode.encode (Insn.Load (0, 0, 0, 8)) in
  Bytes.set bad_load 7 '\x05';
  expect_reject bad_load

let test_position_independence_classification () =
  check_bool "cli is PI" true (Insn.position_independent Insn.Cli);
  check_bool "storeg is PI" true (Insn.position_independent (Insn.Storeg (0, 0, 8)));
  check_bool "call is not PI" false (Insn.position_independent (Insn.Call 0));
  check_bool "jnz is not PI" false (Insn.position_independent (Insn.Jnz (0, 0)));
  check_bool "ret is not inlineable" false (Insn.position_independent Insn.Ret)

(* qcheck: arbitrary valid instructions round-trip *)
let arbitrary_insn : Insn.t QCheck.arbitrary =
  let open QCheck.Gen in
  let reg = int_range 0 15 in
  let width = oneofl [ 1; 2; 4; 8 ] in
  let imm32 = int_range (-0x40000000) 0x3FFFFFFF in
  let abs32 = int_range 0 0x7FFFFFFF in
  let alu =
    oneofl
      [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Mod; Insn.Band; Insn.Bor;
        Insn.Bxor; Insn.Shl; Insn.Shr; Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le;
        Insn.Gt; Insn.Ge ]
  in
  let gen =
    oneof
      [
        map2 (fun r i -> Insn.Mov_ri (r, i)) reg int;
        map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg;
        (let* op = alu and* d = reg and* a = reg and* b = reg in
         return (Insn.Alu (op, d, a, b)));
        (let* op = alu and* d = reg and* a = reg and* i = imm32 in
         return (Insn.Alu_ri (op, d, a, i)));
        (let* d = reg and* a = reg and* o = imm32 and* w = width in
         return (Insn.Load (d, a, o, w)));
        (let* a = reg and* o = imm32 and* s = reg and* w = width in
         return (Insn.Store (a, o, s, w)));
        (let* d = reg and* a = abs32 and* w = width in
         return (Insn.Loadg (d, a, w)));
        map (fun r -> Insn.Call r) imm32;
        map (fun r -> Insn.Jmp r) imm32;
        (let* r = reg and* rel = imm32 in
         return (Insn.Jnz (r, rel)));
        return Insn.Ret;
        return Insn.Nop;
        map (fun r -> Insn.Push r) reg;
      ]
  in
  QCheck.make ~print:Mv_isa.Asm.insn_to_string gen

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 arbitrary_insn (fun insn ->
      let b = Encode.encode insn in
      let decoded, size = Decode.decode b ~off:0 in
      decoded = insn && size = Bytes.length b)

let suite =
  [
    tc "sample instruction roundtrip" test_roundtrip;
    tc "paper-relevant sizes" test_paper_sizes;
    tc "sequence encoding" test_sequence_encoding;
    tc "patch_rel32" test_patch_rel32;
    tc "encode validation" test_encode_validation;
    tc "decode validation" test_decode_validation;
    tc "position-independence classification" test_position_independence_classification;
    (* pinned seed, QCHECK_SEED honoured — see test_props.ml *)
    Test_props.to_alcotest prop_roundtrip;
  ]
