(* The causal-tracing and flight-recorder battery.

   Two layers: synthetic streams with hand-computed answers pin the
   analyzer's arithmetic (straggler choice, critical-path length, chain
   reconstruction), and pinned-seed SMP runs pin the end-to-end
   invariants the paper-level claims rest on — every Ipi_send of a
   completed rendezvous has exactly one Ipi_ack, the reconstructed
   critical path length equals the Rendezvous_end latency the machine
   reported, and an injected slow-ack straggler is deterministically the
   hart the blame ranking fingers.  The flight recorder's window
   arithmetic, binary round-trip, artifact gating and zero-cycle
   overhead close the file. *)

open Util
module Harness = Mv_workloads.Harness
module Spinlock = Mv_workloads.Spinlock
module Smp = Mv_vm.Smp
module Machine = Mv_vm.Machine
module Trace = Mv_obs.Trace
module Causal = Mv_obs.Causal
module Flight = Mv_obs.Flight
module Metrics = Mv_obs.Metrics
module Json = Mv_obs.Json

let st ts seq hart hseq ev = { Trace.ts; seq; hart; hseq; ev }

let check_float msg expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* A three-hart rendezvous with a clear straggler: hart 1 acks after 4
   cycles, hart 2 after 9; the end latency is hart 2's wait. *)
let synthetic_rendezvous_stream =
  [
    st 0.0 0 0 0 (Trace.Rendezvous_begin { rdv = 1; initiator = 0; waiting = 2 });
    st 0.0 1 0 1 (Trace.Ipi_send { rdv = 1; from_hart = 0; to_hart = 1 });
    st 0.0 2 0 2 (Trace.Ipi_send { rdv = 1; from_hart = 0; to_hart = 2 });
    st 4.0 3 1 0 (Trace.Ipi_ack { rdv = 1; hart = 1; wait = 4.0; at = 100 });
    st 4.0 4 1 1
      (Trace.Causal_edge { edge = "ipi"; id = 1; src_hart = 0; dst_hart = 1 });
    st 9.0 5 2 0 (Trace.Ipi_ack { rdv = 1; hart = 2; wait = 9.0; at = 140 });
    st 9.0 6 2 1
      (Trace.Causal_edge { edge = "ipi"; id = 1; src_hart = 0; dst_hart = 2 });
    st 9.0 7 0 3
      (Trace.Rendezvous_end { rdv = 1; initiator = 0; acks = 2; latency = 9.0 });
    st 9.0 8 0 4
      (Trace.Causal_edge
         { edge = "rendezvous"; id = 1; src_hart = 2; dst_hart = 0 });
  ]

let test_timelines_partition_by_hart () =
  let lanes = Causal.timelines synthetic_rendezvous_stream in
  check_int "three lanes" 3 (List.length lanes);
  check_int "lanes sorted by hart" 0 (fst (List.nth lanes 0));
  check_int "hart 0 lane holds its five events" 5
    (List.length (List.assoc 0 lanes));
  check_int "hart 1 lane" 2 (List.length (List.assoc 1 lanes));
  check_int "hart 2 lane" 2 (List.length (List.assoc 2 lanes));
  (* each lane is its hart's program order: hseq strictly increasing *)
  List.iter
    (fun (_, lane) ->
      ignore
        (List.fold_left
           (fun prev (s : Trace.stamped) ->
             check_bool "hseq increases along a lane" true (s.Trace.hseq > prev);
             s.Trace.hseq)
           (-1) lane))
    lanes

let test_edges_decode_kinds_and_endpoints () =
  let edges = Causal.edges synthetic_rendezvous_stream in
  check_int "three cross-hart edges" 3 (List.length edges);
  let kinds = List.map (fun (e : Causal.edge) -> e.Causal.e_kind) edges in
  check_bool "ipi edges present" true (List.mem "ipi" kinds);
  check_bool "rendezvous edge present" true (List.mem "rendezvous" kinds);
  let rdv_edge =
    List.find (fun (e : Causal.edge) -> e.Causal.e_kind = "rendezvous") edges
  in
  check_int "release edge leaves the straggler" 2 rdv_edge.Causal.e_src;
  check_int "release edge lands on the initiator" 0 rdv_edge.Causal.e_dst;
  check_int "edge carries the rdv id" 1 rdv_edge.Causal.e_id

let test_straggler_and_critical_path_synthetic () =
  match Causal.rendezvous synthetic_rendezvous_stream with
  | [ r ] ->
      check_int "rdv id" 1 r.Causal.r_id;
      check_int "two sends in send order" 2 (List.length r.Causal.r_sends);
      (match Causal.straggler r with
      | Some a ->
          check_int "straggler is the slow hart" 2 a.Causal.a_hart;
          check_float "straggler wait" 9.0 a.Causal.a_wait;
          check_int "straggler parked pc survives" 140 a.Causal.a_at
      | None -> Alcotest.fail "straggler expected for a contended rendezvous");
      let path = Causal.critical_path r in
      check_int "begin, send, ack, end" 4 (List.length path);
      let harts = List.map (fun (p : Causal.path_step) -> p.Causal.p_hart) path in
      check_bool "path crosses initiator and straggler" true
        (harts = [ 0; 0; 2; 0 ]);
      check_float "path length equals the reported latency" 9.0
        (Causal.critical_path_length r)
  | rs -> Alcotest.failf "expected one rendezvous, got %d" (List.length rs)

let test_rank_stragglers_orders_by_total_wait () =
  (* second rendezvous: hart 1 waits 3, hart 2 waits 2 — hart 2 still
     owns the most total wait (11 vs 7) despite an equal straggle count
     being impossible here; then flip hart 1 into the straggler slot and
     check total wait keeps ranking hart 2 first. *)
  let second =
    [
      st 20.0 9 0 5
        (Trace.Rendezvous_begin { rdv = 2; initiator = 0; waiting = 2 });
      st 20.0 10 0 6 (Trace.Ipi_send { rdv = 2; from_hart = 0; to_hart = 1 });
      st 20.0 11 0 7 (Trace.Ipi_send { rdv = 2; from_hart = 0; to_hart = 2 });
      st 22.0 12 2 2 (Trace.Ipi_ack { rdv = 2; hart = 2; wait = 2.0; at = 8 });
      st 23.0 13 1 2 (Trace.Ipi_ack { rdv = 2; hart = 1; wait = 3.0; at = 12 });
      st 23.0 14 0 8
        (Trace.Rendezvous_end { rdv = 2; initiator = 0; acks = 2; latency = 3.0 });
    ]
  in
  let rdvs = Causal.rendezvous (synthetic_rendezvous_stream @ second) in
  check_int "two rendezvous reconstructed" 2 (List.length rdvs);
  match Causal.rank_stragglers rdvs with
  | first :: second_rank :: _ ->
      check_int "hart 2 owns the most wait" 2 first.Causal.h_hart;
      check_float "its total wait" 11.0 first.Causal.h_total_wait;
      check_float "its worst wait" 9.0 first.Causal.h_max_wait;
      check_int "it straggled once" 1 first.Causal.h_straggled;
      check_int "hart 1 ranks second" 1 second_rank.Causal.h_hart;
      check_int "hart 1 acked both rendezvous" 2 second_rank.Causal.h_acks
  | rs -> Alcotest.failf "expected two ranked harts, got %d" (List.length rs)

let test_to_metrics_feeds_hart_histograms () =
  let m = Metrics.create () in
  Causal.to_metrics m (Causal.rendezvous synthetic_rendezvous_stream);
  (match Metrics.histogram_summary m "mv_hart_wait_cycles" [ ("hart", "2") ] with
  | Some h ->
      check_int "one observation for hart 2" 1 h.Metrics.hs_count;
      check_float "hart 2 wait total" 9.0 h.Metrics.hs_sum
  | None -> Alcotest.fail "mv_hart_wait_cycles{hart=2} missing");
  check_int "hart 2 counted as straggler" 1
    (Metrics.counter_value m "mv_stragglers_total" [ ("hart", "2") ]);
  check_int "hart 1 never straggled" 0
    (Metrics.counter_value m "mv_stragglers_total" [ ("hart", "1") ])

let test_chains_reconstruct_commit_causality () =
  let stream =
    [
      st 0.0 0 0 0
        (Trace.Commit_begin
           { cid = 3; op = "commit_safe"; switches = [ ("config_smp", 1) ] });
      st 1.0 1 0 1 (Trace.Safe_defer { cid = 3; fn = "spin_lock" });
      st 1.5 2 0 2 (Trace.Safe_deny { cid = 3; fn = "other" });
      st 2.0 3 0 3 (Trace.Commit_end { cid = 3; op = "commit_safe"; bound = 1 });
      st 7.0 4 1 0 (Trace.Pending_drained { cid = 3; pset = 1; actions = 1 });
      st 7.0 5 1 1
        (Trace.Causal_edge { edge = "drain"; id = 3; src_hart = 0; dst_hart = 1 });
    ]
  in
  match Causal.chains stream with
  | [ c ] ->
      check_int "cid" 3 c.Causal.c_cid;
      check_string "op" "commit_safe" c.Causal.c_op;
      check_int "commit ran on hart 0" 0 c.Causal.c_hart;
      check_float "begin ts" 0.0 c.Causal.c_begin_ts;
      (match c.Causal.c_end_ts with
      | Some ts -> check_float "end ts" 2.0 ts
      | None -> Alcotest.fail "span should have closed");
      check_bool "deferred work journaled" true
        (c.Causal.c_defers = [ "spin_lock" ]);
      check_bool "denied work recorded" true (c.Causal.c_denies = [ "other" ]);
      (match c.Causal.c_drained with
      | Some (hart, ts) ->
          check_int "drained on the other hart" 1 hart;
          check_float "drain ts" 7.0 ts
      | None -> Alcotest.fail "drain should be linked by cid");
      check_bool "no rollback" false c.Causal.c_rolled_back
  | cs -> Alcotest.failf "expected one chain, got %d" (List.length cs)

let test_pairing_checker_flags_violations () =
  check_bool "clean stream has no violations" true
    (Causal.check_send_ack_pairing synthetic_rendezvous_stream = []);
  (* drop hart 1's ack but keep the end: the completed rendezvous now
     has a send with no matching ack *)
  let broken =
    List.filter
      (fun (s : Trace.stamped) ->
        match s.Trace.ev with
        | Trace.Ipi_ack { hart = 1; _ } -> false
        | _ -> true)
      synthetic_rendezvous_stream
  in
  check_bool "missing ack is flagged" true
    (Causal.check_send_ack_pairing broken <> []);
  (* an ack for a hart that was never sent to *)
  let phantom =
    synthetic_rendezvous_stream
    @ [ st 10.0 9 3 0 (Trace.Ipi_ack { rdv = 1; hart = 3; wait = 1.0; at = 0 }) ]
  in
  check_bool "phantom ack is flagged" true
    (Causal.check_send_ack_pairing phantom <> [])

(* ------------------------------------------------------------------ *)
(* Pinned-seed SMP integration                                         *)
(* ------------------------------------------------------------------ *)

(* The mid-run-commit contended run from the SMP battery: both harts
   hammer the spinlock, a commit lands once interrupts are live, the
   run drains to completion. *)
let contended_run ?(metrics = false) ~seed () =
  let s = Harness.smp_session1 ~n_harts:2 ~seed Spinlock.contended_source in
  Harness.enable_smp_tracing s;
  if metrics then Harness.enable_smp_metrics s;
  Harness.smp_set s "config_smp" 1;
  ignore (Harness.smp_commit s);
  Harness.smp_start s ~hart:0 "worker" [ 20 ];
  Harness.smp_start s ~hart:1 "worker" [ 20 ];
  let more = ref true in
  for _ = 1 to 120 do
    if !more then more := Harness.smp_step s
  done;
  let m0 = Smp.machine s.Harness.smp 0 in
  while !more && not m0.Machine.irq_enabled do
    more := Harness.smp_step s
  done;
  ignore (Harness.smp_commit s);
  Harness.smp_run s;
  s

let test_send_ack_invariant_on_pinned_seeds () =
  List.iter
    (fun seed ->
      let s = contended_run ~seed () in
      let events = Harness.smp_trace_events s in
      (match Causal.check_send_ack_pairing events with
      | [] -> ()
      | v ->
          Alcotest.failf "seed %d: pairing violated: %s" seed
            (String.concat "; " v));
      check_bool "rendezvous happened" true (Causal.rendezvous events <> []))
    [ 1; 7; 42 ]

let test_critical_path_equals_reported_latency () =
  List.iter
    (fun seed ->
      let s = contended_run ~seed () in
      let completed =
        List.filter
          (fun (r : Causal.rendezvous) -> r.Causal.r_latency <> None)
          (Causal.rendezvous (Harness.smp_trace_events s))
      in
      check_bool "completed rendezvous recorded" true (completed <> []);
      List.iter
        (fun (r : Causal.rendezvous) ->
          let latency = Option.get r.Causal.r_latency in
          check_bool "critical path reconstructed" true
            (Causal.critical_path r <> []);
          check_float
            (Printf.sprintf "seed %d rdv #%d path length" seed r.Causal.r_id)
            latency
            (Causal.critical_path_length r))
        completed)
    [ 1; 7; 42 ]

(* An interrupts-always-on spin kernel for the chaos storm: the slow-ack
   victim squanders its ack opportunities by executing, not by sitting in
   a cli section, so a generous budget cannot deadlock the rendezvous. *)
let storm_source =
  {|
  multiverse int config_smp;
  int lock_word;
  multiverse void spin_lock() {
    if (config_smp) { lock_word = lock_word + 1; }
  }
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) { spin_lock(); }
  }
|}

(* A three-hart patch storm with hart 2's ack channel sabotaged: blame
   must deterministically finger hart 2. *)
let test_blame_fingers_injected_straggler () =
  let s = Harness.smp_session1 ~n_harts:3 ~seed:42 storm_source in
  Harness.enable_smp_tracing s;
  Smp.set_slow_ack s.Harness.smp (Some (2, 25));
  Harness.smp_set s "config_smp" 1;
  for h = 0 to 2 do
    Harness.smp_start s ~hart:h "bench_loop" [ 400 ]
  done;
  let more = ref true in
  for round = 1 to 3 do
    for _ = 1 to 120 do
      if !more then more := Harness.smp_step s
    done;
    if round mod 2 = 1 then ignore (Harness.smp_commit s)
    else ignore (Harness.smp_revert s)
  done;
  Harness.smp_run s;
  let events = Harness.smp_trace_events s in
  let rdvs = Causal.rendezvous events in
  check_bool "storm produced rendezvous" true (rdvs <> []);
  match Causal.rank_stragglers rdvs with
  | top :: _ ->
      check_int "slow hart tops the blame ranking" 2 top.Causal.h_hart;
      check_bool "with positive attributed wait" true
        (top.Causal.h_total_wait > 0.0);
      check_bool "and at least one straggled rendezvous" true
        (top.Causal.h_straggled >= 1)
  | [] -> Alcotest.fail "no harts ranked"

let test_smp_metrics_carry_hart_labels () =
  let s = contended_run ~seed:7 () in
  (* replay the recorded stream through a registry wired like
     enable_smp_metrics: the bridge is a pure sink, so feeding it the
     stamped events reproduces the labels the live wiring emits *)
  let m = Metrics.create () in
  Causal.to_metrics m (Causal.rendezvous (Harness.smp_trace_events s));
  let with_wait =
    List.filter
      (fun h ->
        Metrics.histogram_summary m "mv_hart_wait_cycles"
          [ ("hart", string_of_int h) ]
        <> None)
      [ 0; 1 ]
  in
  check_bool "some hart accumulated rendezvous wait" true (with_wait <> [])

let test_live_smp_metrics_bridge () =
  (* the mid-run commit is what produces IPIs: only busy harts owe acks *)
  let s = contended_run ~metrics:true ~seed:1 () in
  let m = Option.get (Harness.smp_metrics s) in
  check_bool "causal edges counted by kind" true
    (Metrics.counter_value m "mv_causal_edges_total" [ ("edge", "ipi") ] >= 1);
  let commit_hist_harts =
    List.filter
      (fun h ->
        Metrics.histogram_summary m "mv_patch_latency_cycles"
          [ ("op", "commit"); ("hart", string_of_int h) ]
        <> None)
      [ 0; 1 ]
  in
  check_bool "patch latency histogram carries a hart label" true
    (commit_hist_harts <> [])

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* one of each constructor; Commit_begin's switch list is the recorder's
   one documented lossy field and decodes as [] *)
let sample_events =
  [
    Trace.Commit_begin { cid = 1; op = "commit"; switches = [ ("config_smp", 1) ] };
    Trace.Variant_selected { fn = "spin_lock"; variant = "spin_lock.config_smp=1" };
    Trace.Site_retargeted { fn = "caller"; site = 10; target = 200 };
    Trace.Site_inlined { fn = "caller"; site = 12; target = 220 };
    Trace.Prologue_patched { fn = "spin_lock"; target = 240 };
    Trace.Fallback { fn = "other" };
    Trace.Safe_defer { cid = 1; fn = "spin_lock" };
    Trace.Safe_deny { cid = 1; fn = "other" };
    Trace.Safepoint_poll { pending = 1 };
    Trace.Pending_drained { cid = 1; pset = 3; actions = 2 };
    Trace.Pending_rollback { cid = 1; pset = 4 };
    Trace.Icache_flush { hart = 1; addr = 64; len = 8 };
    Trace.Ipi_send { rdv = 7; from_hart = 0; to_hart = 1 };
    Trace.Ipi_ack { rdv = 7; hart = 1; wait = 12.5; at = 128 };
    Trace.Rendezvous_begin { rdv = 7; initiator = 0; waiting = 1 };
    Trace.Rendezvous_end { rdv = 7; initiator = 0; acks = 1; latency = 12.5 };
    Trace.Causal_edge { edge = "ipi"; id = 7; src_hart = 0; dst_hart = 1 };
    Trace.Commit_end { cid = 1; op = "commit"; bound = 3 };
  ]

let expected_decode ev =
  match ev with
  | Trace.Commit_begin c -> Trace.Commit_begin { c with switches = [] }
  | ev -> ev

let counter_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1.0;
    !t

let test_flight_window_is_bounded () =
  let f = Flight.create ~capacity:4 ~clock:(counter_clock ()) () in
  for i = 0 to 9 do
    Flight.record f (Trace.Safepoint_poll { pending = i })
  done;
  check_int "recorded counts everything" 10 (Flight.recorded f);
  check_int "capacity" 4 (Flight.capacity f);
  check_int "dropped = recorded - capacity" 6 (Flight.dropped f);
  let window = Flight.events f in
  check_int "window holds the last four" 4 (List.length window);
  List.iteri
    (fun i (s : Trace.stamped) ->
      check_int "seq survives overflow" (6 + i) s.Trace.seq;
      check_int "hseq is dense in the window" i s.Trace.hseq;
      match s.Trace.ev with
      | Trace.Safepoint_poll { pending } ->
          check_int "oldest-first, newest kept" (6 + i) pending
      | _ -> Alcotest.fail "wrong event decoded")
    window

let test_flight_binary_roundtrip () =
  let f = Flight.create ~capacity:64 ~hart:(fun () -> 3) ~clock:(counter_clock ()) () in
  List.iter (Flight.record f) sample_events;
  let decoded = Flight.events f in
  check_int "every constructor decodes" (List.length sample_events)
    (List.length decoded);
  List.iter2
    (fun ev (s : Trace.stamped) ->
      if expected_decode ev <> s.Trace.ev then
        Alcotest.failf "%s did not round-trip" (Trace.event_name ev))
    sample_events decoded;
  (* intrinsic hart attribution beats the hart source *)
  let ack =
    List.find
      (fun (s : Trace.stamped) ->
        match s.Trace.ev with Trace.Ipi_ack _ -> true | _ -> false)
      decoded
  in
  check_int "ack attributed to the acking hart" 1 ack.Trace.hart;
  let poll =
    List.find
      (fun (s : Trace.stamped) ->
        match s.Trace.ev with Trace.Safepoint_poll _ -> true | _ -> false)
      decoded
  in
  check_int "hart source stamps the rest" 3 poll.Trace.hart

let test_flight_dump_json_roundtrip () =
  let f = Flight.create ~capacity:64 ~clock:(counter_clock ()) () in
  List.iter (Flight.record f) sample_events;
  let doc =
    match Json.parse (Flight.dump_string f ~reason:"unit-test" ()) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "dump does not parse: %s" e
  in
  (match doc with
  | Json.Obj fields ->
      check_bool "schema tag" true
        (List.assoc_opt "schema" fields = Some (Json.String Flight.schema));
      check_bool "reason recorded" true
        (List.assoc_opt "reason" fields = Some (Json.String "unit-test"))
  | _ -> Alcotest.fail "dump is not an object");
  let reparsed = Flight.events_of_dump doc in
  check_int "dump decodes every event back" (List.length sample_events)
    (List.length reparsed);
  List.iter2
    (fun (a : Trace.stamped) (b : Trace.stamped) ->
      if a.Trace.ev <> b.Trace.ev then
        Alcotest.failf "%s did not survive the JSON round-trip"
          (Trace.event_name a.Trace.ev);
      check_float "timestamps survive" a.Trace.ts b.Trace.ts;
      check_int "harts survive" a.Trace.hart b.Trace.hart)
    (Flight.events f) reparsed;
  check_bool "unknown names decode to None" true
    (Flight.event_of_json "not_an_event" (Json.Obj []) = None)

let fresh_dir prefix =
  let file = Filename.temp_file prefix "" in
  Sys.remove file;
  ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote file)));
  file

let test_flight_artifact_writing () =
  let f = Flight.create ~capacity:8 ~clock:(counter_clock ()) () in
  Flight.record f (Trace.Fallback { fn = "f" });
  (* explicit dir wins over the environment *)
  let dir = fresh_dir "mvflight" in
  (match Flight.write_artifact f ~reason:"unit-test" ~name:"probe" ~dir () with
  | Some path ->
      check_bool "written under dir" true (Filename.dirname path = dir);
      check_bool "flight.json suffix" true
        (Filename.check_suffix path ".flight.json");
      let ic = open_in path in
      let n = in_channel_length ic in
      let body = really_input_string ic n in
      close_in ic;
      (match Json.parse body with
      | Ok doc ->
          check_int "artifact decodes" 1 (List.length (Flight.events_of_dump doc))
      | Error e -> Alcotest.failf "artifact does not parse: %s" e)
  | None -> Alcotest.fail "write_artifact with ~dir must write");
  (* unwritable dir degrades to None instead of raising *)
  check_bool "unwritable dir returns None" true
    (Flight.write_artifact f ~reason:"unit-test" ~name:"probe"
       ~dir:"/proc/no-such-dir/nested" ()
    = None)

(* A guest whose last loop iteration divides by zero: the escaping Fault
   must make the session's trap hook drop a parseable mv-flight/1
   artifact into MV_SMP_ARTIFACT_DIR. *)
let trap_source =
  {|
  multiverse int config_smp;
  int lock_word;
  multiverse void spin_lock() {
    if (config_smp) { lock_word = lock_word + 1; }
  }
  void bench_loop(int n) {
    for (int i = 0; i < n; i = i + 1) {
      spin_lock();
      lock_word = lock_word / (n - 1 - i);
    }
  }
|}

let test_trap_hook_writes_postmortem_artifact () =
  let saved = Sys.getenv_opt "MV_SMP_ARTIFACT_DIR" in
  let dir = fresh_dir "mvtrap" in
  Unix.putenv "MV_SMP_ARTIFACT_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      match saved with
      | Some v -> Unix.putenv "MV_SMP_ARTIFACT_DIR" v
      | None -> Unix.putenv "MV_SMP_ARTIFACT_DIR" "")
    (fun () ->
      let s = Harness.session1 trap_source in
      Harness.set s "config_smp" 1;
      ignore (Harness.commit s);
      (match Harness.call s "bench_loop" [ 5 ] with
      | exception Machine.Fault _ -> ()
      | _ -> Alcotest.fail "division by zero should fault");
      let dumps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".flight.json")
      in
      check_int "exactly one flight dump" 1 (List.length dumps);
      let path = Filename.concat dir (List.hd dumps) in
      let ic = open_in path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.parse body with
      | Error e -> Alcotest.failf "trap dump does not parse: %s" e
      | Ok (Json.Obj fields as doc) ->
          check_bool "mv-flight/1 schema" true
            (List.assoc_opt "schema" fields = Some (Json.String Flight.schema));
          check_bool "vm-trap reason" true
            (List.assoc_opt "reason" fields = Some (Json.String "vm-trap"));
          check_bool "fault message attached" true
            (List.mem_assoc "fault" fields);
          check_bool "runtime stats attached" true
            (List.mem_assoc "runtime" fields);
          check_bool "hart summaries attached" true
            (List.mem_assoc "harts" fields);
          check_bool "window decodes with events" true
            (Flight.events_of_dump doc <> [])
      | Ok _ -> Alcotest.fail "trap dump is not an object")

let test_flight_events_always_on () =
  let s = Harness.session1 trap_source in
  Harness.set s "config_smp" 1;
  ignore (Harness.commit s);
  check_bool "flight records without any enable_* call" true
    (Flight.recorded (Harness.flight s) > 0);
  check_bool "window decodes" true (Harness.flight_events s <> []);
  match Json.parse (Harness.flight_dump s) with
  | Ok (Json.Obj fields) ->
      check_bool "on-demand dump carries the schema" true
        (List.assoc_opt "schema" fields = Some (Json.String Flight.schema))
  | Ok _ | Error _ -> Alcotest.fail "flight_dump must be a JSON object"

let test_smp_flight_always_on () =
  let s = contended_run ~seed:42 () in
  check_bool "container flight recorded the run" true
    (Flight.recorded (Harness.smp_flight s) > 0);
  let window = Harness.smp_flight_events s in
  check_bool "window decodes" true (window <> []);
  check_bool "window saw more than one hart" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun (st : Trace.stamped) -> st.Trace.hart) window))
    > 1);
  match Json.parse (Harness.smp_flight_dump s) with
  | Ok doc ->
      check_int "dump round-trips the window" (List.length window)
        (List.length (Flight.events_of_dump doc))
  | Error e -> Alcotest.failf "smp flight dump does not parse: %s" e

(* The recorder must never move the simulated clock: a session that only
   has the always-on flight armed and one with the full opt-in
   observability stack must report bit-identical guest cycles. *)
let test_flight_zero_cycle_overhead () =
  let run enable =
    let s = Harness.session1 trap_source in
    if enable then begin
      Harness.enable_tracing s;
      Harness.enable_metrics s
    end;
    Harness.set s "config_smp" 1;
    ignore (Harness.commit s);
    let c = Harness.cycles_of_call s "bench_loop" [ 0 ] in
    (c, Flight.recorded (Harness.flight s))
  in
  let bare_cycles, bare_recorded = run false in
  let full_cycles, _ = run true in
  check_bool "flight was live during the bare run" true (bare_recorded > 0);
  check_bool "guest cycles are bit-identical" true (bare_cycles = full_cycles)

let suite =
  [
    tc "timelines partition the stream by hart" test_timelines_partition_by_hart;
    tc "causal edges decode kinds and endpoints"
      test_edges_decode_kinds_and_endpoints;
    tc "straggler and critical path on a synthetic rendezvous"
      test_straggler_and_critical_path_synthetic;
    tc "straggler ranking orders by total wait"
      test_rank_stragglers_orders_by_total_wait;
    tc "to_metrics feeds per-hart wait histograms"
      test_to_metrics_feeds_hart_histograms;
    tc "commit chains link defer and cross-hart drain"
      test_chains_reconstruct_commit_causality;
    tc "pairing checker flags missing and phantom acks"
      test_pairing_checker_flags_violations;
    tc_slow "send/ack pairing holds on pinned seeds"
      test_send_ack_invariant_on_pinned_seeds;
    tc_slow "critical path length equals reported latency"
      test_critical_path_equals_reported_latency;
    tc_slow "blame fingers an injected slow-ack straggler"
      test_blame_fingers_injected_straggler;
    tc "replayed stream yields hart wait histograms"
      test_smp_metrics_carry_hart_labels;
    tc "live SMP metrics bridge labels harts and counts edges"
      test_live_smp_metrics_bridge;
    tc "flight window is bounded and oldest-first" test_flight_window_is_bounded;
    tc "flight binary cells round-trip every constructor"
      test_flight_binary_roundtrip;
    tc "flight dump JSON round-trips" test_flight_dump_json_roundtrip;
    tc "flight artifacts write under an explicit dir"
      test_flight_artifact_writing;
    tc "trap hook writes a parseable postmortem artifact"
      test_trap_hook_writes_postmortem_artifact;
    tc "flight is armed without any enable call" test_flight_events_always_on;
    tc "smp flight records cross-hart windows" test_smp_flight_always_on;
    tc "flight adds zero simulated cycles" test_flight_zero_cycle_overhead;
  ]
