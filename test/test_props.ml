(* Property-based tests (qcheck).

   The central property is the paper's soundness claim (Section 7.4): for
   any program and any configuration assignment, a committed image behaves
   exactly like the generic, dynamically-evaluating one.

   Programs come from the fuzzer's full-language generator (Mv_fuzz.Gen)
   and the semantic checks are the fuzzer's differential oracles, so these
   properties and `mvfuzz` exercise exactly the same code paths: a qcheck
   counterexample is an mvfuzz seed and vice versa.

   Seeds are pinned for reproducibility; override with QCHECK_SEED=n.  On
   failure the seed is printed so the run can be replayed exactly. *)

module Gen = Mv_fuzz.Gen
module Schedule = Mv_fuzz.Schedule
module Oracle = Mv_fuzz.Oracle
module Driver = Mv_fuzz.Driver
module Image = Mv_link.Image
module Json = Mv_obs.Json

(* ------------------------------------------------------------------ *)
(* Seed pinning                                                        *)
(* ------------------------------------------------------------------ *)

let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x5eed )
  | None -> 0x5eed

(* [QCheck_alcotest.to_alcotest] without [~rand] self-initialises, which
   makes failures unreproducible; pin it, and name the seed on failure. *)
let to_alcotest test =
  let name, speed, f =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| qcheck_seed |])
      test
  in
  ( name,
    speed,
    fun () ->
      try f ()
      with e ->
        Printf.eprintf "[qcheck] reproduce with QCHECK_SEED=%d\n%!" qcheck_seed;
        raise e )

(* ------------------------------------------------------------------ *)
(* Case generation: defer to the fuzzer's generator                    *)
(* ------------------------------------------------------------------ *)

(* A case is a pure function of its seed, so the qcheck search space is
   just the seed space; a counterexample names the seed and the mvfuzz
   command that replays it. *)
let gen_case : Gen.case QCheck.Gen.t =
  QCheck.Gen.map
    (fun seed -> Gen.case ~cfg:Gen.small_cfg seed)
    (QCheck.Gen.int_range 0 1_000_000)

let arbitrary_case =
  QCheck.make
    ~print:(fun (c : Gen.case) ->
      Printf.sprintf "seed %d (replay: mvfuzz --small --seed %d --replay)\n%s"
        c.Gen.c_seed c.Gen.c_seed c.Gen.c_src)
    gen_case

(* Oracle-backed property: the named differential oracle stays silent. *)
let oracle_prop ~name ~count oracle =
  QCheck.Test.make ~name ~count arbitrary_case (fun c ->
      let sched = Driver.schedule_for c c.Gen.c_seed in
      match Oracle.run_named oracle c sched with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "%a" Oracle.pp_divergence d)

(** Section 7.4 soundness: committed == generic for every assignment,
    and the final revert restores the text segment byte-for-byte. *)
let prop_commit_soundness =
  oracle_prop ~name:"commit preserves semantics (soundness)" ~count:25
    "commit-soundness"

(** Machine execution matches the reference interpreter. *)
let prop_backend_differential =
  oracle_prop ~name:"machine matches the reference interpreter" ~count:25
    "interp-vs-vm"

(** Optimizer preserves semantics on random programs. *)
let prop_optimizer_preserves =
  oracle_prop ~name:"optimizer preserves semantics" ~count:25 "opt-vs-unopt"

(** Committing twice is a no-op; revert restores the pristine text. *)
let prop_commit_idempotent =
  oracle_prop ~name:"commit is idempotent, revert restores text" ~count:25
    "commit-idempotent"

(** Randomized commit/revert/safe-commit schedules (including mid-run
    safe ops injected at safepoints) never change observable behaviour
    relative to a generic image receiving only the value writes. *)
let prop_schedule_equiv =
  oracle_prop ~name:"patching schedules preserve semantics" ~count:25
    "schedule-equiv"

(** Case generation is deterministic: one seed, one program, bit for bit.
    Replayability of every mvfuzz/qcheck failure rests on this. *)
let prop_generator_deterministic =
  QCheck.Test.make ~name:"generator is deterministic per seed" ~count:40
    (QCheck.make (QCheck.Gen.int_range 0 1_000_000))
    (fun seed ->
      let a = Gen.case ~cfg:Gen.small_cfg seed in
      let b = Gen.case ~cfg:Gen.small_cfg seed in
      String.equal a.Gen.c_src b.Gen.c_src
      && a.Gen.c_args = b.Gen.c_args
      && a.Gen.c_assignments = b.Gen.c_assignments)

(** Schedules survive the JSON round-trip used by corpus files. *)
let prop_schedule_json_roundtrip =
  QCheck.Test.make ~name:"schedule JSON round-trip" ~count:40 arbitrary_case
    (fun c ->
      let sched = Driver.schedule_for c c.Gen.c_seed in
      let text = Format.asprintf "%a" Json.pp (Schedule.to_json sched) in
      match Json.parse text with
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m
      | Ok j -> (
          match Schedule.of_json j with
          | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
          | Ok sched' -> sched' = sched))

(** The guard boxes of a function's variants partition its domain:
    exactly one variant record matches every in-domain assignment.
    (Functions whose cross product exceeds the variant cap keep only the
    generic body and have no records to check.) *)
let prop_guards_partition_domain =
  QCheck.Test.make ~name:"variant guards partition the domain" ~count:15
    arbitrary_case (fun c ->
      let program = Core.Compiler.build_string c.Gen.c_src in
      let img = program.Core.Compiler.p_image in
      let fns = Core.Descriptor.parse_functions img in
      (* every switch's value space, pointer targets as addresses *)
      let spaces =
        List.map
          (fun (sw : Gen.switch) ->
            ( Image.symbol img sw.Gen.sw_name,
              sw.Gen.sw_domain
              @ List.map (fun t -> Image.symbol img t) sw.Gen.sw_targets ))
          c.Gen.c_switches
      in
      let assignments =
        List.fold_left
          (fun acc (addr, values) ->
            List.concat_map
              (fun partial -> List.map (fun v -> (addr, v) :: partial) values)
              acc)
          [ [] ] spaces
      in
      List.length assignments > 256
      || List.for_all
           (fun (f : Core.Descriptor.function_record) ->
             f.Core.Descriptor.fd_variants = []
             || List.for_all
                  (fun assignment ->
                    let matches =
                      List.filter
                        (fun (v : Core.Descriptor.variant_record) ->
                          List.for_all
                            (fun (g : Core.Descriptor.guard_record) ->
                              let value =
                                match
                                  List.assoc_opt g.Core.Descriptor.gr_var assignment
                                with
                                | Some v -> v
                                | None -> 0
                              in
                              g.Core.Descriptor.gr_lo <= value
                              && value <= g.Core.Descriptor.gr_hi)
                            v.Core.Descriptor.va_guards)
                        f.Core.Descriptor.fd_variants
                    in
                    List.length matches = 1)
                  assignments)
           fns)

(* ------------------------------------------------------------------ *)
(* Structural properties (no compilation involved)                     *)
(* ------------------------------------------------------------------ *)

(** Guard box covers are exact: an assignment satisfies some box iff it is
    in the covered set. *)
let prop_box_cover_exact =
  let gen =
    let open QCheck.Gen in
    let* n = int_range 1 8 in
    let* raw =
      list_repeat n
        (let* a = int_range 0 3 and* b = int_range 0 3 in
         return [ ("a", a); ("b", b) ])
    in
    return (List.sort_uniq compare raw)
  in
  let arb =
    QCheck.make
      ~print:(fun set ->
        String.concat "; "
          (List.map
             (fun assignment ->
               String.concat ","
                 (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) assignment))
             set))
      gen
  in
  QCheck.Test.make ~name:"guard boxes cover exactly the assignment set" ~count:300 arb
    (fun set ->
      let boxes = Core.Guard.boxes_of_assignments set in
      let satisfies assignment box =
        Core.Guard.satisfied_by box (fun v -> List.assoc v assignment)
      in
      let all_assignments =
        List.concat_map
          (fun a -> List.map (fun b -> [ ("a", a); ("b", b) ]) [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]
      in
      List.for_all
        (fun assignment ->
          let covered = List.exists (satisfies assignment) boxes in
          covered = List.mem assignment set)
        all_assignments)

(** Canonical forms are invariant under block-id and register renumbering. *)
let prop_canonical_form_invariant =
  QCheck.Test.make ~name:"canonical form invariant under renumbering" ~count:15
    arbitrary_case (fun c ->
      let prog, _ = Mv_ir.Lower.lower_string c.Gen.c_src in
      List.for_all
        (fun (fn : Mv_ir.Ir.fn) ->
          let renumber (fn : Mv_ir.Ir.fn) : Mv_ir.Ir.fn =
            let shift_block b = b + 1000 in
            let shift_reg r = r + 500 in
            let shift_op = function
              | Mv_ir.Ir.Reg r -> Mv_ir.Ir.Reg (shift_reg r)
              | Mv_ir.Ir.Imm n -> Mv_ir.Ir.Imm n
            in
            let shift_instr i =
              let i = Mv_ir.Ir.map_instr_operands shift_op i in
              match i with
              | Mv_ir.Ir.Imov (d, s) -> Mv_ir.Ir.Imov (shift_reg d, s)
              | Mv_ir.Ir.Iun (op, d, a) -> Mv_ir.Ir.Iun (op, shift_reg d, a)
              | Mv_ir.Ir.Ibin (op, d, a, b) -> Mv_ir.Ir.Ibin (op, shift_reg d, a, b)
              | Mv_ir.Ir.Iload (d, a, w) -> Mv_ir.Ir.Iload (shift_reg d, a, w)
              | Mv_ir.Ir.Istore (a, v, w) -> Mv_ir.Ir.Istore (a, v, w)
              | Mv_ir.Ir.Iloadg (d, s, w) -> Mv_ir.Ir.Iloadg (shift_reg d, s, w)
              | Mv_ir.Ir.Istoreg (s, v, w) -> Mv_ir.Ir.Istoreg (s, v, w)
              | Mv_ir.Ir.Iaddr (d, s) -> Mv_ir.Ir.Iaddr (shift_reg d, s)
              | Mv_ir.Ir.Icall (d, s, args) ->
                  Mv_ir.Ir.Icall (Option.map shift_reg d, s, args)
              | Mv_ir.Ir.Icallp (d, s, args) ->
                  Mv_ir.Ir.Icallp (Option.map shift_reg d, s, args)
              | Mv_ir.Ir.Iintr (d, intr, args) ->
                  Mv_ir.Ir.Iintr (Option.map shift_reg d, intr, args)
              | Mv_ir.Ir.Isafepoint id -> Mv_ir.Ir.Isafepoint id
            in
            let shift_term = function
              | Mv_ir.Ir.Tjmp t -> Mv_ir.Ir.Tjmp (shift_block t)
              | Mv_ir.Ir.Tbr (c', t, f) -> Mv_ir.Ir.Tbr (shift_op c', shift_block t, shift_block f)
              | Mv_ir.Ir.Tret v -> Mv_ir.Ir.Tret (Option.map shift_op v)
            in
            {
              fn with
              Mv_ir.Ir.fn_params = List.map shift_reg fn.Mv_ir.Ir.fn_params;
              fn_nregs = fn.Mv_ir.Ir.fn_nregs + 500;
              fn_blocks =
                List.map
                  (fun (b : Mv_ir.Ir.block) ->
                    {
                      Mv_ir.Ir.b_id = shift_block b.b_id;
                      b_instrs = List.map shift_instr b.b_instrs;
                      b_term = shift_term b.b_term;
                    })
                  fn.Mv_ir.Ir.fn_blocks;
            }
          in
          Mv_opt.Merge.equal_bodies fn (renumber fn))
        prog.Mv_ir.Ir.p_fns)

(** Interpreter truncation semantics. *)
let prop_truncate =
  QCheck.Test.make ~name:"truncate is idempotent and width-bounded" ~count:300
    QCheck.(pair (oneofl [ 1; 2; 4 ]) int)
    (fun (width, v) ->
      let u = Mv_ir.Interp.truncate ~width ~signed:false v in
      let s = Mv_ir.Interp.truncate ~width ~signed:true v in
      let bits = width * 8 in
      u >= 0
      && u < 1 lsl bits
      && s >= -(1 lsl (bits - 1))
      && s < 1 lsl (bits - 1)
      && Mv_ir.Interp.truncate ~width ~signed:false u = u
      && Mv_ir.Interp.truncate ~width ~signed:true s = s
      && u land ((1 lsl bits) - 1) = v land ((1 lsl bits) - 1))

let suite =
  List.map to_alcotest
    [
      prop_commit_soundness;
      prop_backend_differential;
      prop_optimizer_preserves;
      prop_commit_idempotent;
      prop_schedule_equiv;
      prop_generator_deterministic;
      prop_schedule_json_roundtrip;
      prop_guards_partition_domain;
      prop_box_cover_exact;
      prop_canonical_form_invariant;
      prop_truncate;
    ]
