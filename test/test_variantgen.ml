(* Variant-generation tests (Section 3): domain policies, the assignment
   cross product, merging, guard boxes, partial specialization, and the
   explosion cap. *)

open Util
module Ir = Mv_ir.Ir
module Vg = Core.Variantgen
module Domain = Core.Domain
module Guard = Core.Guard

let generate ?max_variants src =
  let prog = lower src in
  Vg.generate ?max_variants prog

let mv_fn result name =
  List.find (fun (mf : Vg.mv_function) -> String.equal mf.mf_name name)
    result.Vg.r_functions

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

let global_named prog name =
  List.find (fun (g : Ir.global) -> String.equal g.gl_name name) prog.Ir.p_globals

let test_default_domain () =
  let prog = lower "multiverse int c;" in
  match Domain.of_global (global_named prog "c") with
  | Domain.Values [ 0; 1 ] -> ()
  | _ -> Alcotest.fail "default domain must be {0, 1}"

let test_explicit_values_domain () =
  let prog = lower "multiverse values(3, 1, 2, 1) int c;" in
  match Domain.of_global (global_named prog "c") with
  | Domain.Values [ 1; 2; 3 ] -> ()  (* sorted, deduplicated *)
  | _ -> Alcotest.fail "explicit domain must be sorted and deduplicated"

let test_enum_domain () =
  let prog = lower "enum m { OFF = 0, LOW = 1, HIGH = 2 }; multiverse enum m c;" in
  match Domain.of_global (global_named prog "c") with
  | Domain.Values [ 0; 1; 2 ] -> ()
  | _ -> Alcotest.fail "enum domain must be the declared items"

let test_fnptr_domain () =
  let prog = lower "void f() { } multiverse fnptr c = &f;" in
  match Domain.of_global (global_named prog "c") with
  | Domain.Fnptr -> ()
  | _ -> Alcotest.fail "fnptr switches have no value domain"

let test_cross_product () =
  let assignments = Domain.cross_product [ ("a", [ 0; 1 ]); ("b", [ 0; 1; 2 ]) ] in
  check_int "size" 6 (List.length assignments);
  check_int "computed size" 6 (Domain.cross_product_size [ ("a", [ 0; 1 ]); ("b", [ 0; 1; 2 ]) ]);
  check_bool "contains (1, 2)" true (List.mem [ ("a", 1); ("b", 2) ] assignments)

(* ------------------------------------------------------------------ *)
(* Guard boxes                                                         *)
(* ------------------------------------------------------------------ *)

let test_single_box_cover () =
  (* {(a=0,b=0), (a=0,b=1)} is the product {0} x {0,1}: one box *)
  let boxes =
    Guard.boxes_of_assignments [ [ ("a", 0); ("b", 0) ]; [ ("a", 0); ("b", 1) ] ]
  in
  check_int "one box" 1 (List.length boxes);
  match boxes with
  | [ [ ra; rb ] ] ->
      check_string "var a" "a" ra.Guard.g_var;
      check_int "a lo" 0 ra.Guard.g_lo;
      check_int "a hi" 0 ra.Guard.g_hi;
      check_int "b lo" 0 rb.Guard.g_lo;
      check_int "b hi" 1 rb.Guard.g_hi
  | _ -> Alcotest.fail "unexpected box shape"

let test_non_product_set_splits () =
  (* {(0,0), (1,1)} is not a product: two point boxes *)
  let boxes =
    Guard.boxes_of_assignments [ [ ("a", 0); ("b", 0) ]; [ ("a", 1); ("b", 1) ] ]
  in
  check_int "two boxes" 2 (List.length boxes)

let test_non_contiguous_splits () =
  (* {0, 2} is a product but not contiguous: point boxes *)
  let boxes = Guard.boxes_of_assignments [ [ ("a", 0) ]; [ ("a", 2) ] ] in
  check_int "two boxes" 2 (List.length boxes)

let test_guard_satisfaction () =
  let g = [ { Guard.g_var = "a"; g_lo = 1; g_hi = 3 } ] in
  check_bool "inside" true (Guard.satisfied_by g (fun _ -> 2));
  check_bool "boundary low" true (Guard.satisfied_by g (fun _ -> 1));
  check_bool "boundary high" true (Guard.satisfied_by g (fun _ -> 3));
  check_bool "outside" false (Guard.satisfied_by g (fun _ -> 4))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let fig2 =
  {|
  multiverse bool a;
  multiverse int b;
  int w;
  void side() { w = w + 1; }
  multiverse void multi() {
    if (a) {
      side();
      if (b) { side(); }
    }
  }
|}

let test_figure2_generation () =
  let r = generate fig2 in
  let mf = mv_fn r "multi" in
  check_bool "switches sorted" true (mf.mf_switches = [ "a"; "b" ]);
  check_int "3 variants after merging" 3 (List.length mf.mf_variants);
  let symbols = List.map (fun (v : Vg.variant) -> v.v_symbol) mf.mf_variants in
  check_bool "merged symbol name" true (List.mem "multi.a=0.b=01" symbols);
  check_bool "a=1 b=0" true (List.mem "multi.a=1.b=0" symbols);
  check_bool "a=1 b=1" true (List.mem "multi.a=1.b=1" symbols)

let test_variants_are_appended_to_program () =
  let r = generate fig2 in
  let names = List.map (fun (f : Ir.fn) -> f.fn_name) r.Vg.r_prog.Ir.p_fns in
  check_bool "generic still present" true (List.mem "multi" names);
  check_bool "variant present" true (List.mem "multi.a=1.b=1" names);
  check_int "2 original + 3 variants" 5 (List.length names)

let test_variant_bodies_are_specialized () =
  let r = generate fig2 in
  let mf = mv_fn r "multi" in
  List.iter
    (fun (v : Vg.variant) ->
      (* no variant may still read a bound switch *)
      let reads = Ir.read_globals v.v_fn in
      check_bool (v.v_symbol ^ " reads no switch") true
        (not (List.mem "a" reads) && not (List.mem "b" reads));
      (* and no conditional branches remain for this two-switch function *)
      let branches =
        List.exists
          (fun (b : Ir.block) -> match b.b_term with Ir.Tbr _ -> true | _ -> false)
          v.v_fn.Ir.fn_blocks
      in
      check_bool (v.v_symbol ^ " branch-free") false branches)
    mf.mf_variants

let test_unreferenced_switch_not_bound () =
  let r =
    generate
      "multiverse int used; multiverse int unused; multiverse void f() { if (used) { } }"
  in
  let mf = mv_fn r "f" in
  check_bool "only the read switch binds" true (mf.mf_switches = [ "used" ])

let test_bind_restricts_switches () =
  let r =
    generate
      {|multiverse int a;
        multiverse int b;
        int w;
        multiverse bind(a) void f() {
          if (a) { w = w + 1; }
          if (b) { w = w + 2; }
        }|}
  in
  let mf = mv_fn r "f" in
  check_bool "only a is bound" true (mf.mf_switches = [ "a" ]);
  check_int "two variants" 2 (List.length mf.mf_variants);
  (* the variants still read b dynamically *)
  List.iter
    (fun (v : Vg.variant) ->
      check_bool (v.v_symbol ^ " still reads b") true
        (List.mem "b" (Ir.read_globals v.v_fn)))
    mf.mf_variants

let test_values_domain_generation () =
  let r =
    generate
      {|multiverse values(0, 1, 2) int mode;
        int w;
        multiverse void f() {
          if (mode == 1) { w = 1; }
          if (mode == 2) { w = 2; }
        }|}
  in
  let mf = mv_fn r "f" in
  check_int "three variants" 3 (List.length mf.mf_variants)

let test_explosion_cap () =
  let r =
    generate ~max_variants:8
      {|multiverse values(0, 1, 2, 3) int a;
        multiverse values(0, 1, 2, 3) int b;
        int w;
        multiverse void f() { if (a) { w = 1; } if (b) { w = 2; } }|}
  in
  let mf = mv_fn r "f" in
  check_int "no variants generated" 0 (List.length mf.mf_variants);
  check_bool "warning emitted" true
    (List.exists
       (fun w ->
         let needle = "cross product" in
         let lh = String.length w and ln = String.length needle in
         let rec go i = i + ln <= lh && (String.sub w i ln = needle || go (i + 1)) in
         go 0)
       r.Vg.r_warnings)

let test_no_switch_function () =
  let r = generate "multiverse void f() { }" in
  let mf = mv_fn r "f" in
  check_int "no variants" 0 (List.length mf.mf_variants);
  check_bool "no switches" true (mf.mf_switches = [])

let test_enum_switch_generation () =
  let r =
    generate
      {|enum mode { OFF, SLOW, FAST };
        multiverse enum mode m;
        int w;
        multiverse void f() {
          if (m == SLOW) { w = 1; }
          if (m == FAST) { w = 2; }
        }|}
  in
  let mf = mv_fn r "f" in
  check_int "one variant per enum item" 3 (List.length mf.mf_variants)

let test_variant_semantic_equivalence () =
  (* every variant must compute exactly what the generic computes under the
     variant's assignment — Section 7.4 soundness *)
  let prog = lower fig2 in
  let r = Vg.generate prog in
  let mf = mv_fn r "multi" in
  List.iter
    (fun (v : Vg.variant) ->
      List.iter
        (fun assignment ->
          (* generic run *)
          let p1 = lower fig2 in
          let t1 = Mv_ir.Interp.create [ p1 ] in
          List.iter (fun (sym, value) -> Mv_ir.Interp.write_global t1 sym value) assignment;
          let _ = Mv_ir.Interp.run t1 "multi" [] in
          let generic_w = Mv_ir.Interp.read_global t1 "w" in
          (* variant run: build a program where f is replaced by the variant *)
          let t2 = Mv_ir.Interp.create [ r.Vg.r_prog ] in
          List.iter (fun (sym, value) -> Mv_ir.Interp.write_global t2 sym value) assignment;
          let _ = Mv_ir.Interp.run t2 v.v_symbol [] in
          let variant_w = Mv_ir.Interp.read_global t2 "w" in
          check_int
            (Printf.sprintf "%s under %s" v.v_symbol
               (String.concat ","
                  (List.map (fun (s, x) -> Printf.sprintf "%s=%d" s x) assignment)))
            generic_w variant_w)
        v.v_assignments)
    mf.mf_variants

let test_mutual_mv_calls () =
  (* a multiversed function calling another multiversed function *)
  let r =
    generate
      {|multiverse int c;
        int w;
        multiverse void inner() { if (c) { w = w + 1; } }
        multiverse void outer() {
          inner();
          if (c) { w = w + 10; }
        }|}
  in
  check_int "both functions processed" 2 (List.length r.Vg.r_functions);
  let outer = mv_fn r "outer" in
  (* outer's variants keep the call to the *generic* inner *)
  List.iter
    (fun (v : Vg.variant) ->
      let calls_inner =
        List.exists
          (fun (b : Ir.block) ->
            List.exists
              (function Ir.Icall (_, "inner", _) -> true | _ -> false)
              b.b_instrs)
          v.v_fn.Ir.fn_blocks
      in
      check_bool (v.v_symbol ^ " calls inner") true calls_inner)
    outer.mf_variants

(* ------------------------------------------------------------------ *)
(* Structural hash (the variant cache's dedup key)                     *)
(* ------------------------------------------------------------------ *)

let fn_named (prog : Ir.prog) name =
  List.find (fun (f : Ir.fn) -> String.equal f.Ir.fn_name name) prog.Ir.p_fns

(* Byte-for-byte clones hash identically even though the functions have
   different names — the hash covers the canonical body only, so the
   cache can share one resident copy across functions. *)
let test_hash_collides_across_equal_clones () =
  let prog =
    lower
      {|
      int w;
      void f() { w = w + 1; }
      void g() { w = w + 1; }
      void h() { w = w + 2; }
    |}
  in
  let hash name = Vg.structural_hash (fn_named prog name) in
  check_string "clone bodies collide" (hash "f") (hash "g");
  check_bool "distinct bodies do not" true (hash "f" <> hash "h")

(* Any single-instruction difference — a constant, an operator, an
   operand — must change the hash: the dedup key may never alias two
   semantically distinct bodies. *)
let test_hash_sensitive_to_single_instruction () =
  let base = "int w; int g; void f() { w = (w + 1) * 3; }" in
  let mutants =
    [
      "int w; int g; void f() { w = (w + 2) * 3; }";  (* constant *)
      "int w; int g; void f() { w = (w - 1) * 3; }";  (* operator *)
      "int w; int g; void f() { w = (g + 1) * 3; }";  (* operand *)
      "int w; int g; void f() { w = (w + 1) * 3; g = 0; }";  (* extra store *)
    ]
  in
  let hash src = Vg.structural_hash (fn_named (lower src) "f") in
  let h0 = hash base in
  check_string "hash is a hex digest" h0 (hash base);
  List.iteri
    (fun i m ->
      check_bool (Printf.sprintf "mutant %d changes the hash" i) true
        (hash m <> h0))
    mutants

(* The hash is a pure function of the body: re-lowering and re-hashing
   the same source (fresh Ir.fn values, fresh registers, fresh physical
   identities) reproduces the same digest, and lazily specializing the
   same recipe twice yields colliding bodies — which is what makes the
   dedup key meaningful across materializations. *)
let test_hash_stable_across_runs () =
  let src =
    {|
    multiverse bool a;
    int w;
    multiverse void f() { if (a) { w = w + 1; } else { w = w * 2; } }
  |}
  in
  let hash_of_run () =
    let result = Vg.generate ~lazy_variants:true (lower src) in
    let recipe =
      List.find (fun (r : Vg.recipe) -> r.Vg.rc_name = "f") result.Vg.r_recipes
    in
    Vg.structural_hash (Vg.specialize_recipe recipe [ ("a", 1) ]).Vg.v_fn
  in
  let h1 = hash_of_run () in
  let h2 = hash_of_run () in
  check_string "same digest on independent runs" h1 h2;
  (* and the digest differs for a different point of the same recipe *)
  let result = Vg.generate ~lazy_variants:true (lower src) in
  let recipe =
    List.find (fun (r : Vg.recipe) -> r.Vg.rc_name = "f") result.Vg.r_recipes
  in
  let h0 = Vg.structural_hash (Vg.specialize_recipe recipe [ ("a", 0) ]).Vg.v_fn in
  check_bool "distinct valuations hash apart" true (h0 <> h1)

let suite =
  [
    tc "default domain {0,1}" test_default_domain;
    tc "explicit values domain" test_explicit_values_domain;
    tc "enum domain" test_enum_domain;
    tc "fnptr domain" test_fnptr_domain;
    tc "cross product" test_cross_product;
    tc "single-box cover" test_single_box_cover;
    tc "non-product assignment sets split" test_non_product_set_splits;
    tc "non-contiguous ranges split" test_non_contiguous_splits;
    tc "guard satisfaction" test_guard_satisfaction;
    tc "Figure 2 generation" test_figure2_generation;
    tc "variants appended to the program" test_variants_are_appended_to_program;
    tc "variant bodies are specialized" test_variant_bodies_are_specialized;
    tc "unreferenced switches not bound" test_unreferenced_switch_not_bound;
    tc "bind() partial specialization" test_bind_restricts_switches;
    tc "values() domain generation" test_values_domain_generation;
    tc "variant explosion cap" test_explosion_cap;
    tc "switch-less multiversed function" test_no_switch_function;
    tc "enum switch generation" test_enum_switch_generation;
    tc "variant semantic equivalence (Section 7.4)" test_variant_semantic_equivalence;
    tc "multiversed calling multiversed" test_mutual_mv_calls;
    tc "structural hash: clones collide across functions"
      test_hash_collides_across_equal_clones;
    tc "structural hash: single-instruction sensitivity"
      test_hash_sensitive_to_single_instruction;
    tc "structural hash: stable across runs" test_hash_stable_across_runs;
  ]
