(* Aggregated alcotest entry point; each [Test_*] module exports a [suite]. *)

let () =
  Alcotest.run "multiverse"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("lower", Test_lower.suite);
      ("switch", Test_switch.suite);
      ("opt", Test_opt.suite);
      ("isa", Test_isa.suite);
      ("codegen", Test_codegen.suite);
      ("diff-battery", Test_diff_battery.suite);
      ("asm", Test_asm.suite);
      ("objfile", Test_objfile.suite);
      ("link", Test_link.suite);
      ("vm", Test_vm.suite);
      ("variantgen", Test_variantgen.suite);
      ("descriptor", Test_descriptor.suite);
      ("runtime", Test_runtime.suite);
      ("safe-commit", Test_safe_commit.suite);
      ("osr", Test_osr.suite);
      ("lazy", Test_lazy.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("obs", Test_obs.suite);
      ("heat", Test_heat.suite);
      ("json", Test_json.suite);
      ("fuzz", Test_fuzz.suite);
      ("superblock", Test_superblock.suite);
      ("smp", Test_smp.suite);
      ("causal", Test_causal.suite);
      ("compiler", Test_compiler.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_props.suite);
      ("e2e", Test_e2e.suite);
    ]
